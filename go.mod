module proteus

go 1.24
