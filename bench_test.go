// Package proteus_test regenerates every table and figure of Saurabh et
// al. (IPDPS 2023) as Go benchmarks. Absolute numbers reflect the
// in-process runtime on a laptop-scale problem, not TACC Frontera; the
// shapes — which variant wins, by roughly what factor, and where the
// crossovers fall — are the reproduction targets (see EXPERIMENTS.md).
//
//	go test -bench=. -benchmem
package proteus_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/dsort"
	"proteus/internal/fem"
	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
	"proteus/internal/transfer"
)

// ---------------------------------------------------------------------------
// Table I — assembly optimization stages on a 3D rising bubble.
// Baseline: AIJ storage, coupled VU.  Stage 1: BAIJ + split VU.
// Stage 2: zip/unzip + GEMM kernels.
// ---------------------------------------------------------------------------

func bubbleSim(c *par.Comm, layout fem.Layout, splitVU bool) *core.Simulation {
	return bubbleSimPC(c, layout, splitVU, "")
}

func bubbleSimPC(c *par.Comm, layout fem.Layout, splitVU bool, pc string) *core.Simulation {
	p := chns.DefaultParams()
	p.Cn = 0.1
	p.Fr = 0.5
	opt := chns.DefaultOptions(1e-3)
	opt.Layout = layout
	opt.SplitVU = splitVU
	opt.PCNS, opt.PCPP = pc, pc
	cfg := core.Config{
		Dim: 3, Params: p, Opt: opt,
		BulkLevel: 2, InterfaceLevel: 3, // scaled from the paper's 6/11
		RemeshEvery: 1 << 30, // remesh benchmarked separately
	}
	return core.New(c, cfg, func(x, y, z float64) float64 {
		r := math.Sqrt((x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.4)*(z-0.4))
		return chns.EquilibriumProfile(r-0.2, p.Cn)
	})
}

func benchTableI(b *testing.B, layout fem.Layout, splitVU bool) {
	var t chns.Timers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.Run(4, func(c *par.Comm) {
			sim := bubbleSim(c, layout, splitVU)
			sim.Run(2)
			if c.Rank() == 0 {
				t = sim.Timers()
			}
		})
	}
	n := float64(b.N) * 2 // per time step
	report := func(name string, st chns.StageTimes) {
		b.ReportMetric(float64(st.Matrix.Microseconds())/n/1000, name+"-mat-ms")
		b.ReportMetric(float64(st.Vector.Microseconds())/n/1000, name+"-vec-ms")
		b.ReportMetric(float64(st.Total.Microseconds())/n/1000, name+"-total-ms")
	}
	report("ch", t.CH)
	report("ns", t.NS)
	report("pp", t.PP)
	report("vu", t.VU)
}

func BenchmarkTableI_Baseline(b *testing.B) { benchTableI(b, fem.LayoutAIJ, false) }
func BenchmarkTableI_Stage1(b *testing.B)   { benchTableI(b, fem.LayoutBAIJ, true) }
func BenchmarkTableI_Stage2(b *testing.B)   { benchTableI(b, fem.LayoutZipped, true) }

// Table I "Remesh" row: multi-level versus level-by-level remeshing with
// inter-grid transfer across a 3-level jump.
func BenchmarkTableI_RemeshMultiLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		par.Run(1, func(c *par.Comm) {
			mOld := mesh.New(c, 2, octree.Uniform(2, 3).Leaves)
			v := mOld.NewVec(1)
			for j := range v {
				v[j] = float64(j)
			}
			newTree := octree.Uniform(2, 6)
			mNew := mesh.New(c, 2, newTree.Leaves)
			transfer.Nodal(mOld, v, mNew, 1)
		})
	}
}

func BenchmarkTableI_RemeshLevelByLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		par.Run(1, func(c *par.Comm) {
			mOld := mesh.New(c, 2, octree.Uniform(2, 3).Leaves)
			v := mOld.NewVec(1)
			for j := range v {
				v[j] = float64(j)
			}
			newTree := octree.Uniform(2, 6)
			transfer.NodalLevelByLevel(mOld, v, newTree, 1)
		})
	}
}

// ---------------------------------------------------------------------------
// Remesh persistence — the Table I "Remesh" column / Fig. 7 treatment
// (PR 3): the batched single-round transfer versus the sequential
// per-field Nodal baseline, and the full remesh pipeline with its
// detect/refine/coarsen/balance/partition/build/transfer split.
// ---------------------------------------------------------------------------

// remeshDiscTree refines inside a disc to `fine`, `base` elsewhere.
func remeshDiscTree(base, fine int, cx, cy, r float64) *octree.Tree {
	return octree.Build(2, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Hypot(x-cx, y-cy) < r
	}, fine, nil).Balance21(nil)
}

// transferTime moves the full CHNS field set (PhiMu 2-dof, Vel 2-dof,
// P 1-dof) between two adaptive grids, batched or per-field sequential.
func transferTime(p int, batched bool, reps int) time.Duration {
	var dt time.Duration
	par.Run(p, func(c *par.Comm) {
		oldT := remeshDiscTree(4, 7, 0.35, 0.35, 0.2)
		newT := remeshDiscTree(4, 7, 0.6, 0.6, 0.2)
		scatter := func(t *octree.Tree) []sfc.Octant {
			n := t.Len()
			lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
			out := make([]sfc.Octant, hi-lo)
			copy(out, t.Leaves[lo:hi])
			return out
		}
		mOld := mesh.New(c, 2, scatter(oldT))
		mNew := mesh.New(c, 2, scatter(newT))
		phiMu, vel, pr := mOld.NewVec(2), mOld.NewVec(2), mOld.NewVec(1)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			phiMu[2*i] = math.Tanh(20 * (math.Hypot(x-0.35, y-0.35) - 0.2))
			phiMu[2*i+1] = math.Sin(3 * x)
			vel[2*i], vel[2*i+1] = y, -x
			pr[i] = x + y
		}
		ws := &transfer.Workspace{}
		c.Barrier()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			if batched {
				dPhiMu, dVel, dP := mNew.NewVec(2), mNew.NewVec(2), mNew.NewVec(1)
				transfer.Batch(mOld, mNew, []transfer.Field{
					{Src: phiMu, Dst: dPhiMu, Ndof: 2},
					{Src: vel, Dst: dVel, Ndof: 2},
					{Src: pr, Dst: dP, Ndof: 1},
				}, ws)
			} else {
				transfer.Nodal(mOld, phiMu, mNew, 2)
				transfer.Nodal(mOld, vel, mNew, 2)
				transfer.Nodal(mOld, pr, mNew, 1)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			dt = time.Since(t0) / time.Duration(reps)
		}
	})
	return dt
}

func BenchmarkTransferBatched(b *testing.B) {
	var dt time.Duration
	for i := 0; i < b.N; i++ {
		dt = transferTime(4, true, 3)
	}
	b.ReportMetric(float64(dt.Microseconds())/1000, "transfer-ms")
}

func BenchmarkTransferSequential(b *testing.B) {
	var dt time.Duration
	for i := 0; i < b.N; i++ {
		dt = transferTime(4, false, 3)
	}
	b.ReportMetric(float64(dt.Microseconds())/1000, "transfer-ms")
}

// benchRemeshPipeline drives a remesh-every-step swirling-drop run and
// reports the per-round remesh wall-clock split into its pipeline stages,
// plus the incremental-remesh accounting (how many rounds took the ripple
// balance and the mesh patch versus their from-scratch fallbacks).
func benchRemeshPipeline(b *testing.B, ranks int, mutate func(*core.Config)) {
	swirl := func(x, y, z, t float64) (float64, float64, float64) {
		sx := math.Sin(math.Pi * x)
		sy := math.Sin(math.Pi * y)
		return 2 * sx * sx * sy * math.Cos(math.Pi*y), -2 * sx * math.Cos(math.Pi*x) * sy * sy, 0
	}
	var t chns.Timers
	for i := 0; i < b.N; i++ {
		prm := chns.DefaultParams()
		prm.Cn = 0.03
		prm.Pe = 1000
		cfg := core.Config{
			Dim: 2, Params: prm, Opt: chns.DefaultOptions(2e-3),
			BulkLevel: 4, InterfaceLevel: 6,
			RemeshEvery: 1, PrescribedVel: swirl,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		par.Run(ranks, func(c *par.Comm) {
			sim := core.New(c, cfg, func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.7)-0.15, prm.Cn)
			})
			sim.Run(6)
			if c.Rank() == 0 {
				t = sim.Timers()
			}
		})
	}
	rs := t.RemeshStages
	rounds := float64(rs.Rounds)
	if rounds == 0 {
		rounds = 1
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / rounds / 1000 }
	b.ReportMetric(float64(t.Remesh.Total.Microseconds())/rounds/1000, "remesh-ms")
	b.ReportMetric(ms(rs.Detect), "detect-ms")
	b.ReportMetric(ms(rs.Refine), "refine-ms")
	b.ReportMetric(ms(rs.Coarsen), "coarsen-ms")
	b.ReportMetric(ms(rs.Balance), "balance-ms")
	b.ReportMetric(ms(rs.Partition), "partition-ms")
	b.ReportMetric(ms(rs.Build), "build-ms")
	b.ReportMetric(ms(rs.Transfer), "transfer-ms")
	b.ReportMetric(ms(rs.Migrate), "migrate-ms")
	// The acceptance metric of the splitter-shift path: what the
	// incremental machinery pays per round (balance + build + the exact
	// view migration, a sub-share of transfer) against the same sum on
	// the from-scratch ablation.
	b.ReportMetric(ms(rs.Balance)+ms(rs.Build)+ms(rs.Migrate), "incr-cost-ms")
	b.ReportMetric(float64(rs.Rounds), "rounds")
	b.ReportMetric(float64(rs.PartitionOnly), "partition-only-rounds")
	b.ReportMetric(float64(rs.IncrBalance), "incr-balance-rounds")
	b.ReportMetric(float64(rs.IncrBuild), "incr-build-rounds")
	b.ReportMetric(float64(rs.MigrateBuild), "migrate-build-rounds")
	b.ReportMetric(float64(rs.FullBuild), "full-build-rounds")
	b.ReportMetric(float64(rs.FullPartitionOnly), "full-partition-rounds")
	b.ReportMetric(float64(rs.FullDirtyFrac), "full-dirty-rounds")
	b.ReportMetric(float64(rs.FullSplitterMoved), "full-splitter-rounds")
	b.ReportMetric(float64(rs.RippleRounds), "ripple-rounds")
	if rs.TotalOctants > 0 {
		b.ReportMetric(float64(rs.DirtyOctants)/float64(rs.TotalOctants), "dirty-frac")
	}
}

func BenchmarkRemeshPipeline_Batched(b *testing.B) { benchRemeshPipeline(b, 4, nil) }
func BenchmarkRemeshPipeline_Sequential(b *testing.B) {
	benchRemeshPipeline(b, 4, func(cfg *core.Config) { cfg.SequentialTransfer = true })
}

// The incremental-remesh ablation (PR 8): identical run with the ripple
// balance + mesh/plan patching on versus forced from-scratch rebuilds.
// Serial, so every round is partition-stable and the patch path engages
// on each one; the balance-ms and build-ms sub-timers are the comparison
// targets (the solves are bitwise identical either way).
func BenchmarkRemeshPipeline_Incremental(b *testing.B) { benchRemeshPipeline(b, 1, nil) }
func BenchmarkRemeshPipeline_FullRebuild(b *testing.B) {
	benchRemeshPipeline(b, 1, func(cfg *core.Config) { cfg.DisableIncremental = true })
}

// The splitter-shift ablation (PR 9): the same drop run at a real rank
// count, where the stretching interface grows the element count every
// round and PartitionWeighted chases the moving load — so the SFC
// splitters shift and the plain patch would decline. Incremental rounds
// go through migrate-then-patch; the ablation rebuilds everything from
// scratch. Compare incr-cost-ms (balance + build + migrate per round)
// and migrate-build-rounds between the two.
func BenchmarkRemeshPipeline_ShiftedIncremental(b *testing.B) { benchRemeshPipeline(b, 4, nil) }
func BenchmarkRemeshPipeline_ShiftedFullRebuild(b *testing.B) {
	benchRemeshPipeline(b, 4, func(cfg *core.Config) { cfg.DisableIncremental = true })
}

// ---------------------------------------------------------------------------
// Post-remesh solves (PR 10) — remesh-aware MG refresh, preconditioner
// carry-over, and warm starts. Warm and cold differ only in the Krylov
// initial guess of the PP and VU solves on the first step after each
// remesh (the convergence target is relative to the RHS either way); the
// reported post-remesh per-stage iteration means are the acceptance
// metric, alongside the carry-over counters both runs share.
// ---------------------------------------------------------------------------

func benchPostRemeshSolve(b *testing.B, warm bool) {
	var st core.RunStats
	for i := 0; i < b.N; i++ {
		prm := chns.DefaultParams()
		prm.Cn = 0.08
		prm.Fr = 0.5
		opt := chns.DefaultOptions(1e-3)
		opt.WarmStarts = warm
		cfg := core.Config{
			Dim: 2, Params: prm, Opt: opt,
			BulkLevel: 3, InterfaceLevel: 5,
			RemeshEvery: 1,
		}
		par.Run(2, func(c *par.Comm) {
			sim := core.New(c, cfg, func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.4)-0.18, prm.Cn)
			})
			if err := sim.Run(10); err != nil {
				panic(err)
			}
			rs := sim.Stats() // collective
			if c.Rank() == 0 {
				st = rs
			}
		})
	}
	for _, stage := range []string{"ch", "ns", "pp", "vu"} {
		b.ReportMetric(st.PostRemeshIters[stage], "post-"+stage+"-its")
	}
	b.ReportMetric(float64(st.PostRemeshSteps), "post-steps")
	b.ReportMetric(float64(st.MGLevelsReused+st.MGLevelsPatched), "mg-levels-carried")
	b.ReportMetric(float64(st.PCRowsKept), "pc-rows-kept")
	b.ReportMetric(float64(st.PCRowsRebuilt), "pc-rows-rebuilt")
}

func BenchmarkPostRemeshSolve_Warm(b *testing.B) { benchPostRemeshSolve(b, true) }
func BenchmarkPostRemeshSolve_Cold(b *testing.B) { benchPostRemeshSolve(b, false) }

// ---------------------------------------------------------------------------
// Assembly persistence — cold (first assembly: COO-map sparsity build +
// freeze + scatter-plan construction) versus warm (plan-driven
// reassembly on the frozen pattern), per Table I layout. The warm path
// is the steady-state cost a time-stepping simulation pays every step;
// it must be allocation-free (-benchmem) and a small multiple faster
// than cold.
// ---------------------------------------------------------------------------

func benchAssemblyPlan(b *testing.B, layout fem.Layout, warm bool) {
	par.Run(1, func(c *par.Comm) {
		tree := interfaceTree(3, 2, 4)
		local := make([]sfc.Octant, tree.Len())
		copy(local, tree.Leaves)
		m := mesh.New(c, 3, local)
		const ndof = 2
		asm := fem.NewAssembler(m, ndof)
		asm.SetWorkers(1) // allocs/op must reflect the element loop alone
		r := asm.Ref
		npe := r.NPE
		tmp := make([]float64, npe*npe)
		blocks := make([][]float64, ndof*ndof)
		for i := range blocks {
			blocks[i] = make([]float64, npe*npe)
		}
		fill := func(w int, h float64, out [][]float64) {
			wk := asm.WorkN(w)
			r.MassGemm(wk, h, 1, nil, out[0])
			r.StiffGemm(wk, h, 1, nil, tmp)
			for i := range tmp {
				out[0][i] += tmp[i]
			}
			r.MassGemm(wk, h, 0.3, nil, out[1])
			r.MassGemm(wk, h, 1, nil, out[3])
		}
		zipKern := func(w, e int, h float64, out [][]float64) { fill(w, h, out) }
		loopKern := func(w, e int, h float64, ke []float64) {
			fill(w, h, blocks)
			fem.UnzipMat(ndof, npe, blocks, ke)
		}
		assemble := func(mat *la.BSRMat) {
			if layout == fem.LayoutZipped {
				asm.AssembleMatrixZipped(mat, zipKern)
			} else {
				asm.AssembleMatrix(mat, layout, loopKern)
			}
		}
		b.ReportMetric(float64(m.NumElems()), "elements")
		b.ReportAllocs()
		if warm {
			mat := fem.NewMatrix(m, ndof, layout)
			assemble(mat) // cold: builds sparsity and plan
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mat.Zero()
				assemble(mat)
			}
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh epoch drops the cached plan, so every iteration pays
			// the full first-assembly cost (map build + freeze + plan).
			asm.SetEpoch(uint64(i + 1))
			mat := fem.NewMatrix(m, ndof, layout)
			assemble(mat)
		}
	})
}

func BenchmarkAssemblyCold_AIJ(b *testing.B)    { benchAssemblyPlan(b, fem.LayoutAIJ, false) }
func BenchmarkAssemblyCold_BAIJ(b *testing.B)   { benchAssemblyPlan(b, fem.LayoutBAIJ, false) }
func BenchmarkAssemblyCold_Zipped(b *testing.B) { benchAssemblyPlan(b, fem.LayoutZipped, false) }
func BenchmarkAssemblyWarm_AIJ(b *testing.B)    { benchAssemblyPlan(b, fem.LayoutAIJ, true) }
func BenchmarkAssemblyWarm_BAIJ(b *testing.B)   { benchAssemblyPlan(b, fem.LayoutBAIJ, true) }
func BenchmarkAssemblyWarm_Zipped(b *testing.B) { benchAssemblyPlan(b, fem.LayoutZipped, true) }

// ---------------------------------------------------------------------------
// Vector assembly sharding — the Table I "Vec" columns (PR 5): the serial
// AssembleVector element loop versus the planned store-and-gather path,
// which shards the element loop and the per-node gather across the worker
// pool while staying bitwise identical to serial (canonical gather order)
// and allocation-free when warm.
// ---------------------------------------------------------------------------

func benchVectorAssembly(b *testing.B, planned bool, workers int) {
	par.Run(1, func(c *par.Comm) {
		tree := interfaceTree(3, 2, 4)
		local := make([]sfc.Octant, tree.Len())
		copy(local, tree.Leaves)
		m := mesh.New(c, 3, local)
		const ndof = 3 // velocity-like RHS
		asm := fem.NewAssembler(m, ndof)
		r := asm.Ref
		npe := r.NPE
		// A representative RHS kernel: gather a nodal field, evaluate a
		// coefficient, quadrature loop — with per-worker scratch.
		field := m.NewVec(ndof)
		for i := range field {
			field[i] = math.Sin(0.01 * float64(i))
		}
		type scr struct{ fC, comp []float64 }
		ws := make([]scr, workers)
		for i := range ws {
			ws[i] = scr{fC: make([]float64, npe*ndof), comp: make([]float64, npe)}
		}
		kern := func(w, e int, h float64, fe []float64) {
			sc := &ws[w]
			m.GatherElem(e, field, ndof, sc.fC)
			vol := h * h * h
			for g := 0; g < r.NG; g++ {
				wg := r.W[g] * vol
				for d := 0; d < ndof; d++ {
					for a := 0; a < npe; a++ {
						sc.comp[a] = sc.fC[a*ndof+d]
					}
					f := r.AtGauss(g, sc.comp) + r.GradAtGauss(g, d, h, sc.comp)
					for a := 0; a < npe; a++ {
						fe[a*ndof+d] += wg * f * r.N[g*npe+a]
					}
				}
			}
		}
		v := m.NewVec(ndof)
		b.ReportMetric(float64(m.NumElems()), "elements")
		b.ReportAllocs()
		if planned {
			asm.SetWorkers(workers)
			pool := par.NewPool(workers)
			defer pool.Close()
			asm.SetPool(pool)
			asm.AssembleVectorPlanned(v, kern) // cold: builds the vector plan
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				asm.AssembleVectorPlanned(v, kern)
			}
			return
		}
		serial := func(e int, h float64, fe []float64) { kern(0, e, h, fe) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			asm.AssembleVector(v, serial)
		}
	})
}

func BenchmarkVectorAssemblySerial(b *testing.B)  { benchVectorAssembly(b, false, 1) }
func BenchmarkVectorAssemblyPlanned(b *testing.B) { benchVectorAssembly(b, true, runtimeWorkers()) }

// ---------------------------------------------------------------------------
// Solve persistence — the Table I "Solve" column treatment (PR 2): warm
// KSP solves on a persistent workspace, with SpMV, dots and axpy kernels
// sharded across a worker pool. Serial and sharded paths are bitwise
// identical (row-partitioned SpMV, chunk-canonical dots); the sharded
// run must show a multi-core speedup, and the warm solve must report
// 0 allocs/op (-benchmem).
// ---------------------------------------------------------------------------

// benchSystem builds a banded SPD block system of the given block size:
// nodes block rows with a pentadiagonal block pattern, diagonally
// dominant.
func benchSystem(nodes, bs int) *la.BSRMat {
	m := la.NewBAIJ(nil, bs, nodes, nodes)
	blk := make([]float64, bs*bs)
	for rn := 0; rn < nodes; rn++ {
		for _, off := range []int{-2, -1, 0, 1, 2} {
			cn := rn + off
			if cn < 0 || cn >= nodes {
				continue
			}
			for i := range blk {
				blk[i] = -0.1
			}
			for d := 0; d < bs; d++ {
				if off == 0 {
					blk[d*bs+d] = 8
				} else {
					blk[d*bs+d] = -1
				}
			}
			m.AddBlock(rn, cn, blk)
		}
	}
	m.Finalize()
	return m
}

func benchSpMV(b *testing.B, workers int) {
	const nodes, bs = 60000, 4
	m := benchSystem(nodes, bs)
	if workers > 1 {
		pool := par.NewPool(workers)
		defer pool.Close()
		m.SetPool(pool)
	}
	x := make([]float64, nodes*bs)
	y := make([]float64, nodes*bs)
	for i := range x {
		x[i] = float64(i%23) - 11
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(x, y)
	}
	b.ReportMetric(float64(nodes), "block-rows")
}

func BenchmarkSpMV_Serial(b *testing.B)  { benchSpMV(b, 1) }
func BenchmarkSpMV_Sharded(b *testing.B) { benchSpMV(b, 0+runtimeWorkers()) }

func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

func benchKSPWarm(b *testing.B, method la.Method, workers int) {
	const nodes, bs = 60000, 4
	m := benchSystem(nodes, bs)
	var pool *par.Pool
	if workers > 1 {
		pool = par.NewPool(workers)
		defer pool.Close()
		m.SetPool(pool)
	}
	n := nodes * bs
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(0.001 * float64(i))
	}
	x := make([]float64, n)
	k := &la.KSP{Op: m, PC: la.NewPCPBJacobi(m), Type: method, Pool: pool, Rtol: 1e-8}
	res, _ := k.Solve(rhs, x) // cold: allocates the workspace
	if !res.Converged {
		b.Fatalf("%s did not converge: %+v", method, res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		k.Solve(rhs, x)
	}
	b.ReportMetric(float64(res.Iterations), "its")
}

// benchKSPCold measures the seeded behavior: a fresh KSP per solve pays
// the full workspace allocation every time (what every stage did before
// the persistent solve path).
func benchKSPCold(b *testing.B, method la.Method) {
	const nodes, bs = 60000, 4
	m := benchSystem(nodes, bs)
	n := nodes * bs
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(0.001 * float64(i))
	}
	x := make([]float64, n)
	pc := la.NewPCPBJacobi(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		k := &la.KSP{Op: m, PC: pc, Type: method, Rtol: 1e-8}
		k.Solve(rhs, x)
	}
}

func BenchmarkKSPCold_CG(b *testing.B)    { benchKSPCold(b, la.CG) }
func BenchmarkKSPCold_GMRES(b *testing.B) { benchKSPCold(b, la.GMRES) }

func BenchmarkKSPWarm_CG_Serial(b *testing.B)      { benchKSPWarm(b, la.CG, 1) }
func BenchmarkKSPWarm_CG_Sharded(b *testing.B)     { benchKSPWarm(b, la.CG, runtimeWorkers()) }
func BenchmarkKSPWarm_BiCGS_Serial(b *testing.B)   { benchKSPWarm(b, la.BiCGS, 1) }
func BenchmarkKSPWarm_BiCGS_Sharded(b *testing.B)  { benchKSPWarm(b, la.BiCGS, runtimeWorkers()) }
func BenchmarkKSPWarm_IBiCGS_Serial(b *testing.B)  { benchKSPWarm(b, la.IBiCGS, 1) }
func BenchmarkKSPWarm_IBiCGS_Sharded(b *testing.B) { benchKSPWarm(b, la.IBiCGS, runtimeWorkers()) }
func BenchmarkKSPWarm_GMRES_Serial(b *testing.B)   { benchKSPWarm(b, la.GMRES, 1) }
func BenchmarkKSPWarm_GMRES_Sharded(b *testing.B)  { benchKSPWarm(b, la.GMRES, runtimeWorkers()) }

// ---------------------------------------------------------------------------
// Table II — solver/preconditioner configuration. The table itself is a
// configuration statement; this benchmark verifies each configured pair
// converges on its stage's system and reports the iteration counts.
// ---------------------------------------------------------------------------

func benchTableII(b *testing.B, pc string) {
	var ks map[string]core.IterStats
	for i := 0; i < b.N; i++ {
		par.Run(2, func(c *par.Comm) {
			sim := bubbleSimPC(c, fem.LayoutZipped, true, pc)
			sim.Run(2)
			st := sim.Stats()
			if c.Rank() == 0 {
				ks = st.KrylovIters
			}
		})
	}
	// Per-stage Krylov iteration spread over the run's solves — the
	// numbers the paper's Table II configures each stage to minimize.
	for _, stage := range []string{"ch", "ns", "pp", "vu"} {
		is := ks[stage]
		b.ReportMetric(float64(is.Min), stage+"-its-min")
		b.ReportMetric(is.Mean, stage+"-its-mean")
		b.ReportMetric(float64(is.Max), stage+"-its-max")
	}
}

// The default pairing (Table II: bjacobi/ILU0 on NS and PP) against the
// octree geometric multigrid V-cycle on the same stages.
func BenchmarkTableII_SolverConfig(b *testing.B) { benchTableII(b, "") }
func BenchmarkTableII_SolverGMG(b *testing.B)    { benchTableII(b, chns.PCGMG) }

// ---------------------------------------------------------------------------
// Fig. 5 — swirling-flow drop: coarse constant Cn fragments, fine constant
// Cn stays intact but costs more, local Cn stays intact at a fraction of
// the cost. Reported metrics: drop count and element count.
// ---------------------------------------------------------------------------

func benchFig5(b *testing.B, interfaceLevel, fineLevel int, cn, fineCn float64, local bool) {
	swirl := func(x, y, z, t float64) (float64, float64, float64) {
		sx := math.Sin(math.Pi * x)
		sy := math.Sin(math.Pi * y)
		return 2 * sx * sx * sy * math.Cos(math.Pi*y), -2 * sx * math.Cos(math.Pi*x) * sy * sy, 0
	}
	var drops int
	var elems int64
	for i := 0; i < b.N; i++ {
		p := chns.DefaultParams()
		p.Cn = cn
		p.Pe = 1000
		cfg := core.Config{
			Dim: 2, Params: p, Opt: chns.DefaultOptions(2.5e-3),
			BulkLevel: 3, InterfaceLevel: interfaceLevel, FineLevel: fineLevel,
			LocalCahn: local, FineCn: fineCn, Delta: -0.5,
			RemeshEvery: 4, PrescribedVel: swirl,
		}
		par.Run(4, func(c *par.Comm) {
			sim := core.New(c, cfg, func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.75)-0.15, cn)
			})
			sim.Run(16)
			d := sim.CountDrops(-0.3)
			e := sim.GlobalElems()
			if c.Rank() == 0 {
				drops, elems = d, e
			}
		})
	}
	b.ReportMetric(float64(drops), "drops")
	b.ReportMetric(float64(elems), "elements")
}

func BenchmarkFig5_CoarseCn(b *testing.B) { benchFig5(b, 5, 5, 0.02, 0.02, false) }
func BenchmarkFig5_FineCn(b *testing.B)   { benchFig5(b, 6, 6, 0.008, 0.008, false) }
func BenchmarkFig5_LocalCn(b *testing.B)  { benchFig5(b, 5, 6, 0.02, 0.008, true) }

// ---------------------------------------------------------------------------
// Fig. 6 — MATVEC strong and weak scaling over in-process ranks.
// ---------------------------------------------------------------------------

// interfaceTree builds an interface-refined adaptive tree with roughly
// the requested element count.
func interfaceTree(dim, base, fine int) *octree.Tree {
	return octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		d := math.Hypot(x-0.5, y-0.5)
		return math.Abs(d-0.3) < 0.05
	}, fine, nil).Balance21(nil)
}

func matvecTime(p int, tree *octree.Tree, reps int) time.Duration {
	var dt time.Duration
	par.Run(p, func(c *par.Comm) {
		n := tree.Len()
		lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
		local := make([]sfc.Octant, hi-lo)
		copy(local, tree.Leaves[lo:hi])
		m := mesh.New(c, 2, local)
		in := m.NewVec(1)
		out := m.NewVec(1)
		for i := range in {
			in[i] = float64(i%7) - 3
		}
		kern := func(e int, h float64, ein, eout []float64) {
			// Lumped mass + neighbour mixing: a representative cheap kernel.
			f := h * h / 4
			var avg float64
			for _, v := range ein {
				avg += v
			}
			avg /= float64(len(ein))
			for i := range eout {
				eout[i] = f * (ein[i] + avg)
			}
		}
		c.Barrier()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			m.MatVec(in, out, 1, kern)
		}
		c.Barrier()
		if c.Rank() == 0 {
			dt = time.Since(t0) / time.Duration(reps)
		}
	})
	return dt
}

func BenchmarkFig6_StrongMatvec(b *testing.B) {
	tree := interfaceTree(2, 6, 9) // fixed global problem
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var dt time.Duration
			for i := 0; i < b.N; i++ {
				dt = matvecTime(p, tree, 3)
			}
			b.ReportMetric(float64(dt.Microseconds())/1000, "matvec-ms")
			b.ReportMetric(float64(tree.Len()), "elements")
		})
	}
}

func BenchmarkFig6_WeakMatvec(b *testing.B) {
	// Fixed grain: one level deeper per 4x ranks keeps elements/rank
	// constant for the band-refined 2D mesh.
	for i, p := range []int{1, 4, 16} {
		tree := interfaceTree(2, 4, 8+i)
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var dt time.Duration
			for j := 0; j < b.N; j++ {
				dt = matvecTime(p, tree, 3)
			}
			b.ReportMetric(float64(dt.Microseconds())/1000, "matvec-ms")
			b.ReportMetric(float64(tree.Len()/p), "grain-elems-per-rank")
		})
	}
}

// ---------------------------------------------------------------------------
// Fig. 7 — full-framework scaling: per-stage times and percentage
// breakdown versus rank count on a fixed problem.
// ---------------------------------------------------------------------------

func BenchmarkFig7_Application(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var t chns.Timers
			for i := 0; i < b.N; i++ {
				par.Run(p, func(c *par.Comm) {
					prm := chns.DefaultParams()
					prm.Cn = 0.05
					prm.Fr = 0.5
					cfg := core.Config{
						Dim: 2, Params: prm, Opt: chns.DefaultOptions(1e-3),
						BulkLevel: 4, InterfaceLevel: 6,
						RemeshEvery: 2,
					}
					sim := core.New(c, cfg, func(x, y, z float64) float64 {
						return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.4)-0.2, prm.Cn)
					})
					sim.Run(4) // includes remeshes at steps 2 and 4
					if c.Rank() == 0 {
						t = sim.Timers()
					}
				})
			}
			tot := t.CH.Total + t.NS.Total + t.PP.Total + t.VU.Total + t.Remesh.Total
			b.ReportMetric(float64(t.CH.Total.Microseconds())/1000, "ch-ms")
			b.ReportMetric(float64(t.NS.Total.Microseconds())/1000, "ns-ms")
			b.ReportMetric(float64(t.PP.Total.Microseconds())/1000, "pp-ms")
			b.ReportMetric(float64(t.VU.Total.Microseconds())/1000, "vu-ms")
			b.ReportMetric(float64(t.Remesh.Total.Microseconds())/1000, "remesh-ms")
			if tot > 0 {
				b.ReportMetric(100*float64(t.PP.Total)/float64(tot), "pp-pct")
				b.ReportMetric(100*float64(t.Remesh.Total)/float64(tot), "remesh-pct")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Fig. 9 — element-fraction-per-level histogram of a feature-refined jet
// mesh: the finest level holds the largest element fraction while covering
// a tiny volume fraction.
// ---------------------------------------------------------------------------

func BenchmarkFig9_LevelHistogram(b *testing.B) {
	var frac []float64
	var volFinest float64
	for i := 0; i < b.N; i++ {
		// Jet-like geometry: refine near a perturbed cylinder surface,
		// deepest at the pinch points.
		tr := octree.Build(3, func(o sfc.Octant) bool {
			if int(o.Level) < 2 {
				return true
			}
			s := float64(o.Side()) / float64(sfc.MaxCoord)
			x := float64(o.X)/float64(sfc.MaxCoord) + s/2
			y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
			z := float64(o.Z)/float64(sfc.MaxCoord) + s/2
			r := math.Hypot(y-0.5, z-0.5)
			rad := 0.1 + 0.035*math.Cos(4*math.Pi*x)
			dist := math.Abs(r - rad)
			switch {
			case int(o.Level) < 4:
				return dist < 0.1
			case int(o.Level) < 6:
				// Deepest only near the thinning necks.
				return dist < 0.03 && math.Abs(math.Cos(4*math.Pi*x)+1) < 0.2
			default:
				return false
			}
		}, 6, nil).Balance21(nil)
		frac = tr.LevelHistogram()
		volFinest = tr.VolumeFractionAtLevel(6)
	}
	for l, f := range frac {
		if f > 0 {
			b.ReportMetric(f, fmt.Sprintf("frac-level-%d", l))
		}
	}
	b.ReportMetric(volFinest*100, "finest-volume-pct")
}

// ---------------------------------------------------------------------------
// Sec. II-C3a — distributed octree key sort: staged k-way versus flat.
// ---------------------------------------------------------------------------

func benchSort(b *testing.B, flat bool) {
	// Enough ranks for the staged exchange's O(k + p/k) messages per rank
	// to beat the flat O(p); the paper's crossover is at tens of
	// thousands of cores, the in-process one is around p ~ 32.
	const p = 64
	var msgs int64
	for i := 0; i < b.N; i++ {
		par.Run(p, func(c *par.Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			local := make([]sfc.Octant, 2000)
			for j := range local {
				o := sfc.Root(3)
				for l := 0; l < 6; l++ {
					o = o.Child(rng.Intn(8))
				}
				local[j] = o
			}
			before := c.Stats().Messages.Load()
			dsort.Sort(c, local, sfc.Less, dsort.Options{KWay: 8, Flat: flat})
			if c.Rank() == 0 {
				msgs = c.Stats().Messages.Load() - before
			}
		})
	}
	b.ReportMetric(float64(msgs), "messages")
}

func BenchmarkSort_StagedKWay(b *testing.B) { benchSort(b, false) }
func BenchmarkSort_Flat(b *testing.B)       { benchSort(b, true) }

// ---------------------------------------------------------------------------
// Sec. II-C3b — memoized communicator splitting.
// ---------------------------------------------------------------------------

func BenchmarkCommSplit_Uncached(b *testing.B) {
	par.Run(8, func(c *par.Comm) {
		for i := 0; i < b.N; i++ {
			c.CommSplit(c.Rank()%2, c.Rank())
		}
	})
}

func BenchmarkCommSplit_Cached(b *testing.B) {
	par.Run(8, func(c *par.Comm) {
		for i := 0; i < b.N; i++ {
			c.CommSplitCached("bench", c.Rank()%2, c.Rank())
		}
	})
}

// ---------------------------------------------------------------------------
// Sec. II-C3c — NBX sparse exchange versus the raw Alltoall count
// exchange: message volume for a sparse neighbour pattern.
// ---------------------------------------------------------------------------

func benchSparseExchange(b *testing.B, nbx bool) {
	const p = 16
	var msgs int64
	for i := 0; i < b.N; i++ {
		par.Run(p, func(c *par.Comm) {
			dests := []int{(c.Rank() + 1) % p, (c.Rank() + p - 1) % p}
			bufs := [][]float64{make([]float64, 64), make([]float64, 64)}
			before := c.Stats().Messages.Load()
			if nbx {
				par.NBXExchange(c, dests, bufs)
			} else {
				par.AlltoallvCounted(c, dests, bufs)
			}
			c.Barrier()
			if c.Rank() == 0 {
				msgs = c.Stats().Messages.Load() - before
			}
		})
	}
	b.ReportMetric(float64(msgs), "messages")
}

func BenchmarkSparseExchange_NBX(b *testing.B)      { benchSparseExchange(b, true) }
func BenchmarkSparseExchange_Alltoall(b *testing.B) { benchSparseExchange(b, false) }

// ---------------------------------------------------------------------------
// Sec. II-C1 ablation — multi-level vs level-by-level refinement and
// coarsening (tree operations only; transfer measured in Table I Remesh).
// ---------------------------------------------------------------------------

func deepTargets(t *octree.Tree, jump int) []int {
	targets := make([]int, t.Len())
	for i, o := range t.Leaves {
		targets[i] = int(o.Level)
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		if math.Hypot(x-0.5, y-0.5) < 0.2 {
			targets[i] = int(o.Level) + jump
		}
	}
	return targets
}

func BenchmarkRefine_MultiLevel(b *testing.B) {
	tr := octree.Uniform(2, 5)
	targets := deepTargets(tr, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Refine(targets, nil)
	}
}

func BenchmarkRefine_LevelByLevel(b *testing.B) {
	tr := octree.Uniform(2, 5)
	targets := deepTargets(tr, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RefineLevelByLevel(targets, nil)
	}
}

func BenchmarkCoarsen_MultiLevel(b *testing.B) {
	fine := octree.Uniform(2, 8)
	targets := make([]int, fine.Len())
	for i := range targets {
		targets[i] = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fine.Coarsen(targets)
	}
}

func BenchmarkCoarsen_LevelByLevel(b *testing.B) {
	fine := octree.Uniform(2, 8)
	targets := make([]int, fine.Len())
	for i := range targets {
		targets[i] = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fine.CoarsenLevelByLevel(targets)
	}
}
