// Command scaling regenerates the scaling figures: Fig. 6 (MATVEC strong
// and weak scaling) and Fig. 7 (full-framework stage times and percentage
// breakdown) as text tables over in-process rank counts.
//
//	go run ./cmd/scaling -fig6 -fig7 -maxranks 8
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"
	"time"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func main() {
	fig6 := flag.Bool("fig6", false, "run the MATVEC scaling sweeps")
	fig7 := flag.Bool("fig7", false, "run the application scaling sweep")
	maxRanks := flag.Int("maxranks", 8, "largest rank count (swept in powers of two)")
	statsJSON := flag.String("stats-json", "", "dump the fig7 per-rank-count stats (timers incl. remesh sub-timers, elem counts, remesh counts) to this path")
	flag.Parse()
	if !*fig6 && !*fig7 {
		*fig6, *fig7 = true, true
	}
	var ranks []int
	for p := 1; p <= *maxRanks; p *= 2 {
		ranks = append(ranks, p)
	}
	if *fig6 {
		runFig6(ranks)
	}
	if *fig7 {
		stats := runFig7(ranks)
		if *statsJSON != "" {
			if err := core.WriteStatsJSON(*statsJSON, stats); err != nil {
				panic(err)
			}
			fmt.Printf("wrote %s\n", *statsJSON)
		}
	}
}

func ringTree(base, fine int) *octree.Tree {
	return octree.Build(2, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Abs(math.Hypot(x-0.5, y-0.5)-0.3) < 0.05
	}, fine, nil).Balance21(nil)
}

func timeMatvec(p int, tree *octree.Tree, reps int) time.Duration {
	var dt time.Duration
	par.Run(p, func(c *par.Comm) {
		n := tree.Len()
		lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
		local := make([]sfc.Octant, hi-lo)
		copy(local, tree.Leaves[lo:hi])
		m := mesh.New(c, 2, local)
		in := m.NewVec(1)
		out := m.NewVec(1)
		for i := range in {
			in[i] = float64(i%13) - 6
		}
		kern := func(e int, h float64, ein, eout []float64) {
			f := h * h / 4
			var avg float64
			for _, v := range ein {
				avg += v
			}
			avg /= float64(len(ein))
			for i := range eout {
				eout[i] = f * (ein[i] + avg)
			}
		}
		c.Barrier()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			m.MatVec(in, out, 1, kern)
		}
		c.Barrier()
		if c.Rank() == 0 {
			dt = time.Since(t0) / time.Duration(reps)
		}
	})
	return dt
}

func runFig6(ranks []int) {
	cores := runtime.NumCPU()
	fmt.Printf("host cores: %d. Ranks are in-process goroutines; when ranks\n", cores)
	fmt.Println("exceed cores they time-share, so wall clock cannot shrink. The")
	fmt.Println("efficiencies below are modeled assuming perfect rank concurrency")
	fmt.Println("(per-rank time = total wall / ranks): they isolate the ghost-")
	fmt.Println("exchange and duplicated-boundary-work overhead, which is what")
	fmt.Println("degrades the paper's 81%/82% efficiencies at scale.")

	fmt.Println("\nFig. 6a — MATVEC strong scaling (fixed problem):")
	tree := ringTree(7, 10)
	fmt.Printf("  elements: %d\n", tree.Len())
	fmt.Printf("  %-8s %-14s %-14s %-10s\n", "ranks", "total-wall", "per-rank", "model-eff")
	var t1 time.Duration
	for _, p := range ranks {
		dt := timeMatvec(p, tree, 5)
		if p == 1 {
			t1 = dt
		}
		perRank := dt / time.Duration(p)
		// Ideal: total work constant -> per-rank = t1/p. Overhead shows up
		// as total wall growing beyond t1.
		eff := float64(t1) / float64(dt) * 100
		fmt.Printf("  %-8d %-14v %-14v %8.1f%%\n", p, dt.Round(time.Microsecond), perRank.Round(time.Microsecond), eff)
	}

	fmt.Println("\nFig. 6b — MATVEC weak scaling (fixed grain per rank):")
	fmt.Printf("  %-8s %-12s %-14s %-10s\n", "ranks", "grain", "per-rank", "model-eff")
	var w1 time.Duration
	// Quadrupling ranks with one level deeper refinement keeps the grain
	// (elements per rank) roughly constant for the 2D ring mesh.
	weakRanks := []int{1, 4, 16}
	for i, p := range weakRanks {
		// Bulk level 4 keeps the ring band dominant, so one extra level
		// quadruples the element count as the rank count quadruples.
		tree := ringTree(4, 8+i)
		dt := timeMatvec(p, tree, 5)
		perRank := dt / time.Duration(p)
		if i == 0 {
			w1 = perRank
		}
		eff := float64(w1) / float64(perRank) * 100
		fmt.Printf("  %-8d %-12d %-14v %8.1f%%\n", p, tree.Len()/p, perRank.Round(time.Microsecond), eff)
	}
}

func runFig7(ranks []int) []core.RunStats {
	fmt.Println("\nFig. 7 — application scaling (2 steps, rising bubble, remesh every 2):")
	fmt.Printf("  %-6s %-10s %-10s %-10s %-10s %-10s | %s\n",
		"ranks", "CH", "NS", "PP", "VU", "remesh", "percentages")
	var stats []core.RunStats
	for _, p := range ranks {
		var t chns.Timers
		par.Run(p, func(c *par.Comm) {
			prm := chns.DefaultParams()
			prm.Cn = 0.05
			prm.Fr = 0.5
			cfg := core.Config{
				Dim: 2, Params: prm, Opt: chns.DefaultOptions(1e-3),
				BulkLevel: 4, InterfaceLevel: 7,
				RemeshEvery: 2,
			}
			sim := core.New(c, cfg, func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.4)-0.2, prm.Cn)
			})
			sim.Run(2)
			st := sim.Stats()
			if c.Rank() == 0 {
				t = st.Timers
				st.Scenario, st.Preset = "bubble", "fig7"
				stats = append(stats, st)
			}
		})
		tot := t.CH.Total + t.NS.Total + t.PP.Total + t.VU.Total + t.Remesh.Total
		pct := func(d time.Duration) float64 {
			if tot == 0 {
				return 0
			}
			return 100 * float64(d) / float64(tot)
		}
		fmt.Printf("  %-6d %-10v %-10v %-10v %-10v %-10v | CH %.0f%% NS %.0f%% PP %.0f%% VU %.0f%% RM %.0f%%\n",
			p,
			t.CH.Total.Round(time.Millisecond), t.NS.Total.Round(time.Millisecond),
			t.PP.Total.Round(time.Millisecond), t.VU.Total.Round(time.Millisecond),
			t.Remesh.Total.Round(time.Millisecond),
			pct(t.CH.Total), pct(t.NS.Total), pct(t.PP.Total), pct(t.VU.Total), pct(t.Remesh.Total))
	}
	return stats
}
