// Command bench sweeps solver configurations — scenario × preset ×
// ranks × vector workers × preconditioner — through the in-process MPI
// stand-in, collects each run's core.RunStats (per-stage timers and
// Krylov iteration min/mean/max), optionally folds in `go test -bench`
// metrics, and writes one normalized JSON artifact. The committed
// BENCH_*.json files in the repo root are its output; CI runs it in
// smoke form and fails on any run or parse error.
//
// Usage:
//
//	go run ./cmd/bench -cases bubble -presets smoke,bench -ranks 1,2 \
//	    -pcs bjacobi,jacobi,gmg -steps 3 -out BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/scenario"
)

// runRecord is one sweep point: the configuration axes plus the full
// stats payload the run produced.
type runRecord struct {
	Case       string        `json:"case"`
	Preset     string        `json:"preset"`
	Ranks      int           `json:"ranks"`
	VecWorkers int           `json:"vec_workers"`
	PC         string        `json:"pc"`
	Steps      int           `json:"steps"`
	WallMS     float64       `json:"wall_ms"`
	Stats      core.RunStats `json:"stats"`
}

// gobenchRecord is one parsed `go test -bench` result line: the
// benchmark name, its iteration count, and every value/unit metric pair
// (ns/op, B/op, allocs/op, and any b.ReportMetric custom units).
type gobenchRecord struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Schema  string          `json:"schema"`
	Runs    []runRecord     `json:"runs"`
	Gobench []gobenchRecord `json:"gobench,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitCSV(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in list %q", f, s)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	cases := flag.String("cases", "bubble", "comma-separated scenario names")
	presets := flag.String("presets", "smoke", "comma-separated presets (smoke,bench,full)")
	ranksList := flag.String("ranks", "1", "comma-separated rank counts")
	vecWorkers := flag.String("vec-workers", "0", "comma-separated vector-shard worker counts (0: auto)")
	pcs := flag.String("pcs", "bjacobi", "comma-separated NS/PP preconditioners (bjacobi,jacobi,gmg)")
	steps := flag.Int("steps", 3, "time steps per sweep point")
	gobench := flag.String("gobench", "", "also run `go test -bench <regexp>` on the root package and record its metrics")
	out := flag.String("out", "BENCH.json", "output JSON path")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to gate against; exit 1 on wall-clock or Krylov-iteration regressions")
	tol := flag.Float64("tol", 0.35, "relative wall-clock noise bound for -baseline (0.35 = fail beyond +35%)")
	wallFloor := flag.Float64("wall-floor", 25, "absolute wall-clock slack in ms added on top of -tol (scheduler jitter dominates short smoke runs)")
	iterTol := flag.Float64("iter-tol", 0.5, "absolute slack on mean Krylov iterations per stage for -baseline")
	flag.Parse()

	ranks, err := splitInts(*ranksList)
	if err != nil {
		fatal(err)
	}
	workers, err := splitInts(*vecWorkers)
	if err != nil {
		fatal(err)
	}
	// Validate every axis up front so a typo fails before the first
	// (possibly long) run, not after it.
	for _, pc := range splitCSV(*pcs) {
		if !chns.ValidPC(pc) {
			fatal(fmt.Errorf("unknown preconditioner %q (valid: %s, %s, %s)", pc, chns.PCBJacobi, chns.PCJacobi, chns.PCGMG))
		}
	}
	for _, name := range splitCSV(*cases) {
		if _, ok := scenario.Get(name); !ok {
			fatal(fmt.Errorf("unknown scenario %q (registered: %v)", name, scenario.Names()))
		}
	}
	var prs []scenario.Preset
	for _, p := range splitCSV(*presets) {
		pr, err := scenario.ParsePreset(p)
		if err != nil {
			fatal(err)
		}
		prs = append(prs, pr)
	}

	file := benchFile{Schema: "proteus-bench/v1"}
	for _, name := range splitCSV(*cases) {
		sc, _ := scenario.Get(name)
		for _, pr := range prs {
			for _, r := range ranks {
				for _, nw := range workers {
					for _, pc := range splitCSV(*pcs) {
						rec, err := runOne(sc, pr, r, nw, pc, *steps)
						if err != nil {
							fatal(fmt.Errorf("%s/%s ranks=%d vw=%d pc=%s: %v", name, pr, r, nw, pc, err))
						}
						file.Runs = append(file.Runs, rec)
						fmt.Printf("%-10s %-6s ranks=%d vw=%d pc=%-8s wall=%8.1fms  ns-its=%.2f pp-its=%.2f\n",
							name, pr, r, nw, pc, rec.WallMS,
							rec.Stats.KrylovIters["ns"].Mean, rec.Stats.KrylovIters["pp"].Mean)
					}
				}
			}
		}
	}

	if *gobench != "" {
		gb, err := runGobench(*gobench)
		if err != nil {
			fatal(err)
		}
		file.Gobench = gb
		for _, g := range gb {
			fmt.Printf("gobench %s: %v\n", g.Name, g.Metrics)
		}
	}

	if err := core.WriteStatsJSON(*out, file); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d runs, %d gobench results)\n", *out, len(file.Runs), len(file.Gobench))

	if *baseline != "" {
		if err := checkBaseline(file, *baseline, *tol, *wallFloor, *iterTol); err != nil {
			fatal(err)
		}
	}
}

// runKey identifies a sweep point across bench files for baseline
// matching.
type runKey struct {
	Case, Preset, PC         string
	Ranks, VecWorkers, Steps int
}

func (r runRecord) key() runKey {
	return runKey{Case: r.Case, Preset: r.Preset, PC: r.PC, Ranks: r.Ranks, VecWorkers: r.VecWorkers, Steps: r.Steps}
}

func (k runKey) String() string {
	return fmt.Sprintf("%s/%s ranks=%d vw=%d pc=%s steps=%d", k.Case, k.Preset, k.Ranks, k.VecWorkers, k.PC, k.Steps)
}

// checkBaseline is the regression gate: every sweep point present in
// both the current run and the committed baseline must be no slower
// than baseline wall clock times (1+tol), plus wallFloor ms of absolute
// slack (short smoke runs jitter by a fixed amount, not a fraction),
// and no worse than iterTol extra mean Krylov iterations in any stage.
// Iteration counts are the noise-free signal — a preconditioner
// regression shows up there even when wall clock hides inside the
// tolerance. Sweep points in only one of the two files are reported but
// never fail the gate, so the grid can grow without re-baselining.
func checkBaseline(cur benchFile, path string, tol, wallFloor, iterTol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %v", err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	baseBy := make(map[runKey]runRecord, len(base.Runs))
	for _, r := range base.Runs {
		baseBy[r.key()] = r
	}

	var regressions []string
	matched := 0
	for _, r := range cur.Runs {
		b, ok := baseBy[r.key()]
		if !ok {
			fmt.Printf("baseline: %s not in %s, skipping\n", r.key(), path)
			continue
		}
		matched++
		delete(baseBy, r.key())
		if limit := b.WallMS*(1+tol) + wallFloor; r.WallMS > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: wall %.1fms > %.1fms (baseline %.1fms +%.0f%% +%.0fms)",
				r.key(), r.WallMS, limit, b.WallMS, tol*100, wallFloor))
		}
		for stage, bi := range b.Stats.KrylovIters {
			ci, ok := r.Stats.KrylovIters[stage]
			if !ok {
				regressions = append(regressions, fmt.Sprintf(
					"%s: stage %q present in baseline but missing from run", r.key(), stage))
				continue
			}
			if ci.Mean > bi.Mean+iterTol {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s iterations %.2f > baseline %.2f (+%.1f allowed)",
					r.key(), stage, ci.Mean, bi.Mean, iterTol))
			}
		}
	}
	for k := range baseBy {
		fmt.Printf("baseline: %s in %s was not exercised by this sweep\n", k, path)
	}
	if matched == 0 {
		return fmt.Errorf("baseline %s: no sweep point matched the current grid", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("baseline %s: %d regression(s):\n  %s",
			path, len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("baseline %s: %d run(s) within tolerance (wall +%.0f%%+%.0fms, iters +%.1f)\n",
		path, matched, tol*100, wallFloor, iterTol)
	return nil
}

// runOne executes a single sweep point and returns its record. Any
// panic inside the rank group (a diverged stage, a bad config) is
// surfaced as an error rather than killing the whole sweep harness.
func runOne(sc scenario.Scenario, pr scenario.Preset, ranks, nw int, pc string, steps int) (rec runRecord, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	spec := sc.Build(pr)
	spec.Config.Opt.PCNS, spec.Config.Opt.PCPP = pc, pc
	if nw > 0 {
		spec.Config.Opt.VecWorkers = nw
	}
	rec = runRecord{Case: sc.Name, Preset: string(pr), Ranks: ranks, VecWorkers: nw, PC: pc, Steps: steps}
	par.Run(ranks, func(c *par.Comm) {
		sim := sc.NewFromSpec(c, pr, spec)
		res, rerr := sim.RunUntil(core.RunOptions{Steps: steps})
		if rerr != nil {
			panic(rerr)
		}
		st := sim.Stats()
		if c.Rank() == 0 {
			rec.WallMS = float64(res.Wall.Microseconds()) / 1e3
			rec.Stats = st
		}
	})
	return rec, nil
}

// runGobench shells out to `go test -bench` on the root package with a
// single timed iteration and parses every result line. A line that
// starts with "Benchmark" but does not parse is an error, as is a
// regexp matching nothing — CI runs this to keep the bench surface and
// this parser honest.
func runGobench(re string) ([]gobenchRecord, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", re, "-benchtime", "1x", "-benchmem", ".")
	outb, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %q: %v\n%s", re, err, outb)
	}
	var recs []gobenchRecord
	for _, line := range strings.Split(string(outb), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, perr := parseBenchLine(line)
		if perr != nil {
			return nil, perr
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("go test -bench %q matched no benchmarks", re)
	}
	return recs, nil
}

// parseBenchLine parses one testing-package benchmark result line:
//
//	BenchmarkName-8   1   123456 ns/op   12 B/op   3 allocs/op   5.00 extra-its
//
// i.e. name, iteration count, then value/unit pairs.
func parseBenchLine(line string) (gobenchRecord, error) {
	f := strings.Fields(line)
	if len(f) < 2 || len(f)%2 != 0 {
		return gobenchRecord{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return gobenchRecord{}, fmt.Errorf("benchmark line %q: bad iteration count %q", line, f[1])
	}
	rec := gobenchRecord{Name: f[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return gobenchRecord{}, fmt.Errorf("benchmark line %q: bad metric value %q", line, f[i])
		}
		rec.Metrics[f[i+1]] = v
	}
	return rec, nil
}
