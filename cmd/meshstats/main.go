// Command meshstats prints the Fig. 9 level-census statistics for a
// feature-refined jet-atomization mesh: the fraction of elements per
// octree level, and the domain volume fraction covered by the finest
// level (≈0.01% in the paper at level 15 — tiny here too, at a reduced
// depth).
//
//	go run ./cmd/meshstats -fine 7
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"proteus/internal/octree"
	"proteus/internal/sfc"
)

func main() {
	bulk := flag.Int("bulk", 2, "bulk refinement level")
	iface := flag.Int("interface", 5, "interface refinement level")
	fine := flag.Int("fine", 7, "feature refinement level (thinning necks)")
	flag.Parse()

	tr := octree.Build(3, func(o sfc.Octant) bool {
		if int(o.Level) < *bulk {
			return true
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		z := float64(o.Z)/float64(sfc.MaxCoord) + s/2
		r := math.Hypot(y-0.5, z-0.5)
		rad := 0.1 + 0.035*math.Cos(4*math.Pi*x)
		dist := math.Abs(r - rad)
		switch {
		case int(o.Level) < *iface:
			return dist < 0.08
		case int(o.Level) < *fine:
			// The detector refines deepest at the thinning necks.
			return dist < 0.02 && math.Abs(math.Cos(4*math.Pi*x)+1) < 0.25
		default:
			return false
		}
	}, *fine, nil).Balance21(nil)

	lmin, lmax := tr.MinMaxLevel()
	fmt.Printf("jet mesh: %d elements, levels %d..%d\n\n", tr.Len(), lmin, lmax)
	fmt.Println("Fig. 9 — element fraction per level:")
	h := tr.LevelHistogram()
	for l, f := range h {
		if f == 0 {
			continue
		}
		fmt.Printf("  level %2d: %6.3f %s\n", l, f, strings.Repeat("#", int(f*60)))
	}
	fmt.Println("\nvolume fraction per level:")
	for l := range h {
		if h[l] == 0 {
			continue
		}
		v := tr.VolumeFractionAtLevel(l)
		fmt.Printf("  level %2d: %8.4f%%\n", l, v*100)
	}
	fmt.Println("\nPaper shape: max element fraction at the finest level, which")
	fmt.Println("nevertheless covers a vanishing volume fraction — the essence of")
	fmt.Println("why adaptivity makes the 35-trillion-point run feasible.")
}
