// Command proteus is the simulation driver: a thin CLI over the scenario
// registry and the core run loop. It runs any registered case at a size
// preset on a chosen number of in-process ranks, with periodic VTK
// output, periodic checkpointing, restart from a checkpoint (at any rank
// count), machine-readable run stats, and the Table II configuration
// printout.
//
//	go run ./cmd/proteus -list
//	go run ./cmd/proteus -case bubble -preset bench -steps 10 -ranks 4 -out out/bubble
//	go run ./cmd/proteus -case jet -preset smoke -steps 4 -ckpt out/ck/jet -ckpt-every 2
//	go run ./cmd/proteus -restart out/ck/jet -steps 4 -ranks 2
//	go run ./cmd/proteus -table2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"proteus/internal/chns"
	"proteus/internal/ckpt"
	"proteus/internal/core"
	"proteus/internal/fault"
	"proteus/internal/par"
	"proteus/internal/scenario"
)

func main() {
	caseName := flag.String("case", "bubble", "registered scenario (see -list)")
	preset := flag.String("preset", "bench", "size preset: smoke | bench | full")
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 8, "time steps to advance in this run")
	wall := flag.Duration("wall", 0, "wall-clock budget (0 = none)")
	out := flag.String("out", "", "VTK output base path (empty disables)")
	vtkEvery := flag.Int("vtk-every", 0, "write VTK every n steps (0: only once at the end when -out is set)")
	ckptBase := flag.String("ckpt", "", "checkpoint base path (empty disables)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint every n steps (0: only once at the end when -ckpt is set)")
	ckptRetain := flag.Int("ckpt-retain", 3, "snapshot generations to keep under -ckpt (0: keep all)")
	restart := flag.String("restart", "", "restart from this checkpoint base (scenario and preset come from its meta; resolves to the newest intact generation)")
	maxRetries := flag.Int("max-retries", 3, "per-step retries after a solver divergence, each at half the dt (0: fail fast)")
	faults := flag.String("faults", "", "deterministic fault injection spec: point@step[-hi][/stage][/rank=N][/count=N], points ksp|nan|ckpt, entries ';'-separated (testing)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for randomized fault step ranges")
	statsJSON := flag.String("stats-json", "", "dump machine-readable run stats (timers, elem counts, remesh counts) to this path")
	table2 := flag.Bool("table2", false, "print the Table II solver configuration and exit")
	localCahn := flag.Bool("localcahn", true, "enable local-Cahn detection where the scenario uses it")
	vecWorkers := flag.Int("vec-workers", 0, "RHS vector-assembly shards (0: match the matrix element loop, 1: serial ablation; results are bitwise identical at any value)")
	pc := flag.String("pc", "", "NS/PP preconditioner: bjacobi (default) | jacobi | gmg (octree geometric multigrid)")
	warmStarts := flag.Bool("warm-starts", false, "seed the PP/VU Krylov solves from the previous (migrated) solution; same converged tolerance, fewer iterations after remeshes")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	flag.Parse()

	if !chns.ValidPC(*pc) {
		fatal(fmt.Errorf("unknown -pc %q (known: bjacobi, jacobi, gmg)", *pc))
	}
	if *table2 {
		printTable2(*pc)
		return
	}
	if *list {
		for _, n := range scenario.Names() {
			fmt.Println(n)
		}
		return
	}

	name, pr := *caseName, scenario.Preset(*preset)
	var meta ckpt.Meta
	restartBase := ""
	if *restart != "" {
		// Resolve the base to the newest intact snapshot generation,
		// walking past corrupt or truncated ones.
		var err error
		if meta, restartBase, err = ckpt.ReadLatestGood(*restart); err != nil {
			fatal(err)
		}
		name = meta.Scenario
		if name == "" {
			fatal(fmt.Errorf("checkpoint %s does not name a scenario; cannot rebuild its config", *restart))
		}
		if pr, err = scenario.ParsePreset(meta.Preset); err != nil {
			fatal(fmt.Errorf("checkpoint %s: %v", *restart, err))
		}
	} else if _, err := scenario.ParsePreset(*preset); err != nil {
		fatal(err)
	}
	sc, ok := scenario.Get(name)
	if !ok {
		fatal(fmt.Errorf("unknown scenario %q (registered: %v)", name, scenario.Names()))
	}
	spec := sc.Build(pr)
	if *restart != "" {
		// Reproduce the writing run's effective detection setting, not
		// the registry default — a -localcahn override must survive the
		// restart or the resumed trajectory silently changes physics.
		spec.Config.LocalCahn = meta.LocalCahn
	}
	if !*localCahn {
		spec.Config.LocalCahn = false
	}
	if *vecWorkers > 0 {
		spec.Config.Opt.VecWorkers = *vecWorkers
	}
	if *pc != "" {
		// A solver-path knob like -vec-workers: applies on restart too (the
		// checkpoint stores state, not preconditioner choice).
		spec.Config.Opt.PCNS = *pc
		spec.Config.Opt.PCPP = *pc
	}
	if *warmStarts {
		spec.Config.Opt.WarmStarts = true
	}

	par.Run(*ranks, func(c *par.Comm) {
		var sim *core.Simulation
		if *restart != "" {
			var err error
			sim, err = core.Restore(c, spec.Config, restartBase)
			if err != nil {
				panic(err)
			}
		} else {
			sim = sc.NewFromSpec(c, pr, spec)
		}
		if *faults != "" {
			inj, err := fault.Parse(*faults, *faultSeed, c.Rank())
			if err != nil {
				panic(err)
			}
			sim.Fault = inj
		}
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Printf("%s/%s initial: %s\n", name, pr, desc)
		}
		res, err := sim.RunUntil(core.RunOptions{
			Steps:      *steps,
			MaxWall:    *wall,
			CkptEvery:  *ckptEvery,
			CkptBase:   *ckptBase,
			FinalCkpt:  *ckptBase != "",
			CkptRetain: *ckptRetain,
			MaxRetries: *maxRetries,
			VTKEvery:   *vtkEvery,
			VTKBase:    *out,
			FinalVTK:   *out != "",
			OnStep: func(s *core.Simulation) {
				d := s.Describe()
				if c.Rank() == 0 {
					fmt.Println(d)
				}
			},
		})
		if err != nil {
			panic(err)
		}
		st := sim.Stats()
		if c.Rank() == 0 {
			tm := st.Timers
			fmt.Printf("ran %d steps (%s) in %v; stage totals: CH=%v NS=%v PP=%v VU=%v remesh=%v (remeshes=%d, partition-only=%d)\n",
				res.StepsDone, res.Stopped, res.Wall.Round(time.Millisecond),
				tm.CH.Total, tm.NS.Total, tm.PP.Total, tm.VU.Total, tm.Remesh.Total,
				st.RemeshCount, st.PartitionOnlyRounds)
			if *out != "" {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
			if *ckptBase != "" {
				fmt.Printf("checkpoint at %s (step %d)\n", *ckptBase, st.Step)
			}
			if st.Retries > 0 || st.CkptFallbacks > 0 {
				fmt.Printf("recovered from %d divergences (%d retries, %d checkpoint fallbacks)\n",
					len(st.Recovery), st.Retries, st.CkptFallbacks)
				for _, ev := range st.Recovery {
					fmt.Printf("  step %d: %s/%s -> dt %g (retry %d)\n", ev.Step, ev.Stage, ev.Kind, ev.Dt, ev.Retry)
				}
			}
			if *statsJSON != "" {
				if err := core.WriteStatsJSON(*statsJSON, st); err != nil {
					panic(err)
				}
				fmt.Printf("wrote %s\n", *statsJSON)
			}
		}
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "proteus:", err)
	os.Exit(2)
}

func printTable2(pc string) {
	nspp := pc
	if nspp == "" {
		nspp = "bjacobi"
	}
	fmt.Println("Table II — solver and preconditioner per stage (as configured):")
	fmt.Printf("%-10s %-8s %-10s\n", "stage", "solver", "pc")
	fmt.Printf("%-10s %-8s %-10s\n", "CH solve", "bcgs", "bjacobi")
	fmt.Printf("%-10s %-8s %-10s\n", "NS solve", "bcgs", nspp)
	fmt.Printf("%-10s %-8s %-10s\n", "PP solve", "ibcgs", nspp)
	fmt.Printf("%-10s %-8s %-10s\n", "VU solve", "cg", "jacobi")
	fmt.Println("\nTolerances: linear 1e-8, nonlinear 1e-10 (paper Sec. IV-D).")
}
