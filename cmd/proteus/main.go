// Command proteus is the simulation driver: it runs one of the built-in
// cases (rising bubble, swirling-flow validation, jet atomization) on a
// chosen number of in-process ranks, optionally writing ParaView output,
// and can print the Table II solver configuration.
//
//	go run ./cmd/proteus -case bubble -steps 10 -ranks 4 -out out/bubble
//	go run ./cmd/proteus -table2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/vtk"
)

func main() {
	caseName := flag.String("case", "bubble", "bubble | swirl | jet")
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 8, "time steps")
	out := flag.String("out", "", "VTK output base path (empty disables)")
	table2 := flag.Bool("table2", false, "print the Table II solver configuration and exit")
	localCahn := flag.Bool("localcahn", true, "enable local-Cahn detection where applicable")
	flag.Parse()

	if *table2 {
		printTable2()
		return
	}

	cfg, phi0 := buildCase(*caseName, *localCahn)
	par.Run(*ranks, func(c *par.Comm) {
		sim := core.New(c, cfg, phi0)
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Println("initial:", desc)
		}
		for i := 0; i < *steps; i++ {
			sim.Step()
			desc = sim.Describe()
			if c.Rank() == 0 {
				fmt.Println(desc)
			}
		}
		tm := sim.Timers()
		if c.Rank() == 0 {
			fmt.Printf("stage totals: CH=%v NS=%v PP=%v VU=%v remesh=%v (remeshes=%d)\n",
				tm.CH.Total, tm.NS.Total, tm.PP.Total, tm.VU.Total, tm.Remesh.Total, sim.RemeshCount)
		}
		if *out != "" {
			m := sim.Mesh
			phi := m.NewVec(1)
			for i := 0; i < m.NumLocal; i++ {
				phi[i] = sim.Solver.PhiMu[2*i]
			}
			if err := vtk.Write(m, *out, []vtk.Field{
				{Name: "phi", Ndof: 1, Data: phi},
				{Name: "velocity", Ndof: m.Dim, Data: sim.Solver.Vel},
				{Name: "pressure", Ndof: 1, Data: sim.Solver.P},
				{Name: "cahn", Ndof: 1, Data: sim.Solver.ElemCn, Elemental: true},
			}); err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
		}
	})
}

func buildCase(name string, localCahn bool) (core.Config, func(x, y, z float64) float64) {
	switch name {
	case "bubble":
		p := chns.DefaultParams()
		p.Cn = 0.05
		p.Fr = 0.3
		p.RhoMinus = 0.1
		p.We = 50
		cfg := core.Config{
			Dim: 2, Params: p, Opt: chns.DefaultOptions(1e-3),
			BulkLevel: 3, InterfaceLevel: 6, RemeshEvery: 2,
		}
		return cfg, func(x, y, z float64) float64 {
			return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.3)-0.15, p.Cn)
		}
	case "swirl":
		p := chns.DefaultParams()
		p.Cn = 0.02
		p.Pe = 1000
		cfg := core.Config{
			Dim: 2, Params: p, Opt: chns.DefaultOptions(2.5e-3),
			BulkLevel: 3, InterfaceLevel: 5, FineLevel: 6,
			LocalCahn: localCahn, FineCn: 0.008, Delta: -0.5,
			RemeshEvery: 4,
			PrescribedVel: func(x, y, z, t float64) (float64, float64, float64) {
				sx := math.Sin(math.Pi * x)
				sy := math.Sin(math.Pi * y)
				return 2 * sx * sx * sy * math.Cos(math.Pi*y), -2 * sx * math.Cos(math.Pi*x) * sy * sy, 0
			},
		}
		return cfg, func(x, y, z float64) float64 {
			return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.75)-0.15, p.Cn)
		}
	case "jet":
		p := chns.DefaultParams()
		p.Cn = 0.05
		p.Re = 200
		p.We = 20
		p.Pe = 500
		p.RhoMinus = 0.05
		p.EtaMinus = 0.05
		cfg := core.Config{
			Dim: 3, Params: p, Opt: chns.DefaultOptions(1e-3),
			BulkLevel: 2, InterfaceLevel: 4, FineLevel: 5,
			LocalCahn: localCahn, FineCn: 0.02, Delta: -0.5,
			RemeshEvery: 2,
		}
		return cfg, func(x, y, z float64) float64 {
			r := math.Hypot(y-0.5, z-0.5)
			return chns.EquilibriumProfile(r-(0.10+0.035*math.Cos(4*math.Pi*x)), p.Cn)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown case %q (want bubble|swirl|jet)\n", name)
		os.Exit(2)
		return core.Config{}, nil
	}
}

func printTable2() {
	fmt.Println("Table II — solver and preconditioner per stage (as configured):")
	fmt.Printf("%-10s %-8s %-10s\n", "stage", "solver", "pc")
	fmt.Printf("%-10s %-8s %-10s\n", "CH solve", "bcgs", "bjacobi")
	fmt.Printf("%-10s %-8s %-10s\n", "NS solve", "bcgs", "bjacobi")
	fmt.Printf("%-10s %-8s %-10s\n", "PP solve", "ibcgs", "bjacobi")
	fmt.Printf("%-10s %-8s %-10s\n", "VU solve", "cg", "jacobi")
	fmt.Println("\nTolerances: linear 1e-8, nonlinear 1e-10 (paper Sec. IV-D).")
}
