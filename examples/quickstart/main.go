// Quickstart: a 2D rising bubble on an adaptive octree mesh, run on 4
// in-process ranks, with VTK output you can open in ParaView.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"math"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/vtk"
)

func main() {
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 10, "time steps")
	out := flag.String("out", "out/quickstart", "VTK output base path (empty to disable)")
	flag.Parse()

	p := chns.DefaultParams()
	p.Cn = 0.05
	p.Fr = 0.3       // strong gravity: the bubble rises visibly
	p.RhoMinus = 0.1 // light bubble in heavy fluid
	p.We = 50

	cfg := core.Config{
		Dim: 2, Params: p, Opt: chns.DefaultOptions(1e-3),
		BulkLevel: 3, InterfaceLevel: 6,
		RemeshEvery: 2,
	}

	par.Run(*ranks, func(c *par.Comm) {
		sim := core.New(c, cfg, func(x, y, z float64) float64 {
			// φ=-1 inside the bubble (light), +1 outside (heavy).
			return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.3)-0.15, p.Cn)
		})
		// Describe is collective: every rank must call it.
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Println("initial:", desc)
		}
		for i := 0; i < *steps; i++ {
			sim.Step()
			desc = sim.Describe()
			if c.Rank() == 0 {
				fmt.Println(desc)
			}
		}
		if *out != "" {
			writeFields(sim, *out)
			if c.Rank() == 0 {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
		}
		tm := sim.Timers()
		if c.Rank() == 0 {
			fmt.Printf("stage totals: CH=%v NS=%v PP=%v VU=%v remesh=%v (remeshes=%d)\n",
				tm.CH.Total, tm.NS.Total, tm.PP.Total, tm.VU.Total, tm.Remesh.Total, sim.RemeshCount)
		}
	})
}

func writeFields(sim *core.Simulation, base string) {
	m := sim.Mesh
	phi := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		phi[i] = sim.Solver.PhiMu[2*i]
	}
	if err := vtk.Write(m, base, []vtk.Field{
		{Name: "phi", Ndof: 1, Data: phi},
		{Name: "velocity", Ndof: m.Dim, Data: sim.Solver.Vel},
		{Name: "pressure", Ndof: 1, Data: sim.Solver.P},
		{Name: "cahn", Ndof: 1, Data: sim.Solver.ElemCn, Elemental: true},
	}); err != nil {
		panic(err)
	}
}
