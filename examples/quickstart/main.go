// Quickstart: the registered "bubble" scenario — a 2D rising bubble on an
// adaptive octree mesh — run on 4 in-process ranks through the shared run
// loop, with VTK output you can open in ParaView.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"

	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/scenario"
)

func main() {
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 10, "time steps")
	out := flag.String("out", "out/quickstart", "VTK output base path (empty to disable)")
	flag.Parse()

	sc, _ := scenario.Get("bubble")
	par.Run(*ranks, func(c *par.Comm) {
		sim := sc.New(c, scenario.Bench)
		// Describe is collective: every rank must call it.
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Println("initial:", desc)
		}
		if _, err := sim.RunUntil(core.RunOptions{
			Steps:   *steps,
			VTKBase: *out, FinalVTK: *out != "",
			OnStep: func(s *core.Simulation) {
				d := s.Describe()
				if c.Rank() == 0 {
					fmt.Println(d)
				}
			},
		}); err != nil {
			panic(err)
		}
		tm := sim.Timers()
		if c.Rank() == 0 {
			if *out != "" {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
			fmt.Printf("stage totals: CH=%v NS=%v PP=%v VU=%v remesh=%v (remeshes=%d)\n",
				tm.CH.Total, tm.NS.Total, tm.PP.Total, tm.VU.Total, tm.Remesh.Total, sim.RemeshCount)
		}
	})
}
