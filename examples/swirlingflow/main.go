// Swirling-flow validation (Fig. 5 of the paper): a drop advected by the
// single-vortex field ψ = (1/π) sin²(πx) sin²(πy) stretches into a thin
// spiralling filament. Insufficient interface resolution produces
// artificial numerical breakup; the local-Cahn technique prevents it at a
// fraction of the uniformly fine cost.
//
// Three configurations are compared, exactly as in the paper's figure,
// all derived from the registered "swirl" scenario (whose bench preset is
// the local-Cahn case):
//
//	coarse : constant Cn, interface at the coarse level  -> breaks up
//	fine   : constant Cn/2.5, interface one level deeper -> intact, slow
//	local  : coarse everywhere, fine only where detected -> intact, cheap
//
//	go run ./examples/swirlingflow -steps 40
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/scenario"
)

type result struct {
	name      string
	drops     int
	elems     int64
	elapsed   time.Duration
	massDrift float64
}

func run(name string, ranks, steps, interfaceLevel, fineLevel int, cn, fineCn float64, local bool) result {
	sc, _ := scenario.Get("swirl")
	sp := sc.Build(scenario.Bench)
	sp.Config.InterfaceLevel, sp.Config.FineLevel = interfaceLevel, fineLevel
	sp.Config.LocalCahn = local
	sp.Config.Params.Cn, sp.Config.FineCn = cn, fineCn
	sp.Phi0 = func(x, y, z float64) float64 {
		// Drop of radius 0.15 at (0.5, 0.75), as in Guo et al.
		return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.75)-0.15, cn)
	}
	var res result
	res.name = name
	par.Run(ranks, func(c *par.Comm) {
		sim := sc.NewFromSpec(c, scenario.Bench, sp)
		m0 := sim.Solver.PhiMass()
		r, err := sim.RunUntil(core.RunOptions{Steps: steps})
		if err != nil {
			panic(err)
		}
		elems := sim.GlobalElems()
		drift := math.Abs(sim.Solver.PhiMass()-m0) / math.Abs(m0)
		drops := sim.CountDrops(-0.3)
		if c.Rank() == 0 {
			res.elapsed = r.Wall
			res.elems = elems
			res.massDrift = drift
			res.drops = drops
		}
	})
	return res
}

func main() {
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 32, "time steps")
	flag.Parse()

	// Levels scaled down from the paper's 9/12 to laptop scale 5/6.
	coarse := run("coarse Cn", *ranks, *steps, 5, 5, 0.02, 0.02, false)
	fine := run("fine Cn", *ranks, *steps, 6, 6, 0.008, 0.008, false)
	local := run("local Cn", *ranks, *steps, 5, 6, 0.02, 0.008, true)

	fmt.Println("\nFig. 5 reproduction — swirling-flow drop stretching:")
	fmt.Printf("%-10s %8s %10s %12s %10s\n", "case", "drops", "elements", "time", "massdrift")
	for _, r := range []result{coarse, fine, local} {
		fmt.Printf("%-10s %8d %10d %12v %10.2e\n", r.name, r.drops, r.elems, r.elapsed.Round(time.Millisecond), r.massDrift)
	}
	fmt.Println("\nExpected shape (paper): the coarse case fragments (drops > 1);")
	fmt.Println("fine and local stay intact (1 drop), with local costing a")
	fmt.Println("fraction of fine (the paper reports 4 vs 44 node-hours).")
}
