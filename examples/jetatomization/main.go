// Jet atomization (Sec. V of the paper, scaled to laptop size): a 3D
// liquid ligament with an axial velocity perturbation breaks into
// droplets; the erosion/dilation detector finds the thinning neck and
// shed droplets and the remesher refines them several levels in one pass.
// The paper runs this at octree level 15 (35 trillion uniform-grid
// points) on Frontera; here levels 3-6 exercise the identical code path.
//
//	go run ./examples/jetatomization -steps 6
package main

import (
	"flag"
	"fmt"
	"math"

	"proteus/internal/chns"
	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/vtk"
)

func main() {
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 6, "time steps")
	out := flag.String("out", "out/jet", "VTK output base (empty to disable)")
	flag.Parse()

	p := chns.DefaultParams()
	p.Cn = 0.05
	p.Re = 200
	p.We = 20
	p.Pe = 500
	p.RhoMinus = 0.05 // dense liquid jet in light gas
	p.EtaMinus = 0.05

	cfg := core.Config{
		Dim: 3, Params: p, Opt: chns.DefaultOptions(1e-3),
		BulkLevel: 2, InterfaceLevel: 4, FineLevel: 5,
		LocalCahn: true, FineCn: 0.02,
		Delta:       -0.5,
		RemeshEvery: 2,
	}

	// Liquid core: a cylinder along x with a varicose radius perturbation
	// (the classic Rayleigh-Plateau seed), φ=-1 inside the liquid.
	radius := func(x float64) float64 {
		return 0.10 + 0.035*math.Cos(4*math.Pi*x)
	}
	phi0 := func(x, y, z float64) float64 {
		r := math.Hypot(y-0.5, z-0.5)
		return chns.EquilibriumProfile(r-radius(x), p.Cn)
	}

	par.Run(*ranks, func(c *par.Comm) {
		sim := core.New(c, cfg, phi0)
		// Axial shear: the core moves in +x.
		sim.Solver.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
			r := math.Hypot(y-0.5, z-0.5)
			ax := math.Exp(-r * r / 0.02)
			return 0.5 * ax, 0, 0
		})
		// Describe is collective: every rank must call it.
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Println("initial:", desc)
		}
		for i := 0; i < *steps; i++ {
			sim.Step()
			desc = sim.Describe()
			if c.Rank() == 0 {
				fmt.Println(desc)
			}
		}
		// Fig. 9: element fraction per level. (Collective calls happen on
		// every rank; only rank 0 prints.)
		h := sim.LevelHistogram()
		drops := sim.CountDrops(-0.3)
		if c.Rank() == 0 {
			fmt.Println("\nFig. 9 reproduction — element fraction per level:")
			for l, f := range h {
				if f > 0 {
					fmt.Printf("  level %2d: %6.3f  %s\n", l, f, bar(f))
				}
			}
			fmt.Printf("drops (connected components): %d\n", drops)
		}
		if *out != "" {
			m := sim.Mesh
			phi := m.NewVec(1)
			for i := 0; i < m.NumLocal; i++ {
				phi[i] = sim.Solver.PhiMu[2*i]
			}
			if err := vtk.Write(m, *out, []vtk.Field{
				{Name: "phi", Ndof: 1, Data: phi},
				{Name: "velocity", Ndof: 3, Data: sim.Solver.Vel},
				{Name: "cahn", Ndof: 1, Data: sim.Solver.ElemCn, Elemental: true},
			}); err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
		}
	})
}

func bar(f float64) string {
	n := int(f * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
