// Jet atomization (Sec. V of the paper, scaled to laptop size): the
// registered "jet" scenario — a 3D liquid ligament with an axial velocity
// perturbation breaks into droplets; the erosion/dilation detector finds
// the thinning neck and shed droplets and the remesher refines them
// several levels in one pass. The paper runs this at octree level 15 (35
// trillion uniform-grid points) on Frontera; the bench preset exercises
// the identical code path at levels 2-5.
//
//	go run ./examples/jetatomization -steps 6
package main

import (
	"flag"
	"fmt"

	"proteus/internal/core"
	"proteus/internal/par"
	"proteus/internal/scenario"
)

func main() {
	ranks := flag.Int("ranks", 4, "in-process ranks")
	steps := flag.Int("steps", 6, "time steps")
	out := flag.String("out", "out/jet", "VTK output base (empty to disable)")
	flag.Parse()

	sc, _ := scenario.Get("jet")
	par.Run(*ranks, func(c *par.Comm) {
		sim := sc.New(c, scenario.Bench)
		// Describe is collective: every rank must call it.
		desc := sim.Describe()
		if c.Rank() == 0 {
			fmt.Println("initial:", desc)
		}
		if _, err := sim.RunUntil(core.RunOptions{
			Steps:   *steps,
			VTKBase: *out, FinalVTK: *out != "",
			OnStep: func(s *core.Simulation) {
				d := s.Describe()
				if c.Rank() == 0 {
					fmt.Println(d)
				}
			},
		}); err != nil {
			panic(err)
		}
		// Fig. 9: element fraction per level. (Collective calls happen on
		// every rank; only rank 0 prints.)
		h := sim.LevelHistogram()
		drops := sim.CountDrops(-0.3)
		if c.Rank() == 0 {
			fmt.Println("\nFig. 9 reproduction — element fraction per level:")
			for l, f := range h {
				if f > 0 {
					fmt.Printf("  level %2d: %6.3f  %s\n", l, f, bar(f))
				}
			}
			fmt.Printf("drops (connected components): %d\n", drops)
			if *out != "" {
				fmt.Printf("wrote %s.pvtu\n", *out)
			}
		}
	})
}

func bar(f float64) string {
	n := int(f * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
