// Detection demo (Fig. 2 of the paper): the erosion/dilation pipeline
// identifies a small drop and a thin filament connecting two large blobs,
// while the blobs themselves are left alone. Prints ASCII maps of the
// thresholded field and the detected local-Cahn region.
//
//	go run ./examples/detection
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"proteus/internal/detect"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
)

func main() {
	level := flag.Int("level", 6, "uniform mesh level (grid 2^level per side)")
	flag.Parse()

	par.Run(1, func(c *par.Comm) {
		tr := octree.Uniform(2, *level)
		m := mesh.New(c, 2, tr.Leaves)

		// Scene: two large blobs, a thin filament between them, and a
		// small drop in the corner. φ=-1 inside features.
		sdf := func(x, y float64) float64 {
			blobA := math.Hypot(x-0.22, y-0.62) - 0.14
			blobB := math.Hypot(x-0.78, y-0.62) - 0.14
			fil := math.Abs(y-0.62) - 0.018
			if x < 0.22 || x > 0.78 {
				fil = 1
			}
			drop := math.Hypot(x-0.3, y-0.2) - 0.035
			return minF(blobA, blobB, fil, drop)
		}
		phi := m.NewVec(1)
		for i := 0; i < m.NumLocal; i++ {
			x, y, _ := m.NodeCoord(i)
			if sdf(x, y) < 0 {
				phi[i] = -1
			} else {
				phi[i] = 1
			}
		}
		res := detect.Identify(m, phi, detect.Config{
			Delta: -0.8, ErodeSteps: 3, DilateSteps: 5,
			CleanSteps: 0, PadSteps: 1, BaseLevel: *level,
		})
		fmt.Println("thresholded field T(φ) (# = immersed):")
		printElems(m, func(e int) bool {
			return res.Interface[e] || elemInside(m, phi, e)
		})
		fmt.Println("\ndetected local-Cahn region S(φ) (# = reduce Cn / refine):")
		printElems(m, func(e int) bool { return res.ReduceCahn[e] })
		fmt.Printf("\n%d of %d elements marked: the small drop and the thin\n",
			res.NumReduced, m.NumElems())
		fmt.Println("filament are detected; the large blobs survive erosion and are")
		fmt.Println("not marked (compare Fig. 2 of the paper).")
	})
}

func elemInside(m *mesh.Mesh, phi []float64, e int) bool {
	buf := make([]float64, m.CornersPerElem())
	m.GatherElem(e, phi, 1, buf)
	s := 0.0
	for _, v := range buf {
		s += v
	}
	return s < 0
}

// printElems renders the element grid (assumes a uniform 2D mesh).
func printElems(m *mesh.Mesh, marked func(e int) bool) {
	n := 1
	for n*n < m.NumElems() {
		n++
	}
	grid := make([][]byte, n)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", n))
	}
	for e := 0; e < m.NumElems(); e++ {
		ox, oy, _ := m.ElemOrigin(e)
		h := m.ElemSize(e)
		ix := int(ox / h)
		iy := int(oy / h)
		if marked(e) {
			grid[n-1-iy][ix] = '#'
		}
	}
	// Downsample to at most 64 columns for the terminal.
	stride := 1
	for n/stride > 64 {
		stride++
	}
	for r := 0; r < n; r += stride {
		var sb strings.Builder
		for cx := 0; cx < n; cx += stride {
			ch := byte('.')
			for dy := 0; dy < stride && r+dy < n; dy++ {
				for dx := 0; dx < stride && cx+dx < n; dx++ {
					if grid[r+dy][cx+dx] == '#' {
						ch = '#'
					}
				}
			}
			sb.WriteByte(ch)
		}
		fmt.Println(sb.String())
	}
}

func minF(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
