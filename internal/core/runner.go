package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"proteus/internal/chns"
	"proteus/internal/par"
	"proteus/internal/vtk"
)

// RunOptions bounds one RunUntil call and wires its periodic outputs.
// At least one of Steps and MaxWall must be set.
type RunOptions struct {
	// Steps is the step budget for this call (<= 0: unbounded, MaxWall
	// must then be set). On a restart this is the number of *additional*
	// steps, not the absolute step index.
	Steps int
	// MaxWall is the wall-clock budget; rank 0's clock decides and the
	// decision is broadcast, so every rank stops at the same step.
	MaxWall time.Duration

	// CkptEvery writes a checkpoint to CkptBase at every step whose
	// absolute index (Simulation.StepIndex) is a multiple of n (0: off).
	// Keying the cadence to the absolute index — not the steps done in
	// this call — makes a restarted run snapshot at exactly the same
	// steps as an uninterrupted one. FinalCkpt writes one after the loop
	// ends. Each write creates a step-stamped generation under CkptBase
	// (CkptBase-g<step>); ckpt.ReadLatestGood resolves the base back to
	// the newest intact one.
	CkptEvery int
	CkptBase  string
	FinalCkpt bool

	// VTKEvery writes the field set under VTKBase_sNNNNNN at every step
	// whose absolute index is a multiple of n (0: off), so restarted and
	// uninterrupted runs produce identical snapshot series; FinalVTK
	// writes once under VTKBase after the loop.
	VTKEvery int
	VTKBase  string
	FinalVTK bool

	// CkptRetain bounds the number of snapshot generations kept under
	// CkptBase (0: keep all). Each periodic checkpoint writes a fresh
	// generation (CkptBase-g<step>) and prunes the oldest beyond this.
	CkptRetain int

	// MaxRetries is the per-step retry budget for recoverable failures
	// (*chns.ErrDiverged): each retry rolls the state back to the
	// pre-step snapshot and halves dt (down to DtFloor). 0 disables
	// recovery — the first divergence fails the run.
	MaxRetries int
	// DtFloor bounds the back-off (default DtNominal/16).
	DtFloor float64
	// RelaxAfter is the clean-step streak after which a backed-off dt
	// doubles back toward nominal (default 4).
	RelaxAfter int
	// MaxCkptFallbacks bounds how many times an exhausted retry budget
	// may fall back to the last intact on-disk checkpoint under CkptBase
	// (default 1; < 0 disables the fallback).
	MaxCkptFallbacks int

	// OnStep runs after every step on every rank (collective calls are
	// safe inside it) — the hook for per-step stats and logging.
	OnStep func(s *Simulation)
}

// RunResult reports what a RunUntil call actually did.
type RunResult struct {
	StepsDone int
	Wall      time.Duration
	// Stopped is "steps" or "wall".
	Stopped string
}

// RunUntil owns the run loop every driver shares: it advances the
// simulation until the step or wall-clock budget is exhausted, firing
// periodic checkpoints, VTK dumps and the per-step callback.
//
// Recovery (MaxRetries > 0): every step is preceded by an in-memory
// state snapshot. A step failing with *chns.ErrDiverged rolls back to
// the snapshot and retries at half the dt (bounded by DtFloor); after
// RelaxAfter clean steps a backed-off dt doubles back toward nominal.
// When a step exhausts its retry budget, the run falls back to the last
// intact on-disk checkpoint under CkptBase (up to MaxCkptFallbacks
// times) and replays from there — the step budget is an absolute target
// computed at entry, so replayed steps do not shorten the run (StepsDone
// counts every successful step including replays). Exhaustion of the
// whole ladder returns *ErrRunFailed carrying the recovery history,
// which also accumulates on the Simulation for Stats. Collective.
func (s *Simulation) RunUntil(o RunOptions) (RunResult, error) {
	var res RunResult
	if o.Steps <= 0 && o.MaxWall <= 0 {
		return res, fmt.Errorf("core: RunUntil needs a step or wall-clock budget")
	}
	if o.CkptEvery > 0 && o.CkptBase == "" {
		return res, fmt.Errorf("core: RunUntil: CkptEvery set without CkptBase")
	}
	if o.VTKEvery > 0 && o.VTKBase == "" {
		return res, fmt.Errorf("core: RunUntil: VTKEvery set without VTKBase")
	}
	if s.DtNominal == 0 {
		s.DtNominal = s.Cfg.Opt.Dt
	}
	dtFloor := o.DtFloor
	if dtFloor == 0 {
		dtFloor = s.DtNominal / 16
	}
	relaxAfter := o.RelaxAfter
	if relaxAfter == 0 {
		relaxAfter = 4
	}
	maxFallbacks := o.MaxCkptFallbacks
	if maxFallbacks == 0 {
		maxFallbacks = 1
	}
	start := time.Now()
	lastCkpt := -1
	// The step budget is an absolute target: a checkpoint fallback
	// rewinds StepIndex, and the rewound steps must be replayed rather
	// than silently skipped.
	targetStep := -1
	if o.Steps > 0 {
		targetStep = s.StepIndex + o.Steps
	}
	var snap stepSnapshot
	retries := 0     // retries spent on the step currently being attempted
	cleanStreak := 0 // consecutive clean steps while dt is backed off
	fallbacks := 0
	for {
		if targetStep >= 0 && s.StepIndex >= targetStep {
			res.Stopped = "steps"
			break
		}
		if o.MaxWall > 0 {
			over := time.Since(start) >= o.MaxWall
			if par.Bcast(s.Comm, 0, over) {
				res.Stopped = "wall"
				break
			}
		}
		if o.MaxRetries > 0 {
			s.saveSnapshot(&snap)
		}
		if err := s.Step(); err != nil {
			var div *chns.ErrDiverged
			if o.MaxRetries <= 0 || !errors.As(err, &div) {
				return res, err
			}
			cleanStreak = 0
			if retries < o.MaxRetries {
				retries++
				s.rollback(&snap)
				dt := s.Cfg.Opt.Dt / 2
				if dt < dtFloor {
					dt = dtFloor
				}
				s.SetDt(dt)
				s.Retries++
				s.Recovery = append(s.Recovery, RecoveryEvent{
					Step: snap.stepIndex, Stage: string(div.Stage), Kind: div.Kind,
					Dt: dt, Retry: retries,
					Residual: div.Result.Residual, Iterations: div.Result.Iterations,
				})
				continue
			}
			// Retry budget exhausted: rewind to the last intact on-disk
			// snapshot and replay with a fresh budget at nominal dt.
			if o.CkptBase == "" || fallbacks >= maxFallbacks {
				return res, &ErrRunFailed{Step: snap.stepIndex, Err: err, Recovery: s.Recovery}
			}
			fallbacks++
			if rerr := s.restoreFromLatest(o.CkptBase); rerr != nil {
				return res, &ErrRunFailed{
					Step:     snap.stepIndex,
					Err:      fmt.Errorf("%v (checkpoint fallback also failed: %w)", err, rerr),
					Recovery: s.Recovery,
				}
			}
			s.SetDt(s.DtNominal)
			retries = 0
			s.CkptFallbacks++
			s.Recovery = append(s.Recovery, RecoveryEvent{
				Step: snap.stepIndex, Stage: string(div.Stage), Kind: "ckpt-fallback",
				Dt:       s.DtNominal,
				Residual: div.Result.Residual, Iterations: div.Result.Iterations,
			})
			continue
		}
		res.StepsDone++
		retries = 0
		if s.Cfg.Opt.Dt < s.DtNominal {
			cleanStreak++
			if cleanStreak >= relaxAfter {
				dt := s.Cfg.Opt.Dt * 2
				if dt > s.DtNominal {
					dt = s.DtNominal
				}
				s.SetDt(dt)
				cleanStreak = 0
			}
		}
		if o.OnStep != nil {
			o.OnStep(s)
		}
		// Cadences test the absolute step index, not StepsDone: a run
		// restarted mid-interval must keep snapshotting at the same
		// absolute steps as the uninterrupted run it resumes.
		if o.CkptEvery > 0 && s.StepIndex%o.CkptEvery == 0 {
			if err := s.CheckpointGeneration(o.CkptBase, o.CkptRetain); err != nil {
				return res, err
			}
			lastCkpt = s.StepIndex
		}
		if o.VTKEvery > 0 && s.StepIndex%o.VTKEvery == 0 {
			if err := s.WriteVTK(fmt.Sprintf("%s_s%06d", o.VTKBase, s.StepIndex)); err != nil {
				return res, err
			}
		}
	}
	res.Wall = time.Since(start)
	// Skip the final write when the periodic cadence just snapshotted
	// this very step — it would serialize identical state twice.
	if o.FinalCkpt && o.CkptBase != "" && lastCkpt != s.StepIndex {
		if err := s.CheckpointGeneration(o.CkptBase, o.CkptRetain); err != nil {
			return res, err
		}
	}
	if o.FinalVTK && o.VTKBase != "" {
		if err := s.WriteVTK(o.VTKBase); err != nil {
			return res, err
		}
	}
	return res, nil
}

// WriteVTK dumps the standard field set (φ, μ, velocity, pressure,
// elemental Cahn number) under path base. Collective.
func (s *Simulation) WriteVTK(base string) error {
	return vtk.WriteFields(s.Mesh, base, s.Solver.PhiMu, s.Solver.Vel, s.Solver.P, s.Solver.ElemCn)
}

// RunStats is the machine-readable run summary dumped by -stats-json:
// the accumulated stage timers (including the remesh sub-timers), global
// mesh size, remesh counts and the level histogram — the raw material of
// BENCH_*.json trajectories.
type RunStats struct {
	Scenario            string  `json:"scenario,omitempty"`
	Preset              string  `json:"preset,omitempty"`
	Ranks               int     `json:"ranks"`
	Step                int     `json:"step"`
	Time                float64 `json:"time"`
	GlobalElems         int64   `json:"global_elems"`
	GlobalDofs          int64   `json:"global_dofs"`
	RemeshCount         int     `json:"remesh_count"`
	RemeshRounds        int     `json:"remesh_rounds"`
	PartitionOnlyRounds int     `json:"partition_only_rounds"`
	// Incremental-remesh accounting (the full sub-timer split lives in
	// timers.RemeshStages): how many rounds took the ripple balance and
	// the mesh patch versus their from-scratch fallbacks, the total
	// ripple refine rounds, and the mean global dirty fraction the
	// incremental/full decision saw.
	IncrBalanceRounds  int `json:"incr_balance_rounds"`
	FullBalanceRounds  int `json:"full_balance_rounds"`
	IncrBuildRounds    int `json:"incr_build_rounds"`
	MigrateBuildRounds int `json:"migrate_build_rounds"`
	FullBuildRounds    int `json:"full_build_rounds"`
	// Why each full build ran; the four reasons sum to FullBuildRounds.
	FullPartitionRounds int     `json:"full_partition_rounds"`
	FullDisabledRounds  int     `json:"full_disabled_rounds"`
	FullDirtyRounds     int     `json:"full_dirty_rounds"`
	FullSplitterRounds  int     `json:"full_splitter_rounds"`
	RippleRounds        int     `json:"ripple_rounds"`
	DirtyFraction       float64 `json:"dirty_fraction"`
	// Remesh-aware multigrid refresh accounting: coarse ladder levels
	// reused / patched across hierarchy refreshes, transfer rows patched
	// through the element remap vs re-resolved by point location, and the
	// ILU(0) rows whose factorization index was carried vs rebuilt across
	// incremental rebinds.
	MGLevelsReused  int `json:"mg_levels_reused"`
	MGLevelsPatched int `json:"mg_levels_patched"`
	MGRowsPatched   int `json:"mg_rows_patched"`
	MGRowsResolved  int `json:"mg_rows_resolved"`
	PCRowsKept      int `json:"pc_rows_kept"`
	PCRowsRebuilt   int `json:"pc_rows_rebuilt"`
	// Post-remesh solves (the first full step after each remesh): how many
	// there were and the mean per-stage Krylov iteration count on them —
	// the numbers the warm-start path is judged by.
	PostRemeshSteps int                `json:"post_remesh_steps"`
	PostRemeshIters map[string]float64 `json:"post_remesh_iters_mean,omitempty"`
	LevelHistogram  []float64          `json:"level_histogram"`
	Timers          chns.Timers        `json:"timers"`
	// KrylovIters summarizes the per-stage linear-solver iteration counts
	// (keys "ch", "ns", "pp", "vu"), making preconditioner comparisons —
	// the GMG-vs-ILU0 iteration claim in particular — machine-checkable
	// from the stats dump alone.
	KrylovIters map[string]IterStats `json:"krylov_iters"`
	// Recovery accounting (see RunUntil): rolled-back retries, checkpoint
	// fallbacks, and the per-event history.
	Retries       int             `json:"retries"`
	CkptFallbacks int             `json:"ckpt_fallbacks"`
	Recovery      []RecoveryEvent `json:"recovery,omitempty"`
}

// IterStats summarizes one stage's linear-solve iteration counts over a
// run: per-solve min/mean/max and the totals behind them. CH counts one
// "solve" per time step (the Newton driver aggregates its inner Krylov
// iterations); VU counts each component solve.
type IterStats struct {
	Solves int     `json:"solves"`
	Min    int     `json:"min"`
	Mean   float64 `json:"mean"`
	Max    int     `json:"max"`
	Total  int     `json:"total"`
}

func iterStats(st chns.StageTimes) IterStats {
	is := IterStats{Solves: st.Solves, Min: st.ItMin, Max: st.ItMax, Total: st.Iterations}
	if st.Solves > 0 {
		is.Mean = float64(st.Iterations) / float64(st.Solves)
	}
	return is
}

// Stats assembles the run summary. Collective (global reductions); every
// rank receives the same value.
func (s *Simulation) Stats() RunStats {
	t := s.Timers()
	dirtyFrac := 0.0
	if t.RemeshStages.TotalOctants > 0 {
		dirtyFrac = float64(t.RemeshStages.DirtyOctants) / float64(t.RemeshStages.TotalOctants)
	}
	var postIters map[string]float64
	if n := t.RemeshStages.PostSteps; n > 0 {
		postIters = map[string]float64{
			"ch": float64(t.RemeshStages.PostCHIters) / float64(n),
			"ns": float64(t.RemeshStages.PostNSIters) / float64(n),
			"pp": float64(t.RemeshStages.PostPPIters) / float64(n),
			"vu": float64(t.RemeshStages.PostVUIters) / float64(n),
		}
	}
	return RunStats{
		Scenario:            s.ScenarioName,
		Preset:              s.PresetName,
		Ranks:               s.Comm.Size(),
		Step:                s.StepIndex,
		Time:                s.Time,
		GlobalElems:         s.GlobalElems(),
		GlobalDofs:          s.Mesh.NumGlobal,
		RemeshCount:         s.RemeshCount,
		RemeshRounds:        t.RemeshStages.Rounds,
		PartitionOnlyRounds: t.RemeshStages.PartitionOnly,
		IncrBalanceRounds:   t.RemeshStages.IncrBalance,
		FullBalanceRounds:   t.RemeshStages.FullBalance,
		IncrBuildRounds:     t.RemeshStages.IncrBuild,
		MigrateBuildRounds:  t.RemeshStages.MigrateBuild,
		FullBuildRounds:     t.RemeshStages.FullBuild,
		FullPartitionRounds: t.RemeshStages.FullPartitionOnly,
		FullDisabledRounds:  t.RemeshStages.FullDisabled,
		FullDirtyRounds:     t.RemeshStages.FullDirtyFrac,
		FullSplitterRounds:  t.RemeshStages.FullSplitterMoved,
		RippleRounds:        t.RemeshStages.RippleRounds,
		DirtyFraction:       dirtyFrac,
		MGLevelsReused:      t.RemeshStages.MGLevelsReused,
		MGLevelsPatched:     t.RemeshStages.MGLevelsPatched,
		MGRowsPatched:       t.RemeshStages.MGRowsPatched,
		MGRowsResolved:      t.RemeshStages.MGRowsResolved,
		PCRowsKept:          t.RemeshStages.PCRowsKept,
		PCRowsRebuilt:       t.RemeshStages.PCRowsRebuilt,
		PostRemeshSteps:     t.RemeshStages.PostSteps,
		PostRemeshIters:     postIters,
		LevelHistogram:      s.LevelHistogram(),
		Timers:              t,
		KrylovIters: map[string]IterStats{
			"ch": iterStats(t.CH),
			"ns": iterStats(t.NS),
			"pp": iterStats(t.PP),
			"vu": iterStats(t.VU),
		},
		Retries:       s.Retries,
		CkptFallbacks: s.CkptFallbacks,
		Recovery:      s.Recovery,
	}
}

// WriteStatsJSON writes any stats payload (one RunStats or a slice of
// them) as indented JSON. Call from one rank only.
func WriteStatsJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
