package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"proteus/internal/chns"
	"proteus/internal/par"
	"proteus/internal/vtk"
)

// RunOptions bounds one RunUntil call and wires its periodic outputs.
// At least one of Steps and MaxWall must be set.
type RunOptions struct {
	// Steps is the step budget for this call (<= 0: unbounded, MaxWall
	// must then be set). On a restart this is the number of *additional*
	// steps, not the absolute step index.
	Steps int
	// MaxWall is the wall-clock budget; rank 0's clock decides and the
	// decision is broadcast, so every rank stops at the same step.
	MaxWall time.Duration

	// CkptEvery writes a checkpoint to CkptBase at every step whose
	// absolute index (Simulation.StepIndex) is a multiple of n (0: off).
	// Keying the cadence to the absolute index — not the steps done in
	// this call — makes a restarted run snapshot at exactly the same
	// steps as an uninterrupted one. FinalCkpt writes one after the loop
	// ends; each write overwrites the previous snapshot at CkptBase, so
	// the base always holds the latest.
	CkptEvery int
	CkptBase  string
	FinalCkpt bool

	// VTKEvery writes the field set under VTKBase_sNNNNNN at every step
	// whose absolute index is a multiple of n (0: off), so restarted and
	// uninterrupted runs produce identical snapshot series; FinalVTK
	// writes once under VTKBase after the loop.
	VTKEvery int
	VTKBase  string
	FinalVTK bool

	// OnStep runs after every step on every rank (collective calls are
	// safe inside it) — the hook for per-step stats and logging.
	OnStep func(s *Simulation)
}

// RunResult reports what a RunUntil call actually did.
type RunResult struct {
	StepsDone int
	Wall      time.Duration
	// Stopped is "steps" or "wall".
	Stopped string
}

// RunUntil owns the run loop every driver shares: it advances the
// simulation until the step or wall-clock budget is exhausted, firing
// periodic checkpoints, VTK dumps and the per-step callback. Collective.
func (s *Simulation) RunUntil(o RunOptions) (RunResult, error) {
	var res RunResult
	if o.Steps <= 0 && o.MaxWall <= 0 {
		return res, fmt.Errorf("core: RunUntil needs a step or wall-clock budget")
	}
	if o.CkptEvery > 0 && o.CkptBase == "" {
		return res, fmt.Errorf("core: RunUntil: CkptEvery set without CkptBase")
	}
	if o.VTKEvery > 0 && o.VTKBase == "" {
		return res, fmt.Errorf("core: RunUntil: VTKEvery set without VTKBase")
	}
	start := time.Now()
	lastCkpt := -1
	for {
		if o.Steps > 0 && res.StepsDone >= o.Steps {
			res.Stopped = "steps"
			break
		}
		if o.MaxWall > 0 {
			over := time.Since(start) >= o.MaxWall
			if par.Bcast(s.Comm, 0, over) {
				res.Stopped = "wall"
				break
			}
		}
		s.Step()
		res.StepsDone++
		if o.OnStep != nil {
			o.OnStep(s)
		}
		// Cadences test the absolute step index, not StepsDone: a run
		// restarted mid-interval must keep snapshotting at the same
		// absolute steps as the uninterrupted run it resumes.
		if o.CkptEvery > 0 && s.StepIndex%o.CkptEvery == 0 {
			if err := s.Checkpoint(o.CkptBase); err != nil {
				return res, err
			}
			lastCkpt = s.StepIndex
		}
		if o.VTKEvery > 0 && s.StepIndex%o.VTKEvery == 0 {
			if err := s.WriteVTK(fmt.Sprintf("%s_s%06d", o.VTKBase, s.StepIndex)); err != nil {
				return res, err
			}
		}
	}
	res.Wall = time.Since(start)
	// Skip the final write when the periodic cadence just snapshotted
	// this very step — it would serialize identical state twice.
	if o.FinalCkpt && o.CkptBase != "" && lastCkpt != s.StepIndex {
		if err := s.Checkpoint(o.CkptBase); err != nil {
			return res, err
		}
	}
	if o.FinalVTK && o.VTKBase != "" {
		if err := s.WriteVTK(o.VTKBase); err != nil {
			return res, err
		}
	}
	return res, nil
}

// WriteVTK dumps the standard field set (φ, μ, velocity, pressure,
// elemental Cahn number) under path base. Collective.
func (s *Simulation) WriteVTK(base string) error {
	return vtk.WriteFields(s.Mesh, base, s.Solver.PhiMu, s.Solver.Vel, s.Solver.P, s.Solver.ElemCn)
}

// RunStats is the machine-readable run summary dumped by -stats-json:
// the accumulated stage timers (including the remesh sub-timers), global
// mesh size, remesh counts and the level histogram — the raw material of
// BENCH_*.json trajectories.
type RunStats struct {
	Scenario            string      `json:"scenario,omitempty"`
	Preset              string      `json:"preset,omitempty"`
	Ranks               int         `json:"ranks"`
	Step                int         `json:"step"`
	Time                float64     `json:"time"`
	GlobalElems         int64       `json:"global_elems"`
	GlobalDofs          int64       `json:"global_dofs"`
	RemeshCount         int         `json:"remesh_count"`
	RemeshRounds        int         `json:"remesh_rounds"`
	PartitionOnlyRounds int         `json:"partition_only_rounds"`
	LevelHistogram      []float64   `json:"level_histogram"`
	Timers              chns.Timers `json:"timers"`
}

// Stats assembles the run summary. Collective (global reductions); every
// rank receives the same value.
func (s *Simulation) Stats() RunStats {
	t := s.Timers()
	return RunStats{
		Scenario:            s.ScenarioName,
		Preset:              s.PresetName,
		Ranks:               s.Comm.Size(),
		Step:                s.StepIndex,
		Time:                s.Time,
		GlobalElems:         s.GlobalElems(),
		GlobalDofs:          s.Mesh.NumGlobal,
		RemeshCount:         s.RemeshCount,
		RemeshRounds:        t.RemeshStages.Rounds,
		PartitionOnlyRounds: t.RemeshStages.PartitionOnly,
		LevelHistogram:      s.LevelHistogram(),
		Timers:              t,
	}
}

// WriteStatsJSON writes any stats payload (one RunStats or a slice of
// them) as indented JSON. Call from one rank only.
func WriteStatsJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
