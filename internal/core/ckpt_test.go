package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"proteus/internal/chns"
	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// ckptTestConfig is a small 2D rising-bubble configuration exercising
// all four solve stages plus remeshing every second step.
func ckptTestConfig() Config {
	p := chns.DefaultParams()
	p.Cn = 0.08
	p.Fr = 0.3
	p.RhoMinus = 0.1
	p.We = 50
	return Config{
		Dim: 2, Params: p, Opt: chns.DefaultOptions(1e-3),
		BulkLevel: 2, InterfaceLevel: 4, RemeshEvery: 2,
	}
}

func ckptTestPhi0(cn float64) func(x, y, z float64) float64 {
	return func(x, y, z float64) float64 {
		return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.3)-0.15, cn)
	}
}

// nodeRec is one owned node's key and packed 2D field values
// (φ, μ, vx, vy, p); elemRec one element's octant and Cahn number.
type nodeRec struct {
	K mesh.NodeKey
	V [5]float64
}
type elemRec struct {
	O  sfc.Octant
	Cn float64
}

// globalState is the partition-independent canonical state of a 2D
// simulation: owned nodes sorted by key, elements in global SFC order,
// plus the Describe summary.
type globalState struct {
	nodes []nodeRec
	elems []elemRec
	desc  string
	step  int
	time  float64
}

// gatherState collects the canonical global state on rank 0 (nil on the
// other ranks). Collective.
func gatherState(s *Simulation) *globalState {
	m := s.Mesh
	sol := s.Solver
	nl := make([]nodeRec, m.NumOwned)
	for i := 0; i < m.NumOwned; i++ {
		nl[i] = nodeRec{K: m.Keys[i], V: [5]float64{
			sol.PhiMu[2*i], sol.PhiMu[2*i+1], sol.Vel[2*i], sol.Vel[2*i+1], sol.P[i]}}
	}
	el := make([]elemRec, m.NumElems())
	for e := range el {
		el[e] = elemRec{O: m.Elems[e], Cn: sol.ElemCn[e]}
	}
	desc := s.Describe()
	nodes := par.Gatherv(s.Comm, 0, nl)
	elems := par.Gatherv(s.Comm, 0, el)
	if s.Comm.Rank() != 0 {
		return nil
	}
	g := &globalState{desc: desc, step: s.StepIndex, time: s.Time}
	for _, b := range nodes {
		g.nodes = append(g.nodes, b...)
	}
	for _, b := range elems {
		g.elems = append(g.elems, b...)
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		a, b := g.nodes[i].K, g.nodes[j].K
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return g
}

func sameState(what string, want, got *globalState) error {
	if want.desc != got.desc {
		return fmt.Errorf("%s: Describe %q != %q", what, got.desc, want.desc)
	}
	if want.step != got.step || want.time != got.time {
		return fmt.Errorf("%s: step/time (%d, %v) != (%d, %v)", what, got.step, got.time, want.step, want.time)
	}
	if len(want.nodes) != len(got.nodes) || len(want.elems) != len(got.elems) {
		return fmt.Errorf("%s: %d/%d nodes, %d/%d elems", what,
			len(got.nodes), len(want.nodes), len(got.elems), len(want.elems))
	}
	for i := range want.nodes {
		if want.nodes[i] != got.nodes[i] {
			return fmt.Errorf("%s: node %d (%v) not bitwise equal: %v vs %v",
				what, i, want.nodes[i].K, got.nodes[i].V, want.nodes[i].V)
		}
	}
	for i := range want.elems {
		if !want.elems[i].O.EqualKey(got.elems[i].O) || want.elems[i].Cn != got.elems[i].Cn {
			return fmt.Errorf("%s: elem %d not bitwise equal", what, i)
		}
	}
	return nil
}

// TestCheckpointRestartBitwiseSameRanks checks the headline contract: a
// run of N steps equals a run of K steps + checkpoint + restart of N−K
// steps, bitwise in every field and identical in Describe, at 1, 2 and
// 4 ranks. K is chosen so the restart immediately crosses a remesh.
func TestCheckpointRestartBitwiseSameRanks(t *testing.T) {
	const N, K = 5, 2
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	for _, p := range []int{1, 2, 4} {
		base := t.TempDir() + "/ck"
		var want, got *globalState
		par.Run(p, func(c *par.Comm) {
			sim := New(c, cfg, phi0)
			sim.Run(N)
			if g := gatherState(sim); g != nil {
				want = g
			}
		})
		par.Run(p, func(c *par.Comm) {
			sim := New(c, cfg, phi0)
			sim.Run(K)
			if err := sim.Checkpoint(base); err != nil {
				panic(err)
			}
		})
		par.Run(p, func(c *par.Comm) {
			sim, err := Restore(c, cfg, base)
			if err != nil {
				panic(err)
			}
			if sim.StepIndex != K {
				panic(fmt.Sprintf("restored step %d, want %d", sim.StepIndex, K))
			}
			sim.Run(N - K)
			if g := gatherState(sim); g != nil {
				got = g
			}
		})
		if err := sameState(fmt.Sprintf("p=%d", p), want, got); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreBitwiseAcrossRankCounts checks rank-count portability: a
// snapshot written at any of 1, 2 or 4 ranks restores to the bitwise
// identical global state at any of 1, 2 or 4 ranks (the trajectory that
// follows is deterministic per rank count; cross-count reduction
// grouping differs, as in any MPI code — the state handoff itself is
// exact). The restored run must also keep stepping.
func TestRestoreBitwiseAcrossRankCounts(t *testing.T) {
	const K = 3 // crosses one adaptation round
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	for _, pw := range []int{1, 2, 4} {
		base := t.TempDir() + fmt.Sprintf("/ck%d", pw)
		var want *globalState
		par.Run(pw, func(c *par.Comm) {
			sim := New(c, cfg, phi0)
			sim.Run(K)
			if err := sim.Checkpoint(base); err != nil {
				panic(err)
			}
			if g := gatherState(sim); g != nil {
				want = g
			}
		})
		for _, pr := range []int{1, 2, 4} {
			var got *globalState
			par.Run(pr, func(c *par.Comm) {
				sim, err := Restore(c, cfg, base)
				if err != nil {
					panic(err)
				}
				if g := gatherState(sim); g != nil {
					got = g
				}
				sim.Step() // the restored simulation must be steppable
			})
			if err := sameState(fmt.Sprintf("write@%d restore@%d", pw, pr), want, got); err != nil {
				t.Fatal(err)
			}
		}
	}
}
