package core

import (
	"fmt"
	"testing"

	"proteus/internal/par"
)

// runSwirl advances a remesh-every-step swirling-drop run and returns the
// simulation for state comparison.
func runSwirl(c *par.Comm, mutate func(*Config), steps int) *Simulation {
	cfg := smallSwirlConfig(false)
	cfg.RemeshEvery = 1
	if mutate != nil {
		mutate(&cfg)
	}
	sim := New(c, cfg, dropPhi(cfg.Params.Cn))
	if err := sim.Run(steps); err != nil {
		panic(fmt.Sprintf("rank %d: run failed: %v", c.Rank(), err))
	}
	return sim
}

// mustIdenticalRuns asserts two simulations ended in bitwise-identical
// state on this rank: same local forest, same node set, same solution
// values to the last bit.
func mustIdenticalRuns(c *par.Comm, a, b *Simulation) {
	r := c.Rank()
	if a.StepIndex != b.StepIndex || a.Time != b.Time || a.RemeshCount != b.RemeshCount {
		panic(fmt.Sprintf("rank %d: trajectory diverged: step %d/%d t %v/%v remesh %d/%d",
			r, a.StepIndex, b.StepIndex, a.Time, b.Time, a.RemeshCount, b.RemeshCount))
	}
	if len(a.Mesh.Elems) != len(b.Mesh.Elems) {
		panic(fmt.Sprintf("rank %d: local forest size %d vs %d", r, len(a.Mesh.Elems), len(b.Mesh.Elems)))
	}
	for i := range a.Mesh.Elems {
		if !a.Mesh.Elems[i].EqualKey(b.Mesh.Elems[i]) {
			panic(fmt.Sprintf("rank %d: elem %d differs", r, i))
		}
	}
	if a.Mesh.NumOwned != b.Mesh.NumOwned || a.Mesh.NumLocal != b.Mesh.NumLocal {
		panic(fmt.Sprintf("rank %d: node counts %d/%d vs %d/%d",
			r, a.Mesh.NumOwned, a.Mesh.NumLocal, b.Mesh.NumOwned, b.Mesh.NumLocal))
	}
	for i := 0; i < a.Mesh.NumLocal; i++ {
		if a.Mesh.Keys[i] != b.Mesh.Keys[i] {
			panic(fmt.Sprintf("rank %d: node key %d differs", r, i))
		}
	}
	cmp := func(name string, x, y []float64) {
		if len(x) != len(y) {
			panic(fmt.Sprintf("rank %d: %s length %d vs %d", r, name, len(x), len(y)))
		}
		for i := range x {
			if x[i] != y[i] {
				panic(fmt.Sprintf("rank %d: %s[%d] = %v vs %v (diff %g)", r, name, i, x[i], y[i], x[i]-y[i]))
			}
		}
	}
	cmp("PhiMu", a.Solver.PhiMu, b.Solver.PhiMu)
	cmp("Vel", a.Solver.Vel, b.Solver.Vel)
	cmp("P", a.Solver.P, b.Solver.P)
	cmp("ElemCn", a.Solver.ElemCn, b.Solver.ElemCn)
}

// TestIncrementalRemeshBitwiseEquivalence is the PR's headline invariant
// end to end: a remesh-every-step run on the incremental path (ripple
// balance, mesh patch, plan repair, hierarchy refresh) must be bitwise
// identical to the from-scratch path at every rank count — same forests,
// same node numbering, same solution bits.
func TestIncrementalRemeshBitwiseEquivalence(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			incr := runSwirl(c, nil, 4)
			full := runSwirl(c, func(cfg *Config) { cfg.DisableIncremental = true }, 4)
			mustIdenticalRuns(c, incr, full)

			st := incr.T.RemeshStages
			if st.IncrBalance == 0 {
				panic(fmt.Sprintf("p=%d: incremental balance never engaged: %+v", p, st))
			}
			if st.DirtyOctants == 0 || st.TotalOctants == 0 {
				panic(fmt.Sprintf("p=%d: dirty-fraction telemetry not recorded: %+v", p, st))
			}
			fst := full.T.RemeshStages
			if fst.IncrBalance != 0 || fst.IncrBuild != 0 || fst.MigrateBuild != 0 {
				panic(fmt.Sprintf("p=%d: DisableIncremental still took the incremental path: %+v", p, fst))
			}
			if fst.FullBuild != fst.FullDisabled+fst.FullPartitionOnly {
				panic(fmt.Sprintf("p=%d: disabled run misattributed its full builds: %+v", p, fst))
			}
			if st.IncrBuild+st.MigrateBuild == 0 {
				// Serial splitters are trivially stable, so the mesh patch
				// must engage; at p > 1 a shifted SFC partition goes through
				// migrate-then-patch instead of a from-scratch build.
				panic(fmt.Sprintf("p=%d: incremental build never engaged: %+v", p, st))
			}
			if got := st.FullPartitionOnly + st.FullDisabled + st.FullDirtyFrac + st.FullSplitterMoved; got != st.FullBuild {
				panic(fmt.Sprintf("p=%d: full-build reasons sum to %d, want %d: %+v", p, got, st.FullBuild, st))
			}
		})
	}
}

// TestIncrementalRemeshFallbackThreshold forces every round across the
// full-rebuild threshold: with RemeshFullFrac negative the dirty fraction
// always exceeds it, so the gated stages must take the from-scratch path
// — and still produce the identical run.
func TestIncrementalRemeshFallbackThreshold(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		forced := runSwirl(c, func(cfg *Config) { cfg.RemeshFullFrac = -1 }, 3)
		full := runSwirl(c, func(cfg *Config) { cfg.DisableIncremental = true }, 3)
		mustIdenticalRuns(c, forced, full)
		st := forced.T.RemeshStages
		if st.IncrBalance != 0 || st.IncrBuild != 0 || st.MigrateBuild != 0 {
			panic(fmt.Sprintf("threshold crossing did not force the full path: %+v", st))
		}
		if st.FullBalance == 0 || st.FullBuild == 0 {
			panic(fmt.Sprintf("fallback counters not recorded: %+v", st))
		}
		if st.FullDisabled+st.FullPartitionOnly != st.FullBuild {
			panic(fmt.Sprintf("negative threshold not attributed as disabled: %+v", st))
		}
	})
}
