package core

import (
	"fmt"

	"proteus/internal/ckpt"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
	"proteus/internal/transfer"
)

// stepSnapshot is an in-memory copy of everything a failed step mutates:
// the local forest, every solver field (full local vectors, ghosts
// included, so a restored state needs no re-communication) and the
// step/time bookkeeping. The buffers are reused across steps, so steady
// snapshotting allocates only while the mesh grows.
type stepSnapshot struct {
	elems       []sfc.Octant
	elemCn      []float64
	phiMu       []float64
	vel         []float64
	p           []float64
	stepIndex   int
	time        float64
	remeshCount int
	epoch       uint64
}

// saveSnapshot records the pre-step state into snap, reusing its buffers.
func (s *Simulation) saveSnapshot(snap *stepSnapshot) {
	m := s.Mesh
	snap.elems = append(snap.elems[:0], m.Elems...)
	snap.elemCn = append(snap.elemCn[:0], s.Solver.ElemCn...)
	snap.phiMu = append(snap.phiMu[:0], s.Solver.PhiMu...)
	snap.vel = append(snap.vel[:0], s.Solver.Vel...)
	snap.p = append(snap.p[:0], s.Solver.P...)
	snap.stepIndex, snap.time = s.StepIndex, s.Time
	snap.remeshCount = s.RemeshCount
	snap.epoch = s.MeshEpoch
}

// rollback restores the pre-step state saved in snap. If the failed
// attempt remeshed (the epoch moved), the snapshot's mesh is rebuilt
// from its leaf set — mesh.New is deterministic in the leaves, so the
// rebuilt mesh reproduces the original layout exactly and the saved
// vectors (ghosts included) drop back in bitwise. Collective when the
// epoch moved, local otherwise; the divergence verdict that triggers a
// rollback is globally consistent, so every rank takes the same branch.
func (s *Simulation) rollback(snap *stepSnapshot) {
	if s.MeshEpoch != snap.epoch {
		m := mesh.New(s.Comm, s.Cfg.Dim, snap.elems)
		s.MeshEpoch++
		s.Solver.Rebind(m, s.MeshEpoch)
		s.Mesh = m
	}
	copy(s.Solver.PhiMu, snap.phiMu)
	copy(s.Solver.Vel, snap.vel)
	copy(s.Solver.P, snap.p)
	copy(s.Solver.ElemCn, snap.elemCn)
	s.StepIndex, s.Time = snap.stepIndex, snap.time
	s.RemeshCount = snap.remeshCount
}

// RecoveryEvent records one recovery action taken by RunUntil: a
// rolled-back retry at a reduced dt, or a fallback to the last intact
// on-disk checkpoint.
type RecoveryEvent struct {
	// Step is the absolute step index the failure happened at.
	Step int `json:"step"`
	// Stage and Kind name the failed solve stage and the failure
	// taxonomy entry (chns.DivergeKSP/DivergeNewton/DivergeNonFinite);
	// Kind is "ckpt-fallback" for a checkpoint fallback.
	Stage string `json:"stage,omitempty"`
	Kind  string `json:"kind"`
	// Dt is the time step the run continued with after this action.
	Dt float64 `json:"dt"`
	// Retry counts the retries spent on this step so far (0 for a
	// checkpoint fallback, which resets the budget).
	Retry int `json:"retry"`
	// Residual and Iterations describe the failed linear solve.
	Residual   float64 `json:"residual,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
}

// ErrRunFailed reports a run abandoned after the full recovery ladder —
// per-step retries and the checkpoint fallback budget — was exhausted.
// Recovery is the complete recovery history of the run, last entry the
// fatal one.
type ErrRunFailed struct {
	Step     int
	Err      error
	Recovery []RecoveryEvent
}

func (e *ErrRunFailed) Error() string {
	return fmt.Sprintf("core: run failed at step %d after %d recovery attempts: %v",
		e.Step, len(e.Recovery), e.Err)
}

func (e *ErrRunFailed) Unwrap() error { return e.Err }

// SetDt changes the time step for subsequent steps (both the config and
// the live solver read it per step, so the change takes effect at the
// next Step call).
func (s *Simulation) SetDt(dt float64) {
	s.Cfg.Opt.Dt = dt
	s.Solver.Opt.Dt = dt
}

// CheckpointGeneration writes a snapshot generation keyed to the current
// absolute step (base-g<step>) and prunes the oldest generations beyond
// retain (<= 0 keeps all). The rotation outcome is broadcast so the
// error result is collective-consistent. Collective.
func (s *Simulation) CheckpointGeneration(base string, retain int) error {
	if err := s.Checkpoint(ckpt.GenBase(base, s.StepIndex)); err != nil {
		return err
	}
	var rerr string
	if s.Comm.Rank() == 0 {
		if err := ckpt.Rotate(base, retain); err != nil {
			rerr = err.Error()
		}
	}
	if rerr = par.Bcast(s.Comm, 0, rerr); rerr != "" {
		return fmt.Errorf("core: rotate checkpoints under %s: %s", base, rerr)
	}
	return nil
}

// restoreFromLatest rewinds the live simulation to the newest intact
// snapshot under base, in place: the solver keeps its worker pool, warm
// Krylov workspaces and fault injector; only the mesh binding and the
// field state change. Rank 0 resolves the generation (skipping corrupt
// ones) and broadcasts the choice, so every rank restores the same
// snapshot. Collective.
func (s *Simulation) restoreFromLatest(base string) error {
	var resolved, rerr string
	if s.Comm.Rank() == 0 {
		if _, rb, err := ckpt.ReadLatestGood(base); err != nil {
			rerr = err.Error()
		} else {
			resolved = rb
		}
	}
	if rerr = par.Bcast(s.Comm, 0, rerr); rerr != "" {
		return fmt.Errorf("core: checkpoint fallback: %s", rerr)
	}
	resolved = par.Bcast(s.Comm, 0, resolved)
	meta, err := ckpt.ReadMeta(resolved)
	if err != nil {
		return err
	}
	loc, err := ckpt.Read(s.Comm, resolved, meta)
	if err != nil {
		return err
	}
	local := octree.PartitionWeighted(s.Comm, loc.Elems, nil)
	m := mesh.New(s.Comm, s.Cfg.Dim, local)
	s.MeshEpoch++
	s.Solver.Rebind(m, s.MeshEpoch)
	s.Mesh = m
	s.applySnapshot(loc, meta)
	return nil
}

// applySnapshot replays a loaded snapshot onto the simulation's current
// mesh through the key-addressed bitwise migration path and restores the
// step/time bookkeeping. The mesh must already hold the snapshot's
// global forest (possibly repartitioned). Collective.
func (s *Simulation) applySnapshot(loc *ckpt.Local, meta ckpt.Meta) {
	cn := transfer.MigrateElem(s.Comm, loc.Elems, loc.ElemCn, s.Mesh.Elems)
	copy(s.Solver.ElemCn, cn)

	dim := s.Cfg.Dim
	tot := 2 + dim + 1
	packed := make([]float64, len(loc.Keys)*tot)
	for i := range loc.Keys {
		off := i * tot
		copy(packed[off:off+2], loc.PhiMu[2*i:2*i+2])
		copy(packed[off+2:off+2+dim], loc.Vel[dim*i:dim*(i+1)])
		packed[off+2+dim] = loc.P[i]
	}
	transfer.MigrateKeyedNodal(s.Mesh, loc.Keys, packed, []transfer.Field{
		{Dst: s.Solver.PhiMu, Ndof: 2},
		{Dst: s.Solver.Vel, Ndof: dim},
		{Dst: s.Solver.P, Ndof: 1},
	})

	s.StepIndex = meta.Step
	s.Time = meta.Time
	s.RemeshCount = meta.RemeshCount
	s.T = meta.Timers
}
