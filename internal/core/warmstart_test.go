package core

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/chns"
	"proteus/internal/par"
)

// fullNSRemeshConfig is the full Navier–Stokes block (no prescribed
// velocity) under frequent remeshing: the configuration where post-remesh
// solver behavior — MG refresh, PC carry-over, warm starts — actually
// shows up in every stage.
func fullNSRemeshConfig() Config {
	p := chns.DefaultParams()
	p.Cn = 0.08
	p.Fr = 0.5
	return Config{
		Dim: 2, Params: p, Opt: chns.DefaultOptions(1e-3),
		BulkLevel: 3, InterfaceLevel: 4,
		RemeshEvery: 1,
	}
}

func runFullNS(c *par.Comm, mutate func(*Config), steps int) *Simulation {
	cfg := fullNSRemeshConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sim := New(c, cfg, func(x, y, z float64) float64 {
		return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.4)-0.18, cfg.Params.Cn)
	})
	if err := sim.Run(steps); err != nil {
		panic(fmt.Sprintf("rank %d: run failed: %v", c.Rank(), err))
	}
	return sim
}

// TestGMGIncrementalRemeshBitwise combines the two reuse machineries this
// repo has grown: GMG-preconditioned NS/PP stages under remesh-every-step
// incremental rounds. The delta-aware hierarchy refresh and in-place PC
// rebinds must leave the trajectory bitwise identical to the from-scratch
// path — and the carry-over counters must show they actually engaged.
func TestGMGIncrementalRemeshBitwise(t *testing.T) {
	gmg := func(cfg *Config) { cfg.Opt.PCNS, cfg.Opt.PCPP = chns.PCGMG, chns.PCGMG }
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			incr := runFullNS(c, gmg, 3)
			full := runFullNS(c, func(cfg *Config) {
				gmg(cfg)
				cfg.DisableIncremental = true
			}, 3)
			mustIdenticalRuns(c, incr, full)

			tm := incr.Timers()
			st := tm.RemeshStages
			if st.IncrBuild+st.MigrateBuild == 0 {
				panic(fmt.Sprintf("p=%d: incremental build never engaged: %+v", p, st))
			}
			if st.MGLevelsReused+st.MGLevelsPatched == 0 {
				panic(fmt.Sprintf("p=%d: hierarchy refresh never carried a level: %+v", p, st))
			}
			if st.PCRowsKept == 0 {
				panic(fmt.Sprintf("p=%d: PC carry-over never kept a row: %+v", p, st))
			}
			if st.PostSteps == 0 || st.PostNSIters == 0 || st.PostPPIters == 0 {
				panic(fmt.Sprintf("p=%d: post-remesh iteration telemetry missing: %+v", p, st))
			}
			ft := full.Timers().RemeshStages
			if ft.MGLevelsReused+ft.MGLevelsPatched != 0 || ft.PCRowsKept != 0 {
				panic(fmt.Sprintf("p=%d: from-scratch run still carried MG/PC state: %+v", p, ft))
			}
		})
	}
}

// TestWarmStartsFewerPostRemeshIterations: warm starts seed the PP and VU
// solves from the previous (migrated) solution. The convergence target is
// unchanged — tolerances are relative to the RHS, not the initial guess —
// so the run must stay healthy while the post-remesh Krylov iteration
// count drops (never rises) against the cold-start baseline.
func TestWarmStartsFewerPostRemeshIterations(t *testing.T) {
	for _, p := range []int{1, 2} {
		par.Run(p, func(c *par.Comm) {
			cold := runFullNS(c, nil, 4)
			warm := runFullNS(c, func(cfg *Config) { cfg.Opt.WarmStarts = true }, 4)

			cs, ws := cold.Timers().RemeshStages, warm.Timers().RemeshStages
			if cs.PostSteps == 0 || ws.PostSteps != cs.PostSteps {
				panic(fmt.Sprintf("p=%d: post-remesh step counts differ or are zero: warm %d cold %d",
					p, ws.PostSteps, cs.PostSteps))
			}
			warmIts := ws.PostPPIters + ws.PostVUIters
			coldIts := cs.PostPPIters + cs.PostVUIters
			if warmIts > coldIts {
				panic(fmt.Sprintf("p=%d: warm starts raised post-remesh PP+VU iterations: %d vs %d", p, warmIts, coldIts))
			}
			if warmIts == coldIts && ws.PostPPIters == cs.PostPPIters && ws.PostVUIters == cs.PostVUIters && p == 1 {
				// The seeding should actually change the Krylov path
				// somewhere; identical per-stage counts on every stage would
				// mean the knob is dead.
				panic(fmt.Sprintf("p=%d: warm starts changed nothing: pp=%d vu=%d", p, ws.PostPPIters, ws.PostVUIters))
			}
			// Same physics to solver tolerance: the converged states agree
			// far tighter than the interface scale.
			cm, wm := cold.Solver.PhiMass(), warm.Solver.PhiMass()
			if rel := math.Abs(wm-cm) / math.Abs(cm); rel > 1e-6 {
				panic(fmt.Sprintf("p=%d: warm-start mass drifted %g from cold baseline", p, rel))
			}
			st := warm.Stats()
			if st.PostRemeshSteps == 0 || st.PostRemeshIters["pp"] <= 0 {
				panic(fmt.Sprintf("p=%d: run stats missing post-remesh telemetry: %+v", p, st.PostRemeshIters))
			}
		})
	}
}
