// Package core is the public face of the framework: it orchestrates the
// full adaptive CHNS pipeline of Saurabh et al. (IPDPS 2023) — solve a
// time block (CH, NS, PP, VU), identify under-resolved features with the
// erosion/dilation detector, remesh by arbitrarily many levels in one
// pass (refine + consensus coarsening + 2:1 balance + SFC repartition),
// and transfer all fields to the new grid — while accounting wall-clock
// per stage for the Fig. 7 and Table I experiments.
package core

import (
	"fmt"
	"math"
	"time"

	"proteus/internal/chns"
	"proteus/internal/detect"
	"proteus/internal/fault"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
	"proteus/internal/transfer"
)

// Config selects the physics, the refinement policy and the local-Cahn
// detection parameters of a simulation.
type Config struct {
	Dim    int
	Params chns.Params
	Opt    chns.Options

	// Refinement policy (octree levels).
	BulkLevel      int // background resolution away from the interface
	InterfaceLevel int // resolution of the |φ| < Delta band
	FineLevel      int // resolution of detected features (local Cahn)

	// LocalCahn enables the detection pipeline; FineCn is the reduced
	// Cahn number Cn2 applied in detected regions (default Cn/2.5).
	LocalCahn bool
	FineCn    float64

	// Detection knobs (Algorithm 1); zero values get sensible defaults.
	Delta                   float64 // threshold δ (default -0.8)
	ErodeSteps, DilateSteps int
	CleanSteps, PadSteps    int

	// RemeshEvery triggers adaptation every n steps (default 1).
	RemeshEvery int

	// SequentialTransfer selects the ablation baseline for remesh-time
	// field movement: one full Nodal transfer per field (each rebuilding
	// the old tree, gathering splitters and paying its own NBX round)
	// instead of the batched single-round transfer. Benchmark use only.
	SequentialTransfer bool

	// DisableIncremental forces the from-scratch balance/build/rebind
	// pipeline on every remesh round. The incremental path is bitwise
	// identical to it, so this is an ablation and equivalence-testing
	// knob, not a correctness one.
	DisableIncremental bool

	// DisableMigratePatch forces the from-scratch build whenever the
	// partition splitters moved, instead of migrating the old mesh to
	// the new owners and patching against the migrated view. The
	// migrate-then-patch path is bitwise identical to the from-scratch
	// build, so this is an ablation and equivalence-testing knob, not a
	// correctness one.
	DisableMigratePatch bool

	// RemeshFullFrac is the global dirty-octant fraction above which a
	// remesh round abandons the incremental path (ripple balance, mesh
	// patch or migrate-then-patch, plan repair) and rebuilds from
	// scratch: incremental work is proportional to the changed region
	// and stops paying once most of the forest changed. The fraction is
	// measured once per round, before balancing and repartitioning
	// (dirty pre-balance octants over the coarsened total), and that one
	// collective decision gates both the ripple balance and the
	// incremental build — the post-partition measure would double-count
	// unchanged survivors that merely moved ranks. Default 0.25; a
	// negative value always falls back (equivalent to DisableIncremental
	// for the gated stages), a value >= 1 never does.
	RemeshFullFrac float64

	// PrescribedVel, when non-nil, runs only the CH block with this
	// analytic velocity (the Fig. 5 swirling-flow validation mode).
	PrescribedVel func(x, y, z, t float64) (vx, vy, vz float64)
}

func (c *Config) defaults() {
	if c.Delta == 0 {
		c.Delta = -0.8
	}
	if c.ErodeSteps == 0 {
		c.ErodeSteps = 2
	}
	if c.DilateSteps == 0 {
		c.DilateSteps = c.ErodeSteps + 2
	}
	if c.RemeshEvery == 0 {
		c.RemeshEvery = 1
	}
	if c.FineCn == 0 {
		c.FineCn = c.Params.Cn / 2.5
	}
	if c.FineLevel == 0 {
		c.FineLevel = c.InterfaceLevel
	}
	if c.RemeshFullFrac == 0 {
		c.RemeshFullFrac = 0.25
	}
}

// Simulation couples a mesh, a CHNS solver and the adaptivity loop.
type Simulation struct {
	Comm   *par.Comm
	Cfg    Config
	Mesh   *mesh.Mesh
	Solver *chns.Solver

	// ScenarioName and PresetName identify the registered case this
	// simulation was built from (set by the scenario layer); checkpoints
	// stamp them into their meta file so a restart can rebuild the
	// non-serializable Config through the registry.
	ScenarioName string
	PresetName   string

	StepIndex int
	Time      float64

	// DtNominal is the configured (un-backed-off) time step; the retry
	// loop halves the live dt under it on failure and relaxes back toward
	// it after a streak of clean steps.
	DtNominal float64

	// Fault is this rank's deterministic fault injector (nil: inert).
	// Step forwards the step index to it and hands it to the solver and
	// the checkpoint writer, so every injection point sees one clock.
	Fault *fault.Injector

	// Recovery bookkeeping maintained by RunUntil and reported through
	// Stats: total rolled-back retries, checkpoint fallbacks, and the
	// per-event history.
	Retries       int
	CkptFallbacks int
	Recovery      []RecoveryEvent

	// MeshEpoch counts mesh generations: it starts at 0 and increments on
	// every adaptation round that actually changed the mesh. The solver
	// and its assemblers key their persistent sparsity and assembly plans
	// to this counter, so plan invalidation happens exactly at remesh and
	// never on the steady time-stepping path.
	MeshEpoch uint64

	// Accumulated timers; the live solver's stage timers (which persist
	// across remeshes since the solver is rebound, not replaced) are added
	// on top by Timers().
	T chns.Timers
	// RemeshCount counts adaptation rounds that changed the mesh.
	RemeshCount int

	// tws is the reusable batched-transfer workspace, so steady remeshing
	// does not reallocate the query maps and scratch every round.
	tws transfer.Workspace
}

// New builds the initial mesh from the phase-field initializer: the
// |φ0| < 0.95 band is refined to InterfaceLevel, the rest to BulkLevel.
// Collective.
func New(c *par.Comm, cfg Config, phi0 func(x, y, z float64) float64) *Simulation {
	cfg.defaults()
	tr := octree.Build(cfg.Dim, func(o sfc.Octant) bool {
		if int(o.Level) < cfg.BulkLevel {
			return true
		}
		if int(o.Level) >= cfg.InterfaceLevel {
			return false
		}
		return octantCrossesInterface(o, cfg.Dim, phi0)
	}, cfg.InterfaceLevel, nil).Balance21(nil)
	local := partitionSlice(tr.Leaves, c.Rank(), c.Size())
	local = octree.PartitionWeighted(c, local, nil)
	s := NewOnLeaves(c, cfg, local)
	s.Solver.SetPhi(phi0)
	if err := s.Solver.InitMuFromPhi(); err != nil {
		// The init mass solve is hardwired to CG; an error here is a
		// programming bug, not a run hazard.
		panic(err)
	}
	return s
}

// NewOnLeaves builds a simulation over an explicit, already partitioned
// local leaf set, leaving every state field zero — the checkpoint-restore
// entry point (Restore fills the fields by keyed migration afterwards).
// Collective.
func NewOnLeaves(c *par.Comm, cfg Config, local []sfc.Octant) *Simulation {
	cfg.defaults()
	m := mesh.New(c, cfg.Dim, local)
	s := &Simulation{Comm: c, Cfg: cfg, Mesh: m, DtNominal: cfg.Opt.Dt}
	s.Solver = chns.NewSolver(m, cfg.Params, cfg.Opt)
	return s
}

// octantCrossesInterface samples φ0 at the corners and centre of o.
func octantCrossesInterface(o sfc.Octant, dim int, phi0 func(x, y, z float64) float64) bool {
	s := float64(o.Side()) / float64(sfc.MaxCoord)
	ox := float64(o.X) / float64(sfc.MaxCoord)
	oy := float64(o.Y) / float64(sfc.MaxCoord)
	oz := float64(o.Z) / float64(sfc.MaxCoord)
	hasPos, hasNeg := false, false
	probe := func(x, y, z float64) {
		v := phi0(x, y, z)
		if v > -0.95 {
			hasPos = true
		}
		if v < 0.95 {
			hasNeg = true
		}
	}
	n := 1 << dim
	for cx := 0; cx <= n; cx++ {
		fx := float64(cx&1) * s
		fy := float64((cx>>1)&1) * s
		fz := float64((cx>>2)&1) * s
		if cx == n {
			fx, fy, fz = s/2, s/2, s/2
		}
		if dim == 2 {
			fz = 0
		}
		probe(ox+fx, oy+fy, oz+fz)
	}
	return hasPos && hasNeg
}

func partitionSlice(leaves []sfc.Octant, rank, p int) []sfc.Octant {
	n := len(leaves)
	lo, hi := rank*n/p, (rank+1)*n/p
	out := make([]sfc.Octant, hi-lo)
	copy(out, leaves[lo:hi])
	return out
}

// Step advances one time block, remeshing first when due. A divergence
// error (*chns.ErrDiverged) leaves the step index and time untouched —
// but the mesh and fields possibly mid-step — so the caller owns
// rollback (RunUntil does it from an in-memory snapshot). The verdict is
// globally consistent across ranks. Collective.
func (s *Simulation) Step() error {
	s.Fault.SetStep(s.StepIndex)
	s.Solver.Fault = s.Fault
	if s.StepIndex%s.Cfg.RemeshEvery == 0 && s.StepIndex > 0 {
		s.Adapt()
	}
	var err error
	if s.Cfg.PrescribedVel != nil {
		t := s.Time
		_, err = s.Solver.StepCHWithVelocity(func(x, y, z float64) (float64, float64, float64) {
			return s.Cfg.PrescribedVel(x, y, z, t)
		})
	} else {
		_, err = s.Solver.Step()
	}
	if err != nil {
		return err
	}
	s.StepIndex++
	s.Time += s.Cfg.Opt.Dt
	return nil
}

// Run advances n steps, stopping at the first failed one (no retry —
// RunUntil owns recovery).
func (s *Simulation) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Adapt runs detection and the multi-level remesh pipeline, then moves
// every field to the new mesh: exactly (bitwise key-addressed migration,
// no interpolation) when the round turns out to be a pure SFC
// repartition, and through one batched point-location transfer — a single
// NBX query/reply round carrying all nodal fields — otherwise. When the
// partition splitters moved on a sub-threshold round, the batched
// transfer runs from a migrated view of the old mesh (fields moved onto
// it exactly first), so the queries resolve locally. The solver
// is rebound to the new mesh in place, keeping its worker pool, Krylov
// workspaces and Newton driver; the epoch bump still invalidates every
// cached sparsity and assembly plan. Wall-clock is split into the
// RemeshStages sub-timers. Collective.
func (s *Simulation) Adapt() {
	t0 := time.Now()
	cfg := &s.Cfg
	m := s.Mesh
	sol := s.Solver
	rt := &s.T.RemeshStages

	// --- Detect: feature identification and per-element level targets.
	tDetect := time.Now()
	phi := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		phi[i] = sol.PhiMu[2*i]
	}
	// Refresh the ghost slots explicitly: the last solve stage is not
	// guaranteed to have left PhiMu's ghosts current, and both the
	// detector and nearInterface read neighbour values through them.
	m.GhostRead(phi, 1)

	var reduce []bool
	if cfg.LocalCahn {
		res := detect.Identify(m, phi, detect.Config{
			Delta:      cfg.Delta,
			ErodeSteps: cfg.ErodeSteps, DilateSteps: cfg.DilateSteps,
			CleanSteps: cfg.CleanSteps, PadSteps: cfg.PadSteps,
			BaseLevel: cfg.InterfaceLevel,
		})
		reduce = res.ReduceCahn
	} else {
		reduce = make([]bool, m.NumElems())
	}

	// Desired level per current element.
	bw := detect.Threshold(m, phi, cfg.Delta)
	buf := make([]float64, m.CornersPerElem())
	targets := make([]int, m.NumElems())
	cnMark := make([]float64, m.NumElems())
	for e := 0; e < m.NumElems(); e++ {
		switch {
		case reduce[e]:
			targets[e] = cfg.FineLevel
			cnMark[e] = 1
		case detect.HasInterface(m, bw, e, buf) || nearInterface(m, phi, e, buf):
			targets[e] = cfg.InterfaceLevel
		default:
			targets[e] = cfg.BulkLevel
		}
	}
	rt.Detect += time.Since(tDetect)

	// --- Refine: multi-level refinement (local, order-preserving), with
	// target propagation to descendants.
	tRefine := time.Now()
	var refined []sfc.Octant
	var refinedTarget []int
	var refinedCn []float64
	var emit func(o sfc.Octant, target int, cn float64)
	emit = func(o sfc.Octant, target int, cn float64) {
		if int(o.Level) >= target {
			refined = append(refined, o)
			refinedTarget = append(refinedTarget, target)
			refinedCn = append(refinedCn, cn)
			return
		}
		for ch := 0; ch < o.NumChildren(); ch++ {
			emit(o.Child(ch), target, cn)
		}
	}
	for e, o := range m.Elems {
		if targets[e] < int(o.Level) {
			// Coarsening wish: keep the leaf as-is here — merging siblings
			// is a cross-rank consensus decision, made by ParCoarsen below
			// from the recorded coarser-than-leaf target.
			refined = append(refined, o)
			refinedTarget = append(refinedTarget, targets[e])
			refinedCn = append(refinedCn, cnMark[e])
			continue
		}
		emit(o, targets[e], cnMark[e])
	}
	rt.Refine += time.Since(tRefine)

	// --- Coarsen: multi-level consensus coarsening across ranks.
	tCoarsen := time.Now()
	coarse := octree.ParCoarsen(s.Comm, cfg.Dim, refined, refinedTarget)
	rt.Coarsen += time.Since(tCoarsen)

	// --- Balance and repartition. When the changed region is a small
	// enough fraction of the forest (a collective decision on global
	// counts), the 2:1 balance runs as a ripple from the dirty octants —
	// bitwise identical to the from-scratch sweep, with work proportional
	// to the change. Conservative dirty sets are safe: a seed that did
	// not actually change imposes only demands the old balance already
	// satisfies.
	tBalance := time.Now()
	var balanced []sfc.Octant
	balledIncr := false
	subThreshold := false
	if !cfg.DisableIncremental {
		dirtyPre := octree.AddedLeaves(m.Elems, coarse)
		cnt := par.AllreduceSlice(s.Comm, []int64{int64(len(dirtyPre)), int64(len(coarse))},
			func(a, b int64) int64 { return a + b })
		rt.DirtyOctants += cnt[0]
		rt.TotalOctants += cnt[1]
		// Collective gate: every rank sees the same global counts. The
		// decision is shared with the build stage below — the dirty
		// fraction is a property of the adaptation, measured before the
		// partitioner moves unchanged survivors between ranks.
		subThreshold = cnt[1] > 0 && float64(cnt[0]) <= cfg.RemeshFullFrac*float64(cnt[1])
		if subThreshold {
			var st octree.RippleStats
			balanced, st = octree.Balance21Ripple(s.Comm, cfg.Dim, coarse, dirtyPre, nil)
			balledIncr = true
			rt.IncrBalance++
			rt.RippleRounds += st.Rounds
			rt.RippleIters += st.Iters
		}
	}
	if !balledIncr {
		balanced = octree.Balance21Distributed(s.Comm, cfg.Dim, coarse, nil)
		rt.FullBalance++
	}
	rt.Balance += time.Since(tBalance)
	tPartition := time.Now()
	balanced = octree.PartitionWeighted(s.Comm, balanced, nil)
	rt.Partition += time.Since(tPartition)
	// Every executed pipeline counts toward Rounds — including rounds the
	// mesh turns out unchanged — so the per-round stage averages divide
	// detect/refine/coarsen/balance/partition time by the number of times
	// those stages actually ran.
	rt.Rounds++

	changed := meshChanged(s.Comm, m.Elems, balanced)
	if !changed {
		s.T.Remesh.Total += time.Since(t0)
		return
	}
	// Local lists changed; if the global forest did not, the round is a
	// pure repartition and fields migrate exactly instead of being
	// re-created through interpolation.
	partitionOnly := forestUnchanged(s.Comm, m.Elems, balanced)

	// --- Build the new distributed mesh: patched in place when the
	// partition held still, migrate-then-patched when the splitters
	// moved (the old mesh is first redistributed exactly to the new
	// owners, then patched against that view), from scratch only when
	// the round's dirty fraction exceeds the threshold or the
	// incremental machinery is disabled. All three produce bitwise
	// identical meshes. Patch detects a moved partition itself
	// (collectively) and declines, which routes the round to
	// PatchMigrated.
	tBuild := time.Now()
	var newM, view *mesh.Mesh
	var delta *mesh.Delta
	migrated := false
	if !cfg.DisableIncremental && !partitionOnly && subThreshold {
		dirtyPost := octree.AddedLeaves(m.Elems, balanced)
		newM, delta = mesh.Patch(s.Comm, cfg.Dim, balanced, m, dirtyPost)
		if newM == nil && !cfg.DisableMigratePatch {
			newM, view, delta = mesh.PatchMigrated(m, balanced)
			migrated = true
		}
	}
	switch {
	case newM == nil:
		newM = mesh.New(s.Comm, cfg.Dim, balanced)
		rt.FullBuild++
		// Record why the fast path did not engage; the reasons sum to
		// FullBuild.
		switch {
		case partitionOnly:
			rt.FullPartitionOnly++
		case cfg.DisableIncremental || cfg.RemeshFullFrac < 0:
			rt.FullDisabled++
		case !subThreshold:
			rt.FullDirtyFrac++
		default:
			rt.FullSplitterMoved++
		}
	case migrated:
		rt.MigrateBuild++
	default:
		rt.IncrBuild++
	}
	rt.Build += time.Since(tBuild)

	// --- Transfer fields and rebind the solver.
	tTransfer := time.Now()
	s.MeshEpoch++
	oldPhiMu, oldVel, oldP := sol.PhiMu, sol.Vel, sol.P
	// With warm starts on, the solver's persistent pressure increment ψ
	// rides the same transfer as the state fields, so the first
	// post-remesh PP solve seeds from the migrated previous increment.
	// The rebind drops the buffer, so capture it first.
	oldPsi := sol.PsiState()
	warmPsi := cfg.Opt.WarmStarts && oldPsi != nil
	var newPsi []float64
	// An incremental build carries its delta into the solver rebind so
	// assembly plans are repaired instead of rebuilt; otherwise the full
	// invalidating rebind runs. Both produce bitwise-identical solves.
	rebind := func() {
		if delta != nil {
			sol.RebindPatched(newM, s.MeshEpoch, delta)
		} else {
			sol.Rebind(newM, s.MeshEpoch)
		}
	}
	var newCnMark []float64
	switch {
	case partitionOnly:
		rebind()
		fields := []transfer.Field{
			{Src: oldPhiMu, Dst: sol.PhiMu, Ndof: 2},
			{Src: oldVel, Dst: sol.Vel, Ndof: cfg.Dim},
			{Src: oldP, Dst: sol.P, Ndof: 1},
		}
		if warmPsi {
			newPsi = newM.NewVec(1)
			fields = append(fields, transfer.Field{Src: oldPsi, Dst: newPsi, Ndof: 1})
		}
		transfer.MigrateNodal(m, newM, fields)
		newCnMark = transfer.MigrateElem(s.Comm, m.Elems, cnMark, newM.Elems)
		rt.PartitionOnly++
	case cfg.SequentialTransfer:
		// Ablation baseline: one full Nodal round per field, each paying
		// its own tree build, splitter gather and NBX round.
		newPhiMu := transfer.Nodal(m, oldPhiMu, newM, 2)
		newVel := transfer.Nodal(m, oldVel, newM, cfg.Dim)
		newP := transfer.Nodal(m, oldP, newM, 1)
		if warmPsi {
			newPsi = transfer.Nodal(m, oldPsi, newM, 1)
		}
		rebind()
		copy(sol.PhiMu, newPhiMu)
		copy(sol.Vel, newVel)
		copy(sol.P, newP)
		newCnMark = transfer.CellCentered(s.Comm, cfg.Dim, refined, refinedCn, newM.Elems)
	case migrated:
		// The splitters moved: first move every nodal field bitwise onto
		// the migrated old-mesh view (exact, key-addressed — the same
		// values the old mesh holds, re-owned by the new partition), then
		// run the one batched inter-grid transfer from the view. Because
		// the view is already aligned with the new partition, almost all
		// point-location queries resolve locally instead of crossing
		// ranks. Bitwise identical to transferring straight from the old
		// mesh.
		rebind()
		tMigrate := time.Now()
		viewPhiMu := view.NewVec(2)
		viewVel := view.NewVec(cfg.Dim)
		viewP := view.NewVec(1)
		migFields := []transfer.Field{
			{Src: oldPhiMu, Dst: viewPhiMu, Ndof: 2},
			{Src: oldVel, Dst: viewVel, Ndof: cfg.Dim},
			{Src: oldP, Dst: viewP, Ndof: 1},
		}
		var viewPsi []float64
		if warmPsi {
			viewPsi = view.NewVec(1)
			migFields = append(migFields, transfer.Field{Src: oldPsi, Dst: viewPsi, Ndof: 1})
		}
		transfer.MigrateNodal(m, view, migFields)
		rt.Migrate += time.Since(tMigrate)
		fields := []transfer.Field{
			{Src: viewPhiMu, Dst: sol.PhiMu, Ndof: 2},
			{Src: viewVel, Dst: sol.Vel, Ndof: cfg.Dim},
			{Src: viewP, Dst: sol.P, Ndof: 1},
		}
		if warmPsi {
			newPsi = newM.NewVec(1)
			fields = append(fields, transfer.Field{Src: viewPsi, Dst: newPsi, Ndof: 1})
		}
		transfer.Batch(view, newM, fields, &s.tws)
		newCnMark = transfer.CellCentered(s.Comm, cfg.Dim, refined, refinedCn, newM.Elems)
	default:
		rebind()
		fields := []transfer.Field{
			{Src: oldPhiMu, Dst: sol.PhiMu, Ndof: 2},
			{Src: oldVel, Dst: sol.Vel, Ndof: cfg.Dim},
			{Src: oldP, Dst: sol.P, Ndof: 1},
		}
		if warmPsi {
			newPsi = newM.NewVec(1)
			fields = append(fields, transfer.Field{Src: oldPsi, Dst: newPsi, Ndof: 1})
		}
		transfer.Batch(m, newM, fields, &s.tws)
		newCnMark = transfer.CellCentered(s.Comm, cfg.Dim, refined, refinedCn, newM.Elems)
	}
	if warmPsi {
		sol.SetPsiState(newPsi)
	}
	for e := range sol.ElemCn {
		if cfg.LocalCahn && newCnMark[e] > 0.25 {
			sol.ElemCn[e] = cfg.FineCn
		} else {
			sol.ElemCn[e] = cfg.Params.Cn
		}
	}
	rt.Transfer += time.Since(tTransfer)
	s.Mesh = newM
	s.RemeshCount++
	s.T.Remesh.Total += time.Since(t0)
}

// nearInterface guards against losing the interface between detection
// rounds: an element whose φ values are inside (-0.98, 0.98) anywhere is
// treated as interfacial.
func nearInterface(m *mesh.Mesh, phi []float64, e int, buf []float64) bool {
	m.GatherElem(e, phi, 1, buf)
	for _, v := range buf {
		if math.Abs(v) < 0.98 {
			return true
		}
	}
	return false
}

func meshChanged(c *par.Comm, oldE, newE []sfc.Octant) bool {
	same := len(oldE) == len(newE)
	if same {
		for i := range oldE {
			if !oldE[i].EqualKey(newE[i]) {
				same = false
				break
			}
		}
	}
	return par.Allreduce(c, !same, func(a, b bool) bool { return a || b })
}

// forestUnchanged reports whether old and new describe the same global
// leaf sequence — a pure repartition. The comparison is a
// partition-independent 128-bit fingerprint per forest: each leaf hashes
// together with its global index and the per-rank partial sums combine
// by addition, so moving SFC ranges between ranks leaves the value
// untouched. Both forests share one Exscan and one Allreduce (two
// collectives total). The exact migration paths re-verify the forests
// key by key, so a fingerprint collision fails loudly downstream instead
// of corrupting fields. Collective.
func forestUnchanged(c *par.Comm, oldE, newE []sfc.Octant) bool {
	off := par.Exscan(c, [2]int64{int64(len(oldE)), int64(len(newE))}, [2]int64{},
		func(a, b [2]int64) [2]int64 { return [2]int64{a[0] + b[0], a[1] + b[1]} })
	// sums: [oldCount, newCount, oldH0, oldH1, newH0, newH1].
	sums := make([]uint64, 6)
	sums[0], sums[1] = uint64(len(oldE)), uint64(len(newE))
	forestHash(oldE, off[0], sums[2:4])
	forestHash(newE, off[1], sums[4:6])
	sums = par.AllreduceSlice(c, sums, func(a, b uint64) uint64 { return a + b })
	return sums[0] == sums[1] && sums[2] == sums[4] && sums[3] == sums[5]
}

// forestHash accumulates the position-dependent leaf fingerprint of a
// local SFC range starting at global index off into h[0:2].
func forestHash(leaves []sfc.Octant, off int64, h []uint64) {
	for i, o := range leaves {
		k := mix64(uint64(o.X)<<32 | uint64(o.Y))
		k = mix64(k ^ (uint64(o.Z)<<8 | uint64(o.Level)))
		k = mix64(k ^ uint64(off+int64(i)))
		h[0] += k
		h[1] += mix64(k ^ 0x9e3779b97f4a7c15)
	}
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Timers returns the accumulated stage timers including the live solver.
func (s *Simulation) Timers() chns.Timers {
	t := s.T
	t.CH.Add(s.Solver.T.CH)
	t.NS.Add(s.Solver.T.NS)
	t.PP.Add(s.Solver.T.PP)
	t.VU.Add(s.Solver.T.VU)
	// The solver's remesh counters (MG refresh carry-over, PC rows,
	// post-remesh iterations) accumulate on its side of the seam; the
	// pipeline sub-timers accumulate on ours. The two sets are disjoint.
	t.RemeshStages.Add(s.Solver.T.RemeshStages)
	return t
}

// GlobalElems returns the global element count.
func (s *Simulation) GlobalElems() int64 {
	return int64(s.Mesh.GlobalSum(float64(s.Mesh.NumElems())))
}

// LevelHistogram returns the global fraction of elements per level
// (Fig. 9).
func (s *Simulation) LevelHistogram() []float64 {
	local := make([]float64, sfc.MaxLevel+1)
	for _, l := range s.Mesh.ElemLevel {
		local[l]++
	}
	glob := par.AllreduceSlice(s.Comm, local, func(a, b float64) float64 { return a + b })
	var tot float64
	for _, v := range glob {
		tot += v
	}
	max := 0
	for l, v := range glob {
		if v > 0 {
			max = l
		}
	}
	out := make([]float64, max+1)
	for l := range out {
		out[l] = glob[l] / tot
	}
	return out
}

// CountDrops returns the number of connected components of the immersed
// phase (elements whose centre value of φ is below cut), the Fig. 5
// breakup metric. Components are counted on rank 0 from gathered element
// data; intended for validation-scale meshes.
func (s *Simulation) CountDrops(cut float64) int {
	m := s.Mesh
	phiC := make([]float64, m.CornersPerElem())
	local := make([]dropCell, m.NumElems())
	phi := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		phi[i] = s.Solver.PhiMu[2*i]
	}
	m.GhostRead(phi, 1)
	for e := 0; e < m.NumElems(); e++ {
		m.GatherElem(e, phi, 1, phiC)
		var sum float64
		for _, v := range phiC {
			sum += v
		}
		local[e] = dropCell{m.Elems[e], sum/float64(len(phiC)) < cut}
	}
	all := par.Allgatherv(s.Comm, local)
	count := 0
	if s.Comm.Rank() == 0 {
		count = countComponents(s.Cfg.Dim, all)
	}
	return par.Bcast(s.Comm, 0, count)
}

// dropCell is one element's octant and immersion flag for drop counting.
type dropCell struct {
	Oct sfc.Octant
	In  bool
}

// countComponents unions face/corner-adjacent immersed cells.
func countComponents(dim int, cells []dropCell) int {
	tr := &octree.Tree{Dim: dim}
	octs := make([]sfc.Octant, len(cells))
	in := make([]bool, len(cells))
	for i, cl := range cells {
		octs[i] = cl.Oct
		in[i] = cl.In
	}
	tr.Leaves = octs
	parent := make([]int, len(cells))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	var nbuf [26]sfc.Octant
	for i, o := range octs {
		if !in[i] {
			continue
		}
		for _, n := range o.AllNeighbors(nbuf[:0]) {
			lo, hi := tr.OverlapRange(n)
			for j := lo; j < hi; j++ {
				if in[j] {
					union(i, j)
				}
			}
		}
	}
	seen := map[int]bool{}
	for i := range octs {
		if in[i] {
			seen[find(i)] = true
		}
	}
	return len(seen)
}

// Describe prints a one-line mesh summary on rank 0.
func (s *Simulation) Describe() string {
	h := s.LevelHistogram()
	min, max := -1, 0
	for l, v := range h {
		if v > 0 {
			if min < 0 {
				min = l
			}
			max = l
		}
	}
	return fmt.Sprintf("step %d t=%.4f elems=%d levels=[%d,%d] dofs=%d",
		s.StepIndex, s.Time, s.GlobalElems(), min, max, s.Mesh.NumGlobal)
}
