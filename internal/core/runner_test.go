package core

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"proteus/internal/chns"
	"proteus/internal/ckpt"
	"proteus/internal/par"
)

// TestConfigDefaults pins the documented zero-value fallbacks of
// Config.defaults: detection knobs, remesh cadence and the local-Cahn
// FineLevel/FineCn fallbacks.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{Params: chns.Params{Cn: 0.05}, InterfaceLevel: 5}
	cfg.defaults()
	if cfg.Delta != -0.8 {
		t.Errorf("Delta default %v, want -0.8", cfg.Delta)
	}
	if cfg.ErodeSteps != 2 || cfg.DilateSteps != 4 {
		t.Errorf("erode/dilate defaults %d/%d, want 2/4", cfg.ErodeSteps, cfg.DilateSteps)
	}
	if cfg.RemeshEvery != 1 {
		t.Errorf("RemeshEvery default %d, want 1", cfg.RemeshEvery)
	}
	if cfg.FineCn != 0.05/2.5 {
		t.Errorf("FineCn default %v, want Cn/2.5 = %v", cfg.FineCn, 0.05/2.5)
	}
	if cfg.FineLevel != 5 {
		t.Errorf("FineLevel default %d, want InterfaceLevel = 5", cfg.FineLevel)
	}

	// Explicit values survive, and DilateSteps tracks a custom ErodeSteps.
	cfg = Config{
		Params: chns.Params{Cn: 0.02}, InterfaceLevel: 6, FineLevel: 8,
		Delta: -0.5, ErodeSteps: 3, RemeshEvery: 4, FineCn: 0.01,
	}
	cfg.defaults()
	if cfg.Delta != -0.5 || cfg.RemeshEvery != 4 || cfg.FineCn != 0.01 || cfg.FineLevel != 8 {
		t.Errorf("explicit knobs overwritten: %+v", cfg)
	}
	if cfg.DilateSteps != 5 {
		t.Errorf("DilateSteps %d, want ErodeSteps+2 = 5", cfg.DilateSteps)
	}
}

// TestDescribeAndLevelHistogram checks the two summary collectives: the
// histogram is a normalized distribution whose support matches the
// refinement policy, and Describe reports the matching global counts
// identically on a second rank count.
func TestDescribeAndLevelHistogram(t *testing.T) {
	descs := map[int]string{}
	for _, p := range []int{1, 2} {
		par.Run(p, func(c *par.Comm) {
			sim := New(c, smallSwirlConfig(false), dropPhi(0.04))
			h := sim.LevelHistogram()
			desc := sim.Describe()
			elems := sim.GlobalElems()
			if c.Rank() != 0 {
				return
			}
			if len(h) != sim.Cfg.InterfaceLevel+1 {
				panic(fmt.Sprintf("histogram has %d bins, finest level should be %d", len(h), sim.Cfg.InterfaceLevel))
			}
			var tot float64
			for _, v := range h {
				if v < 0 {
					panic("negative histogram fraction")
				}
				tot += v
			}
			if tot < 1-1e-12 || tot > 1+1e-12 {
				panic(fmt.Sprintf("histogram sums to %v, want 1", tot))
			}
			want := fmt.Sprintf("step 0 t=0.0000 elems=%d levels=[%d,%d] dofs=%d",
				elems, sim.Cfg.BulkLevel, sim.Cfg.InterfaceLevel, sim.Mesh.NumGlobal)
			if desc != want {
				panic(fmt.Sprintf("Describe %q, want %q", desc, want))
			}
			descs[p] = desc
		})
	}
	if descs[1] != descs[2] {
		t.Fatalf("Describe is rank-count dependent: %q vs %q", descs[1], descs[2])
	}
}

// TestRunUntil covers the run loop's budgets, callbacks and periodic
// outputs.
func TestRunUntil(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	dir := t.TempDir()
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)

		if _, err := sim.RunUntil(RunOptions{}); err == nil {
			panic("RunUntil accepted an unbounded run")
		}
		if _, err := sim.RunUntil(RunOptions{Steps: 1, CkptEvery: 1}); err == nil {
			panic("RunUntil accepted CkptEvery without CkptBase")
		}
		if _, err := sim.RunUntil(RunOptions{Steps: 1, VTKEvery: 1}); err == nil {
			panic("RunUntil accepted VTKEvery without VTKBase")
		}

		calls := 0
		res, err := sim.RunUntil(RunOptions{
			Steps:     3,
			CkptEvery: 2, CkptBase: dir + "/ck",
			VTKEvery: 3, VTKBase: dir + "/v",
			OnStep: func(s *Simulation) { calls++ },
		})
		if err != nil {
			panic(err)
		}
		if res.StepsDone != 3 || res.Stopped != "steps" || calls != 3 || sim.StepIndex != 3 {
			panic(fmt.Sprintf("step budget: %+v calls=%d idx=%d", res, calls, sim.StepIndex))
		}

		res, err = sim.RunUntil(RunOptions{Steps: 100, MaxWall: time.Nanosecond})
		if err != nil {
			panic(err)
		}
		if res.Stopped != "wall" || res.StepsDone != 0 {
			panic(fmt.Sprintf("wall budget: %+v", res))
		}
	})
	// Periodic checkpoints land as step-stamped generations under the base.
	for _, f := range []string{"ck-g000000002.meta.json", "ck-g000000002_r0000.ck", "ck-g000000002_r0001.ck", "v_s000003.pvtu"} {
		if _, err := os.Stat(dir + "/" + f); err != nil {
			t.Errorf("periodic output %s missing: %v", f, err)
		}
	}
	meta, _, err := ckpt.ReadLatestGood(dir + "/ck")
	if err != nil || meta.Step != 2 {
		t.Errorf("checkpoint cadence wrong (want the latest snapshot at step 2): %v %+v", err, meta)
	}
}

// TestRestartCadenceMatchesUninterrupted pins the periodic-output
// contract: checkpoint and VTK cadences key off the absolute step index,
// so a run interrupted at a step that is not a cadence multiple and then
// restarted writes its snapshots at exactly the same absolute steps as
// an uninterrupted run (StepsDone-keyed cadences drift by the restart
// offset).
func TestRestartCadenceMatchesUninterrupted(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	dirA := t.TempDir()
	dirB := t.TempDir()
	par.Run(2, func(c *par.Comm) {
		// Uninterrupted reference: 7 steps, VTK/ckpt every 2 → VTK at
		// steps 2, 4, 6 and a last periodic checkpoint at step 6.
		sim := New(c, cfg, phi0)
		if _, err := sim.RunUntil(RunOptions{
			Steps:    7,
			VTKEvery: 2, VTKBase: dirA + "/v",
			CkptEvery: 2, CkptBase: dirA + "/ck",
		}); err != nil {
			panic(err)
		}

		// Interrupted run: stop at step 3 — deliberately *between* cadence
		// points — checkpoint, restart, and run the remaining 4 steps with
		// the same cadences.
		sim = New(c, cfg, phi0)
		if _, err := sim.RunUntil(RunOptions{Steps: 3, FinalCkpt: true, CkptBase: dirB + "/restart"}); err != nil {
			panic(err)
		}
		// The final checkpoint landed as a step-stamped generation; resolve
		// the base to the newest intact one the way the drivers do.
		_, rb, err := ckpt.ReadLatestGood(dirB + "/restart")
		if err != nil {
			panic(err)
		}
		restored, err := Restore(c, cfg, rb)
		if err != nil {
			panic(err)
		}
		if restored.StepIndex != 3 {
			panic(fmt.Sprintf("restored at step %d, want 3", restored.StepIndex))
		}
		if _, err := restored.RunUntil(RunOptions{
			Steps:    4,
			VTKEvery: 2, VTKBase: dirB + "/v",
			CkptEvery: 2, CkptBase: dirB + "/ck",
		}); err != nil {
			panic(err)
		}
	})

	// The restarted leg covers steps 4..7, so it must produce exactly the
	// snapshots the uninterrupted run wrote in that range: VTK at 4 and 6
	// (never the drifted 5 and 7) and a final periodic checkpoint at 6.
	for _, want := range []string{"v_s000004.pvtu", "v_s000006.pvtu"} {
		for _, dir := range []string{dirA, dirB} {
			if _, err := os.Stat(dir + "/" + want); err != nil {
				t.Errorf("%s missing in %s: %v", want, dir, err)
			}
		}
	}
	for _, drift := range []string{"v_s000005.pvtu", "v_s000007.pvtu"} {
		if _, err := os.Stat(dirB + "/" + drift); err == nil {
			t.Errorf("restarted run wrote drifted snapshot %s", drift)
		}
	}
	for _, dir := range []string{dirA, dirB} {
		meta, _, err := ckpt.ReadLatestGood(dir + "/ck")
		if err != nil || meta.Step != 6 {
			t.Errorf("%s: last periodic checkpoint not at step 6: %v %+v", dir, err, meta)
		}
	}
}

// TestStatsShape checks the machine-readable summary against the
// simulation's own collectives.
func TestStatsShape(t *testing.T) {
	path := t.TempDir() + "/stats.json"
	par.Run(2, func(c *par.Comm) {
		sim := New(c, ckptTestConfig(), ckptTestPhi0(0.08))
		sim.ScenarioName, sim.PresetName = "bubble", "smoke"
		sim.Run(3)
		st := sim.Stats()
		elems := sim.GlobalElems()
		if c.Rank() != 0 {
			return
		}
		if st.Scenario != "bubble" || st.Preset != "smoke" || st.Ranks != 2 || st.Step != 3 {
			panic(fmt.Sprintf("stats identity wrong: %+v", st))
		}
		if st.GlobalElems != elems || st.GlobalDofs != sim.Mesh.NumGlobal {
			panic("stats counts disagree with the mesh")
		}
		if st.RemeshRounds < 1 {
			panic("remesh rounds not accounted")
		}
		if err := WriteStatsJSON(path, st); err != nil {
			panic(err)
		}
	})
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"\"timers\"", "\"RemeshStages\"", "\"global_elems\"", "\"level_histogram\"", "\"remesh_count\""} {
		if !strings.Contains(string(b), key) {
			t.Errorf("stats JSON missing %s", key)
		}
	}
}
