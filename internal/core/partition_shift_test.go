package core

import (
	"fmt"
	"testing"

	"proteus/internal/par"
)

// TestMigratePatchBitwiseEquivalence pins the tentpole invariant end to
// end: with the dirty-fraction gate wide open, a remesh-every-step run
// whose SFC partition drifts (the load follows the swirling drop, so
// PartitionWeighted moves the splitters at p > 1) must be bitwise
// identical whether shifted rounds go through migrate-then-patch or
// through the from-scratch rebuild ablation — and the fast path must
// actually have engaged on the rounds the ablation rebuilt.
func TestMigratePatchBitwiseEquivalence(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			open := func(cfg *Config) { cfg.RemeshFullFrac = 1.0 }
			mig := runSwirl(c, open, 4)
			abl := runSwirl(c, func(cfg *Config) {
				open(cfg)
				cfg.DisableMigratePatch = true
			}, 4)
			mustIdenticalRuns(c, mig, abl)

			st := mig.T.RemeshStages
			ast := abl.T.RemeshStages
			if ast.MigrateBuild != 0 {
				panic(fmt.Sprintf("p=%d: DisableMigratePatch still migrated: %+v", p, ast))
			}
			if p > 1 {
				// The drop run provably shifts splitters: the ablation must
				// have recorded splitter-moved full builds, and the enabled
				// run must have converted exactly those rounds to migrates.
				if ast.FullSplitterMoved == 0 {
					panic(fmt.Sprintf("p=%d: no splitter movement in the ablation run: %+v", p, ast))
				}
				if st.MigrateBuild != ast.FullSplitterMoved {
					panic(fmt.Sprintf("p=%d: migrated %d rounds, ablation rebuilt %d shifted rounds",
						p, st.MigrateBuild, ast.FullSplitterMoved))
				}
				if st.FullSplitterMoved != 0 {
					panic(fmt.Sprintf("p=%d: splitter-moved full builds despite migrate-then-patch: %+v", p, st))
				}
				if st.Migrate <= 0 {
					panic(fmt.Sprintf("p=%d: migrate timer not recorded: %+v", p, st))
				}
			} else if st.MigrateBuild != 0 {
				panic(fmt.Sprintf("p=1: single-rank splitters cannot move, yet MigrateBuild=%d", st.MigrateBuild))
			}
		})
	}
}

// TestPartitionShiftRemeshSmoke is the CI engagement guard at real rank
// counts: below the dirty-fraction threshold no round may fall back to a
// from-scratch build for partition reasons — every structural round is a
// patch or a migrate-then-patch, and migrations genuinely occur.
func TestPartitionShiftRemeshSmoke(t *testing.T) {
	for _, p := range []int{2, 4} {
		par.Run(p, func(c *par.Comm) {
			sim := runSwirl(c, func(cfg *Config) { cfg.RemeshFullFrac = 1.0 }, 4)
			st := sim.T.RemeshStages
			if st.MigrateBuild == 0 {
				panic(fmt.Sprintf("p=%d: migrate-then-patch never engaged: %+v", p, st))
			}
			// Zero full rebuilds below the threshold: the only permitted
			// full builds are pure-repartition rounds (which migrate fields
			// exactly and never enter the patch machinery).
			if st.FullBuild != st.FullPartitionOnly {
				panic(fmt.Sprintf("p=%d: %d full rebuilds beyond the %d pure-repartition rounds: %+v",
					p, st.FullBuild, st.FullPartitionOnly, st))
			}
			if st.FullDirtyFrac != 0 || st.FullSplitterMoved != 0 || st.FullDisabled != 0 {
				panic(fmt.Sprintf("p=%d: sub-threshold round fell back: %+v", p, st))
			}
		})
	}
}
