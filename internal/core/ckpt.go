package core

import (
	"fmt"

	"proteus/internal/ckpt"
	"proteus/internal/octree"
	"proteus/internal/par"
)

// Checkpoint writes a restartable snapshot of the simulation under path
// base: the local forest range, every solver field (owned segments) and
// the step/time/timer bookkeeping. The snapshot is rank-count portable —
// see Restore. Collective.
func (s *Simulation) Checkpoint(base string) error {
	m := s.Mesh
	meta := ckpt.Meta{
		Scenario:    s.ScenarioName,
		Preset:      s.PresetName,
		Dim:         s.Cfg.Dim,
		Step:        s.StepIndex,
		Time:        s.Time,
		LocalCahn:   s.Cfg.LocalCahn,
		RemeshCount: s.RemeshCount,
		GlobalElems: s.GlobalElems(),
		GlobalDofs:  m.NumGlobal,
		Timers:      s.Timers(),
	}
	loc := &ckpt.Local{
		Elems:  m.Elems,
		ElemCn: s.Solver.ElemCn,
		Keys:   m.Keys[:m.NumOwned],
		PhiMu:  s.Solver.PhiMu[:2*m.NumOwned],
		Vel:    s.Solver.Vel[:m.Dim*m.NumOwned],
		P:      s.Solver.P[:m.NumOwned],
	}
	return ckpt.Write(s.Comm, base, meta, loc, s.Fault)
}

// Restore rebuilds a simulation from a snapshot written by Checkpoint,
// at the current communicator's rank count — which need not match the
// writer's. Each rank reads a contiguous block of the writer files, the
// forest is repartitioned by the same SFC rule every remesh uses, and
// the saved records replay through the key-addressed bitwise migration
// path (transfer.MigrateKeyedNodal / MigrateElem), so the restored
// global state is bitwise identical to the checkpointed one at any rank
// count. cfg must describe the same case the snapshot was written from
// (drivers rebuild it from meta.Scenario/Preset via the registry).
// Collective.
func Restore(c *par.Comm, cfg Config, base string) (*Simulation, error) {
	meta, err := ckpt.ReadMeta(base)
	if err != nil {
		return nil, err
	}
	if meta.Dim != cfg.Dim {
		return nil, fmt.Errorf("core: snapshot %s is %dD but the config is %dD", base, meta.Dim, cfg.Dim)
	}
	loc, err := ckpt.Read(c, base, meta)
	if err != nil {
		return nil, err
	}
	// The same deterministic SFC partition rule the remesh pipeline uses:
	// a function of the global leaf sequence only, so restoring at the
	// writer's rank count reproduces its partition exactly.
	local := octree.PartitionWeighted(c, loc.Elems, nil)
	s := NewOnLeaves(c, cfg, local)
	s.ScenarioName, s.PresetName = meta.Scenario, meta.Preset
	s.applySnapshot(loc, meta)
	return s, nil
}
