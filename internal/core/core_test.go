package core

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/chns"
	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func swirlVel(x, y, z, t float64) (float64, float64, float64) {
	sx := math.Sin(math.Pi * x)
	sy := math.Sin(math.Pi * y)
	return 2 * sx * sx * sy * math.Cos(math.Pi*y), -2 * math.Cos(math.Pi*x) * sx * sy * sy, 0
}

func smallSwirlConfig(localCahn bool) Config {
	p := chns.DefaultParams()
	p.Cn = 0.04
	p.Pe = 500
	return Config{
		Dim: 2, Params: p, Opt: chns.DefaultOptions(2e-3),
		BulkLevel: 3, InterfaceLevel: 5, FineLevel: 6,
		LocalCahn: localCahn, FineCn: 0.02,
		RemeshEvery:   2,
		PrescribedVel: swirlVel,
	}
}

func dropPhi(cn float64) func(x, y, z float64) float64 {
	return func(x, y, z float64) float64 {
		return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.6)-0.15, cn)
	}
}

func TestSimulationInitialMeshAdapted(t *testing.T) {
	for _, p := range []int{1, 4} {
		par.Run(p, func(c *par.Comm) {
			sim := New(c, smallSwirlConfig(false), dropPhi(0.04))
			h := sim.LevelHistogram()
			if len(h) != 6 {
				panic(fmt.Sprintf("expected finest level 5, histogram %v", h))
			}
			if h[5] == 0 || h[3] == 0 {
				panic(fmt.Sprintf("interface band not refined: %v", h))
			}
			if sim.CountDrops(-0.5) != 1 {
				panic("initial field must be a single drop")
			}
		})
	}
}

func TestSimulationStepAndAdapt(t *testing.T) {
	for _, p := range []int{1, 3} {
		par.Run(p, func(c *par.Comm) {
			sim := New(c, smallSwirlConfig(false), dropPhi(0.04))
			m0 := sim.Solver.PhiMass()
			sim.Run(4) // includes remeshes at steps 2 and 4
			if sim.RemeshCount == 0 {
				panic("expected at least one remesh")
			}
			m1 := sim.Solver.PhiMass()
			if rel := math.Abs(m1-m0) / math.Abs(m0); rel > 5e-3 {
				panic(fmt.Sprintf("p=%d: mass drift %v across remeshes", p, rel))
			}
			// Interface must still be resolved at the interface level.
			h := sim.LevelHistogram()
			if h[len(h)-1] == 0 {
				panic("interface refinement lost after adaptation")
			}
			if sim.CountDrops(-0.5) != 1 {
				panic("drop fragmented unexpectedly")
			}
		})
	}
}

func TestLocalCahnReducesCnOnSmallFeatures(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		cfg := smallSwirlConfig(true)
		cfg.Params.Cn = 0.03
		cfg.Delta = -0.5
		// A drop whose thresholded core spans ~2 cells at the interface
		// level: it survives thresholding but not erosion+dilation.
		phi0 := func(x, y, z float64) float64 {
			return chns.EquilibriumProfile(math.Hypot(x-0.3, y-0.3)-0.08, cfg.Params.Cn)
		}
		sim := New(c, cfg, phi0)
		sim.Adapt()
		fine := 0
		for e := range sim.Solver.ElemCn {
			if sim.Solver.ElemCn[e] < cfg.Params.Cn {
				fine++
			}
		}
		total := int(sim.Mesh.GlobalSum(float64(fine)))
		if total == 0 {
			panic("local Cahn did not mark the small drop")
		}
		// FineLevel elements must exist.
		h := sim.LevelHistogram()
		if len(h) < cfg.FineLevel+1 || h[cfg.FineLevel] == 0 {
			panic(fmt.Sprintf("detected region not refined to FineLevel: %v", h))
		}
	})
}

func TestAdaptCoarsensAfterFeatureLeaves(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		cfg := smallSwirlConfig(false)
		sim := New(c, cfg, dropPhi(0.04))
		n0 := sim.GlobalElems()
		// Replace the field with a pure bulk state: everything should
		// coarsen back toward BulkLevel on the next Adapt.
		for i := 0; i < sim.Mesh.NumLocal; i++ {
			sim.Solver.PhiMu[2*i] = 1
			sim.Solver.PhiMu[2*i+1] = 0
		}
		sim.Adapt()
		n1 := sim.GlobalElems()
		if n1 >= n0 {
			panic(fmt.Sprintf("mesh did not coarsen: %d -> %d elements", n0, n1))
		}
		h := sim.LevelHistogram()
		if len(h) != cfg.BulkLevel+1 {
			panic(fmt.Sprintf("expected pure bulk mesh, histogram %v", h))
		}
	})
}

func TestCountDropsSeparatesComponents(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		cfg := smallSwirlConfig(false)
		two := func(x, y, z float64) float64 {
			d1 := math.Hypot(x-0.25, y-0.25) - 0.1
			d2 := math.Hypot(x-0.75, y-0.75) - 0.1
			return chns.EquilibriumProfile(math.Min(d1, d2), cfg.Params.Cn)
		}
		sim := New(c, cfg, two)
		if n := sim.CountDrops(-0.5); n != 2 {
			panic(fmt.Sprintf("expected 2 drops, got %d", n))
		}
	})
}

func TestFullNSBlockWithRemesh(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		p := chns.DefaultParams()
		p.Cn = 0.08
		p.Fr = 0.5
		cfg := Config{
			Dim: 2, Params: p, Opt: chns.DefaultOptions(1e-3),
			BulkLevel: 3, InterfaceLevel: 4,
			RemeshEvery: 2,
		}
		sim := New(c, cfg, func(x, y, z float64) float64 {
			return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.4)-0.18, p.Cn)
		})
		sim.Run(3)
		for i := 0; i < sim.Mesh.NumOwned; i++ {
			if math.IsNaN(sim.Solver.PhiMu[2*i]) {
				panic("NaN after NS block with remesh")
			}
		}
		tm := sim.Timers()
		if tm.CH.Total == 0 || tm.NS.Total == 0 || tm.PP.Total == 0 || tm.VU.Total == 0 {
			panic("stage timers not recorded")
		}
	})
}

// TestAdaptPartitionOnlyMigratesExactly: an adaptation round whose global
// forest is unchanged (only the SFC partition moved) must take the exact
// migration path — no point-location interpolation — and hand every rank
// count the settled reference fields bitwise.
func TestAdaptPartitionOnlyMigratesExactly(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			cfg := smallSwirlConfig(false)
			cfg.RemeshEvery = 1 << 30
			sim := New(c, cfg, dropPhi(0.04))
			// Let the forest settle to a detection-consistent state.
			settled := false
			for i := 0; i < 6 && !settled; i++ {
				before := sim.RemeshCount
				sim.Adapt()
				settled = sim.RemeshCount == before
			}
			if !settled {
				panic("forest did not settle under repeated adaptation")
			}
			m, sol := sim.Mesh, sim.Solver
			// Global key -> (phi, mu, vx, vy, p) reference table (identical
			// on every rank count because the settled serial state is the
			// same field sampled at the same keys).
			type kv struct {
				K mesh.NodeKey
				V [5]float64
			}
			local := make([]kv, m.NumOwned)
			for i := 0; i < m.NumOwned; i++ {
				local[i] = kv{m.Keys[i], [5]float64{
					sol.PhiMu[2*i], sol.PhiMu[2*i+1], sol.Vel[2*i], sol.Vel[2*i+1], sol.P[i]}}
			}
			all := par.Allgatherv(c, local)
			vals := make(map[mesh.NodeKey][5]float64, len(all))
			for _, e := range all {
				vals[e.K] = e.V
			}
			leaves := par.Allgatherv(c, m.Elems)
			// Rebuild the same state on a deliberately skewed partition of
			// the identical forest.
			n := len(leaves)
			lo, hi := n*c.Rank()*c.Rank()/(p*p), n*(c.Rank()+1)*(c.Rank()+1)/(p*p)
			skew := make([]sfc.Octant, hi-lo)
			copy(skew, leaves[lo:hi])
			m2 := mesh.New(c, cfg.Dim, skew)
			sol2 := chns.NewSolver(m2, sim.Cfg.Params, sim.Cfg.Opt)
			for i := 0; i < m2.NumLocal; i++ {
				v := vals[m2.Keys[i]]
				sol2.PhiMu[2*i], sol2.PhiMu[2*i+1] = v[0], v[1]
				sol2.Vel[2*i], sol2.Vel[2*i+1] = v[2], v[3]
				sol2.P[i] = v[4]
			}
			sim2 := &Simulation{Comm: c, Cfg: sim.Cfg, Mesh: m2, Solver: sol2}
			sim2.Adapt()
			if p > 1 {
				if sim2.T.RemeshStages.PartitionOnly != 1 || sim2.RemeshCount != 1 {
					panic(fmt.Sprintf("p=%d: expected one partition-only round, got %+v (remeshes %d)",
						p, sim2.T.RemeshStages, sim2.RemeshCount))
				}
			}
			m3, sol3 := sim2.Mesh, sim2.Solver
			for i := 0; i < m3.NumLocal; i++ {
				v, ok := vals[m3.Keys[i]]
				if !ok {
					panic(fmt.Sprintf("p=%d: node %v appeared from nowhere", p, m3.Keys[i]))
				}
				if sol3.PhiMu[2*i] != v[0] || sol3.PhiMu[2*i+1] != v[1] ||
					sol3.Vel[2*i] != v[2] || sol3.Vel[2*i+1] != v[3] || sol3.P[i] != v[4] {
					panic(fmt.Sprintf("p=%d: node %v not bitwise-preserved by partition-only round", p, m3.Keys[i]))
				}
			}
		})
	}
}

// TestSolverRebindPersistsAcrossRemesh: the solver object, its worker
// pool and its per-stage KSP objects must survive adaptation rounds (the
// remesh swaps the mesh under the solver, not the solver itself).
func TestSolverRebindPersistsAcrossRemesh(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		cfg := smallSwirlConfig(false)
		sim := New(c, cfg, dropPhi(0.04))
		before := sim.Solver
		sim.Run(4) // includes remeshes at steps 2 and 4
		if sim.RemeshCount == 0 {
			panic("expected at least one remesh")
		}
		if sim.Solver != before {
			panic("remesh replaced the solver instead of rebinding it")
		}
		if sim.Solver.MeshEpoch() != sim.MeshEpoch {
			panic("solver epoch out of sync after rebind")
		}
		if sim.Solver.M != sim.Mesh {
			panic("solver not bound to the current mesh")
		}
	})
}
