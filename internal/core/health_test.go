package core

import (
	"errors"
	"fmt"
	"testing"

	"proteus/internal/chns"
	"proteus/internal/fault"
	"proteus/internal/par"
)

// TestInjectedDivergenceBitwiseEqualsDtSchedule is the recovery layer's
// headline determinism contract: a run that hits one injected NS
// divergence at step 3, rolls back and retries at half dt (relaxing
// back to nominal after 2 clean steps) must end bitwise identical to an
// uninterrupted run driven through the equivalent dt schedule by hand.
// The rollback restores state exactly and the injector perturbs nothing
// but the one convergence verdict, so any drift is a recovery-layer bug.
func TestInjectedDivergenceBitwiseEqualsDtSchedule(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	d := cfg.Opt.Dt
	// The schedule the recovery produces: divergence at step 3 halves dt
	// for the retried step, RelaxAfter=2 doubles it back after steps 3-4.
	schedule := []float64{d, d, d, d / 2, d / 2, d}

	var want, got *globalState
	var st RunStats
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		for step, dt := range schedule {
			sim.SetDt(dt)
			if err := sim.Step(); err != nil {
				panic(fmt.Sprintf("clean reference step %d: %v", step, err))
			}
		}
		if g := gatherState(sim); g != nil {
			want = g
		}
	})
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		sim.Fault = fault.New(1, c.Rank(),
			fault.Fault{Point: fault.KSPDiverge, Step: 3, Stage: "ns"})
		res, err := sim.RunUntil(RunOptions{Steps: len(schedule), MaxRetries: 2, RelaxAfter: 2})
		if err != nil {
			panic(err)
		}
		if res.StepsDone != len(schedule) {
			panic(fmt.Sprintf("recovered run did %d steps, want %d", res.StepsDone, len(schedule)))
		}
		s := sim.Stats()
		if g := gatherState(sim); g != nil {
			got, st = g, s
		}
	})
	if err := sameState("recovered vs dt-schedule", want, got); err != nil {
		t.Fatal(err)
	}
	if st.Retries != 1 || st.CkptFallbacks != 0 || len(st.Recovery) != 1 {
		t.Fatalf("recovery accounting: retries=%d fallbacks=%d events=%d, want 1/0/1",
			st.Retries, st.CkptFallbacks, len(st.Recovery))
	}
	ev := st.Recovery[0]
	if ev.Step != 3 || ev.Stage != "ns" || ev.Kind != chns.DivergeKSP || ev.Dt != d/2 || ev.Retry != 1 {
		t.Fatalf("recovery event %+v, want step 3 ns/ksp at dt %g retry 1", ev, d/2)
	}
}

// TestCheckpointFallbackReplays exhausts the in-memory retry budget with
// a repeating divergence and checks the run falls back to the last
// intact on-disk generation, replays, and still finishes the absolute
// step budget — ending bitwise identical to an undisturbed run (the
// replay starts from a bitwise-exact snapshot at nominal dt and the
// fault is exhausted by then).
func TestCheckpointFallbackReplays(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	dir := t.TempDir()

	var want, got *globalState
	var st RunStats
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		if err := sim.Run(6); err != nil {
			panic(err)
		}
		if g := gatherState(sim); g != nil {
			want = g
		}
	})
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		// Two firings: the first attempt of step 3 and its single retry —
		// exhausting MaxRetries=1 and forcing the checkpoint fallback.
		sim.Fault = fault.New(1, c.Rank(),
			fault.Fault{Point: fault.KSPDiverge, Step: 3, Stage: "ns", Count: 2})
		res, err := sim.RunUntil(RunOptions{
			Steps: 6, MaxRetries: 1,
			CkptEvery: 2, CkptBase: dir + "/ck",
		})
		if err != nil {
			panic(err)
		}
		// Steps 0-2 succeed, the fallback rewinds to the step-2 snapshot,
		// and steps 2-5 replay: 7 successful steps for a 6-step budget.
		if res.StepsDone != 7 || sim.StepIndex != 6 {
			panic(fmt.Sprintf("fallback replay did %d steps to index %d, want 7 to 6",
				res.StepsDone, sim.StepIndex))
		}
		s := sim.Stats()
		if g := gatherState(sim); g != nil {
			got, st = g, s
		}
	})
	if err := sameState("fallback replay vs undisturbed", want, got); err != nil {
		t.Fatal(err)
	}
	if st.Retries != 1 || st.CkptFallbacks != 1 || len(st.Recovery) != 2 {
		t.Fatalf("recovery accounting: retries=%d fallbacks=%d events=%d, want 1/1/2",
			st.Retries, st.CkptFallbacks, len(st.Recovery))
	}
	if st.Recovery[1].Kind != "ckpt-fallback" || st.Recovery[1].Step != 3 {
		t.Fatalf("fallback event %+v, want kind ckpt-fallback at step 3", st.Recovery[1])
	}
}

// TestNaNPokeCaught checks the sharded finite scan: a NaN poked into the
// CH output on one rank becomes a typed nonfinite divergence on every
// rank, the step retries cleanly, and the finished fields are finite.
func TestNaNPokeCaught(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		sim.Fault = fault.New(1, c.Rank(),
			fault.Fault{Point: fault.FieldNaN, Step: 2, Stage: "ch", Rank: 0})
		res, err := sim.RunUntil(RunOptions{Steps: 4, MaxRetries: 1})
		if err != nil {
			panic(err)
		}
		if res.StepsDone != 4 {
			panic(fmt.Sprintf("did %d steps, want 4", res.StepsDone))
		}
		st := sim.Stats()
		if st.Retries != 1 || len(st.Recovery) != 1 {
			panic(fmt.Sprintf("recovery accounting %+v", st.Recovery))
		}
		if ev := st.Recovery[0]; ev.Step != 2 || ev.Stage != "ch" || ev.Kind != chns.DivergeNonFinite {
			panic(fmt.Sprintf("event %+v, want step 2 ch/nonfinite", ev))
		}
		for i, v := range sim.Solver.PhiMu {
			if d := v - v; d != 0 {
				panic(fmt.Sprintf("non-finite φ/μ survived recovery at %d", i))
			}
		}
	})
}

// TestRunFailedStructured checks the terminal path: an unrecoverable
// repeating divergence with no checkpoint to fall back to returns
// *ErrRunFailed wrapping the divergence and carrying the history.
func TestRunFailedStructured(t *testing.T) {
	cfg := ckptTestConfig()
	phi0 := ckptTestPhi0(cfg.Params.Cn)
	par.Run(2, func(c *par.Comm) {
		sim := New(c, cfg, phi0)
		sim.Fault = fault.New(1, c.Rank(),
			fault.Fault{Point: fault.KSPDiverge, Step: 1, Stage: "pp", Count: 10})
		_, err := sim.RunUntil(RunOptions{Steps: 4, MaxRetries: 2})
		var rf *ErrRunFailed
		if !errors.As(err, &rf) {
			panic(fmt.Sprintf("got %v, want *ErrRunFailed", err))
		}
		if rf.Step != 1 || len(rf.Recovery) != 2 {
			panic(fmt.Sprintf("ErrRunFailed step %d with %d events, want step 1 with 2", rf.Step, len(rf.Recovery)))
		}
		var div *chns.ErrDiverged
		if !errors.As(err, &div) || div.Stage != chns.StagePP {
			panic(fmt.Sprintf("cause %v, want a PP ErrDiverged", rf.Err))
		}
		// Fail-fast mode: MaxRetries 0 surfaces the raw divergence.
		sim2 := New(c, cfg, phi0)
		sim2.Fault = fault.New(1, c.Rank(),
			fault.Fault{Point: fault.KSPDiverge, Step: 0, Stage: "ch"})
		_, err = sim2.RunUntil(RunOptions{Steps: 2})
		if !errors.As(err, &div) || errors.As(err, &rf) {
			panic(fmt.Sprintf("fail-fast returned %v, want the bare divergence", err))
		}
	})
}
