// Package par provides an in-process distributed-memory runtime that stands
// in for MPI. Each rank is a goroutine; ranks communicate only by message
// passing through a Comm. The package supplies the point-to-point and
// collective operations the meshing and solver layers need: tagged
// Send/Recv, Barrier, Bcast, Reduce/Allreduce, Gatherv/Allgatherv,
// Alltoallv (flat and hierarchically staged k-way), CommSplit with a
// memoized sub-communicator cache, and the NBX non-blocking-consensus
// sparse data exchange of Hoefler et al. (2010).
//
// Message payloads are passed by reference for efficiency; by convention a
// sender must not mutate a buffer after sending it. Traffic counters track
// message and byte volumes so benchmarks can report communication costs.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Base tags for library-internal collectives. User tags must stay below
// tagCollBase. Collectives compose their base tag with a per-communicator
// sequence number so that back-to-back collectives on the same
// communicator cannot intercept each other's traffic.
const (
	tagCollBase = 1 << 12
	tagBarrier  = tagCollBase + iota
	tagBcast
	tagReduce
	tagGather
	tagScan
	tagAlltoall
	tagNBXData
	tagSort
)

// message is an envelope in a rank's mailbox.
type message struct {
	src, tag int
	payload  any
	bytes    int
}

// mailbox is the receive queue of one rank: a simple condition-variable
// protected list with (src, tag) matching, standing in for the MPI matching
// engine.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag), blocking
// until one arrives. src == AnySource matches any sender.
func (m *mailbox) take(w *world, src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		if w.poisoned.Load() {
			panic(poisonMsg)
		}
		m.cond.Wait()
	}
}

// tryTake is the non-blocking variant of take.
func (m *mailbox) tryTake(src, tag int) (message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.queue {
		if (src == AnySource || msg.src == src) && msg.tag == tag {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg, true
		}
	}
	return message{}, false
}

// AnySource matches messages from any rank in Recv/Probe.
const AnySource = -1

// Stats accumulates communication traffic for one world. Counters are
// shared by all sub-communicators derived from the world.
type Stats struct {
	Messages atomic.Int64
	Bytes    atomic.Int64
}

// world is the shared state behind a top-level Run: one mailbox per rank
// plus collective helper state.
type world struct {
	size     int
	boxes    []*mailbox
	stats    *Stats
	barNo    []atomic.Int64 // per-rank barrier epoch (for NBX Ibarrier emulation)
	poisoned atomic.Bool    // set when any rank panics, to unblock peers
}

// poison marks the world dead and wakes every blocked receiver so peers
// fail fast instead of deadlocking on a rank that will never send.
func (w *world) poison() {
	w.poisoned.Store(true)
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Comm is a communicator: an ordered group of ranks. The zero value is not
// usable; communicators are created by Run and CommSplit.
type Comm struct {
	w      *world
	rank   int   // rank within this communicator
	group  []int // world rank of each communicator rank
	id     int   // globally unique communicator id (0 = world)
	seq    int   // per-rank collective sequence number on this communicator
	cache  *splitCache
	parent *Comm
}

// nextSeq returns a fresh collective sequence number. All ranks execute the
// same deterministic sequence of collectives per communicator, so their
// counters agree without communication.
func (c *Comm) nextSeq() int {
	c.seq++
	return c.seq
}

// collTag composes a collective base tag with a sequence number.
func collTag(base, seq int) int { return base | (seq&0xffffff)<<16 }

// Rank returns the calling rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size() }

func (c *Comm) size() int { return len(c.group) }

// Stats returns the world-wide traffic counters.
func (c *Comm) Stats() *Stats { return c.w.stats }

// Run launches n ranks, each executing body with its own communicator, and
// returns when all ranks have finished. Panics in rank bodies are
// propagated to the caller.
func Run(n int, body func(c *Comm)) {
	if n <= 0 {
		panic("par.Run: non-positive rank count")
	}
	w := &world{size: n, boxes: make([]*mailbox, n), stats: &Stats{}, barNo: make([]atomic.Int64, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	shared := newSplitCache()
	var wg sync.WaitGroup
	panics := make([]any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = p
					w.poison()
				}
			}()
			body(&Comm{w: w, rank: r, group: group, cache: shared.perRank()})
		}(r)
	}
	wg.Wait()
	// Report the root-cause panic, not the poison-induced aborts on peers.
	first := -1
	for r, p := range panics {
		if p == nil {
			continue
		}
		if s, ok := p.(string); ok && s == poisonMsg {
			if first < 0 {
				first = r
			}
			continue
		}
		panic(fmt.Sprintf("par.Run: rank %d panicked: %v", r, p))
	}
	if first >= 0 {
		panic(fmt.Sprintf("par.Run: rank %d aborted on poisoned world", first))
	}
}

const poisonMsg = "par: peer rank panicked; aborting blocked receive"

// send delivers a payload with a byte-size estimate into dst's mailbox.
func (c *Comm) send(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= c.size() {
		panic(fmt.Sprintf("par: send to invalid rank %d (size %d)", dst, c.size()))
	}
	c.w.stats.Messages.Add(1)
	c.w.stats.Bytes.Add(int64(bytes))
	c.w.boxes[c.group[dst]].put(message{src: c.rank, tag: c.tagKey(tag), payload: payload, bytes: bytes})
}

// tagKey namespaces tags per communicator so congruent communicators with
// overlapping groups do not intercept each other's traffic.
func (c *Comm) tagKey(tag int) int { return tag | c.id<<44 }

// recv blocks for a message from src (or AnySource) with the given tag.
func (c *Comm) recv(src, tag int) message {
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = src
	}
	msg := c.w.boxes[c.group[c.rank]].take(c.w, worldSrc, c.tagKey(tag))
	return msg
}

// tryRecv is the non-blocking variant of recv.
func (c *Comm) tryRecv(src, tag int) (message, bool) {
	return c.w.boxes[c.group[c.rank]].tryTake(src, c.tagKey(tag))
}
