package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// DefaultKWay is the default fan-out of the hierarchical staged exchange;
// the paper uses k = 128 so that at most three stages cover 2M processes.
const DefaultKWay = 128

// nbxEpochs returns the shared per-rank epoch slots used to emulate the
// non-blocking barrier of the NBX algorithm for this communicator.
func (c *Comm) nbxEpochs() []atomic.Int64 {
	if v, ok := c.cache.epochs.Load(c.id); ok {
		return v.([]atomic.Int64)
	}
	v, _ := c.cache.epochs.LoadOrStore(c.id, make([]atomic.Int64, c.size()))
	return v.([]atomic.Int64)
}

// NBXExchange performs the dynamic sparse data exchange of Hoefler,
// Siebert & Lumsdaine (2010): each rank sends bufs[i] to dests[i] without
// any rank knowing in advance how many messages it will receive, and no
// Omega(p) primitive (such as MPI_Alltoall of counts) is used. Returns the
// received slices and their source ranks.
//
// The implementation mirrors the real protocol: eagerly issue all sends
// (delivery is synchronous in-process, standing in for completed ssends),
// arrive at a non-blocking barrier by publishing an epoch, and poll for
// incoming data until every rank has arrived, then drain.
func NBXExchange[T any](c *Comm, dests []int, bufs [][]T) (srcs []int, recvd [][]T) {
	if len(dests) != len(bufs) {
		panic("par.NBXExchange: dests/bufs length mismatch")
	}
	seq := c.nextSeq()
	tag := collTag(tagNBXData, seq)
	for i, d := range dests {
		SendSlice(c, d, tag, bufs[i])
	}
	epochs := c.nbxEpochs()
	epochs[c.rank].Store(int64(seq))
	// Poll: consume incoming data while waiting for global barrier arrival.
	for {
		if msg, ok := c.tryRecv(AnySource, tag); ok {
			srcs = append(srcs, msg.src)
			recvd = append(recvd, slicePayload[T](msg.payload))
			continue
		}
		done := true
		for r := range epochs {
			if epochs[r].Load() < int64(seq) {
				done = false
				break
			}
		}
		if done {
			break
		}
		runtime.Gosched()
	}
	// All ranks have arrived, so every message is already in the mailbox.
	for {
		msg, ok := c.tryRecv(AnySource, tag)
		if !ok {
			break
		}
		srcs = append(srcs, msg.src)
		recvd = append(recvd, slicePayload[T](msg.payload))
	}
	return srcs, recvd
}

func slicePayload[T any](p any) []T {
	if p == nil {
		return nil
	}
	return p.([]T)
}

// AlltoallvCounted is an Alltoallv that first distributes receive counts
// with a flat all-to-all of integers, mimicking the raw MPI_Alltoall
// count exchange the paper replaced with NBX (Sec. II-C3c). It exists as
// the baseline for the NBX benchmark: it always sends p-1 count messages
// even when the data pattern is sparse.
func AlltoallvCounted[T any](c *Comm, dests []int, bufs [][]T) (srcs []int, recvd [][]T) {
	p := c.size()
	counts := make([]int, p)
	for i, d := range dests {
		counts[d] = len(bufs[i]) + 1 // +1 marks presence even if empty
	}
	countBufs := make([][]int, p)
	for r := 0; r < p; r++ {
		countBufs[r] = []int{counts[r]}
	}
	gotCounts := Alltoallv(c, countBufs)
	tag := collTag(tagAlltoall, c.nextSeq())
	for i, d := range dests {
		SendSlice(c, d, tag, bufs[i])
	}
	for r := 0; r < p; r++ {
		if gotCounts[r][0] == 0 {
			continue
		}
		v, _ := RecvSlice[T](c, r, tag)
		srcs = append(srcs, r)
		recvd = append(recvd, v)
	}
	return srcs, recvd
}

// Routed is an envelope carrying a payload through intermediate ranks of
// the staged exchange.
type Routed[T any] struct {
	Src, Dest int // original source and final destination (ranks in c)
	Data      []T
}

// AlltoallvStaged performs an all-to-all exchange hierarchically: ranks
// are recursively divided into at most k contiguous supergroups per stage
// (O(log_k p) stages), so each rank sends O(k + p/k) messages per stage
// instead of p. This is the paper's defense against network congestion for
// distributed octree sorting (Sec. II-C3a). Sub-communicators are memoized
// via CommSplitCached, exercising the Sec. II-C3b optimization.
func AlltoallvStaged[T any](c *Comm, bufs [][]T, k int) [][]T {
	p := c.size()
	if len(bufs) != p {
		panic(fmt.Sprintf("par.AlltoallvStaged: have %d buffers for %d ranks", len(bufs), p))
	}
	if k < 2 {
		k = 2
	}
	pending := make([]Routed[T], 0, p)
	for d := 0; d < p; d++ {
		pending = append(pending, Routed[T]{Src: c.rank, Dest: d, Data: bufs[d]})
	}
	cur, base, level := c, 0, 0
	for cur.Size() > k {
		cp := cur.Size()
		gsz := (cp + k - 1) / k // subgroup size; number of subgroups <= k
		ngroups := (cp + gsz - 1) / gsz
		myGroup := cur.Rank() / gsz
		myIdx := cur.Rank() - myGroup*gsz
		mySubSize := subgroupSize(cp, gsz, myGroup)
		// Route each pending envelope to the pivot member of the subgroup
		// containing its destination.
		outgoing := make([][]Routed[T], ngroups)
		for _, env := range pending {
			g := (env.Dest - base) / gsz
			outgoing[g] = append(outgoing[g], env)
		}
		tag := collTag(tagAlltoall, cur.nextSeq())
		for g := 0; g < ngroups; g++ {
			sz := subgroupSize(cp, gsz, g)
			pivot := g*gsz + cur.Rank()%sz
			SendSlice(cur, pivot, tag, outgoing[g])
		}
		// Deterministic receive count: senders i with i % mySubSize == myIdx
		// relative to my subgroup... every rank sends one message per
		// subgroup; I am the pivot for sender i iff i % mySubSize == myIdx.
		expect := 0
		for i := 0; i < cp; i++ {
			if i%mySubSize == myIdx {
				expect++
			}
		}
		pending = pending[:0]
		for m := 0; m < expect; m++ {
			envs, _ := RecvSlice[Routed[T]](cur, AnySource, tag)
			pending = append(pending, envs...)
		}
		sub := cur.CommSplitCached(fmt.Sprintf("a2a-stage-%d", level), myGroup, cur.Rank())
		base += myGroup * gsz
		cur = sub
		level++
	}
	// Final stage: direct exchange within the (<= k)-rank subgroup.
	cp := cur.Size()
	finalBufs := make([][]Routed[T], cp)
	for _, env := range pending {
		l := env.Dest - base
		finalBufs[l] = append(finalBufs[l], env)
	}
	got := Alltoallv(cur, finalBufs)
	out := make([][]T, p)
	for _, envs := range got {
		for _, env := range envs {
			out[env.Src] = env.Data
		}
	}
	return out
}

func subgroupSize(p, gsz, g int) int {
	s := p - g*gsz
	if s > gsz {
		s = gsz
	}
	return s
}
