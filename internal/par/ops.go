package par

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Send delivers a single value to rank dst with the given tag. User tags
// must be non-negative and below 1<<12.
func Send[T any](c *Comm, dst, tag int, v T) {
	c.send(dst, tag, v, int(unsafe.Sizeof(v)))
}

// Recv blocks for a single value from src (or AnySource) with the given tag
// and returns the value and the actual source rank.
func Recv[T any](c *Comm, src, tag int) (T, int) {
	msg := c.recv(src, tag)
	return msg.payload.(T), msg.src
}

// SendSlice delivers a slice to rank dst. The sender must not mutate the
// slice afterwards.
func SendSlice[T any](c *Comm, dst, tag int, v []T) {
	var elem T
	c.send(dst, tag, v, len(v)*int(unsafe.Sizeof(elem)))
}

// RecvSlice blocks for a slice from src (or AnySource) with the given tag.
func RecvSlice[T any](c *Comm, src, tag int) ([]T, int) {
	msg := c.recv(src, tag)
	if msg.payload == nil {
		return nil, msg.src
	}
	return msg.payload.([]T), msg.src
}

// Barrier blocks until every rank in the communicator has entered it,
// using the dissemination algorithm (ceil(log2 p) rounds).
func (c *Comm) Barrier() {
	tag := collTag(tagBarrier, c.nextSeq())
	p := c.size()
	if p == 1 {
		return
	}
	for d := 1; d < p; d <<= 1 {
		dst := (c.rank + d) % p
		src := (c.rank - d + p) % p
		Send(c, dst, tag, struct{}{})
		Recv[struct{}](c, src, tag)
	}
}

// bcastParent returns the virtual-rank parent in the binomial tree: the
// virtual rank with its highest set bit cleared.
func bcastParent(vr int) int {
	return vr &^ (1 << (bits.Len(uint(vr)) - 1))
}

// Bcast distributes root's value to every rank over a binomial tree and
// returns it.
func Bcast[T any](c *Comm, root int, v T) T {
	tag := collTag(tagBcast, c.nextSeq())
	p := c.size()
	if p == 1 {
		return v
	}
	vr := (c.rank - root + p) % p
	if vr != 0 {
		v, _ = Recv[T](c, (bcastParent(vr)+root)%p, tag)
	}
	start := 1
	for start <= vr {
		start <<= 1
	}
	for d := start; vr+d < p; d <<= 1 {
		Send(c, (vr+d+root)%p, tag, v)
	}
	return v
}

// BcastSlice distributes root's slice to every rank.
func BcastSlice[T any](c *Comm, root int, v []T) []T {
	tag := collTag(tagBcast, c.nextSeq())
	p := c.size()
	if p == 1 {
		return v
	}
	vr := (c.rank - root + p) % p
	if vr != 0 {
		v, _ = RecvSlice[T](c, (bcastParent(vr)+root)%p, tag)
	}
	start := 1
	for start <= vr {
		start <<= 1
	}
	for d := start; vr+d < p; d <<= 1 {
		SendSlice(c, (vr+d+root)%p, tag, v)
	}
	return v
}

// Reduce combines every rank's value with op over a binomial tree rooted at
// root; op must be associative. Only root's return value is meaningful.
// The combine order is deterministic, so floating-point reductions are
// reproducible across runs with the same rank count.
func Reduce[T any](c *Comm, root int, v T, op func(a, b T) T) T {
	tag := collTag(tagReduce, c.nextSeq())
	p := c.size()
	vr := (c.rank - root + p) % p
	for d := 1; d < p; d <<= 1 {
		if vr&d != 0 {
			Send(c, (vr-d+root)%p, tag, v)
			return v
		}
		if vr+d < p {
			other, _ := Recv[T](c, (vr+d+root)%p, tag)
			v = op(v, other)
		}
	}
	return v
}

// Allreduce combines every rank's value with op and returns the result on
// all ranks.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) T {
	return Bcast(c, 0, Reduce(c, 0, v, op))
}

// AllreduceSlice combines equal-length slices element-wise with op and
// returns the result on all ranks. The input is not mutated.
func AllreduceSlice[T any](c *Comm, v []T, op func(a, b T) T) []T {
	out := make([]T, len(v))
	copy(out, v)
	red := Reduce(c, 0, out, func(a, b []T) []T {
		if len(a) != len(b) {
			panic("par.AllreduceSlice: length mismatch across ranks")
		}
		for i := range a {
			a[i] = op(a[i], b[i])
		}
		return a
	})
	return BcastSlice(c, 0, red)
}

// Exscan returns the exclusive prefix combination of v over ranks: rank r
// receives op(v_0, ..., v_{r-1}); rank 0 receives zero.
func Exscan[T any](c *Comm, v T, zero T, op func(a, b T) T) T {
	tag := collTag(tagScan, c.nextSeq())
	all := Gather(c, 0, v)
	var mine T
	if c.rank == 0 {
		acc := zero
		for r := 0; r < c.size(); r++ {
			if r == 0 {
				mine = acc
			} else {
				Send(c, r, tag, acc)
			}
			acc = op(acc, all[r])
		}
	} else {
		mine, _ = Recv[T](c, 0, tag)
	}
	return mine
}

// Gather collects one value per rank at root, indexed by rank. Non-root
// ranks receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	tag := collTag(tagGather, c.nextSeq())
	if c.rank != root {
		Send(c, root, tag, v)
		return nil
	}
	out := make([]T, c.size())
	out[c.rank] = v
	for i := 1; i < c.size(); i++ {
		val, src := Recv[T](c, AnySource, tag)
		out[src] = val
	}
	return out
}

// Allgather collects one value per rank on every rank, indexed by rank.
func Allgather[T any](c *Comm, v T) []T {
	return BcastSlice(c, 0, Gather(c, 0, v))
}

// Gatherv collects a slice per rank at root, indexed by rank. Non-root
// ranks receive nil.
func Gatherv[T any](c *Comm, root int, v []T) [][]T {
	tag := collTag(tagGather, c.nextSeq())
	if c.rank != root {
		SendSlice(c, root, tag, v)
		return nil
	}
	out := make([][]T, c.size())
	out[c.rank] = v
	for i := 1; i < c.size(); i++ {
		val, src := RecvSlice[T](c, AnySource, tag)
		out[src] = val
	}
	return out
}

// Allgatherv collects a slice per rank and returns the concatenation in
// rank order on every rank.
func Allgatherv[T any](c *Comm, v []T) []T {
	parts := Gatherv(c, 0, v)
	var flat []T
	if c.rank == 0 {
		n := 0
		for _, p := range parts {
			n += len(p)
		}
		flat = make([]T, 0, n)
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	return BcastSlice(c, 0, flat)
}

// Alltoallv sends bufs[r] to rank r for every r and returns the slice
// received from each rank, indexed by source rank. bufs must have length
// Size(). This is the flat O(p) exchange whose staged variant
// (AlltoallvStaged) the paper adopts at scale.
func Alltoallv[T any](c *Comm, bufs [][]T) [][]T {
	tag := collTag(tagAlltoall, c.nextSeq())
	p := c.size()
	if len(bufs) != p {
		panic(fmt.Sprintf("par.Alltoallv: have %d buffers for %d ranks", len(bufs), p))
	}
	out := make([][]T, p)
	out[c.rank] = bufs[c.rank]
	for off := 1; off < p; off++ {
		dst := (c.rank + off) % p
		SendSlice(c, dst, tag, bufs[dst])
	}
	for i := 1; i < p; i++ {
		v, src := RecvSlice[T](c, AnySource, tag)
		out[src] = v
	}
	return out
}

// splitCache memoizes CommSplit results per rank, standing in for the MPI
// user cache attribute the paper attaches to the root communicator
// (Sec. II-C3b). All ranks must call CommSplitCached with identical keys in
// identical order.
type splitCache struct {
	comms map[string]*Comm
	// nextID hands out globally unique communicator ids; shared via pointer
	// across all ranks of a world.
	nextID *atomic.Int64
	// epochs holds per-communicator-id NBX barrier epochs, shared across
	// ranks.
	epochs *sync.Map
	// Hits and Misses count cached versus performed splits for the
	// Sec. II-C3b benchmark.
	Hits, Misses int
}

func newSplitCache() *splitCache {
	return &splitCache{nextID: &atomic.Int64{}, epochs: &sync.Map{}}
}

// perRank returns a rank-private view sharing the id counter and epochs.
func (s *splitCache) perRank() *splitCache {
	return &splitCache{comms: make(map[string]*Comm), nextID: s.nextID, epochs: s.epochs}
}

// SplitStats returns how many CommSplitCached calls hit and missed the
// cache on this rank.
func (c *Comm) SplitStats() (hits, misses int) { return c.cache.Hits, c.cache.Misses }

// CommSplit partitions the communicator by color: ranks passing the same
// color form a new communicator ordered by (key, rank). A negative color
// returns nil for that rank. Splitting is a collective operation and, as
// the paper notes, a costly one — prefer CommSplitCached in hot paths.
func (c *Comm) CommSplit(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := Allgather(c, ck{color, key, c.rank})
	colors := map[int][]ck{}
	for _, e := range all {
		if e.Color >= 0 {
			colors[e.Color] = append(colors[e.Color], e)
		}
	}
	var colorKeys []int
	for col := range colors {
		colorKeys = append(colorKeys, col)
	}
	sort.Ints(colorKeys)
	// Rank 0 draws a fresh id per colour so tags cannot collide across
	// sibling sub-communicators.
	type colID struct{ Col, ID int }
	var flat []colID
	if c.rank == 0 {
		for _, col := range colorKeys {
			flat = append(flat, colID{col, int(c.cache.nextID.Add(1))})
		}
	}
	flat = BcastSlice(c, 0, flat)
	if color < 0 {
		return nil
	}
	id := 0
	for _, e := range flat {
		if e.Col == color {
			id = e.ID
		}
	}
	members := colors[color]
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	return &Comm{w: c.w, rank: newRank, group: group, id: id, cache: c.cache, parent: c}
}

// CommSplitCached is CommSplit memoized under cacheKey: the first call per
// key performs the collective split; later calls return the saved
// communicator without communication.
func (c *Comm) CommSplitCached(cacheKey string, color, key int) *Comm {
	k := fmt.Sprintf("%d|%s", c.id, cacheKey)
	if sub, ok := c.cache.comms[k]; ok {
		c.cache.Hits++
		return sub
	}
	c.cache.Misses++
	sub := c.CommSplit(color, key)
	c.cache.comms[k] = sub
	return sub
}
