package par

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

var sizes = []int{1, 2, 3, 4, 7, 8, 16}

func TestSendRecv(t *testing.T) {
	Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			for r := 1; r < c.Size(); r++ {
				Send(c, r, 1, 100+r)
			}
		} else {
			v, src := Recv[int](c, 0, 1)
			if v != 100+c.Rank() || src != 0 {
				panic(fmt.Sprintf("rank %d got %d from %d", c.Rank(), v, src))
			}
		}
	})
}

func TestSendRecvOrderPreserved(t *testing.T) {
	Run(2, func(c *Comm) {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				Send(c, 1, 5, i)
			}
		} else {
			for i := 0; i < n; i++ {
				v, _ := Recv[int](c, 0, 5)
				if v != i {
					panic(fmt.Sprintf("out of order: want %d got %d", i, v))
				}
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, p := range sizes {
		var phase atomic.Int64
		Run(p, func(c *Comm) {
			for round := 0; round < 5; round++ {
				if got := phase.Load(); got != int64(round)*int64(p) && got < int64(round)*int64(p) {
					panic("barrier violated")
				}
				phase.Add(1)
				c.Barrier()
				if got := phase.Load(); got < int64(round+1)*int64(p) {
					panic(fmt.Sprintf("rank passed barrier before all arrived: %d", got))
				}
				c.Barrier()
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range sizes {
		for root := 0; root < p; root++ {
			Run(p, func(c *Comm) {
				v := -1
				if c.Rank() == root {
					v = 42
				}
				got := Bcast(c, root, v)
				if got != 42 {
					panic(fmt.Sprintf("p=%d root=%d rank=%d got %d", p, root, c.Rank(), got))
				}
				s := BcastSlice(c, root, []int{c.Rank(), root})
				if s[0] != root || s[1] != root {
					panic("BcastSlice wrong")
				}
			})
		}
	}
}

func TestReduceAllreduce(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, p := range sizes {
		Run(p, func(c *Comm) {
			want := p * (p - 1) / 2
			got := Reduce(c, 0, c.Rank(), add)
			if c.Rank() == 0 && got != want {
				panic(fmt.Sprintf("Reduce p=%d got %d want %d", p, got, want))
			}
			all := Allreduce(c, c.Rank(), add)
			if all != want {
				panic(fmt.Sprintf("Allreduce p=%d rank=%d got %d want %d", p, c.Rank(), all, want))
			}
		})
	}
}

func TestAllreduceSlice(t *testing.T) {
	Run(5, func(c *Comm) {
		in := []float64{float64(c.Rank()), 1}
		out := AllreduceSlice(c, in, func(a, b float64) float64 { return a + b })
		if out[0] != 10 || out[1] != 5 {
			panic(fmt.Sprintf("got %v", out))
		}
		if in[0] != float64(c.Rank()) {
			panic("input mutated")
		}
	})
}

func TestExscan(t *testing.T) {
	for _, p := range sizes {
		Run(p, func(c *Comm) {
			got := Exscan(c, c.Rank()+1, 0, func(a, b int) int { return a + b })
			want := 0
			for r := 0; r < c.Rank(); r++ {
				want += r + 1
			}
			if got != want {
				panic(fmt.Sprintf("Exscan p=%d rank=%d got %d want %d", p, c.Rank(), got, want))
			}
		})
	}
}

func TestGatherAllgather(t *testing.T) {
	Run(6, func(c *Comm) {
		g := Gather(c, 2, c.Rank()*10)
		if c.Rank() == 2 {
			for r := 0; r < 6; r++ {
				if g[r] != r*10 {
					panic("Gather wrong")
				}
			}
		} else if g != nil {
			panic("non-root must get nil")
		}
		a := Allgather(c, c.Rank())
		for r := 0; r < 6; r++ {
			if a[r] != r {
				panic("Allgather wrong")
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	Run(4, func(c *Comm) {
		local := make([]int, c.Rank()+1)
		for i := range local {
			local[i] = c.Rank()
		}
		flat := Allgatherv(c, local)
		if len(flat) != 1+2+3+4 {
			panic(fmt.Sprintf("len %d", len(flat)))
		}
		i := 0
		for r := 0; r < 4; r++ {
			for k := 0; k <= r; k++ {
				if flat[i] != r {
					panic("Allgatherv order wrong")
				}
				i++
			}
		}
	})
}

func TestAlltoallv(t *testing.T) {
	for _, p := range sizes {
		Run(p, func(c *Comm) {
			bufs := make([][]int, p)
			for r := 0; r < p; r++ {
				bufs[r] = []int{c.Rank()*1000 + r}
			}
			got := Alltoallv(c, bufs)
			for r := 0; r < p; r++ {
				if len(got[r]) != 1 || got[r][0] != r*1000+c.Rank() {
					panic(fmt.Sprintf("Alltoallv p=%d rank=%d from=%d got %v", p, c.Rank(), r, got[r]))
				}
			}
		})
	}
}

func TestAlltoallvStagedMatchesFlat(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8, 9, 16} {
		for _, k := range []int{2, 3, 4} {
			Run(p, func(c *Comm) {
				rng := rand.New(rand.NewSource(int64(c.Rank())))
				bufs := make([][]int, p)
				for r := 0; r < p; r++ {
					n := rng.Intn(5)
					for i := 0; i < n; i++ {
						bufs[r] = append(bufs[r], c.Rank()*10000+r*100+i)
					}
				}
				want := Alltoallv(c, cloneBufs(bufs))
				got := AlltoallvStaged(c, bufs, k)
				for r := 0; r < p; r++ {
					if len(got[r]) != len(want[r]) {
						panic(fmt.Sprintf("p=%d k=%d rank=%d from=%d: len %d want %d", p, k, c.Rank(), r, len(got[r]), len(want[r])))
					}
					for i := range got[r] {
						if got[r][i] != want[r][i] {
							panic("staged alltoallv mismatch")
						}
					}
				}
			})
		}
	}
}

func cloneBufs(b [][]int) [][]int {
	out := make([][]int, len(b))
	for i := range b {
		out[i] = append([]int(nil), b[i]...)
	}
	return out
}

func TestCommSplit(t *testing.T) {
	Run(8, func(c *Comm) {
		sub := c.CommSplit(c.Rank()%2, c.Rank())
		if sub.Size() != 4 {
			panic(fmt.Sprintf("sub size %d", sub.Size()))
		}
		if sub.Rank() != c.Rank()/2 {
			panic(fmt.Sprintf("sub rank %d for world %d", sub.Rank(), c.Rank()))
		}
		// Collectives on the sub-communicator must stay inside it.
		sum := Allreduce(c, 1, func(a, b int) int { return a + b })
		if sum != 8 {
			panic("world allreduce wrong after split")
		}
		subSum := Allreduce(sub, c.Rank(), func(a, b int) int { return a + b })
		want := 0 + 2 + 4 + 6
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if subSum != want {
			panic(fmt.Sprintf("sub allreduce got %d want %d", subSum, want))
		}
	})
}

func TestCommSplitNegativeColor(t *testing.T) {
	Run(4, func(c *Comm) {
		color := c.Rank()
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.CommSplit(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				panic("negative color must return nil")
			}
			return
		}
		if sub.Size() != 1 {
			panic("singleton expected")
		}
	})
}

func TestCommSplitCached(t *testing.T) {
	Run(6, func(c *Comm) {
		a := c.CommSplitCached("grp", c.Rank()%3, c.Rank())
		b := c.CommSplitCached("grp", c.Rank()%3, c.Rank())
		if a != b {
			panic("cache miss on second call")
		}
		hits, misses := c.SplitStats()
		if hits != 1 || misses != 1 {
			panic(fmt.Sprintf("hits=%d misses=%d", hits, misses))
		}
	})
}

func TestNBXExchange(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 13} {
		Run(p, func(c *Comm) {
			// Sparse pattern: rank r sends to (r+1)%p and (r+3)%p.
			dests := []int{(c.Rank() + 1) % p, (c.Rank() + 3) % p}
			bufs := [][]int{{c.Rank()}, {c.Rank() + 1000}}
			srcs, recvd := NBXExchange(c, dests, bufs)
			if len(srcs) != 2 && p > 1 {
				// With small p, dest collisions can merge into self-sends
				// but each message still arrives separately.
				if len(srcs) != 2 {
					panic(fmt.Sprintf("p=%d rank=%d got %d messages", p, c.Rank(), len(srcs)))
				}
			}
			for i, s := range srcs {
				v := recvd[i][0]
				if v != s && v != s+1000 {
					panic(fmt.Sprintf("bad payload %d from %d", v, s))
				}
			}
		})
	}
}

func TestNBXRepeated(t *testing.T) {
	Run(4, func(c *Comm) {
		for round := 0; round < 10; round++ {
			dests := []int{(c.Rank() + round) % 4}
			bufs := [][]int{{round*100 + c.Rank()}}
			srcs, recvd := NBXExchange(c, dests, bufs)
			if len(srcs) != 1 {
				panic(fmt.Sprintf("round %d: got %d msgs", round, len(srcs)))
			}
			want := round*100 + ((c.Rank()-round)%4+4)%4
			if recvd[0][0] != want {
				panic(fmt.Sprintf("round %d: got %d want %d", round, recvd[0][0], want))
			}
		}
	})
}

func TestNBXMatchesCounted(t *testing.T) {
	Run(6, func(c *Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 7)))
		var dests []int
		var bufs [][]int
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			d := rng.Intn(6)
			if seen[d] {
				continue
			}
			seen[d] = true
			dests = append(dests, d)
			bufs = append(bufs, []int{c.Rank()*100 + d})
		}
		s1, r1 := NBXExchange(c, dests, bufs)
		s2, r2 := AlltoallvCounted(c, dests, bufs)
		if len(s1) != len(s2) {
			panic(fmt.Sprintf("NBX %d msgs, counted %d", len(s1), len(s2)))
		}
		sortPairs(s1, r1)
		sortPairs(s2, r2)
		for i := range s1 {
			if s1[i] != s2[i] || r1[i][0] != r2[i][0] {
				panic("NBX/counted mismatch")
			}
		}
	})
}

func sortPairs(srcs []int, bufs [][]int) {
	idx := make([]int, len(srcs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return srcs[idx[a]] < srcs[idx[b]] })
	s2 := make([]int, len(srcs))
	b2 := make([][]int, len(bufs))
	for i, k := range idx {
		s2[i], b2[i] = srcs[k], bufs[k]
	}
	copy(srcs, s2)
	copy(bufs, b2)
}

func TestStatsCounting(t *testing.T) {
	var msgs int64
	Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []float64{1, 2, 3})
		}
		if c.Rank() == 1 {
			RecvSlice[float64](c, 0, 1)
		}
		c.Barrier()
		if c.Rank() == 0 {
			msgs = c.Stats().Messages.Load()
		}
	})
	if msgs == 0 {
		t.Fatal("stats not counted")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestCollectiveBackToBack(t *testing.T) {
	// Stress sequencing: interleave many different collectives; any
	// cross-talk between successive operations corrupts values.
	Run(7, func(c *Comm) {
		for i := 0; i < 50; i++ {
			s := Allreduce(c, 1, func(a, b int) int { return a + b })
			if s != 7 {
				panic(fmt.Sprintf("iter %d: allreduce %d", i, s))
			}
			g := Allgather(c, c.Rank()+i)
			for r := 0; r < 7; r++ {
				if g[r] != r+i {
					panic("allgather cross-talk")
				}
			}
			v := Bcast(c, i%7, i)
			if v != i {
				panic("bcast cross-talk")
			}
		}
	})
}
