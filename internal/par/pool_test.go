package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorker(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		p := NewPool(n)
		if p.Workers() != n {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), n)
		}
		var mask atomic.Int64
		for rep := 0; rep < 3; rep++ {
			mask.Store(0)
			p.Run(func(w int) { mask.Add(1 << w) })
			if got, want := mask.Load(), int64(1<<n)-1; got != want {
				t.Fatalf("n=%d rep=%d: worker mask %b, want %b", n, rep, got, want)
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

func TestPoolShardedSumMatchesSerial(t *testing.T) {
	const n = 10000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 13)
	}
	var serial float64
	for _, v := range xs {
		serial += v
	}
	p := NewPool(4)
	defer p.Close()
	partials := make([]float64, p.Workers())
	p.Run(func(w int) {
		lo, hi := w*n/p.Workers(), (w+1)*n/p.Workers()
		var s float64
		for _, v := range xs[lo:hi] {
			s += v
		}
		partials[w] = s
	})
	var total float64
	for _, s := range partials {
		total += s
	}
	if total != serial {
		t.Fatalf("sharded sum %v != serial %v", total, serial)
	}
}
