package par

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool for sharded numerical kernels: SpMV,
// dot products, axpy-family updates and warm matrix assembly all dispatch
// onto the same set of long-lived workers, so a steady-state time step
// pays goroutine startup cost exactly once per solver instead of once per
// operation. Worker 0 is the calling goroutine itself, which keeps the
// single-worker pool completely free of scheduling.
//
// Run is not reentrant: a kernel running on the pool must not call Run on
// the same pool again. Kernels receive their worker index and derive their
// shard from it, the same contract as fem.Assembler's element-loop shards.
type Pool struct {
	n     int
	tasks []chan func(int)
	done  chan struct{}
	stop  *poolStop
}

// poolStop is shared with the workers (and the GC cleanup) without
// referencing the Pool itself, so an unclosed pool still shuts its
// workers down once it becomes unreachable.
type poolStop struct {
	once sync.Once
	ch   chan struct{}
}

func (s *poolStop) close() { s.once.Do(func() { close(s.ch) }) }

// NewPool starts a pool with n workers (clamped to at least 1). A pool
// with one worker runs everything on the caller and owns no goroutines.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, stop: &poolStop{ch: make(chan struct{})}}
	if n > 1 {
		p.done = make(chan struct{}, n-1)
		p.tasks = make([]chan func(int), n)
		for w := 1; w < n; w++ {
			ch := make(chan func(int))
			p.tasks[w] = ch
			go poolWorker(w, ch, p.done, p.stop.ch)
		}
		// Backstop for callers that drop the pool without Close (e.g. a
		// solver discarded on remesh): release the workers when the pool
		// itself is collected. stop is reachable from the workers but not
		// the other way around, so the pool can become unreachable.
		runtime.AddCleanup(p, func(s *poolStop) { s.close() }, p.stop)
	}
	return p
}

func poolWorker(w int, tasks <-chan func(int), done chan<- struct{}, stop <-chan struct{}) {
	for {
		select {
		case f := <-tasks:
			f(w)
			done <- struct{}{}
		case <-stop:
			return
		}
	}
}

// Workers returns the worker count kernels must size their shards for.
func (p *Pool) Workers() int { return p.n }

// Shard returns the half-open item range [lo, hi) of shard w out of nw
// over n items — the canonical block partition every sharded kernel
// (element loops, merges, vector gathers) derives from its worker index.
func Shard(w, nw, n int) (lo, hi int) {
	return w * n / nw, (w + 1) * n / nw
}

// Run invokes f(w) for every worker index w in [0, Workers()) and returns
// when all have finished. f runs on the caller for w == 0. Dispatch is
// allocation-free: f travels to the workers over prearranged channels.
func (p *Pool) Run(f func(w int)) {
	for w := 1; w < p.n; w++ {
		p.tasks[w] <- f
	}
	f(0)
	for w := 1; w < p.n; w++ {
		<-p.done
	}
}

// Close shuts the worker goroutines down. Idempotent; Run must not be
// called after Close.
func (p *Pool) Close() { p.stop.close() }
