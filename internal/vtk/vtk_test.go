package vtk

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func TestWriteProducesPiecesAndMaster(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "snap")
	par.Run(3, func(c *par.Comm) {
		tr := octree.Uniform(2, 3)
		n := tr.Len()
		p := c.Size()
		lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
		local := make([]sfc.Octant, hi-lo)
		copy(local, tr.Leaves[lo:hi])
		m := mesh.New(c, 2, local)
		v := m.NewVec(1)
		for i := range v {
			v[i] = float64(i)
		}
		ev := make([]float64, m.NumElems())
		if err := Write(m, base, []Field{
			{Name: "f", Ndof: 1, Data: v},
			{Name: "cn", Ndof: 1, Data: ev, Elemental: true},
		}); err != nil {
			panic(err)
		}
	})
	master, err := os.ReadFile(base + ".pvtu")
	if err != nil {
		t.Fatal(err)
	}
	ms := string(master)
	for _, want := range []string{"PUnstructuredGrid", `Name="f"`, `Name="cn"`, "snap_r0000.vtu", "snap_r0002.vtu"} {
		if !strings.Contains(ms, want) {
			t.Fatalf("master missing %q", want)
		}
	}
	for r := 0; r < 3; r++ {
		piece, err := os.ReadFile(filepath.Join(dir, "snap_r000"+string(rune('0'+r))+".vtu"))
		if err != nil {
			t.Fatal(err)
		}
		ps := string(piece)
		for _, want := range []string{"UnstructuredGrid", "connectivity", "offsets", "types", `Name="level"`} {
			if !strings.Contains(ps, want) {
				t.Fatalf("piece %d missing %q", r, want)
			}
		}
	}
}

func TestCellTypes(t *testing.T) {
	if cellType(2) != 8 || cellType(3) != 11 {
		t.Fatal("pixel/voxel cell types expected")
	}
}
