// Package vtk writes distributed meshes and nodal/elemental fields as VTK
// XML unstructured grids (.vtu per rank plus a .pvtu index), the output
// path of the paper's software stack (Sec. III-B, "parallel VTK
// unstructured file format" consumed by ParaView).
package vtk

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"proteus/internal/mesh"
	"proteus/internal/par"
)

// Field is a named nodal or elemental array to export.
type Field struct {
	Name string
	// Ndof components per node (nodal) or per element (elemental).
	Ndof int
	// Data in mesh layout: nodal fields are full local vectors
	// (NumLocal*Ndof), elemental fields NumElems()*Ndof.
	Data []float64
	// Elemental marks cell data rather than point data.
	Elemental bool
}

// cellType returns the VTK cell type id: 8 = pixel, 11 = voxel — the
// axis-aligned quad/hex types whose corner ordering matches our
// bit-pattern corner indexing exactly.
func cellType(dim int) int {
	if dim == 2 {
		return 8
	}
	return 11
}

// Write dumps one .vtu file per rank and a .pvtu master on rank 0, under
// path base (without extension). Collective.
func Write(m *mesh.Mesh, base string, fields []Field) error {
	c := m.Comm
	dir := filepath.Dir(base)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	piece := fmt.Sprintf("%s_r%04d.vtu", base, c.Rank())
	if err := writePiece(m, piece, fields); err != nil {
		return err
	}
	var failed bool
	if c.Rank() == 0 {
		if err := writeMaster(m, base, fields); err != nil {
			failed = true
		}
	}
	if par.Allreduce(c, failed, func(a, b bool) bool { return a || b }) {
		return fmt.Errorf("vtk: master write failed")
	}
	return nil
}

func writePiece(m *mesh.Mesh, path string, fields []Field) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()

	ne := m.NumElems()
	nn := m.NumLocal
	fmt.Fprintln(w, `<?xml version="1.0"?>`)
	fmt.Fprintln(w, `<VTKFile type="UnstructuredGrid" version="0.1" byte_order="LittleEndian">`)
	fmt.Fprintln(w, `  <UnstructuredGrid>`)
	fmt.Fprintf(w, "    <Piece NumberOfPoints=\"%d\" NumberOfCells=\"%d\">\n", nn, ne)

	fmt.Fprintln(w, `      <Points>`)
	fmt.Fprintln(w, `        <DataArray type="Float64" NumberOfComponents="3" format="ascii">`)
	for i := 0; i < nn; i++ {
		x, y, z := m.NodeCoord(i)
		fmt.Fprintf(w, "%g %g %g\n", x, y, z)
	}
	fmt.Fprintln(w, `        </DataArray>`)
	fmt.Fprintln(w, `      </Points>`)

	cpe := m.CornersPerElem()
	fmt.Fprintln(w, `      <Cells>`)
	fmt.Fprintln(w, `        <DataArray type="Int64" Name="connectivity" format="ascii">`)
	for e := 0; e < ne; e++ {
		for cx := 0; cx < cpe; cx++ {
			con := &m.Conn[e*cpe+cx]
			// Hanging corners are represented by their first donor; the
			// geometry error is half a fine cell, invisible at plot scale.
			fmt.Fprintf(w, "%d ", con.Idx[0])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, `        </DataArray>`)
	fmt.Fprintln(w, `        <DataArray type="Int64" Name="offsets" format="ascii">`)
	for e := 1; e <= ne; e++ {
		fmt.Fprintf(w, "%d\n", e*cpe)
	}
	fmt.Fprintln(w, `        </DataArray>`)
	fmt.Fprintln(w, `        <DataArray type="UInt8" Name="types" format="ascii">`)
	ct := cellType(m.Dim)
	for e := 0; e < ne; e++ {
		fmt.Fprintf(w, "%d\n", ct)
	}
	fmt.Fprintln(w, `        </DataArray>`)
	fmt.Fprintln(w, `      </Cells>`)

	fmt.Fprintln(w, `      <PointData>`)
	for _, fl := range fields {
		if fl.Elemental {
			continue
		}
		fmt.Fprintf(w, "        <DataArray type=\"Float64\" Name=%q NumberOfComponents=\"%d\" format=\"ascii\">\n", fl.Name, fl.Ndof)
		for i := 0; i < nn; i++ {
			for d := 0; d < fl.Ndof; d++ {
				fmt.Fprintf(w, "%g ", fl.Data[i*fl.Ndof+d])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, `        </DataArray>`)
	}
	fmt.Fprintln(w, `      </PointData>`)

	fmt.Fprintln(w, `      <CellData>`)
	fmt.Fprintf(w, "        <DataArray type=\"Float64\" Name=\"level\" format=\"ascii\">\n")
	for e := 0; e < ne; e++ {
		fmt.Fprintf(w, "%d\n", m.ElemLevel[e])
	}
	fmt.Fprintln(w, `        </DataArray>`)
	for _, fl := range fields {
		if !fl.Elemental {
			continue
		}
		fmt.Fprintf(w, "        <DataArray type=\"Float64\" Name=%q NumberOfComponents=\"%d\" format=\"ascii\">\n", fl.Name, fl.Ndof)
		for e := 0; e < ne; e++ {
			for d := 0; d < fl.Ndof; d++ {
				fmt.Fprintf(w, "%g ", fl.Data[e*fl.Ndof+d])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, `        </DataArray>`)
	}
	fmt.Fprintln(w, `      </CellData>`)

	fmt.Fprintln(w, `    </Piece>`)
	fmt.Fprintln(w, `  </UnstructuredGrid>`)
	fmt.Fprintln(w, `</VTKFile>`)
	return nil
}

func writeMaster(m *mesh.Mesh, base string, fields []Field) error {
	f, err := os.Create(base + ".pvtu")
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintln(w, `<?xml version="1.0"?>`)
	fmt.Fprintln(w, `<VTKFile type="PUnstructuredGrid" version="0.1" byte_order="LittleEndian">`)
	fmt.Fprintln(w, `  <PUnstructuredGrid GhostLevel="0">`)
	fmt.Fprintln(w, `    <PPoints>`)
	fmt.Fprintln(w, `      <PDataArray type="Float64" NumberOfComponents="3"/>`)
	fmt.Fprintln(w, `    </PPoints>`)
	fmt.Fprintln(w, `    <PPointData>`)
	for _, fl := range fields {
		if !fl.Elemental {
			fmt.Fprintf(w, "      <PDataArray type=\"Float64\" Name=%q NumberOfComponents=\"%d\"/>\n", fl.Name, fl.Ndof)
		}
	}
	fmt.Fprintln(w, `    </PPointData>`)
	fmt.Fprintln(w, `    <PCellData>`)
	fmt.Fprintln(w, `      <PDataArray type="Float64" Name="level"/>`)
	for _, fl := range fields {
		if fl.Elemental {
			fmt.Fprintf(w, "      <PDataArray type=\"Float64\" Name=%q NumberOfComponents=\"%d\"/>\n", fl.Name, fl.Ndof)
		}
	}
	fmt.Fprintln(w, `    </PCellData>`)
	name := filepath.Base(base)
	for r := 0; r < m.Comm.Size(); r++ {
		fmt.Fprintf(w, "    <Piece Source=\"%s_r%04d.vtu\"/>\n", name, r)
	}
	fmt.Fprintln(w, `  </PUnstructuredGrid>`)
	fmt.Fprintln(w, `</VTKFile>`)
	return nil
}
