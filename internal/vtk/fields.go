package vtk

import "proteus/internal/mesh"

// WriteFields writes the standard CHNS field set under path base: φ
// (extracted from the interleaved φ/μ vector), μ, velocity, pressure and
// the elemental Cahn number. This is the one output snippet every driver
// and example shares. Collective.
func WriteFields(m *mesh.Mesh, base string, phiMu, vel, p, elemCn []float64) error {
	phi := m.NewVec(1)
	mu := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		phi[i] = phiMu[2*i]
		mu[i] = phiMu[2*i+1]
	}
	return Write(m, base, []Field{
		{Name: "phi", Ndof: 1, Data: phi},
		{Name: "mu", Ndof: 1, Data: mu},
		{Name: "velocity", Ndof: m.Dim, Data: vel},
		{Name: "pressure", Ndof: 1, Data: p},
		{Name: "cahn", Ndof: 1, Data: elemCn, Elemental: true},
	})
}
