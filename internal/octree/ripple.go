package octree

import (
	"sort"

	"proteus/internal/par"
	"proteus/internal/sfc"
)

// RippleStats reports what a Balance21Ripple call actually did, so the
// remesh telemetry can distinguish "three octants rippled one round" from
// "half the mesh cascaded".
type RippleStats struct {
	Rounds  int // distributed exchange rounds (0 on a single rank)
	Iters   int // local fixpoint iterations, summed over rounds
	Seeds   int // initial dirty seed count on this rank
	Created int // leaves created on this rank by ripple refinement
}

// AddedLeaves returns the leaves of cur absent from old (both sorted by
// Morton key): the octants created by refinement/coarsening or newly
// arrived on this rank. This is the dirty seed set for Balance21Ripple
// and mesh.Patch. Octants that moved ranks are conservatively dirty,
// which keeps the seeding correct under partition drift.
func AddedLeaves(old, cur []sfc.Octant) []sfc.Octant {
	var out []sfc.Octant
	i := 0
	for _, o := range cur {
		for i < len(old) && sfc.Less(old[i], o) {
			i++
		}
		if i < len(old) && old[i].EqualKey(o) {
			continue
		}
		out = append(out, o)
	}
	return out
}

// imposeOn records f's 2:1 grading demand onto the local targets array and
// reports whether any target grew. Shared by the from-scratch sweep
// (balanceTargets) and the seeded ripple.
func (t *Tree) imposeOn(f sfc.Octant, targets []int) bool {
	changed := false
	var nbuf [26]sfc.Octant
	for _, n := range f.AllNeighbors(nbuf[:0]) {
		j := t.PointLocate(n.X, n.Y, n.Z)
		if j < 0 {
			continue
		}
		// The located leaf contains the whole neighbour octant iff it is
		// coarser; only then can it violate 2:1 against f.
		if req := int(f.Level) - 1; int(t.Leaves[j].Level) < req && req > targets[j] {
			targets[j] = req
			changed = true
		}
	}
	return changed
}

// hasLeaf reports whether o is a current leaf of the (sorted) tree.
func (t *Tree) hasLeaf(o sfc.Octant) bool {
	i := sort.Search(len(t.Leaves), func(i int) bool { return !sfc.Less(t.Leaves[i], o) })
	return i < len(t.Leaves) && t.Leaves[i].EqualKey(o)
}

// rippleLocal runs the local 2:1 fixpoint seeded from the given dirty
// leaves instead of sweeping every leaf. Per iteration it imposes grading
// demands from the seeds only — plus, on the first iteration, from the
// existing leaves adjacent to a seed, which catches the victim direction
// (a coarsened seed violating against an unchanged finer neighbour).
// Leaves created by one iteration become the next iteration's seeds.
//
// The demands generated this way are exactly the nonzero demands the
// full sweep in Balance21 generates at the same iteration: every
// violating pair in the input involves a changed octant (unchanged pairs
// were 2:1 in the previously balanced forest), and later iterations can
// only violate through just-created leaves, which are always seeds.
// Extra impositions from unchanged leaves are harmless — they are a
// subset of the full sweep and targets max-combine. The per-iteration
// targets therefore match Balance21 bitwise, as does the refined forest.
//
// Returns the new tree, every leaf created, and the iteration count.
func (t *Tree) rippleLocal(seeds []sfc.Octant, retain RetainFn) (*Tree, []sfc.Octant, int) {
	cur := t
	var createdAll []sfc.Octant
	iters := 0
	for len(seeds) > 0 {
		targets := make([]int, len(cur.Leaves))
		for i, o := range cur.Leaves {
			targets[i] = int(o.Level)
		}
		changed := false
		for _, s := range seeds {
			if cur.imposeOn(s, targets) {
				changed = true
			}
		}
		if iters == 0 {
			seen := make(map[int]bool)
			var nbuf [26]sfc.Octant
			for _, s := range seeds {
				for _, n := range s.AllNeighbors(nbuf[:0]) {
					lo, hi := cur.OverlapRange(n)
					for j := lo; j < hi; j++ {
						if !seen[j] {
							seen[j] = true
							if cur.imposeOn(cur.Leaves[j], targets) {
								changed = true
							}
						}
					}
				}
			}
		}
		iters++
		if !changed {
			break
		}
		next := cur.Refine(targets, retain)
		created := AddedLeaves(cur.Leaves, next.Leaves)
		createdAll = append(createdAll, created...)
		cur = next
		seeds = created
		if iters > sfc.MaxLevel+2 {
			panic("octree.rippleLocal: failed to converge")
		}
	}
	return cur, createdAll, iters
}

// balanceTargetsRemote is balanceTargets restricted to remote octants:
// the local tree is already at a fixpoint when it is called, so the
// O(n·26·log n) sweep over local leaves would find nothing — skipping it
// is the point of the ripple.
func (t *Tree) balanceTargetsRemote(remote []sfc.Octant) ([]int, bool) {
	targets := make([]int, len(t.Leaves))
	for i, o := range t.Leaves {
		targets[i] = int(o.Level)
	}
	changed := false
	for _, ro := range remote {
		if t.imposeOn(ro, targets) {
			changed = true
		}
	}
	return targets, changed
}

// rippleMsg is one boundary-octant update in the ripple exchange. Probe
// entries are the sender's dirty octants shipped as queries only: the
// receiver does not impose them (if still a leaf they are also shipped as
// drivers) but replies with its own leaves adjacent to them, so the
// victim direction — a remote unchanged fine leaf violating against a
// local dirty coarse one — is delivered in the first round, exactly when
// the from-scratch exchange would deliver it.
type rippleMsg struct {
	O     sfc.Octant
	Probe bool
}

// Balance21Ripple enforces the same 2:1 balance as Balance21Distributed
// but seeds all work from the dirty octants (the local leaves that
// changed since the previously balanced forest, see AddedLeaves) instead
// of sweeping the whole mesh every round. Each round runs the seeded
// local fixpoint, ships only the leaves created since the last exchange
// (plus, in round one, the dirty probes) to the ranks owning their
// neighbour regions via NBX, imposes the received updates, and refines
// once; termination is the same allreduced no-change flag.
//
// The result is bitwise identical to Balance21Distributed on the same
// input at any rank count: per round the delivered grading demands are
// exactly the nonzero demands of the full exchange, so every per-round
// refinement — and hence the final forest — matches leaf for leaf.
//
// dirty must list the local leaves absent from the previously balanced
// local forest (conservative supersets are safe). The caller repartitions
// afterwards, as with Balance21Distributed.
func Balance21Ripple(c *par.Comm, dim int, leaves, dirty []sfc.Octant, retain RetainFn) ([]sfc.Octant, RippleStats) {
	st := RippleStats{Seeds: len(dirty)}
	t := &Tree{Dim: dim, Leaves: leaves}
	if c == nil || c.Size() == 1 {
		cur, created, iters := t.rippleLocal(dirty, retain)
		st.Iters, st.Created = iters, len(created)
		return cur.Leaves, st
	}
	me := c.Rank()
	pending := dirty // seeds for the next local fixpoint
	// fresh = changed since the last exchange (the ship set); copied so the
	// appends below never scribble on the caller's dirty slice.
	fresh := append([]sfc.Octant(nil), dirty...)
	for round := 0; ; round++ {
		cur, created, iters := t.rippleLocal(pending, retain)
		t = cur
		st.Iters += iters
		st.Created += len(created)
		fresh = append(fresh, created...)

		spl := GatherSplitters(c, t.Leaves)
		perRank := make(map[int]map[rippleMsg]bool)
		add := func(r int, m rippleMsg) {
			if perRank[r] == nil {
				perRank[r] = make(map[rippleMsg]bool)
			}
			perRank[r][m] = true
		}
		var nbuf [26]sfc.Octant
		for _, o := range fresh {
			isLeaf := t.hasLeaf(o)
			for _, n := range o.AllNeighbors(nbuf[:0]) {
				for _, r := range spl.RangeOwners(n) {
					if r == me {
						continue
					}
					// Drivers must be current leaves (a refined-away octant's
					// demands are subsumed by its children's); probes go out
					// regardless so the victim reply still covers the region.
					if isLeaf {
						add(r, rippleMsg{O: o})
					}
					if round == 0 {
						add(r, rippleMsg{O: o, Probe: true})
					}
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]rippleMsg, 0, len(perRank))
		for r, set := range perRank {
			b := make([]rippleMsg, 0, len(set))
			for m := range set {
				b = append(b, m)
			}
			dests = append(dests, r)
			bufs = append(bufs, b)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		st.Rounds++

		var remote []sfc.Octant
		for _, b := range recvd {
			for _, m := range b {
				if !m.Probe {
					remote = append(remote, m.O)
				}
			}
		}
		if round == 0 {
			// Victim replies: answer each received probe with the local
			// leaves adjacent to it; the probe's owner imposes them so its
			// dirty coarse octants see the demands of our unchanged fine
			// leaves this round.
			rdests := make([]int, 0, len(srcs))
			rbufs := make([][]sfc.Octant, 0, len(srcs))
			for i, src := range srcs {
				seen := make(map[int]bool)
				var reply []sfc.Octant
				for _, m := range recvd[i] {
					if !m.Probe {
						continue
					}
					for _, n := range m.O.AllNeighbors(nbuf[:0]) {
						lo, hi := t.OverlapRange(n)
						for j := lo; j < hi; j++ {
							if !seen[j] {
								seen[j] = true
								reply = append(reply, t.Leaves[j])
							}
						}
					}
				}
				if len(reply) > 0 {
					rdests = append(rdests, src)
					rbufs = append(rbufs, reply)
				}
			}
			_, replies := par.NBXExchange(c, rdests, rbufs)
			for _, b := range replies {
				remote = append(remote, b...)
			}
		}

		targets, changed := t.balanceTargetsRemote(remote)
		anyChanged := par.Allreduce(c, changed, func(a, b bool) bool { return a || b })
		if !anyChanged {
			return t.Leaves, st
		}
		if changed {
			next := t.Refine(targets, retain)
			children := AddedLeaves(t.Leaves, next.Leaves)
			st.Created += len(children)
			t = next
			pending = children
			fresh = append([]sfc.Octant(nil), children...)
		} else {
			pending = nil
			fresh = nil
		}
		if round > sfc.MaxLevel+2 {
			panic("octree.Balance21Ripple: failed to converge")
		}
	}
}
