package octree

import (
	"fmt"
	"math/rand"
	"testing"

	"proteus/internal/par"
	"proteus/internal/sfc"
)

// A single rank always has one trivially stable splitter table: Equal must
// hold against a re-gather, and against the table of a different forest on
// the same single rank (the table records only the first leaf).
func TestSplittersEqualSingleRank(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		tr := Uniform(2, 3)
		a := GatherSplitters(c, tr.Leaves)
		b := GatherSplitters(c, tr.Leaves)
		if !a.Equal(b) {
			panic("single-rank splitters not equal to re-gather")
		}
		// Refine away from the front: first leaf unchanged, table equal.
		ct := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			ct[i] = int(o.Level)
		}
		ct[tr.Len()-1]++
		fine := tr.Refine(ct, nil)
		if !a.Equal(GatherSplitters(c, fine.Leaves)) {
			panic("single-rank splitters changed without the first leaf moving")
		}
		// Empty single rank vs non-empty must differ.
		if a.Equal(GatherSplitters(c, nil)) {
			panic("non-empty table equal to empty table")
		}
	})
}

// Empty ranks are part of the partition identity: a table with a hole must
// not equal one without, while two tables sharing the hole and the firsts
// are equal even if built from different gathers.
func TestSplittersEqualEmptyRanks(t *testing.T) {
	par.Run(3, func(c *par.Comm) {
		tr := Uniform(2, 3) // 64 leaves
		half := tr.Len() / 2
		holey := func() []sfc.Octant {
			switch c.Rank() {
			case 0:
				return append([]sfc.Octant(nil), tr.Leaves[:half]...)
			case 2:
				return append([]sfc.Octant(nil), tr.Leaves[half:]...)
			}
			return nil
		}
		a := GatherSplitters(c, holey())
		b := GatherSplitters(c, holey())
		if !a.Equal(b) {
			panic("identical holey partitions not equal")
		}
		full := GatherSplitters(c, scatter(tr, c.Rank(), 3))
		if a.Equal(full) || full.Equal(a) {
			panic("holey partition equal to full partition")
		}
		// Ownership must skip the empty rank entirely.
		for i, o := range tr.Leaves {
			got := a.Owner(o.FirstDescendant())
			want := 0
			if i >= half {
				want = 2
			}
			if got != want {
				panic(fmt.Sprintf("leaf %d owned by %d want %d", i, got, want))
			}
		}
	})
}

// Equal compares the partition, not the forest: two different leaf sets
// whose per-rank first leaves coincide produce equal tables. (The callers
// that need forest identity check it separately.)
func TestSplittersEqualDifferentForests(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		tr := Uniform(2, 2) // 16 leaves
		half := tr.Len() / 2
		coarse := append([]sfc.Octant(nil), tr.Leaves[c.Rank()*half:(c.Rank()+1)*half]...)
		// Refine a non-first leaf on each rank: firsts survive untouched.
		ct := make([]int, len(coarse))
		for i, o := range coarse {
			ct[i] = int(o.Level)
		}
		ct[3]++
		fine := (&Tree{Dim: 2, Leaves: coarse}).Refine(ct, nil)
		a := GatherSplitters(c, coarse)
		b := GatherSplitters(c, fine.Leaves)
		if len(fine.Leaves) == len(coarse) {
			panic("refinement did not change the leaf set")
		}
		if !a.Equal(b) {
			panic("tables with identical firsts not equal despite different forests")
		}
	})
}

// OwnerRuns must agree with per-leaf Owner calls and emit maximal,
// contiguous, ordered runs — including under partitions with empty ranks.
func TestOwnerRunsMatchesOwner(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		for seed := int64(0); seed < 4; seed++ {
			par.Run(p, func(c *par.Comm) {
				r := rand.New(rand.NewSource(seed*31 + int64(p)))
				tr := randTree(r, 2, 5, 0.5)
				// A deliberately uneven partition (rank r gets a random-ish
				// slice; some ranks may be empty).
				cuts := make([]int, p+1)
				cuts[p] = tr.Len()
				for k := 1; k < p; k++ {
					cuts[k] = k * tr.Len() / p
					if k%2 == 1 && cuts[k]+3 <= tr.Len() {
						cuts[k] += 3
					}
				}
				local := append([]sfc.Octant(nil), tr.Leaves[cuts[c.Rank()]:cuts[c.Rank()+1]]...)
				spl := GatherSplitters(c, local)
				// Run the scan over the whole forest on every rank.
				covered := 0
				prevOwner := -1
				spl.OwnerRuns(tr.Leaves, func(lo, hi, owner int) {
					if lo != covered || hi <= lo {
						panic(fmt.Sprintf("p=%d seed=%d: run [%d,%d) not contiguous at %d", p, seed, lo, hi, covered))
					}
					if owner == prevOwner {
						panic("adjacent runs share an owner — run not maximal")
					}
					if owner < prevOwner {
						panic("run owners not monotone")
					}
					prevOwner = owner
					for i := lo; i < hi; i++ {
						if want := spl.Owner(tr.Leaves[i].FirstDescendant()); want != owner {
							panic(fmt.Sprintf("p=%d seed=%d: leaf %d run owner %d want %d", p, seed, i, owner, want))
						}
					}
					covered = hi
				})
				if covered != tr.Len() {
					panic("runs did not cover the forest")
				}
				// Empty input: no calls.
				spl.OwnerRuns(nil, func(lo, hi, owner int) { panic("run emitted for empty input") })
			})
		}
	}
}
