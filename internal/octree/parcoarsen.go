package octree

import (
	"sort"

	"proteus/internal/par"
	"proteus/internal/sfc"
)

// ParCoarsen coarsens a distributed, globally sorted forest by arbitrarily
// many levels (Algorithm 7 of the paper). targets[i] is the coarsest
// acceptable level for local leaf i.
//
// The structure follows Alg. 7: candidate coarse octants at partition
// endpoints (the most aggressive coarsening the tail leaf allows) are
// published; inputs overlapped by a remote candidate are repartitioned to
// the rank owning the candidate's start — generalizing the paper's
// head/tail send_recv, since the allgathered candidate table directly
// resolves the "rare case" of a candidate spanning several partitions
// that the paper handles with a distributed exponential search — and a
// local consensus pass (Alg. 6) then yields the global result in one
// shot. Coarsening is conservative: a parent is only emitted when every
// one of its child subtrees is present and consents, so the result never
// overlaps across ranks.
//
// The returned leaves remain globally sorted; counts may become uneven, so
// callers typically repartition afterwards.
func ParCoarsen(c *par.Comm, dim int, leaves []sfc.Octant, targets []int) []sfc.Octant {
	if c.Size() == 1 {
		t := &Tree{Dim: dim, Leaves: leaves}
		return t.Coarsen(targets).Leaves
	}
	type cand struct {
		Region sfc.Octant
		Has    bool
	}
	var mine cand
	if len(leaves) > 0 {
		last := leaves[len(leaves)-1]
		lvl := targets[len(leaves)-1]
		if lvl < 0 {
			lvl = 0
		}
		mine = cand{last.Ancestor(lvl), true}
	}
	spl := GatherSplitters(c, leaves)
	cands := par.Allgather(c, mine)

	// Assign every local leaf its collector: the lowest rank owning the
	// start of any candidate region that overlaps the leaf.
	type item struct {
		Oct    sfc.Octant
		Target int
	}
	collector := make([]int, len(leaves))
	for i := range collector {
		collector[i] = c.Rank()
	}
	for _, cd := range cands {
		if !cd.Has {
			continue
		}
		col := spl.Owner(cd.Region.FirstDescendant())
		lo, hi := (&Tree{Dim: dim, Leaves: leaves}).OverlapRange(cd.Region)
		for j := lo; j < hi; j++ {
			if col < collector[j] {
				collector[j] = col
			}
		}
	}
	perRank := make(map[int][]item)
	var kept []item
	for i, o := range leaves {
		it := item{o, targets[i]}
		if collector[i] != c.Rank() {
			perRank[collector[i]] = append(perRank[collector[i]], it)
		} else {
			kept = append(kept, it)
		}
	}
	dests := make([]int, 0, len(perRank))
	bufs := make([][]item, 0, len(perRank))
	for r, b := range perRank {
		dests = append(dests, r)
		bufs = append(bufs, b)
	}
	srcs, recvd := par.NBXExchange(c, dests, bufs)
	// Append received batches in source-rank order: sources hold higher,
	// contiguous SFC ranges, so concatenation preserves global order.
	idx := make([]int, len(srcs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return srcs[idx[a]] < srcs[idx[b]] })
	for _, k := range idx {
		kept = append(kept, recvd[k]...)
	}
	octs := make([]sfc.Octant, len(kept))
	tgts := make([]int, len(kept))
	for i, it := range kept {
		octs[i] = it.Oct
		tgts[i] = it.Target
	}
	t := &Tree{Dim: dim, Leaves: octs}
	return t.Coarsen(tgts).Leaves
}
