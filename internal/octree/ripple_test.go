package octree

import (
	"fmt"
	"math/rand"
	"testing"

	"proteus/internal/par"
	"proteus/internal/sfc"
)

// perturb applies a random refine/coarsen delta to a (balanced) tree:
// roughly pc of the leaves coarsen one level, then roughly pr of the
// remaining leaves refine one or two levels. Deterministic per rand.
func perturb(r *rand.Rand, t *Tree, pc, pr float64) *Tree {
	ct := make([]int, t.Len())
	for i, o := range t.Leaves {
		ct[i] = int(o.Level)
		if o.Level > 0 && r.Float64() < pc {
			ct[i] = int(o.Level) - 1
		}
	}
	out := t.Coarsen(ct)
	rt := make([]int, out.Len())
	for i, o := range out.Leaves {
		rt[i] = int(o.Level)
		if r.Float64() < pr {
			rt[i] = int(o.Level) + 1 + r.Intn(2)
		}
	}
	return out.Refine(rt, nil)
}

func TestAddedLeaves(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	old := randTree(r, 2, 5, 0.5).Balance21(nil)
	cur := perturb(r, old, 0.1, 0.1)
	added := AddedLeaves(old.Leaves, cur.Leaves)
	// Every added leaf is in cur and absent from old; every cur leaf not
	// in old is reported.
	oldT := New(2, append([]sfc.Octant(nil), old.Leaves...))
	n := 0
	for _, o := range cur.Leaves {
		if !oldT.hasLeaf(o) {
			n++
		}
	}
	if n != len(added) {
		t.Fatalf("AddedLeaves reported %d, brute force found %d", len(added), n)
	}
	for _, o := range added {
		if oldT.hasLeaf(o) {
			t.Fatalf("added leaf %v present in old forest", o)
		}
	}
	if got := AddedLeaves(old.Leaves, old.Leaves); len(got) != 0 {
		t.Fatalf("identical forests: want empty diff, got %d", len(got))
	}
}

// TestBalance21RippleMatchesDistributed is the headline invariant at the
// octree layer: the seeded ripple balance must reproduce the from-scratch
// distributed balance bitwise — same leaves on the same ranks — for
// random refine/coarsen deltas at several rank counts.
func TestBalance21RippleMatchesDistributed(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for seed := int64(0); seed < 4; seed++ {
			par.Run(p, func(c *par.Comm) {
				r := rand.New(rand.NewSource(seed))
				base := randTree(r, 2, 6, 0.45).Balance21(nil)
				pert := perturb(r, base, 0.08, 0.08)
				oldLocal := scatter(base, c.Rank(), p)
				newLocal := scatter(pert, c.Rank(), p)
				dirty := AddedLeaves(oldLocal, newLocal)

				want := Balance21Distributed(c, 2, append([]sfc.Octant(nil), newLocal...), nil)
				got, st := Balance21Ripple(c, 2, append([]sfc.Octant(nil), newLocal...), dirty, nil)
				if len(got) != len(want) {
					panic(fmt.Sprintf("p=%d seed=%d rank=%d: ripple %d leaves, from-scratch %d",
						p, seed, c.Rank(), len(got), len(want)))
				}
				for i := range want {
					if !got[i].EqualKey(want[i]) {
						panic(fmt.Sprintf("p=%d seed=%d rank=%d: leaf %d differs: %v vs %v",
							p, seed, c.Rank(), i, got[i], want[i]))
					}
				}
				all := par.Allgatherv(c, got)
				if c.Rank() == 0 {
					bt := New(2, all)
					if err := bt.Validate(); err != nil {
						panic(err)
					}
					if !bt.IsBalanced21() {
						panic(fmt.Sprintf("p=%d seed=%d: ripple output unbalanced", p, seed))
					}
				}
				_ = st
			})
		}
	}
}

func TestBalance21RippleMatchesDistributed3D(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		r := rand.New(rand.NewSource(7))
		base := randTree(r, 3, 4, 0.35).Balance21(nil)
		pert := perturb(r, base, 0.1, 0.1)
		oldLocal := scatter(base, c.Rank(), 2)
		newLocal := scatter(pert, c.Rank(), 2)
		dirty := AddedLeaves(oldLocal, newLocal)
		want := Balance21Distributed(c, 3, append([]sfc.Octant(nil), newLocal...), nil)
		got, _ := Balance21Ripple(c, 3, append([]sfc.Octant(nil), newLocal...), dirty, nil)
		if len(got) != len(want) {
			panic(fmt.Sprintf("3d rank=%d: ripple %d leaves, from-scratch %d", c.Rank(), len(got), len(want)))
		}
		for i := range want {
			if !got[i].EqualKey(want[i]) {
				panic(fmt.Sprintf("3d rank=%d: leaf %d differs", c.Rank(), i))
			}
		}
	})
}

// A clean forest with an empty dirty set must pass through untouched and
// do no refinement work.
func TestBalance21RippleNoDirty(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		base := Uniform(2, 4)
		local := scatter(base, c.Rank(), 2)
		got, st := Balance21Ripple(c, 2, append([]sfc.Octant(nil), local...), nil, nil)
		if len(got) != len(local) {
			panic("empty dirty set changed the forest")
		}
		if st.Created != 0 || st.Iters != 0 {
			panic(fmt.Sprintf("empty dirty set did work: %+v", st))
		}
	})
}
