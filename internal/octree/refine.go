package octree

import (
	"fmt"
	"sort"

	"proteus/internal/sfc"
)

// Refine replaces each leaf by its descendants at the requested level in a
// single pass (Algorithm 5 of the paper): the SFC-order recursion over each
// leaf's subtree emits descendants already sorted, so no re-sort is needed
// regardless of how many levels each leaf is refined by. Leaves whose
// target is at or below their current level are kept unchanged (use
// Coarsen to go coarser). Descendants rejected by retain — void octants of
// incomplete domains — are discarded.
//
// targets must have one entry per leaf.
func (t *Tree) Refine(targets []int, retain RetainFn) *Tree {
	if len(targets) != len(t.Leaves) {
		panic(fmt.Sprintf("octree.Refine: %d targets for %d leaves", len(targets), len(t.Leaves)))
	}
	out := make([]sfc.Octant, 0, len(t.Leaves))
	var emit func(o sfc.Octant, target int)
	emit = func(o sfc.Octant, target int) {
		if retain != nil && !retain(o) {
			return
		}
		if int(o.Level) >= target {
			out = append(out, o)
			return
		}
		for c := 0; c < o.NumChildren(); c++ {
			emit(o.Child(c), target)
		}
	}
	for i, leaf := range t.Leaves {
		target := targets[i]
		if target > sfc.MaxLevel {
			target = sfc.MaxLevel
		}
		emit(leaf, target)
	}
	return &Tree{Dim: t.Dim, Leaves: out}
}

// RefineLevelByLevel is the baseline the paper improves upon: octants are
// refined a single level per pass, with a full sort-and-linearize between
// passes, until every leaf reaches its target. The extra passes and sorts
// are the overhead Alg. 5 eliminates.
func (t *Tree) RefineLevelByLevel(targets []int, retain RetainFn) *Tree {
	type job struct {
		oct    sfc.Octant
		target int
	}
	jobs := make([]job, len(t.Leaves))
	for i, o := range t.Leaves {
		jobs[i] = job{o, targets[i]}
	}
	for {
		changed := false
		next := make([]job, 0, len(jobs))
		for _, j := range jobs {
			if int(j.oct.Level) >= j.target {
				next = append(next, j)
				continue
			}
			changed = true
			for c := 0; c < j.oct.NumChildren(); c++ {
				ch := j.oct.Child(c)
				if retain != nil && !retain(ch) {
					continue
				}
				next = append(next, job{ch, j.target})
			}
		}
		// The level-by-level scheme re-linearizes after every pass; this
		// sort is the cost being measured, so it is performed even though
		// the pass preserves order.
		sort.Slice(next, func(i, j int) bool { return sfc.Less(next[i].oct, next[j].oct) })
		jobs = next
		if !changed {
			break
		}
	}
	out := make([]sfc.Octant, len(jobs))
	for i, j := range jobs {
		out[i] = j.oct
	}
	return &Tree{Dim: t.Dim, Leaves: out}
}
