package octree

import (
	"fmt"

	"proteus/internal/sfc"
)

// Coarsen replaces leaves by ancestors subject to descendant consensus
// (Algorithm 6 of the paper). targets[i] is the coarsest acceptable level
// for leaf i (targets[i] <= leaf level). An ancestor A is emitted iff
// (i) no descendant of A requires a level finer than A — i.e. A's level is
// at least the maximum target voted by any input leaf under it — and
// (ii) the same cannot be said of A's parent, so coarsening is maximal.
//
// The traversal iterates over the sorted input exactly once, emitting and
// retracting child outputs per subtree, which is what allows coarsening by
// arbitrarily many levels in a single pass.
//
// Subtrees containing no input leaves are void (incomplete trees). A
// parent octant is never emitted over a void child subtree, preserving the
// domain shape.
func (t *Tree) Coarsen(targets []int) *Tree {
	if len(targets) != len(t.Leaves) {
		panic(fmt.Sprintf("octree.Coarsen: %d targets for %d leaves", len(targets), len(t.Leaves)))
	}
	c := &coarsener{in: t.Leaves, targets: targets}
	if len(t.Leaves) > 0 {
		c.visit(sfc.Root(t.Dim))
	}
	if c.i != len(c.in) {
		panic("octree.Coarsen: input not consumed; tree not linearized?")
	}
	return &Tree{Dim: t.Dim, Leaves: c.out}
}

type coarsener struct {
	in      []sfc.Octant
	targets []int
	i       int
	out     []sfc.Octant
}

// visit traverses the subtree rooted at R and returns the finest level any
// input leaf under R insists on (its coarsening vote), and whether the
// subtree contains any input at all.
func (c *coarsener) visit(R sfc.Octant) (coarsenTo int, occupied bool) {
	if c.i >= len(c.in) || !R.Overlaps(c.in[c.i]) {
		return 0, false // void subtree: no constraint, nothing emitted
	}
	if R.EqualKey(c.in[c.i]) {
		c.out = append(c.out, R)
		coarsenTo = c.targets[c.i]
		if coarsenTo > int(R.Level) {
			coarsenTo = int(R.Level) // a leaf never votes finer than itself
		}
		c.i++
		return coarsenTo, true
	}
	// R is a strict ancestor of the current input leaf: recurse.
	preSize := len(c.out)
	allOccupied := true
	anyOccupied := false
	coarsenTo = 0
	for ch := 0; ch < R.NumChildren(); ch++ {
		lc, occ := c.visit(R.Child(ch))
		if occ {
			anyOccupied = true
			if lc > coarsenTo {
				coarsenTo = lc
			}
		} else {
			allOccupied = false
		}
	}
	if allOccupied && coarsenTo <= int(R.Level) {
		// Consensus reached: retract the children's output and emit R.
		c.out = append(c.out[:preSize], R)
	}
	return coarsenTo, anyOccupied
}

// CoarsenLevelByLevel is the baseline: coarsen by a single level per pass
// (merging complete sibling groups whose members all allow it), iterating
// until no merge applies. Each pass rescans and re-linearizes the tree —
// the overhead Alg. 6 eliminates for deep coarsening.
func (t *Tree) CoarsenLevelByLevel(targets []int) *Tree {
	type job struct {
		oct    sfc.Octant
		target int
	}
	jobs := make([]job, len(t.Leaves))
	for i, o := range t.Leaves {
		jobs[i] = job{o, targets[i]}
	}
	for {
		changed := false
		next := make([]job, 0, len(jobs))
		for i := 0; i < len(jobs); {
			o := jobs[i].oct
			nc := o.NumChildren()
			// A sibling group is mergeable iff all 2^d children of the same
			// parent are adjacent in the array, each allowing a coarser
			// level.
			if o.Level > 0 && o.ChildIndex() == 0 && i+nc <= len(jobs) {
				parent := o.Parent()
				ok := true
				for k := 0; k < nc; k++ {
					j := jobs[i+k]
					if !j.oct.EqualKey(parent.Child(k)) || j.target >= int(j.oct.Level) {
						ok = false
						break
					}
				}
				if ok {
					maxTarget := 0
					for k := 0; k < nc; k++ {
						if jobs[i+k].target > maxTarget {
							maxTarget = jobs[i+k].target
						}
					}
					next = append(next, job{parent, maxTarget})
					i += nc
					changed = true
					continue
				}
			}
			next = append(next, jobs[i])
			i++
		}
		jobs = next
		if !changed {
			break
		}
	}
	out := make([]sfc.Octant, len(jobs))
	for i, j := range jobs {
		out[i] = j.oct
	}
	return &Tree{Dim: t.Dim, Leaves: out}
}
