package octree

import (
	"fmt"
	"math/rand"
	"testing"

	"proteus/internal/par"
	"proteus/internal/sfc"
)

// scatter deals the leaves of a globally built tree to p ranks in
// contiguous SFC ranges.
func scatter(tr *Tree, rank, p int) []sfc.Octant {
	n := tr.Len()
	lo := rank * n / p
	hi := (rank + 1) * n / p
	out := make([]sfc.Octant, hi-lo)
	copy(out, tr.Leaves[lo:hi])
	return out
}

func TestPartitionWeightedBalance(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		par.Run(p, func(c *par.Comm) {
			tr := Uniform(2, 4) // 256 leaves, built identically on all ranks
			local := scatter(tr, c.Rank(), p)
			// Skew: initially give everything weight 1.
			out := PartitionWeighted(c, local, nil)
			n := len(out)
			counts := par.Allgather(c, n)
			min, max := counts[0], counts[0]
			total := 0
			for _, v := range counts {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
				total += v
			}
			if total != 256 {
				panic(fmt.Sprintf("p=%d: lost leaves: %d", p, total))
			}
			if max-min > 2 {
				panic(fmt.Sprintf("p=%d: unbalanced %v", p, counts))
			}
			// Order preserved globally.
			all := par.Allgatherv(c, out)
			for i := range all {
				if !all[i].EqualKey(tr.Leaves[i]) {
					panic("partition broke global order")
				}
			}
		})
	}
}

func TestPartitionWeightedSkewed(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		tr := Uniform(2, 4)
		local := scatter(tr, c.Rank(), 4)
		// Heavy weights on rank 0's leaves: they should spread out.
		w := make([]float64, len(local))
		for i := range w {
			if c.Rank() == 0 {
				w[i] = 10
			} else {
				w[i] = 1
			}
		}
		out := PartitionWeighted(c, local, w)
		all := par.Allgatherv(c, out)
		if len(all) != 256 {
			panic("lost leaves")
		}
		// Rank 0 should hold far fewer than 64 leaves now.
		if c.Rank() == 0 && len(out) >= 64 {
			panic(fmt.Sprintf("weighted partition did not shrink heavy rank: %d", len(out)))
		}
	})
}

func TestGatherSplittersOwner(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		tr := Uniform(2, 3) // 64 leaves
		local := scatter(tr, c.Rank(), 4)
		spl := GatherSplitters(c, local)
		// Every leaf's first descendant must be owned by the rank holding it.
		for r := 0; r < 4; r++ {
			lo := r * 64 / 4
			hi := (r + 1) * 64 / 4
			for i := lo; i < hi; i++ {
				if got := spl.Owner(tr.Leaves[i].FirstDescendant()); got != r {
					panic(fmt.Sprintf("leaf %d: owner %d want %d", i, got, r))
				}
			}
		}
	})
}

func TestParCoarsenMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for seed := int64(0); seed < 5; seed++ {
			var got, want []sfc.Octant
			par.Run(p, func(c *par.Comm) {
				r := rand.New(rand.NewSource(seed))
				tr := randTree(r, 2, 5, 0.5)
				targets := make([]int, tr.Len())
				for i, o := range tr.Leaves {
					targets[i] = int(o.Level) - r.Intn(int(o.Level)+1)
				}
				lo := c.Rank() * tr.Len() / p
				hi := (c.Rank() + 1) * tr.Len() / p
				local := ParCoarsen(c, 2, append([]sfc.Octant(nil), tr.Leaves[lo:hi]...), targets[lo:hi])
				all := par.Allgatherv(c, local)
				if c.Rank() == 0 {
					got = all
					want = tr.Coarsen(targets).Leaves
				}
			})
			if len(got) != len(want) {
				t.Fatalf("p=%d seed=%d: got %d leaves want %d", p, seed, len(got), len(want))
			}
			for i := range want {
				if !got[i].EqualKey(want[i]) {
					t.Fatalf("p=%d seed=%d: leaf %d: got %v want %v", p, seed, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParCoarsenDeepMergeAcrossRanks(t *testing.T) {
	// A uniform tree fully collapsible to root, scattered over 4 ranks:
	// the merge group spans every rank, exercising the multi-partition
	// candidate overlap path.
	par.Run(4, func(c *par.Comm) {
		tr := Uniform(2, 4) // 256 leaves
		local := scatter(tr, c.Rank(), 4)
		targets := make([]int, len(local))
		out := ParCoarsen(c, 2, local, targets)
		all := par.Allgatherv(c, out)
		if len(all) != 1 || all[0].Level != 0 {
			panic(fmt.Sprintf("expected root collapse, got %d leaves", len(all)))
		}
	})
}

func TestBalance21Distributed(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			// Deep corner refinement: the grading cascade must propagate
			// across rank boundaries.
			tr := Build(2, func(o sfc.Octant) bool {
				return o.X == 0 && o.Y == 0
			}, 9, nil)
			local := scatter(tr, c.Rank(), p)
			bal := Balance21Distributed(c, 2, local, nil)
			all := par.Allgatherv(c, bal)
			if c.Rank() == 0 {
				bt := New(2, all)
				if err := bt.Validate(); err != nil {
					panic(err)
				}
				if !bt.IsBalanced21() {
					panic(fmt.Sprintf("p=%d: distributed balance failed", p))
				}
				if !bt.IsComplete() {
					panic("balance lost completeness")
				}
				// Must match the serial result.
				st := tr.Balance21(nil)
				if st.Len() != bt.Len() {
					panic(fmt.Sprintf("p=%d: distributed %d leaves, serial %d", p, bt.Len(), st.Len()))
				}
			}
		})
	}
}

func TestSortDistributedOctants(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		r := rand.New(rand.NewSource(int64(c.Rank())))
		// Each rank contributes random leaves from its own random tree.
		tr := randTree(r, 2, 5, 0.4)
		local := make([]sfc.Octant, 0, 50)
		for i := 0; i < 50 && i < tr.Len(); i++ {
			local = append(local, tr.Leaves[r.Intn(tr.Len())])
		}
		sorted := SortDistributed(c, local, SortOptions{KWay: 2})
		all := par.Allgatherv(c, sorted)
		if c.Rank() == 0 {
			out := New(2, all)
			// After linearization, global result must validate.
			if err := out.Validate(); err != nil {
				panic(err)
			}
		}
	})
}
