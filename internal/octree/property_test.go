package octree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"proteus/internal/sfc"
)

func TestBalance21Idempotent(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTree(r, 2, 6, 0.4).Balance21(nil)
		again := tr.Balance21(nil)
		if again.Len() != tr.Len() {
			return false
		}
		for i := range tr.Leaves {
			if !tr.Leaves[i].EqualKey(again.Leaves[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenIdentityWhenTargetsEqualLevels(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTree(r, 2, 5, 0.5)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level)
		}
		out := tr.Coarsen(targets)
		if out.Len() != tr.Len() {
			return false
		}
		for i := range out.Leaves {
			if !out.Leaves[i].EqualKey(tr.Leaves[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefinePreservesVolume(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 2 + int(seed&1)
		maxL := 5
		if dim == 3 {
			maxL = 3
		}
		tr := randTree(r, dim, maxL, 0.4)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level) + r.Intn(3)
		}
		out := tr.Refine(targets, nil)
		return out.IsComplete() && out.Validate() == nil
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenNeverFinerThanInput(t *testing.T) {
	// Every output octant of Coarsen is an input leaf or an ancestor of
	// input leaves — never finer than the finest input covering it.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTree(r, 2, 5, 0.5)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level) - r.Intn(int(o.Level)+1)
		}
		out := tr.Coarsen(targets)
		if !out.IsComplete() || out.Validate() != nil {
			return false
		}
		for _, o := range out.Leaves {
			lo, hi := tr.OverlapRange(o)
			if lo >= hi {
				return false
			}
			for i := lo; i < hi; i++ {
				in := tr.Leaves[i]
				// o covers in (or equals it): level(o) <= level(in), and
				// coarsening must respect in's vote.
				if int(o.Level) > int(in.Level) {
					return false
				}
				if int(o.Level) < targets[i] {
					return false // coarsened beyond what the leaf allowed
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevelHistogramSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		tr := randTree(r, 2, 5, 0.5)
		h := tr.LevelHistogram()
		var s float64
		for _, v := range h {
			s += v
		}
		if s < 0.999999 || s > 1.000001 {
			t.Fatalf("histogram sums to %v", s)
		}
	}
}

func TestHilbertOrderingPartitionsContiguously(t *testing.T) {
	// Sorting by Hilbert index and cutting into chunks must give each
	// chunk a connected... we check the weaker, testable property used in
	// practice: adjacent elements in Hilbert order are spatially nearby
	// (within 2 side lengths for a uniform grid).
	tr := Uniform(2, 4)
	leaves := append([]sfc.Octant(nil), tr.Leaves...)
	sortLocal(leaves)
	// Morton baseline: count long jumps.
	longJumps := func(ls []sfc.Octant) int {
		n := 0
		for i := 1; i < len(ls); i++ {
			dx := absDiff32(ls[i].X, ls[i-1].X)
			dy := absDiff32(ls[i].Y, ls[i-1].Y)
			if dx+dy > 2*ls[i].Side() {
				n++
			}
		}
		return n
	}
	morton := longJumps(leaves)
	hil := append([]sfc.Octant(nil), leaves...)
	sortByHilbert(hil)
	hilbert := longJumps(hil)
	if hilbert >= morton {
		t.Fatalf("Hilbert order should have fewer long jumps: hilbert=%d morton=%d", hilbert, morton)
	}
	if hilbert != 0 {
		t.Fatalf("Hilbert order on a uniform grid must be face-continuous, %d jumps", hilbert)
	}
}

func sortByHilbert(ls []sfc.Octant) {
	type hk struct {
		h uint64
		o sfc.Octant
	}
	keys := make([]hk, len(ls))
	for i, o := range ls {
		keys[i] = hk{sfc.HilbertIndex(o), o}
	}
	sortSliceStable(keys, func(a, b hk) bool { return a.h < b.h })
	for i := range ls {
		ls[i] = keys[i].o
	}
}

func sortSliceStable[T any](s []T, less func(a, b T) bool) {
	// Insertion sort is fine at test sizes and avoids importing sort with
	// a closure allocation in the hot loop.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func absDiff32(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}
