// Package octree implements linearized, 2:1-balanced, possibly incomplete
// quad/octrees and the adaptive remeshing algorithms of Saurabh et al.
// (IPDPS 2023, Sec. II-C): multi-level refinement (Alg. 5), multi-level
// coarsening by descendant consensus (Alg. 6), distributed coarsening with
// partition-endpoint overlap exchange (Alg. 7), ripple 2:1 balancing
// (serial and distributed), and weighted SFC partitioning. Level-by-level
// refine/coarsen baselines are provided for the ablation benchmarks.
package octree

import (
	"fmt"
	"sort"

	"proteus/internal/sfc"
)

// Tree is a linearized (leaf-only) 2^d-tree: the Leaves slice is sorted in
// Morton order and pairwise non-overlapping. A Tree need not be complete
// (cover the whole root domain); incomplete trees arise from domain
// retention filters (Sec. II-C1b).
type Tree struct {
	Dim    int
	Leaves []sfc.Octant
}

// RetainFn decides whether an octant intersects the computational domain;
// octants for which it returns false are "void" and are discarded during
// refinement. A nil RetainFn keeps everything (complete tree).
type RetainFn func(sfc.Octant) bool

// New returns a tree over the given leaves, sorting and linearizing them.
func New(dim int, leaves []sfc.Octant) *Tree {
	t := &Tree{Dim: dim, Leaves: leaves}
	t.Linearize()
	return t
}

// Uniform returns the complete tree with every leaf at the given level.
func Uniform(dim, level int) *Tree {
	var out []sfc.Octant
	var rec func(o sfc.Octant)
	rec = func(o sfc.Octant) {
		if int(o.Level) == level {
			out = append(out, o)
			return
		}
		for c := 0; c < o.NumChildren(); c++ {
			rec(o.Child(c))
		}
	}
	rec(sfc.Root(dim))
	return &Tree{Dim: dim, Leaves: out}
}

// Build constructs a tree by recursive subdivision: an octant is split
// while splitFn returns true and its level is below maxLevel. Octants
// rejected by retain are discarded.
func Build(dim int, splitFn func(sfc.Octant) bool, maxLevel int, retain RetainFn) *Tree {
	var out []sfc.Octant
	var rec func(o sfc.Octant)
	rec = func(o sfc.Octant) {
		if retain != nil && !retain(o) {
			return
		}
		if int(o.Level) < maxLevel && splitFn(o) {
			for c := 0; c < o.NumChildren(); c++ {
				rec(o.Child(c))
			}
			return
		}
		out = append(out, o)
	}
	rec(sfc.Root(dim))
	return &Tree{Dim: dim, Leaves: out}
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.Leaves) }

// Linearize sorts the leaves in Morton order and removes overlaps, keeping
// the finer octant whenever an ancestor/descendant pair is present.
func (t *Tree) Linearize() {
	sfc.Sort(t.Leaves)
	src := t.Leaves
	out := src[:0]
	for _, o := range src {
		// In sorted order an overlapping predecessor is an ancestor (or a
		// duplicate) of o; drop it to keep the finer octant.
		for len(out) > 0 && out[len(out)-1].Overlaps(o) {
			out = out[:len(out)-1]
		}
		out = append(out, o)
	}
	t.Leaves = out
}

// Validate checks the linearization invariants and returns an error
// describing the first violation.
func (t *Tree) Validate() error {
	for i, o := range t.Leaves {
		if !o.Valid() || int(o.Dim) != t.Dim {
			return fmt.Errorf("leaf %d invalid: %v", i, o)
		}
		if i > 0 {
			prev := t.Leaves[i-1]
			if !sfc.Less(prev, o) {
				return fmt.Errorf("leaves %d,%d out of order: %v !< %v", i-1, i, prev, o)
			}
			if prev.Overlaps(o) {
				return fmt.Errorf("leaves %d,%d overlap: %v, %v", i-1, i, prev, o)
			}
		}
	}
	return nil
}

// IsComplete reports whether the leaves exactly cover the root domain.
func (t *Tree) IsComplete() bool {
	var vol uint64
	for _, o := range t.Leaves {
		v := uint64(1)
		for d := 0; d < t.Dim; d++ {
			v *= uint64(o.Side())
		}
		vol += v
	}
	full := uint64(1)
	for d := 0; d < t.Dim; d++ {
		full *= uint64(sfc.MaxCoord)
	}
	return vol == full
}

// MinMaxLevel returns the coarsest and finest leaf levels (0,0 if empty).
func (t *Tree) MinMaxLevel() (min, max int) {
	if len(t.Leaves) == 0 {
		return 0, 0
	}
	min, max = int(t.Leaves[0].Level), int(t.Leaves[0].Level)
	for _, o := range t.Leaves {
		if int(o.Level) < min {
			min = int(o.Level)
		}
		if int(o.Level) > max {
			max = int(o.Level)
		}
	}
	return min, max
}

// LevelHistogram returns the fraction of leaves at each level up to the
// finest, as plotted in Fig. 9 of the paper.
func (t *Tree) LevelHistogram() []float64 {
	_, max := t.MinMaxLevel()
	h := make([]float64, max+1)
	if len(t.Leaves) == 0 {
		return h
	}
	for _, o := range t.Leaves {
		h[o.Level]++
	}
	for i := range h {
		h[i] /= float64(len(t.Leaves))
	}
	return h
}

// VolumeFractionAtLevel returns the fraction of the domain volume covered
// by leaves at exactly the given level.
func (t *Tree) VolumeFractionAtLevel(level int) float64 {
	var vol, tot float64
	for _, o := range t.Leaves {
		v := 1.0
		for d := 0; d < t.Dim; d++ {
			v *= float64(o.Side()) / float64(sfc.MaxCoord)
		}
		tot += v
		if int(o.Level) == level {
			vol += v
		}
	}
	if tot == 0 {
		return 0
	}
	return vol / tot
}

// OverlapRange returns the half-open index range [lo, hi) of leaves
// overlapping octant q. At most one leaf can overlap q as a strict
// ancestor; it is the predecessor of lo and is included in the range.
func (t *Tree) OverlapRange(q sfc.Octant) (lo, hi int) {
	lo = sort.Search(len(t.Leaves), func(i int) bool { return sfc.Compare(t.Leaves[i], q) >= 0 })
	last := q.LastDescendant()
	hi = sort.Search(len(t.Leaves), func(i int) bool { return sfc.Compare(t.Leaves[i], last) > 0 })
	if lo > 0 && t.Leaves[lo-1].IsAncestorOf(q) {
		lo--
	}
	return lo, hi
}

// FinestOverlappingLevel returns the maximum level among leaves overlapping
// q, or -1 if the region is void.
func (t *Tree) FinestOverlappingLevel(q sfc.Octant) int {
	lo, hi := t.OverlapRange(q)
	max := -1
	for i := lo; i < hi; i++ {
		if int(t.Leaves[i].Level) > max {
			max = int(t.Leaves[i].Level)
		}
	}
	return max
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	leaves := make([]sfc.Octant, len(t.Leaves))
	copy(leaves, t.Leaves)
	return &Tree{Dim: t.Dim, Leaves: leaves}
}
