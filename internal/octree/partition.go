package octree

import (
	"sort"

	"proteus/internal/dsort"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Splitters is the global partition table of a distributed forest: the
// first leaf of every non-empty rank. It answers ownership queries for
// ghost exchange, distributed balancing and inter-grid transfer.
type Splitters struct {
	size   int
	firsts []sfc.Octant // first leaf per rank (undefined where !has)
	has    []bool
}

// GatherSplitters allgathers the partition table of the distributed,
// globally sorted leaf array.
func GatherSplitters(c *par.Comm, leaves []sfc.Octant) Splitters {
	type entry struct {
		First sfc.Octant
		Has   bool
	}
	var e entry
	if len(leaves) > 0 {
		e = entry{leaves[0], true}
	}
	all := par.Allgather(c, e)
	s := Splitters{size: c.Size(), firsts: make([]sfc.Octant, c.Size()), has: make([]bool, c.Size())}
	for r, v := range all {
		s.firsts[r], s.has[r] = v.First, v.Has
	}
	return s
}

// Equal reports whether two splitter tables describe the same partition:
// the same set of non-empty ranks with the same first leaf each. Combined
// with an unchanged global forest this pins the local leaf lists; the
// incremental mesh patch uses it to decide whether node ownership is
// stable enough to reuse the old numbering.
func (s Splitters) Equal(o Splitters) bool {
	if s.size != o.size {
		return false
	}
	for r := 0; r < s.size; r++ {
		if s.has[r] != o.has[r] {
			return false
		}
		if s.has[r] && !s.firsts[r].EqualKey(o.firsts[r]) {
			return false
		}
	}
	return true
}

// Owner returns the rank whose leaf range contains the deepest-level point
// key q (compare with the first-descendant key of a leaf to locate it).
func (s Splitters) Owner(q sfc.Octant) int {
	owner := 0
	for r := 0; r < s.size; r++ {
		if !s.has[r] {
			continue
		}
		if sfc.Compare(s.firsts[r], q) <= 0 || s.firsts[r].IsAncestorOf(q) {
			owner = r
		} else {
			break
		}
	}
	return owner
}

// OwnerRuns invokes fn once per maximal run [lo, hi) of consecutive leaves
// sharing one owner under the table, in order. leaves must be sorted;
// ownership is monotone along the SFC, so the scan never revisits earlier
// ranks. This is the bulk routing primitive of the splitter-shift
// migration: whole surviving ranges move with one ownership decision
// instead of one Owner call per leaf.
func (s Splitters) OwnerRuns(leaves []sfc.Octant, fn func(lo, hi, owner int)) {
	if len(leaves) == 0 {
		return
	}
	lo := 0
	own := s.Owner(leaves[0].FirstDescendant())
	for i := 1; i < len(leaves); i++ {
		q := leaves[i].FirstDescendant()
		o := own
		for r := own + 1; r < s.size; r++ {
			if !s.has[r] {
				continue
			}
			if sfc.Compare(s.firsts[r], q) <= 0 || s.firsts[r].IsAncestorOf(q) {
				o = r
			} else {
				break
			}
		}
		if o != own {
			fn(lo, i, own)
			lo, own = i, o
		}
	}
	fn(lo, len(leaves), own)
}

// RangeOwners returns every rank whose leaf range may intersect the region
// covered by octant q (the Morton interval [q, q.LastDescendant]).
func (s Splitters) RangeOwners(q sfc.Octant) []int {
	lo := s.Owner(q.FirstDescendant())
	hi := s.Owner(q.LastDescendant())
	var out []int
	for r := lo; r <= hi; r++ {
		if s.has[r] || r == lo {
			out = append(out, r)
		}
	}
	return out
}

// PartitionWeighted redistributes the globally sorted leaves so that each
// rank receives a contiguous SFC range of approximately equal total
// weight, preserving global order. weights may be nil for unit weights.
// This is the standard SFC-partitioning step run after every remesh.
func PartitionWeighted(c *par.Comm, leaves []sfc.Octant, weights []float64) []sfc.Octant {
	p := c.Size()
	w := weights
	if w == nil {
		w = make([]float64, len(leaves))
		for i := range w {
			w[i] = 1
		}
	}
	var localW float64
	for _, v := range w {
		localW += v
	}
	myOff := par.Exscan(c, localW, 0, func(a, b float64) float64 { return a + b })
	totalW := par.Allreduce(c, localW, func(a, b float64) float64 { return a + b })
	if totalW == 0 {
		return leaves
	}
	bufs := make([][]sfc.Octant, p)
	prefix := myOff
	for i, o := range leaves {
		mid := prefix + w[i]/2
		r := int(mid / totalW * float64(p))
		if r >= p {
			r = p - 1
		}
		if r < 0 {
			r = 0
		}
		bufs[r] = append(bufs[r], o)
		prefix += w[i]
	}
	got := par.Alltoallv(c, bufs)
	var out []sfc.Octant
	for r := 0; r < p; r++ {
		out = append(out, got[r]...)
	}
	return out
}

// SortDistributed globally sorts and linearizes distributed leaves using
// the staged distributed sample sort, then removes cross-rank overlaps.
func SortDistributed(c *par.Comm, leaves []sfc.Octant, opt SortOptions) []sfc.Octant {
	sorted := distSort(c, leaves, opt)
	// Local linearization.
	t := &Tree{Dim: dimOf(sorted), Leaves: sorted}
	t.Linearize()
	sorted = t.Leaves
	// Cross-rank overlap removal: an ancestor at the tail of rank r can
	// overlap the head of rank r+1; boundary exchange resolves it keeping
	// the finer octant.
	return removeBoundaryOverlaps(c, sorted)
}

// SortOptions configures distributed sorting of octants.
type SortOptions struct {
	KWay int  // superpartitions per stage (0 = par.DefaultKWay)
	Flat bool // use the flat baseline instead of the staged sort
}

func distSort(c *par.Comm, leaves []sfc.Octant, opt SortOptions) []sfc.Octant {
	if c.Size() == 1 {
		sfc.Sort(leaves)
		return leaves
	}
	return dsort.Sort(c, leaves, sfc.Less, dsort.Options{KWay: opt.KWay, Flat: opt.Flat})
}

func dimOf(leaves []sfc.Octant) int {
	if len(leaves) == 0 {
		return 3
	}
	return int(leaves[0].Dim)
}

// removeBoundaryOverlaps drops local leaves that are ancestors of (or equal
// to) leaves on higher ranks. Each rank sends its first leaf downward; a
// chain of coarser ancestors spanning several ranks is resolved because the
// allgathered heads expose every rank's first leaf.
func removeBoundaryOverlaps(c *par.Comm, leaves []sfc.Octant) []sfc.Octant {
	type entry struct {
		First sfc.Octant
		Has   bool
	}
	var e entry
	if len(leaves) > 0 {
		e = entry{leaves[0], true}
	}
	all := par.Allgather(c, e)
	// Drop trailing local leaves overlapped by any later rank's head.
	for r := c.Rank() + 1; r < c.Size(); r++ {
		if !all[r].Has {
			continue
		}
		head := all[r].First
		for len(leaves) > 0 {
			tail := leaves[len(leaves)-1]
			if tail.Overlaps(head) && tail.Level <= head.Level && !tail.EqualKey(head) {
				leaves = leaves[:len(leaves)-1]
			} else if tail.EqualKey(head) {
				leaves = leaves[:len(leaves)-1]
			} else {
				break
			}
		}
		break // only the immediately following non-empty rank can matter
	}
	return leaves
}

// sortLocal sorts a batch of octants locally (helper shared by tests).
func sortLocal(leaves []sfc.Octant) {
	sort.Slice(leaves, func(i, j int) bool { return sfc.Less(leaves[i], leaves[j]) })
}
