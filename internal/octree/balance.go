package octree

import (
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// PointLocate returns the index of the leaf containing the grid point
// (x,y,z) (half-open octant regions), or -1 if the point lies in a void
// region of an incomplete tree.
func (t *Tree) PointLocate(x, y, z uint32) int {
	q := sfc.Octant{X: x, Y: y, Z: z, Level: sfc.MaxLevel, Dim: uint8(t.Dim)}
	lo, hi := t.OverlapRange(q)
	for i := lo; i < hi; i++ {
		if t.Leaves[i].ContainsPoint(x, y, z) {
			return i
		}
	}
	return -1
}

// Balance21 enforces the full (face, edge and corner) 2:1 balance
// condition — no two touching leaves may differ by more than one level —
// by iterative ripple refinement to a fixed point.
//
// Violations are detected from the fine side: if leaf f touches a leaf c
// with level(c) < level(f)-1, then c contains the anchor of one of f's
// same-level neighbour octants, so a point-location per neighbour finds
// every violating coarse leaf in O(log n). Refinement honours the retain
// filter for incomplete trees.
func (t *Tree) Balance21(retain RetainFn) *Tree {
	cur := t
	for iter := 0; ; iter++ {
		targets, changed := cur.balanceTargets(nil)
		if !changed {
			return cur
		}
		cur = cur.Refine(targets, retain)
		if iter > sfc.MaxLevel+2 {
			panic("octree.Balance21: failed to converge")
		}
	}
}

// balanceTargets computes refinement targets from local leaves plus
// optional remote octants (leaves owned by other ranks whose grading
// constraints reach into this partition). Returns the per-leaf targets and
// whether any leaf must refine.
func (t *Tree) balanceTargets(remote []sfc.Octant) ([]int, bool) {
	targets := make([]int, len(t.Leaves))
	for i, o := range t.Leaves {
		targets[i] = int(o.Level)
	}
	changed := false
	for _, o := range t.Leaves {
		if t.imposeOn(o, targets) {
			changed = true
		}
	}
	for _, ro := range remote {
		if t.imposeOn(ro, targets) {
			changed = true
		}
	}
	return targets, changed
}

// IsBalanced21 reports whether the tree satisfies the full 2:1 condition.
func (t *Tree) IsBalanced21() bool {
	var nbuf [26]sfc.Octant
	for _, o := range t.Leaves {
		for _, n := range o.AllNeighbors(nbuf[:0]) {
			j := t.PointLocate(n.X, n.Y, n.Z)
			if j >= 0 && int(t.Leaves[j].Level) < int(o.Level)-1 {
				return false
			}
		}
	}
	return true
}

// Balance21Distributed enforces 2:1 balance on a distributed forest. Each
// round performs a local ripple fixpoint, then ships every leaf whose
// grading constraint reaches a remote partition to the owning ranks via
// NBX sparse exchange, and repeats until no rank changes (allreduced
// flag). Returns the new local leaves; the partition may grow unevenly,
// so callers repartition afterwards.
func Balance21Distributed(c *par.Comm, dim int, leaves []sfc.Octant, retain RetainFn) []sfc.Octant {
	if c.Size() == 1 {
		t := &Tree{Dim: dim, Leaves: leaves}
		return t.Balance21(retain).Leaves
	}
	t := &Tree{Dim: dim, Leaves: leaves}
	for round := 0; ; round++ {
		t = t.Balance21(retain)
		spl := GatherSplitters(c, t.Leaves)
		// Ship each leaf to every remote rank owning part of any of its
		// neighbour octants: the anchors those ranks point-locate may fall
		// anywhere in the neighbour region.
		perRank := make(map[int]map[sfc.Octant]bool)
		var nbuf [26]sfc.Octant
		for _, o := range t.Leaves {
			for _, n := range o.AllNeighbors(nbuf[:0]) {
				for _, r := range spl.RangeOwners(n) {
					if r == c.Rank() {
						continue
					}
					if perRank[r] == nil {
						perRank[r] = make(map[sfc.Octant]bool)
					}
					perRank[r][o] = true
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]sfc.Octant, 0, len(perRank))
		for r, set := range perRank {
			b := make([]sfc.Octant, 0, len(set))
			for o := range set {
				b = append(b, o)
			}
			dests = append(dests, r)
			bufs = append(bufs, b)
		}
		_, recvd := par.NBXExchange(c, dests, bufs)
		var remote []sfc.Octant
		for _, b := range recvd {
			remote = append(remote, b...)
		}
		targets, changed := t.balanceTargets(remote)
		anyChanged := par.Allreduce(c, changed, func(a, b bool) bool { return a || b })
		if !anyChanged {
			return t.Leaves
		}
		if changed {
			t = t.Refine(targets, retain)
		}
		if round > sfc.MaxLevel+2 {
			panic("octree.Balance21Distributed: failed to converge")
		}
	}
}
