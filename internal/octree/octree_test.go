package octree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"proteus/internal/sfc"
)

// randTree builds a random adaptive tree by probabilistic splitting.
func randTree(r *rand.Rand, dim, maxLevel int, pSplit float64) *Tree {
	return Build(dim, func(o sfc.Octant) bool {
		return r.Float64() < pSplit
	}, maxLevel, nil)
}

func TestUniformTree(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for level := 0; level <= 3; level++ {
			tr := Uniform(dim, level)
			want := 1
			for d := 0; d < dim; d++ {
				want *= 1 << level
			}
			if tr.Len() != want {
				t.Fatalf("dim=%d level=%d: %d leaves want %d", dim, level, tr.Len(), want)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if !tr.IsComplete() {
				t.Fatal("uniform tree must be complete")
			}
		}
	}
}

func TestBuildValidComplete(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		tr := randTree(r, 2+iter%2, 6, 0.5)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if !tr.IsComplete() {
			t.Fatal("Build without retain must be complete")
		}
	}
}

func TestLinearizeRemovesOverlaps(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		// Random octants with ancestors sprinkled in.
		var octs []sfc.Octant
		base := randTree(r, 2, 5, 0.4)
		octs = append(octs, base.Leaves...)
		for i := 0; i < 20 && len(base.Leaves) > 0; i++ {
			o := base.Leaves[r.Intn(len(base.Leaves))]
			octs = append(octs, o.Ancestor(r.Intn(int(o.Level)+1)))
		}
		tr := New(2, octs)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every original (finest) leaf must survive.
		for _, o := range base.Leaves {
			lo, hi := tr.OverlapRange(o)
			found := false
			for i := lo; i < hi; i++ {
				if tr.Leaves[i].EqualKey(o) {
					found = true
				}
			}
			if !found {
				t.Fatalf("finest leaf %v lost in linearization", o)
			}
		}
	}
}

func TestRefineSingleAndMultiLevel(t *testing.T) {
	tr := Uniform(2, 2) // 16 leaves
	targets := make([]int, tr.Len())
	for i := range targets {
		targets[i] = 2
	}
	targets[0] = 5 // refine first leaf 3 levels down
	out := tr.Refine(targets, nil)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 15 + 64 // 15 untouched + 4^3 descendants
	if out.Len() != want {
		t.Fatalf("got %d leaves want %d", out.Len(), want)
	}
	if !out.IsComplete() {
		t.Fatal("refined tree must stay complete")
	}
}

func TestRefineMatchesLevelByLevel(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		dim := 2 + iter%2
		tr := randTree(r, dim, 4, 0.4)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level) + r.Intn(4)
			if targets[i] > 7 {
				targets[i] = 7
			}
		}
		a := tr.Refine(targets, nil)
		b := tr.RefineLevelByLevel(targets, nil)
		if a.Len() != b.Len() {
			t.Fatalf("iter %d: multi-level %d leaves, level-by-level %d", iter, a.Len(), b.Len())
		}
		for i := range a.Leaves {
			if !a.Leaves[i].EqualKey(b.Leaves[i]) {
				t.Fatalf("iter %d: leaf %d differs", iter, i)
			}
		}
	}
}

func TestRefineOutputSorted(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTree(r, 2, 4, 0.5)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level) + r.Intn(3)
		}
		out := tr.Refine(targets, nil)
		return out.Validate() == nil && out.IsComplete()
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRefineRetainDiscardsVoid(t *testing.T) {
	// Retain only octants intersecting the left half of the domain.
	half := sfc.MaxCoord / 2
	retain := func(o sfc.Octant) bool { return o.X < half }
	tr := Uniform(2, 1)
	targets := []int{3, 3, 3, 3}
	out := tr.Refine(targets, retain)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, o := range out.Leaves {
		if o.X >= half {
			t.Fatalf("void octant %v not discarded", o)
		}
	}
	if out.IsComplete() {
		t.Fatal("retained tree must be incomplete")
	}
}

func TestCoarsenFullMerge(t *testing.T) {
	tr := Uniform(2, 3) // 64 leaves
	targets := make([]int, tr.Len())
	// Everyone allows coarsening to level 0.
	out := tr.Coarsen(targets)
	if out.Len() != 1 || out.Leaves[0].Level != 0 {
		t.Fatalf("expected full collapse to root, got %d leaves", out.Len())
	}
}

func TestCoarsenConsensusVeto(t *testing.T) {
	tr := Uniform(2, 2) // 16 leaves at level 2
	targets := make([]int, tr.Len())
	for i := range targets {
		targets[i] = 0
	}
	// One leaf refuses to coarsen past level 2: its entire ancestor chain
	// is vetoed, but sibling subtrees elsewhere still merge.
	targets[5] = 2
	out := tr.Coarsen(targets)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if !out.IsComplete() {
		t.Fatal("coarsened tree must stay complete")
	}
	// Leaf 5 is in the second level-1 quadrant; the other three quadrants
	// merge to level 1 but cannot merge to root (veto), so expected:
	// 3 quadrants at level 1 + 4 leaves of the vetoed quadrant at level 2.
	if out.Len() != 7 {
		t.Fatalf("got %d leaves want 7", out.Len())
	}
	levels := map[int]int{}
	for _, o := range out.Leaves {
		levels[int(o.Level)]++
	}
	if levels[1] != 3 || levels[2] != 4 {
		t.Fatalf("level census %v", levels)
	}
}

func TestCoarsenMultiLevelSinglePass(t *testing.T) {
	// A deep uniform region must collapse several levels at once.
	tr := Uniform(2, 4)
	targets := make([]int, tr.Len())
	for i := range targets {
		targets[i] = 1
	}
	out := tr.Coarsen(targets)
	if out.Len() != 4 {
		t.Fatalf("expected 4 level-1 leaves, got %d", out.Len())
	}
	for _, o := range out.Leaves {
		if o.Level != 1 {
			t.Fatalf("leaf %v not at level 1", o)
		}
	}
}

func TestCoarsenMatchesLevelByLevel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 20; iter++ {
		dim := 2 + iter%2
		tr := randTree(r, dim, 4, 0.5)
		targets := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			targets[i] = int(o.Level) - r.Intn(int(o.Level)+1)
		}
		a := tr.Coarsen(targets)
		b := tr.CoarsenLevelByLevel(targets)
		if a.Len() != b.Len() {
			t.Fatalf("iter %d: consensus %d leaves, level-by-level %d", iter, a.Len(), b.Len())
		}
		for i := range a.Leaves {
			if !a.Leaves[i].EqualKey(b.Leaves[i]) {
				t.Fatalf("iter %d: leaf %d differs: %v vs %v", iter, i, a.Leaves[i], b.Leaves[i])
			}
		}
	}
}

func TestRefineCoarsenRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTree(r, 2, 3, 0.5)
		up := make([]int, tr.Len())
		for i, o := range tr.Leaves {
			up[i] = int(o.Level) + 2
		}
		fine := tr.Refine(up, nil)
		down := make([]int, fine.Len())
		for i, o := range fine.Leaves {
			down[i] = int(o.Level) - 2
		}
		back := fine.Coarsen(down)
		if back.Len() != tr.Len() {
			return false
		}
		for i := range back.Leaves {
			if !back.Leaves[i].EqualKey(tr.Leaves[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalance21(t *testing.T) {
	// A single deeply refined corner forces a graded cascade.
	tr := Build(2, func(o sfc.Octant) bool {
		return o.X == 0 && o.Y == 0 // refine only the origin corner path
	}, 8, nil)
	if tr.IsBalanced21() {
		t.Skip("construction already balanced; deepen the test")
	}
	b := tr.Balance21(nil)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.IsBalanced21() {
		t.Fatal("Balance21 did not balance")
	}
	if !b.IsComplete() {
		t.Fatal("balance must preserve completeness")
	}
	// Balance may only refine, never remove resolution.
	for _, o := range tr.Leaves {
		if b.FinestOverlappingLevel(o) < int(o.Level) {
			t.Fatalf("balance lost resolution at %v", o)
		}
	}
}

func TestBalance21Random(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 10; iter++ {
		dim := 2 + iter%2
		maxL := 6
		if dim == 3 {
			maxL = 4
		}
		tr := randTree(r, dim, maxL, 0.35)
		b := tr.Balance21(nil)
		if !b.IsBalanced21() {
			t.Fatalf("iter %d: not balanced", iter)
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLevelHistogram(t *testing.T) {
	tr := Uniform(2, 3)
	h := tr.LevelHistogram()
	if len(h) != 4 || h[3] != 1.0 {
		t.Fatalf("histogram %v", h)
	}
	if v := tr.VolumeFractionAtLevel(3); v != 1.0 {
		t.Fatalf("volume fraction %v", v)
	}
}

func TestOverlapRange(t *testing.T) {
	tr := Uniform(2, 3)
	q := sfc.Root(2).Child(1) // quarter of the domain
	lo, hi := tr.OverlapRange(q)
	if hi-lo != 16 {
		t.Fatalf("quarter of 64 leaves must be 16, got %d", hi-lo)
	}
	for i := lo; i < hi; i++ {
		if !tr.Leaves[i].Overlaps(q) {
			t.Fatalf("leaf %v in range does not overlap %v", tr.Leaves[i], q)
		}
	}
	// Ancestor leaf case: coarse tree, fine query.
	tr2 := Uniform(2, 1)
	fineQ := tr2.Leaves[2].Child(3).Child(0)
	lo, hi = tr2.OverlapRange(fineQ)
	if hi-lo != 1 || !tr2.Leaves[lo].IsAncestorOf(fineQ) {
		t.Fatalf("ancestor not found: range [%d,%d)", lo, hi)
	}
}

func TestFinestOverlappingLevelVoid(t *testing.T) {
	half := sfc.MaxCoord / 2
	tr := Build(2, func(o sfc.Octant) bool { return int(o.Level) < 2 }, 2,
		func(o sfc.Octant) bool { return o.X < half })
	right := sfc.Root(2).Child(1)
	if l := tr.FinestOverlappingLevel(right.Child(1)); l != -1 {
		t.Fatalf("void region reported level %d", l)
	}
}
