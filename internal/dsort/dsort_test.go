package dsort

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"proteus/internal/par"
)

func intLess(a, b int) bool { return a < b }

// runSortCheck sorts random data over p ranks and verifies the global
// result equals a serial sort of the union.
func runSortCheck(t *testing.T, p int, perRank int, opt Options) {
	t.Helper()
	var gathered []int
	var want []int
	par.Run(p, func(c *par.Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank()*31 + 7)))
		local := make([]int, perRank+rng.Intn(perRank+1))
		for i := range local {
			local[i] = rng.Intn(10 * p * perRank)
		}
		global := par.Allgatherv(c, local)
		sorted := Sort(c, append([]int(nil), local...), intLess, opt)
		if !sort.IntsAreSorted(sorted) {
			panic(fmt.Sprintf("rank %d: local result not sorted", c.Rank()))
		}
		// Check rank boundaries: my max <= next rank's min.
		type edge struct {
			Min, Max int
			N        int
		}
		e := edge{N: len(sorted)}
		if len(sorted) > 0 {
			e.Min, e.Max = sorted[0], sorted[len(sorted)-1]
		}
		edges := par.Allgather(c, e)
		prevMax := -1 << 62
		for _, ed := range edges {
			if ed.N == 0 {
				continue
			}
			if ed.Min < prevMax {
				panic("rank ranges out of order")
			}
			prevMax = ed.Max
		}
		all := par.Allgatherv(c, sorted)
		if c.Rank() == 0 {
			gathered = all
			want = global
		}
	})
	sort.Ints(want)
	if len(gathered) != len(want) {
		t.Fatalf("p=%d: got %d records want %d", p, len(gathered), len(want))
	}
	for i := range want {
		if gathered[i] != want[i] {
			t.Fatalf("p=%d: mismatch at %d: got %d want %d", p, i, gathered[i], want[i])
		}
	}
}

func TestSortStaged(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 9} {
		for _, k := range []int{2, 3, 128} {
			runSortCheck(t, p, 200, Options{KWay: k})
		}
	}
}

func TestSortFlat(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		runSortCheck(t, p, 200, Options{Flat: true})
	}
}

func TestSortEmptyRanks(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		var local []int
		if c.Rank() == 2 {
			local = []int{5, 3, 1, 4, 2}
		}
		sorted := Sort(c, local, intLess, Options{KWay: 2})
		all := par.Allgatherv(c, sorted)
		if len(all) != 5 {
			panic(fmt.Sprintf("lost records: %v", all))
		}
		for i := 1; i < len(all); i++ {
			if all[i-1] > all[i] {
				panic("not sorted")
			}
		}
	})
}

func TestSortDuplicates(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		local := make([]int, 100)
		for i := range local {
			local[i] = i % 3
		}
		sorted := Sort(c, local, intLess, Options{KWay: 2})
		all := par.Allgatherv(c, sorted)
		if len(all) != 400 {
			panic("lost records")
		}
		for i := 1; i < len(all); i++ {
			if all[i-1] > all[i] {
				panic("not sorted")
			}
		}
	})
}

func TestRepartitionEqual(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		// Rank r starts with r*10 elements; total 60; equal split is 15.
		local := make([]int, c.Rank()*10)
		off := 0
		for r := 0; r < c.Rank(); r++ {
			off += r * 10
		}
		for i := range local {
			local[i] = off + i
		}
		out := Repartition(c, local, nil)
		if len(out) != 15 {
			panic(fmt.Sprintf("rank %d: got %d want 15", c.Rank(), len(out)))
		}
		for i, v := range out {
			if v != c.Rank()*15+i {
				panic(fmt.Sprintf("rank %d: order broken at %d: %d", c.Rank(), i, v))
			}
		}
	})
}

func TestRepartitionExplicitCounts(t *testing.T) {
	par.Run(3, func(c *par.Comm) {
		local := []int{c.Rank() * 2, c.Rank()*2 + 1}
		out := Repartition(c, local, []int64{1, 2, 3})
		want := map[int]int{0: 1, 1: 2, 2: 3}[c.Rank()]
		if len(out) != want {
			panic(fmt.Sprintf("rank %d: got %d want %d", c.Rank(), len(out), want))
		}
	})
}

func TestMergeRuns(t *testing.T) {
	runs := [][]int{{1, 4, 7}, {2, 5}, {0, 9}, {}, {3, 6, 8}}
	got := mergeRuns(runs, intLess)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestDecimate(t *testing.T) {
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	d := decimate(s, 4)
	if len(d) != 4 {
		t.Fatalf("got %v", d)
	}
	if !sort.IntsAreSorted(d) {
		t.Fatalf("decimated not sorted: %v", d)
	}
	if len(decimate(s, 20)) != 10 {
		t.Fatal("short input must be copied whole")
	}
}

func TestSortStability_Struct(t *testing.T) {
	type rec struct{ Key, Tag int }
	par.Run(3, func(c *par.Comm) {
		local := []rec{{2, c.Rank()}, {1, c.Rank()}, {2, c.Rank() + 10}}
		sorted := Sort(c, local, func(a, b rec) bool { return a.Key < b.Key }, Options{KWay: 2})
		all := par.Allgatherv(c, sorted)
		for i := 1; i < len(all); i++ {
			if all[i-1].Key > all[i].Key {
				panic("not sorted by key")
			}
		}
		if len(all) != 9 {
			panic("lost records")
		}
	})
}
