// Package dsort provides distributed sorting and repartitioning of
// ordered records over a par.Comm, following the hierarchical k-way staged
// communication pattern of Sec. II-C3a of Saurabh et al. (IPDPS 2023)
// (itself in the HykSort family of hypercube exchange sorts): the number
// of superpartitions is kept below a constant k for each of O(log_k p)
// stages, splitter-selection storage is O(k) rather than O(p), and the
// data exchange is staged to avoid the congestion of a flat Alltoallv.
package dsort

import (
	"fmt"
	"sort"

	"proteus/internal/par"
)

// Options configures a distributed sort.
type Options struct {
	// KWay bounds the number of superpartitions per stage. Zero means
	// par.DefaultKWay (128, as in the paper).
	KWay int
	// Oversample is the number of splitter samples each rank contributes
	// per stage. Zero means 4*KWay.
	Oversample int
	// Flat switches to the baseline single-stage sort (allgathered
	// samples, one flat Alltoallv) that the staged variant replaces.
	Flat bool
}

func (o Options) kway() int {
	if o.KWay <= 0 {
		return par.DefaultKWay
	}
	return o.KWay
}

func (o Options) oversample() int {
	if o.Oversample <= 0 {
		return 4 * o.kway()
	}
	return o.Oversample
}

// Sort globally sorts the union of every rank's local records by less and
// returns this rank's contiguous, globally ordered partition: every record
// on rank r precedes every record on rank r+1. The result is approximately
// load balanced; call Repartition for exact balancing.
func Sort[T any](c *par.Comm, local []T, less func(a, b T) bool, opt Options) []T {
	sort.SliceStable(local, func(i, j int) bool { return less(local[i], local[j]) })
	if c.Size() == 1 {
		return local
	}
	if opt.Flat {
		return flatSort(c, local, less, opt)
	}
	cur := c
	level := 0
	for cur.Size() > 1 {
		k := opt.kway()
		if k > cur.Size() {
			k = cur.Size()
		}
		local = stageExchange(cur, local, less, k, opt.oversample(), level)
		gsz := (cur.Size() + k - 1) / k
		myGroup := cur.Rank() / gsz
		cur = cur.CommSplitCached(fmt.Sprintf("dsort-%d", level), myGroup, cur.Rank())
		level++
	}
	return local
}

// stageExchange partitions cur's ranks into <=k contiguous supergroups,
// selects k-1 splitters with O(k)-storage resampled reduction, and routes
// each rank's buckets to the owning supergroup with one message per group.
// Returns the merged locally sorted data now confined to this rank's
// supergroup key range.
func stageExchange[T any](cur *par.Comm, local []T, less func(a, b T) bool, k, oversample, level int) []T {
	cp := cur.Size()
	gsz := (cp + k - 1) / k
	ngroups := (cp + gsz - 1) / gsz
	splitters := selectSplitters(cur, local, less, ngroups-1, oversample)
	// Bucket the (sorted) local data by splitter ranges.
	buckets := make([][]T, ngroups)
	lo := 0
	for g := 0; g < ngroups; g++ {
		hi := len(local)
		if g < len(splitters) {
			s := splitters[g]
			hi = lo + sort.Search(len(local)-lo, func(i int) bool { return !less(local[lo+i], s) })
		}
		buckets[g] = local[lo:hi]
		lo = hi
	}
	myGroup := cur.Rank() / gsz
	myIdx := cur.Rank() - myGroup*gsz
	mySubSize := subgroupSize(cp, gsz, myGroup)
	tag := 7 // user-range tag; uniqueness comes from one exchange per level barrier below
	for g := 0; g < ngroups; g++ {
		sz := subgroupSize(cp, gsz, g)
		pivot := g*gsz + cur.Rank()%sz
		par.SendSlice(cur, pivot, tag, buckets[g])
	}
	expect := 0
	for i := 0; i < cp; i++ {
		if i%mySubSize == myIdx {
			expect++
		}
	}
	var runs [][]T
	for m := 0; m < expect; m++ {
		v, _ := par.RecvSlice[T](cur, par.AnySource, tag)
		if len(v) > 0 {
			runs = append(runs, v)
		}
	}
	merged := mergeRuns(runs, less)
	// Separate successive stages' point-to-point traffic.
	cur.Barrier()
	return merged
}

// selectSplitters returns n approximate quantile splitters of the global
// data using a resampling reduction: sample sets are merged pairwise and
// re-decimated to a bounded size, so no rank ever stores more than
// O(oversample) candidates (the paper's O(k) splitter storage).
func selectSplitters[T any](c *par.Comm, local []T, less func(a, b T) bool, n, oversample int) []T {
	if n <= 0 {
		return nil
	}
	samples := decimate(local, oversample)
	all := par.Reduce(c, 0, samples, func(a, b []T) []T {
		m := mergeRuns([][]T{a, b}, less)
		return decimate(m, oversample)
	})
	all = par.BcastSlice(c, 0, all)
	// Pick n evenly spaced splitters from the final sample set.
	out := make([]T, 0, n)
	if len(all) == 0 {
		return out
	}
	for i := 1; i <= n; i++ {
		idx := i * len(all) / (n + 1)
		if idx >= len(all) {
			idx = len(all) - 1
		}
		out = append(out, all[idx])
	}
	return out
}

// decimate returns up to m evenly spaced elements of sorted s.
func decimate[T any](s []T, m int) []T {
	if len(s) <= m {
		out := make([]T, len(s))
		copy(out, s)
		return out
	}
	out := make([]T, 0, m)
	for i := 0; i < m; i++ {
		out = append(out, s[i*len(s)/m])
	}
	return out
}

// mergeRuns k-way merges sorted runs.
func mergeRuns[T any](runs [][]T, less func(a, b T) bool) []T {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		out := make([]T, len(runs[0]))
		copy(out, runs[0])
		return out
	}
	// Binary merge cascade: simple and allocation-friendly for the modest
	// run counts produced by staged exchanges (<= k runs).
	for len(runs) > 1 {
		var next [][]T
		for i := 0; i+1 < len(runs); i += 2 {
			next = append(next, merge2(runs[i], runs[i+1], less))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	return runs[0]
}

func merge2[T any](a, b []T, less func(x, y T) bool) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func subgroupSize(p, gsz, g int) int {
	s := p - g*gsz
	if s > gsz {
		s = gsz
	}
	return s
}

// flatSort is the baseline: allgather oversampled splitters, bucket, and
// exchange with a single flat Alltoallv.
func flatSort[T any](c *par.Comm, local []T, less func(a, b T) bool, opt Options) []T {
	p := c.Size()
	samples := decimate(local, opt.oversample())
	all := par.Allgatherv(c, samples)
	sort.SliceStable(all, func(i, j int) bool { return less(all[i], all[j]) })
	splitters := make([]T, 0, p-1)
	for i := 1; i < p; i++ {
		if len(all) == 0 {
			break
		}
		idx := i * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		splitters = append(splitters, all[idx])
	}
	bufs := make([][]T, p)
	lo := 0
	for r := 0; r < p; r++ {
		hi := len(local)
		if r < len(splitters) {
			s := splitters[r]
			hi = lo + sort.Search(len(local)-lo, func(i int) bool { return !less(local[lo+i], s) })
		}
		bufs[r] = local[lo:hi]
		lo = hi
	}
	got := par.Alltoallv(c, bufs)
	var runs [][]T
	for _, g := range got {
		if len(g) > 0 {
			runs = append(runs, g)
		}
	}
	return mergeRuns(runs, less)
}

// Repartition redistributes globally ordered per-rank slices so that rank
// r ends up with counts[r] records (sum of counts must equal the global
// record count), preserving global order. A nil counts requests equal
// partitioning with remainders on the leading ranks.
func Repartition[T any](c *par.Comm, local []T, counts []int64) []T {
	p := c.Size()
	n := int64(len(local))
	total := par.Allreduce(c, n, func(a, b int64) int64 { return a + b })
	if counts == nil {
		counts = make([]int64, p)
		base := total / int64(p)
		rem := total % int64(p)
		for r := range counts {
			counts[r] = base
			if int64(r) < rem {
				counts[r]++
			}
		}
	}
	var sum int64
	for _, v := range counts {
		sum += v
	}
	if sum != total {
		panic(fmt.Sprintf("dsort.Repartition: counts sum %d != global total %d", sum, total))
	}
	// Global offset of my first record, and target offsets of each rank.
	myOff := par.Exscan(c, n, 0, func(a, b int64) int64 { return a + b })
	starts := make([]int64, p+1)
	for r := 0; r < p; r++ {
		starts[r+1] = starts[r] + counts[r]
	}
	bufs := make([][]T, p)
	for r := 0; r < p; r++ {
		lo := maxI64(starts[r], myOff)
		hi := minI64(starts[r+1], myOff+n)
		if lo < hi {
			bufs[r] = local[lo-myOff : hi-myOff]
		}
	}
	got := par.Alltoallv(c, bufs)
	out := make([]T, 0, counts[c.Rank()])
	for r := 0; r < p; r++ {
		out = append(out, got[r]...)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
