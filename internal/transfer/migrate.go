// Partition-only migration: when an adaptation round leaves the global
// forest unchanged and only moves the SFC partition (a pure load
// rebalance), fields need no inter-grid interpolation at all — every node
// and element value is copied bitwise from its old owner to its new
// owner. This keeps results bitwise reproducible across rank counts and
// skips the old-tree rebuild and point-location machinery entirely.
package transfer

import (
	"fmt"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// maxMigrateDofs bounds the combined per-node dof count of one
// MigrateNodal call: keys and values travel together in one fixed-size
// packet so the whole migration is a single NBX round.
const maxMigrateDofs = 8

// nodePacket carries one node's key and its packed field values.
type nodePacket struct {
	Key mesh.NodeKey
	V   [maxMigrateDofs]float64
}

// MigrateNodal moves nodal fields from oldM to newM when both meshes are
// built over the same global forest and only ownership moved: each rank
// pushes every owned node's packed values to the node's new canonical
// owner (computed from newM's recorded ownership table with the same
// clamping rule the mesh builder uses — for a migrated old-mesh view
// that table is the new partition's, which an element-derived gather
// would not reproduce) in one NBX round. No point location, no
// interpolation — destination values are bitwise copies. Panics if the
// meshes turn out not to share a forest (an owned destination node left
// unfilled, or a pushed key unknown to its target), so a mistaken
// partition-only detection fails loudly instead of corrupting fields.
// Collective.
func MigrateNodal(oldM, newM *mesh.Mesh, fields []Field) {
	c := oldM.Comm
	tot := 0
	for _, f := range fields {
		if len(f.Src) < oldM.NumLocal*f.Ndof || len(f.Dst) < newM.NumLocal*f.Ndof {
			panic("transfer: MigrateNodal field vector length mismatch")
		}
		tot += f.Ndof
	}
	if tot > maxMigrateDofs {
		panic(fmt.Sprintf("transfer: MigrateNodal moves %d dofs per node, max %d", tot, maxMigrateDofs))
	}
	spl, ok := newM.OwnershipTable()
	if !ok {
		spl = octree.GatherSplitters(c, newM.Elems)
	}
	me := c.Rank()
	filled := 0
	perRank := map[int][]nodePacket{}
	for i := 0; i < oldM.NumOwned; i++ {
		k := oldM.Keys[i]
		r := ownerOfKey(spl, oldM.Dim, k)
		if r == me {
			j, ok := newM.NodeIndex(k)
			if !ok || j >= newM.NumOwned {
				panic(fmt.Sprintf("transfer: node %v not owned on its migration target rank %d", k, me))
			}
			for _, f := range fields {
				copy(f.Dst[j*f.Ndof:(j+1)*f.Ndof], f.Src[i*f.Ndof:(i+1)*f.Ndof])
			}
			filled++
			continue
		}
		var p nodePacket
		p.Key = k
		off := 0
		for _, f := range fields {
			copy(p.V[off:off+f.Ndof], f.Src[i*f.Ndof:(i+1)*f.Ndof])
			off += f.Ndof
		}
		perRank[r] = append(perRank[r], p)
	}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]nodePacket, 0, len(perRank))
		for r, lst := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		_, recvd := par.NBXExchange(c, dests, bufs)
		for _, batch := range recvd {
			for _, p := range batch {
				j, ok := newM.NodeIndex(p.Key)
				if !ok || j >= newM.NumOwned {
					panic(fmt.Sprintf("transfer: migrated node %v not owned on rank %d", p.Key, me))
				}
				off := 0
				for _, f := range fields {
					copy(f.Dst[j*f.Ndof:(j+1)*f.Ndof], p.V[off:off+f.Ndof])
					off += f.Ndof
				}
				filled++
			}
		}
	} else if len(perRank) > 0 {
		panic("transfer: MigrateNodal routed nodes off a single rank")
	}
	if filled != newM.NumOwned {
		panic(fmt.Sprintf("transfer: partition-only migration filled %d of %d owned nodes — meshes do not share a forest", filled, newM.NumOwned))
	}
	for _, f := range fields {
		newM.GhostRead(f.Dst, f.Ndof)
	}
}

// MigrateKeyedNodal delivers externally held node records — owned-node
// keys with their packed per-node values, e.g. read back from a
// checkpoint — to their canonical owners under newM's partition in one
// NBX round. The records may be distributed across ranks in any way
// (each global node exactly once); destination values are bitwise copies.
// packed holds the per-node values field-major in field order,
// len(keys)*Σ Ndof entries; only Dst and Ndof of each Field are used.
// Panics if a key is unknown to its target or an owned destination node
// is left unfilled, so restoring a snapshot against the wrong forest
// fails loudly instead of corrupting fields. Collective.
func MigrateKeyedNodal(newM *mesh.Mesh, keys []mesh.NodeKey, packed []float64, fields []Field) {
	c := newM.Comm
	tot := 0
	for _, f := range fields {
		if len(f.Dst) < newM.NumLocal*f.Ndof {
			panic("transfer: MigrateKeyedNodal destination vector length mismatch")
		}
		tot += f.Ndof
	}
	if tot > maxMigrateDofs {
		panic(fmt.Sprintf("transfer: MigrateKeyedNodal moves %d dofs per node, max %d", tot, maxMigrateDofs))
	}
	if len(packed) != len(keys)*tot {
		panic(fmt.Sprintf("transfer: MigrateKeyedNodal packed length %d != %d keys * %d dofs", len(packed), len(keys), tot))
	}
	spl, ok := newM.OwnershipTable()
	if !ok {
		spl = octree.GatherSplitters(c, newM.Elems)
	}
	me := c.Rank()
	// Per-node fill tracking (not a count): a duplicate record must not
	// mask a missing one, or an owned node would silently stay zero.
	seen := make([]bool, newM.NumOwned)
	filled := 0
	deliver := func(k mesh.NodeKey, vals []float64) {
		j, ok := newM.NodeIndex(k)
		if !ok || j >= newM.NumOwned {
			panic(fmt.Sprintf("transfer: keyed node %v not owned on its target rank %d", k, me))
		}
		if seen[j] {
			panic(fmt.Sprintf("transfer: keyed node %v delivered twice — records are not a partition of the forest", k))
		}
		seen[j] = true
		filled++
		off := 0
		for _, f := range fields {
			copy(f.Dst[j*f.Ndof:(j+1)*f.Ndof], vals[off:off+f.Ndof])
			off += f.Ndof
		}
	}
	perRank := map[int][]nodePacket{}
	for i, k := range keys {
		r := ownerOfKey(spl, newM.Dim, k)
		if r == me {
			deliver(k, packed[i*tot:(i+1)*tot])
			continue
		}
		var p nodePacket
		p.Key = k
		copy(p.V[:tot], packed[i*tot:(i+1)*tot])
		perRank[r] = append(perRank[r], p)
	}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]nodePacket, 0, len(perRank))
		for r, lst := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		_, recvd := par.NBXExchange(c, dests, bufs)
		for _, batch := range recvd {
			for i := range batch {
				deliver(batch[i].Key, batch[i].V[:tot])
			}
		}
	} else if len(perRank) > 0 {
		panic("transfer: MigrateKeyedNodal routed nodes off a single rank")
	}
	if got := par.Allreduce(c, filled == newM.NumOwned, func(a, b bool) bool { return a && b }); !got {
		panic(fmt.Sprintf("transfer: keyed migration filled %d of %d owned nodes — records do not cover the forest", filled, newM.NumOwned))
	}
	for _, f := range fields {
		newM.GhostRead(f.Dst, f.Ndof)
	}
}

// elemPacket carries one element's octant key and value; the key is
// verified on the receiver against its local leaf list.
type elemPacket struct {
	Oct sfc.Octant
	V   float64
}

// MigrateElem moves per-element values across a pure repartition of the
// same global forest: each rank ships its contiguous SFC ranges to their
// new owners and the receiver reassembles the batches in source-rank
// order, which for an identical forest is global SFC order. The octant
// keys travel with the values and are checked element-by-element against
// the new local leaves, so a mistaken partition-only detection panics
// instead of silently misaligning values. Collective.
func MigrateElem(c *par.Comm, oldElems []sfc.Octant, oldVals []float64, newElems []sfc.Octant) []float64 {
	spl := octree.GatherSplitters(c, newElems)
	me := c.Rank()
	perRank := map[int][]elemPacket{}
	var own []elemPacket
	for i, o := range oldElems {
		r := spl.Owner(o.FirstDescendant())
		if r == me {
			own = append(own, elemPacket{o, oldVals[i]})
			continue
		}
		perRank[r] = append(perRank[r], elemPacket{o, oldVals[i]})
	}
	type sourced struct {
		src   int
		batch []elemPacket
	}
	batches := []sourced{{me, own}}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]elemPacket, 0, len(perRank))
		for r, lst := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		for i := range srcs {
			batches = append(batches, sourced{srcs[i], recvd[i]})
		}
	} else if len(perRank) > 0 {
		panic("transfer: MigrateElem routed elements off a single rank")
	}
	// Lower source ranks hold strictly earlier SFC ranges of the shared
	// forest, so source-rank order reassembles the local leaf sequence.
	for i := 1; i < len(batches); i++ {
		for j := i; j > 0 && batches[j].src < batches[j-1].src; j-- {
			batches[j], batches[j-1] = batches[j-1], batches[j]
		}
	}
	out := make([]float64, len(newElems))
	pos := 0
	for _, b := range batches {
		for _, p := range b.batch {
			if pos >= len(newElems) || !p.Oct.EqualKey(newElems[pos]) {
				panic(fmt.Sprintf("transfer: partition-only element migration misaligned at %d (%v) — meshes do not share a forest", pos, p.Oct))
			}
			out[pos] = p.V
			pos++
		}
	}
	if pos != len(newElems) {
		panic(fmt.Sprintf("transfer: partition-only element migration filled %d of %d elements", pos, len(newElems)))
	}
	return out
}
