package transfer

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func scatterLeaves(t *octree.Tree, rank, p int) []sfc.Octant {
	n := t.Len()
	lo, hi := rank*n/p, (rank+1)*n/p
	out := make([]sfc.Octant, hi-lo)
	copy(out, t.Leaves[lo:hi])
	return out
}

// scatterSkewed is a deliberately different (quadratically growing)
// partition of the same global forest, for partition-only migration tests.
func scatterSkewed(t *octree.Tree, rank, p int) []sfc.Octant {
	n := t.Len()
	lo, hi := n*rank*rank/(p*p), n*(rank+1)*(rank+1)/(p*p)
	out := make([]sfc.Octant, hi-lo)
	copy(out, t.Leaves[lo:hi])
	return out
}

// discTree refines inside a disc to `fine`, `base` elsewhere, balanced.
func discTree(dim, base, fine int, cx, cy, r float64) *octree.Tree {
	return octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Hypot(x-cx, y-cy) < r
	}, fine, nil).Balance21(nil)
}

func TestNodalTransferExactForLinearFields(t *testing.T) {
	// Linear fields must transfer exactly in both directions (the old
	// field is piecewise linear and continuous, and evaluation is linear).
	f := func(x, y, z float64) float64 { return 3*x - 2*y + z + 0.5 }
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3} {
			par.Run(p, func(c *par.Comm) {
				coarse := discTree(dim, 2, 3, 0.3, 0.3, 0.2)
				fine := discTree(dim, 2, 5, 0.7, 0.7, 0.25)
				mOld := mesh.New(c, dim, scatterLeaves(coarse, c.Rank(), p))
				mNew := mesh.New(c, dim, scatterLeaves(fine, c.Rank(), p))
				v := mOld.NewVec(1)
				for i := 0; i < mOld.NumLocal; i++ {
					x, y, z := mOld.NodeCoord(i)
					v[i] = f(x, y, z)
				}
				got := Nodal(mOld, v, mNew, 1)
				for i := 0; i < mNew.NumLocal; i++ {
					x, y, z := mNew.NodeCoord(i)
					if math.Abs(got[i]-f(x, y, z)) > 1e-11 {
						panic(fmt.Sprintf("dim=%d p=%d node %d: got %v want %v",
							dim, p, i, got[i], f(x, y, z)))
					}
				}
				// And back: fine -> coarse injection is exact too.
				back := Nodal(mNew, got, mOld, 1)
				for i := 0; i < mOld.NumLocal; i++ {
					if math.Abs(back[i]-v[i]) > 1e-11 {
						panic(fmt.Sprintf("dim=%d p=%d: round trip broke node %d", dim, p, i))
					}
				}
			})
		}
	}
}

func TestNodalTransferMultiDof(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		coarse := octree.Uniform(2, 3)
		fine := octree.Uniform(2, 5)
		mOld := mesh.New(c, 2, scatterLeaves(coarse, c.Rank(), 2))
		mNew := mesh.New(c, 2, scatterLeaves(fine, c.Rank(), 2))
		const ndof = 3
		v := mOld.NewVec(ndof)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i*ndof] = x
			v[i*ndof+1] = y
			v[i*ndof+2] = x + 2*y
		}
		got := Nodal(mOld, v, mNew, ndof)
		for i := 0; i < mNew.NumLocal; i++ {
			x, y, _ := mNew.NodeCoord(i)
			want := [3]float64{x, y, x + 2*y}
			for d := 0; d < ndof; d++ {
				if math.Abs(got[i*ndof+d]-want[d]) > 1e-12 {
					panic(fmt.Sprintf("node %d dof %d: got %v want %v", i, d, got[i*ndof+d], want[d]))
				}
			}
		}
	})
}

func TestNodalMultiLevelJump(t *testing.T) {
	// A 4-level jump in one transfer: level-2 uniform to level-6 uniform.
	par.Run(4, func(c *par.Comm) {
		mOld := mesh.New(c, 2, scatterLeaves(octree.Uniform(2, 2), c.Rank(), 4))
		mNew := mesh.New(c, 2, scatterLeaves(octree.Uniform(2, 6), c.Rank(), 4))
		v := mOld.NewVec(1)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i] = x * y // bilinear: exactly representable per element
		}
		got := Nodal(mOld, v, mNew, 1)
		for i := 0; i < mNew.NumLocal; i++ {
			x, y, _ := mNew.NodeCoord(i)
			if math.Abs(got[i]-x*y) > 1e-12 {
				panic("multi-level jump transfer wrong")
			}
		}
	})
}

// TestBatchMatchesPerFieldNodal: one batched call over several fields of
// mixed dof counts must reproduce, bit for bit, the per-field Nodal
// results — and the workspace must be reusable across calls.
func TestBatchMatchesPerFieldNodal(t *testing.T) {
	for _, p := range []int{1, 3} {
		par.Run(p, func(c *par.Comm) {
			coarse := discTree(2, 2, 4, 0.3, 0.3, 0.25)
			fine := discTree(2, 3, 5, 0.6, 0.6, 0.2)
			mOld := mesh.New(c, 2, scatterLeaves(coarse, c.Rank(), p))
			mNew := mesh.New(c, 2, scatterLeaves(fine, c.Rank(), p))
			mk := func(ndof int, seed float64) []float64 {
				v := mOld.NewVec(ndof)
				for i := 0; i < mOld.NumLocal; i++ {
					x, y, _ := mOld.NodeCoord(i)
					for d := 0; d < ndof; d++ {
						v[i*ndof+d] = math.Sin(seed+3*x+float64(d)) * math.Cos(2*y-seed)
					}
				}
				return v
			}
			a, b, d := mk(2, 0.3), mk(3, 1.7), mk(1, 2.9)
			wantA := Nodal(mOld, a, mNew, 2)
			wantB := Nodal(mOld, b, mNew, 3)
			wantD := Nodal(mOld, d, mNew, 1)
			ws := &Workspace{}
			gotA, gotB, gotD := mNew.NewVec(2), mNew.NewVec(3), mNew.NewVec(1)
			for round := 0; round < 2; round++ { // round 2 reuses the workspace
				for _, v := range [][]float64{gotA, gotB, gotD} {
					for i := range v {
						v[i] = 0
					}
				}
				Batch(mOld, mNew, []Field{
					{Src: a, Dst: gotA, Ndof: 2},
					{Src: b, Dst: gotB, Ndof: 3},
					{Src: d, Dst: gotD, Ndof: 1},
				}, ws)
				check := func(name string, got, want []float64) {
					for i := range want {
						if got[i] != want[i] {
							panic(fmt.Sprintf("p=%d round=%d field %s entry %d: batch %v nodal %v",
								p, round, name, i, got[i], want[i]))
						}
					}
				}
				check("a", gotA, wantA)
				check("b", gotB, wantB)
				check("d", gotD, wantD)
			}
		})
	}
}

// TestBatchExactForLinearFields: refine and coarsen directions reproduce
// linear fields exactly through the batched path.
func TestBatchExactForLinearFields(t *testing.T) {
	f := func(x, y float64, d int) float64 { return 3*x - 2*y + 0.5 + float64(d)*(x+y) }
	par.Run(3, func(c *par.Comm) {
		coarse := discTree(2, 2, 3, 0.3, 0.3, 0.2)
		fine := discTree(2, 2, 5, 0.7, 0.7, 0.25)
		mC := mesh.New(c, 2, scatterLeaves(coarse, c.Rank(), 3))
		mF := mesh.New(c, 2, scatterLeaves(fine, c.Rank(), 3))
		for _, dir := range []struct{ from, to *mesh.Mesh }{{mC, mF}, {mF, mC}} {
			src := dir.from.NewVec(2)
			for i := 0; i < dir.from.NumLocal; i++ {
				x, y, _ := dir.from.NodeCoord(i)
				src[2*i], src[2*i+1] = f(x, y, 0), f(x, y, 1)
			}
			dst := dir.to.NewVec(2)
			Batch(dir.from, dir.to, []Field{{Src: src, Dst: dst, Ndof: 2}}, nil)
			for i := 0; i < dir.to.NumLocal; i++ {
				x, y, _ := dir.to.NodeCoord(i)
				for d := 0; d < 2; d++ {
					if math.Abs(dst[2*i+d]-f(x, y, d)) > 1e-11 {
						panic(fmt.Sprintf("node %d dof %d: got %v want %v", i, d, dst[2*i+d], f(x, y, d)))
					}
				}
			}
		}
	})
}

// TestBatchFewerMessagesThanSequential: the batched transfer must move
// all fields with strictly less communication than three sequential Nodal
// rounds (one splitter gather and one NBX query/reply round instead of
// three of each).
func TestBatchFewerMessagesThanSequential(t *testing.T) {
	const p = 4
	par.Run(p, func(c *par.Comm) {
		coarse := discTree(2, 3, 4, 0.3, 0.3, 0.25)
		fine := discTree(2, 3, 5, 0.6, 0.6, 0.2)
		mOld := mesh.New(c, 2, scatterLeaves(coarse, c.Rank(), p))
		mNew := mesh.New(c, 2, scatterLeaves(fine, c.Rank(), p))
		a, b, d := mOld.NewVec(2), mOld.NewVec(2), mOld.NewVec(1)
		for i := range a {
			a[i] = float64(i % 13)
		}
		c.Barrier()
		before := c.Stats().Messages.Load()
		Nodal(mOld, a, mNew, 2)
		Nodal(mOld, b, mNew, 2)
		Nodal(mOld, d, mNew, 1)
		c.Barrier()
		mid := c.Stats().Messages.Load()
		gotA, gotB, gotD := mNew.NewVec(2), mNew.NewVec(2), mNew.NewVec(1)
		Batch(mOld, mNew, []Field{
			{Src: a, Dst: gotA, Ndof: 2},
			{Src: b, Dst: gotB, Ndof: 2},
			{Src: d, Dst: gotD, Ndof: 1},
		}, nil)
		c.Barrier()
		after := c.Stats().Messages.Load()
		if c.Rank() == 0 {
			seq, batch := mid-before, after-mid
			if batch >= seq {
				panic(fmt.Sprintf("batched transfer sent %d messages, sequential %d", batch, seq))
			}
		}
	})
}

// keyVal is a deterministic, decimal-unfriendly per-key value so any
// interpolation (rather than a bitwise copy) is detectable.
func keyVal(k mesh.NodeKey, d int) float64 {
	return math.Sin(float64(k.X)*12.9898e-7 + float64(k.Y)*78.233e-7 + float64(d)*0.71)
}

// TestMigrateNodalBitwiseAcrossPartitions: a partition-only migration
// must hand every rank count the exact serial field — bitwise — on an
// adaptive (hanging-node) mesh where interpolation would not be exact.
func TestMigrateNodalBitwiseAcrossPartitions(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			tr := discTree(2, 2, 5, 0.5, 0.5, 0.3)
			mOld := mesh.New(c, 2, scatterLeaves(tr, c.Rank(), p))
			mNew := mesh.New(c, 2, scatterSkewed(tr, c.Rank(), p))
			src2 := mOld.NewVec(2)
			src1 := mOld.NewVec(1)
			for i := 0; i < mOld.NumLocal; i++ {
				k := mOld.Keys[i]
				src2[2*i], src2[2*i+1] = keyVal(k, 0), keyVal(k, 1)
				src1[i] = keyVal(k, 2)
			}
			dst2, dst1 := mNew.NewVec(2), mNew.NewVec(1)
			MigrateNodal(mOld, mNew, []Field{
				{Src: src2, Dst: dst2, Ndof: 2},
				{Src: src1, Dst: dst1, Ndof: 1},
			})
			for i := 0; i < mNew.NumLocal; i++ {
				k := mNew.Keys[i]
				if dst2[2*i] != keyVal(k, 0) || dst2[2*i+1] != keyVal(k, 1) || dst1[i] != keyVal(k, 2) {
					panic(fmt.Sprintf("p=%d: node %v not bitwise-preserved", p, k))
				}
			}
		})
	}
}

// TestMigrateElemBitwiseAcrossPartitions: per-element values follow their
// contiguous SFC ranges exactly across a repartition.
func TestMigrateElemBitwiseAcrossPartitions(t *testing.T) {
	elemVal := func(o sfc.Octant) float64 {
		return math.Sin(float64(o.X)*3.7e-7 + float64(o.Y)*1.3e-7 + float64(o.Level))
	}
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			tr := discTree(2, 2, 5, 0.4, 0.6, 0.25)
			oldLocal := scatterLeaves(tr, c.Rank(), p)
			newLocal := scatterSkewed(tr, c.Rank(), p)
			vals := make([]float64, len(oldLocal))
			for i, o := range oldLocal {
				vals[i] = elemVal(o)
			}
			got := MigrateElem(c, oldLocal, vals, newLocal)
			for i, o := range newLocal {
				if got[i] != elemVal(o) {
					panic(fmt.Sprintf("p=%d: element %v value not bitwise-preserved", p, o))
				}
			}
		})
	}
}

func TestCellCenteredCopyAndAverage(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			coarse := octree.Uniform(2, 2) // 16 elements
			fine := octree.Uniform(2, 4)   // 256 elements
			oldLocal := scatterLeaves(coarse, c.Rank(), p)
			newLocal := scatterLeaves(fine, c.Rank(), p)
			oldVals := make([]float64, len(oldLocal))
			for i, o := range oldLocal {
				oldVals[i] = float64(o.X / o.Side()) // column index value
			}
			got := CellCentered(c, 2, oldLocal, oldVals, newLocal)
			for i, q := range newLocal {
				wantCol := float64(q.X / (q.Side() * 4)) // parent column
				if math.Abs(got[i]-wantCol) > 1e-12 {
					panic(fmt.Sprintf("p=%d: coarse->fine copy wrong at %v: %v want %v", p, q, got[i], wantCol))
				}
			}
			// Fine->coarse: averages of the fine values.
			fineVals := make([]float64, len(newLocal))
			for i := range fineVals {
				fineVals[i] = 2.5
			}
			back := CellCentered(c, 2, newLocal, fineVals, oldLocal)
			for i := range back {
				if math.Abs(back[i]-2.5) > 1e-12 {
					panic("fine->coarse average wrong")
				}
			}
		})
	}
}

func TestLevelByLevelMatchesSinglePass(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		oldTree := octree.Uniform(2, 2)
		newTree := octree.Uniform(2, 5)
		mOld := mesh.New(c, 2, append([]sfc.Octant(nil), oldTree.Leaves...))
		v := mOld.NewVec(1)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i] = 1 + x + y + x*y
		}
		mNew := mesh.New(c, 2, append([]sfc.Octant(nil), newTree.Leaves...))
		single := Nodal(mOld, v, mNew, 1)
		multi, mFinal, passes := NodalLevelByLevel(mOld, v, newTree, 1)
		if passes != 3 {
			panic(fmt.Sprintf("expected 3 one-level passes, got %d", passes))
		}
		if mFinal.NumGlobal != mNew.NumGlobal {
			panic("level-by-level did not reach the target grid")
		}
		for i := 0; i < mFinal.NumLocal; i++ {
			j, ok := mNew.NodeIndex(mFinal.Keys[i])
			if !ok {
				panic("node set mismatch")
			}
			if math.Abs(multi[i]-single[j]) > 1e-12 {
				panic(fmt.Sprintf("node %d: level-by-level %v single-pass %v", i, multi[i], single[j]))
			}
		}
	})
}
