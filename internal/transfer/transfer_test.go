package transfer

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func scatterLeaves(t *octree.Tree, rank, p int) []sfc.Octant {
	n := t.Len()
	lo, hi := rank*n/p, (rank+1)*n/p
	out := make([]sfc.Octant, hi-lo)
	copy(out, t.Leaves[lo:hi])
	return out
}

// discTree refines inside a disc to `fine`, `base` elsewhere, balanced.
func discTree(dim, base, fine int, cx, cy, r float64) *octree.Tree {
	return octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Hypot(x-cx, y-cy) < r
	}, fine, nil).Balance21(nil)
}

func TestNodalTransferExactForLinearFields(t *testing.T) {
	// Linear fields must transfer exactly in both directions (the old
	// field is piecewise linear and continuous, and evaluation is linear).
	f := func(x, y, z float64) float64 { return 3*x - 2*y + z + 0.5 }
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3} {
			par.Run(p, func(c *par.Comm) {
				coarse := discTree(dim, 2, 3, 0.3, 0.3, 0.2)
				fine := discTree(dim, 2, 5, 0.7, 0.7, 0.25)
				mOld := mesh.New(c, dim, scatterLeaves(coarse, c.Rank(), p))
				mNew := mesh.New(c, dim, scatterLeaves(fine, c.Rank(), p))
				v := mOld.NewVec(1)
				for i := 0; i < mOld.NumLocal; i++ {
					x, y, z := mOld.NodeCoord(i)
					v[i] = f(x, y, z)
				}
				got := Nodal(mOld, v, mNew, 1)
				for i := 0; i < mNew.NumLocal; i++ {
					x, y, z := mNew.NodeCoord(i)
					if math.Abs(got[i]-f(x, y, z)) > 1e-11 {
						panic(fmt.Sprintf("dim=%d p=%d node %d: got %v want %v",
							dim, p, i, got[i], f(x, y, z)))
					}
				}
				// And back: fine -> coarse injection is exact too.
				back := Nodal(mNew, got, mOld, 1)
				for i := 0; i < mOld.NumLocal; i++ {
					if math.Abs(back[i]-v[i]) > 1e-11 {
						panic(fmt.Sprintf("dim=%d p=%d: round trip broke node %d", dim, p, i))
					}
				}
			})
		}
	}
}

func TestNodalTransferMultiDof(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		coarse := octree.Uniform(2, 3)
		fine := octree.Uniform(2, 5)
		mOld := mesh.New(c, 2, scatterLeaves(coarse, c.Rank(), 2))
		mNew := mesh.New(c, 2, scatterLeaves(fine, c.Rank(), 2))
		const ndof = 3
		v := mOld.NewVec(ndof)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i*ndof] = x
			v[i*ndof+1] = y
			v[i*ndof+2] = x + 2*y
		}
		got := Nodal(mOld, v, mNew, ndof)
		for i := 0; i < mNew.NumLocal; i++ {
			x, y, _ := mNew.NodeCoord(i)
			want := [3]float64{x, y, x + 2*y}
			for d := 0; d < ndof; d++ {
				if math.Abs(got[i*ndof+d]-want[d]) > 1e-12 {
					panic(fmt.Sprintf("node %d dof %d: got %v want %v", i, d, got[i*ndof+d], want[d]))
				}
			}
		}
	})
}

func TestNodalMultiLevelJump(t *testing.T) {
	// A 4-level jump in one transfer: level-2 uniform to level-6 uniform.
	par.Run(4, func(c *par.Comm) {
		mOld := mesh.New(c, 2, scatterLeaves(octree.Uniform(2, 2), c.Rank(), 4))
		mNew := mesh.New(c, 2, scatterLeaves(octree.Uniform(2, 6), c.Rank(), 4))
		v := mOld.NewVec(1)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i] = x * y // bilinear: exactly representable per element
		}
		got := Nodal(mOld, v, mNew, 1)
		for i := 0; i < mNew.NumLocal; i++ {
			x, y, _ := mNew.NodeCoord(i)
			if math.Abs(got[i]-x*y) > 1e-12 {
				panic("multi-level jump transfer wrong")
			}
		}
	})
}

func TestCellCenteredCopyAndAverage(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		par.Run(p, func(c *par.Comm) {
			coarse := octree.Uniform(2, 2) // 16 elements
			fine := octree.Uniform(2, 4)   // 256 elements
			oldLocal := scatterLeaves(coarse, c.Rank(), p)
			newLocal := scatterLeaves(fine, c.Rank(), p)
			oldVals := make([]float64, len(oldLocal))
			for i, o := range oldLocal {
				oldVals[i] = float64(o.X / o.Side()) // column index value
			}
			got := CellCentered(c, 2, oldLocal, oldVals, newLocal)
			for i, q := range newLocal {
				wantCol := float64(q.X / (q.Side() * 4)) // parent column
				if math.Abs(got[i]-wantCol) > 1e-12 {
					panic(fmt.Sprintf("p=%d: coarse->fine copy wrong at %v: %v want %v", p, q, got[i], wantCol))
				}
			}
			// Fine->coarse: averages of the fine values.
			fineVals := make([]float64, len(newLocal))
			for i := range fineVals {
				fineVals[i] = 2.5
			}
			back := CellCentered(c, 2, newLocal, fineVals, oldLocal)
			for i := range back {
				if math.Abs(back[i]-2.5) > 1e-12 {
					panic("fine->coarse average wrong")
				}
			}
		})
	}
}

func TestLevelByLevelMatchesSinglePass(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		oldTree := octree.Uniform(2, 2)
		newTree := octree.Uniform(2, 5)
		mOld := mesh.New(c, 2, append([]sfc.Octant(nil), oldTree.Leaves...))
		v := mOld.NewVec(1)
		for i := 0; i < mOld.NumLocal; i++ {
			x, y, _ := mOld.NodeCoord(i)
			v[i] = 1 + x + y + x*y
		}
		mNew := mesh.New(c, 2, append([]sfc.Octant(nil), newTree.Leaves...))
		single := Nodal(mOld, v, mNew, 1)
		multi, mFinal, passes := NodalLevelByLevel(mOld, v, newTree, 1)
		if passes != 3 {
			panic(fmt.Sprintf("expected 3 one-level passes, got %d", passes))
		}
		if mFinal.NumGlobal != mNew.NumGlobal {
			panic("level-by-level did not reach the target grid")
		}
		for i := 0; i < mFinal.NumLocal; i++ {
			j, ok := mNew.NodeIndex(mFinal.Keys[i])
			if !ok {
				panic("node set mismatch")
			}
			if math.Abs(multi[i]-single[j]) > 1e-12 {
				panic(fmt.Sprintf("node %d: level-by-level %v single-pass %v", i, multi[i], single[j]))
			}
		}
	})
}
