// Package transfer implements distributed multi-level inter-grid transfer
// (Saurabh et al. IPDPS 2023, Sec. II-C2): after a remesh changes element
// levels by arbitrarily many levels in one step, nodal fields move from
// the old grid to the new one in a single pass, with no intermediate
// one-level grids.
//
// Coarse-to-fine transfer evaluates the old element's linear field at each
// new node; fine-to-coarse transfer injects (samples) the old field at the
// coarse node locations — both reduce to "evaluate the old field at a
// point", so a single key-addressed evaluation service implements the
// whole transfer. Distributed operation follows the paper's four steps:
// locate the owner of each query point in the old grid's splitter table,
// ship the detached node keys, evaluate locally, and return the values to
// the requesting rank (NBX sparse exchanges both ways). Batch moves every
// field of a remesh through one such round; MigrateNodal/MigrateElem
// (migrate.go) handle the partition-only case exactly, with no
// interpolation at all.
package transfer

import (
	"fmt"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Field names one nodal field in a batched transfer: Src lives on the old
// mesh, Dst on the new mesh (full local layout, NumLocal*Ndof entries
// each).
type Field struct {
	Src, Dst []float64
	Ndof     int
}

// Workspace holds the reusable buffers of Batch so steady remeshing stops
// allocating per-field query maps and scratch. A zero Workspace is ready
// to use; keep one per simulation and pass it to every Batch call. Send
// buffers are safely reused across calls: every peer has consumed the
// previous call's payloads before it can enter the next call's exchange.
type Workspace struct {
	pos    map[int]int
	dests  []int
	keys   [][]mesh.NodeKey
	idxs   [][]int32
	rdests []int
	rbufs  [][]float64
	buf    []float64 // corner gather scratch (cpe * max ndof)
}

func (ws *Workspace) reset(bufLen int) {
	if ws.pos == nil {
		ws.pos = map[int]int{}
	}
	clear(ws.pos)
	ws.dests = ws.dests[:0]
	if cap(ws.buf) < bufLen {
		ws.buf = make([]float64, bufLen)
	}
	ws.buf = ws.buf[:bufLen]
}

// addQuery appends node i's key to the query batch for rank r.
func (ws *Workspace) addQuery(r int, k mesh.NodeKey, i int) {
	s, ok := ws.pos[r]
	if !ok {
		s = len(ws.dests)
		ws.pos[r] = s
		ws.dests = append(ws.dests, r)
		if len(ws.keys) <= s {
			ws.keys = append(ws.keys, nil)
			ws.idxs = append(ws.idxs, nil)
		}
		ws.keys[s] = ws.keys[s][:0]
		ws.idxs[s] = ws.idxs[s][:0]
	}
	ws.keys[s] = append(ws.keys[s], k)
	ws.idxs[s] = append(ws.idxs[s], int32(i))
}

// Nodal transfers a nodal field (ndof unknowns per node) from oldM to
// newM, which must cover the same domain. Returns a full local vector on
// newM. Collective. Prefer Batch when several fields move across the same
// remesh: it shares the splitter gather, the point-location pass and the
// NBX round across all of them.
func Nodal(oldM *mesh.Mesh, oldVec []float64, newM *mesh.Mesh, ndof int) []float64 {
	out := newM.NewVec(ndof)
	Batch(oldM, newM, []Field{{Src: oldVec, Dst: out, Ndof: ndof}}, nil)
	return out
}

// Batch transfers every field from oldM to newM in one pass: one splitter
// gather, one point location per new owned node (all fields evaluated at
// the located point), and one NBX query/reply round carrying all fields'
// dofs packed together. ws may be nil (a transient workspace is used).
// Collective.
//
// A query point whose old-grid owner is this rank but which no local old
// element contains is a partition/forest inconsistency: Batch fails
// loudly with the offending key instead of shipping the query through a
// self-exchange.
func Batch(oldM *mesh.Mesh, newM *mesh.Mesh, fields []Field, ws *Workspace) {
	c := oldM.Comm
	if ws == nil {
		ws = &Workspace{}
	}
	tot, maxN := 0, 0
	for _, f := range fields {
		if len(f.Src) < oldM.NumLocal*f.Ndof || len(f.Dst) < newM.NumLocal*f.Ndof {
			panic("transfer: Batch field vector length mismatch")
		}
		tot += f.Ndof
		if f.Ndof > maxN {
			maxN = f.Ndof
		}
	}
	for _, f := range fields {
		oldM.GhostRead(f.Src, f.Ndof)
	}
	oldTree := &octree.Tree{Dim: oldM.Dim, Leaves: oldM.Elems}
	spl := octree.GatherSplitters(c, oldM.Elems)
	ws.reset(oldM.CornersPerElem() * maxN)
	me := c.Rank()

	// One point-location pass over the owned new nodes; remote queries are
	// batched per old-grid owner.
	for i := 0; i < newM.NumOwned; i++ {
		k := newM.Keys[i]
		if e, xi, ok := locate(oldM, oldTree, k); ok {
			for _, f := range fields {
				evalInto(oldM, e, xi, f.Src, f.Ndof, f.Dst[i*f.Ndof:(i+1)*f.Ndof], ws.buf)
			}
			continue
		}
		r := ownerOfKey(spl, oldM.Dim, k)
		if r == me {
			panic(fmt.Sprintf("transfer: rank %d owns the old-grid region of node %v but no local element contains it", me, k))
		}
		ws.addQuery(r, k, i)
	}
	if c.Size() > 1 {
		srcs, recvd := par.NBXExchange(c, ws.dests, ws.keys[:len(ws.dests)])
		// Evaluate remote queries — all fields per located point — and
		// reply with the packed values.
		ws.rdests = ws.rdests[:0]
		ws.rbufs = ws.rbufs[:0]
		for bi, batch := range recvd {
			vals := make([]float64, len(batch)*tot)
			for qi, k := range batch {
				e, xi, ok := locate(oldM, oldTree, k)
				if !ok {
					panic(fmt.Sprintf("transfer: rank %d cannot evaluate %v for rank %d", me, k, srcs[bi]))
				}
				off := qi * tot
				for _, f := range fields {
					evalInto(oldM, e, xi, f.Src, f.Ndof, vals[off:off+f.Ndof], ws.buf)
					off += f.Ndof
				}
			}
			ws.rdests = append(ws.rdests, srcs[bi])
			ws.rbufs = append(ws.rbufs, vals)
		}
		rsrcs, replies := par.NBXExchange(c, ws.rdests, ws.rbufs)
		for bi, src := range rsrcs {
			idxs := ws.idxs[ws.pos[src]]
			vals := replies[bi]
			if len(vals) != len(idxs)*tot {
				panic("transfer: reply length mismatch")
			}
			for qi, li := range idxs {
				off := qi * tot
				for _, f := range fields {
					copy(f.Dst[int(li)*f.Ndof:(int(li)+1)*f.Ndof], vals[off:off+f.Ndof])
					off += f.Ndof
				}
			}
		}
	} else if len(ws.dests) > 0 {
		panic(fmt.Sprintf("transfer: unevaluable node %v on single rank", ws.keys[0][0]))
	}
	for _, f := range fields {
		newM.GhostRead(f.Dst, f.Ndof)
	}
}

// locate finds the local old element containing grid point k (with
// boundary clamping) and k's unit-cell coordinates within it.
func locate(m *mesh.Mesh, tree *octree.Tree, k mesh.NodeKey) (int, [3]float64, bool) {
	var xi [3]float64
	x, y, z := clampKey(m.Dim, k)
	e := tree.PointLocate(x, y, z)
	if e < 0 {
		return -1, xi, false
	}
	o := m.Elems[e]
	s := float64(o.Side())
	xi[0] = (float64(k.X) - float64(o.X)) / s
	xi[1] = (float64(k.Y) - float64(o.Y)) / s
	if m.Dim == 3 {
		xi[2] = (float64(k.Z) - float64(o.Z)) / s
	}
	return e, xi, true
}

// evalInto evaluates the ndof-dof field src at unit-cell point xi of
// element e (multilinear interpolation from the element corners) into dst.
// buf must hold CornersPerElem*ndof entries.
func evalInto(m *mesh.Mesh, e int, xi [3]float64, src []float64, ndof int, dst, buf []float64) {
	npe := m.CornersPerElem()
	m.GatherElem(e, src, ndof, buf[:npe*ndof])
	for d := 0; d < ndof; d++ {
		var v float64
		for a := 0; a < npe; a++ {
			w := 1.0
			for dim := 0; dim < m.Dim; dim++ {
				if (a>>dim)&1 == 1 {
					w *= xi[dim]
				} else {
					w *= 1 - xi[dim]
				}
			}
			v += w * buf[a*ndof+d]
		}
		dst[d] = v
	}
}

func clampKey(dim int, k mesh.NodeKey) (x, y, z uint32) {
	x, y, z = k.X, k.Y, k.Z
	if x >= sfc.MaxCoord {
		x = sfc.MaxCoord - 1
	}
	if y >= sfc.MaxCoord {
		y = sfc.MaxCoord - 1
	}
	if dim == 3 && z >= sfc.MaxCoord {
		z = sfc.MaxCoord - 1
	}
	return
}

func ownerOfKey(spl octree.Splitters, dim int, k mesh.NodeKey) int {
	x, y, z := clampKey(dim, k)
	q := sfc.Octant{X: x, Y: y, Z: z, Level: sfc.MaxLevel, Dim: uint8(dim)}
	return spl.Owner(q)
}

// CellCentered transfers per-element values from the old distributed
// forest to the new one: a new element contained in an old element copies
// its value; a new element covering several old elements takes their
// volume-weighted average. Collective.
func CellCentered(c *par.Comm, dim int, oldElems []sfc.Octant, oldVals []float64, newElems []sfc.Octant) []float64 {
	spl := octree.GatherSplitters(c, oldElems)
	oldTree := &octree.Tree{Dim: dim, Leaves: oldElems}
	out := make([]float64, len(newElems))

	type query struct {
		Oct sfc.Octant
	}
	perRank := map[int][]query{}
	perRankIdx := map[int][]int{}
	acc := make([]float64, len(newElems)) // accumulated weighted values
	wgt := make([]float64, len(newElems))

	// accumulate adds old-elements overlapping q into (val, weight).
	accumulate := func(q sfc.Octant) (float64, float64, bool) {
		lo, hi := oldTree.OverlapRange(q)
		if lo >= hi {
			return 0, 0, false
		}
		var v, w float64
		for i := lo; i < hi; i++ {
			o := oldTree.Leaves[i]
			// Weight by the overlap volume fraction.
			side := o.Side()
			if side > q.Side() {
				side = q.Side()
			}
			vol := 1.0
			for d := 0; d < dim; d++ {
				vol *= float64(side)
			}
			v += oldVals[i] * vol
			w += vol
		}
		return v, w, true
	}

	for e, q := range newElems {
		// Which ranks hold old elements overlapping q?
		owners := spl.RangeOwners(q)
		local := false
		for _, r := range owners {
			if r == c.Rank() {
				local = true
			}
		}
		if local {
			v, w, ok := accumulate(q)
			if ok {
				acc[e] += v
				wgt[e] += w
			}
		}
		for _, r := range owners {
			if r != c.Rank() {
				perRank[r] = append(perRank[r], query{q})
				perRankIdx[r] = append(perRankIdx[r], e)
			}
		}
	}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]query, 0, len(perRank))
		for r, qs := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, qs)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		rdests := make([]int, 0, len(srcs))
		rbufs := make([][]float64, 0, len(srcs))
		for i, batch := range recvd {
			vals := make([]float64, 2*len(batch))
			for qi, qu := range batch {
				v, w, _ := accumulate(qu.Oct)
				vals[2*qi] = v
				vals[2*qi+1] = w
			}
			rdests = append(rdests, srcs[i])
			rbufs = append(rbufs, vals)
		}
		rsrcs, replies := par.NBXExchange(c, rdests, rbufs)
		for i, src := range rsrcs {
			idxs := perRankIdx[src]
			vals := replies[i]
			for qi, e := range idxs {
				acc[e] += vals[2*qi]
				wgt[e] += vals[2*qi+1]
			}
		}
	}
	for e := range out {
		if wgt[e] > 0 {
			out[e] = acc[e] / wgt[e]
		}
	}
	return out
}

// NodalLevelByLevel is the ablation baseline: the transfer walks through
// intermediate grids one level at a time, rebuilding a mesh per level —
// the overhead the single-pass multi-level transfer eliminates. Serial
// only (rank count 1), sufficient for the Table I "Remesh" comparison.
func NodalLevelByLevel(oldM *mesh.Mesh, oldVec []float64, newTree *octree.Tree, ndof int) ([]float64, *mesh.Mesh, int) {
	if oldM.Comm.Size() != 1 {
		panic("transfer.NodalLevelByLevel: serial baseline only")
	}
	curM := oldM
	curVec := oldVec
	passes := 0
	for {
		// Compute per-element one-level targets toward the new tree.
		curTree := &octree.Tree{Dim: curM.Dim, Leaves: curM.Elems}
		targets := make([]int, len(curTree.Leaves))
		done := true
		for i, o := range curTree.Leaves {
			finest := newTree.FinestOverlappingLevel(o)
			lvl := int(o.Level)
			switch {
			case finest > lvl:
				targets[i] = lvl + 1
				done = false
			case finest < lvl && coarsenable(newTree, o):
				targets[i] = lvl - 1
				done = false
			default:
				targets[i] = lvl
			}
		}
		if done {
			return curVec, curM, passes
		}
		next := curTree.Refine(refineOnly(targets, curTree), nil)
		next = next.Coarsen(coarsenTargets(targets, curTree, next))
		next = next.Balance21(nil)
		nm := mesh.New(curM.Comm, curM.Dim, next.Leaves)
		curVec = Nodal(curM, curVec, nm, ndof)
		curM = nm
		passes++
		if passes > sfc.MaxLevel {
			panic("transfer.NodalLevelByLevel: did not converge to target tree")
		}
	}
}

func coarsenable(newTree *octree.Tree, o sfc.Octant) bool {
	// o may coarsen one level iff the new tree is strictly coarser over
	// o's whole parent region.
	if o.Level == 0 {
		return false
	}
	parent := o.Parent()
	lo, hi := newTree.OverlapRange(parent)
	for i := lo; i < hi; i++ {
		if int(newTree.Leaves[i].Level) >= int(o.Level) {
			return false
		}
	}
	return hi > lo
}

func refineOnly(targets []int, t *octree.Tree) []int {
	out := make([]int, len(targets))
	for i, o := range t.Leaves {
		out[i] = int(o.Level)
		if targets[i] > out[i] {
			out[i] = targets[i]
		}
	}
	return out
}

func coarsenTargets(targets []int, oldT, newT *octree.Tree) []int {
	// Map old per-element coarsening wishes onto the refined tree.
	out := make([]int, len(newT.Leaves))
	for i, o := range newT.Leaves {
		out[i] = int(o.Level)
	}
	j := 0
	for i, o := range oldT.Leaves {
		if targets[i] >= int(o.Level) {
			// Skip the descendants in newT.
			for j < len(newT.Leaves) && o.Overlaps(newT.Leaves[j]) {
				j++
			}
			continue
		}
		for j < len(newT.Leaves) && o.Overlaps(newT.Leaves[j]) {
			out[j] = targets[i]
			j++
		}
	}
	return out
}
