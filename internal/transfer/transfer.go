// Package transfer implements distributed multi-level inter-grid transfer
// (Saurabh et al. IPDPS 2023, Sec. II-C2): after a remesh changes element
// levels by arbitrarily many levels in one step, nodal fields move from
// the old grid to the new one in a single pass, with no intermediate
// one-level grids.
//
// Coarse-to-fine transfer evaluates the old element's linear field at each
// new node; fine-to-coarse transfer injects (samples) the old field at the
// coarse node locations — both reduce to "evaluate the old field at a
// point", so a single key-addressed evaluation service implements the
// whole transfer. Distributed operation follows the paper's four steps:
// locate the owner of each query point in the old grid's splitter table,
// ship the detached node keys, evaluate locally, and return the values to
// the requesting rank (NBX sparse exchanges both ways).
package transfer

import (
	"fmt"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Nodal transfers a nodal field (ndof unknowns per node) from oldM to
// newM, which must cover the same domain. Returns a full local vector on
// newM. Collective.
func Nodal(oldM *mesh.Mesh, oldVec []float64, newM *mesh.Mesh, ndof int) []float64 {
	c := oldM.Comm
	oldM.GhostRead(oldVec, ndof)
	oldTree := &octree.Tree{Dim: oldM.Dim, Leaves: oldM.Elems}
	spl := octree.GatherSplitters(c, oldM.Elems)
	out := newM.NewVec(ndof)

	eval := newEvaluator(oldM, oldTree, oldVec, ndof)

	// Partition owned new nodes into locally evaluable and remote queries.
	type query struct {
		Key mesh.NodeKey
	}
	perRank := map[int][]query{}
	perRankIdx := map[int][]int{}
	for i := 0; i < newM.NumOwned; i++ {
		k := newM.Keys[i]
		if eval.tryLocal(k, out[i*ndof:(i+1)*ndof]) {
			continue
		}
		r := ownerOfKey(spl, oldM.Dim, k)
		perRank[r] = append(perRank[r], query{k})
		perRankIdx[r] = append(perRankIdx[r], i)
	}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]query, 0, len(perRank))
		for r, qs := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, qs)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		// Evaluate remote queries and reply.
		rdests := make([]int, 0, len(srcs))
		rbufs := make([][]float64, 0, len(srcs))
		for i, batch := range recvd {
			vals := make([]float64, len(batch)*ndof)
			for q, qu := range batch {
				if !eval.tryLocal(qu.Key, vals[q*ndof:(q+1)*ndof]) {
					panic(fmt.Sprintf("transfer: rank %d cannot evaluate %v for rank %d", c.Rank(), qu.Key, srcs[i]))
				}
			}
			rdests = append(rdests, srcs[i])
			rbufs = append(rbufs, vals)
		}
		rsrcs, replies := par.NBXExchange(c, rdests, rbufs)
		for i, src := range rsrcs {
			idxs := perRankIdx[src]
			vals := replies[i]
			if len(vals) != len(idxs)*ndof {
				panic("transfer: reply length mismatch")
			}
			for q, li := range idxs {
				copy(out[li*ndof:(li+1)*ndof], vals[q*ndof:(q+1)*ndof])
			}
		}
	} else if len(perRank) > 0 {
		panic("transfer: unevaluable node on single rank")
	}
	newM.GhostRead(out, ndof)
	return out
}

// evaluator evaluates the old field at arbitrary grid points.
type evaluator struct {
	m    *mesh.Mesh
	tree *octree.Tree
	vec  []float64
	ndof int
	buf  []float64
}

func newEvaluator(m *mesh.Mesh, tree *octree.Tree, vec []float64, ndof int) *evaluator {
	return &evaluator{m: m, tree: tree, vec: vec, ndof: ndof,
		buf: make([]float64, m.CornersPerElem()*ndof)}
}

// tryLocal evaluates the field at grid point k into dst if a local old
// element contains it (with boundary clamping).
func (ev *evaluator) tryLocal(k mesh.NodeKey, dst []float64) bool {
	x, y, z := clampKey(ev.m.Dim, k)
	e := ev.tree.PointLocate(x, y, z)
	if e < 0 {
		return false
	}
	ev.m.GatherElem(e, ev.vec, ev.ndof, ev.buf)
	o := ev.m.Elems[e]
	s := float64(o.Side())
	// Unit-cell coordinates of the query point.
	var xi [3]float64
	xi[0] = (float64(k.X) - float64(o.X)) / s
	xi[1] = (float64(k.Y) - float64(o.Y)) / s
	if ev.m.Dim == 3 {
		xi[2] = (float64(k.Z) - float64(o.Z)) / s
	}
	npe := ev.m.CornersPerElem()
	for d := 0; d < ev.ndof; d++ {
		var v float64
		for a := 0; a < npe; a++ {
			w := 1.0
			for dim := 0; dim < ev.m.Dim; dim++ {
				if (a>>dim)&1 == 1 {
					w *= xi[dim]
				} else {
					w *= 1 - xi[dim]
				}
			}
			v += w * ev.buf[a*ev.ndof+d]
		}
		dst[d] = v
	}
	return true
}

func clampKey(dim int, k mesh.NodeKey) (x, y, z uint32) {
	x, y, z = k.X, k.Y, k.Z
	if x >= sfc.MaxCoord {
		x = sfc.MaxCoord - 1
	}
	if y >= sfc.MaxCoord {
		y = sfc.MaxCoord - 1
	}
	if dim == 3 && z >= sfc.MaxCoord {
		z = sfc.MaxCoord - 1
	}
	return
}

func ownerOfKey(spl octree.Splitters, dim int, k mesh.NodeKey) int {
	x, y, z := clampKey(dim, k)
	q := sfc.Octant{X: x, Y: y, Z: z, Level: sfc.MaxLevel, Dim: uint8(dim)}
	return spl.Owner(q)
}

// CellCentered transfers per-element values from the old distributed
// forest to the new one: a new element contained in an old element copies
// its value; a new element covering several old elements takes their
// volume-weighted average. Collective.
func CellCentered(c *par.Comm, dim int, oldElems []sfc.Octant, oldVals []float64, newElems []sfc.Octant) []float64 {
	spl := octree.GatherSplitters(c, oldElems)
	oldTree := &octree.Tree{Dim: dim, Leaves: oldElems}
	out := make([]float64, len(newElems))

	type query struct {
		Oct sfc.Octant
	}
	perRank := map[int][]query{}
	perRankIdx := map[int][]int{}
	acc := make([]float64, len(newElems)) // accumulated weighted values
	wgt := make([]float64, len(newElems))

	// accumulate adds old-elements overlapping q into (val, weight).
	accumulate := func(q sfc.Octant) (float64, float64, bool) {
		lo, hi := oldTree.OverlapRange(q)
		if lo >= hi {
			return 0, 0, false
		}
		var v, w float64
		for i := lo; i < hi; i++ {
			o := oldTree.Leaves[i]
			// Weight by the overlap volume fraction.
			side := o.Side()
			if side > q.Side() {
				side = q.Side()
			}
			vol := 1.0
			for d := 0; d < dim; d++ {
				vol *= float64(side)
			}
			v += oldVals[i] * vol
			w += vol
		}
		return v, w, true
	}

	for e, q := range newElems {
		// Which ranks hold old elements overlapping q?
		owners := spl.RangeOwners(q)
		local := false
		for _, r := range owners {
			if r == c.Rank() {
				local = true
			}
		}
		if local {
			v, w, ok := accumulate(q)
			if ok {
				acc[e] += v
				wgt[e] += w
			}
		}
		for _, r := range owners {
			if r != c.Rank() {
				perRank[r] = append(perRank[r], query{q})
				perRankIdx[r] = append(perRankIdx[r], e)
			}
		}
	}
	if c.Size() > 1 {
		dests := make([]int, 0, len(perRank))
		bufs := make([][]query, 0, len(perRank))
		for r, qs := range perRank {
			dests = append(dests, r)
			bufs = append(bufs, qs)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		rdests := make([]int, 0, len(srcs))
		rbufs := make([][]float64, 0, len(srcs))
		for i, batch := range recvd {
			vals := make([]float64, 2*len(batch))
			for qi, qu := range batch {
				v, w, _ := accumulate(qu.Oct)
				vals[2*qi] = v
				vals[2*qi+1] = w
			}
			rdests = append(rdests, srcs[i])
			rbufs = append(rbufs, vals)
		}
		rsrcs, replies := par.NBXExchange(c, rdests, rbufs)
		for i, src := range rsrcs {
			idxs := perRankIdx[src]
			vals := replies[i]
			for qi, e := range idxs {
				acc[e] += vals[2*qi]
				wgt[e] += vals[2*qi+1]
			}
		}
	}
	for e := range out {
		if wgt[e] > 0 {
			out[e] = acc[e] / wgt[e]
		}
	}
	return out
}

// NodalLevelByLevel is the ablation baseline: the transfer walks through
// intermediate grids one level at a time, rebuilding a mesh per level —
// the overhead the single-pass multi-level transfer eliminates. Serial
// only (rank count 1), sufficient for the Table I "Remesh" comparison.
func NodalLevelByLevel(oldM *mesh.Mesh, oldVec []float64, newTree *octree.Tree, ndof int) ([]float64, *mesh.Mesh, int) {
	if oldM.Comm.Size() != 1 {
		panic("transfer.NodalLevelByLevel: serial baseline only")
	}
	curM := oldM
	curVec := oldVec
	passes := 0
	for {
		// Compute per-element one-level targets toward the new tree.
		curTree := &octree.Tree{Dim: curM.Dim, Leaves: curM.Elems}
		targets := make([]int, len(curTree.Leaves))
		done := true
		for i, o := range curTree.Leaves {
			finest := newTree.FinestOverlappingLevel(o)
			lvl := int(o.Level)
			switch {
			case finest > lvl:
				targets[i] = lvl + 1
				done = false
			case finest < lvl && coarsenable(newTree, o):
				targets[i] = lvl - 1
				done = false
			default:
				targets[i] = lvl
			}
		}
		if done {
			return curVec, curM, passes
		}
		next := curTree.Refine(refineOnly(targets, curTree), nil)
		next = next.Coarsen(coarsenTargets(targets, curTree, next))
		next = next.Balance21(nil)
		nm := mesh.New(curM.Comm, curM.Dim, next.Leaves)
		curVec = Nodal(curM, curVec, nm, ndof)
		curM = nm
		passes++
		if passes > sfc.MaxLevel {
			panic("transfer.NodalLevelByLevel: did not converge to target tree")
		}
	}
}

func coarsenable(newTree *octree.Tree, o sfc.Octant) bool {
	// o may coarsen one level iff the new tree is strictly coarser over
	// o's whole parent region.
	if o.Level == 0 {
		return false
	}
	parent := o.Parent()
	lo, hi := newTree.OverlapRange(parent)
	for i := lo; i < hi; i++ {
		if int(newTree.Leaves[i].Level) >= int(o.Level) {
			return false
		}
	}
	return hi > lo
}

func refineOnly(targets []int, t *octree.Tree) []int {
	out := make([]int, len(targets))
	for i, o := range t.Leaves {
		out[i] = int(o.Level)
		if targets[i] > out[i] {
			out[i] = targets[i]
		}
	}
	return out
}

func coarsenTargets(targets []int, oldT, newT *octree.Tree) []int {
	// Map old per-element coarsening wishes onto the refined tree.
	out := make([]int, len(newT.Leaves))
	for i, o := range newT.Leaves {
		out[i] = int(o.Level)
	}
	j := 0
	for i, o := range oldT.Leaves {
		if targets[i] >= int(o.Level) {
			// Skip the descendants in newT.
			for j < len(newT.Leaves) && o.Overlaps(newT.Leaves[j]) {
				j++
			}
			continue
		}
		for j < len(newT.Leaves) && o.Overlaps(newT.Leaves[j]) {
			out[j] = targets[i]
			j++
		}
	}
	return out
}
