// Package chns implements the thermodynamically consistent Cahn–Hilliard
// Navier–Stokes solver of Saurabh et al. (IPDPS 2023, Sec. II-A): the
// two-block projection scheme with four sub-solves per block —
//
//	CH-solve: fully implicit nonlinear advective Cahn–Hilliard (Newton);
//	NS-solve: semi-implicit Crank–Nicolson linearized momentum;
//	PP-solve: variable-density pressure Poisson;
//	VU-solve: velocity correction, optionally split into DIM single-DOF
//	          solves that reuse one assembled mass matrix (Sec. II-A).
//
// The Cahn number may vary per element ("local Cahn", Sec. II-B): the
// interface terms read the elemental Cn vector produced by the detect
// package.
package chns

import "math"

// Params are the non-dimensional groups of the CHNS system (Sec. II-A).
type Params struct {
	Re float64 // Reynolds u_r L_r / nu_r
	We float64 // Weber rho_r u_r^2 L_r / sigma
	Pe float64 // Peclet u_r L_r^2 / (m_r sigma)
	Cn float64 // Cahn eps / L_r (the global/background value)
	Fr float64 // Froude u_r^2 / (g L_r); <= 0 disables gravity

	// RhoMinus and EtaMinus are the -1 phase density and viscosity
	// relative to the +1 phase (rho+ = eta+ = 1).
	RhoMinus float64
	EtaMinus float64

	// Gravity direction (unit vector), typically {0,-1,0}.
	GravityDir [3]float64
}

// DefaultParams returns a well-conditioned two-phase setup (water-like /
// light-gas-like at moderate contrast).
func DefaultParams() Params {
	return Params{
		Re: 100, We: 10, Pe: 100, Cn: 0.01, Fr: -1,
		RhoMinus: 0.1, EtaMinus: 0.1,
		GravityDir: [3]float64{0, -1, 0},
	}
}

// Density returns the non-dimensional mixture density
// ((1-rho-)/2) φ + (1+rho-)/2, clipped to remain positive for out-of-bound
// φ excursions.
func (p Params) Density(phi float64) float64 {
	r := (1-p.RhoMinus)/2*clamp(phi) + (1+p.RhoMinus)/2
	if r < 1e-3 {
		r = 1e-3
	}
	return r
}

// Viscosity returns the non-dimensional mixture viscosity.
func (p Params) Viscosity(phi float64) float64 {
	e := (1-p.EtaMinus)/2*clamp(phi) + (1+p.EtaMinus)/2
	if e < 1e-4 {
		e = 1e-4
	}
	return e
}

// Mobility returns the degenerate mobility m(φ) = sqrt(1-φ²), floored
// away from zero so the CH operator stays elliptic.
func (p Params) Mobility(phi float64) float64 {
	c := clamp(phi)
	m := math.Sqrt(1 - c*c)
	if m < 1e-2 {
		m = 1e-2
	}
	return m
}

// PsiPrime is the derivative of the double-well potential
// ψ(φ) = (1-φ²)²/4: ψ'(φ) = φ³ - φ.
func PsiPrime(phi float64) float64 { return phi*phi*phi - phi }

// PsiDoublePrime is ψ”(φ) = 3φ² - 1.
func PsiDoublePrime(phi float64) float64 { return 3*phi*phi - 1 }

func clamp(phi float64) float64 {
	if phi > 1 {
		return 1
	}
	if phi < -1 {
		return -1
	}
	return phi
}

// EquilibriumProfile returns the 1D equilibrium interface profile
// φ(d) = tanh(d / (sqrt(2) Cn)) for a signed distance d, used to
// initialize phase fields.
func EquilibriumProfile(d, cn float64) float64 {
	return math.Tanh(d / (math.Sqrt2 * cn))
}
