package chns

import (
	"fmt"
	"math"

	"proteus/internal/fault"
	"proteus/internal/la"
	"proteus/internal/par"
)

// Stage names one solve stage of the time block. The values double as
// the stage filter strings of the fault-injection spec.
type Stage string

const (
	StageCH Stage = "ch"
	StageNS Stage = "ns"
	StagePP Stage = "pp"
	StageVU Stage = "vu"
)

// Kind values of ErrDiverged, the failure taxonomy of a solve stage.
const (
	// DivergeKSP: the stage's linear solve reported non-convergence
	// (iteration cap, breakdown, or an injected divergence).
	DivergeKSP = "ksp"
	// DivergeNewton: the CH Newton iteration failed to converge.
	DivergeNewton = "newton"
	// DivergeNonFinite: the post-stage finite scan found NaN/Inf in an
	// output field — silent corruption turned into a typed error.
	DivergeNonFinite = "nonfinite"
)

// ErrDiverged reports a failed solve stage: which stage, how it failed,
// and the last linear result behind the failure. All failure signals
// feeding it are globally reduced, so every rank of a collective step
// returns the same verdict — the property the retry loop relies on.
type ErrDiverged struct {
	Stage Stage
	Kind  string // DivergeKSP | DivergeNewton | DivergeNonFinite
	// Result is the stage's last linear solve outcome.
	Result la.Result
	// NewtonIterations is set for CH (Kind DivergeNewton) failures.
	NewtonIterations int
}

func (e *ErrDiverged) Error() string {
	switch e.Kind {
	case DivergeNewton:
		return fmt.Sprintf("chns: %s stage diverged: Newton stalled after %d iterations (last linear: %d its, residual %.3e)",
			e.Stage, e.NewtonIterations, e.Result.Iterations, e.Result.Residual)
	case DivergeNonFinite:
		return fmt.Sprintf("chns: %s stage produced NaN/Inf field values (last linear: %d its, residual %.3e)",
			e.Stage, e.Result.Iterations, e.Result.Residual)
	default:
		return fmt.Sprintf("chns: %s stage diverged: linear solve not converged after %d iterations (residual %.3e)",
			e.Stage, e.Result.Iterations, e.Result.Residual)
	}
}

// StageReport is one stage's solve outcome inside a StepReport.
type StageReport struct {
	Stage Stage `json:"stage"`
	// Result is the stage's (last) linear solve result; for VU in split
	// mode it is the result of the final component solve and Iterations
	// accumulates all components.
	Result la.Result `json:"result"`
	// NewtonIterations and NewtonConverged are set for the CH stage.
	NewtonIterations int  `json:"newton_iterations,omitempty"`
	NewtonConverged  bool `json:"newton_converged,omitempty"`
}

// StepReport carries every stage's solve outcome for one time block.
// Stages that did not run (e.g. NS/PP/VU under a prescribed velocity)
// keep their zero value.
type StepReport struct {
	CH StageReport `json:"ch"`
	NS StageReport `json:"ns"`
	PP StageReport `json:"pp"`
	VU StageReport `json:"vu"`
}

// initFiniteScan builds the persistent sharded NaN/Inf scan: a prebuilt
// pool closure and one padded flag slot per worker, so the warm per-step
// scan performs no allocation and never shares cache lines.
func (s *Solver) initFiniteScan() {
	nw := s.pool.Workers()
	s.finBad = make([]uint64, nw*8)
	s.finRun = func(w int) {
		lo, hi := par.Shard(w, nw, s.finN)
		v := s.finVec
		var bad uint64
		for i := lo; i < hi; i++ {
			// v-v is 0 for every finite value and NaN for NaN/±Inf; the
			// NaN != 0 comparison is true, catching both without calls.
			if d := v[i] - v[i]; d != 0 {
				bad = 1
			}
		}
		s.finBad[w*8] = bad
	}
}

// scanBad shards a NaN/Inf scan of v[:n] (the owned segment) across the
// solver pool and returns a nonzero local verdict if any entry is
// non-finite. Allocation-free warm.
func (s *Solver) scanBad(v []float64, n int) uint64 {
	if n == 0 {
		return 0
	}
	s.finVec, s.finN = v, n
	s.pool.Run(s.finRun)
	s.finVec = nil
	var bad uint64
	for w := 0; w < s.pool.Workers(); w++ {
		bad |= s.finBad[w*8]
		s.finBad[w*8] = 0
	}
	return bad
}

// checkFinite reduces the local scan verdict globally — a NaN on one
// rank must fail the step on every rank or the collective call sequence
// desynchronizes — and converts a hit into the typed divergence error.
func (s *Solver) checkFinite(stage Stage, bad uint64, res la.Result) error {
	s.finRed[0] = float64(bad)
	s.M.GlobalSumInto(s.finRed[:])
	if s.finRed[0] != 0 {
		return &ErrDiverged{Stage: stage, Kind: DivergeNonFinite, Result: res}
	}
	return nil
}

// pokeNaN is the FieldNaN injection point: corrupt the first owned entry
// of v on the matching rank. The finite scan must catch it.
func (s *Solver) pokeNaN(stage Stage, v []float64) {
	if s.Fault.Fire(fault.FieldNaN, string(stage)) && s.M.NumOwned > 0 {
		v[0] = math.NaN()
	}
}
