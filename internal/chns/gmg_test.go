package chns

import (
	"math"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/mg"
	"proteus/internal/par"
)

// gmgSolver builds a solver on a uniform mesh with the NS/PP stages
// preconditioned as requested and a bubble-like initial state.
func gmgSolver(c *par.Comm, pc string, level int, dt float64) *Solver {
	m := uniformMesh(c, 2, level)
	prm := DefaultParams()
	prm.Cn = 0.06
	prm.Fr = 1
	opt := DefaultOptions(dt)
	opt.PCNS, opt.PCPP = pc, pc
	s := NewSolver(m, prm, opt)
	s.SetPhi(func(x, y, z float64) float64 {
		return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.45), prm.Cn)
	})
	s.InitMuFromPhi()
	return s
}

// TestGMGStepParity: swapping the NS/PP preconditioner changes only the
// Krylov path, not the discretization, so with tight linear tolerances
// the stepped fields agree closely between GMG and the ILU(0) default.
func TestGMGStepParity(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		fields := map[string]map[mesh.NodeKey][2]float64{}
		for _, pc := range []string{PCBJacobi, PCGMG} {
			out := map[mesh.NodeKey][2]float64{}
			par.Run(ranks, func(c *par.Comm) {
				s := gmgSolver(c, pc, 4, 5e-4)
				for i := 0; i < 3; i++ {
					if _, err := s.Step(); err != nil {
						panic(err)
					}
				}
				type kv struct {
					K mesh.NodeKey
					V [2]float64
				}
				var local []kv
				m := s.M
				for i := 0; i < m.NumOwned; i++ {
					local = append(local, kv{m.Keys[i], [2]float64{s.PhiMu[2*i], s.Vel[2*i]}})
				}
				all := par.Allgatherv(c, local)
				if c.Rank() == 0 {
					for _, e := range all {
						out[e.K] = e.V
					}
				}
			})
			fields[pc] = out
		}
		base, got := fields[PCBJacobi], fields[PCGMG]
		if len(base) == 0 || len(got) != len(base) {
			t.Fatalf("ranks=%d: node sets differ (%d vs %d)", ranks, len(base), len(got))
		}
		for k, v := range base {
			g := got[k]
			if math.Abs(g[0]-v[0]) > 1e-6 || math.Abs(g[1]-v[1]) > 1e-6 {
				t.Fatalf("ranks=%d node %v: bjacobi %v gmg %v", ranks, k, v, g)
			}
		}
	}
}

// TestGMGHierarchyInvalidation: the shared MG ladder is keyed to the
// mesh epoch. An epoch bump or a Rebind must drop it and the stage PCs
// with it — stale coarse operators must never survive a remesh — and the
// next step must rebuild everything against the current mesh.
func TestGMGHierarchyInvalidation(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		s := gmgSolver(c, PCGMG, 4, 5e-4)
		if _, err := s.Step(); err != nil {
			panic(err)
		}
		if s.mgH == nil {
			t.Fatal("after a GMG step the hierarchy must exist")
		}
		g, ok := s.nsPC.(*mg.PCGMG)
		if !ok {
			t.Fatalf("NS PC is %T, want *mg.PCGMG", s.nsPC)
		}
		if g.Hierarchy() != s.mgH || s.mgH.Meshes[0] != s.M {
			t.Fatal("stage PC must share the solver hierarchy rooted at the fine mesh")
		}
		// Epoch bump (the remesh signal): ladder and stage PCs must go.
		s.SetMeshEpoch(s.MeshEpoch() + 1)
		if s.mgH != nil || s.nsPC != nil || s.ppPC != nil {
			t.Fatal("SetMeshEpoch must drop the hierarchy and the stage PCs")
		}
		if _, err := s.Step(); err != nil {
			panic(err)
		}
		if s.mgH == nil || s.mgH.Meshes[0] != s.M {
			t.Fatal("the next step must rebuild the ladder from the current mesh")
		}
		old := s.mgH
		// Rebind to a genuinely different forest: same invariant.
		m2 := uniformMesh(c, 2, 3)
		s.Rebind(m2, s.MeshEpoch()+1)
		if s.mgH != nil || s.nsPC != nil || s.ppPC != nil {
			t.Fatal("Rebind must drop the hierarchy and the stage PCs")
		}
		prm := s.Par
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.45), prm.Cn)
		})
		s.InitMuFromPhi()
		if _, err := s.Step(); err != nil {
			panic(err)
		}
		if s.mgH == nil || s.mgH == old || s.mgH.Meshes[0] != m2 {
			t.Fatal("after Rebind the ladder must be rebuilt from the new mesh")
		}
	})
}

// TestWarmStepZeroAlloc: a warm time step performs no allocation at all —
// with the default ILU(0) stage PCs and, the point of this PR, with the
// full multigrid ladder refreshing and cycling inside NS and PP.
func TestWarmStepZeroAlloc(t *testing.T) {
	for _, pc := range []string{PCBJacobi, PCGMG} {
		par.Run(1, func(c *par.Comm) {
			s := gmgSolver(c, pc, 4, 5e-4)
			for i := 0; i < 3; i++ {
				if _, err := s.Step(); err != nil {
					panic(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := s.Step(); err != nil {
					panic(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("pc=%s: warm Step allocates %v/op, want 0", pc, allocs)
			}
		})
	}
}

// TestGMGStepBitwiseAcrossVecWorkers: the V-cycle inherits the solver's
// worker-invariance discipline end to end — a full step with GMG stages
// is bitwise identical at any vector-shard count.
func TestGMGStepBitwiseAcrossVecWorkers(t *testing.T) {
	run := func(vecWorkers, ranks int) map[mesh.NodeKey][2]float64 {
		out := map[mesh.NodeKey][2]float64{}
		par.Run(ranks, func(c *par.Comm) {
			m := uniformMesh(c, 2, 3)
			prm := DefaultParams()
			prm.Cn = 0.1
			prm.Fr = 1
			opt := DefaultOptions(2e-3)
			opt.VecWorkers = vecWorkers
			opt.PCNS, opt.PCPP = PCGMG, PCGMG
			s := NewSolver(m, prm, opt)
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.45), prm.Cn)
			})
			s.InitMuFromPhi()
			if _, err := s.Step(); err != nil {
				panic(err)
			}
			type kv struct {
				K mesh.NodeKey
				V [2]float64
			}
			var local []kv
			for i := 0; i < m.NumOwned; i++ {
				local = append(local, kv{m.Keys[i], [2]float64{s.PhiMu[2*i], s.Vel[2*i]}})
			}
			all := par.Allgatherv(c, local)
			if c.Rank() == 0 {
				for _, e := range all {
					out[e.K] = e.V
				}
			}
		})
		return out
	}
	for _, ranks := range []int{1, 2} {
		base := run(1, ranks)
		for _, nw := range []int{2, 4} {
			got := run(nw, ranks)
			if len(got) != len(base) {
				t.Fatalf("ranks=%d nw=%d: node sets differ", ranks, nw)
			}
			for k, v := range base {
				if got[k] != v {
					t.Fatalf("ranks=%d nw=%d node %v: serial %v sharded %v (not bitwise)", ranks, nw, k, v, got[k])
				}
			}
		}
	}
}
