package chns

import (
	"time"

	"proteus/internal/fem"
	"proteus/internal/la"
)

// StepPP solves the variable-density pressure Poisson equation of the
// projection step (Table II: ibcgs + bjacobi):
//
//	∇·( (1/ρ) ∇ψ ) = (1/dt) ∇·v*
//
// for the pressure increment ψ, with pure Neumann boundaries; the
// nullspace is fixed by pinning the first global pressure unknown. The
// weak form is K_{1/ρ} ψ = -(1/dt) ∫ N ∇·v*.
func (s *Solver) StepPP() []float64 {
	t0 := time.Now()
	m := s.M
	dim := m.Dim
	r := s.asmS.Ref
	npe := r.NPE
	m.GhostRead(s.PhiMu, 2)
	m.GhostRead(s.Vel, dim)

	pm := make([]float64, npe*2)
	invRho := make([]float64, npe)
	velC := make([]float64, npe*dim)

	tMat := time.Now()
	mat := fem.NewMatrix(m, 1, s.Opt.Layout)
	buildCoef := func(e int) {
		m.GatherElem(e, s.PhiMu, 2, pm)
		for a := 0; a < npe; a++ {
			invRho[a] = 1 / s.Par.Density(pm[a*2])
		}
	}
	if s.Opt.Layout == fem.LayoutZipped {
		s.asmS.AssembleMatrixZipped(mat, func(e int, h float64, blocks [][]float64) {
			buildCoef(e)
			w := s.asmS.Work()
			cg := make([]float64, r.NG)
			r.CoefAtGauss(invRho, cg)
			r.StiffGemm(w, h, 1, cg, blocks[0])
		})
	} else {
		s.asmS.AssembleMatrix(mat, s.Opt.Layout, func(e int, h float64, ke []float64) {
			buildCoef(e)
			r.WeightedStiffness(h, invRho, 1, ke)
		})
	}
	s.T.PP.Matrix += time.Since(tMat)

	tVec := time.Now()
	rhs := m.NewVec(1)
	s.asmS.AssembleVector(rhs, func(e int, h float64, fe []float64) {
		m.GatherElem(e, s.Vel, dim, velC)
		vol := 1.0
		for d := 0; d < dim; d++ {
			vol *= h
		}
		comp := make([]float64, npe)
		for g := 0; g < r.NG; g++ {
			w := r.W[g] * vol
			var div float64
			for d := 0; d < dim; d++ {
				for a := 0; a < npe; a++ {
					comp[a] = velC[a*dim+d]
				}
				div += r.GradAtGauss(g, d, h, comp)
			}
			f := -div / s.Opt.Dt
			for a := 0; a < npe; a++ {
				fe[a] += w * f * r.N[g*npe+a]
			}
		}
	})
	s.T.PP.Vector += time.Since(tVec)

	mat.Finalize()
	// Pin the global first pressure unknown to fix the Neumann nullspace.
	if m.GlobalStart == 0 && m.NumOwned > 0 {
		mat.ZeroRow(0, 1)
		rhs[0] = 0
	}
	psi := m.NewVec(1)
	tSolve := time.Now()
	ksp := &la.KSP{Op: mat, PC: la.NewPCBJacobiILU0(mat), Red: m,
		Type: la.IBiCGS, Rtol: s.Opt.LinTol, Atol: s.Opt.LinTol}
	res := ksp.Solve(rhs, psi)
	s.T.PP.Solve += time.Since(tSolve)
	s.T.PP.Iterations += res.Iterations
	m.GhostRead(psi, 1)
	s.T.PP.Total += time.Since(t0)
	return psi
}
