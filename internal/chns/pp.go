package chns

import (
	"time"

	"proteus/internal/fault"
	"proteus/internal/fem"
	"proteus/internal/la"
)

// ppScratch is one element-loop worker's private pressure-Poisson kernel
// scratch: pm/invRho/cg serve the matrix kernel, velC/comp the
// divergence RHS kernel. Hoisting velC and comp here (instead of a
// shared capture and a per-element allocation) is what lets the vector
// assembly shard race-free.
type ppScratch struct {
	pm     []float64
	invRho []float64
	cg     []float64
	velC   []float64
	comp   []float64
}

func newPPScratch(npe, ng, dim int) ppScratch {
	return ppScratch{
		pm:     make([]float64, npe*2),
		invRho: make([]float64, npe),
		cg:     make([]float64, ng),
		velC:   make([]float64, npe*dim),
		comp:   make([]float64, npe),
	}
}

// StepPP solves the variable-density pressure Poisson equation of the
// projection step (Table II: ibcgs + bjacobi):
//
//	∇·( (1/ρ) ∇ψ ) = (1/dt) ∇·v*
//
// for the pressure increment ψ, with pure Neumann boundaries; the
// nullspace is fixed by pinning the first global pressure unknown. The
// weak form is K_{1/ρ} ψ = -(1/dt) ∫ N ∇·v*.
//
// The returned slice is the solver's persistent ψ buffer: it stays valid
// until the next StepPP (which overwrites it in place) — copy it to
// retain a snapshot across steps.
func (s *Solver) StepPP() ([]float64, StageReport, error) {
	t0 := time.Now()
	m := s.M
	dim := m.Dim
	m.GhostRead(s.PhiMu, 2)
	m.GhostRead(s.Vel, dim)

	// Persistent operator: allocated once per mesh, Zero()+reassembled
	// through the warm plan on later steps.
	tMat := time.Now()
	if s.ppMat == nil {
		s.ppMat = s.asmS.NewMatrix(s.Opt.Layout)
	} else {
		s.ppMat.Zero()
	}
	mat := s.ppMat
	if s.Opt.Layout == fem.LayoutZipped {
		s.asmS.AssembleMatrixZipped(mat, s.kPPMatZip)
	} else {
		s.asmS.AssembleMatrix(mat, s.Opt.Layout, s.kPPMat)
	}
	s.T.PP.Matrix += time.Since(tMat)

	tVec := time.Now()
	if s.ppRHS == nil {
		s.ppRHS = m.NewVec(1)
	}
	rhs := s.ppRHS
	s.asmS.AssembleVectorPlanned(rhs, s.kPPVec)
	s.T.PP.Vector += time.Since(tVec)

	// Pin the global first pressure unknown to fix the Neumann nullspace.
	if m.GlobalStart == 0 && m.NumOwned > 0 {
		mat.ZeroRow(0, 1)
		rhs[0] = 0
	}
	if s.ppPsi == nil {
		s.ppPsi = m.NewVec(1)
	}
	psi := s.ppPsi
	// Warm starts keep the previous increment (migrated across remeshes)
	// as the initial guess; the tolerance is relative to the RHS either
	// way, so the converged solution is the same.
	if !s.Opt.WarmStarts {
		for i := range psi {
			psi[i] = 0
		}
	}
	// Persistent KSP + PC: workspace reused (resized in place across a
	// Rebind); the PC choice (Opt.PCPP) re-keys in place while the mesh is
	// unchanged, with setup timed apart from the Krylov iteration.
	tPC := time.Now()
	switch {
	case s.ppPC == nil:
		s.ppPC = s.newPPPC(mat)
		s.T.PP.PCSetupCold += time.Since(tPC)
	case s.ppPCStale:
		s.ppPC = s.rebindStagePC(s.ppPC, mat, 1, s.ppGMGCoefs, s.newPPPC)
		s.ppPCStale = false
	default:
		refreshStagePC(s.ppPC, mat)
	}
	pcSetup := time.Since(tPC)
	s.T.PP.PCSetup += pcSetup
	if s.ppKSP == nil {
		s.ppKSP = &la.KSP{Type: la.IBiCGS, Rtol: s.Opt.LinTol, Atol: s.Opt.LinTol}
	}
	s.ppKSP.AddPCSetup(pcSetup)
	s.ppKSP.Op, s.ppKSP.PC, s.ppKSP.Red, s.ppKSP.Pool = mat, s.ppPC, m, s.pool
	tSolve := time.Now()
	res, err := s.ppKSP.Solve(rhs, psi)
	s.T.PP.Solve += time.Since(tSolve)
	s.T.PP.Record(res.Iterations)
	if s.postRemesh {
		s.T.RemeshStages.PostPPIters += res.Iterations
	}
	m.GhostRead(psi, 1)
	rep := StageReport{Stage: StagePP, Result: res}
	if err != nil {
		s.T.PP.Total += time.Since(t0)
		return psi, rep, err
	}
	if s.Fault.Fire(fault.KSPDiverge, string(StagePP)) {
		rep.Result.Converged = false
	}
	if !rep.Result.Converged {
		s.T.PP.Total += time.Since(t0)
		return psi, rep, &ErrDiverged{Stage: StagePP, Kind: DivergeKSP, Result: rep.Result}
	}
	s.pokeNaN(StagePP, psi)
	err = s.checkFinite(StagePP, s.scanBad(psi, m.NumOwned), rep.Result)
	s.T.PP.Total += time.Since(t0)
	return psi, rep, err
}

// ppBuildCoef gathers worker w's nodal 1/ρ(φ) coefficients for element e
// (the shared core of the PP matrix kernels).
func (s *Solver) ppBuildCoef(w, e int) *ppScratch {
	m := s.M
	npe := s.asmS.Ref.NPE
	sc := &s.ppScr[w]
	m.GatherElem(e, s.PhiMu, 2, sc.pm)
	for a := 0; a < npe; a++ {
		sc.invRho[a] = 1 / s.Par.Density(sc.pm[a*2])
	}
	return sc
}

// initPPKernels builds the PP matrix and RHS element kernels once,
// capturing only the Solver (see initCHKernels).
func (s *Solver) initPPKernels() {
	s.kPPMatZip = func(w, e int, h float64, blocks [][]float64) {
		r := s.asmS.Ref
		sc := s.ppBuildCoef(w, e)
		r.CoefAtGauss(sc.invRho, sc.cg)
		r.StiffGemm(s.asmS.WorkN(w), h, 1, sc.cg, blocks[0])
	}
	s.kPPMat = func(w, e int, h float64, ke []float64) {
		sc := s.ppBuildCoef(w, e)
		s.asmS.Ref.WeightedStiffness(h, sc.invRho, 1, ke)
	}
	s.kPPVec = func(w, e int, h float64, fe []float64) {
		m := s.M
		dim := m.Dim
		r := s.asmS.Ref
		npe := r.NPE
		sc := &s.ppScr[w]
		m.GatherElem(e, s.Vel, dim, sc.velC)
		vol := 1.0
		for d := 0; d < dim; d++ {
			vol *= h
		}
		for g := 0; g < r.NG; g++ {
			wg := r.W[g] * vol
			var div float64
			for d := 0; d < dim; d++ {
				for a := 0; a < npe; a++ {
					sc.comp[a] = sc.velC[a*dim+d]
				}
				div += r.GradAtGauss(g, d, h, sc.comp)
			}
			f := -div / s.Opt.Dt
			for a := 0; a < npe; a++ {
				fe[a] += wg * f * r.N[g*npe+a]
			}
		}
	}
}
