package chns

import (
	"time"

	"proteus/internal/blas"
	"proteus/internal/fault"
	"proteus/internal/fem"
	"proteus/internal/la"
)

// nsScratch is one element-loop worker's private NS matrix-kernel
// scratch, so the sharded assembly runs race-free with zero per-element
// allocation.
type nsScratch struct {
	pm, velC       []float64
	rho, eta, phiC []float64
	scalarOp, tmp  []float64
	rvel           []float64
	rhoG, etaG     []float64
}

func newNSScratch(npe, ng, dim int) nsScratch {
	return nsScratch{
		pm:       make([]float64, npe*2),
		velC:     make([]float64, npe*dim),
		rho:      make([]float64, npe),
		eta:      make([]float64, npe),
		phiC:     make([]float64, npe),
		scalarOp: make([]float64, npe*npe),
		tmp:      make([]float64, npe*npe),
		rvel:     make([]float64, npe*dim),
		rhoG:     make([]float64, ng),
		etaG:     make([]float64, ng),
	}
}

// nsVecScratch is one element-loop worker's private NS RHS-kernel
// scratch, hoisted on the Solver so the sharded vector assembly runs
// race-free with zero per-step and per-element allocation.
type nsVecScratch struct {
	pm, velC, pC             []float64
	rho, eta, phiC, muC, tmp []float64
	scalarOld, visc          []float64
	rvel                     []float64
	comp                     []float64
	pGrad                    []float64
}

func newNSVecScratch(npe, dim int) nsVecScratch {
	return nsVecScratch{
		pm:        make([]float64, npe*2),
		velC:      make([]float64, npe*dim),
		pC:        make([]float64, npe),
		rho:       make([]float64, npe),
		eta:       make([]float64, npe),
		phiC:      make([]float64, npe),
		muC:       make([]float64, npe),
		tmp:       make([]float64, npe),
		scalarOld: make([]float64, npe*npe),
		visc:      make([]float64, npe*npe),
		rvel:      make([]float64, npe*dim),
		comp:      make([]float64, npe),
		pGrad:     make([]float64, dim),
	}
}

// StepNS solves the linearized semi-implicit momentum block for the
// tentative velocity v* (Table II: bcgs + bjacobi). The convection
// velocity and the mixture properties are evaluated from the current φ
// (just updated by CH-solve) and the previous velocity, which linearizes
// the system and avoids a Newton setup (Sec. II-A).
//
//	[M_ρ/dt + θ C_ρ(vⁿ) + θ K_η/Re] v* =
//	   M_ρ vⁿ/dt - (1-θ)[C_ρ(vⁿ) + K_η/Re] vⁿ
//	   - G pⁿ + F_st(φ) + F_g(ρ) - C_J(∇μ) vⁿ
//
// with the capillary force F_st = -(Cn/We) ∫ ∇N : (∇φ⊗∇φ), gravity
// F_g = ∫ N ρ ĝ/Fr, and the thermodynamic mass-flux convection C_J
// carrying J = ((ρ⁻/ρ⁺-1)/2)(Cn/Pe) m(φ)∇μ (treated explicitly).
func (s *Solver) StepNS() (StageReport, error) {
	t0 := time.Now()
	m := s.M
	dim := m.Dim
	m.GhostRead(s.PhiMu, 2)
	m.GhostRead(s.Vel, dim)
	m.GhostRead(s.P, 1)

	// Matrix: same scalar operator on each velocity component (the
	// viscous cross-coupling is lumped into the component Laplacian).
	// The operator matrix persists across steps: allocated once per mesh,
	// Zero()+reassembled thereafter through the warm assembly plan.
	tMat := time.Now()
	if s.nsMat == nil {
		s.nsMat = s.asmVel.NewMatrix(s.Opt.Layout)
	} else {
		s.nsMat.Zero()
	}
	mat := s.nsMat
	if s.Opt.Layout == fem.LayoutZipped {
		s.asmVel.AssembleMatrixZipped(mat, s.kNSMatZip)
	} else {
		s.asmVel.AssembleMatrix(mat, s.Opt.Layout, s.kNSMat)
	}
	s.T.NS.Matrix += time.Since(tMat)

	// RHS: sharded planned vector assembly with per-worker scratch.
	tVec := time.Now()
	if s.nsRHS == nil {
		s.nsRHS = m.NewVec(dim)
	}
	rhs := s.nsRHS
	s.asmVel.AssembleVectorPlanned(rhs, s.kNSVec)
	s.T.NS.Vector += time.Since(tVec)

	// No-slip walls.
	for i := 0; i < m.NumOwned; i++ {
		if m.OnBoundary(i) {
			for d := 0; d < dim; d++ {
				mat.ZeroRow(i*dim+d, 1)
				rhs[i*dim+d] = 0
			}
		}
	}
	// Persistent KSP + PC: the Krylov workspace is allocated on the first
	// step and reused (resized in place across a Rebind); the PC (ILU(0)
	// refactorization or the multigrid coefficient/operator refresh, per
	// Opt.PCNS) re-keys in place from the new values while the mesh is
	// unchanged and is rebuilt with the operator after a remesh. PC setup
	// is timed apart from the Krylov iteration so preconditioner
	// comparisons aren't skewed by setup cost.
	tPC := time.Now()
	switch {
	case s.nsPC == nil:
		s.nsPC = s.newNSPC(mat)
		s.T.NS.PCSetupCold += time.Since(tPC)
	case s.nsPCStale:
		s.nsPC = s.rebindStagePC(s.nsPC, mat, dim, s.nsGMGCoefs, s.newNSPC)
		s.nsPCStale = false
	default:
		refreshStagePC(s.nsPC, mat)
	}
	pcSetup := time.Since(tPC)
	s.T.NS.PCSetup += pcSetup
	if s.nsKSP == nil {
		s.nsKSP = &la.KSP{Type: la.BiCGS, Rtol: s.Opt.LinTol, Atol: s.Opt.LinTol}
	}
	s.nsKSP.AddPCSetup(pcSetup)
	s.nsKSP.Op, s.nsKSP.PC, s.nsKSP.Red, s.nsKSP.Pool = mat, s.nsPC, m, s.pool
	tSolve := time.Now()
	res, err := s.nsKSP.Solve(rhs, s.Vel)
	s.T.NS.Solve += time.Since(tSolve)
	s.T.NS.Record(res.Iterations)
	if s.postRemesh {
		s.T.RemeshStages.PostNSIters += res.Iterations
	}
	m.GhostRead(s.Vel, dim)
	rep := StageReport{Stage: StageNS, Result: res}
	if err != nil {
		s.T.NS.Total += time.Since(t0)
		return rep, err
	}
	if s.Fault.Fire(fault.KSPDiverge, string(StageNS)) {
		rep.Result.Converged = false
	}
	if !rep.Result.Converged {
		s.T.NS.Total += time.Since(t0)
		return rep, &ErrDiverged{Stage: StageNS, Kind: DivergeKSP, Result: rep.Result}
	}
	s.pokeNaN(StageNS, s.Vel)
	err = s.checkFinite(StageNS, s.scanBad(s.Vel, dim*m.NumOwned), rep.Result)
	s.T.NS.Total += time.Since(t0)
	return rep, err
}

// nsBuildScalar fills worker w's scalar momentum operator block for
// element e from the current φ/μ and velocity (the shared core of the NS
// matrix kernels).
func (s *Solver) nsBuildScalar(w, e int, h float64) *nsScratch {
	m := s.M
	dim := m.Dim
	r := s.asmVel.Ref
	npe := r.NPE
	th, dt := s.Opt.Theta, s.Opt.Dt
	sc := &s.nsScr[w]
	m.GatherElem(e, s.PhiMu, 2, sc.pm)
	m.GatherElem(e, s.Vel, dim, sc.velC)
	for a := 0; a < npe; a++ {
		sc.phiC[a] = sc.pm[a*2]
		sc.rho[a] = s.Par.Density(sc.phiC[a])
		sc.eta[a] = s.Par.Viscosity(sc.phiC[a])
	}
	for i := range sc.scalarOp {
		sc.scalarOp[i] = 0
	}
	if s.Opt.Layout == fem.LayoutZipped {
		wk := s.asmVel.WorkN(w)
		r.CoefAtGauss(sc.rho, sc.rhoG)
		r.CoefAtGauss(sc.eta, sc.etaG)
		r.MassGemm(wk, h, 1/dt, sc.rhoG, sc.scalarOp)
		r.StiffGemm(wk, h, th/s.Par.Re, sc.etaG, sc.tmp)
		for i := range sc.tmp {
			sc.scalarOp[i] += sc.tmp[i]
		}
		// ρ-weighted convection: fold ρ into the velocity samples.
		for a := 0; a < npe; a++ {
			for d := 0; d < dim; d++ {
				sc.rvel[a*dim+d] = sc.rho[a] * sc.velC[a*dim+d]
			}
		}
		r.ConvGemm(wk, h, th, sc.rvel, sc.tmp)
		for i := range sc.tmp {
			sc.scalarOp[i] += sc.tmp[i]
		}
		return sc
	}
	r.WeightedMass(h, sc.rho, 1/dt, sc.scalarOp)
	r.WeightedStiffness(h, sc.eta, th/s.Par.Re, sc.scalarOp)
	for a := 0; a < npe; a++ {
		for d := 0; d < dim; d++ {
			sc.rvel[a*dim+d] = sc.rho[a] * sc.velC[a*dim+d]
		}
	}
	r.Convection(h, sc.rvel, th, sc.scalarOp)
	return sc
}

// initNSKernels builds the NS matrix and RHS element kernels once,
// capturing only the Solver (see initCHKernels).
func (s *Solver) initNSKernels() {
	s.kNSMatZip = func(w, e int, h float64, blocks [][]float64) {
		sc := s.nsBuildScalar(w, e, h)
		dim := s.M.Dim
		for d := 0; d < dim; d++ {
			copy(blocks[d*dim+d], sc.scalarOp)
		}
	}
	s.kNSMat = func(w, e int, h float64, ke []float64) {
		sc := s.nsBuildScalar(w, e, h)
		dim := s.M.Dim
		npe := s.asmVel.Ref.NPE
		n := npe * dim
		for a := 0; a < npe; a++ {
			for b := 0; b < npe; b++ {
				v := sc.scalarOp[a*npe+b]
				for d := 0; d < dim; d++ {
					ke[(a*dim+d)*n+b*dim+d] = v
				}
			}
		}
	}
	s.kNSVec = func(w, e int, h float64, fe []float64) {
		m := s.M
		dim := m.Dim
		r := s.asmVel.Ref
		npe := r.NPE
		th, dt := s.Opt.Theta, s.Opt.Dt
		sc := &s.nsVec[w]
		m.GatherElem(e, s.PhiMu, 2, sc.pm)
		m.GatherElem(e, s.Vel, dim, sc.velC)
		m.GatherElem(e, s.P, 1, sc.pC)
		for a := 0; a < npe; a++ {
			sc.phiC[a] = sc.pm[a*2]
			sc.muC[a] = sc.pm[a*2+1]
			sc.rho[a] = s.Par.Density(sc.phiC[a])
			sc.eta[a] = s.Par.Viscosity(sc.phiC[a])
		}
		// Old-velocity terms: M_ρ vⁿ/dt - (1-θ)[C_ρ(vⁿ)+K_η/Re] vⁿ.
		for i := range sc.scalarOld {
			sc.scalarOld[i] = 0
		}
		r.WeightedMass(h, sc.rho, 1/dt, sc.scalarOld)
		for a := 0; a < npe; a++ {
			for d := 0; d < dim; d++ {
				sc.rvel[a*dim+d] = sc.rho[a] * sc.velC[a*dim+d]
			}
		}
		r.Convection(h, sc.rvel, -(1 - th), sc.scalarOld)
		for i := range sc.visc {
			sc.visc[i] = 0
		}
		r.WeightedStiffness(h, sc.eta, -(1-th)/s.Par.Re, sc.visc)
		for i := range sc.scalarOld {
			sc.scalarOld[i] += sc.visc[i]
		}
		for d := 0; d < dim; d++ {
			for a := 0; a < npe; a++ {
				sc.comp[a] = sc.velC[a*dim+d]
			}
			blas.Dgemv(npe, npe, 1, sc.scalarOld, sc.comp, 0, sc.tmp)
			for a := 0; a < npe; a++ {
				fe[a*dim+d] += sc.tmp[a]
			}
		}
		// Quadrature-point force terms.
		cn := s.ElemCn[e]
		stc := cn / s.Par.We
		jfc := (s.Par.RhoMinus - 1) / 2 * cn / s.Par.Pe
		vol := 1.0
		for d := 0; d < dim; d++ {
			vol *= h
		}
		for g := 0; g < r.NG; g++ {
			wg := r.W[g] * vol
			var gphi, gmu, jv [3]float64
			for d := 0; d < dim; d++ {
				gphi[d] = r.GradAtGauss(g, d, h, sc.phiC)
				gmu[d] = r.GradAtGauss(g, d, h, sc.muC)
			}
			phiG := r.AtGauss(g, sc.phiC)
			mobG := s.Par.Mobility(phiG)
			rhoG := s.Par.Density(phiG)
			for d := 0; d < dim; d++ {
				sc.pGrad[d] = r.GradAtGauss(g, d, h, sc.pC)
				jv[d] = jfc * mobG * gmu[d]
			}
			for a := 0; a < npe; a++ {
				na := r.N[g*npe+a]
				for d := 0; d < dim; d++ {
					f := 0.0
					// Capillary: +(Cn/We) ∇N·(∇φ φ_,d) (integrated by parts).
					for dd := 0; dd < dim; dd++ {
						f += stc * r.DN[(g*npe+a)*dim+dd] / h * gphi[d] * gphi[dd]
					}
					// Pressure gradient (old pressure, 1/We scaling as in
					// the non-dimensional momentum equation).
					f -= na * sc.pGrad[d] / s.Par.We
					// Gravity.
					if s.Par.Fr > 0 {
						f += na * rhoG * s.Par.GravityDir[d] / s.Par.Fr
					}
					// Mass-flux convection (explicit): -N (J·∇) v_d / Pe.
					var jdv float64
					for dd := 0; dd < dim; dd++ {
						comp2 := 0.0
						for a2 := 0; a2 < npe; a2++ {
							comp2 += r.DN[(g*npe+a2)*dim+dd] / h * sc.velC[a2*dim+d]
						}
						jdv += jv[dd] * comp2
					}
					f -= na * jdv
					fe[a*dim+d] += wg * f
				}
			}
		}
	}
}
