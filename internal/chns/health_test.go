package chns

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"proteus/internal/la"
	"proteus/internal/par"
)

// healthTestSolver builds a warm 2D solver (one clean step taken) on a
// uniform mesh.
func healthTestSolver(c *par.Comm) *Solver {
	m := uniformMesh(c, 2, 3)
	p := DefaultParams()
	p.Cn = 0.1
	p.Fr = 1
	s := NewSolver(m, p, DefaultOptions(1e-3))
	s.SetPhi(func(x, y, z float64) float64 {
		return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.45), p.Cn)
	})
	if err := s.InitMuFromPhi(); err != nil {
		panic(err)
	}
	if _, err := s.Step(); err != nil {
		panic(err)
	}
	return s
}

// TestFiniteScanDetects plants NaN and ±Inf at shard boundaries (first,
// middle, last owned entry) of each scanned field and checks the scan
// flags them — and, through checkFinite's global reduction, that every
// rank agrees even when only one holds the bad value.
func TestFiniteScanDetects(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		s := healthTestSolver(c)
		m := s.M
		fields := []struct {
			name string
			v    []float64
			n    int
		}{
			{"phimu", s.PhiMu, 2 * m.NumOwned},
			{"vel", s.Vel, 2 * m.NumOwned},
			{"p", s.P, m.NumOwned},
		}
		for _, f := range fields {
			if bad := s.scanBad(f.v, f.n); bad != 0 {
				panic(fmt.Sprintf("%s: clean field flagged (mask %x)", f.name, bad))
			}
			for _, idx := range []int{0, f.n / 2, f.n - 1} {
				for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
					old := f.v[idx]
					// Poison on rank 1 only: the verdict must still be
					// collective via the global reduction in checkFinite.
					if c.Rank() == 1 {
						f.v[idx] = poison
					}
					localBad := s.scanBad(f.v, f.n)
					if c.Rank() == 1 && localBad == 0 {
						panic(fmt.Sprintf("%s[%d] = %v not flagged locally", f.name, idx, poison))
					}
					err := s.checkFinite(StageCH, localBad, la.Result{})
					var div *ErrDiverged
					if !errors.As(err, &div) || div.Kind != DivergeNonFinite {
						panic(fmt.Sprintf("rank %d: %s[%d] = %v: got %v, want a nonfinite ErrDiverged",
							c.Rank(), f.name, idx, poison, err))
					}
					f.v[idx] = old
				}
			}
		}
	})
}

// TestFiniteScanZeroAlloc pins the clean-path cost of the health layer:
// the sharded scan plus its collective verdict allocate nothing per
// step once the solver is warm.
func TestFiniteScanZeroAlloc(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		s := healthTestSolver(c)
		m := s.M
		allocs := testing.AllocsPerRun(10, func() {
			bad := s.scanBad(s.PhiMu, 2*m.NumOwned) | s.scanBad(s.Vel, 2*m.NumOwned) | s.scanBad(s.P, m.NumOwned)
			if err := s.checkFinite(StageCH, bad, la.Result{}); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			panic(fmt.Sprintf("finite scan allocates %v per run, want 0", allocs))
		}
	})
}
