package chns

import (
	"math"
	"time"

	"proteus/internal/fault"
	"proteus/internal/fem"
	"proteus/internal/la"
)

// vuScratch is one element-loop worker's private velocity-update
// RHS-kernel scratch, hoisted on the Solver so the sharded vector
// assembly runs race-free with zero per-element allocation.
type vuScratch struct {
	pm, velC, psiC []float64
	comp, phiC     []float64
}

func newVUScratch(npe, dim int) vuScratch {
	return vuScratch{
		pm:   make([]float64, npe*2),
		velC: make([]float64, npe*dim),
		psiC: make([]float64, npe),
		comp: make([]float64, npe),
		phiC: make([]float64, npe),
	}
}

// StepVU corrects the tentative velocity to its solenoidal projection
// (Table II: cg + jacobi):
//
//	v^{n+1} = v* - dt (1/ρ) ∇ψ,   p^{n+1} = p^n + ψ
//
// realized weakly as a mass solve per component. With Opt.SplitVU the
// DIM-DOF solve is split into DIM single-DOF solves reusing one assembled
// mass matrix (the Sec. II-A memory/assembly optimization measured in
// Table I); otherwise a single block system of size N×DIM is assembled
// and solved, the baseline layout. In split mode the report's Result is
// the final component's solve with Iterations accumulated over all
// components.
func (s *Solver) StepVU(psi []float64) (StageReport, error) {
	t0 := time.Now()
	rep := StageReport{Stage: StageVU}
	m := s.M
	dim := m.Dim
	r := s.asmS.Ref
	m.GhostRead(psi, 1)
	m.GhostRead(s.PhiMu, 2)
	m.GhostRead(s.Vel, dim)
	// The prebuilt RHS kernels read ψ through this field (cleared before
	// returning so no stale reference pins the caller's buffer).
	s.kVUPsi = psi
	defer func() { s.kVUPsi = nil }()

	if s.Opt.SplitVU {
		// One scalar mass matrix, assembled once per mesh and reused for
		// every component and every step.
		tMat := time.Now()
		if s.vuMass == nil {
			s.vuMass = s.asmS.NewMatrix(s.Opt.Layout)
			if s.Opt.Layout == fem.LayoutZipped {
				s.asmS.AssembleMatrixZipped(s.vuMass, func(w, e int, h float64, blocks [][]float64) {
					r.MassGemm(s.asmS.WorkN(w), h, 1, nil, blocks[0])
				})
			} else {
				s.asmS.AssembleMatrix(s.vuMass, s.Opt.Layout, func(w, e int, h float64, ke []float64) {
					r.Mass(h, 1, ke)
				})
			}
			for i := 0; i < m.NumOwned; i++ {
				if m.OnBoundary(i) {
					s.vuMass.ZeroRow(i, 1)
				}
			}
			s.vuMassPC = la.NewPCJacobi(s.vuMass)
		}
		s.T.VU.Matrix += time.Since(tMat)
		if s.vuNewVel == nil {
			s.vuNewVel = m.NewVec(dim)
			s.vuComp = m.NewVec(1)
			s.vuRHS = m.NewVec(1)
		}
		newVel, comp, rhs := s.vuNewVel, s.vuComp, s.vuRHS
		// Persistent KSP: one warm CG workspace shared by all components,
		// re-pointed at the (possibly rebuilt) mass operator each step.
		if s.vuKSP == nil {
			s.vuKSP = &la.KSP{Type: la.CG, Rtol: s.Opt.LinTol, Atol: s.Opt.LinTol}
		}
		s.vuKSP.Op, s.vuKSP.PC, s.vuKSP.Red, s.vuKSP.Pool = s.vuMass, s.vuMassPC, m, s.pool
		itSum := 0
		for d := 0; d < dim; d++ {
			tVec := time.Now()
			s.kVUD = d
			s.asmS.AssembleVectorPlanned(rhs, s.kVUComp)
			for i := 0; i < m.NumOwned; i++ {
				if m.OnBoundary(i) {
					rhs[i] = 0
				}
			}
			s.T.VU.Vector += time.Since(tVec)
			tSolve := time.Now()
			if s.Opt.WarmStarts {
				// The tentative component is the natural initial guess for
				// its own mass-projection (same converged solution: the
				// tolerance is relative to the RHS).
				for i := range comp {
					comp[i] = s.Vel[i*dim+d]
				}
			} else {
				for i := range comp {
					comp[i] = 0
				}
			}
			res, err := s.vuKSP.Solve(rhs, comp)
			s.T.VU.Solve += time.Since(tSolve)
			s.T.VU.Record(res.Iterations)
			if s.postRemesh {
				s.T.RemeshStages.PostVUIters += res.Iterations
			}
			itSum += res.Iterations
			rep.Result = res
			rep.Result.Iterations = itSum
			if err != nil {
				s.T.VU.Total += time.Since(t0)
				return rep, err
			}
			if !res.Converged {
				s.T.VU.Total += time.Since(t0)
				return rep, &ErrDiverged{Stage: StageVU, Kind: DivergeKSP, Result: rep.Result}
			}
			for i := 0; i < m.NumOwned; i++ {
				newVel[i*dim+d] = comp[i]
			}
		}
		copy(s.Vel, newVel)
	} else {
		// Baseline: one N×DIM block mass system per step. This path exists
		// for the Table I baseline comparison, so it always uses the
		// node-major assembly (the zipped kernel is a stage-2 feature).
		// The operator persists across steps like the other stages.
		lay := s.Opt.Layout
		if lay == fem.LayoutZipped {
			lay = fem.LayoutBAIJ
		}
		tMat := time.Now()
		if s.vuBlockMat == nil {
			s.vuBlockMat = s.asmVel.NewMatrix(lay)
		} else {
			s.vuBlockMat.Zero()
		}
		mat := s.vuBlockMat
		s.asmVel.AssembleMatrix(mat, lay, s.kVUBlockMat)
		s.T.VU.Matrix += time.Since(tMat)
		tVec := time.Now()
		if s.vuBlockRHS == nil {
			s.vuBlockRHS = m.NewVec(dim)
		}
		rhs := s.vuBlockRHS
		s.asmVel.AssembleVectorPlanned(rhs, s.kVUBlockVec)
		s.T.VU.Vector += time.Since(tVec)
		for i := 0; i < m.NumOwned; i++ {
			if m.OnBoundary(i) {
				for d := 0; d < dim; d++ {
					mat.ZeroRow(i*dim+d, 1)
					rhs[i*dim+d] = 0
				}
			}
		}
		// Persistent KSP + Jacobi PC refreshed from the new values (the PC
		// is rebuilt with the operator after a remesh); setup timed apart
		// from the Krylov iteration.
		tPC := time.Now()
		if s.vuBlockPC == nil {
			s.vuBlockPC = la.NewPCJacobi(mat)
		} else {
			s.vuBlockPC.Refresh()
		}
		pcSetup := time.Since(tPC)
		s.T.VU.PCSetup += pcSetup
		if s.vuBlockKSP == nil {
			s.vuBlockKSP = &la.KSP{Type: la.CG, Rtol: s.Opt.LinTol, Atol: s.Opt.LinTol}
		}
		s.vuBlockKSP.AddPCSetup(pcSetup)
		s.vuBlockKSP.Op, s.vuBlockKSP.PC, s.vuBlockKSP.Red, s.vuBlockKSP.Pool = mat, s.vuBlockPC, m, s.pool
		tSolve := time.Now()
		res, err := s.vuBlockKSP.Solve(rhs, s.Vel)
		s.T.VU.Solve += time.Since(tSolve)
		s.T.VU.Record(res.Iterations)
		if s.postRemesh {
			s.T.RemeshStages.PostVUIters += res.Iterations
		}
		rep.Result = res
		if err != nil {
			s.T.VU.Total += time.Since(t0)
			return rep, err
		}
		if !res.Converged {
			s.T.VU.Total += time.Since(t0)
			return rep, &ErrDiverged{Stage: StageVU, Kind: DivergeKSP, Result: rep.Result}
		}
	}
	if s.Fault.Fire(fault.KSPDiverge, string(StageVU)) {
		rep.Result.Converged = false
		s.T.VU.Total += time.Since(t0)
		return rep, &ErrDiverged{Stage: StageVU, Kind: DivergeKSP, Result: rep.Result}
	}
	m.GhostRead(s.Vel, dim)
	// Pressure update: ψ is the kinematic increment; the momentum
	// equation carries ∇p/We, so the accumulated pressure absorbs We.
	for i := 0; i < m.NumLocal; i++ {
		s.P[i] += psi[i] * s.Par.We
	}
	// One fused finite check covers both stage outputs (velocity and the
	// updated pressure) with a single global reduction.
	s.pokeNaN(StageVU, s.Vel)
	bad := s.scanBad(s.Vel, dim*m.NumOwned) | s.scanBad(s.P, m.NumOwned)
	err := s.checkFinite(StageVU, bad, rep.Result)
	s.T.VU.Total += time.Since(t0)
	return rep, err
}

// DivergenceL2 returns the global L2 norm of ∇·v, the quantity the
// projection step drives down.
func (s *Solver) DivergenceL2() float64 {
	m := s.M
	dim := m.Dim
	r := s.asmS.Ref
	npe := r.NPE
	m.GhostRead(s.Vel, dim)
	velC := make([]float64, npe*dim)
	comp := make([]float64, npe)
	var acc float64
	for e := 0; e < m.NumElems(); e++ {
		h := s.M.ElemSize(e)
		m.GatherElem(e, s.Vel, dim, velC)
		vol := 1.0
		for d := 0; d < dim; d++ {
			vol *= h
		}
		for g := 0; g < r.NG; g++ {
			var div float64
			for d := 0; d < dim; d++ {
				for a := 0; a < npe; a++ {
					comp[a] = velC[a*dim+d]
				}
				div += r.GradAtGauss(g, d, h, comp)
			}
			acc += r.W[g] * vol * div * div
		}
	}
	return math.Sqrt(s.M.GlobalSum(acc))
}

// vuEmitComp accumulates the elemental RHS for velocity component d:
// ∫ N (v*_d - dt (1/ρ) ψ_,d), with worker w's private scratch. ψ reaches
// it through s.kVUPsi (set by StepVU for the assembly calls).
func (s *Solver) vuEmitComp(w, e int, h float64, d int, fe []float64, stride, off int) {
	m := s.M
	dim := m.Dim
	r := s.asmS.Ref
	npe := r.NPE
	sc := &s.vuVec[w]
	m.GatherElem(e, s.PhiMu, 2, sc.pm)
	m.GatherElem(e, s.Vel, dim, sc.velC)
	m.GatherElem(e, s.kVUPsi, 1, sc.psiC)
	vol := 1.0
	for dd := 0; dd < dim; dd++ {
		vol *= h
	}
	for a := 0; a < npe; a++ {
		sc.comp[a] = sc.velC[a*dim+d]
		sc.phiC[a] = sc.pm[a*2]
	}
	for g := 0; g < r.NG; g++ {
		wg := r.W[g] * vol
		vg := r.AtGauss(g, sc.comp)
		dpsi := r.GradAtGauss(g, d, h, sc.psiC)
		rhoG := s.Par.Density(r.AtGauss(g, sc.phiC))
		f := vg - s.Opt.Dt*dpsi/rhoG
		for a := 0; a < npe; a++ {
			fe[a*stride+off] += wg * f * r.N[g*npe+a]
		}
	}
}

// initVUKernels builds the velocity-update element kernels once,
// capturing only the Solver (see initCHKernels). The split-path
// component kernel reads its component index from s.kVUD.
func (s *Solver) initVUKernels() {
	s.kVUComp = func(w, e int, h float64, fe []float64) {
		s.vuEmitComp(w, e, h, s.kVUD, fe, 1, 0)
	}
	s.kVUBlockMat = func(w, e int, h float64, ke []float64) {
		r := s.asmS.Ref
		npe := r.NPE
		dim := s.M.Dim
		scalar := s.vuScr[w]
		for i := range scalar {
			scalar[i] = 0
		}
		r.Mass(h, 1, scalar)
		n := npe * dim
		for a := 0; a < npe; a++ {
			for b := 0; b < npe; b++ {
				for d := 0; d < dim; d++ {
					ke[(a*dim+d)*n+b*dim+d] = scalar[a*npe+b]
				}
			}
		}
	}
	s.kVUBlockVec = func(w, e int, h float64, fe []float64) {
		dim := s.M.Dim
		for d := 0; d < dim; d++ {
			s.vuEmitComp(w, e, h, d, fe, dim, d)
		}
	}
}
