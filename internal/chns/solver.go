package chns

import (
	"time"

	"proteus/internal/fault"
	"proteus/internal/fem"
	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/mg"
	"proteus/internal/par"
)

// StageTimes records per-stage wall-clock split into the Table I columns.
type StageTimes struct {
	Matrix, Vector, Solve, Total time.Duration
	// PCSetup is the preconditioner build/refresh share, kept out of Solve
	// so PC comparisons are not skewed by setup cost (ILU refactorization,
	// multigrid coefficient injection and coarse reassembly).
	PCSetup time.Duration
	// PCSetupCold is the cold-build sub-share of PCSetup: the from-scratch
	// PC constructions (first step of a mesh epoch). PCSetup - PCSetupCold
	// is the warm incremental-refresh share.
	PCSetupCold time.Duration
	Iterations  int
	// Solves counts the linear solves behind Iterations; ItMin/ItMax hold
	// the per-solve extremes, so min/mean/max iteration counts per stage
	// are reportable from accumulated timers alone.
	Solves int
	ItMin  int
	ItMax  int
}

// Record accumulates one linear solve's iteration count into the
// min/mean/max tracking.
func (t *StageTimes) Record(its int) {
	if t.Solves == 0 || its < t.ItMin {
		t.ItMin = its
	}
	if t.Solves == 0 || its > t.ItMax {
		t.ItMax = its
	}
	t.Iterations += its
	t.Solves++
}

// Timers accumulates stage timings across steps (Fig. 7 / Table I).
type Timers struct {
	CH, NS, PP, VU, Remesh StageTimes
	// RemeshStages splits Remesh.Total into the adaptation pipeline's
	// phases for the Fig. 7 / Table I "Remesh" accounting.
	RemeshStages RemeshTimes
}

// Add accumulates o into t.
func (t *StageTimes) Add(o StageTimes) {
	t.Matrix += o.Matrix
	t.Vector += o.Vector
	t.Solve += o.Solve
	t.Total += o.Total
	t.PCSetup += o.PCSetup
	t.PCSetupCold += o.PCSetupCold
	t.Iterations += o.Iterations
	if o.Solves > 0 {
		if t.Solves == 0 || o.ItMin < t.ItMin {
			t.ItMin = o.ItMin
		}
		if t.Solves == 0 || o.ItMax > t.ItMax {
			t.ItMax = o.ItMax
		}
		t.Solves += o.Solves
	}
}

// RemeshTimes splits the remesh wall-clock into pipeline stages: feature
// detection and target marking, multi-level refinement, consensus
// coarsening, 2:1 balancing, SFC repartitioning, distributed mesh
// (re)build, and field transfer.
type RemeshTimes struct {
	Detect, Refine, Coarsen, Balance, Partition, Build, Transfer time.Duration
	// Migrate is the exact key-addressed field migration onto the
	// partition-shifted old-mesh view (a sub-share of Transfer, reported
	// separately so the migrate-then-patch path's cost is visible).
	Migrate time.Duration
	// Rounds counts every executed adaptation round, including rounds
	// that left the mesh unchanged (those still pay the detect-through-
	// partition stages); PartitionOnly counts the rounds whose global
	// forest was unchanged but whose partition moved, so fields were
	// migrated exactly (no interpolation).
	Rounds, PartitionOnly int
	// Incremental-remesh telemetry: how often the ripple balance and the
	// mesh patch ran versus their from-scratch fallbacks, how much ripple
	// work the seeded balance did, and the global dirty fraction the
	// incremental/full decision was gated on (DirtyOctants out of
	// TotalOctants, accumulated over rounds that changed the forest).
	IncrBalance, FullBalance   int
	IncrBuild, FullBuild       int
	RippleRounds, RippleIters  int
	DirtyOctants, TotalOctants int64
	// MigrateBuild counts rounds built by the migrate-then-patch path
	// (splitters moved, dirty fraction under the threshold); the Full*
	// counters split FullBuild by the reason the round fell back to the
	// from-scratch build, so the fast path's engagement rate is
	// observable: FullBuild = FullPartitionOnly + FullDisabled +
	// FullDirtyFrac + FullSplitterMoved.
	MigrateBuild      int
	FullPartitionOnly int // pure repartition rounds (exact migration path)
	FullDisabled      int // DisableIncremental or a negative RemeshFullFrac
	FullDirtyFrac     int // global dirty fraction above RemeshFullFrac
	FullSplitterMoved int // splitters moved and migrate-then-patch disabled
	// Remesh-aware multigrid refresh telemetry: coarse ladder levels reused
	// verbatim / patched in place across hierarchy refreshes, and transfer
	// target rows whose element reference was carried through the remap vs
	// re-located by point location.
	MGLevelsReused  int
	MGLevelsPatched int
	MGRowsPatched   int
	MGRowsResolved  int
	// Preconditioner carry-over telemetry: owned ILU(0) rows whose
	// factorization index was carried across an incremental rebind vs
	// re-resolved from the patched sparsity (the values refactor either
	// way), summed over every stage and multigrid-level smoother.
	PCRowsKept    int
	PCRowsRebuilt int
	// Post-remesh solve telemetry: the first full step after each remesh,
	// with its per-stage Krylov iteration counts — what the warm-start path
	// is measured by.
	PostSteps   int
	PostCHIters int
	PostNSIters int
	PostPPIters int
	PostVUIters int
}

// Add accumulates o into t.
func (t *RemeshTimes) Add(o RemeshTimes) {
	t.Detect += o.Detect
	t.Refine += o.Refine
	t.Coarsen += o.Coarsen
	t.Balance += o.Balance
	t.Partition += o.Partition
	t.Build += o.Build
	t.Transfer += o.Transfer
	t.Migrate += o.Migrate
	t.Rounds += o.Rounds
	t.PartitionOnly += o.PartitionOnly
	t.IncrBalance += o.IncrBalance
	t.FullBalance += o.FullBalance
	t.IncrBuild += o.IncrBuild
	t.FullBuild += o.FullBuild
	t.RippleRounds += o.RippleRounds
	t.RippleIters += o.RippleIters
	t.DirtyOctants += o.DirtyOctants
	t.TotalOctants += o.TotalOctants
	t.MigrateBuild += o.MigrateBuild
	t.FullPartitionOnly += o.FullPartitionOnly
	t.FullDisabled += o.FullDisabled
	t.FullDirtyFrac += o.FullDirtyFrac
	t.FullSplitterMoved += o.FullSplitterMoved
	t.MGLevelsReused += o.MGLevelsReused
	t.MGLevelsPatched += o.MGLevelsPatched
	t.MGRowsPatched += o.MGRowsPatched
	t.MGRowsResolved += o.MGRowsResolved
	t.PCRowsKept += o.PCRowsKept
	t.PCRowsRebuilt += o.PCRowsRebuilt
	t.PostSteps += o.PostSteps
	t.PostCHIters += o.PostCHIters
	t.PostNSIters += o.PostNSIters
	t.PostPPIters += o.PostPPIters
	t.PostVUIters += o.PostVUIters
}

// Options configures the solver implementation choices being benchmarked.
type Options struct {
	// Layout selects the assembly path (Table I): LayoutAIJ (baseline),
	// LayoutBAIJ (stage 1) or LayoutZipped (stage 2).
	Layout fem.Layout
	// SplitVU solves the velocity update as DIM single-DOF systems
	// reusing one assembled mass matrix (stage 1+) instead of a single
	// DIM-DOF block system (baseline).
	SplitVU bool
	// Theta is the time-integration weight (0.5 = Crank-Nicolson).
	Theta float64
	// Dt is the time step.
	Dt float64
	// LinTol is the linear solver tolerance (paper: 1e-8).
	LinTol float64
	// NonlinTol is the Newton tolerance (paper: 1e-10).
	NonlinTol float64
	// VecWorkers pins the shard count of the planned RHS/residual vector
	// assemblies (0: match the matrix element loop; 1: the serial
	// ablation). Any value produces bitwise-identical results — the
	// vector plan gathers contributions in canonical order — so this is
	// purely a performance knob.
	VecWorkers int
	// PCNS / PCPP select the NS / PP preconditioner (Table II column):
	// "bjacobi" (default, rank-block ILU(0)), "jacobi", or "gmg" — the
	// octree geometric multigrid V-cycle of internal/mg, whose mesh
	// hierarchy is shared between the stages and rebuilt on remesh.
	PCNS string
	PCPP string
	// WarmStarts seeds the stage Krylov solves whose natural initial guess
	// is the previous solution: ψ keeps its last value across steps (and
	// rides the remesh field migration), and the split velocity-update
	// solves start from the tentative component instead of zero. The
	// convergence target is unchanged — the linear tolerances are relative
	// to the RHS norm, not the initial residual — so warm starts can only
	// reduce iteration counts, most visibly on the first step after a
	// remesh where the migrated fields are already near the solution.
	WarmStarts bool
}

// Stage preconditioner names accepted by Options.PCNS/PCPP and the -pc
// CLI flag.
const (
	PCBJacobi = "bjacobi"
	PCJacobi  = "jacobi"
	PCGMG     = "gmg"
)

// ValidPC reports whether name selects a known stage preconditioner (the
// empty string is the bjacobi default).
func ValidPC(name string) bool {
	switch name {
	case "", PCBJacobi, PCJacobi, PCGMG:
		return true
	}
	return false
}

// DefaultOptions mirrors the paper's production configuration (stage 2).
func DefaultOptions(dt float64) Options {
	return Options{Layout: fem.LayoutZipped, SplitVU: true, Theta: 0.5,
		Dt: dt, LinTol: 1e-8, NonlinTol: 1e-10}
}

// Solver advances the CHNS system on one (fixed) mesh. Remeshing swaps in
// a new Solver via core.Simulation; fields transfer across.
type Solver struct {
	M   *mesh.Mesh
	Par Params
	Opt Options

	// Fault is the optional deterministic fault injector (nil: inert).
	// It survives Rebind, so an injection schedule spans remeshes.
	Fault *fault.Injector

	// State: PhiMu is a 2-DOF vector (φ, μ per node); Vel is DIM-DOF;
	// P is the pressure.
	PhiMu []float64
	Vel   []float64
	P     []float64
	// ElemCn is the per-element Cahn number ("local Cahn"); initialized
	// to Par.Cn everywhere.
	ElemCn []float64

	T      Timers
	asmCH  *fem.Assembler
	asmVel *fem.Assembler
	asmS   *fem.Assembler // scalar

	// pool is the solver's persistent worker pool: the assemblers' element
	// loops, the SpMV of every persistent operator and the Krylov vector
	// kernels all shard across it.
	pool *par.Pool

	// Persistent operators: each stage allocates its matrix once (sharing
	// the frozen sparsity of its assembler's plan) and Zero()+reassembles
	// thereafter, so steady-state time stepping performs no sparsity
	// construction. Invalidated by SetMeshEpoch on remesh.
	chMat      *la.BSRMat
	nsMat      *la.BSRMat
	ppMat      *la.BSRMat
	vuBlockMat *la.BSRMat
	// Cached VU mass matrix (reused, not even reassembled, while the mesh
	// is unchanged).
	vuMass   *la.BSRMat
	vuMassPC *la.PCJacobi

	// Persistent solver-side state: per-stage KSP objects (each owning a
	// reusable Krylov workspace), preconditioners refreshed in place from
	// the re-assembled values, the CH Newton driver, and the per-step
	// vectors. A steady-state time step performs no solver-side
	// allocation at all. Dropped by SetMeshEpoch.
	chNewton   *la.Newton
	chPC       *la.PCBJacobiILU0
	chProb     chProblem
	chOld      []float64
	chMassMat  *la.BSRMat
	chMassKSP  *la.KSP
	chMassPC   *la.PCJacobi
	nsKSP      *la.KSP
	nsPC       la.PC
	nsRHS      []float64
	ppKSP      *la.KSP
	ppPC       la.PC
	ppRHS      []float64
	ppPsi      []float64
	vuKSP      *la.KSP
	vuRHS      []float64
	vuComp     []float64
	vuNewVel   []float64
	vuBlockKSP *la.KSP
	vuBlockPC  *la.PCJacobi
	vuBlockRHS []float64

	// mgH is the geometric multigrid mesh hierarchy shared by every
	// GMG-preconditioned stage (built lazily on the first gmg stage of a
	// mesh epoch, dropped with the other mesh-keyed state on remesh).
	mgH *mg.Hierarchy
	// mgPrev holds the previous epoch's ladder across an incremental
	// rebind so ensureHierarchy can refresh it (reusing unchanged coarse
	// levels) instead of rebuilding from scratch. Full rebinds clear it.
	mgPrev *mg.Hierarchy
	// MGLevelsReused accumulates how many coarse ladder levels hierarchy
	// refreshes reused (telemetry).
	MGLevelsReused int
	// mgInfo is the per-level outcome of the last hierarchy refresh: what
	// PCGMG.Rebind needs to carry per-level assemblers and smoothers
	// across an incremental remesh. Valid alongside mgH.
	mgInfo *mg.RefreshResult
	// mgWS is the hierarchy build/refresh scratch, reused across refreshes.
	mgWS mg.Workspace

	// Incremental PC carry-over state, set by RebindPatched and consumed by
	// the first post-remesh setup of each stage preconditioner: the
	// composed mesh delta, the old mesh's owned-node count, the lazily
	// expanded per-ndof scalar row patches, and the per-stage "patch me
	// instead of refreshing" flags.
	pcDelta    *mesh.Delta
	pcOldOwned int
	pcPatches  map[int]*la.RowPatch
	chPCStale  bool
	nsPCStale  bool
	ppPCStale  bool

	// postRemesh marks the first full step after a rebind so the
	// RemeshTimes Post* iteration telemetry can single it out; cleared at
	// the end of Step/StepCHWithVelocity.
	postRemesh bool

	// Per-worker kernel scratch for the sharded element loops: matrix
	// kernels and vector/residual kernels each keep one private copy per
	// shard, so no stage kernel allocates per element or shares mutable
	// buffers across workers.
	chRes []*chResScratch
	chScr []chScratch
	nsScr []nsScratch
	nsVec []nsVecScratch
	ppScr []ppScratch
	vuScr [][]float64 // baseline block-VU scalar mass per worker
	vuVec []vuScratch

	// lumpOnes is the constant all-ones element vector of the lumped-mass
	// kernel (hoisted out of the per-element callback).
	lumpOnes []float64

	// Finite-scan state: the prebuilt sharded NaN/Inf scan closure, its
	// per-worker flag slots (stride-padded against false sharing) and the
	// one-element reduction buffer — all hoisted so the post-stage scan
	// of every step allocates nothing.
	finVec []float64
	finN   int
	finBad []uint64
	finRun func(w int)
	finRed [1]float64

	// Hoisted per-step assembly kernels: each stage's element-loop
	// closures are built once here (capturing only the Solver and reading
	// the mesh, assembler and options through it at call time), so a warm
	// step creates no closures at all — the whole-step zero-allocation
	// discipline. Per-step inputs flow through the k* argument fields
	// below, set immediately before the assembly call that reads them.
	kCHRes      func(w, e int, h float64, fe []float64)
	kCHJacZip   func(w, e int, h float64, blocks [][]float64)
	kCHJac      func(w, e int, h float64, ke []float64)
	kNSMatZip   func(w, e int, h float64, blocks [][]float64)
	kNSMat      func(w, e int, h float64, ke []float64)
	kNSVec      func(w, e int, h float64, fe []float64)
	kPPMatZip   func(w, e int, h float64, blocks [][]float64)
	kPPMat      func(w, e int, h float64, ke []float64)
	kPPVec      func(w, e int, h float64, fe []float64)
	kVUComp     func(w, e int, h float64, fe []float64)
	kVUBlockMat func(w, e int, h float64, ke []float64)
	kVUBlockVec func(w, e int, h float64, fe []float64)
	kCHx        []float64 // Newton iterate (CH residual/Jacobian kernels)
	kVUPsi      []float64 // pressure increment (VU RHS kernels)
	kVUD        int       // velocity component (split-VU RHS kernel)

	meshEpoch uint64
}

// NewSolver allocates state on the mesh.
func NewSolver(m *mesh.Mesh, prm Params, opt Options) *Solver {
	s := &Solver{M: m, Par: prm, Opt: opt}
	s.PhiMu = m.NewVec(2)
	s.Vel = m.NewVec(m.Dim)
	s.P = m.NewVec(1)
	s.ElemCn = make([]float64, m.NumElems())
	for i := range s.ElemCn {
		s.ElemCn[i] = prm.Cn
	}
	s.asmCH = fem.NewAssembler(m, 2)
	s.asmVel = fem.NewAssembler(m, m.Dim)
	s.asmS = fem.NewAssembler(m, 1)
	// One worker pool for the whole solver: assembly shards, SpMV and the
	// Krylov vector kernels all run on it.
	s.pool = par.NewPool(s.asmCH.Workers())
	s.asmCH.SetPool(s.pool)
	s.asmVel.SetPool(s.pool)
	s.asmS.SetPool(s.pool)
	if opt.VecWorkers > 0 {
		s.asmCH.SetVecWorkers(opt.VecWorkers)
		s.asmVel.SetVecWorkers(opt.VecWorkers)
		s.asmS.SetVecWorkers(opt.VecWorkers)
	}
	s.initScratch()
	s.initFiniteScan()
	s.initCHKernels()
	s.initNSKernels()
	s.initPPKernels()
	s.initVUKernels()
	return s
}

// Close releases the solver's worker pool. Called when the solver is
// replaced (remesh); an unclosed pool is reclaimed when the solver
// becomes unreachable.
func (s *Solver) Close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// initScratch sizes the per-worker kernel scratch pools to the element
// loop shard counts of the stage assemblers.
func (s *Solver) initScratch() {
	npe := s.asmCH.Ref.NPE
	ng := s.asmCH.Ref.NG
	dim := s.M.Dim
	// Each scratch pool is sized for the assembler(s) whose shards index
	// it, max'd with Opt.VecWorkers: an explicit vector shard count can
	// push past the matrix worker count.
	nw := func(asms ...*fem.Assembler) int {
		n := s.Opt.VecWorkers
		for _, a := range asms {
			if w := a.Workers(); w > n {
				n = w
			}
		}
		return n
	}
	s.chRes = make([]*chResScratch, nw(s.asmCH))
	for i := range s.chRes {
		s.chRes[i] = newCHResScratch(npe, ng, dim)
	}
	s.chScr = make([]chScratch, s.asmCH.Workers())
	for i := range s.chScr {
		s.chScr[i] = newCHScratch(npe, ng, dim)
	}
	s.nsScr = make([]nsScratch, s.asmVel.Workers())
	for i := range s.nsScr {
		s.nsScr[i] = newNSScratch(npe, ng, dim)
	}
	s.nsVec = make([]nsVecScratch, nw(s.asmVel))
	for i := range s.nsVec {
		s.nsVec[i] = newNSVecScratch(npe, dim)
	}
	s.ppScr = make([]ppScratch, nw(s.asmS))
	for i := range s.ppScr {
		s.ppScr[i] = newPPScratch(npe, ng, dim)
	}
	s.vuScr = make([][]float64, s.asmVel.Workers())
	for i := range s.vuScr {
		s.vuScr[i] = make([]float64, npe*npe)
	}
	s.vuVec = make([]vuScratch, nw(s.asmS, s.asmVel))
	for i := range s.vuVec {
		s.vuVec[i] = newVUScratch(npe, dim)
	}
	s.lumpOnes = make([]float64, npe)
	for i := range s.lumpOnes {
		s.lumpOnes[i] = 1
	}
}

// SetMeshEpoch declares the mesh generation this solver runs on. A change
// (core increments its counter on every remesh) drops the persistent
// operators and every cached assembly plan, forcing the next assembly of
// each stage through the cold sparsity-building path.
func (s *Solver) SetMeshEpoch(e uint64) {
	if e == s.meshEpoch {
		return
	}
	s.meshEpoch = e
	s.asmCH.SetEpoch(e)
	s.asmVel.SetEpoch(e)
	s.asmS.SetEpoch(e)
	s.chMat, s.nsMat, s.ppMat, s.vuBlockMat = nil, nil, nil, nil
	s.vuMass, s.vuMassPC = nil, nil
	// Drop every per-stage solver object keyed to the old operators: the
	// next step recreates them against the new-mesh matrices.
	s.chNewton, s.chPC, s.chOld = nil, nil, nil
	s.chMassMat, s.chMassKSP, s.chMassPC = nil, nil, nil
	s.nsKSP, s.nsPC, s.nsRHS = nil, nil, nil
	s.ppKSP, s.ppPC, s.ppRHS, s.ppPsi = nil, nil, nil, nil
	s.vuKSP, s.vuRHS, s.vuComp, s.vuNewVel = nil, nil, nil, nil
	s.vuBlockKSP, s.vuBlockPC, s.vuBlockRHS = nil, nil, nil
	// The multigrid ladder is keyed to the old forest: coarse meshes,
	// transfers and operators must all rebuild from the new one.
	s.mgH, s.mgPrev, s.mgInfo = nil, nil, nil
	s.clearPCCarry()
	s.postRemesh = true
}

// clearPCCarry drops the incremental PC carry-over state: the next setup
// of every stage preconditioner goes through the cold path.
func (s *Solver) clearPCCarry() {
	s.pcDelta, s.pcPatches = nil, nil
	s.pcOldOwned = 0
	s.chPCStale, s.nsPCStale, s.ppPCStale = false, false, false
}

// MeshEpoch returns the solver's current mesh epoch.
func (s *Solver) MeshEpoch() uint64 { return s.meshEpoch }

// Rebind moves the solver to a freshly built mesh (the remesh swap path),
// preserving everything that survives a mesh change: the worker pool, the
// assemblers' reference element and per-worker scratch, the per-stage KSP
// objects (whose Krylov workspaces resize in place on the next Solve) and
// the Newton driver. Mesh-keyed state — operators, preconditioners,
// assembly plans, per-step vectors — is dropped and rebuilt lazily on the
// next step, exactly as the epoch bump demands: sparsity and plans are
// invalidated, storage that can persist does. State vectors (PhiMu, Vel,
// P, ElemCn) are reallocated at the new sizes and left for the caller to
// fill by transfer/migration; ElemCn starts at the uniform Cahn number.
func (s *Solver) Rebind(m *mesh.Mesh, epoch uint64) {
	s.M = m
	s.PhiMu = m.NewVec(2)
	s.Vel = m.NewVec(m.Dim)
	s.P = m.NewVec(1)
	s.ElemCn = make([]float64, m.NumElems())
	for i := range s.ElemCn {
		s.ElemCn[i] = s.Par.Cn
	}
	s.asmCH.Rebind(m)
	s.asmVel.Rebind(m)
	s.asmS.Rebind(m)
	s.meshEpoch = epoch
	s.asmCH.SetEpoch(epoch)
	s.asmVel.SetEpoch(epoch)
	s.asmS.SetEpoch(epoch)
	// Mesh-keyed operators, preconditioners and per-step vectors go; the
	// KSP/Newton objects and the pool stay.
	s.chMat, s.nsMat, s.ppMat, s.vuBlockMat = nil, nil, nil, nil
	s.vuMass, s.vuMassPC = nil, nil
	s.chMassMat, s.chMassPC = nil, nil
	s.chPC, s.nsPC, s.ppPC, s.vuBlockPC = nil, nil, nil, nil
	s.chOld = nil
	s.nsRHS = nil
	s.ppRHS, s.ppPsi = nil, nil
	s.vuRHS, s.vuComp, s.vuNewVel, s.vuBlockRHS = nil, nil, nil, nil
	// Stale coarse operators must never survive a Rebind: the hierarchy
	// is rebuilt from the new mesh on the next GMG-preconditioned stage.
	s.mgH, s.mgPrev, s.mgInfo = nil, nil, nil
	s.clearPCCarry()
	s.postRemesh = true
}

// RebindPatched moves the solver to an incrementally patched mesh
// (mesh.Patch). It drops the per-step vectors and operator values Rebind
// drops, but repairs what the mesh delta proves survived: each stage
// assembler's frozen sparsity and assembly plans are patched in place of
// cold rebuilds (fem.RebindPatched); the stage ILU(0)/Jacobi
// preconditioners are kept and flagged so their first post-remesh setup
// carries the factorization index of every pattern-preserved row instead
// of rebuilding it (la.RowPatch); and the previous multigrid ladder is
// kept aside so the next GMG-preconditioned stage refreshes it, reusing
// unchanged coarse levels and rebinding the stage PCGMGs in place. Every
// repaired object is bitwise identical to what the full Rebind path would
// produce, so the two paths yield identical runs. Collective.
func (s *Solver) RebindPatched(m *mesh.Mesh, epoch uint64, d *mesh.Delta) {
	// A second incremental rebind before any stage consumed the first has
	// no composed delta at this level: degrade the PC carry-over to the
	// cold path. The hierarchy refresh still works off the kept previous
	// ladder, just without the fine-level transfer patch.
	stacked := s.chPCStale || s.nsPCStale || s.ppPCStale
	oldOwned := s.M.NumOwned
	s.M = m
	s.PhiMu = m.NewVec(2)
	s.Vel = m.NewVec(m.Dim)
	s.P = m.NewVec(1)
	s.ElemCn = make([]float64, m.NumElems())
	for i := range s.ElemCn {
		s.ElemCn[i] = s.Par.Cn
	}
	s.meshEpoch = epoch
	s.asmCH.RebindPatched(m, epoch, d)
	s.asmVel.RebindPatched(m, epoch, d)
	s.asmS.RebindPatched(m, epoch, d)
	s.chMat, s.nsMat, s.ppMat, s.vuBlockMat = nil, nil, nil, nil
	s.vuMass, s.vuMassPC = nil, nil
	s.chMassMat, s.chMassPC = nil, nil
	s.vuBlockPC = nil
	if d != nil && !stacked {
		s.pcDelta, s.pcOldOwned, s.pcPatches = d, oldOwned, nil
		s.chPCStale = s.chPC != nil
		s.nsPCStale = s.nsPC != nil
		s.ppPCStale = s.ppPC != nil
	} else {
		s.clearPCCarry()
		s.chPC, s.nsPC, s.ppPC = nil, nil, nil
	}
	s.chOld = nil
	s.nsRHS = nil
	s.ppRHS, s.ppPsi = nil, nil
	s.vuRHS, s.vuComp, s.vuNewVel, s.vuBlockRHS = nil, nil, nil, nil
	if s.mgH != nil {
		s.mgPrev = s.mgH
	}
	s.mgH, s.mgInfo = nil, nil
	s.postRemesh = true
}

// rowPatch returns the owned scalar-row patch of an nd-dof-per-node
// operator under the pending incremental rebind (nil when none is
// pending), expanding and caching it per ndof on first use.
func (s *Solver) rowPatch(nd int) *la.RowPatch {
	if s.pcDelta == nil {
		return nil
	}
	if s.pcPatches == nil {
		s.pcPatches = make(map[int]*la.RowPatch)
	}
	if p, ok := s.pcPatches[nd]; ok {
		return p
	}
	p := mg.NodeRowPatch(s.pcDelta, s.pcOldOwned, s.M.NumOwned, nd)
	s.pcPatches[nd] = p
	return p
}

// PsiState returns the solver's persistent pressure-increment buffer ψ
// (nil before the first PP solve, dropped by the rebinds): what a remesh
// transfers onto the new mesh when warm starts are on, so the first
// post-remesh PP solve starts from the migrated previous increment.
func (s *Solver) PsiState() []float64 { return s.ppPsi }

// SetPsiState installs a transferred ψ buffer on the current mesh (length
// NumLocal scalars); the next warm-started PP solve seeds from it.
func (s *Solver) SetPsiState(p []float64) { s.ppPsi = p }

// SetPhi initializes φ from a point function and sets μ consistently to 0.
func (s *Solver) SetPhi(f func(x, y, z float64) float64) {
	for i := 0; i < s.M.NumLocal; i++ {
		x, y, z := s.M.NodeCoord(i)
		s.PhiMu[i*2] = f(x, y, z)
		s.PhiMu[i*2+1] = 0
	}
}

// SetVelocity initializes the velocity from a point function.
func (s *Solver) SetVelocity(f func(x, y, z float64) (vx, vy, vz float64)) {
	d := s.M.Dim
	for i := 0; i < s.M.NumLocal; i++ {
		x, y, z := s.M.NodeCoord(i)
		vx, vy, vz := f(x, y, z)
		s.Vel[i*d] = vx
		s.Vel[i*d+1] = vy
		if d == 3 {
			s.Vel[i*d+2] = vz
		}
	}
}

// Phi returns φ at local node i.
func (s *Solver) Phi(i int) float64 { return s.PhiMu[2*i] }

// PhiMass returns the global integral of φ (a conserved quantity of the
// CH equation with no-flux boundaries), evaluated with the lumped mass.
func (s *Solver) PhiMass() float64 {
	lump := s.lumpedMass()
	var sum float64
	for i := 0; i < s.M.NumOwned; i++ {
		sum += lump[i] * s.PhiMu[2*i]
	}
	return s.M.GlobalSum(sum)
}

// lumpedMass returns the nodal lumped mass vector (owned+ghost).
func (s *Solver) lumpedMass() []float64 {
	v := s.M.NewVec(1)
	s.asmS.AssembleVectorPlanned(v, func(w, e int, h float64, fe []float64) {
		s.asmS.Ref.LoadVector(h, s.lumpOnes, 1, fe)
	})
	return v
}

// Step advances one full time block: CH, NS, PP, VU (Sec. II-A). The
// report carries every stage's linear/Newton outcome; on failure the
// error is a *ErrDiverged naming the stage and failure kind, the
// remaining stages are skipped, and the state fields hold the partial
// (possibly corrupt) step — the caller owns rollback (core.RunUntil
// snapshots before each step and restores on error). The verdict is
// globally consistent: every rank returns the same error or none.
func (s *Solver) Step() (StepReport, error) {
	var rep StepReport
	var err error
	if rep.CH, err = s.StepCH(nil); err != nil {
		return rep, err
	}
	if rep.NS, err = s.StepNS(); err != nil {
		return rep, err
	}
	psi, ppRep, err := s.StepPP()
	rep.PP = ppRep
	if err != nil {
		return rep, err
	}
	rep.VU, err = s.StepVU(psi)
	if err == nil && s.postRemesh {
		s.T.RemeshStages.PostSteps++
		s.postRemesh = false
	}
	return rep, err
}

// StepCHWithVelocity advances only the Cahn–Hilliard block using a
// prescribed analytic velocity (the swirling-flow validation mode of
// Fig. 5). The velocity field is sampled at nodes each call. Only the
// CH entry of the report is populated.
func (s *Solver) StepCHWithVelocity(f func(x, y, z float64) (vx, vy, vz float64)) (StepReport, error) {
	var rep StepReport
	var err error
	s.SetVelocity(f)
	rep.CH, err = s.StepCH(nil)
	if err == nil && s.postRemesh {
		s.T.RemeshStages.PostSteps++
		s.postRemesh = false
	}
	return rep, err
}
