package chns

import (
	"time"

	"proteus/internal/blas"
	"proteus/internal/fault"
	"proteus/internal/fem"
	"proteus/internal/la"
)

// chOps holds the elemental operator blocks the CH residual and Jacobian
// are combined from (all NPE x NPE scalar blocks), plus the nodal/Gauss
// coefficient scratch used to build them, so the element loop allocates
// nothing.
type chOps struct {
	Me  []float64 // mass
	Ke  []float64 // stiffness
	Kme []float64 // mobility-weighted stiffness
	Ce  []float64 // convection with the current velocity
	Mpp []float64 // ψ''(φ)-weighted mass

	mob, psi2  []float64 // nodal mobility and ψ''
	mobG, psiG []float64 // the same at Gauss points
}

func newCHOps(npe, ng int) *chOps {
	n := npe * npe
	return &chOps{
		Me: make([]float64, n), Ke: make([]float64, n),
		Kme: make([]float64, n), Ce: make([]float64, n),
		Mpp: make([]float64, n),
		mob: make([]float64, npe), psi2: make([]float64, npe),
		mobG: make([]float64, ng), psiG: make([]float64, ng),
	}
}

// chScratch is one element-loop worker's private CH Jacobian scratch.
type chScratch struct {
	ops     *chOps
	pm      []float64   // φ,μ corner values
	vel     []float64   // velocity corner values
	jblocks [][]float64 // dof-pair blocks for the node-major Jacobian path
}

// chResScratch is one element-loop worker's private CH residual scratch,
// held on the Solver (one per shard) so the sharded Residual allocates
// nothing per Newton iteration and never shares mutable buffers.
type chResScratch struct {
	ops                          *chOps
	pm, pmOld, vel               []float64
	phiNew, muNew, phiOld, muOld []float64
	psi1, tmp, load              []float64
}

func newCHResScratch(npe, ng, dim int) *chResScratch {
	return &chResScratch{
		ops: newCHOps(npe, ng),
		pm:  make([]float64, npe*2), pmOld: make([]float64, npe*2),
		vel:    make([]float64, npe*dim),
		phiNew: make([]float64, npe), muNew: make([]float64, npe),
		phiOld: make([]float64, npe), muOld: make([]float64, npe),
		psi1: make([]float64, npe), tmp: make([]float64, npe),
		load: make([]float64, npe),
	}
}

func newCHScratch(npe, ng, dim int) chScratch {
	sc := chScratch{
		ops: newCHOps(npe, ng),
		pm:  make([]float64, npe*2),
		vel: make([]float64, npe*dim),
	}
	sc.jblocks = make([][]float64, 4)
	for i := range sc.jblocks {
		sc.jblocks[i] = make([]float64, npe*npe)
	}
	return sc
}

func (o *chOps) zero() {
	for _, b := range [][]float64{o.Me, o.Ke, o.Kme, o.Ce, o.Mpp} {
		for i := range b {
			b[i] = 0
		}
	}
}

// chProblem is the Newton problem for the fully implicit CH block.
type chProblem struct {
	s     *Solver
	old   []float64 // φ,μ at time n (ghost-consistent copy)
	dt    float64
	theta float64
}

// buildOps assembles the elemental blocks for element e, with the
// mobility and ψ” coefficients evaluated at the corner values phiC.
// Uses the explicit-loop operators or the zipped GEMM operators depending
// on the configured layout (Table I stage 2). wk is the invoking worker's
// GEMM scratch, so concurrent shards never share buffers.
func (p *chProblem) buildOps(e int, h float64, phiC, velC []float64, ops *chOps, wk *fem.GemmWork) {
	s := p.s
	r := s.asmCH.Ref
	npe := r.NPE
	ops.zero()
	for a := 0; a < npe; a++ {
		ops.mob[a] = s.Par.Mobility(phiC[a*2])
		ops.psi2[a] = PsiDoublePrime(phiC[a*2])
	}
	if s.Opt.Layout == fem.LayoutZipped {
		r.CoefAtGauss(ops.mob, ops.mobG)
		r.CoefAtGauss(ops.psi2, ops.psiG)
		r.MassGemm(wk, h, 1, nil, ops.Me)
		r.StiffGemm(wk, h, 1, nil, ops.Ke)
		r.StiffGemm(wk, h, 1, ops.mobG, ops.Kme)
		r.ConvGemm(wk, h, 1, velC, ops.Ce)
		r.MassGemm(wk, h, 1, ops.psiG, ops.Mpp)
		return
	}
	r.Mass(h, 1, ops.Me)
	r.Stiffness(h, 1, ops.Ke)
	r.WeightedStiffness(h, ops.mob, 1, ops.Kme)
	r.Convection(h, velC, 1, ops.Ce)
	r.WeightedMass(h, ops.psi2, 1, ops.Mpp)
}

// gatherCorners extracts φ,μ and velocity corner values for element e.
func (p *chProblem) gatherCorners(e int, x []float64, pm, vel []float64) {
	p.s.M.GatherElem(e, x, 2, pm)
	p.s.M.GatherElem(e, p.s.Vel, p.s.M.Dim, vel)
}

// Residual implements la.NewtonProblem. The element kernel is the
// prebuilt s.kCHRes; the iterate reaches it through s.kCHx.
func (p *chProblem) Residual(x, res []float64) {
	s := p.s
	t0 := time.Now()
	s.M.GhostRead(x, 2)
	s.kCHx = x
	s.asmCH.AssembleVectorPlanned(res, s.kCHRes)
	s.T.CH.Vector += time.Since(t0)
}

// initCHKernels builds the CH residual and Jacobian element kernels once.
// They capture only the Solver: mesh, reference element, options and the
// Newton iterate are all read through it at call time, so the kernels
// survive a Rebind and warm steps allocate nothing.
func (s *Solver) initCHKernels() {
	s.kCHRes = func(w, e int, h float64, fe []float64) {
		p := &s.chProb
		m := s.M
		r := s.asmCH.Ref
		npe := r.NPE
		sc := s.chRes[w]
		ops := sc.ops
		p.gatherCorners(e, s.kCHx, sc.pm, sc.vel)
		m.GatherElem(e, p.old, 2, sc.pmOld)
		for a := 0; a < npe; a++ {
			sc.phiNew[a] = sc.pm[a*2]
			sc.muNew[a] = sc.pm[a*2+1]
			sc.phiOld[a] = sc.pmOld[a*2]
			sc.muOld[a] = sc.pmOld[a*2+1]
			sc.psi1[a] = PsiPrime(sc.phiNew[a])
		}
		p.buildOps(e, h, sc.pm, sc.vel, ops, s.asmCH.WorkN(w))
		cn := s.ElemCn[e]
		diff := 1 / (s.Par.Pe * cn)
		th, th1 := p.theta, 1-p.theta
		// R_phi = M(phi-phiOld)/dt + th[C phi + D Km mu]
		//       + (1-th)[C phiOld + D Km muOld]
		addMatVec(fe, 0, 2, ops.Me, sc.phiNew, 1/p.dt, sc.tmp, npe)
		addMatVec(fe, 0, 2, ops.Me, sc.phiOld, -1/p.dt, sc.tmp, npe)
		addMatVec(fe, 0, 2, ops.Ce, sc.phiNew, th, sc.tmp, npe)
		addMatVec(fe, 0, 2, ops.Kme, sc.muNew, th*diff, sc.tmp, npe)
		addMatVec(fe, 0, 2, ops.Ce, sc.phiOld, th1, sc.tmp, npe)
		addMatVec(fe, 0, 2, ops.Kme, sc.muOld, th1*diff, sc.tmp, npe)
		// R_mu = M mu - F(psi'(phi)) - Cn^2 K phi
		addMatVec(fe, 1, 2, ops.Me, sc.muNew, 1, sc.tmp, npe)
		for i := range sc.load {
			sc.load[i] = 0
		}
		r.LoadVector(h, sc.psi1, 1, sc.load)
		for a := 0; a < npe; a++ {
			fe[a*2+1] -= sc.load[a]
		}
		addMatVec(fe, 1, 2, ops.Ke, sc.phiNew, -cn*cn, sc.tmp, npe)
	}
	s.kCHJacZip = func(w, e int, h float64, blocks [][]float64) {
		p := &s.chProb
		m := s.M
		sc := &s.chScr[w]
		m.GatherElem(e, s.kCHx, 2, sc.pm)
		m.GatherElem(e, s.Vel, m.Dim, sc.vel)
		p.buildOps(e, h, sc.pm, sc.vel, sc.ops, s.asmCH.WorkN(w))
		ops := sc.ops
		cn := s.ElemCn[e]
		diff := 1 / (s.Par.Pe * cn)
		th := p.theta
		npe := s.asmCH.Ref.NPE
		n2 := npe * npe
		for i := 0; i < n2; i++ {
			blocks[0][i] = ops.Me[i]/p.dt + th*ops.Ce[i]
			blocks[1][i] = th * diff * ops.Kme[i]
			blocks[2][i] = -ops.Mpp[i] - cn*cn*ops.Ke[i]
			blocks[3][i] = ops.Me[i]
		}
	}
	s.kCHJac = func(w, e int, h float64, ke []float64) {
		sc := &s.chScr[w]
		s.kCHJacZip(w, e, h, sc.jblocks)
		fem.UnzipMat(2, s.asmCH.Ref.NPE, sc.jblocks, ke)
	}
}

// addMatVec computes fe[a*ndof+dof] += scale * (A * v)_a with A npe x npe.
func addMatVec(fe []float64, dof, ndof int, a, v []float64, scale float64, tmp []float64, npe int) {
	blas.Dgemv(npe, npe, scale, a, v, 0, tmp)
	for i := 0; i < npe; i++ {
		fe[i*ndof+dof] += tmp[i]
	}
}

// Jacobian implements la.NewtonProblem: blocks
//
//	J(φ,φ) = M/dt + θC        J(φ,μ) = θ/(Pe Cn) K_m
//	J(μ,φ) = -M_{ψ''} - Cn²K  J(μ,μ) = M
func (p *chProblem) Jacobian(x []float64) (la.Operator, la.PC) {
	s := p.s
	t0 := time.Now()
	s.M.GhostRead(x, 2)
	// Persistent operator: allocated once per mesh, Zero()+reassembled on
	// every Newton iteration and time step thereafter (warm plan path).
	if s.chMat == nil {
		s.chMat = s.asmCH.NewMatrix(s.Opt.Layout)
	} else {
		s.chMat.Zero()
	}
	mat := s.chMat
	s.kCHx = x
	if s.Opt.Layout == fem.LayoutZipped {
		s.asmCH.AssembleMatrixZipped(mat, s.kCHJacZip)
	} else {
		s.asmCH.AssembleMatrix(mat, s.Opt.Layout, s.kCHJac)
	}
	s.T.CH.Matrix += time.Since(t0)
	// The preconditioner persists with the operator: refactored in place
	// from the re-assembled values on every Newton iteration. Setup is
	// tracked apart from the Krylov solve time.
	tPC := time.Now()
	switch {
	case s.chPC == nil:
		s.chPC = la.NewPCBJacobiILU0(mat)
		s.T.CH.PCSetupCold += time.Since(tPC)
	case s.chPCStale:
		// First setup after an incremental rebind: carry the factorization
		// index of every pattern-preserved row, refactor values only.
		kept, rebuilt := s.chPC.RebindPatched(mat, s.rowPatch(2))
		s.T.RemeshStages.PCRowsKept += kept
		s.T.RemeshStages.PCRowsRebuilt += rebuilt
		s.chPCStale = false
	default:
		s.chPC.Refresh()
	}
	s.T.CH.PCSetup += time.Since(tPC)
	return mat, s.chPC
}

// StepCH advances the Cahn–Hilliard block one time step with the current
// velocity field (Table II: bcgs + bjacobi inside Newton). If velOverride
// is non-nil it replaces s.Vel for this step. The report carries the
// Newton outcome; a stalled Newton iteration, an injected divergence or
// a non-finite φ/μ field returns a *ErrDiverged (globally consistent
// across ranks).
func (s *Solver) StepCH(velOverride []float64) (StageReport, error) {
	t0 := time.Now()
	if velOverride != nil {
		copy(s.Vel, velOverride)
	}
	m := s.M
	m.GhostRead(s.PhiMu, 2)
	m.GhostRead(s.Vel, m.Dim)
	if s.chOld == nil {
		s.chOld = make([]float64, len(s.PhiMu))
	}
	copy(s.chOld, s.PhiMu)
	s.chProb = chProblem{s: s, old: s.chOld, dt: s.Opt.Dt, theta: s.Opt.Theta}
	if s.chNewton == nil {
		s.chNewton = &la.Newton{KSP: la.BiCGS, Rtol: s.Opt.NonlinTol, Atol: s.Opt.NonlinTol,
			LinRtol: s.Opt.LinTol, MaxIt: 30}
	}
	// The driver persists across remeshes (Rebind keeps it); re-point its
	// reducer and pool at the current mesh generation every step.
	s.chNewton.Red, s.chNewton.Pool = m, s.pool
	nw := s.chNewton
	ok, err := nw.Solve(&s.chProb, s.PhiMu)
	m.GhostRead(s.PhiMu, 2)
	rep := StageReport{Stage: StageCH, Result: nw.Last,
		NewtonIterations: nw.Iterations, NewtonConverged: ok}
	st := &s.T.CH
	// One record per step: the Newton driver aggregates its inner Krylov
	// iterations, so min/mean/max track per-step linear work.
	st.Record(nw.LinearIterations)
	if s.postRemesh {
		s.T.RemeshStages.PostCHIters += nw.LinearIterations
	}
	if err != nil {
		st.Total += time.Since(t0)
		return rep, err
	}
	if s.Fault.Fire(fault.KSPDiverge, string(StageCH)) {
		ok, rep.NewtonConverged = false, false
		rep.Result.Converged = false
	}
	if !ok {
		st.Total += time.Since(t0)
		return rep, &ErrDiverged{Stage: StageCH, Kind: DivergeNewton,
			Result: rep.Result, NewtonIterations: nw.Iterations}
	}
	s.pokeNaN(StageCH, s.PhiMu)
	err = s.checkFinite(StageCH, s.scanBad(s.PhiMu, 2*m.NumOwned), rep.Result)
	st.Total += time.Since(t0)
	return rep, err
}

// InitMuFromPhi sets μ = ψ'(φ) - Cn²Δφ consistently by solving the mass
// system M μ = F(ψ'(φ)) + Cn² K φ, so the first step does not see a
// spurious chemical potential. The error reports a misconfigured mass
// solver; the CG solve on an SPD mass matrix does not fail numerically.
func (s *Solver) InitMuFromPhi() error {
	m := s.M
	m.GhostRead(s.PhiMu, 2)
	r := s.asmS.Ref
	npe := r.NPE
	rhs := m.NewVec(1)
	pm := make([]float64, npe*2)
	phiC := make([]float64, npe)
	psi1 := make([]float64, npe)
	ke := make([]float64, npe*npe)
	tmp := make([]float64, npe)
	s.asmS.AssembleVector(rhs, func(e int, h float64, fe []float64) {
		m.GatherElem(e, s.PhiMu, 2, pm)
		for a := 0; a < npe; a++ {
			phiC[a] = pm[a*2]
			psi1[a] = PsiPrime(phiC[a])
		}
		r.LoadVector(h, psi1, 1, fe)
		for i := range ke {
			ke[i] = 0
		}
		r.Stiffness(h, 1, ke)
		cn := s.ElemCn[e]
		blas.Dgemv(npe, npe, cn*cn, ke, phiC, 0, tmp)
		for a := 0; a < npe; a++ {
			fe[a] += tmp[a]
		}
	})
	// The scalar mass operator and its solver persist on the Solver like
	// the per-stage KSP state: the matrix is assembled once per mesh
	// generation and the KSP keeps its warm Krylov workspace across
	// calls; Rebind/SetMeshEpoch drop the mesh-keyed matrix and PC.
	if s.chMassMat == nil {
		s.chMassMat = s.asmS.NewMatrix(fem.LayoutBAIJ)
		s.asmS.AssembleMatrix(s.chMassMat, fem.LayoutBAIJ, func(w, e int, h float64, ke []float64) {
			r.Mass(h, 1, ke)
		})
		s.chMassPC = la.NewPCJacobi(s.chMassMat)
	}
	if s.chMassKSP == nil {
		s.chMassKSP = &la.KSP{Type: la.CG, Rtol: 1e-10}
	}
	s.chMassKSP.Op, s.chMassKSP.PC, s.chMassKSP.Red, s.chMassKSP.Pool = s.chMassMat, s.chMassPC, m, s.pool
	mu := m.NewVec(1)
	if _, err := s.chMassKSP.Solve(rhs, mu); err != nil {
		return err
	}
	m.GhostRead(mu, 1)
	for i := 0; i < m.NumLocal; i++ {
		s.PhiMu[i*2+1] = mu[i]
	}
	return nil
}
