package chns

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/fem"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func uniformMesh(c *par.Comm, dim, level int) *mesh.Mesh {
	tr := octree.Uniform(dim, level)
	p := c.Size()
	n := tr.Len()
	lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
	local := make([]sfc.Octant, hi-lo)
	copy(local, tr.Leaves[lo:hi])
	return mesh.New(c, dim, local)
}

func TestMixtureProperties(t *testing.T) {
	p := DefaultParams()
	if p.Density(1) != 1 || math.Abs(p.Density(-1)-p.RhoMinus) > 1e-14 {
		t.Fatalf("density endpoints wrong: %v %v", p.Density(1), p.Density(-1))
	}
	if p.Viscosity(1) != 1 || math.Abs(p.Viscosity(-1)-p.EtaMinus) > 1e-14 {
		t.Fatal("viscosity endpoints wrong")
	}
	if p.Mobility(0) != 1 {
		t.Fatal("mobility at 0 must be 1")
	}
	if p.Mobility(1) > 0.05 || p.Mobility(1) <= 0 {
		t.Fatalf("degenerate mobility at ±1 should be small positive: %v", p.Mobility(1))
	}
	if PsiPrime(1) != 0 || PsiPrime(-1) != 0 || PsiPrime(0) != 0 {
		t.Fatal("double well critical points wrong")
	}
}

func TestCHMassConservation(t *testing.T) {
	for _, p := range []int{1, 3} {
		par.Run(p, func(c *par.Comm) {
			m := uniformMesh(c, 2, 4)
			par2 := DefaultParams()
			par2.Cn = 0.06
			s := NewSolver(m, par2, DefaultOptions(2e-3))
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.5), par2.Cn)
			})
			s.InitMuFromPhi()
			m0 := s.PhiMass()
			for step := 0; step < 3; step++ {
				s.StepCHWithVelocity(func(x, y, z float64) (float64, float64, float64) {
					return -(y - 0.5), x - 0.5, 0 // rigid rotation
				})
			}
			m1 := s.PhiMass()
			if rel := math.Abs(m1-m0) / math.Abs(m0); rel > 1e-6 {
				panic(fmt.Sprintf("p=%d: phase mass drift %v (%v -> %v)", p, rel, m0, m1))
			}
		})
	}
}

func TestCHEquilibriumIsStationary(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		m := uniformMesh(c, 2, 4)
		par2 := DefaultParams()
		par2.Cn = 0.08
		s := NewSolver(m, par2, DefaultOptions(5e-3))
		// Flat interface at y=0.5 with the equilibrium tanh profile.
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(y-0.5, par2.Cn)
		})
		s.InitMuFromPhi()
		before := append([]float64(nil), s.PhiMu...)
		for step := 0; step < 3; step++ {
			s.StepCH(nil) // zero velocity
		}
		var maxDiff float64
		for i := 0; i < m.NumOwned; i++ {
			if d := math.Abs(s.PhiMu[2*i] - before[2*i]); d > maxDiff {
				maxDiff = d
			}
		}
		maxDiff = m.GlobalMax(maxDiff)
		if maxDiff > 0.02 {
			panic(fmt.Sprintf("equilibrium profile drifted by %v", maxDiff))
		}
	})
}

func TestCHBoundsStayPhysical(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		m := uniformMesh(c, 2, 4)
		par2 := DefaultParams()
		par2.Cn = 0.08
		s := NewSolver(m, par2, DefaultOptions(2e-3))
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(0.18-math.Hypot(x-0.5, y-0.5), par2.Cn)
		})
		s.InitMuFromPhi()
		for step := 0; step < 4; step++ {
			s.StepCHWithVelocity(func(x, y, z float64) (float64, float64, float64) {
				sp := math.Sin(math.Pi * x)
				return sp * sp * math.Sin(2*math.Pi*y) / math.Pi, 0, 0
			})
		}
		var worst float64
		for i := 0; i < m.NumOwned; i++ {
			if a := math.Abs(s.PhiMu[2*i]); a > worst {
				worst = a
			}
		}
		worst = m.GlobalMax(worst)
		if worst > 1.25 {
			panic(fmt.Sprintf("phase field blew past bounds: |phi| = %v", worst))
		}
	})
}

func TestCHParallelMatchesSerial(t *testing.T) {
	run := func(p int) map[mesh.NodeKey]float64 {
		out := map[mesh.NodeKey]float64{}
		par.Run(p, func(c *par.Comm) {
			m := uniformMesh(c, 2, 3)
			par2 := DefaultParams()
			par2.Cn = 0.1
			s := NewSolver(m, par2, DefaultOptions(5e-3))
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.5), par2.Cn)
			})
			s.InitMuFromPhi()
			s.StepCH(nil)
			type kv struct {
				K mesh.NodeKey
				V float64
			}
			var local []kv
			for i := 0; i < m.NumOwned; i++ {
				local = append(local, kv{m.Keys[i], s.PhiMu[2*i]})
			}
			all := par.Allgatherv(c, local)
			if c.Rank() == 0 {
				for _, e := range all {
					out[e.K] = e.V
				}
			}
		})
		return out
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) {
		t.Fatal("node sets differ")
	}
	for k, v := range serial {
		if math.Abs(parallel[k]-v) > 1e-7 {
			t.Fatalf("node %v: serial %v parallel %v", k, v, parallel[k])
		}
	}
}

func TestCHLayoutsAgree(t *testing.T) {
	run := func(layout fem.Layout) []float64 {
		var snap []float64
		par.Run(1, func(c *par.Comm) {
			m := uniformMesh(c, 2, 3)
			par2 := DefaultParams()
			par2.Cn = 0.1
			opt := DefaultOptions(5e-3)
			opt.Layout = layout
			s := NewSolver(m, par2, opt)
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.4, y-0.6), par2.Cn)
			})
			s.InitMuFromPhi()
			s.StepCH(nil)
			snap = append([]float64(nil), s.PhiMu[:2*m.NumOwned]...)
		})
		return snap
	}
	base := run(fem.LayoutAIJ)
	for _, l := range []fem.Layout{fem.LayoutBAIJ, fem.LayoutZipped} {
		got := run(l)
		for i := range base {
			if math.Abs(got[i]-base[i]) > 1e-8 {
				t.Fatalf("layout %v differs at %d: %v vs %v", l, i, got[i], base[i])
			}
		}
	}
}

func TestProjectionReducesDivergence(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		m := uniformMesh(c, 2, 4)
		par2 := DefaultParams()
		par2.Cn = 0.08
		par2.Fr = 1 // gravity on
		s := NewSolver(m, par2, DefaultOptions(1e-3))
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(0.15-math.Hypot(x-0.5, y-0.35), par2.Cn)
		})
		s.InitMuFromPhi()
		s.StepCH(nil)
		s.StepNS()
		divBefore := s.DivergenceL2()
		psi, _, _ := s.StepPP()
		s.StepVU(psi)
		divAfter := s.DivergenceL2()
		if divAfter > 0.6*divBefore && divBefore > 1e-12 {
			panic(fmt.Sprintf("projection did not reduce divergence: %v -> %v", divBefore, divAfter))
		}
	})
}

func TestHydrostaticEquilibriumStaysQuiescent(t *testing.T) {
	// Heavy fluid at the bottom, flat interface, gravity on: the velocity
	// must stay near zero over several steps.
	par.Run(1, func(c *par.Comm) {
		m := uniformMesh(c, 2, 4)
		par2 := DefaultParams()
		par2.Cn = 0.08
		par2.Fr = 1
		s := NewSolver(m, par2, DefaultOptions(1e-3))
		// φ=+1 (heavy) below, φ=-1 above.
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(0.5-y, par2.Cn)
		})
		s.InitMuFromPhi()
		for i := 0; i < 3; i++ {
			s.Step()
		}
		var vmax float64
		for i := 0; i < m.NumOwned*m.Dim; i++ {
			if a := math.Abs(s.Vel[i]); a > vmax {
				vmax = a
			}
		}
		vmax = m.GlobalMax(vmax)
		if vmax > 0.05 {
			panic(fmt.Sprintf("hydrostatic state generated spurious velocity %v", vmax))
		}
	})
}

// bubbleCenterY returns the φ-weighted height of the light phase.
func bubbleCenterY(s *Solver) float64 {
	m := s.M
	var num, den float64
	for i := 0; i < m.NumOwned; i++ {
		_, y, _ := m.NodeCoord(i)
		w := (1 - s.PhiMu[2*i]) / 2 // 1 in the light phase
		num += w * y
		den += w
	}
	num = m.GlobalSum(num)
	den = m.GlobalSum(den)
	if den == 0 {
		return 0
	}
	return num / den
}

func TestRisingBubble(t *testing.T) {
	// A light bubble under gravity must acquire a net upward velocity
	// (the rising-bubble benchmark of Khanwale et al. scaled to a small
	// 2D grid and a handful of steps).
	par.Run(2, func(c *par.Comm) {
		m := uniformMesh(c, 2, 4)
		par2 := DefaultParams()
		par2.Cn = 0.08
		par2.Fr = 0.1
		par2.RhoMinus = 0.1
		par2.We = 100
		s := NewSolver(m, par2, DefaultOptions(2e-3))
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(math.Hypot(x-0.5, y-0.35)-0.18, par2.Cn)
		})
		s.InitMuFromPhi()
		for i := 0; i < 5; i++ {
			s.Step()
		}
		// Bubble-indicator-weighted vertical velocity.
		var num, den float64
		for i := 0; i < m.NumOwned; i++ {
			w := (1 - s.PhiMu[2*i]) / 2
			if w > 0.5 {
				num += w * s.Vel[i*2+1]
				den += w
			}
		}
		num = m.GlobalSum(num)
		den = m.GlobalSum(den)
		if c.Rank() == 0 {
			vy := num / den
			if !(vy > 0) {
				panic(fmt.Sprintf("bubble has no upward velocity: %v", vy))
			}
		}
	})
}

func TestSplitVUMatchesCoupled(t *testing.T) {
	run := func(split bool) []float64 {
		var snap []float64
		par.Run(1, func(c *par.Comm) {
			m := uniformMesh(c, 2, 3)
			par2 := DefaultParams()
			par2.Cn = 0.1
			par2.Fr = 1
			opt := DefaultOptions(1e-3)
			opt.SplitVU = split
			opt.LinTol = 1e-12
			s := NewSolver(m, par2, opt)
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.4), par2.Cn)
			})
			s.InitMuFromPhi()
			s.Step()
			snap = append([]float64(nil), s.Vel[:m.NumOwned*m.Dim]...)
		})
		return snap
	}
	a := run(true)
	b := run(false)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("split vs coupled VU differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLocalCahnFieldUsedPerElement(t *testing.T) {
	// Halving Cn in half the domain must change the interface evolution
	// only there: verify the solver runs and the elemental Cn enters the
	// residual (a uniform-Cn run differs from a local-Cn run).
	run := func(local bool) []float64 {
		var snap []float64
		par.Run(1, func(c *par.Comm) {
			m := uniformMesh(c, 2, 4)
			par2 := DefaultParams()
			par2.Cn = 0.1
			s := NewSolver(m, par2, DefaultOptions(5e-3))
			if local {
				for e := range s.ElemCn {
					ox, _, _ := m.ElemOrigin(e)
					if ox < 0.5 {
						s.ElemCn[e] = 0.05
					}
				}
			}
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.25-math.Hypot(x-0.5, y-0.5), par2.Cn)
			})
			s.InitMuFromPhi()
			s.StepCH(nil)
			snap = append([]float64(nil), s.PhiMu[:2*m.NumOwned]...)
		})
		return snap
	}
	uni := run(false)
	loc := run(true)
	diff := 0.0
	for i := range uni {
		if d := math.Abs(uni[i] - loc[i]); d > diff {
			diff = d
		}
	}
	if diff < 1e-8 {
		t.Fatal("elemental Cn had no effect on the CH solve")
	}
}

// TestStepBitwiseAcrossVecWorkers pins the sharded-RHS contract at the
// solver level: a full CH+NS+PP+VU step is bitwise identical for any
// vector-assembly shard count (the planned gather sums contributions in
// canonical order, and every stage kernel keeps per-worker scratch), so
// Options.VecWorkers is a pure performance knob.
func TestStepBitwiseAcrossVecWorkers(t *testing.T) {
	run := func(vecWorkers, ranks int) map[mesh.NodeKey][2]float64 {
		out := map[mesh.NodeKey][2]float64{}
		par.Run(ranks, func(c *par.Comm) {
			m := uniformMesh(c, 2, 3)
			par2 := DefaultParams()
			par2.Cn = 0.1
			par2.Fr = 1
			opt := DefaultOptions(2e-3)
			opt.VecWorkers = vecWorkers
			s := NewSolver(m, par2, opt)
			s.SetPhi(func(x, y, z float64) float64 {
				return EquilibriumProfile(0.2-math.Hypot(x-0.5, y-0.45), par2.Cn)
			})
			s.InitMuFromPhi()
			s.Step()
			type kv struct {
				K mesh.NodeKey
				V [2]float64
			}
			var local []kv
			for i := 0; i < m.NumOwned; i++ {
				local = append(local, kv{m.Keys[i], [2]float64{s.PhiMu[2*i], s.Vel[2*i]}})
			}
			all := par.Allgatherv(c, local)
			if c.Rank() == 0 {
				for _, e := range all {
					out[e.K] = e.V
				}
			}
		})
		return out
	}
	for _, ranks := range []int{1, 2} {
		base := run(1, ranks)
		for _, nw := range []int{2, 4} {
			got := run(nw, ranks)
			if len(got) != len(base) {
				t.Fatalf("ranks=%d nw=%d: node sets differ", ranks, nw)
			}
			for k, v := range base {
				if got[k] != v {
					t.Fatalf("ranks=%d nw=%d node %v: serial %v sharded %v", ranks, nw, k, v, got[k])
				}
			}
		}
	}
}

func Test3DSingleStep(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		m := uniformMesh(c, 3, 2)
		par2 := DefaultParams()
		par2.Cn = 0.15
		par2.Fr = 1
		s := NewSolver(m, par2, DefaultOptions(2e-3))
		s.SetPhi(func(x, y, z float64) float64 {
			return EquilibriumProfile(0.25-math.Sqrt((x-0.5)*(x-0.5)+(y-0.5)*(y-0.5)+(z-0.5)*(z-0.5)), par2.Cn)
		})
		s.InitMuFromPhi()
		s.Step()
		for i := 0; i < m.NumOwned; i++ {
			if math.IsNaN(s.PhiMu[2*i]) || math.IsNaN(s.Vel[i*3]) {
				panic("NaN after 3D step")
			}
		}
	})
}
