package chns

import (
	"proteus/internal/fem"
	"proteus/internal/la"
	"proteus/internal/mg"
)

// This file wires the per-stage preconditioner choice (Options.PCNS /
// Options.PCPP, Table II column "pc"): the pointwise/ILU(0) PCs from la,
// and the octree geometric multigrid V-cycle from internal/mg. The MG
// mesh hierarchy is built once per mesh epoch and shared by both stages;
// each stage owns its own PCGMG (its own coarse operators and smoothers)
// over that shared ladder.

// ensureHierarchy returns the solver's MG mesh ladder, building it from
// the current mesh on first use in an epoch. After an incremental rebind
// the previous ladder is refreshed instead — unchanged coarse levels are
// reused, the rest rebuilt — with a result bitwise identical to a from-
// scratch build. Collective.
func (s *Solver) ensureHierarchy() *mg.Hierarchy {
	if s.mgH == nil {
		if s.mgPrev != nil {
			h, res := mg.RefreshHierarchy(s.M, s.mgPrev, s.pcDelta, &s.mgWS, mg.HierarchyOptions{})
			s.mgH, s.mgInfo = h, res
			s.MGLevelsReused += res.LevelsReused
			rs := &s.T.RemeshStages
			rs.MGLevelsReused += res.LevelsReused
			rs.MGLevelsPatched += res.LevelsPatched
			rs.MGRowsPatched += res.RowsPatched
			rs.MGRowsResolved += res.RowsResolved
			s.mgPrev = nil
		} else {
			s.mgH = mg.NewHierarchy(s.M, mg.HierarchyOptions{})
			s.mgInfo = nil
		}
	}
	return s.mgH
}

// newNSPC builds the NS-stage preconditioner for the assembled momentum
// operator, ready to apply (GMG arrives refreshed).
func (s *Solver) newNSPC(mat *la.BSRMat) la.PC {
	switch s.Opt.PCNS {
	case PCJacobi:
		return la.NewPCJacobi(mat)
	case PCGMG:
		dim := s.M.Dim
		g := mg.NewPCGMG(s.ensureHierarchy(), s.pool, mg.Config{
			Ndof: dim,
			Coefs: []mg.Coefficient{
				{Vec: s.PhiMu, Ndof: 2},
				{Vec: s.Vel, Ndof: dim},
			},
			Assemble:          s.assembleNSLevel,
			BoundaryDirichlet: true,
		})
		g.SetFineOperator(mat)
		g.Refresh()
		return g
	default:
		return la.NewPCBJacobiILU0(mat)
	}
}

// newPPPC builds the PP-stage preconditioner for the assembled
// variable-density Poisson operator.
func (s *Solver) newPPPC(mat *la.BSRMat) la.PC {
	switch s.Opt.PCPP {
	case PCJacobi:
		return la.NewPCJacobi(mat)
	case PCGMG:
		g := mg.NewPCGMG(s.ensureHierarchy(), s.pool, mg.Config{
			Ndof:     1,
			Coefs:    []mg.Coefficient{{Vec: s.PhiMu, Ndof: 2}},
			Assemble: s.assemblePPLevel,
		})
		g.SetFineOperator(mat)
		g.Refresh()
		return g
	default:
		return la.NewPCBJacobiILU0(mat)
	}
}

// rebindStagePC re-keys a stage PC kept across an incremental rebind onto
// the stage's rebuilt operator, carrying everything the mesh delta proves
// survived: ILU(0) keeps the factorization index of pattern-preserved
// rows (refactoring values only), Jacobi re-extracts the new diagonal in
// place, and a multigrid PC rebinds its level assemblers and smoothers
// onto the refreshed hierarchy before the usual coefficient/operator
// refresh. nd is the stage's dofs per node (the row-patch expansion);
// gmgCoefs builds the stage's coefficient bindings on the new mesh.
// Returns the PC to install (an unrecognized type is rebuilt cold).
func (s *Solver) rebindStagePC(pc la.PC, mat *la.BSRMat, nd int,
	gmgCoefs func() []mg.Coefficient, rebuild func(*la.BSRMat) la.PC) la.PC {
	rs := &s.T.RemeshStages
	switch p := pc.(type) {
	case *la.PCBJacobiILU0:
		kept, rebuilt := p.RebindPatched(mat, s.rowPatch(nd))
		rs.PCRowsKept += kept
		rs.PCRowsRebuilt += rebuilt
		return p
	case *la.PCJacobi:
		p.Rebind(mat)
		return p
	case *la.PCPBJacobi:
		p.Rebind(mat)
		return p
	case *mg.PCGMG:
		h := s.ensureHierarchy()
		p.Rebind(h, s.mgInfo, gmgCoefs(), s.meshEpoch, s.rowPatch(nd))
		p.SetFineOperator(mat)
		p.Refresh()
		kept, rebuilt := p.TakeRebindStats()
		rs.PCRowsKept += kept
		rs.PCRowsRebuilt += rebuilt
		return p
	default:
		return rebuild(mat)
	}
}

// nsGMGCoefs / ppGMGCoefs bind the stage multigrid coefficient fields to
// the solver's (reallocated) state vectors on the current mesh.
func (s *Solver) nsGMGCoefs() []mg.Coefficient {
	return []mg.Coefficient{
		{Vec: s.PhiMu, Ndof: 2},
		{Vec: s.Vel, Ndof: s.M.Dim},
	}
}

func (s *Solver) ppGMGCoefs() []mg.Coefficient {
	return []mg.Coefficient{{Vec: s.PhiMu, Ndof: 2}}
}

// refreshStagePC re-keys an existing stage PC to the reassembled operator
// values: multigrid re-injects coefficients and reassembles its coarse
// ladder, the others refactor in place.
func refreshStagePC(pc la.PC, mat *la.BSRMat) {
	if g, ok := pc.(*mg.PCGMG); ok {
		g.SetFineOperator(mat)
		g.Refresh()
		return
	}
	if r, ok := pc.(la.Refresher); ok {
		r.Refresh()
	}
}

// nsLevelScratch is one coarse level's NS assembly state: the kernel
// scratch plus the element kernel itself, built once on the level's first
// assembly so warm multigrid refreshes create no closures.
type nsLevelScratch struct {
	sc   nsScratch
	kern func(w, e int, h float64, ke []float64)
}

// assembleNSLevel assembles the coarse-level momentum operator from the
// injected φ/μ and velocity fields — the same scalar operator replicated
// per component as the fine non-zipped NS kernel, with the no-slip rows
// pinned to identity on each level. Runs serially per rank (the level
// assembler is pinned to one worker).
func (s *Solver) assembleNSLevel(lvl *mg.Level) {
	m := lvl.M
	dim := m.Dim
	ls, ok := lvl.Scratch.(*nsLevelScratch)
	if !ok {
		r := lvl.Asm.Ref
		npe := r.NPE
		ls = &nsLevelScratch{sc: newNSScratch(npe, r.NG, dim)}
		sc := &ls.sc
		phiMu, vel := lvl.Coef[0], lvl.Coef[1]
		ls.kern = func(w, e int, h float64, ke []float64) {
			th, dt := s.Opt.Theta, s.Opt.Dt
			m.GatherElem(e, phiMu, 2, sc.pm)
			m.GatherElem(e, vel, dim, sc.velC)
			for a := 0; a < npe; a++ {
				sc.phiC[a] = sc.pm[a*2]
				sc.rho[a] = s.Par.Density(sc.phiC[a])
				sc.eta[a] = s.Par.Viscosity(sc.phiC[a])
			}
			for i := range sc.scalarOp {
				sc.scalarOp[i] = 0
			}
			r.WeightedMass(h, sc.rho, 1/dt, sc.scalarOp)
			r.WeightedStiffness(h, sc.eta, th/s.Par.Re, sc.scalarOp)
			for a := 0; a < npe; a++ {
				for d := 0; d < dim; d++ {
					sc.rvel[a*dim+d] = sc.rho[a] * sc.velC[a*dim+d]
				}
			}
			r.Convection(h, sc.rvel, th, sc.scalarOp)
			n := npe * dim
			for a := 0; a < npe; a++ {
				for b := 0; b < npe; b++ {
					v := sc.scalarOp[a*npe+b]
					for d := 0; d < dim; d++ {
						ke[(a*dim+d)*n+b*dim+d] = v
					}
				}
			}
		}
		lvl.Scratch = ls
	}
	lvl.Asm.AssembleMatrix(lvl.Mat, fem.LayoutAIJ, ls.kern)
	for i := 0; i < m.NumOwned; i++ {
		if m.OnBoundary(i) {
			for d := 0; d < dim; d++ {
				lvl.Mat.ZeroRow(i*dim+d, 1)
			}
		}
	}
}

// ppLevelScratch is one coarse level's PP assembly state (see
// nsLevelScratch).
type ppLevelScratch struct {
	sc   ppScratch
	kern func(w, e int, h float64, ke []float64)
}

// assemblePPLevel assembles the coarse-level variable-density Poisson
// operator K_{1/ρ} from the injected φ, pinning each level's first global
// unknown exactly as the fine stage pins the pressure nullspace.
func (s *Solver) assemblePPLevel(lvl *mg.Level) {
	m := lvl.M
	ls, ok := lvl.Scratch.(*ppLevelScratch)
	if !ok {
		r := lvl.Asm.Ref
		npe := r.NPE
		ls = &ppLevelScratch{sc: newPPScratch(npe, r.NG, m.Dim)}
		sc := &ls.sc
		phiMu := lvl.Coef[0]
		ls.kern = func(w, e int, h float64, ke []float64) {
			m.GatherElem(e, phiMu, 2, sc.pm)
			for a := 0; a < npe; a++ {
				sc.invRho[a] = 1 / s.Par.Density(sc.pm[a*2])
			}
			r.WeightedStiffness(h, sc.invRho, 1, ke)
		}
		lvl.Scratch = ls
	}
	lvl.Asm.AssembleMatrix(lvl.Mat, fem.LayoutAIJ, ls.kern)
	if m.GlobalStart == 0 && m.NumOwned > 0 {
		lvl.Mat.ZeroRow(0, 1)
	}
}
