// Package detect implements the "local Cahn" feature-identification
// algorithms of Saurabh et al. (IPDPS 2023, Sec. II-B): small flow
// features (droplets, filaments, thin sheets) whose length scale is
// comparable to the diffuse-interface thickness are found by thresholding
// the phase field to a binary ±1 marker and applying morphological
// erosion followed by (more) dilation as element-wise MATVEC passes.
// Features that disappear under erosion+dilation are exactly the
// under-resolved ones; the Cahn number is reduced (and the mesh refined)
// only there.
//
// The element-wise formulation works unchanged on adaptive octree meshes
// with hanging nodes: interface elements are detected by the nodal sum
// test |Σ φ_bw| ≠ n (Eq. 2), which interpolated hanging values trip
// naturally, and a per-element counter delays erosion of coarse elements
// by (bl - l) visits so that one nominal step advances the front one
// finest-element width everywhere (Sec. II-B3).
package detect

import (
	"math"

	"proteus/internal/mesh"
)

// Stage selects the morphological operation of a pass.
type Stage int

// Erosion shrinks the +1 (immersed) region; Dilation expands it.
const (
	Erosion Stage = iota
	Dilation
)

// Config parameterizes the local-Cahn identification (Algorithm 1).
type Config struct {
	// Delta is the threshold δ on φ: φ <= Delta is the immersed phase
	// (+1), φ > Delta the bulk (-1). The paper uses ±0.8.
	Delta float64
	// ErodeSteps and DilateSteps are the counts for the main pass;
	// DilateSteps is typically larger to compensate thresholding
	// (Sec. II-B1, footnote: "more steps of dilation than erosion").
	ErodeSteps, DilateSteps int
	// CleanSteps and PadSteps drive Algorithm 4 on the elemental-Cn
	// marker: CleanSteps of shrinking remove isolated small-Cn islands
	// that hinder solver convergence; PadSteps of growing pad the
	// surrounding region so detection need not run every time step.
	CleanSteps, PadSteps int
	// BaseLevel bl is the reference (typically finest interface) level
	// used to equalize erosion speed across octree levels.
	BaseLevel int
}

// Threshold converts the phase field φ into the binary marker φ_bwo of
// Eq. (1): +1 where φ <= δ (immersed), -1 where φ > δ. Returns a new
// nodal vector (owned+ghost layout; ghosts are refreshed).
func Threshold(m *mesh.Mesh, phi []float64, delta float64) []float64 {
	out := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		if phi[i] <= delta {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	m.GhostRead(out, 1)
	return out
}

// HasInterface reports the Eq. (2) test on the interpolated corner values
// of element e: the element straddles the marker boundary iff the
// absolute nodal sum differs from the corner count.
func HasInterface(m *mesh.Mesh, vec []float64, e int, buf []float64) bool {
	m.GatherElem(e, vec, 1, buf)
	var s float64
	for _, v := range buf {
		s += v
	}
	n := float64(m.CornersPerElem())
	return math.Abs(math.Abs(s)-n) > 1e-9
}

// ErodeDilate performs `steps` level-aware morphological passes over the
// binary nodal vector (Algorithm 2), in place. Each pass is one MATVEC:
// a ghost read, a sweep over local elements writing the stage value to
// every node of interface elements, and a combining ghost write (min for
// erosion, max for dilation). The per-element counter persists across
// the passes of this call, so an element at level l is modified only on
// every (bl-l+1)-th visit, matching the finest-level front speed.
func ErodeDilate(m *mesh.Mesh, vec []float64, stage Stage, steps, baseLevel int) {
	if steps <= 0 {
		return
	}
	val := -1.0
	op := mesh.MinOp
	if stage == Dilation {
		val = 1.0
		op = mesh.MaxOp
	}
	counter := make([]int, m.NumElems())
	buf := make([]float64, m.CornersPerElem())
	tmp := m.NewVec(1)
	for s := 0; s < steps; s++ {
		m.GhostRead(vec, 1)
		copy(tmp, vec)
		for e := 0; e < m.NumElems(); e++ {
			if !HasInterface(m, vec, e, buf) {
				continue
			}
			wait := baseLevel - int(m.ElemLevel[e])
			if wait < 0 {
				wait = 0
			}
			if counter[e] < wait {
				counter[e]++
				continue
			}
			counter[e] = 0
			m.ScatterSetElem(e, val, 1, tmp, op)
		}
		m.GhostWrite(tmp, 1, op, val*-1)
		copy(vec, tmp)
		m.GhostRead(vec, 1)
	}
}

// ElementalCahn implements Algorithm 3: an element is marked for reduced
// Cahn number iff it was fully immersed in the thresholded field (all
// corners +1) and fully erased in the eroded+dilated field (all corners
// -1) — i.e. it belonged to a feature too small to survive the
// morphological round trip.
func ElementalCahn(m *mesh.Mesh, bwo, dilated []float64) []bool {
	out := make([]bool, m.NumElems())
	n := float64(m.CornersPerElem())
	bo := make([]float64, m.CornersPerElem())
	bd := make([]float64, m.CornersPerElem())
	for e := 0; e < m.NumElems(); e++ {
		m.GatherElem(e, bwo, 1, bo)
		m.GatherElem(e, dilated, 1, bd)
		var so, sd float64
		for i := range bo {
			so += bo[i]
			sd += bd[i]
		}
		out[e] = math.Abs(so-n) < 1e-9 && math.Abs(sd+n) < 1e-9
	}
	return out
}

// ExpandAndClean implements Algorithm 4 on the elemental-Cn marker: the
// marker is transferred to a nodal ±1 field, shrunk by cleanSteps
// (removing isolated small-Cn islands) and grown by padSteps (padding the
// surroundings so the detection needn't run every step), then transferred
// back: an element is marked iff any of its nodes carries the marker.
//
// Note: the paper's Algorithm 4 pseudocode carries an inverted sign
// convention between its marking and final test; this implementation
// follows the stated intent of the surrounding text.
func ExpandAndClean(m *mesh.Mesh, marks []bool, cleanSteps, padSteps, baseLevel int) []bool {
	nodal := m.NewVec(1)
	for i := range nodal {
		nodal[i] = -1
	}
	for e, mk := range marks {
		if mk {
			m.ScatterSetElem(e, 1, 1, nodal, mesh.MaxOp)
		}
	}
	m.GhostWrite(nodal, 1, mesh.MaxOp, -1)
	m.GhostRead(nodal, 1)
	// Shrink the marked (+1) region to delete islands, then grow it to pad.
	ErodeDilate(m, nodal, Erosion, cleanSteps, baseLevel)
	ErodeDilate(m, nodal, Dilation, padSteps, baseLevel)
	out := make([]bool, m.NumElems())
	buf := make([]float64, m.CornersPerElem())
	for e := range out {
		m.GatherElem(e, nodal, 1, buf)
		for _, v := range buf {
			if v > 0 {
				out[e] = true
				break
			}
		}
	}
	return out
}

// Result reports the identification outcome.
type Result struct {
	// ReduceCahn marks local elements whose Cahn number must be reduced
	// (and which therefore need refinement to the fine interface level).
	ReduceCahn []bool
	// Interface marks local elements straddling the thresholded
	// interface |φ| < δ.
	Interface []bool
	// NumReduced counts globally how many elements were marked.
	NumReduced int64
}

// Identify runs the full local-Cahn pipeline (Algorithm 1): threshold,
// erode, dilate, elemental marking, island removal and padding.
// Collective.
func Identify(m *mesh.Mesh, phi []float64, cfg Config) Result {
	bwo := Threshold(m, phi, cfg.Delta)
	work := m.NewVec(1)
	copy(work, bwo)
	ErodeDilate(m, work, Erosion, cfg.ErodeSteps, cfg.BaseLevel)
	ErodeDilate(m, work, Dilation, cfg.DilateSteps, cfg.BaseLevel)
	marks := ElementalCahn(m, bwo, work)
	if cfg.CleanSteps > 0 || cfg.PadSteps > 0 {
		marks = ExpandAndClean(m, marks, cfg.CleanSteps, cfg.PadSteps, cfg.BaseLevel)
	}
	res := Result{ReduceCahn: marks, Interface: make([]bool, m.NumElems())}
	buf := make([]float64, m.CornersPerElem())
	var count int64
	for e := range marks {
		if marks[e] {
			count++
		}
		res.Interface[e] = HasInterface(m, bwo, e, buf)
	}
	res.NumReduced = int64(m.GlobalSum(float64(count)))
	return res
}
