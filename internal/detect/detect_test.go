package detect

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// phiField fills a phase field from an analytic signed function: f < 0
// inside the immersed phase (φ = -1 bulk convention: immersed φ <= δ).
// Here we produce φ = +1 in bulk, φ = -1 inside features, with a linear
// ramp of width w.
func phiField(m *mesh.Mesh, f func(x, y, z float64) float64) []float64 {
	phi := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		x, y, z := m.NodeCoord(i)
		d := f(x, y, z)
		switch {
		case d < 0:
			phi[i] = -1
		default:
			phi[i] = 1
		}
	}
	return phi
}

// circle returns a signed distance to a circle (negative inside).
func circle(cx, cy, r float64) func(x, y, z float64) float64 {
	return func(x, y, z float64) float64 {
		return math.Hypot(x-cx, y-cy) - r
	}
}

// buildUniformMesh makes a uniform 2D mesh at the given level.
func buildUniformMesh(c *par.Comm, level int) *mesh.Mesh {
	tr := octree.Uniform(2, level)
	p := c.Size()
	n := tr.Len()
	lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
	local := make([]sfc.Octant, hi-lo)
	copy(local, tr.Leaves[lo:hi])
	return mesh.New(c, 2, local)
}

func TestThresholdBinary(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		m := buildUniformMesh(c, 4)
		phi := phiField(m, circle(0.5, 0.5, 0.2))
		bw := Threshold(m, phi, -0.8)
		for i := 0; i < m.NumLocal; i++ {
			if bw[i] != 1 && bw[i] != -1 {
				panic("threshold must be binary")
			}
			if (phi[i] <= -0.8) != (bw[i] == 1) {
				panic("threshold sign wrong")
			}
		}
	})
}

// countImmersed counts owned nodes with marker +1.
func countImmersed(m *mesh.Mesh, v []float64) float64 {
	var s float64
	for i := 0; i < m.NumOwned; i++ {
		if v[i] > 0 {
			s++
		}
	}
	return m.GlobalSum(s)
}

func TestErosionShrinksDilationGrows(t *testing.T) {
	for _, p := range []int{1, 3} {
		par.Run(p, func(c *par.Comm) {
			m := buildUniformMesh(c, 5)
			phi := phiField(m, circle(0.5, 0.5, 0.25))
			bw := Threshold(m, phi, -0.8)
			n0 := countImmersed(m, bw)
			ErodeDilate(m, bw, Erosion, 2, 5)
			n1 := countImmersed(m, bw)
			if n1 >= n0 {
				panic(fmt.Sprintf("erosion did not shrink: %v -> %v", n0, n1))
			}
			ErodeDilate(m, bw, Dilation, 2, 5)
			n2 := countImmersed(m, bw)
			if n2 <= n1 {
				panic(fmt.Sprintf("dilation did not grow: %v -> %v", n1, n2))
			}
		})
	}
}

func TestSmallDropIdentifiedLargeSurvives(t *testing.T) {
	// Fig. 2a: a drop of ~2 cells disappears under 2 erosions; a large
	// drop survives. Only the small drop's elements are marked.
	for _, p := range []int{1, 4} {
		par.Run(p, func(c *par.Comm) {
			m := buildUniformMesh(c, 5) // h = 1/32
			small := circle(0.25, 0.25, 0.06)
			large := circle(0.7, 0.7, 0.22)
			phi := phiField(m, func(x, y, z float64) float64 {
				return math.Min(small(x, y, z), large(x, y, z))
			})
			res := Identify(m, phi, Config{
				Delta: -0.8, ErodeSteps: 3, DilateSteps: 5, BaseLevel: 5,
			})
			if res.NumReduced == 0 {
				panic("small drop not identified")
			}
			// Marked elements must cluster near the small drop, none on
			// the large drop's interior far from its interface.
			for e, mk := range res.ReduceCahn {
				if !mk {
					continue
				}
				hx := m.ElemSize(e)
				ox, oy, _ := m.ElemOrigin(e)
				cx, cy := ox+hx/2, oy+hx/2
				dSmall := math.Hypot(cx-0.25, cy-0.25)
				if dSmall > 0.25 {
					panic(fmt.Sprintf("p=%d: marked element at (%.3f,%.3f) far from small drop", p, cx, cy))
				}
			}
		})
	}
}

func TestFilamentIdentified(t *testing.T) {
	// Fig. 2b: a thin filament connecting two large blobs is identified,
	// while the blobs survive.
	par.Run(2, func(c *par.Comm) {
		m := buildUniformMesh(c, 6) // h = 1/64
		blobA := circle(0.2, 0.5, 0.15)
		blobB := circle(0.8, 0.5, 0.15)
		fil := func(x, y, z float64) float64 {
			// Thin horizontal band between the blobs.
			if x < 0.2 || x > 0.8 {
				return 1
			}
			return math.Abs(y-0.5) - 0.02
		}
		phi := phiField(m, func(x, y, z float64) float64 {
			return math.Min(fil(x, y, z), math.Min(blobA(x, y, z), blobB(x, y, z)))
		})
		res := Identify(m, phi, Config{
			Delta: -0.8, ErodeSteps: 3, DilateSteps: 5, BaseLevel: 6,
		})
		if res.NumReduced == 0 {
			panic("filament not identified")
		}
		foundMid := false
		for e, mk := range res.ReduceCahn {
			if !mk {
				continue
			}
			hx := m.ElemSize(e)
			ox, oy, _ := m.ElemOrigin(e)
			cx, cy := ox+hx/2, oy+hx/2
			if math.Abs(cy-0.5) > 0.2 {
				panic(fmt.Sprintf("marked element off the filament axis: (%.3f,%.3f)", cx, cy))
			}
			if cx > 0.45 && cx < 0.55 {
				foundMid = true
			}
		}
		if !foundMid {
			panic("filament midsection not marked")
		}
	})
}

func TestParallelMatchesSerial(t *testing.T) {
	// The identification must be rank-count independent.
	type ekey struct{ X, Y uint32 }
	run := func(p int) map[ekey]bool {
		out := map[ekey]bool{}
		par.Run(p, func(c *par.Comm) {
			m := buildUniformMesh(c, 5)
			phi := phiField(m, circle(0.3, 0.6, 0.05))
			res := Identify(m, phi, Config{
				Delta: -0.8, ErodeSteps: 2, DilateSteps: 4,
				CleanSteps: 1, PadSteps: 2, BaseLevel: 5,
			})
			type pair struct {
				K  ekey
				Mk bool
			}
			var local []pair
			for e := range res.ReduceCahn {
				o := m.Elems[e]
				local = append(local, pair{ekey{o.X, o.Y}, res.ReduceCahn[e]})
			}
			all := par.Allgatherv(c, local)
			if c.Rank() == 0 {
				for _, pr := range all {
					out[pr.K] = pr.Mk
				}
			}
		})
		return out
	}
	serial := run(1)
	for _, p := range []int{2, 4} {
		parallel := run(p)
		if len(parallel) != len(serial) {
			t.Fatalf("p=%d: element count mismatch", p)
		}
		for k, v := range serial {
			if parallel[k] != v {
				t.Fatalf("p=%d: element (%d,%d): serial %v parallel %v", p, k.X, k.Y, v, parallel[k])
			}
		}
	}
}

func TestLevelAwareCounterDelaysCoarseElements(t *testing.T) {
	// On an adaptive mesh, one erosion step must advance the front one
	// *finest*-element width: a coarse element (bl-l = 1) is only eroded
	// on its second visit.
	par.Run(1, func(c *par.Comm) {
		// Left half at level 4, right half at level 3.
		tr := octree.Build(2, func(o sfc.Octant) bool {
			if int(o.Level) < 3 {
				return true
			}
			return int(o.Level) < 4 && o.X < sfc.MaxCoord/2
		}, 4, nil).Balance21(nil)
		m := mesh.New(c, 2, tr.Leaves)
		// Everything immersed: erode from the domain boundary inward.
		phi := m.NewVec(1)
		for i := range phi {
			phi[i] = -1 // immersed everywhere
		}
		bw := Threshold(m, phi, -0.8)
		// With an all-+1 field there is no interface, so nothing erodes.
		before := countImmersed(m, bw)
		ErodeDilate(m, bw, Erosion, 1, 4)
		after := countImmersed(m, bw)
		if before != after {
			panic("erosion must not act without an interface")
		}
		// Half-plane field with the immersed phase on the LEFT (fine) side:
		// the interface elements are the coarse level-3 cells just right
		// of x=0.5 (their left-edge nodes are +1). With bl=4 they must
		// wait one visit, so step 1 changes nothing and step 2 erodes.
		for i := 0; i < m.NumLocal; i++ {
			x, _, _ := m.NodeCoord(i)
			if x <= 0.5 {
				phi[i] = -1
			} else {
				phi[i] = 1
			}
		}
		bw = Threshold(m, phi, -0.8)
		n0 := countImmersed(m, bw)
		ErodeDilate(m, bw, Erosion, 1, 4)
		n1 := countImmersed(m, bw)
		if n1 != n0 {
			panic(fmt.Sprintf("coarse interface cells must wait one visit: %v -> %v", n0, n1))
		}
		ErodeDilate(m, bw, Erosion, 2, 4)
		n2 := countImmersed(m, bw)
		if n2 >= n0 {
			panic("second visit must erode coarse cells")
		}
		// Mirror field: immersed on the RIGHT (coarse) side; interface
		// elements are the fine level-4 cells left of x=0.5, which erode
		// on the very first step.
		for i := 0; i < m.NumLocal; i++ {
			x, _, _ := m.NodeCoord(i)
			if x >= 0.5 {
				phi[i] = -1
			} else {
				phi[i] = 1
			}
		}
		bw = Threshold(m, phi, -0.8)
		f0 := countImmersed(m, bw)
		ErodeDilate(m, bw, Erosion, 1, 4)
		f1 := countImmersed(m, bw)
		if f1 >= f0 {
			panic("fine interface cells must erode on the first step")
		}
	})
}

func TestExpandAndCleanRemovesIsland(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		m := buildUniformMesh(c, 4)
		marks := make([]bool, m.NumElems())
		// A single isolated marked element: cleaning with 1 step must
		// remove it.
		marks[m.NumElems()/2] = true
		cleaned := ExpandAndClean(m, marks, 1, 0, 4)
		for e, mk := range cleaned {
			if mk {
				t.Fatalf("island at elem %d survived cleaning", e)
			}
		}
		// A 4x4 block of marked elements must survive 1 cleaning step and
		// grow under padding.
		for e := range marks {
			marks[e] = false
		}
		n := 0
		for e := 0; e < m.NumElems(); e++ {
			ox, oy, _ := m.ElemOrigin(e)
			if ox >= 0.25 && ox < 0.5 && oy >= 0.25 && oy < 0.5 {
				marks[e] = true
				n++
			}
		}
		padded := ExpandAndClean(m, marks, 1, 3, 4)
		count := 0
		for _, mk := range padded {
			if mk {
				count++
			}
		}
		if count <= n {
			panic(fmt.Sprintf("padding did not grow the region: %d -> %d", n, count))
		}
	})
}
