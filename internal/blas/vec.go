package blas

// Level-1 vector kernels for the Krylov solvers. Inner products are
// defined over fixed-length chunks whose partial sums are combined in
// chunk order, so the result is one canonical floating-point value no
// matter how the chunks are distributed over workers: the sharded and
// serial paths agree bitwise, and repeated runs reproduce (the per-worker
// partial-sum discipline the distributed assembly already follows).

// DotChunk is the canonical inner-product chunk length. Chunk c of an
// n-vector covers elements [c*DotChunk, min((c+1)*DotChunk, n)).
const DotChunk = 1024

// NumChunks returns the chunk count of an n-vector.
func NumChunks(n int) int { return (n + DotChunk - 1) / DotChunk }

// DotChunks fills sums[c] with the chunk-c partial sum of a·b for every
// chunk c in [c0, c1), over the first n entries.
func DotChunks(a, b []float64, sums []float64, c0, c1, n int) {
	for c := c0; c < c1; c++ {
		lo := c * DotChunk
		hi := lo + DotChunk
		if hi > n {
			hi = n
		}
		var s float64
		aa := a[lo:hi]
		bb := b[lo:hi:hi]
		for i, v := range aa {
			s += v * bb[i]
		}
		sums[c] = s
	}
}

// Dot2Chunks is DotChunks for two inner products sharing one pass:
// sums1 gets chunk sums of a·b, sums2 of c·d.
func Dot2Chunks(a, b, c, d []float64, sums1, sums2 []float64, c0, c1, n int) {
	for ch := c0; ch < c1; ch++ {
		lo := ch * DotChunk
		hi := lo + DotChunk
		if hi > n {
			hi = n
		}
		var s1, s2 float64
		aa, bb := a[lo:hi], b[lo:hi:hi]
		cc, dd := c[lo:hi:hi], d[lo:hi:hi]
		for i, v := range aa {
			s1 += v * bb[i]
			s2 += cc[i] * dd[i]
		}
		sums1[ch] = s1
		sums2[ch] = s2
	}
}

// SumOrdered reduces partial sums left to right, the canonical combine
// order of the chunked inner products.
func SumOrdered(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Axpy computes y += alpha*x. A zero-length x (an empty rank's owned
// segment) is a no-op.
func Axpy(alpha float64, x, y []float64) {
	if len(x) == 0 {
		return
	}
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Axpy2 computes dst += a*x + b*y elementwise.
func Axpy2(a float64, x []float64, b float64, y, dst []float64) {
	if len(x) == 0 {
		return
	}
	_ = y[len(x)-1]
	_ = dst[len(x)-1]
	for i, v := range x {
		dst[i] += a*v + b*y[i]
	}
}

// Waxpby computes dst = a*x + b*y elementwise. dst may alias x or y.
func Waxpby(dst []float64, a float64, x []float64, b float64, y []float64) {
	if len(x) == 0 {
		return
	}
	_ = y[len(x)-1]
	_ = dst[len(x)-1]
	for i, v := range x {
		dst[i] = a*v + b*y[i]
	}
}
