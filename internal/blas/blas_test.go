package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveGemm(m, n, k int, alpha float64, a, b []float64, beta float64, c []float64) []float64 {
	out := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			out[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
	return out
}

func randSlice(r *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.NormFloat64()
	}
	return s
}

func TestDgemmMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		m, n, k := 1+r.Intn(9), 1+r.Intn(9), 1+r.Intn(9)
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		c := randSlice(r, m*n)
		alpha, beta := r.NormFloat64(), r.NormFloat64()
		want := naiveGemm(m, n, k, alpha, a, b, beta, c)
		got := append([]float64(nil), c...)
		Dgemm(m, n, k, alpha, a, b, beta, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11 {
				t.Fatalf("m=%d n=%d k=%d entry %d: got %v want %v", m, n, k, i, got[i], want[i])
			}
		}
	}
}

func TestDgemmTAMatchesTransposedNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		m, n, k := 1+r.Intn(9), 1+r.Intn(9), 1+r.Intn(9)
		a := randSlice(r, k*m) // A is k x m, we multiply A^T (m x k)
		b := randSlice(r, k*n)
		c := randSlice(r, m*n)
		at := make([]float64, m*k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at[j*k+i] = a[i*m+j]
			}
		}
		want := naiveGemm(m, n, k, 1.5, at, b, 0.5, c)
		got := append([]float64(nil), c...)
		DgemmTA(m, n, k, 1.5, a, b, 0.5, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11 {
				t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestDgemvAndTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		m, n := 1+r.Intn(12), 1+r.Intn(12)
		a := randSlice(r, m*n)
		x := randSlice(r, n)
		y := randSlice(r, m)
		want := make([]float64, m)
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += a[i*n+j] * x[j]
			}
			want[i] = 2*s + 3*y[i]
		}
		got := append([]float64(nil), y...)
		Dgemv(m, n, 2, a, x, 3, got)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11 {
				t.Fatalf("gemv entry %d: got %v want %v", i, got[i], want[i])
			}
		}
		// Transpose: y2 = A^T x2.
		x2 := randSlice(r, m)
		want2 := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a[i*n+j] * x2[i]
			}
			want2[j] = s
		}
		got2 := make([]float64, n)
		DgemvT(m, n, 1, a, x2, 0, got2)
		for j := range want2 {
			if math.Abs(got2[j]-want2[j]) > 1e-11 {
				t.Fatalf("gemvT entry %d: got %v want %v", j, got2[j], want2[j])
			}
		}
	}
}

func TestDgemmBetaZeroOverwritesGarbage(t *testing.T) {
	c := []float64{math.NaN(), math.NaN()}
	Dgemm(1, 2, 1, 1, []float64{1}, []float64{2, 3}, 0, c)
	if c[0] != 2 || c[1] != 3 {
		t.Fatalf("beta=0 must ignore prior contents: %v", c)
	}
}

func TestDgemmLinearity(t *testing.T) {
	// Property: Dgemm is linear in A.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4)
		a1 := randSlice(r, m*k)
		a2 := randSlice(r, m*k)
		b := randSlice(r, k*n)
		sum := make([]float64, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float64, m*n)
		Dgemm(m, n, k, 1, a1, b, 0, c1)
		Dgemm(m, n, k, 1, a2, b, 1, c1)
		c2 := make([]float64, m*n)
		Dgemm(m, n, k, 1, sum, b, 0, c2)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
