// Package blas provides the small dense kernels (DGEMM/DGEMV) that the
// stage-2 assembly optimization of Saurabh et al. (IPDPS 2023, Sec. III-A)
// expresses FEM operators with. The paper links Intel MKL; this pure-Go
// substitute keeps the same call structure (one big matrix product per
// elemental operator instead of explicit Gauss-point loops) with a
// register-blocked inner kernel, so the *structural* speedup of the
// zip/GEMM formulation is preserved.
package blas

// Dgemm computes C = alpha*A*B + beta*C for row-major dense matrices:
// A is m x k, B is k x n, C is m x n.
func Dgemm(m, n, k int, alpha float64, a []float64, b []float64, beta float64, c []float64) {
	if beta != 1 {
		if beta == 0 {
			for i := range c[:m*n] {
				c[i] = 0
			}
		} else {
			for i := range c[:m*n] {
				c[i] *= beta
			}
		}
	}
	// i-k-j loop order with a hoisted scalar keeps B and C accesses
	// sequential; 4-wide unrolling on j lets the compiler vectorize.
	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		for l := 0; l < k; l++ {
			s := alpha * a[i*k+l]
			if s == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				ci[j] += s * bl[j]
				ci[j+1] += s * bl[j+1]
				ci[j+2] += s * bl[j+2]
				ci[j+3] += s * bl[j+3]
			}
			for ; j < n; j++ {
				ci[j] += s * bl[j]
			}
		}
	}
}

// DgemmTA computes C = alpha*A^T*B + beta*C where A is k x m (so A^T is
// m x k), B is k x n, C is m x n, all row-major.
func DgemmTA(m, n, k int, alpha float64, a []float64, b []float64, beta float64, c []float64) {
	if beta != 1 {
		if beta == 0 {
			for i := range c[:m*n] {
				c[i] = 0
			}
		} else {
			for i := range c[:m*n] {
				c[i] *= beta
			}
		}
	}
	for l := 0; l < k; l++ {
		al := a[l*m : l*m+m]
		bl := b[l*n : l*n+n]
		for i := 0; i < m; i++ {
			s := alpha * al[i]
			if s == 0 {
				continue
			}
			ci := c[i*n : i*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				ci[j] += s * bl[j]
				ci[j+1] += s * bl[j+1]
				ci[j+2] += s * bl[j+2]
				ci[j+3] += s * bl[j+3]
			}
			for ; j < n; j++ {
				ci[j] += s * bl[j]
			}
		}
	}
}

// Dgemv computes y = alpha*A*x + beta*y for row-major A (m x n).
func Dgemv(m, n int, alpha float64, a []float64, x []float64, beta float64, y []float64) {
	for i := 0; i < m; i++ {
		ai := a[i*n : i*n+n]
		var s float64
		for j, v := range ai {
			s += v * x[j]
		}
		if beta == 0 {
			y[i] = alpha * s
		} else {
			y[i] = beta*y[i] + alpha*s
		}
	}
}

// DgemvT computes y = alpha*A^T*x + beta*y for row-major A (m x n),
// y of length n, x of length m.
func DgemvT(m, n int, alpha float64, a []float64, x []float64, beta float64, y []float64) {
	if beta != 1 {
		if beta == 0 {
			for i := range y[:n] {
				y[i] = 0
			}
		} else {
			for i := range y[:n] {
				y[i] *= beta
			}
		}
	}
	for i := 0; i < m; i++ {
		s := alpha * x[i]
		if s == 0 {
			continue
		}
		ai := a[i*n : i*n+n]
		for j, v := range ai {
			y[j] += s * v
		}
	}
}
