package scenario

import (
	"fmt"
	"math"

	"proteus/internal/chns"
	"proteus/internal/core"
)

// The built-in registry: the paper's three cases (rising bubble,
// swirling-flow validation, jet atomization) plus three further
// workloads (spinodal decomposition, Rayleigh–Taylor instability, drop
// impact/splash) exercising the same adaptive CHNS pipeline.
func init() {
	Register(bubbleScenario())
	Register(swirlScenario())
	Register(jetScenario())
	Register(spinodalScenario())
	Register(rtiScenario())
	Register(splashScenario())
}

// maxAbsPhi returns the global max |φ| (NaNs map to +Inf so they trip
// any bound). Collective.
func maxAbsPhi(s *core.Simulation) float64 {
	var mx float64
	for i := 0; i < s.Mesh.NumOwned; i++ {
		v := math.Abs(s.Solver.PhiMu[2*i])
		if math.IsNaN(v) {
			mx = math.Inf(1)
			break
		}
		if v > mx {
			mx = v
		}
	}
	return s.Mesh.GlobalMax(mx)
}

// boundedPhi fails when φ left the physical band (diffuse-interface
// overshoot beyond lim means the solve went unstable).
func boundedPhi(s *core.Simulation, lim float64) error {
	if mx := maxAbsPhi(s); mx > lim {
		return fmt.Errorf("max|phi| = %g exceeds %g", mx, lim)
	}
	return nil
}

func bubbleScenario() Scenario {
	return Scenario{
		Name:        "bubble",
		Description: "2D rising bubble: a light bubble under strong gravity in a heavy fluid",
		PaperRef:    "Fig. 7 / Table I (application scaling benchmark)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Fr = 0.3
			p.RhoMinus = 0.1
			p.We = 50
			cfg := core.Config{Dim: 2, Opt: chns.DefaultOptions(1e-3), RemeshEvery: 2}
			switch pr {
			case Smoke:
				p.Cn = 0.08
				cfg.BulkLevel, cfg.InterfaceLevel = 2, 4
			case Full:
				p.Cn = 0.03
				cfg.BulkLevel, cfg.InterfaceLevel = 4, 7
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.05
				cfg.BulkLevel, cfg.InterfaceLevel = 3, 6
			}
			cfg.Params = p
			return Spec{Config: cfg, Phi0: func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.3)-0.15, p.Cn)
			}}
		},
		Validate: func(s *core.Simulation) error {
			if err := boundedPhi(s, 1.2); err != nil {
				return err
			}
			if d := s.CountDrops(-0.3); d != 1 {
				return fmt.Errorf("bubble fragmented: %d components", d)
			}
			return nil
		},
	}
}

func swirlScenario() Scenario {
	swirl := func(x, y, z, t float64) (float64, float64, float64) {
		sx := math.Sin(math.Pi * x)
		sy := math.Sin(math.Pi * y)
		return 2 * sx * sx * sy * math.Cos(math.Pi*y), -2 * sx * math.Cos(math.Pi*x) * sy * sy, 0
	}
	return Scenario{
		Name:        "swirl",
		Description: "2D swirling-flow drop stretching with local-Cahn detection (CH block only)",
		PaperRef:    "Fig. 5 (single-vortex validation, local vs uniform Cahn)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Pe = 1000
			cfg := core.Config{
				Dim: 2, Opt: chns.DefaultOptions(2.5e-3),
				LocalCahn: true, Delta: -0.5, RemeshEvery: 4,
				PrescribedVel: swirl,
			}
			switch pr {
			case Smoke:
				p.Cn = 0.04
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 3, 4, 5
				cfg.FineCn = 0.016
			case Full:
				p.Cn = 0.012
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 4, 7, 8
				cfg.FineCn = 0.005
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.02
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 3, 5, 6
				cfg.FineCn = 0.008
			}
			cfg.Params = p
			return Spec{Config: cfg, Phi0: func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(math.Hypot(x-0.5, y-0.75)-0.15, p.Cn)
			}}
		},
		Validate: func(s *core.Simulation) error {
			if err := boundedPhi(s, 1.2); err != nil {
				return err
			}
			if d := s.CountDrops(-0.3); d != 1 {
				return fmt.Errorf("drop broke up early: %d components", d)
			}
			return nil
		},
	}
}

func jetScenario() Scenario {
	return Scenario{
		Name:        "jet",
		Description: "3D jet atomization: a perturbed liquid ligament in axial shear thins and breaks up",
		PaperRef:    "Sec. V / Fig. 9 (production jet-atomization run)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Re = 200
			p.We = 20
			p.Pe = 500
			p.RhoMinus = 0.05
			p.EtaMinus = 0.05
			cfg := core.Config{
				Dim: 3, Opt: chns.DefaultOptions(1e-3),
				LocalCahn: true, Delta: -0.5, RemeshEvery: 2,
			}
			switch pr {
			case Smoke:
				p.Cn = 0.08
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 2, 3, 4
				cfg.FineCn = 0.04
			case Full:
				p.Cn = 0.04
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 3, 5, 6
				cfg.FineCn = 0.016
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.05
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 2, 4, 5
				cfg.FineCn = 0.02
			}
			cfg.Params = p
			radius := func(x float64) float64 { return 0.10 + 0.035*math.Cos(4*math.Pi*x) }
			return Spec{
				Config: cfg,
				Phi0: func(x, y, z float64) float64 {
					r := math.Hypot(y-0.5, z-0.5)
					return chns.EquilibriumProfile(r-radius(x), p.Cn)
				},
				Vel0: func(x, y, z float64) (float64, float64, float64) {
					r := math.Hypot(y-0.5, z-0.5)
					return 0.5 * math.Exp(-r*r/0.02), 0, 0
				},
			}
		},
		Validate: func(s *core.Simulation) error {
			if err := boundedPhi(s, 1.2); err != nil {
				return err
			}
			// At smoke scale the interface is too diffuse for a meaningful
			// φ < -0.3 component count; the topology check needs bench+.
			if s.PresetName != string(Smoke) {
				if d := s.CountDrops(-0.3); d < 1 {
					return fmt.Errorf("ligament vanished: %d components", d)
				}
			}
			return nil
		},
	}
}

func spinodalScenario() Scenario {
	// Deterministic multi-mode perturbation standing in for thermal
	// noise: fixed wavevectors and phases so every run (and every rank
	// count) sees bitwise the same initial field.
	modes := [][3]float64{
		{2, 3, 0.7}, {5, 2, 2.1}, {3, 7, 4.4}, {7, 5, 1.3}, {1, 6, 3.9}, {6, 1, 5.2},
	}
	perturb := func(x, y float64) float64 {
		var v float64
		for _, m := range modes {
			v += math.Cos(2*math.Pi*(m[0]*x+m[1]*y) + m[2])
		}
		return 0.2 * v / float64(len(modes))
	}
	return Scenario{
		Name:        "spinodal",
		Description: "2D spinodal decomposition: a near-critical mixture phase-separates and coarsens (CH block only)",
		PaperRef:    "beyond the paper (classic Cahn–Hilliard coarsening; exercises whole-domain adaptivity)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Pe = 200
			cfg := core.Config{
				Dim: 2, Opt: chns.DefaultOptions(1e-3), RemeshEvery: 2,
				PrescribedVel: func(x, y, z, t float64) (float64, float64, float64) { return 0, 0, 0 },
			}
			switch pr {
			case Smoke:
				p.Cn = 0.1
				cfg.BulkLevel, cfg.InterfaceLevel = 2, 3
			case Full:
				p.Cn = 0.025
				cfg.BulkLevel, cfg.InterfaceLevel = 4, 7
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.05
				cfg.BulkLevel, cfg.InterfaceLevel = 3, 5
			}
			cfg.Params = p
			return Spec{Config: cfg, Phi0: func(x, y, z float64) float64 {
				return perturb(x, y)
			}}
		},
		Validate: func(s *core.Simulation) error {
			return boundedPhi(s, 1.2)
		},
	}
}

func rtiScenario() Scenario {
	return Scenario{
		Name:        "rti",
		Description: "2D Rayleigh–Taylor instability: a heavy fluid over a light one under gravity, seeded interface",
		PaperRef:    "beyond the paper (canonical variable-density NSCH benchmark)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Re = 500
			p.We = 500 // weak surface tension: the instability must grow
			p.Pe = 300
			p.Fr = 0.1 // strong gravity
			p.RhoMinus = 0.3
			cfg := core.Config{Dim: 2, Opt: chns.DefaultOptions(1e-3), RemeshEvery: 2}
			switch pr {
			case Smoke:
				p.Cn = 0.08
				cfg.BulkLevel, cfg.InterfaceLevel = 2, 4
			case Full:
				p.Cn = 0.015
				cfg.BulkLevel, cfg.InterfaceLevel = 4, 8
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.03
				cfg.BulkLevel, cfg.InterfaceLevel = 3, 6
			}
			cfg.Params = p
			// Heavy phase (φ=+1, ρ=1) on top of the light one (ρ⁻=0.3);
			// two seeded interface modes break the symmetry.
			ifc := func(x float64) float64 {
				return 0.5 + 0.03*math.Cos(2*math.Pi*x) + 0.015*math.Cos(6*math.Pi*x+1.1)
			}
			return Spec{Config: cfg, Phi0: func(x, y, z float64) float64 {
				return chns.EquilibriumProfile(y-ifc(x), p.Cn)
			}}
		},
		Validate: func(s *core.Simulation) error {
			return boundedPhi(s, 1.2)
		},
	}
}

func splashScenario() Scenario {
	return Scenario{
		Name:        "splash",
		Description: "2D drop impact: a liquid drop falls into a pool of the same liquid through a light gas",
		PaperRef:    "beyond the paper (impact/splash; thin-film features drive local-Cahn detection)",
		Build: func(pr Preset) Spec {
			p := chns.DefaultParams()
			p.Re = 250
			p.We = 100
			p.Pe = 300
			p.Fr = 0.5
			p.RhoMinus = 0.05
			p.EtaMinus = 0.05
			cfg := core.Config{Dim: 2, Opt: chns.DefaultOptions(1e-3), RemeshEvery: 2}
			switch pr {
			case Smoke:
				p.Cn = 0.08
				cfg.BulkLevel, cfg.InterfaceLevel = 2, 4
			case Full:
				p.Cn = 0.02
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 4, 8, 9
				cfg.LocalCahn, cfg.FineCn, cfg.Delta = true, 0.008, -0.5
			default: // Bench, and the safe fallback for unknown presets
				p.Cn = 0.04
				cfg.BulkLevel, cfg.InterfaceLevel, cfg.FineLevel = 3, 6, 7
				cfg.LocalCahn, cfg.FineCn, cfg.Delta = true, 0.016, -0.5
			}
			cfg.Params = p
			// Liquid (φ=+1): the pool below y=0.25 united with a drop of
			// radius 0.1 centred at (0.5, 0.6); the gas (φ=-1) fills the
			// rest. Signed distance: negative inside the liquid union.
			dist := func(x, y float64) float64 {
				dPool := y - 0.25
				dDrop := math.Hypot(x-0.5, y-0.6) - 0.1
				return math.Min(dPool, dDrop)
			}
			return Spec{
				Config: cfg,
				Phi0: func(x, y, z float64) float64 {
					return chns.EquilibriumProfile(-dist(x, y), p.Cn)
				},
				// Impact velocity confined to the drop's neighbourhood.
				Vel0: func(x, y, z float64) (float64, float64, float64) {
					r2 := (x-0.5)*(x-0.5) + (y-0.6)*(y-0.6)
					return 0, -1.5 * math.Exp(-r2/(0.12*0.12)), 0
				},
			}
		},
		Validate: func(s *core.Simulation) error {
			return boundedPhi(s, 1.2)
		},
	}
}
