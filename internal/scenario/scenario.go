// Package scenario is the registry of named, self-describing flow cases:
// each scenario packages the physics parameters, refinement policy,
// initial phase field and (optionally) initial velocity of one workload
// at three size presets, plus a cheap post-run validation. Drivers and
// examples look cases up by name instead of hand-rolling configs, and
// checkpoint meta records the (name, preset) pair so a restart can
// rebuild the non-serializable Config through this registry.
package scenario

import (
	"fmt"
	"sort"

	"proteus/internal/core"
	"proteus/internal/par"
)

// Preset selects a size class: smoke is a seconds-scale CI configuration,
// bench the laptop-scale default of the examples, full the largest
// configuration meant for real experiments.
type Preset string

const (
	Smoke Preset = "smoke"
	Bench Preset = "bench"
	Full  Preset = "full"
)

// Presets lists every defined preset, smallest first.
var Presets = []Preset{Smoke, Bench, Full}

// ParsePreset validates a preset name.
func ParsePreset(s string) (Preset, error) {
	switch Preset(s) {
	case Smoke, Bench, Full:
		return Preset(s), nil
	}
	return "", fmt.Errorf("scenario: unknown preset %q (want smoke|bench|full)", s)
}

// Spec is a fully instantiated case: the solver/adaptivity configuration
// plus the initial conditions.
type Spec struct {
	Config core.Config
	Phi0   func(x, y, z float64) float64
	// Vel0, when non-nil, initializes the velocity field (e.g. the jet's
	// axial shear or the falling drop's impact velocity).
	Vel0 func(x, y, z float64) (vx, vy, vz float64)
}

// Scenario is one registered case.
type Scenario struct {
	Name        string
	Description string
	// PaperRef names the figure/table of Saurabh et al. (IPDPS 2023) the
	// case maps to, or the physics reference for cases beyond the paper.
	PaperRef string
	// Build instantiates the case at a preset.
	Build func(pr Preset) Spec
	// Validate checks cheap physical invariants after a (short) run; the
	// CI smoke job calls it on every registered case. Collective-safe:
	// it runs on every rank and must return rank-consistent results.
	Validate func(s *core.Simulation) error
}

// New builds a simulation from the scenario at the given preset, applying
// the initial velocity and stamping the scenario identity used by
// checkpoint meta. Collective.
func (sc Scenario) New(c *par.Comm, pr Preset) *core.Simulation {
	sp := sc.Build(pr)
	return sc.NewFromSpec(c, pr, sp)
}

// NewFromSpec is New for a caller that already built (and possibly
// tweaked) the spec — the CLI's -localcahn override path. Collective.
func (sc Scenario) NewFromSpec(c *par.Comm, pr Preset, sp Spec) *core.Simulation {
	sim := core.New(c, sp.Config, sp.Phi0)
	if sp.Vel0 != nil {
		sim.Solver.SetVelocity(sp.Vel0)
	}
	sim.ScenarioName, sim.PresetName = sc.Name, string(pr)
	return sim
}

var registry = map[string]Scenario{}

// Register adds a scenario; duplicate or anonymous registrations panic.
func Register(sc Scenario) {
	if sc.Name == "" || sc.Build == nil {
		panic("scenario: Register needs a name and a Build function")
	}
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", sc.Name))
	}
	registry[sc.Name] = sc
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// Names returns every registered name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
