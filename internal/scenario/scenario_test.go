package scenario

import (
	"fmt"
	"testing"

	"proteus/internal/ckpt"
	"proteus/internal/core"
	"proteus/internal/par"
)

// TestRegistryComplete checks the built-in catalogue: at least the six
// documented cases, each self-describing and instantiable at every
// preset.
func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("only %d scenarios registered: %v", len(names), names)
	}
	for _, want := range []string{"bubble", "swirl", "jet", "spinodal", "rti", "splash"} {
		sc, ok := Get(want)
		if !ok {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
		if sc.Description == "" || sc.PaperRef == "" || sc.Validate == nil {
			t.Errorf("%s: incomplete self-description: %+v", want, sc)
		}
		for _, pr := range Presets {
			sp := sc.Build(pr)
			if sp.Config.Dim != 2 && sp.Config.Dim != 3 {
				t.Errorf("%s/%s: bad dim %d", want, pr, sp.Config.Dim)
			}
			if sp.Phi0 == nil {
				t.Errorf("%s/%s: nil Phi0", want, pr)
			}
			if sp.Config.InterfaceLevel < sp.Config.BulkLevel {
				t.Errorf("%s/%s: interface level %d below bulk %d", want, pr,
					sp.Config.InterfaceLevel, sp.Config.BulkLevel)
			}
		}
		// Presets order by size: smoke must not out-resolve bench.
		if sc.Build(Smoke).Config.InterfaceLevel > sc.Build(Bench).Config.InterfaceLevel {
			t.Errorf("%s: smoke preset finer than bench", want)
		}
	}
	if _, err := ParsePreset("smoke"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePreset("huge"); err == nil {
		t.Error("ParsePreset accepted an unknown preset")
	}
}

// TestScenarioSmoke is the CI smoke matrix: every registered scenario
// runs a few steps at the smoke preset on 1 and 2 ranks and passes its
// own Validate check.
func TestScenarioSmoke(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Get(name)
		for _, p := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/r%d", name, p), func(t *testing.T) {
				par.Run(p, func(c *par.Comm) {
					sim := sc.New(c, Smoke)
					if sim.ScenarioName != name || sim.PresetName != string(Smoke) {
						panic("scenario identity not stamped on the simulation")
					}
					if _, err := sim.RunUntil(core.RunOptions{Steps: 3}); err != nil {
						panic(err)
					}
					if err := sc.Validate(sim); err != nil {
						panic(fmt.Sprintf("%s failed validation: %v", name, err))
					}
				})
			})
		}
	}
}

// TestCheckpointRestartViaRegistry drives the full production restart
// path: run a scenario, checkpoint, rebuild the config from the
// snapshot's (scenario, preset) meta through the registry, restore at a
// different rank count, and keep running.
func TestCheckpointRestartViaRegistry(t *testing.T) {
	base := t.TempDir() + "/ck"
	var wantDesc string
	par.Run(2, func(c *par.Comm) {
		sc, _ := Get("bubble")
		sim := sc.New(c, Smoke)
		if _, err := sim.RunUntil(core.RunOptions{Steps: 3, FinalCkpt: true, CkptBase: base}); err != nil {
			panic(err)
		}
		d := sim.Describe()
		if c.Rank() == 0 {
			wantDesc = d
		}
	})
	// The driver-side flow: resolve the base to the newest intact
	// generation, then the meta names the scenario and the registry
	// rebuilds the non-serializable Config.
	meta, base, err := ckpt.ReadLatestGood(base)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := Get(meta.Scenario)
	if !ok {
		t.Fatalf("snapshot names unregistered scenario %q", meta.Scenario)
	}
	pr, err := ParsePreset(meta.Preset)
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Build(pr)
	par.Run(4, func(c *par.Comm) {
		sim, err := core.Restore(c, spec.Config, base)
		if err != nil {
			panic(err)
		}
		d := sim.Describe()
		if c.Rank() == 0 && d != wantDesc {
			panic(fmt.Sprintf("restored Describe %q, want %q", d, wantDesc))
		}
		if _, err := sim.RunUntil(core.RunOptions{Steps: 2}); err != nil {
			panic(err)
		}
		if err := sc.Validate(sim); err != nil {
			panic(err)
		}
	})
}
