package mg

import (
	"math"
	"testing"

	"proteus/internal/fem"
	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// gradedMesh builds a distributed 2:1-balanced mesh refined toward a
// disc around (0.35, 0.6): uniform at base, down to fine inside, with
// the leaves sliced evenly across the ranks (the same layout the chns
// tests use, so the hierarchy sees a genuinely non-uniform forest).
func gradedMesh(c *par.Comm, dim, base, fine int) *mesh.Mesh {
	tr := octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Hypot(x-0.35, y-0.6) < 0.25
	}, fine, nil).Balance21(nil)
	p := c.Size()
	n := tr.Len()
	lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
	local := make([]sfc.Octant, hi-lo)
	copy(local, tr.Leaves[lo:hi])
	return mesh.New(c, dim, local)
}

// TestHierarchyCoarsens: the ladder has at least two rungs over a graded
// forest, every rung is strictly globally coarser than the one above,
// and level 0 is the fine mesh itself.
func TestHierarchyCoarsens(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		par.Run(ranks, func(c *par.Comm) {
			m := gradedMesh(c, 2, 2, 5)
			h := NewHierarchy(m, HierarchyOptions{})
			if h.Meshes[0] != m {
				t.Fatal("level 0 must be the fine mesh")
			}
			if h.Levels() < 2 {
				t.Fatalf("ranks=%d: expected a multi-level ladder, got %d levels", ranks, h.Levels())
			}
			prev := globalElems(c, m)
			for l := 1; l < h.Levels(); l++ {
				cnt := globalElems(c, h.Meshes[l])
				if cnt >= prev {
					t.Fatalf("ranks=%d level %d: %d elems, not coarser than %d", ranks, l, cnt, prev)
				}
				prev = cnt
			}
		})
	}
}

// TestTransferLinearExact: multilinear elements reproduce linear fields,
// so both the coarsening injection (Down) and the prolongation (Up)
// must interpolate f(x,y) = 2x - 3y + 1/4 exactly at every owned target
// node, across ranks and through hanging-node constraints.
func TestTransferLinearExact(t *testing.T) {
	f := func(x, y float64) float64 { return 2*x - 3*y + 0.25 }
	fill := func(m *mesh.Mesh) []float64 {
		v := m.NewVec(1)
		for i := 0; i < m.NumLocal; i++ {
			x, y, _ := m.NodeCoord(i)
			v[i] = f(x, y)
		}
		return v
	}
	for _, ranks := range []int{1, 3} {
		par.Run(ranks, func(c *par.Comm) {
			m := gradedMesh(c, 2, 2, 5)
			h := NewHierarchy(m, HierarchyOptions{})
			for l := 1; l < h.Levels(); l++ {
				fineM, coarseM := h.Meshes[l-1], h.Meshes[l]
				down := fill(fineM)
				got := coarseM.NewVec(1)
				h.Down[l].Eval(down, 1, got, true)
				for i := 0; i < coarseM.NumOwned; i++ {
					x, y, _ := coarseM.NodeCoord(i)
					if math.Abs(got[i]-f(x, y)) > 1e-12 {
						t.Fatalf("ranks=%d down %d: node %d got %v want %v", ranks, l, i, got[i], f(x, y))
					}
				}
				up := fill(coarseM)
				got2 := fineM.NewVec(1)
				h.Up[l].Eval(up, 1, got2, true)
				for i := 0; i < fineM.NumOwned; i++ {
					x, y, _ := fineM.NodeCoord(i)
					if math.Abs(got2[i]-f(x, y)) > 1e-12 {
						t.Fatalf("ranks=%d up %d: node %d got %v want %v", ranks, l, i, got2[i], f(x, y))
					}
				}
			}
		})
	}
}

// TestTransferTranspose: Restrict is the exact transpose of Eval on the
// prolongation transfers — ⟨P x, y⟩ over fine owned nodes equals
// ⟨x, Pᵀ y⟩ over coarse owned nodes up to global-sum rounding.
func TestTransferTranspose(t *testing.T) {
	for _, ranks := range []int{1, 2} {
		par.Run(ranks, func(c *par.Comm) {
			m := gradedMesh(c, 2, 2, 5)
			h := NewHierarchy(m, HierarchyOptions{})
			for l := 1; l < h.Levels(); l++ {
				fineM, coarseM := h.Meshes[l-1], h.Meshes[l]
				x := coarseM.NewVec(1)
				for i := 0; i < coarseM.NumLocal; i++ {
					cx, cy, _ := coarseM.NodeCoord(i)
					x[i] = math.Sin(7*cx) + math.Cos(5*cy)
				}
				y := fineM.NewVec(1)
				for i := 0; i < fineM.NumOwned; i++ {
					fx, fy, _ := fineM.NodeCoord(i)
					y[i] = fx*fy + 0.5*fx - fy
				}
				px := fineM.NewVec(1)
				h.Up[l].Eval(x, 1, px, true)
				var a float64
				for i := 0; i < fineM.NumOwned; i++ {
					a += px[i] * y[i]
				}
				a = fineM.GlobalSum(a)
				pty := coarseM.NewVec(1)
				h.Up[l].Restrict(y, 1, pty)
				var b float64
				for i := 0; i < coarseM.NumOwned; i++ {
					b += x[i] * pty[i]
				}
				b = coarseM.GlobalSum(b)
				if math.Abs(a-b) > 1e-10*(1+math.Abs(a)) {
					t.Fatalf("ranks=%d level %d: <Px,y>=%v <x,P'y>=%v", ranks, l, a, b)
				}
			}
		})
	}
}

// testOperator assembles M + K with unit coefficients on mesh m, pinned
// to one assembly worker so the operator values are identical for every
// pool configuration.
func testOperator(m *mesh.Mesh) *la.BSRMat {
	asm := fem.NewAssembler(m, 1)
	asm.SetWorkers(1)
	mat := asm.NewMatrix(fem.LayoutAIJ)
	asm.AssembleMatrix(mat, fem.LayoutAIJ, func(w, e int, h float64, ke []float64) {
		asm.Ref.Mass(h, 1, ke)
		asm.Ref.Stiffness(h, 1, ke)
	})
	return mat
}

// testConfig is the Ndof-1 GMG setup used by the cycle tests: no
// injected coefficients, coarse operators assembled as M + K.
func testConfig() Config {
	return Config{
		Ndof: 1,
		Assemble: func(lvl *Level) {
			kern, ok := lvl.Scratch.(func(w, e int, h float64, ke []float64))
			if !ok {
				r := lvl.Asm.Ref
				kern = func(w, e int, h float64, ke []float64) {
					r.Mass(h, 1, ke)
					r.Stiffness(h, 1, ke)
				}
				lvl.Scratch = kern
			}
			lvl.Asm.AssembleMatrix(lvl.Mat, fem.LayoutAIJ, kern)
		},
	}
}

// TestVCycleWorkerBitwise: one V-cycle application is bitwise identical
// for any worker-pool size at every rank count — only the shard-canonical
// SpMV uses the pool, so parallelism inside a rank never perturbs the
// preconditioner (the same discipline the stage assembly follows).
func TestVCycleWorkerBitwise(t *testing.T) {
	run := func(ranks, nw int) map[mesh.NodeKey]float64 {
		out := map[mesh.NodeKey]float64{}
		par.Run(ranks, func(c *par.Comm) {
			m := gradedMesh(c, 2, 2, 5)
			h := NewHierarchy(m, HierarchyOptions{})
			mat := testOperator(m)
			pool := par.NewPool(nw)
			defer pool.Close()
			mat.SetPool(pool)
			g := NewPCGMG(h, pool, testConfig())
			g.SetFineOperator(mat)
			g.Refresh()
			r := m.NewVec(1)
			for i := 0; i < m.NumOwned; i++ {
				x, y, _ := m.NodeCoord(i)
				r[i] = math.Sin(13*x)*math.Cos(9*y) + x - y
			}
			z := m.NewVec(1)
			g.Apply(r[:m.NumOwned], z[:m.NumOwned])
			type kv struct {
				K mesh.NodeKey
				V float64
			}
			var local []kv
			for i := 0; i < m.NumOwned; i++ {
				local = append(local, kv{m.Keys[i], z[i]})
			}
			all := par.Allgatherv(c, local)
			if c.Rank() == 0 {
				for _, e := range all {
					out[e.K] = e.V
				}
			}
		})
		return out
	}
	for _, ranks := range []int{1, 2, 4} {
		base := run(ranks, 1)
		if len(base) == 0 {
			t.Fatal("no output collected")
		}
		for _, nw := range []int{2, 4} {
			got := run(ranks, nw)
			if len(got) != len(base) {
				t.Fatalf("ranks=%d nw=%d: node sets differ", ranks, nw)
			}
			for k, v := range base {
				if got[k] != v {
					t.Fatalf("ranks=%d nw=%d node %v: serial %v sharded %v (not bitwise)", ranks, nw, k, v, got[k])
				}
			}
		}
	}
}

// TestGMGAcceleratesCG: CG on the graded-mesh M + K system needs
// strictly fewer iterations with the V-cycle than with point Jacobi,
// and the hierarchy pays off identically at any rank count.
func TestGMGAcceleratesCG(t *testing.T) {
	solve := func(ranks int, useGMG bool) (its int, ok bool) {
		par.Run(ranks, func(c *par.Comm) {
			m := gradedMesh(c, 2, 2, 5)
			mat := testOperator(m)
			var pc la.PC
			if useGMG {
				g := NewPCGMG(NewHierarchy(m, HierarchyOptions{}), nil, testConfig())
				g.SetFineOperator(mat)
				g.Refresh()
				pc = g
			} else {
				pc = la.NewPCJacobi(mat)
			}
			b := m.NewVec(1)
			for i := 0; i < m.NumOwned; i++ {
				x, y, _ := m.NodeCoord(i)
				b[i] = math.Sin(3 * x * y)
			}
			x := m.NewVec(1)
			ksp := &la.KSP{Type: la.CG, Rtol: 1e-10, Op: mat, PC: pc, Red: m}
			res, err := ksp.Solve(b, x)
			if err != nil {
				panic(err)
			}
			if c.Rank() == 0 {
				its, ok = res.Iterations, res.Converged
			}
		})
		return its, ok
	}
	for _, ranks := range []int{1, 2} {
		gmgIts, ok := solve(ranks, true)
		if !ok {
			t.Fatalf("ranks=%d: GMG-CG did not converge", ranks)
		}
		jacIts, ok := solve(ranks, false)
		if !ok {
			t.Fatalf("ranks=%d: Jacobi-CG did not converge", ranks)
		}
		if gmgIts >= jacIts {
			t.Fatalf("ranks=%d: GMG %d iterations, Jacobi %d — no speedup", ranks, gmgIts, jacIts)
		}
		t.Logf("ranks=%d: CG iterations gmg=%d jacobi=%d", ranks, gmgIts, jacIts)
	}
}

// TestVCycleWarmApplyZeroAlloc: once the hierarchy and level state are
// warm, both Refresh and Apply allocate nothing (serial rank — the same
// discipline the chns warm-step test enforces end to end).
func TestVCycleWarmApplyZeroAlloc(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		m := gradedMesh(c, 2, 2, 5)
		h := NewHierarchy(m, HierarchyOptions{})
		mat := testOperator(m)
		g := NewPCGMG(h, nil, testConfig())
		g.SetFineOperator(mat)
		g.Refresh()
		r := m.NewVec(1)
		for i := 0; i < m.NumOwned; i++ {
			x, y, _ := m.NodeCoord(i)
			r[i] = x - y*y
		}
		z := m.NewVec(1)
		g.Apply(r[:m.NumOwned], z[:m.NumOwned])
		if a := testing.AllocsPerRun(10, func() { g.Refresh() }); a != 0 {
			t.Fatalf("warm Refresh allocates %v/op", a)
		}
		if a := testing.AllocsPerRun(10, func() { g.Apply(r[:m.NumOwned], z[:m.NumOwned]) }); a != 0 {
			t.Fatalf("warm Apply allocates %v/op", a)
		}
	})
}
