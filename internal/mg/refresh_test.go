package mg

import (
	"math"
	"testing"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// refineDisc refines every leaf whose center lies inside the disc by one
// level, leaving the rest untouched (the local half of a remesh round).
func refineDisc(dim int, leaves []sfc.Octant, cx, cy, r float64, maxLevel int) []sfc.Octant {
	var out []sfc.Octant
	for _, o := range leaves {
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		if int(o.Level) < maxLevel && math.Hypot(x-cx, y-cy) < r {
			for ch := 0; ch < o.NumChildren(); ch++ {
				out = append(out, o.Child(ch))
			}
		} else {
			out = append(out, o)
		}
	}
	return out
}

// transferFill evaluates a deterministic smooth field at every local node,
// ghosts included, so Eval/Restrict need no exchange and two bitwise-equal
// meshes receive bitwise-equal inputs.
func transferFill(m *mesh.Mesh) []float64 {
	v := m.NewVec(1)
	for i := 0; i < m.NumLocal; i++ {
		x, y, _ := m.NodeCoord(i)
		v[i] = math.Sin(11*x+3*y) + x*y - 0.5*y
	}
	return v
}

// mustEqualHierarchies asserts the delta-aware refresh reproduced the
// from-scratch ladder bitwise: same depth, identical per-level forests and
// node sets, and Down/Up transfers that act identically on a deterministic
// field (Eval both ways plus the Up restriction).
func mustEqualHierarchies(t *testing.T, kind string, ranks int, got, want *Hierarchy) {
	t.Helper()
	if got.Levels() != want.Levels() {
		t.Fatalf("%s ranks=%d: refreshed ladder has %d levels, from-scratch %d", kind, ranks, got.Levels(), want.Levels())
	}
	if got.Meshes[0] != want.Meshes[0] {
		t.Fatalf("%s ranks=%d: level 0 must alias the fine mesh", kind, ranks)
	}
	for l := 1; l < got.Levels(); l++ {
		gm, wm := got.Meshes[l], want.Meshes[l]
		if len(gm.Elems) != len(wm.Elems) || gm.NumOwned != wm.NumOwned || gm.NumLocal != wm.NumLocal {
			t.Fatalf("%s ranks=%d level %d: shape differs (%d/%d/%d elems/owned/local vs %d/%d/%d)",
				kind, ranks, l, len(gm.Elems), gm.NumOwned, gm.NumLocal, len(wm.Elems), wm.NumOwned, wm.NumLocal)
		}
		for i := range gm.Elems {
			if !gm.Elems[i].EqualKey(wm.Elems[i]) {
				t.Fatalf("%s ranks=%d level %d: elem %d differs", kind, ranks, l, i)
			}
		}
		for i := 0; i < gm.NumLocal; i++ {
			if gm.Keys[i] != wm.Keys[i] {
				t.Fatalf("%s ranks=%d level %d: node key %d differs", kind, ranks, l, i)
			}
		}
		fineM, coarseM := got.Meshes[l-1], got.Meshes[l]
		down := transferFill(fineM)
		a, b := coarseM.NewVec(1), coarseM.NewVec(1)
		got.Down[l].Eval(down, 1, a, true)
		want.Down[l].Eval(down, 1, b, true)
		for i := 0; i < coarseM.NumOwned; i++ {
			if a[i] != b[i] {
				t.Fatalf("%s ranks=%d level %d: Down.Eval differs at node %d: %v vs %v (not bitwise)", kind, ranks, l, i, a[i], b[i])
			}
		}
		up := transferFill(coarseM)
		pa, pb := fineM.NewVec(1), fineM.NewVec(1)
		got.Up[l].Eval(up, 1, pa, true)
		want.Up[l].Eval(up, 1, pb, true)
		for i := 0; i < fineM.NumOwned; i++ {
			if pa[i] != pb[i] {
				t.Fatalf("%s ranks=%d level %d: Up.Eval differs at node %d: %v vs %v (not bitwise)", kind, ranks, l, i, pa[i], pb[i])
			}
		}
		ra, rb := coarseM.NewVec(1), coarseM.NewVec(1)
		got.Up[l].Restrict(down, 1, ra)
		want.Up[l].Restrict(down, 1, rb)
		for i := 0; i < coarseM.NumOwned; i++ {
			if ra[i] != rb[i] {
				t.Fatalf("%s ranks=%d level %d: Up.Restrict differs at node %d: %v vs %v (not bitwise)", kind, ranks, l, i, ra[i], rb[i])
			}
		}
	}
}

// TestRefreshHierarchyDeltaBitwise: the delta-aware refresh — level reuse,
// in-place level patching and transfer patching included — reproduces the
// from-scratch ladder bitwise, on a partition-stable patch round and on a
// splitter-moved (migrate-then-patch) round, at 1, 2 and 4 ranks.
func TestRefreshHierarchyDeltaBitwise(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		par.Run(ranks, func(c *par.Comm) {
			opts := HierarchyOptions{}
			var ws Workspace
			m0 := gradedMesh(c, 2, 2, 5)
			prevH, _ := RefreshHierarchy(m0, nil, nil, &ws, opts)

			// Round 1: refine a disc and ripple the 2:1 balance without
			// repartitioning — the splitters stay put and mesh.Patch
			// engages (serially it always does). If the balance ripple
			// crossed a rank boundary, fall back to the migrated patch so
			// the round still hands the refresh a composed delta.
			refined := refineDisc(2, m0.Elems, 0.55, 0.35, 0.12, 6)
			balanced := octree.Balance21Distributed(c, 2, refined, nil)
			m1, d1 := mesh.Patch(c, 2, balanced, m0, octree.AddedLeaves(m0.Elems, balanced))
			if m1 == nil {
				m1, _, d1 = mesh.PatchMigrated(m0, balanced)
			}
			if d1 == nil {
				panic("round 1 produced no delta")
			}
			got1, res1 := RefreshHierarchy(m1, prevH, d1, &ws, opts)
			mustEqualHierarchies(t, "stable", ranks, got1, NewHierarchy(m1, opts))
			if ranks == 1 {
				// Serially every splitter table is trivially stable, so each
				// coarse level with a predecessor must be carried — reused or
				// patched, never cold. (A deeper new ladder may add levels
				// below the old one; those have nothing to carry from.)
				carry := got1.Levels() - 1
				if p := prevH.Levels() - 1; p < carry {
					carry = p
				}
				if res1.LevelsReused+res1.LevelsPatched != carry {
					t.Fatalf("serial stable round built a coarse level cold: reused=%d patched=%d want %d carried",
						res1.LevelsReused, res1.LevelsPatched, carry)
				}
			}

			// Round 2: refine elsewhere, then skew the partition weights by
			// position so the splitters move and the round must take the
			// migrate-then-patch path (PatchMigrated composes the delta).
			refined2 := refineDisc(2, m1.Elems, 0.3, 0.7, 0.1, 6)
			balanced2 := octree.Balance21Distributed(c, 2, refined2, nil)
			w := make([]float64, len(balanced2))
			for i, o := range balanced2 {
				s := float64(o.Side()) / float64(sfc.MaxCoord)
				x := float64(o.X)/float64(sfc.MaxCoord) + s/2
				w[i] = 1 + 6*x
			}
			moved := octree.PartitionWeighted(c, balanced2, w)
			m2, _, d2 := mesh.PatchMigrated(m1, moved)
			if m2 == nil || d2 == nil {
				panic("round 2 migrated patch failed")
			}
			got2, _ := RefreshHierarchy(m2, got1, d2, &ws, opts)
			mustEqualHierarchies(t, "moved", ranks, got2, NewHierarchy(m2, opts))
		})
	}
}
