package mg

import (
	"proteus/internal/fem"
	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/par"
)

// Coefficient names one fine-mesh field the level operators depend on
// (e.g. φ/μ for the mixture density, the velocity for convection). Refresh
// injects each down the ladder before reassembling the level operators.
type Coefficient struct {
	Vec  []float64 // full local fine-mesh vector (aliased, not copied)
	Ndof int
}

// Config fixes one GMG preconditioner instance.
type Config struct {
	// Ndof is the dofs per node of the preconditioned system.
	Ndof int
	// Coefs are the fine-mesh fields the level operators are assembled
	// from; Refresh re-injects them to every level.
	Coefs []Coefficient
	// Assemble fills lvl.Mat (already allocated/zeroed) from lvl.Coef on a
	// coarse level, including the level's boundary-condition row edits. It
	// runs serially per rank (the level assemblers are pinned to one
	// worker so reassembly is bitwise reproducible at any pool size).
	Assemble func(lvl *Level)
	// BoundaryDirichlet masks domain-boundary rows in the inter-level
	// transfers (restricted residuals and prolonged corrections), for
	// systems with Dirichlet walls on every level (the NS velocity block).
	BoundaryDirichlet bool
	// Smoother selects the per-level smoother: "ilu0" (default, the
	// rank-block ILU(0) used by the Table II stages) or "jacobi".
	Smoother string
	// PreSmooth/PostSmooth are the smoothing sweeps per level on the way
	// down/up (defaults 1/1); CoarseSmooth is the sweep count standing in
	// for a direct solve on the coarsest level (default 8).
	PreSmooth, PostSmooth, CoarseSmooth int
	// Omega is the smoother damping (default 1 for ilu0, 2/3 for jacobi).
	Omega float64
}

func (c *Config) defaults() {
	if c.Smoother == "" {
		c.Smoother = "ilu0"
	}
	if c.PreSmooth == 0 {
		c.PreSmooth = 1
	}
	if c.PostSmooth == 0 {
		c.PostSmooth = 1
	}
	if c.CoarseSmooth == 0 {
		c.CoarseSmooth = 8
	}
	if c.Omega == 0 {
		if c.Smoother == "jacobi" {
			c.Omega = 2.0 / 3.0
		} else {
			c.Omega = 1
		}
	}
}

// Level is one rung of the preconditioner: its mesh, the frozen-sparsity
// assembler and operator, the injected coefficient fields, and the cycle
// work vectors. The Assemble callback sees the exported fields; Scratch
// is its hook for per-level kernel workspace (allocated on first use, so
// warm refreshes stay allocation-free).
type Level struct {
	M       *mesh.Mesh
	Asm     *fem.Assembler // nil on the fine level (operator comes from the stage)
	Mat     *la.BSRMat
	Coef    [][]float64
	Scratch any

	smoother la.PC
	// pending is a one-shot row patch left by Rebind: the next
	// refreshSmoother consumes it to carry the smoother's factorization
	// index across the remesh instead of dropping the smoother.
	pending    *la.RowPatch
	bnd        []int32 // Dirichlet dof-rows (owned), nil unless BoundaryDirichlet
	x, b, r, t []float64
}

// PCGMG is a geometric multigrid V-cycle preconditioner over a Hierarchy,
// pluggable wherever the stage PCs go (la.PC + la.Refresher). The fine
// operator is the stage's own matrix (SetFineOperator); coarse operators
// are reassembled from injected coefficients on every Refresh. Apply runs
// a single V-cycle with fixed sweep counts and no inner reductions, so it
// is a fixed linear operator, collective-consistent at any rank count,
// and bitwise independent of the worker-pool size (only the already
// shard-canonical SpMV uses the pool; smoothing, transfers and vector
// updates are serial per rank).
type PCGMG struct {
	h    *Hierarchy
	cfg  Config
	pool *par.Pool
	lv   []*Level
	// rowsKept/rowsRebuilt accumulate, across Rebind-pended smoother
	// refreshes, how many owned ILU(0) rows carried their factorization
	// index vs re-resolved it (TakeRebindStats drains them).
	rowsKept, rowsRebuilt int
}

// NewPCGMG builds the per-level state over an existing hierarchy. pool
// (may be nil) is attached to the level operators for sharded SpMV; level
// assembly itself is pinned serial for reproducibility. Collective (level
// mesh vector setup only — no communication).
func NewPCGMG(h *Hierarchy, pool *par.Pool, cfg Config) *PCGMG {
	cfg.defaults()
	p := &PCGMG{h: h, cfg: cfg, pool: pool}
	for l, m := range h.Meshes {
		p.lv = append(p.lv, p.newLevel(l, m))
	}
	return p
}

// newLevel builds one rung's state against mesh m (l == 0: the fine level,
// whose coefficients alias the stage fields and whose operator the stage
// supplies).
func (p *PCGMG) newLevel(l int, m *mesh.Mesh) *Level {
	cfg := &p.cfg
	lvl := &Level{M: m}
	lvl.Coef = make([][]float64, len(cfg.Coefs))
	if l == 0 {
		for i, cf := range cfg.Coefs {
			lvl.Coef[i] = cf.Vec
		}
	} else {
		lvl.Asm = fem.NewAssembler(m, cfg.Ndof)
		lvl.Asm.SetWorkers(1)
		if p.pool != nil {
			lvl.Asm.SetPool(p.pool)
		}
		for i, cf := range cfg.Coefs {
			lvl.Coef[i] = m.NewVec(cf.Ndof)
		}
	}
	lvl.bnd = levelBnd(m, cfg, nil)
	lvl.x = m.NewVec(cfg.Ndof)
	lvl.b = m.NewVec(cfg.Ndof)
	lvl.r = m.NewVec(cfg.Ndof)
	lvl.t = m.NewVec(cfg.Ndof)
	return lvl
}

// levelBnd collects the owned Dirichlet dof-rows of m into bnd (reusing its
// storage), or returns nil when the config has no Dirichlet walls.
func levelBnd(m *mesh.Mesh, cfg *Config, bnd []int32) []int32 {
	bnd = bnd[:0]
	if !cfg.BoundaryDirichlet {
		return nil
	}
	for i := 0; i < m.NumOwned; i++ {
		if m.OnBoundary(i) {
			for d := 0; d < cfg.Ndof; d++ {
				bnd = append(bnd, int32(i*cfg.Ndof+d))
			}
		}
	}
	return bnd
}

// Levels returns the number of grid levels the cycle runs over.
func (p *PCGMG) Levels() int { return len(p.lv) }

// Hierarchy returns the mesh ladder this preconditioner cycles over.
func (p *PCGMG) Hierarchy() *Hierarchy { return p.h }

// SetFineOperator points level 0 at the stage's assembled fine matrix.
// Call before every Refresh; a changed operator object drops the fine
// smoother so it is rebuilt against the new matrix — unless a Rebind left
// a pending row patch, in which case the smoother is carried and re-keyed
// by the next refresh.
func (p *PCGMG) SetFineOperator(mat *la.BSRMat) {
	f := p.lv[0]
	if f.Mat != mat {
		f.Mat = mat
		if f.pending == nil {
			f.smoother = nil
		}
	}
}

// Rebind re-keys the preconditioner onto a refreshed hierarchy after an
// incremental remesh (h and res from RefreshHierarchy over the ladder this
// PC was built on), without reallocating what the refresh proved intact.
// Reused levels keep everything — assembler, operator, smoother, work
// vectors and kernel scratch. Patched levels repair their frozen-sparsity
// assembler through fem.RebindPatched, resize their vectors, and leave the
// smoother a pending row patch so the next Refresh carries its
// factorization index. Cold levels are rebuilt. coefs are the stage's
// (reallocated) fine-mesh coefficient fields; finePatch is the fine-level
// row patch for the stage smoother (nil: drop it cold). Call
// SetFineOperator + Refresh afterwards, as on every step. Collective.
func (p *PCGMG) Rebind(h *Hierarchy, res *RefreshResult, coefs []Coefficient, epoch uint64, finePatch *la.RowPatch) {
	cfg := &p.cfg
	if len(coefs) != len(cfg.Coefs) {
		panic("mg: PCGMG.Rebind coefficient count mismatch")
	}
	cfg.Coefs = coefs
	old := p.lv
	lv := make([]*Level, 0, len(h.Meshes))
	for l, m := range h.Meshes {
		var st LevelState
		if res != nil && l < len(res.Levels) {
			st = res.Levels[l]
		}
		switch {
		case l == 0:
			f := old[0]
			f.M = m
			for i, cf := range cfg.Coefs {
				f.Coef[i] = cf.Vec
			}
			f.Mat = nil
			f.bnd = levelBnd(m, cfg, f.bnd)
			f.x = m.NewVec(cfg.Ndof)
			f.b = m.NewVec(cfg.Ndof)
			f.r = m.NewVec(cfg.Ndof)
			f.t = m.NewVec(cfg.Ndof)
			if f.smoother != nil {
				if finePatch != nil {
					f.pending = finePatch
				} else {
					f.smoother = nil
				}
			}
			lv = append(lv, f)
		case st.Reused && l < len(old):
			// Mesh object unchanged: operator values are refreshed (and the
			// smoother refactored) by the next Refresh as on any warm step.
			lv = append(lv, old[l])
		case st.Delta != nil && l < len(old) && old[l].Asm != nil:
			lvl := old[l]
			lvl.Asm.RebindPatched(m, epoch, st.Delta)
			lvl.M = m
			lvl.Mat = nil     // recreated from the patched plan by Refresh
			lvl.Scratch = nil // kernel closures captured the old mesh/coefs
			for i, cf := range cfg.Coefs {
				lvl.Coef[i] = m.NewVec(cf.Ndof)
			}
			lvl.bnd = levelBnd(m, cfg, lvl.bnd)
			lvl.x = m.NewVec(cfg.Ndof)
			lvl.b = m.NewVec(cfg.Ndof)
			lvl.r = m.NewVec(cfg.Ndof)
			lvl.t = m.NewVec(cfg.Ndof)
			if lvl.smoother != nil {
				lvl.pending = NodeRowPatch(st.Delta, st.OldOwned, m.NumOwned, cfg.Ndof)
			}
			lv = append(lv, lvl)
		default:
			lv = append(lv, p.newLevel(l, m))
		}
	}
	p.h = h
	p.lv = lv
}

// TakeRebindStats drains the accumulated remesh carry-over counters: owned
// smoother rows whose ILU(0) factorization index was carried vs rebuilt.
func (p *PCGMG) TakeRebindStats() (kept, rebuilt int) {
	kept, rebuilt = p.rowsKept, p.rowsRebuilt
	p.rowsKept, p.rowsRebuilt = 0, 0
	return kept, rebuilt
}

// NodeRowPatch expands a mesh delta's node remap into the owned scalar-row
// patch of an nd-dof-per-node operator (node-major, dof-minor rows): what
// la's preconditioners consume to carry their factorization indices across
// an incremental remesh. oldOwned/newOwned are the owned-node counts of the
// two mesh generations.
func NodeRowPatch(d *mesh.Delta, oldOwned, newOwned, nd int) *la.RowPatch {
	rp := &la.RowPatch{
		Remap: make([]int32, oldOwned*nd),
		Dirty: make([]bool, newOwned*nd),
	}
	for on := 0; on < oldOwned; on++ {
		nn := int32(-1)
		if on < len(d.NodeRemap) {
			nn = d.NodeRemap[on]
		}
		if nn >= 0 && int(nn) < newOwned {
			for dd := 0; dd < nd; dd++ {
				rp.Remap[on*nd+dd] = nn*int32(nd) + int32(dd)
			}
		} else {
			for dd := 0; dd < nd; dd++ {
				rp.Remap[on*nd+dd] = -1
			}
		}
	}
	for nn := 0; nn < newOwned && nn < len(d.DirtyNode); nn++ {
		if d.DirtyNode[nn] {
			for dd := 0; dd < nd; dd++ {
				rp.Dirty[nn*nd+dd] = true
			}
		}
	}
	return rp
}

// Refresh re-injects the coefficient fields down the ladder, reassembles
// every coarse-level operator in place through the warm assembly plan,
// and refactors the smoothers — the in-place refresh contract the other
// stage PCs follow. Collective; allocation-free once warm.
func (p *PCGMG) Refresh() {
	for l := 1; l < len(p.lv); l++ {
		fine, lvl := p.lv[l-1], p.lv[l]
		for i, cf := range p.cfg.Coefs {
			p.h.Down[l].Eval(fine.Coef[i], cf.Ndof, lvl.Coef[i], false)
			lvl.M.GhostRead(lvl.Coef[i], cf.Ndof)
		}
	}
	for l := 1; l < len(p.lv); l++ {
		lvl := p.lv[l]
		if lvl.Mat == nil {
			lvl.Mat = lvl.Asm.NewMatrix(fem.LayoutAIJ)
		} else {
			lvl.Mat.Zero()
		}
		p.cfg.Assemble(lvl)
		p.refreshSmoother(lvl)
	}
	p.refreshSmoother(p.lv[0])
}

func (p *PCGMG) refreshSmoother(lvl *Level) {
	if lvl.smoother == nil {
		lvl.pending = nil
		if p.cfg.Smoother == "jacobi" {
			lvl.smoother = la.NewPCJacobi(lvl.Mat)
		} else {
			lvl.smoother = la.NewPCBJacobiILU0(lvl.Mat)
		}
		return
	}
	if patch := lvl.pending; patch != nil {
		// One-shot remesh carry-over: re-key the smoother onto the level's
		// rebuilt operator, keeping the factorization index of clean rows.
		lvl.pending = nil
		switch sm := lvl.smoother.(type) {
		case *la.PCBJacobiILU0:
			kept, rebuilt := sm.RebindPatched(lvl.Mat, patch)
			p.rowsKept += kept
			p.rowsRebuilt += rebuilt
		case *la.PCJacobi:
			sm.Rebind(lvl.Mat)
		default:
			lvl.smoother = nil
			p.refreshSmoother(lvl)
		}
		return
	}
	lvl.smoother.(la.Refresher).Refresh()
}

// Apply runs one V-cycle on r, writing the correction to z (owned
// segments, as the KSP passes them). Collective.
func (p *PCGMG) Apply(r, z []float64) {
	lv := p.lv
	L := len(lv)
	ndof := p.cfg.Ndof
	f := lv[0]
	n0 := f.M.NumOwned * ndof
	copy(f.b[:n0], r[:n0])
	for l := 0; l < L-1; l++ {
		lvl := lv[l]
		zero(lvl.x)
		p.smooth(lvl, p.cfg.PreSmooth, true)
		n := lvl.M.NumOwned * ndof
		lvl.Mat.Apply(lvl.x, lvl.t)
		for i := 0; i < n; i++ {
			lvl.r[i] = lvl.b[i] - lvl.t[i]
		}
		maskRows(lvl.r, lvl.bnd)
		next := lv[l+1]
		p.h.Up[l+1].Restrict(lvl.r, ndof, next.b)
		maskRows(next.b, next.bnd)
	}
	last := lv[L-1]
	zero(last.x)
	p.smooth(last, p.cfg.CoarseSmooth, true)
	for l := L - 2; l >= 0; l-- {
		lvl, next := lv[l], lv[l+1]
		p.h.Up[l+1].Eval(next.x, ndof, lvl.t, false)
		maskRows(lvl.t, lvl.bnd)
		n := lvl.M.NumOwned * ndof
		for i := 0; i < n; i++ {
			lvl.x[i] += lvl.t[i]
		}
		p.smooth(lvl, p.cfg.PostSmooth, false)
	}
	copy(z[:n0], f.x[:n0])
}

// smooth runs damped-relaxation sweeps x += ω M⁻¹ (b - A x) on one level.
// xZero skips the first residual SpMV when x is known to be zero (the
// skip is taken uniformly on every rank, keeping the collective schedule
// aligned).
func (p *PCGMG) smooth(lvl *Level, sweeps int, xZero bool) {
	n := lvl.M.NumOwned * p.cfg.Ndof
	om := p.cfg.Omega
	for s := 0; s < sweeps; s++ {
		if s == 0 && xZero {
			copy(lvl.r[:n], lvl.b[:n])
		} else {
			lvl.Mat.Apply(lvl.x, lvl.t)
			for i := 0; i < n; i++ {
				lvl.r[i] = lvl.b[i] - lvl.t[i]
			}
		}
		lvl.smoother.Apply(lvl.r[:n], lvl.t[:n])
		for i := 0; i < n; i++ {
			lvl.x[i] += om * lvl.t[i]
		}
	}
}

func maskRows(v []float64, rows []int32) {
	for _, r := range rows {
		v[r] = 0
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
