package mg

import (
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// HierarchyOptions bounds the coarsening ladder.
type HierarchyOptions struct {
	// MaxLevels caps the total number of levels including the fine mesh
	// (default 8).
	MaxLevels int
	// CoarseElems stops coarsening once the global element count is at or
	// below this (default 16): the coarsest level is then cheap enough to
	// solve by smoothing alone.
	CoarseElems int64
	// MinLevel is the coarsest octree level any leaf may reach (default 1).
	MinLevel int
}

func (o *HierarchyOptions) defaults() {
	if o.MaxLevels == 0 {
		o.MaxLevels = 8
	}
	if o.CoarseElems == 0 {
		o.CoarseElems = 16
	}
	if o.MinLevel == 0 {
		o.MinLevel = 1
	}
}

// Hierarchy is the geometric multigrid mesh ladder shared by every GMG
// preconditioner on one fine mesh: level 0 is the fine mesh itself, each
// deeper level coarsens every leaf one octree level (consensus
// coarsening), re-balances 2:1 and repartitions, then rebuilds the
// distributed CG mesh. The ladder is built once per mesh epoch and
// invalidated with it.
type Hierarchy struct {
	// Meshes[0] is the fine mesh (owned by the caller); deeper entries are
	// owned by the hierarchy.
	Meshes []*mesh.Mesh
	// Down[l] (l >= 1) evaluates level-(l-1) fields at level-l owned nodes:
	// the coefficient-injection operator.
	Down []*Transfer
	// Up[l] (l >= 1) evaluates level-l fields at level-(l-1) owned nodes:
	// prolongation; its Restrict is the matching residual restriction.
	Up []*Transfer
}

// NewHierarchy builds the ladder under fine. Collective; the same option
// values must be passed on every rank. The ladder always has at least the
// fine level; it stops early when coarsening makes no global progress.
func NewHierarchy(fine *mesh.Mesh, o HierarchyOptions) *Hierarchy {
	o.defaults()
	c := fine.Comm
	dim := fine.Dim
	h := &Hierarchy{
		Meshes: []*mesh.Mesh{fine},
		Down:   []*Transfer{nil},
		Up:     []*Transfer{nil},
	}
	cur := fine
	prev := globalElems(c, cur)
	for len(h.Meshes) < o.MaxLevels && prev > o.CoarseElems {
		leaves := append([]sfc.Octant(nil), cur.Elems...)
		targets := make([]int, len(leaves))
		for i, lf := range leaves {
			t := int(lf.Level) - 1
			if t < o.MinLevel {
				t = o.MinLevel
			}
			targets[i] = t
		}
		coarse := octree.ParCoarsen(c, dim, leaves, targets)
		coarse = octree.Balance21Distributed(c, dim, coarse, nil)
		coarse = octree.PartitionWeighted(c, coarse, nil)
		cnt := par.Allreduce(c, int64(len(coarse)), func(a, b int64) int64 { return a + b })
		if cnt >= prev {
			break
		}
		cm := mesh.New(c, dim, coarse)
		h.Down = append(h.Down, NewTransfer(cur, cm.Keys[:cm.NumOwned]))
		h.Up = append(h.Up, NewTransfer(cm, cur.Keys[:cur.NumOwned]))
		h.Meshes = append(h.Meshes, cm)
		cur, prev = cm, cnt
	}
	return h
}

// Levels returns the number of levels in the ladder (>= 1).
func (h *Hierarchy) Levels() int { return len(h.Meshes) }

// RefreshHierarchy rebuilds the ladder under a remeshed fine mesh,
// reusing every coarse level of prev whose forest (leaves and partition)
// is unchanged — the coarsening, balancing and partitioning per level are
// deterministic, so an unchanged coarse forest implies mesh.New would
// reproduce the previous level's mesh exactly, and the object is reused
// instead. A level's transfers are reused only when both adjacent meshes
// were (level 1 never is: the fine mesh object is always new). Returns
// the ladder and the number of reused coarse levels; the result is
// bitwise identical to NewHierarchy(fine, o). Collective.
func RefreshHierarchy(fine *mesh.Mesh, prev *Hierarchy, o HierarchyOptions) (*Hierarchy, int) {
	if prev == nil {
		return NewHierarchy(fine, o), 0
	}
	o.defaults()
	c := fine.Comm
	dim := fine.Dim
	h := &Hierarchy{
		Meshes: []*mesh.Mesh{fine},
		Down:   []*Transfer{nil},
		Up:     []*Transfer{nil},
	}
	cur := fine
	prevCnt := globalElems(c, cur)
	curReused := false
	reusedLevels := 0
	for len(h.Meshes) < o.MaxLevels && prevCnt > o.CoarseElems {
		leaves := append([]sfc.Octant(nil), cur.Elems...)
		targets := make([]int, len(leaves))
		for i, lf := range leaves {
			t := int(lf.Level) - 1
			if t < o.MinLevel {
				t = o.MinLevel
			}
			targets[i] = t
		}
		coarse := octree.ParCoarsen(c, dim, leaves, targets)
		coarse = octree.Balance21Distributed(c, dim, coarse, nil)
		coarse = octree.PartitionWeighted(c, coarse, nil)
		cnt := par.Allreduce(c, int64(len(coarse)), func(a, b int64) int64 { return a + b })
		if cnt >= prevCnt {
			break
		}
		l := len(h.Meshes)
		var cm *mesh.Mesh
		reused := false
		if l < len(prev.Meshes) && sameLocalForest(c, prev.Meshes[l].Elems, coarse) {
			cm = prev.Meshes[l]
			reused = true
			reusedLevels++
		} else {
			cm = mesh.New(c, dim, coarse)
		}
		if reused && curReused {
			h.Down = append(h.Down, prev.Down[l])
			h.Up = append(h.Up, prev.Up[l])
		} else {
			h.Down = append(h.Down, NewTransfer(cur, cm.Keys[:cm.NumOwned]))
			h.Up = append(h.Up, NewTransfer(cm, cur.Keys[:cur.NumOwned]))
		}
		h.Meshes = append(h.Meshes, cm)
		cur, prevCnt = cm, cnt
		curReused = reused
	}
	return h, reusedLevels
}

// sameLocalForest reports — collectively and consistently — whether every
// rank's local leaf list is unchanged.
func sameLocalForest(c *par.Comm, a, b []sfc.Octant) bool {
	same := len(a) == len(b)
	if same {
		for i := range a {
			if !a[i].EqualKey(b[i]) {
				same = false
				break
			}
		}
	}
	return par.Allreduce(c, same, func(x, y bool) bool { return x && y })
}

func globalElems(c *par.Comm, m *mesh.Mesh) int64 {
	return par.Allreduce(c, int64(len(m.Elems)), func(a, b int64) int64 { return a + b })
}
