package mg

import (
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// HierarchyOptions bounds the coarsening ladder.
type HierarchyOptions struct {
	// MaxLevels caps the total number of levels including the fine mesh
	// (default 8).
	MaxLevels int
	// CoarseElems stops coarsening once the global element count is at or
	// below this (default 16): the coarsest level is then cheap enough to
	// solve by smoothing alone.
	CoarseElems int64
	// MinLevel is the coarsest octree level any leaf may reach (default 1).
	MinLevel int
}

func (o *HierarchyOptions) defaults() {
	if o.MaxLevels == 0 {
		o.MaxLevels = 8
	}
	if o.CoarseElems == 0 {
		o.CoarseElems = 16
	}
	if o.MinLevel == 0 {
		o.MinLevel = 1
	}
}

// Hierarchy is the geometric multigrid mesh ladder shared by every GMG
// preconditioner on one fine mesh: level 0 is the fine mesh itself, each
// deeper level coarsens every leaf one octree level (consensus
// coarsening), re-balances 2:1 and repartitions, then rebuilds the
// distributed CG mesh. The ladder is built once per mesh epoch and
// invalidated with it.
type Hierarchy struct {
	// Meshes[0] is the fine mesh (owned by the caller); deeper entries are
	// owned by the hierarchy.
	Meshes []*mesh.Mesh
	// Down[l] (l >= 1) evaluates level-(l-1) fields at level-l owned nodes:
	// the coefficient-injection operator.
	Down []*Transfer
	// Up[l] (l >= 1) evaluates level-l fields at level-(l-1) owned nodes:
	// prolongation; its Restrict is the matching residual restriction.
	Up []*Transfer
}

// Workspace holds the per-level scratch of a hierarchy build (the leaves
// copy handed to the coarsener and the per-leaf target levels), reusable
// across refreshes so a warm refresh stops allocating per round. The zero
// value is ready to use.
type Workspace struct {
	leaves  []sfc.Octant
	targets []int
}

// LevelState records how one ladder level was produced by a refresh,
// aligned with Hierarchy.Meshes. Level 0 carries the caller's fine-mesh
// delta.
type LevelState struct {
	// Reused: the level's mesh is the previous ladder's object, unchanged.
	Reused bool
	// Delta is non-nil when the level's mesh was patched from the previous
	// ladder's mesh (mesh.Patch) instead of built from scratch; it maps the
	// old level mesh onto the new one. For level 0 it is the delta the
	// caller passed in (the solver's composed remesh delta).
	Delta *mesh.Delta
	// OldOwned is the previous level mesh's owned-node count, valid when
	// Delta is non-nil: what NodeRowPatch needs to expand the node remap
	// into a matrix row patch.
	OldOwned int
}

// RefreshResult is the delta-aware refresh telemetry: per-level states for
// preconditioner carry-over, plus the reuse/patch counters.
type RefreshResult struct {
	Levels []LevelState
	// LevelsReused / LevelsPatched count coarse levels whose mesh was
	// reused verbatim / patched in place (the rest were built cold).
	LevelsReused  int
	LevelsPatched int
	// RowsPatched / RowsResolved count transfer target entries whose
	// containing-element reference was carried through the element remap vs
	// re-located in the new forest, over every patched transfer.
	RowsPatched  int
	RowsResolved int
}

// NewHierarchy builds the ladder under fine. Collective; the same option
// values must be passed on every rank. The ladder always has at least the
// fine level; it stops early when coarsening makes no global progress.
func NewHierarchy(fine *mesh.Mesh, o HierarchyOptions) *Hierarchy {
	var ws Workspace
	h, _ := RefreshHierarchy(fine, nil, nil, &ws, o)
	return h
}

// Levels returns the number of levels in the ladder (>= 1).
func (h *Hierarchy) Levels() int { return len(h.Meshes) }

// RefreshHierarchy rebuilds the ladder under a remeshed fine mesh, carrying
// everything the previous ladder proves survived. Per coarse level, in
// order of preference: an unchanged forest (leaves and partition) reuses
// the previous mesh object outright — coarsening, balancing and
// partitioning are deterministic, so an unchanged coarse forest implies
// mesh.New would reproduce the previous level exactly; a changed forest
// with unmoved splitters patches the previous mesh in place (mesh.Patch),
// propagating a per-level delta down the ladder; otherwise the level is
// built cold. Transfers follow the meshes: reused on both-reused levels,
// patched in place through the element remap where the source side changed
// partition-stably under an unchanged target list (d is the fine-level
// remap; level deltas take over below), rebuilt otherwise. prev may be nil
// (a cold build — what NewHierarchy does); d may be nil when no fine-mesh
// delta is known, which only disables the level-1 transfer patch. ws must
// be non-nil and is reused across calls. The result is bitwise identical
// to NewHierarchy(fine, o). Collective.
func RefreshHierarchy(fine *mesh.Mesh, prev *Hierarchy, d *mesh.Delta, ws *Workspace, o HierarchyOptions) (*Hierarchy, *RefreshResult) {
	o.defaults()
	if ws == nil {
		ws = &Workspace{}
	}
	c := fine.Comm
	dim := fine.Dim
	h := &Hierarchy{
		Meshes: []*mesh.Mesh{fine},
		Down:   []*Transfer{nil},
		Up:     []*Transfer{nil},
	}
	res := &RefreshResult{Levels: []LevelState{{Delta: d}}}
	cur := fine
	prevCnt := globalElems(c, cur)
	// curDelta/curRemap/curStable describe cur against prev's same level:
	// stable means the level's splitters are unchanged (every mesh.Patch
	// round is), so an old transfer sourced on it keeps its ownership
	// routing and can be patched instead of rebuilt.
	curReused := false
	curStable := false
	var curRemap []int32
	if prev != nil && d != nil && len(prev.Meshes) > 0 {
		res.Levels[0].OldOwned = prev.Meshes[0].NumOwned
		oldSpl := octree.GatherSplitters(c, prev.Meshes[0].Elems)
		newSpl := octree.GatherSplitters(c, fine.Elems)
		if oldSpl.Equal(newSpl) {
			curStable = true
			curRemap = invertElemRemap(d)
		}
	}
	for len(h.Meshes) < o.MaxLevels && prevCnt > o.CoarseElems {
		ws.leaves = append(ws.leaves[:0], cur.Elems...)
		leaves := ws.leaves
		if cap(ws.targets) < len(leaves) {
			ws.targets = make([]int, len(leaves))
		}
		targets := ws.targets[:len(leaves)]
		for i, lf := range leaves {
			t := int(lf.Level) - 1
			if t < o.MinLevel {
				t = o.MinLevel
			}
			targets[i] = t
		}
		coarse := octree.ParCoarsen(c, dim, leaves, targets)
		coarse = octree.Balance21Distributed(c, dim, coarse, nil)
		coarse = octree.PartitionWeighted(c, coarse, nil)
		cnt := par.Allreduce(c, int64(len(coarse)), func(a, b int64) int64 { return a + b })
		if cnt >= prevCnt {
			break
		}
		l := len(h.Meshes)
		var cm *mesh.Mesh
		var cmDelta *mesh.Delta
		var cmRemap []int32
		reused := false
		oldOwned := 0
		if prev != nil && l < len(prev.Meshes) {
			pm := prev.Meshes[l]
			oldOwned = pm.NumOwned
			if sameLocalForest(c, pm.Elems, coarse) {
				cm, reused = pm, true
				res.LevelsReused++
			} else if patched, pd := mesh.Patch(c, dim, coarse, pm, octree.AddedLeaves(pm.Elems, coarse)); patched != nil {
				cm, cmDelta = patched, pd
				cmRemap = invertElemRemap(pd)
				res.LevelsPatched++
			}
		}
		if cm == nil {
			cm = mesh.New(c, dim, coarse)
		}
		switch {
		case reused && curReused:
			h.Down = append(h.Down, prev.Down[l])
			h.Up = append(h.Up, prev.Up[l])
		case reused && curStable:
			// The source side changed partition-stably and the target list
			// (cm's owned nodes) is unchanged: the old Down transfer keeps
			// its routing; only its element references move.
			patched, resolved := patchTransfer(prev.Down[l], cur, curRemap)
			res.RowsPatched += patched
			res.RowsResolved += resolved
			h.Down = append(h.Down, prev.Down[l])
			h.Up = append(h.Up, NewTransfer(cm, cur.Keys[:cur.NumOwned]))
		default:
			h.Down = append(h.Down, NewTransfer(cur, cm.Keys[:cm.NumOwned]))
			h.Up = append(h.Up, NewTransfer(cm, cur.Keys[:cur.NumOwned]))
		}
		h.Meshes = append(h.Meshes, cm)
		res.Levels = append(res.Levels, LevelState{Reused: reused, Delta: cmDelta, OldOwned: oldOwned})
		cur, prevCnt = cm, cnt
		curReused = reused
		curStable = reused || cmDelta != nil
		curRemap = cmRemap
	}
	return h, res
}

// invertElemRemap inverts a delta's OldElem (new element -> old element)
// into old -> new, -1 for old elements that did not survive.
func invertElemRemap(d *mesh.Delta) []int32 {
	maxOld := -1
	for _, oe := range d.OldElem {
		if int(oe) > maxOld {
			maxOld = int(oe)
		}
	}
	inv := make([]int32, maxOld+1)
	for i := range inv {
		inv[i] = -1
	}
	for ne, oe := range d.OldElem {
		if oe >= 0 {
			inv[oe] = int32(ne)
		}
	}
	return inv
}

// sameLocalForest reports — collectively and consistently — whether every
// rank's local leaf list is unchanged.
func sameLocalForest(c *par.Comm, a, b []sfc.Octant) bool {
	same := len(a) == len(b)
	if same {
		for i := range a {
			if !a[i].EqualKey(b[i]) {
				same = false
				break
			}
		}
	}
	return par.Allreduce(c, same, func(x, y bool) bool { return x && y })
}

func globalElems(c *par.Comm, m *mesh.Mesh) int64 {
	return par.Allreduce(c, int64(len(m.Elems)), func(a, b int64) int64 { return a + b })
}
