// Package mg implements an octree geometric multigrid V-cycle as a
// drop-in la.PC: a hierarchy of coarsened 2:1-balanced forests, per-level
// operators assembled with the frozen-sparsity fem machinery, inter-level
// transfers through the hanging-node-constrained FE interpolation, and
// Jacobi/ILU(0) smoothing. See PCGMG.
package mg

import (
	"fmt"
	"sort"

	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Transfer message tags: distinct from the mesh ghost-exchange tags
// (101/102) so a V-cycle level exchange can never collide with the ghost
// machinery of the meshes it runs between.
const (
	tagEval     = 111 // answerer -> requester: evaluated point values
	tagRestrict = 112 // requester -> answerer: target values to scatter
)

// evalPeer is one remote rank involved in a Transfer. On the requester
// side targets lists the target-point indices that rank answers for; on
// the answerer side elems/pts list the local source elements and the grid
// points to evaluate, in the requester's order. buf is the reusable wire
// buffer, grown once to the largest ndof seen.
type evalPeer struct {
	rank    int
	targets []int32
	elems   []int32
	pts     []mesh.NodeKey
	buf     []float64
}

// Transfer evaluates a FE field living on a source mesh at a fixed set of
// target grid points (in practice: the owned nodes of another mesh in the
// hierarchy). Eval is the interpolation P (prolongation / coefficient
// injection); Restrict applies its exact transpose Pᵀ (residual
// restriction). The point-to-element routing is resolved once at build
// time — Eval/Restrict perform no matching, only dense evaluation plus a
// fixed message pattern, and allocate nothing on the warm path at one
// rank (point-to-point receives allocate, like the ghost exchange).
//
// Determinism: every per-rank loop is serial and in fixed order, remote
// contributions are combined in ascending source-rank order, and the
// trailing ghost combine uses the mesh's deterministic GhostWrite — so
// results are bitwise reproducible and independent of any worker pool.
type Transfer struct {
	src *mesh.Mesh
	// Locally answerable targets: target index, containing source element,
	// and the point itself.
	locTgt  []int32
	locElem []int32
	locPt   []mesh.NodeKey
	// req: peers answering our target queries; ans: peers whose queries we
	// answer. Both sorted by ascending rank.
	req []evalPeer
	ans []evalPeer
	// ansParked parks out-of-order Restrict receives so scatter always
	// happens in ascending source-rank order.
	ansParked [][]float64
}

// NewTransfer resolves every target grid point to its containing source
// element, locally or on the owning remote rank. Ownership follows the
// mesh's canonical-owner rule (clamp boundary coordinates inward, locate
// at MaxLevel), so a target node of any mesh covering the same domain is
// always found. Collective.
func NewTransfer(src *mesh.Mesh, tgt []mesh.NodeKey) *Transfer {
	t := &Transfer{src: src}
	c := src.Comm
	spl := octree.GatherSplitters(c, src.Elems)
	tree := &octree.Tree{Dim: src.Dim, Leaves: src.Elems}
	me := c.Rank()

	locate := func(p mesh.NodeKey) int {
		x, y, z := clampInward(p, src.Dim)
		e := tree.PointLocate(x, y, z)
		if e < 0 {
			panic(fmt.Sprintf("mg: point (%d,%d,%d) not in local source forest", p.X, p.Y, p.Z))
		}
		return e
	}
	byRank := map[int][]mesh.NodeKey{}
	tgtByRank := map[int][]int32{}
	for i, p := range tgt {
		x, y, z := clampInward(p, src.Dim)
		q := sfc.Octant{X: x, Y: y, Z: z, Level: sfc.MaxLevel, Dim: uint8(src.Dim)}
		owner := spl.Owner(q)
		if owner == me {
			t.locTgt = append(t.locTgt, int32(i))
			t.locElem = append(t.locElem, int32(locate(p)))
			t.locPt = append(t.locPt, p)
			continue
		}
		byRank[owner] = append(byRank[owner], p)
		tgtByRank[owner] = append(tgtByRank[owner], int32(i))
	}
	dests := make([]int, 0, len(byRank))
	for r := range byRank {
		dests = append(dests, r)
	}
	sort.Ints(dests)
	bufs := make([][]mesh.NodeKey, len(dests))
	for i, r := range dests {
		bufs[i] = byRank[r]
		t.req = append(t.req, evalPeer{rank: r, targets: tgtByRank[r]})
	}
	srcs, recvd := par.NBXExchange(c, dests, bufs)
	for i, r := range srcs {
		p := evalPeer{rank: r, pts: recvd[i]}
		p.elems = make([]int32, len(p.pts))
		for k, pt := range p.pts {
			p.elems[k] = int32(locate(pt))
		}
		t.ans = append(t.ans, p)
	}
	sort.Slice(t.ans, func(i, j int) bool { return t.ans[i].rank < t.ans[j].rank })
	t.ansParked = make([][]float64, len(t.ans))
	return t
}

// patchTransfer re-keys a Transfer in place onto a patched version of its
// source mesh. Valid only when the target list is unchanged and the source
// partition's splitters did not move (every mesh.Patch round): then each
// target's owning rank is unchanged, so the local/remote routing, target
// points, message pattern and wire buffers all stay — only the
// containing-element references move. References whose element survived the
// patch (remap: old element -> new, -1 gone) are carried positionally; the
// rest re-locate in the new forest. A surviving octant still contains the
// same points and leaf containment is unique, so the patched transfer is
// bitwise identical to NewTransfer(src, <same targets>). Returns the
// carried vs re-located entry counts.
func patchTransfer(t *Transfer, src *mesh.Mesh, remap []int32) (patched, resolved int) {
	t.src = src
	tree := &octree.Tree{Dim: src.Dim, Leaves: src.Elems}
	fix := func(elems []int32, pts []mesh.NodeKey) {
		for i, oe := range elems {
			ne := int32(-1)
			if int(oe) < len(remap) {
				ne = remap[oe]
			}
			if ne >= 0 {
				patched++
			} else {
				p := pts[i]
				x, y, z := clampInward(p, src.Dim)
				e := tree.PointLocate(x, y, z)
				if e < 0 {
					panic(fmt.Sprintf("mg: point (%d,%d,%d) not in local source forest", p.X, p.Y, p.Z))
				}
				ne = int32(e)
				resolved++
			}
			elems[i] = ne
		}
	}
	fix(t.locElem, t.locPt)
	for i := range t.ans {
		fix(t.ans[i].elems, t.ans[i].pts)
	}
	return patched, resolved
}

// clampInward maps a grid point to the cell-interior coordinates used for
// ownership and location, mirroring the mesh builder's canonical-owner
// rule: coordinates on the domain's far faces belong to the cell just
// inside.
func clampInward(p mesh.NodeKey, dim int) (x, y, z uint32) {
	x, y, z = p.X, p.Y, p.Z
	if x >= sfc.MaxCoord {
		x = sfc.MaxCoord - 1
	}
	if y >= sfc.MaxCoord {
		y = sfc.MaxCoord - 1
	}
	if dim == 3 && z >= sfc.MaxCoord {
		z = sfc.MaxCoord - 1
	}
	return
}

// evalPoint interpolates ndof values at grid point p inside source
// element e, routing corner values through the hanging-node constraints.
func (t *Transfer) evalPoint(src []float64, ndof int, p mesh.NodeKey, e int, out []float64) {
	m := t.src
	o := m.Elems[e]
	s := float64(o.Side())
	fx := (float64(p.X) - float64(o.X)) / s
	fy := (float64(p.Y) - float64(o.Y)) / s
	fz := 0.0
	if m.Dim == 3 {
		fz = (float64(p.Z) - float64(o.Z)) / s
	}
	cpe := m.CornersPerElem()
	for d := 0; d < ndof; d++ {
		out[d] = 0
	}
	for ci := 0; ci < cpe; ci++ {
		w := cornerWeight(fx, ci&1) * cornerWeight(fy, ci&2)
		if m.Dim == 3 {
			w *= cornerWeight(fz, ci&4)
		}
		if w == 0 {
			continue
		}
		con := &m.Conn[e*cpe+ci]
		for k := 0; k < int(con.N); k++ {
			wk := w * con.W[k]
			base := int(con.Idx[k]) * ndof
			for d := 0; d < ndof; d++ {
				out[d] += wk * src[base+d]
			}
		}
	}
}

// scatterPoint adds the transposed interpolation: val (ndof entries) at
// point p spreads to the corners of element e with the same weights
// evalPoint reads with, through the transposed constraints.
func (t *Transfer) scatterPoint(val []float64, ndof int, p mesh.NodeKey, e int, dst []float64) {
	m := t.src
	o := m.Elems[e]
	s := float64(o.Side())
	fx := (float64(p.X) - float64(o.X)) / s
	fy := (float64(p.Y) - float64(o.Y)) / s
	fz := 0.0
	if m.Dim == 3 {
		fz = (float64(p.Z) - float64(o.Z)) / s
	}
	cpe := m.CornersPerElem()
	for ci := 0; ci < cpe; ci++ {
		w := cornerWeight(fx, ci&1) * cornerWeight(fy, ci&2)
		if m.Dim == 3 {
			w *= cornerWeight(fz, ci&4)
		}
		if w == 0 {
			continue
		}
		con := &m.Conn[e*cpe+ci]
		for k := 0; k < int(con.N); k++ {
			wk := w * con.W[k]
			base := int(con.Idx[k]) * ndof
			for d := 0; d < ndof; d++ {
				dst[base+d] += wk * val[d]
			}
		}
	}
}

func cornerWeight(f float64, bit int) float64 {
	if bit != 0 {
		return f
	}
	return 1 - f
}

// Eval evaluates the source field (ndof dofs per node, full local source
// vector) at every target point: dst[tgt*ndof+d] is overwritten. When
// ghosted is false the source ghost segment is refreshed first.
// Collective; deterministic and worker-independent.
func (t *Transfer) Eval(src []float64, ndof int, dst []float64, ghosted bool) {
	m := t.src
	c := m.Comm
	if !ghosted {
		m.GhostRead(src, ndof)
	}
	// Answer remote queries first so requesters never wait on local work.
	for i := range t.ans {
		p := &t.ans[i]
		buf := growBuf(&p.buf, len(p.elems)*ndof)
		for k := range p.elems {
			t.evalPoint(src, ndof, p.pts[k], int(p.elems[k]), buf[k*ndof:(k+1)*ndof])
		}
		par.SendSlice(c, p.rank, tagEval, buf)
	}
	for k := range t.locTgt {
		base := int(t.locTgt[k]) * ndof
		t.evalPoint(src, ndof, t.locPt[k], int(t.locElem[k]), dst[base:base+ndof])
	}
	for range t.req {
		buf, from := par.RecvSlice[float64](c, par.AnySource, tagEval)
		p := t.reqPeer(from)
		for k, ti := range p.targets {
			copy(dst[int(ti)*ndof:int(ti)*ndof+ndof], buf[k*ndof:(k+1)*ndof])
		}
	}
	if c.Size() > 1 {
		// Answer buffers are reused next call; the barrier guarantees every
		// send has been consumed.
		c.Barrier()
	}
}

// Restrict applies the exact transpose of Eval: dst (a full local source
// vector, zeroed here) accumulates Σ_i w_ij r[i] over all target points
// i, then combines ghost-slot contributions into their owners. r needs
// only its owned-target prefix. Collective; contributions are applied in
// a fixed order (local first, then peers by ascending rank, then the
// deterministic GhostWrite), so the result is bitwise reproducible.
func (t *Transfer) Restrict(r []float64, ndof int, dst []float64) {
	m := t.src
	c := m.Comm
	for i := range dst {
		dst[i] = 0
	}
	// Ship our target values to the ranks owning their containing elements.
	for i := range t.req {
		p := &t.req[i]
		buf := growBuf(&p.buf, len(p.targets)*ndof)
		for k, ti := range p.targets {
			copy(buf[k*ndof:(k+1)*ndof], r[int(ti)*ndof:int(ti)*ndof+ndof])
		}
		par.SendSlice(c, p.rank, tagRestrict, buf)
	}
	for k := range t.locTgt {
		base := int(t.locTgt[k]) * ndof
		t.scatterPoint(r[base:base+ndof], ndof, t.locPt[k], int(t.locElem[k]), dst)
	}
	if len(t.ans) > 0 {
		// Park receives, then scatter in ascending source-rank order so the
		// floating-point accumulation order is schedule-independent.
		for range t.ans {
			buf, from := par.RecvSlice[float64](c, par.AnySource, tagRestrict)
			t.ansParked[t.ansIdx(from)] = buf
		}
		for i := range t.ans {
			p := &t.ans[i]
			buf := t.ansParked[i]
			t.ansParked[i] = nil
			for k := range p.elems {
				t.scatterPoint(buf[k*ndof:(k+1)*ndof], ndof, p.pts[k], int(p.elems[k]), dst)
			}
		}
	}
	// The combining exchange also orders cross-rank contributions by
	// source rank and ends in a barrier, which doubles as the send fence
	// for the Restrict buffers above.
	m.GhostWrite(dst, ndof, mesh.Add, 0)
}

func (t *Transfer) reqPeer(rank int) *evalPeer {
	for i := range t.req {
		if t.req[i].rank == rank {
			return &t.req[i]
		}
	}
	panic(fmt.Sprintf("mg: unexpected eval answer from rank %d", rank))
}

func (t *Transfer) ansIdx(rank int) int {
	for i := range t.ans {
		if t.ans[i].rank == rank {
			return i
		}
	}
	panic(fmt.Sprintf("mg: unexpected restrict payload from rank %d", rank))
}

func growBuf(b *[]float64, n int) []float64 {
	if cap(*b) < n {
		*b = make([]float64, n)
	}
	return (*b)[:n]
}
