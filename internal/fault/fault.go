// Package fault provides deterministic, rank-aware fault injection for
// exercising the run health-and-recovery layer in tests and CI. An
// Injector holds a schedule of faults — forced Krylov divergence, a NaN
// poked into a solver field, a truncated checkpoint write — each keyed
// to an absolute step index (or write ordinal) and optionally to a stage
// and a rank. All hooks are plain nil-checked method calls compiled into
// every build (no build tags): a nil *Injector is inert and every method
// is safe to call on it, so production paths pay a single pointer test.
//
// Determinism is the point: the same spec, seed and rank count fire the
// same faults at the same places on every run, so a recovered run can be
// compared bitwise against the clean run with the equivalent dt
// schedule. When a spec gives a step *range*, the firing step is drawn
// deterministically from the seed (the "seeded" mode used to fuzz the
// recovery path across CI runs without losing reproducibility).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Point identifies an injection site.
type Point string

const (
	// KSPDiverge forces a stage's Krylov result to report divergence
	// after the (collectively completed) solve. It always fires on every
	// rank regardless of any rank filter: a one-sided divergence report
	// would desynchronize the collective step sequence.
	KSPDiverge Point = "ksp"
	// FieldNaN pokes a NaN into the stage's output field on the matching
	// rank(s); the sharded finite scan must turn it into a typed error.
	FieldNaN Point = "nan"
	// CkptTruncate truncates the checkpoint rank file written by the
	// matching rank(s) mid-payload, after its CRC was computed — a
	// silently torn write the integrity check must catch on read.
	CkptTruncate Point = "ckpt"
)

// Fault is one scheduled injection.
type Fault struct {
	Point Point
	// Step is the absolute simulation step at which to fire (KSPDiverge,
	// FieldNaN) or the 1-based checkpoint-write ordinal (CkptTruncate).
	Step int
	// StepHi, when > Step, makes [Step, StepHi] a range: the actual
	// firing step is drawn deterministically from the injector seed.
	StepHi int
	// Stage filters KSPDiverge/FieldNaN to one solve stage
	// ("ch", "ns", "pp", "vu"; empty matches any stage).
	Stage string
	// Rank fires the fault only on that rank (-1: every rank). Honored
	// for FieldNaN and CkptTruncate; KSPDiverge ignores it (see above).
	Rank int
	// Count is the number of firings before the fault is exhausted
	// (<= 0 means 1, the one-shot default).
	Count int
}

type faultState struct {
	Fault
	step  int // resolved firing step (range collapsed via the seed)
	fired int
}

// Injector evaluates a fault schedule. The zero value and nil are inert.
type Injector struct {
	rank   int
	seed   uint64
	step   int
	writes int // CkptTruncate occurrence counter (1-based ordinals)
	faults []faultState
}

// New builds an injector for one rank. Ranks of a collective run must
// construct their injectors with the same seed and fault list.
func New(seed uint64, rank int, fs ...Fault) *Injector {
	in := &Injector{rank: rank, seed: seed}
	for _, f := range fs {
		if f.Count <= 0 {
			f.Count = 1
		}
		st := f.Step
		if f.StepHi > f.Step {
			span := uint64(f.StepHi - f.Step + 1)
			st = f.Step + int(mix(seed^strHash(string(f.Point)+"/"+f.Stage))%span)
		}
		in.faults = append(in.faults, faultState{Fault: f, step: st})
	}
	return in
}

// Parse builds an injector from a compact spec: semicolon- or
// comma-separated entries of the form
//
//	point@step[-stepHi][/stage][/rank=N][/count=N]
//
// with point one of ksp | nan | ckpt, e.g.
//
//	"ksp@3/ns"            force NS divergence at step 3 (one-shot)
//	"ksp@2-6/pp/count=2"  two PP divergences, step seeded from [2,6]
//	"nan@4/ch/rank=0"     NaN in the CH output on rank 0 at step 4
//	"ckpt@1"              truncate every rank's first checkpoint write
//
// An empty spec yields a nil (inert) injector.
func Parse(spec string, seed uint64, rank int) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var fs []Fault
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseEntry(entry)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", entry, err)
		}
		fs = append(fs, f)
	}
	if len(fs) == 0 {
		return nil, nil
	}
	return New(seed, rank, fs...), nil
}

func parseEntry(entry string) (Fault, error) {
	f := Fault{Rank: -1}
	head, rest, _ := strings.Cut(entry, "/")
	point, at, ok := strings.Cut(head, "@")
	if !ok {
		return f, fmt.Errorf("missing @step")
	}
	switch Point(point) {
	case KSPDiverge, FieldNaN, CkptTruncate:
		f.Point = Point(point)
	default:
		return f, fmt.Errorf("unknown point %q (want ksp | nan | ckpt)", point)
	}
	lo, hi, ranged := strings.Cut(at, "-")
	n, err := strconv.Atoi(lo)
	if err != nil {
		return f, fmt.Errorf("bad step %q", at)
	}
	f.Step = n
	if ranged {
		if f.StepHi, err = strconv.Atoi(hi); err != nil || f.StepHi < f.Step {
			return f, fmt.Errorf("bad step range %q", at)
		}
	}
	for rest != "" {
		var part string
		part, rest, _ = strings.Cut(rest, "/")
		switch k, v, kv := strings.Cut(part, "="); {
		case kv && k == "rank":
			if f.Rank, err = strconv.Atoi(v); err != nil {
				return f, fmt.Errorf("bad rank %q", v)
			}
		case kv && k == "count":
			if f.Count, err = strconv.Atoi(v); err != nil || f.Count < 1 {
				return f, fmt.Errorf("bad count %q", v)
			}
		case kv:
			return f, fmt.Errorf("unknown option %q", k)
		default:
			if f.Stage != "" {
				return f, fmt.Errorf("stage given twice (%q, %q)", f.Stage, part)
			}
			f.Stage = strings.ToLower(part)
		}
	}
	if f.Point == CkptTruncate && f.Stage != "" {
		return f, fmt.Errorf("ckpt faults take no stage filter")
	}
	return f, nil
}

// SetStep declares the absolute simulation step about to execute; the
// step-keyed faults (KSPDiverge, FieldNaN) fire only while their
// resolved step is current. Nil-safe.
func (in *Injector) SetStep(step int) {
	if in != nil {
		in.step = step
	}
}

// Fire reports whether a fault at point p (filtered by stage, for the
// stage-keyed points) fires now, and consumes one firing if so. For
// CkptTruncate every call counts one checkpoint write. Nil-safe: a nil
// injector never fires.
func (in *Injector) Fire(p Point, stage string) bool {
	if in == nil {
		return false
	}
	occ := in.step
	if p == CkptTruncate {
		in.writes++
		occ = in.writes
	}
	// A step-keyed fault with Count > 1 fires on Count consecutive
	// attempts of its step (retries of a rolled-back step re-query at the
	// same step index); a ckpt fault with Count > 1 hits Count successive
	// write ordinals starting at Step.
	for i := range in.faults {
		f := &in.faults[i]
		hit := occ == f.step
		if p == CkptTruncate {
			hit = occ >= f.step && occ < f.step+f.Count
		}
		if f.Point != p || f.fired >= f.Count || !hit {
			continue
		}
		if f.Stage != "" && !strings.EqualFold(f.Stage, stage) {
			continue
		}
		if f.Rank >= 0 && p != KSPDiverge && f.Rank != in.rank {
			continue
		}
		f.fired++
		return true
	}
	return false
}

// Fired returns the total number of firings recorded at point p.
// Nil-safe.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	n := 0
	for i := range in.faults {
		if in.faults[i].Point == p {
			n += in.faults[i].fired
		}
	}
	return n
}

// String summarizes the schedule with resolved steps, for logs.
func (in *Injector) String() string {
	if in == nil || len(in.faults) == 0 {
		return "none"
	}
	parts := make([]string, len(in.faults))
	for i, f := range in.faults {
		s := fmt.Sprintf("%s@%d", f.Point, f.step)
		if f.Stage != "" {
			s += "/" + f.Stage
		}
		if f.Rank >= 0 {
			s += fmt.Sprintf("/rank=%d", f.Rank)
		}
		if f.Count > 1 {
			s += fmt.Sprintf("/count=%d", f.Count)
		}
		parts[i] = s
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// mix is the splitmix64 finalizer, the repo's standard bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func strHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
