package fault

import "testing"

// TestNilInjectorIsInert pins the nil-safety contract production paths
// rely on: every method of a nil *Injector is callable and a no-op.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.SetStep(3)
	if in.Fire(KSPDiverge, "ns") || in.Fire(FieldNaN, "ch") || in.Fire(CkptTruncate, "") {
		t.Fatal("nil injector fired")
	}
	if in.Fired(KSPDiverge) != 0 {
		t.Fatal("nil injector counted firings")
	}
	if in.String() != "none" {
		t.Fatalf("nil injector String %q, want none", in.String())
	}
}

// TestParse covers the spec grammar: points, step ranges, stage and
// rank/count options, separators, and the rejects.
func TestParse(t *testing.T) {
	if in, err := Parse("", 1, 0); err != nil || in != nil {
		t.Fatalf("empty spec: %v %v (want nil, nil)", in, err)
	}
	in, err := Parse(" ksp@3/ns ; nan@4/ch/rank=0 , ckpt@1/count=2 ", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.faults) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(in.faults))
	}
	f := in.faults[0]
	if f.Point != KSPDiverge || f.Step != 3 || f.Stage != "ns" || f.Rank != -1 || f.Count != 1 {
		t.Fatalf("ksp entry parsed as %+v", f)
	}
	f = in.faults[1]
	if f.Point != FieldNaN || f.Step != 4 || f.Stage != "ch" || f.Rank != 0 {
		t.Fatalf("nan entry parsed as %+v", f)
	}
	f = in.faults[2]
	if f.Point != CkptTruncate || f.Step != 1 || f.Count != 2 {
		t.Fatalf("ckpt entry parsed as %+v", f)
	}

	for _, bad := range []string{
		"ksp",           // missing @step
		"boom@3",        // unknown point
		"ksp@x",         // bad step
		"ksp@5-3",       // inverted range
		"ksp@3/ns/pp",   // stage twice
		"ksp@3/rank=x",  // bad rank
		"ksp@3/count=0", // count < 1
		"ksp@3/frob=1",  // unknown option
		"ckpt@1/ns",     // ckpt takes no stage
	} {
		if _, err := Parse(bad, 1, 0); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFireOneShotAndCount checks step keying, stage filtering, one-shot
// exhaustion, and Count-limited repeat firing on retries of one step.
func TestFireOneShotAndCount(t *testing.T) {
	in := New(1, 0,
		Fault{Point: KSPDiverge, Step: 3, Stage: "ns"},
		Fault{Point: KSPDiverge, Step: 5, Stage: "pp", Count: 2},
	)
	in.SetStep(2)
	if in.Fire(KSPDiverge, "ns") {
		t.Fatal("fired off-step")
	}
	in.SetStep(3)
	if in.Fire(KSPDiverge, "ch") {
		t.Fatal("fired off-stage")
	}
	if !in.Fire(KSPDiverge, "ns") {
		t.Fatal("one-shot did not fire at its step/stage")
	}
	if in.Fire(KSPDiverge, "ns") {
		t.Fatal("one-shot fired twice (retry at the same step must be clean)")
	}
	// Count=2 fires on two consecutive attempts of the same step.
	in.SetStep(5)
	if !in.Fire(KSPDiverge, "pp") || !in.Fire(KSPDiverge, "pp") {
		t.Fatal("count=2 did not fire twice")
	}
	if in.Fire(KSPDiverge, "pp") {
		t.Fatal("count=2 fired a third time")
	}
	if in.Fired(KSPDiverge) != 3 {
		t.Fatalf("Fired counts %d, want 3", in.Fired(KSPDiverge))
	}
}

// TestRankFiltering pins the asymmetry: FieldNaN honors the rank filter,
// KSPDiverge deliberately ignores it (a one-sided divergence verdict
// would desynchronize the collective step sequence).
func TestRankFiltering(t *testing.T) {
	for rank := 0; rank < 2; rank++ {
		in := New(1, rank,
			Fault{Point: FieldNaN, Step: 2, Rank: 1},
			Fault{Point: KSPDiverge, Step: 2, Rank: 1},
		)
		in.SetStep(2)
		if got, want := in.Fire(FieldNaN, "ch"), rank == 1; got != want {
			t.Errorf("rank %d: FieldNaN fired=%v, want %v", rank, got, want)
		}
		if !in.Fire(KSPDiverge, "ch") {
			t.Errorf("rank %d: KSPDiverge suppressed by rank filter", rank)
		}
	}
}

// TestCkptWriteOrdinals checks that ckpt faults key off the 1-based
// write ordinal, not the simulation step, and that count spans
// successive writes.
func TestCkptWriteOrdinals(t *testing.T) {
	in := New(1, 0, Fault{Point: CkptTruncate, Step: 2, Count: 2})
	in.SetStep(99) // irrelevant for ckpt faults
	fires := []bool{}
	for w := 0; w < 4; w++ {
		fires = append(fires, in.Fire(CkptTruncate, ""))
	}
	want := []bool{false, true, true, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("write ordinals fired %v, want %v", fires, want)
		}
	}
}

// TestSeededRangeDeterministic checks that a step range resolves inside
// the range, identically for the same seed (and across ranks), and
// generally differently for a different seed.
func TestSeededRangeDeterministic(t *testing.T) {
	resolved := func(seed uint64, rank int) int {
		in := New(seed, rank, Fault{Point: KSPDiverge, Step: 2, StepHi: 40, Stage: "ns"})
		return in.faults[0].step
	}
	s1 := resolved(7, 0)
	if s1 < 2 || s1 > 40 {
		t.Fatalf("resolved step %d outside [2,40]", s1)
	}
	if resolved(7, 0) != s1 || resolved(7, 3) != s1 {
		t.Fatal("resolution depends on something besides the seed")
	}
	differs := false
	for seed := uint64(1); seed < 6; seed++ {
		if resolved(seed, 0) != s1 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("five different seeds all resolved to the same step")
	}
}

// TestString summarizes with resolved steps in a stable order.
func TestString(t *testing.T) {
	in, err := Parse("nan@4/ch/rank=0;ksp@3/ns", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.String(); got != "ksp@3/ns;nan@4/ch/rank=0" {
		t.Fatalf("String %q", got)
	}
}
