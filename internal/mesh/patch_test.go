package mesh

import (
	"fmt"
	"math/rand"
	"testing"

	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// protectedPerturb refines/coarsens random leaves of a balanced tree while
// leaving every leaf within `radius` of a partition boundary index
// untouched, so the partition splitters stay stable and the patch path is
// actually exercised.
func protectedPerturb(r *rand.Rand, t *octree.Tree, p, radius int) *octree.Tree {
	n := t.Len()
	protected := func(i int) bool {
		for rk := 0; rk <= p; rk++ {
			b := rk * n / p
			if i >= b-radius && i <= b+radius {
				return true
			}
		}
		return false
	}
	ct := make([]int, n)
	for i, o := range t.Leaves {
		ct[i] = int(o.Level)
		if !protected(i) && o.Level > 0 && r.Float64() < 0.06 {
			ct[i] = int(o.Level) - 1
		}
	}
	out := t.Coarsen(ct)
	// Map protection onto the coarsened tree by octant interval overlap:
	// protect any leaf overlapping a protected original leaf.
	rt := make([]int, out.Len())
	j := 0
	for i, o := range out.Leaves {
		rt[i] = int(o.Level)
		for j < n && sfc.Less(t.Leaves[j], o) && !t.Leaves[j].Overlaps(o) {
			j++
		}
		prot := false
		for k := j; k < n && (t.Leaves[k].Overlaps(o) || !sfc.Less(o, t.Leaves[k])); k++ {
			if t.Leaves[k].Overlaps(o) && protected(k) {
				prot = true
				break
			}
		}
		if !prot && r.Float64() < 0.06 {
			rt[i] = int(o.Level) + 1
		}
	}
	return out.Refine(rt, nil)
}

// ownChunk deals leaves by old-splitter ownership so the new partition
// keeps the old firsts whenever the first leaves survive.
func ownChunk(leaves []sfc.Octant, spl octree.Splitters, rank int) []sfc.Octant {
	var out []sfc.Octant
	for _, o := range leaves {
		if spl.Owner(o.FirstDescendant()) == rank {
			out = append(out, o)
		}
	}
	return out
}

func meshEqual(a, b *Mesh) error {
	if len(a.Elems) != len(b.Elems) {
		return fmt.Errorf("elems: %d vs %d", len(a.Elems), len(b.Elems))
	}
	for i := range a.Elems {
		if !a.Elems[i].EqualKey(b.Elems[i]) || a.ElemLevel[i] != b.ElemLevel[i] {
			return fmt.Errorf("elem %d differs", i)
		}
	}
	if a.NumOwned != b.NumOwned || a.NumLocal != b.NumLocal {
		return fmt.Errorf("counts: owned %d/%d local %d/%d", a.NumOwned, b.NumOwned, a.NumLocal, b.NumLocal)
	}
	if a.NumGlobal != b.NumGlobal || a.GlobalStart != b.GlobalStart {
		return fmt.Errorf("global: %d@%d vs %d@%d", a.NumGlobal, a.GlobalStart, b.NumGlobal, b.GlobalStart)
	}
	if a.HangingCorners != b.HangingCorners {
		return fmt.Errorf("hanging: %d vs %d", a.HangingCorners, b.HangingCorners)
	}
	for i := 0; i < a.NumLocal; i++ {
		if a.Keys[i] != b.Keys[i] {
			return fmt.Errorf("key %d: %v vs %v", i, a.Keys[i], b.Keys[i])
		}
		if a.Owner[i] != b.Owner[i] {
			return fmt.Errorf("owner %d: %d vs %d", i, a.Owner[i], b.Owner[i])
		}
		if a.GlobalID[i] != b.GlobalID[i] {
			return fmt.Errorf("gid %d: %d vs %d", i, a.GlobalID[i], b.GlobalID[i])
		}
		if a.index[a.Keys[i]] != b.index[b.Keys[i]] {
			return fmt.Errorf("index %d differs", i)
		}
	}
	if len(a.Conn) != len(b.Conn) {
		return fmt.Errorf("conn len")
	}
	for i := range a.Conn {
		ca, cb := a.Conn[i], b.Conn[i]
		if ca.N != cb.N {
			return fmt.Errorf("conn %d: N %d vs %d", i, ca.N, cb.N)
		}
		for k := 0; k < int(ca.N); k++ {
			if ca.Idx[k] != cb.Idx[k] || ca.W[k] != cb.W[k] {
				return fmt.Errorf("conn %d donor %d: (%d,%v) vs (%d,%v)", i, k, ca.Idx[k], ca.W[k], cb.Idx[k], cb.W[k])
			}
		}
	}
	if len(a.sendTo) != len(b.sendTo) || len(a.recvFrom) != len(b.recvFrom) {
		return fmt.Errorf("peer list counts")
	}
	for i := range a.sendTo {
		if a.sendTo[i].rank != b.sendTo[i].rank || len(a.sendTo[i].idx) != len(b.sendTo[i].idx) {
			return fmt.Errorf("sendTo %d shape", i)
		}
		for k := range a.sendTo[i].idx {
			if a.sendTo[i].idx[k] != b.sendTo[i].idx[k] {
				return fmt.Errorf("sendTo %d idx %d", i, k)
			}
		}
	}
	for i := range a.recvFrom {
		if a.recvFrom[i].rank != b.recvFrom[i].rank || len(a.recvFrom[i].idx) != len(b.recvFrom[i].idx) {
			return fmt.Errorf("recvFrom %d shape", i)
		}
		for k := range a.recvFrom[i].idx {
			if a.recvFrom[i].idx[k] != b.recvFrom[i].idx[k] {
				return fmt.Errorf("recvFrom %d idx %d", i, k)
			}
		}
	}
	return nil
}

// TestPatchMatchesNew is the headline invariant at the mesh layer: Patch
// over a perturbed forest must reproduce mesh.New field for field —
// numbering, ownership, global IDs, constraints and exchange lists.
func TestPatchMatchesNew(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for seed := int64(0); seed < 3; seed++ {
			par.Run(p, func(c *par.Comm) {
				r := rand.New(rand.NewSource(seed))
				base := octree.Build(2, func(o sfc.Octant) bool { return r.Float64() < 0.45 }, 6, nil).Balance21(nil)
				oldLocal := base.Leaves[c.Rank()*base.Len()/p : (c.Rank()+1)*base.Len()/p]
				oldLocal = append([]sfc.Octant(nil), oldLocal...)
				old := New(c, 2, oldLocal)
				oldSpl := octree.GatherSplitters(c, oldLocal)

				pert := protectedPerturb(r, base, p, 8)
				bal := octree.Balance21Distributed(c, 2, ownChunk(pert.Leaves, oldSpl, c.Rank()), nil)
				dirty := octree.AddedLeaves(oldLocal, bal)

				want := New(c, 2, append([]sfc.Octant(nil), bal...))
				got, delta := Patch(c, 2, append([]sfc.Octant(nil), bal...), old, dirty)
				if got == nil {
					panic(fmt.Sprintf("p=%d seed=%d rank=%d: Patch fell back (splitters moved) — perturbation protection failed", p, seed, c.Rank()))
				}
				if err := meshEqual(got, want); err != nil {
					panic(fmt.Sprintf("p=%d seed=%d rank=%d: %v", p, seed, c.Rank(), err))
				}
				// Delta invariants: remap monotone over survivors; clean
				// elements really are clean; dirty nodes cover new ones.
				last := int32(-1)
				for _, ni := range delta.NodeRemap {
					if ni >= 0 {
						if ni <= last {
							panic("NodeRemap not monotone")
						}
						last = ni
					}
				}
				cpe := got.CornersPerElem()
				for e, oe := range delta.OldElem {
					if oe < 0 {
						continue
					}
					if !got.Elems[e].EqualKey(old.Elems[oe]) {
						panic("OldElem maps to different octant")
					}
					for cix := 0; cix < cpe; cix++ {
						nc, oc := got.Conn[e*cpe+cix], old.Conn[int(oe)*cpe+cix]
						if nc.N != oc.N {
							panic("clean element changed constraint shape")
						}
						for k := 0; k < int(nc.N); k++ {
							if nc.Idx[k] != delta.NodeRemap[oc.Idx[k]] || nc.W[k] != oc.W[k] {
								panic("clean element conn does not remap cleanly")
							}
						}
					}
				}
				seen := make(map[int32]bool)
				for _, ni := range delta.NodeRemap {
					if ni >= 0 {
						seen[ni] = true
					}
				}
				for i := 0; i < got.NumLocal; i++ {
					if !seen[int32(i)] && !delta.DirtyNode[i] {
						panic("new node not flagged dirty")
					}
				}
			})
		}
	}
}

// A partition shift must be detected collectively and refuse to patch.
func TestPatchFallsBackOnSplitterDrift(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		base := octree.Uniform(2, 4)
		n := base.Len()
		oldLocal := append([]sfc.Octant(nil), base.Leaves[c.Rank()*n/2:(c.Rank()+1)*n/2]...)
		old := New(c, 2, oldLocal)
		// Shift the boundary by one leaf: rank 0 takes one more.
		cut := n/2 + 1
		var newLocal []sfc.Octant
		if c.Rank() == 0 {
			newLocal = append([]sfc.Octant(nil), base.Leaves[:cut]...)
		} else {
			newLocal = append([]sfc.Octant(nil), base.Leaves[cut:]...)
		}
		dirty := octree.AddedLeaves(oldLocal, newLocal)
		got, delta := Patch(c, 2, newLocal, old, dirty)
		if got != nil || delta != nil {
			panic("Patch accepted a moved partition")
		}
	})
}
