package mesh

// This file implements the elemental traversal underlying every MATVEC:
// gather element corner values through hanging-node constraints, apply a
// dense elemental kernel, and scatter the result back through the
// transposed constraints. Each MATVEC is a single pass over the local
// elements with one ghost read before and one combining ghost write after,
// exactly the structure whose scaling the paper reports in Fig. 6.

// GatherElem interpolates the ndof values at the 2^d corners of element e
// from the constrained local vector v into out (corner-major:
// out[c*ndof+d]). out must have CornersPerElem()*ndof entries.
func (m *Mesh) GatherElem(e int, v []float64, ndof int, out []float64) {
	cpe := m.CornersPerElem()
	for c := 0; c < cpe; c++ {
		con := &m.Conn[e*cpe+c]
		for d := 0; d < ndof; d++ {
			var s float64
			for k := 0; k < int(con.N); k++ {
				s += con.W[k] * v[int(con.Idx[k])*ndof+d]
			}
			out[c*ndof+d] = s
		}
	}
}

// ScatterAddElem adds elemental corner values into v through the
// transposed constraints: a hanging corner's contribution is distributed
// to its donors with the interpolation weights.
func (m *Mesh) ScatterAddElem(e int, vals []float64, ndof int, v []float64) {
	cpe := m.CornersPerElem()
	for c := 0; c < cpe; c++ {
		con := &m.Conn[e*cpe+c]
		for d := 0; d < ndof; d++ {
			x := vals[c*ndof+d]
			for k := 0; k < int(con.N); k++ {
				v[int(con.Idx[k])*ndof+d] += con.W[k] * x
			}
		}
	}
}

// ScatterSetElem writes raw values to every node referenced by element
// e's constraints, combining with op (used by the erosion/dilation passes,
// which set rather than accumulate).
func (m *Mesh) ScatterSetElem(e int, val float64, ndof int, v []float64, op func(cur, in float64) float64) {
	cpe := m.CornersPerElem()
	for c := 0; c < cpe; c++ {
		con := &m.Conn[e*cpe+c]
		for k := 0; k < int(con.N); k++ {
			for d := 0; d < ndof; d++ {
				o := int(con.Idx[k])*ndof + d
				v[o] = op(v[o], val)
			}
		}
	}
}

// ElemKernel computes out = A_e * in for one element: in and out are
// corner-major ndof-interleaved buffers; h is the element's physical side
// length.
type ElemKernel func(e int, h float64, in, out []float64)

// MatVec applies the globally assembled operator whose elemental blocks
// are given by kernel: out = A * in. in and out have NumLocal*ndof
// entries; only the owned segment of out is meaningful afterwards (ghost
// contributions are pushed to their owners). Collective.
func (m *Mesh) MatVec(in, out []float64, ndof int, kernel ElemKernel) {
	m.GhostRead(in, ndof)
	for i := range out {
		out[i] = 0
	}
	cpe := m.CornersPerElem()
	ein := make([]float64, cpe*ndof)
	eout := make([]float64, cpe*ndof)
	for e := 0; e < m.NumElems(); e++ {
		m.GatherElem(e, in, ndof, ein)
		kernel(e, m.ElemSize(e), ein, eout)
		m.ScatterAddElem(e, eout, ndof, out)
	}
	m.GhostWrite(out, ndof, Add, 0)
}

// Assemble accumulates elemental right-hand-side vectors produced by emit
// into v (an owned+ghost vector), then pushes ghost contributions to their
// owners. emit fills eout for element e. Collective.
func (m *Mesh) Assemble(v []float64, ndof int, emit func(e int, h float64, eout []float64)) {
	for i := range v {
		v[i] = 0
	}
	cpe := m.CornersPerElem()
	eout := make([]float64, cpe*ndof)
	for e := 0; e < m.NumElems(); e++ {
		emit(e, m.ElemSize(e), eout)
		m.ScatterAddElem(e, eout, ndof, v)
	}
	m.GhostWrite(v, ndof, Add, 0)
}
