// Partition-shifted incremental construction: when the SFC splitters
// moved, Patch cannot reuse the old numbering directly — node ownership
// changed. PatchMigrated restores the fast path by first migrating the
// old mesh to the new owners (an exact, key-addressed exchange of
// elements with their ready-made constraints — no re-classification, no
// point location) and then running the ordinary patch against that view:
// on each rank the view is an old-forest mesh already partitioned and
// owned by the new splitters, so survivors keep canonical order and the
// patch machinery applies unchanged. The result is bitwise identical to
// mesh.New on the new forest.
package mesh

import (
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// migration records where each element of a migrated view came from:
// SrcElem maps view element indices to this rank's original element
// indices, -1 for elements that arrived from another rank.
type migration struct {
	SrcElem []int32
}

// wireCorner is one element corner's constraint shipped by key: donor
// node keys and their count. The weights are not shipped — they are the
// uniform 1/N the classifier assigns, reconstructed exactly.
type wireCorner struct {
	N    uint8
	Keys [MaxDonors]NodeKey
}

// wireElem carries one migrating element: its octant and per-corner
// constraints (2^dim of the 8 slots used).
type wireElem struct {
	Oct     sfc.Octant
	Corners [8]wireCorner
}

// newMigratedView redistributes orig by the new splitter table: every
// element moves to the rank owning its SFC position under newSpl,
// carrying its constraints by key, and the receiving ranks rebuild node
// numbering under newSpl ownership without re-classifying anything. The
// view spans exactly orig's forest; only ownership and placement moved.
// Collective.
func newMigratedView(orig *Mesh, newSpl octree.Splitters) (*Mesh, *migration) {
	c := orig.Comm
	dim := orig.Dim
	cpe := 1 << dim
	me := c.Rank()

	// --- Route whole constant-owner runs of the sorted local elements.
	keptLo, keptHi := 0, 0
	var dests []int
	var bufs [][]wireElem
	newSpl.OwnerRuns(orig.Elems, func(lo, hi, owner int) {
		if owner == me {
			keptLo, keptHi = lo, hi
			return
		}
		batch := make([]wireElem, hi-lo)
		for i := lo; i < hi; i++ {
			w := &batch[i-lo]
			w.Oct = orig.Elems[i]
			for cix := 0; cix < cpe; cix++ {
				con := &orig.Conn[i*cpe+cix]
				wc := &w.Corners[cix]
				wc.N = con.N
				for k := 0; k < int(con.N); k++ {
					wc.Keys[k] = orig.Keys[con.Idx[k]]
				}
			}
		}
		dests = append(dests, owner)
		bufs = append(bufs, batch)
	})
	type sourced struct {
		src   int
		batch []wireElem
	}
	var batches []sourced
	if c.Size() > 1 {
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		for i := range srcs {
			batches = append(batches, sourced{srcs[i], recvd[i]})
		}
		// Lower source ranks hold strictly earlier SFC ranges, so
		// source-rank order reassembles a sorted local list (the kept run
		// slots in at src == me).
		batches = append(batches, sourced{me, nil})
		for i := 1; i < len(batches); i++ {
			for j := i; j > 0 && batches[j].src < batches[j-1].src; j-- {
				batches[j], batches[j-1] = batches[j-1], batches[j]
			}
		}
	} else {
		batches = []sourced{{me, nil}}
	}

	// --- Assemble the view: elements, levels, provenance and constraints
	// (interned by key; received corners reconstruct weights as 1/N).
	nView := keptHi - keptLo
	for _, sb := range batches {
		nView += len(sb.batch)
	}
	m := &Mesh{Comm: c, Dim: dim}
	m.Elems = make([]sfc.Octant, 0, nView)
	m.ElemLevel = make([]uint8, 0, nView)
	mig := &migration{SrcElem: make([]int32, 0, nView)}
	b := newBuilder(m)
	b.own = newSpl
	m.ownSpl, m.hasOwnSpl = newSpl, true
	var keys []NodeKey
	conn := make([]Constraint, 0, nView*cpe)
	elemKeys := make([][]NodeKey, 0, nView)
	var eset []NodeKey
	addElem := func(o sfc.Octant, src int32) {
		m.Elems = append(m.Elems, o)
		m.ElemLevel = append(m.ElemLevel, o.Level)
		mig.SrcElem = append(mig.SrcElem, src)
	}
	for _, sb := range batches {
		if sb.src == me {
			for oe := keptLo; oe < keptHi; oe++ {
				addElem(orig.Elems[oe], int32(oe))
				eset = eset[:0]
				for cix := 0; cix < cpe; cix++ {
					ocon := &orig.Conn[oe*cpe+cix]
					var con Constraint
					con.N = ocon.N
					for k := 0; k < int(ocon.N); k++ {
						key := orig.Keys[ocon.Idx[k]]
						con.Idx[k] = b.addNode(key, &keys)
						con.W[k] = ocon.W[k]
						eset = append(eset, key)
					}
					if con.N > 1 {
						m.HangingCorners++
					}
					conn = append(conn, con)
				}
				elemKeys = append(elemKeys, append([]NodeKey(nil), eset...))
			}
			continue
		}
		for i := range sb.batch {
			w := &sb.batch[i]
			addElem(w.Oct, -1)
			eset = eset[:0]
			for cix := 0; cix < cpe; cix++ {
				wc := &w.Corners[cix]
				var con Constraint
				con.N = wc.N
				wgt := 1 / float64(wc.N)
				for k := 0; k < int(wc.N); k++ {
					con.Idx[k] = b.addNode(wc.Keys[k], &keys)
					con.W[k] = wgt
					eset = append(eset, wc.Keys[k])
				}
				if con.N > 1 {
					m.HangingCorners++
				}
				conn = append(conn, con)
			}
			elemKeys = append(elemKeys, append([]NodeKey(nil), eset...))
		}
	}

	// --- Number under the new ownership and wire the exchange schedules;
	// identical to the tail of a from-scratch build.
	b.numberFromConn(keys, conn, elemKeys)
	b.resolveGlobalIDs()
	b.buildScatterLists()
	return m, mig
}

// PatchMigrated builds the mesh over the local leaves of a globally
// sorted, 2:1-balanced forest whose partition splitters moved relative to
// orig: it migrates orig to the new owners (newMigratedView) and patches
// against the view, composing the two steps into one orig-relative Delta.
// The returned view carries orig's forest under the new partition — the
// caller migrates field values onto it (exact, key-addressed) and
// transfers from there, so inter-grid queries resolve locally. Bitwise
// identical to mesh.New(local) on every rank. Collective.
func PatchMigrated(orig *Mesh, local []sfc.Octant) (*Mesh, *Mesh, *Delta) {
	c := orig.Comm
	newSpl := octree.GatherSplitters(c, local)
	view, mig := newMigratedView(orig, newSpl)
	dirty := octree.AddedLeaves(view.Elems, local)
	newM, dv := patchWith(c, orig.Dim, local, view, dirty, newSpl)
	return newM, view, composeDelta(orig, view, newM, mig, dv)
}

// composeDelta turns the view-relative patch delta dv into an
// orig-relative one. Node and element identity compose by key; dirtiness
// widens by re-ownership: any node whose owner moved (or that has no
// orig counterpart) is unstable, and every node sharing a new element
// with an unstable node — or an orig element that migrated away — is
// dirty, so a clean row's column pattern provably keeps its relative
// order under the composed remap (all its columns kept their owner).
func composeDelta(orig, view, newM *Mesh, mig *migration, dv *Delta) *Delta {
	cpe := newM.CornersPerElem()
	d := &Delta{}

	// NodeRemap by key identity; owner-moved nodes stay unmapped so a
	// clean row referencing one fails loudly instead of mis-sorting.
	d.NodeRemap = make([]int32, orig.NumLocal)
	for i := range d.NodeRemap {
		d.NodeRemap[i] = -1
	}
	dn := append([]bool(nil), dv.DirtyNode...)
	unstable := make([]bool, newM.NumLocal)
	for j := 0; j < newM.NumLocal; j++ {
		oi, ok := orig.index[newM.Keys[j]]
		if !ok || orig.Owner[oi] != newM.Owner[j] {
			unstable[j] = true
			dn[j] = true
			continue
		}
		d.NodeRemap[oi] = int32(j)
	}

	// Element provenance composes through the view; elements that arrived
	// from another rank have no local plan slots to carry over.
	d.OldElem = make([]int32, len(dv.OldElem))
	for e := range dv.OldElem {
		oe := int32(-1)
		if ve := dv.OldElem[e]; ve >= 0 {
			oe = mig.SrcElem[ve]
		}
		d.OldElem[e] = oe
		dirtyE := oe < 0
		if dirtyE {
			d.NumDirtyElems++
		}
		if !dirtyE {
			for cix := 0; cix < cpe && !dirtyE; cix++ {
				con := &newM.Conn[e*cpe+cix]
				for k := 0; k < int(con.N); k++ {
					if unstable[con.Idx[k]] {
						dirtyE = true
						break
					}
				}
			}
		}
		if !dirtyE {
			continue
		}
		for cix := 0; cix < cpe; cix++ {
			con := &newM.Conn[e*cpe+cix]
			for k := 0; k < int(con.N); k++ {
				dn[con.Idx[k]] = true
			}
		}
	}

	// Departed elements couple surviving local rows to nodes that left
	// with them (and possibly changed owner without any local element
	// still containing them): their whole stencils re-resolve.
	kept := make([]bool, orig.NumElems())
	for _, oe := range mig.SrcElem {
		if oe >= 0 {
			kept[oe] = true
		}
	}
	for oe := range orig.Elems {
		if kept[oe] {
			continue
		}
		for cix := 0; cix < cpe; cix++ {
			con := &orig.Conn[oe*cpe+cix]
			for k := 0; k < int(con.N); k++ {
				if ni := d.NodeRemap[con.Idx[k]]; ni >= 0 {
					dn[ni] = true
				}
			}
		}
	}
	d.DirtyNode = dn
	return d
}
