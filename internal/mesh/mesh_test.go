package mesh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// buildGlobal constructs a balanced global tree for testing: uniform at
// base level plus deep refinement inside a disc around (cx, cy, cz).
func buildGlobal(dim, base, fine int, cx, cy, cz, r float64) *octree.Tree {
	t := octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		// Refine if the octant's center is within r of the given point.
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		z := float64(o.Z)/float64(sfc.MaxCoord) + s/2
		dx, dy, dz := x-cx, y-cy, z-cz
		if dim == 2 {
			dz = 0
		}
		return math.Sqrt(dx*dx+dy*dy+dz*dz) < r
	}, fine, nil)
	return t.Balance21(nil)
}

func scatterLeaves(t *octree.Tree, rank, p int) []sfc.Octant {
	n := t.Len()
	lo, hi := rank*n/p, (rank+1)*n/p
	out := make([]sfc.Octant, hi-lo)
	copy(out, t.Leaves[lo:hi])
	return out
}

func TestUniformMeshNodeCount(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, level := range []int{1, 2, 3} {
			for _, p := range []int{1, 2, 4} {
				var global int64
				par.Run(p, func(c *par.Comm) {
					tr := octree.Uniform(dim, level)
					m := New(c, dim, scatterLeaves(tr, c.Rank(), p))
					if m.HangingCorners != 0 {
						panic("uniform mesh must have no hanging corners")
					}
					if c.Rank() == 0 {
						global = m.NumGlobal
					}
				})
				n := int64(1<<level) + 1
				want := n * n
				if dim == 3 {
					want *= n
				}
				if global != want {
					t.Fatalf("dim=%d level=%d p=%d: %d global nodes want %d", dim, level, p, global, want)
				}
			}
		}
	}
}

func TestGlobalIDsUniqueAndContiguous(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3, 4} {
			par.Run(p, func(c *par.Comm) {
				tr := buildGlobal(dim, 2, 4, 0.5, 0.5, 0.5, 0.2)
				m := New(c, dim, scatterLeaves(tr, c.Rank(), p))
				// Owned IDs must be [GlobalStart, GlobalStart+NumOwned).
				for i := 0; i < m.NumOwned; i++ {
					if m.GlobalID[i] != m.GlobalStart+int64(i) {
						panic("owned IDs not contiguous")
					}
				}
				// Gather all owned IDs and check global coverage.
				ids := par.Allgatherv(c, m.GlobalID[:m.NumOwned])
				if c.Rank() == 0 {
					sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
					if int64(len(ids)) != m.NumGlobal {
						panic(fmt.Sprintf("dim=%d p=%d: %d owned IDs, %d global", dim, p, len(ids), m.NumGlobal))
					}
					for i, id := range ids {
						if id != int64(i) {
							panic("global IDs not a contiguous range")
						}
					}
				}
				// Ghost IDs must agree with the owner's numbering: verified
				// indirectly by cross-rank key/ID consistency.
				type kv struct {
					Key NodeKey
					ID  int64
				}
				var all []kv
				for i := 0; i < m.NumLocal; i++ {
					all = append(all, kv{m.Keys[i], m.GlobalID[i]})
				}
				flat := par.Allgatherv(c, all)
				if c.Rank() == 0 {
					seen := map[NodeKey]int64{}
					for _, e := range flat {
						if prev, ok := seen[e.Key]; ok && prev != e.ID {
							panic(fmt.Sprintf("node %v has IDs %d and %d", e.Key, prev, e.ID))
						}
						seen[e.Key] = e.ID
					}
				}
			})
		}
	}
}

func TestHangingConstraintWeights(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		tr := buildGlobal(2, 1, 3, 0.25, 0.25, 0, 0.2)
		m := New(c, 2, scatterLeaves(tr, 0, 1))
		if m.HangingCorners == 0 {
			panic("adaptive mesh must have hanging corners")
		}
		cpe := m.CornersPerElem()
		for e := 0; e < m.NumElems(); e++ {
			for cx := 0; cx < cpe; cx++ {
				con := m.Conn[e*cpe+cx]
				var s float64
				for k := 0; k < int(con.N); k++ {
					s += con.W[k]
				}
				if math.Abs(s-1) > 1e-14 {
					panic(fmt.Sprintf("constraint weights sum to %v", s))
				}
			}
		}
	})
}

func TestHangingInterpolationIsLinear(t *testing.T) {
	// Gathering a linear field through constraints must reproduce the
	// field exactly at every element corner (linear consistency of the
	// hanging-node interpolation).
	for _, dim := range []int{2, 3} {
		par.Run(2, func(c *par.Comm) {
			tr := buildGlobal(dim, 1, 4, 0.3, 0.6, 0.4, 0.25)
			m := New(c, dim, scatterLeaves(tr, c.Rank(), 2))
			f := func(x, y, z float64) float64 { return 2*x - 3*y + 0.5*z + 1 }
			v := m.NewVec(1)
			for i := 0; i < m.NumLocal; i++ {
				x, y, z := m.NodeCoord(i)
				v[i] = f(x, y, z)
			}
			buf := make([]float64, m.CornersPerElem())
			for e := 0; e < m.NumElems(); e++ {
				m.GatherElem(e, v, 1, buf)
				h := m.ElemSize(e)
				ox, oy, oz := m.ElemOrigin(e)
				for cx := 0; cx < m.CornersPerElem(); cx++ {
					x := ox + h*float64(cx&1)
					y := oy + h*float64((cx>>1)&1)
					z := oz
					if dim == 3 {
						z += h * float64((cx>>2)&1)
					}
					if math.Abs(buf[cx]-f(x, y, z)) > 1e-12 {
						panic(fmt.Sprintf("dim=%d elem %d corner %d: got %v want %v",
							dim, e, cx, buf[cx], f(x, y, z)))
					}
				}
			}
		})
	}
}

func TestGhostReadConsistency(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		tr := buildGlobal(2, 2, 4, 0.5, 0.5, 0, 0.2)
		m := New(c, 2, scatterLeaves(tr, c.Rank(), 4))
		v := m.NewVec(1)
		// Owners write their global ID; after GhostRead every local node
		// must hold its owner's value.
		for i := 0; i < m.NumOwned; i++ {
			v[i] = float64(m.GlobalID[i])
		}
		m.GhostRead(v, 1)
		for i := 0; i < m.NumLocal; i++ {
			if v[i] != float64(m.GlobalID[i]) {
				panic(fmt.Sprintf("rank %d node %d: ghost value %v want %v", c.Rank(), i, v[i], float64(m.GlobalID[i])))
			}
		}
	})
}

func TestGhostWriteAccumulate(t *testing.T) {
	par.Run(4, func(c *par.Comm) {
		tr := buildGlobal(2, 2, 4, 0.5, 0.5, 0, 0.2)
		m := New(c, 2, scatterLeaves(tr, c.Rank(), 4))
		// Every rank contributes 1 to every local node; after GhostWrite,
		// an owned node's value equals the number of ranks using it.
		v := m.NewVec(1)
		for i := range v {
			v[i] = 1
		}
		m.GhostWrite(v, 1, Add, 0)
		// Cross-check: gather (key -> count of ranks using it).
		type ku struct {
			Key NodeKey
		}
		var used []ku
		for i := 0; i < m.NumLocal; i++ {
			used = append(used, ku{m.Keys[i]})
		}
		flat := par.Allgatherv(c, used)
		counts := map[NodeKey]float64{}
		for _, e := range flat {
			counts[e.Key]++
		}
		for i := 0; i < m.NumOwned; i++ {
			if v[i] != counts[m.Keys[i]] {
				panic(fmt.Sprintf("owned node %v: accumulated %v want %v", m.Keys[i], v[i], counts[m.Keys[i]]))
			}
		}
	})
}

// lumpedMassKernel is a simple symmetric elemental operator (diagonal
// lumped mass): out_c = (h^dim / 2^dim) * in_c.
func lumpedMassKernel(dim int) ElemKernel {
	return func(e int, h float64, in, out []float64) {
		vol := math.Pow(h, float64(dim))
		f := vol / float64(int(1)<<dim)
		for i := range in {
			out[i] = f * in[i]
		}
	}
}

func TestMatVecLumpedMassIntegratesVolume(t *testing.T) {
	// sum(M_lumped * 1) = domain volume = 1, on any mesh and rank count.
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 2, 4} {
			par.Run(p, func(c *par.Comm) {
				tr := buildGlobal(dim, 1, 4, 0.4, 0.4, 0.4, 0.3)
				m := New(c, dim, scatterLeaves(tr, c.Rank(), p))
				in := m.NewVec(1)
				out := m.NewVec(1)
				for i := range in {
					in[i] = 1
				}
				m.MatVec(in, out, 1, lumpedMassKernel(dim))
				var s float64
				for i := 0; i < m.NumOwned; i++ {
					s += out[i]
				}
				tot := m.GlobalSum(s)
				if math.Abs(tot-1) > 1e-12 {
					panic(fmt.Sprintf("dim=%d p=%d: volume %v", dim, p, tot))
				}
			})
		}
	}
}

// gatherByGlobalID collects the owned segment of v into a dense global
// array on rank 0.
func gatherByGlobalID(c *par.Comm, m *Mesh, v []float64) []float64 {
	type kv struct {
		ID  int64
		Val float64
	}
	var local []kv
	for i := 0; i < m.NumOwned; i++ {
		local = append(local, kv{m.GlobalID[i], v[i]})
	}
	flat := par.Allgatherv(c, local)
	if c.Rank() != 0 {
		return nil
	}
	out := make([]float64, m.NumGlobal)
	for _, e := range flat {
		out[e.ID] = e.Val
	}
	return out
}

func TestMatVecMatchesSerial(t *testing.T) {
	// The distributed MATVEC must produce identical results (up to
	// floating-point associativity in ghost accumulation) to a serial run,
	// for a nontrivial kernel mixing corner values.
	mix := func(e int, h float64, in, out []float64) {
		n := len(in)
		var avg float64
		for _, x := range in {
			avg += x
		}
		avg /= float64(n)
		for i := range out {
			out[i] = h * (in[i] + 0.5*avg)
		}
	}
	for _, dim := range []int{2, 3} {
		var serial []float64
		var keyOrder map[NodeKey]int64
		par.Run(1, func(c *par.Comm) {
			tr := buildGlobal(dim, 1, 4, 0.3, 0.5, 0.5, 0.25)
			m := New(c, dim, scatterLeaves(tr, 0, 1))
			in := m.NewVec(1)
			for i := range in {
				x, y, z := m.NodeCoord(i)
				in[i] = math.Sin(3*x) + y*y - z
			}
			out := m.NewVec(1)
			m.MatVec(in, out, 1, mix)
			serial = gatherByGlobalID(c, m, out)
			keyOrder = make(map[NodeKey]int64)
			for i := 0; i < m.NumOwned; i++ {
				keyOrder[m.Keys[i]] = m.GlobalID[i]
			}
		})
		for _, p := range []int{2, 4, 7} {
			var parallel []float64
			var parKeys map[NodeKey]int64
			par.Run(p, func(c *par.Comm) {
				tr := buildGlobal(dim, 1, 4, 0.3, 0.5, 0.5, 0.25)
				m := New(c, dim, scatterLeaves(tr, c.Rank(), p))
				in := m.NewVec(1)
				for i := range in {
					x, y, z := m.NodeCoord(i)
					in[i] = math.Sin(3*x) + y*y - z
				}
				out := m.NewVec(1)
				m.MatVec(in, out, 1, mix)
				res := gatherByGlobalID(c, m, out)
				if c.Rank() == 0 {
					parallel = res
					parKeys = make(map[NodeKey]int64)
				}
				type kid struct {
					Key NodeKey
					ID  int64
				}
				var kl []kid
				for i := 0; i < m.NumOwned; i++ {
					kl = append(kl, kid{m.Keys[i], m.GlobalID[i]})
				}
				flat := par.Allgatherv(c, kl)
				if c.Rank() == 0 {
					for _, e := range flat {
						parKeys[e.Key] = e.ID
					}
				}
			})
			if len(parallel) != len(serial) {
				t.Fatalf("dim=%d p=%d: %d nodes vs serial %d", dim, p, len(parallel), len(serial))
			}
			// Compare by key (numbering may differ across rank counts).
			for key, sid := range keyOrder {
				pid, ok := parKeys[key]
				if !ok {
					t.Fatalf("dim=%d p=%d: node %v missing in parallel run", dim, p, key)
				}
				if math.Abs(serial[sid]-parallel[pid]) > 1e-11 {
					t.Fatalf("dim=%d p=%d node %v: serial %v parallel %v", dim, p, key, serial[sid], parallel[pid])
				}
			}
		}
	}
}

func TestMultiDofVectors(t *testing.T) {
	par.Run(3, func(c *par.Comm) {
		tr := buildGlobal(2, 2, 3, 0.5, 0.5, 0, 0.2)
		m := New(c, 2, scatterLeaves(tr, c.Rank(), 3))
		const ndof = 3
		v := m.NewVec(ndof)
		for i := 0; i < m.NumOwned; i++ {
			for d := 0; d < ndof; d++ {
				v[i*ndof+d] = float64(m.GlobalID[i]*10 + int64(d))
			}
		}
		m.GhostRead(v, ndof)
		for i := 0; i < m.NumLocal; i++ {
			for d := 0; d < ndof; d++ {
				want := float64(m.GlobalID[i]*10 + int64(d))
				if v[i*ndof+d] != want {
					panic(fmt.Sprintf("ndof ghost read: node %d dof %d: %v want %v", i, d, v[i*ndof+d], want))
				}
			}
		}
	})
}

func TestDonorsAreNeverHanging(t *testing.T) {
	// Under full corner 2:1 balance, every donor of a hanging corner must
	// itself be a global (non-hanging) vertex. Verify globally.
	for _, dim := range []int{2, 3} {
		par.Run(2, func(c *par.Comm) {
			r := rand.New(rand.NewSource(11))
			tr := octree.Build(dim, func(o sfc.Octant) bool {
				return int(o.Level) < 2 || (int(o.Level) < 5 && r.Float64() < 0.3)
			}, 5, nil).Balance21(nil)
			m := New(c, dim, scatterLeaves(tr, c.Rank(), 2))
			// All nodes in m.Keys are non-hanging by construction (donors
			// or regular corners were classified); classification panics
			// internally on inconsistent lattices, so reaching here with a
			// consistent global ID set is the assertion.
			ids := par.Allgatherv(c, m.GlobalID[:m.NumOwned])
			if c.Rank() == 0 && int64(len(ids)) != m.NumGlobal {
				panic("owned counts inconsistent")
			}
		})
	}
}
