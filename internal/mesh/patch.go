// Incremental mesh construction: Patch rebuilds a distributed CG mesh
// after a small forest change without re-classifying, re-sorting or
// re-interning the untouched bulk. The result is bitwise identical to
// mesh.New on the same forest — Patch exploits that New's numbering is
// canonical (a pure function of the node key set, the splitter table and
// the rank), so it only has to reproduce the exact key set: survivors
// keep their relative order and new keys merge in under the same
// comparator.
package mesh

import (
	"sort"

	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Delta describes how a patched mesh relates to its predecessor. The fem
// layer uses it to remap frozen sparsity rows and reuse assembly-plan
// slots for elements whose connectivity survived.
type Delta struct {
	// NodeRemap maps old local node indices to new ones, -1 if dropped.
	// Partition-stable patches keep it monotone over survivors; a
	// migrated patch only guarantees order preservation per clean row
	// (any node whose owner moved is dirty together with every node it
	// shares an element with), which is what the plan repair needs: a
	// clean row's remapped column pattern stays sorted.
	NodeRemap []int32
	// OldElem maps each new element index to its old element index when
	// both the octant and its connectivity survived untouched, else -1.
	OldElem []int32
	// DirtyNode flags new local nodes whose matrix row/column structure
	// may differ from the old mesh: new nodes, nodes referenced by dirty
	// or removed elements, and partition-boundary rows (whose patterns
	// include remotely contributed couplings).
	DirtyNode []bool
	// NumDirtyElems counts elements with OldElem < 0 (telemetry).
	NumDirtyElems int
}

// Patch builds the mesh over the local leaves of a globally sorted,
// 2:1-balanced forest that differs from old's forest only in the dirty
// leaves (the local leaves absent from old.Elems, see octree.AddedLeaves).
// Collective. Returns (nil, nil) — consistently on every rank — when the
// partition splitters moved, in which case node ownership is not stable
// and the caller must fall back to New or to PatchMigrated.
func Patch(c *par.Comm, dim int, local []sfc.Octant, old *Mesh, dirty []sfc.Octant) (*Mesh, *Delta) {
	newSpl := octree.GatherSplitters(c, local)
	oldSpl := octree.GatherSplitters(c, old.Elems)
	if !newSpl.Equal(oldSpl) {
		// Both tables are allgathered, so every rank reaches this branch
		// together; no further collectives have run yet.
		return nil, nil
	}
	return patchWith(c, dim, local, old, dirty, newSpl)
}

// patchWith is Patch's body, parameterized on the splitter table spl of
// the new forest (always the table local itself gathers). It requires
// old's node ownership to already agree with spl: either the splitters
// never moved (Patch's gate) or old is a migrated view whose ownership
// was decided from the new partition (PatchMigrated). The returned mesh
// and delta are relative to old.
func patchWith(c *par.Comm, dim int, local []sfc.Octant, old *Mesh, dirty []sfc.Octant, spl octree.Splitters) (*Mesh, *Delta) {
	newSpl := spl
	m := &Mesh{Comm: c, Dim: dim, Elems: local}
	m.ElemLevel = make([]uint8, len(local))
	for i, o := range local {
		m.ElemLevel[i] = o.Level
	}
	b := newBuilder(m)
	b.spl = newSpl
	b.own = newSpl
	m.ownSpl, m.hasOwnSpl = newSpl, true
	cpe := m.CornersPerElem()
	me := c.Rank()
	me32 := int32(me)

	// --- Match surviving elements (two-pointer walk over sorted lists).
	oldElem := make([]int32, len(local))
	oldGone := make([]bool, len(old.Elems)) // removed or reclassified below
	for i := range oldGone {
		oldGone[i] = true
	}
	{
		i := 0
		for e, o := range local {
			for i < len(old.Elems) && sfc.Less(old.Elems[i], o) {
				i++
			}
			if i < len(old.Elems) && old.Elems[i].EqualKey(o) {
				oldElem[e] = int32(i)
				oldGone[i] = false
			} else {
				oldElem[e] = -1
			}
		}
	}

	// --- Exchange dirty octants so every rank knows the changed regions
	// adjacent to it (round A).
	globalDirty := append([]sfc.Octant(nil), dirty...)
	var nbuf [26]sfc.Octant
	if c.Size() > 1 {
		perRank := make(map[int]map[sfc.Octant]bool)
		for _, d := range dirty {
			for _, n := range d.AllNeighbors(nbuf[:0]) {
				for _, r := range newSpl.RangeOwners(n) {
					if r == me {
						continue
					}
					if perRank[r] == nil {
						perRank[r] = make(map[sfc.Octant]bool)
					}
					perRank[r][d] = true
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]sfc.Octant, 0, len(perRank))
		for r, set := range perRank {
			lst := make([]sfc.Octant, 0, len(set))
			for o := range set {
				lst = append(lst, o)
			}
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		_, recvd := par.NBXExchange(c, dests, bufs)
		for _, batch := range recvd {
			globalDirty = append(globalDirty, batch...)
		}
	}

	// --- Mark affected elements: new octants, plus anything adjacent to a
	// dirty region. Every classification change is driven by a changed
	// leaf touching the element, and coarsened/refined regions are always
	// covered by an added octant, so adjacency to the dirty set is a
	// complete criterion.
	affected := make([]bool, len(local))
	numDirtyElems := 0
	for e := range local {
		if oldElem[e] < 0 {
			affected[e] = true
		}
	}
	ltree := &octree.Tree{Dim: dim, Leaves: local}
	for _, d := range globalDirty {
		mark := func(q sfc.Octant) {
			lo, hi := ltree.OverlapRange(q)
			for j := lo; j < hi; j++ {
				affected[j] = true
			}
		}
		mark(d)
		for _, n := range d.AllNeighbors(nbuf[:0]) {
			mark(n)
		}
	}
	for e := range local {
		if affected[e] {
			numDirtyElems++
			if oldElem[e] >= 0 {
				oldGone[oldElem[e]] = true // connectivity will be rebuilt
			}
		}
	}

	// --- Ghost elements around the affected region only (rounds B and C):
	// ship my affected elements to the owners of their neighbour regions;
	// they reply with their leaves touching them. Together with the
	// incoming affected elements of other ranks this yields every remote
	// leaf touching one of my affected elements — all classify needs.
	var ghosts []sfc.Octant
	if c.Size() > 1 {
		perRank := make(map[int]map[sfc.Octant]bool)
		for e, o := range local {
			if !affected[e] {
				continue
			}
			for _, n := range o.AllNeighbors(nbuf[:0]) {
				for _, r := range newSpl.RangeOwners(n) {
					if r == me {
						continue
					}
					if perRank[r] == nil {
						perRank[r] = make(map[sfc.Octant]bool)
					}
					perRank[r][o] = true
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]sfc.Octant, 0, len(perRank))
		for r, set := range perRank {
			lst := make([]sfc.Octant, 0, len(set))
			for o := range set {
				lst = append(lst, o)
			}
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		srcs, recvd := par.NBXExchange(c, dests, bufs)
		for _, batch := range recvd {
			ghosts = append(ghosts, batch...)
		}
		// Reply with local leaves touching each received element.
		rdests := make([]int, 0, len(srcs))
		rbufs := make([][]sfc.Octant, 0, len(srcs))
		for i, src := range srcs {
			seen := make(map[int]bool)
			var reply []sfc.Octant
			collect := func(q sfc.Octant) {
				lo, hi := ltree.OverlapRange(q)
				for j := lo; j < hi; j++ {
					if !seen[j] {
						seen[j] = true
						reply = append(reply, local[j])
					}
				}
			}
			for _, o := range recvd[i] {
				collect(o)
				for _, n := range o.AllNeighbors(nbuf[:0]) {
					collect(n)
				}
			}
			if len(reply) > 0 {
				rdests = append(rdests, src)
				rbufs = append(rbufs, reply)
			}
		}
		_, replies := par.NBXExchange(c, rdests, rbufs)
		for _, batch := range replies {
			ghosts = append(ghosts, batch...)
		}
	}
	// combined = local ∪ ghosts, sorted: ghosts are few, so sort them and
	// merge instead of re-sorting the whole element list.
	if len(ghosts) > 0 {
		sfc.Sort(ghosts)
		merged := make([]sfc.Octant, 0, len(local)+len(ghosts))
		i, j := 0, 0
		for i < len(local) || j < len(ghosts) {
			switch {
			case i == len(local):
				merged = append(merged, ghosts[j])
				j++
			case j == len(ghosts):
				merged = append(merged, local[i])
				i++
			case local[i].EqualKey(ghosts[j]):
				j++ // duplicate of a local leaf
			case sfc.Less(local[i], ghosts[j]):
				merged = append(merged, local[i])
				i++
			default:
				merged = append(merged, ghosts[j])
				j++
			}
		}
		// Drop exact ghost duplicates that survived the merge.
		out := merged[:0]
		for k, o := range merged {
			if k > 0 && o.EqualKey(merged[k-1]) {
				continue
			}
			out = append(out, o)
		}
		b.combined = &octree.Tree{Dim: dim, Leaves: out}
	} else {
		b.combined = ltree
	}

	// --- Connectivity. Node references are provisional codes: old local
	// indices for keys the old mesh knows, old.NumLocal+j for new keys.
	oldMark := make([]bool, old.NumLocal)
	var newKeys []NodeKey
	var newOwner []int32
	newIdx := make(map[NodeKey]int32)
	intern := func(k NodeKey) int32 {
		if oi, ok := old.index[k]; ok {
			oldMark[oi] = true
			return oi
		}
		if j, ok := newIdx[k]; ok {
			return int32(old.NumLocal) + j
		}
		j := int32(len(newKeys))
		newIdx[k] = j
		newKeys = append(newKeys, k)
		newOwner = append(newOwner, int32(b.canonicalOwner(k)))
		return int32(old.NumLocal) + j
	}
	conn := make([]Constraint, len(local)*cpe)
	for e, o := range local {
		if !affected[e] {
			oe := int(oldElem[e])
			copy(conn[e*cpe:(e+1)*cpe], old.Conn[oe*cpe:(oe+1)*cpe])
			for cix := 0; cix < cpe; cix++ {
				con := &conn[e*cpe+cix]
				for k := 0; k < int(con.N); k++ {
					oldMark[con.Idx[k]] = true
				}
				if con.N > 1 {
					m.HangingCorners++
				}
			}
			continue
		}
		for cix := 0; cix < cpe; cix++ {
			p := cornerKey(o, cix)
			hanging, donors, w := b.classify(p)
			con := &conn[e*cpe+cix]
			if !hanging {
				con.N = 1
				con.Idx[0] = intern(p)
				con.W[0] = 1
				continue
			}
			m.HangingCorners++
			con.N = uint8(len(donors))
			for i, q := range donors {
				con.Idx[i] = intern(q)
				con.W[i] = w
			}
		}
	}

	// --- Off-process column exchange: a rank assembling a row I own
	// references every node of the contributing element, so each element
	// touching a remotely-owned node ships its full key set to that owner
	// — the same sets mesh.New ships, reproduced here with O(1) owner
	// lookups for clean elements.
	keyOf := func(code int32) NodeKey {
		if code < int32(old.NumLocal) {
			return old.Keys[code]
		}
		return newKeys[code-int32(old.NumLocal)]
	}
	ownerOf := func(code int32) int32 {
		if code < int32(old.NumLocal) {
			return old.Owner[code]
		}
		return newOwner[code-int32(old.NumLocal)]
	}
	if c.Size() > 1 {
		perRank := map[int]map[NodeKey]bool{}
		var codes []int32
		for e := range local {
			codes = codes[:0]
			for cix := 0; cix < cpe; cix++ {
				con := &conn[e*cpe+cix]
				for k := 0; k < int(con.N); k++ {
					codes = append(codes, con.Idx[k])
				}
			}
			var owners []int
			for _, cd := range codes {
				if r := ownerOf(cd); r != me32 {
					owners = append(owners, int(r))
				}
			}
			for _, r := range owners {
				if perRank[r] == nil {
					perRank[r] = map[NodeKey]bool{}
				}
				for _, cd := range codes {
					perRank[r][keyOf(cd)] = true
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]NodeKey, 0, len(perRank))
		for r, set := range perRank {
			lst := make([]NodeKey, 0, len(set))
			for k := range set {
				lst = append(lst, k)
			}
			sort.Slice(lst, func(i, j int) bool { return keyLess(lst[i], lst[j]) })
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		_, recvd := par.NBXExchange(c, dests, bufs)
		for _, batch := range recvd {
			for _, k := range batch {
				intern(k)
			}
		}
	}

	// --- Final numbering: survivors already sit in canonical order
	// (owned-first, then by owner and key — a subsequence of the old
	// order), so merging them with the sorted new keys reproduces
	// classifyAndNumber's sort without sorting the bulk.
	norder := make([]int32, len(newKeys))
	for i := range norder {
		norder[i] = int32(i)
	}
	sort.Slice(norder, func(a, c int) bool {
		ia, ic := norder[a], norder[c]
		oa, oc := newOwner[ia] == me32, newOwner[ic] == me32
		if oa != oc {
			return oa
		}
		if newOwner[ia] != newOwner[ic] {
			return newOwner[ia] < newOwner[ic]
		}
		return keyLess(newKeys[ia], newKeys[ic])
	})
	nSurv := 0
	for _, mk := range oldMark {
		if mk {
			nSurv++
		}
	}
	m.NumLocal = nSurv + len(newKeys)
	m.Keys = make([]NodeKey, 0, m.NumLocal)
	m.Owner = make([]int32, 0, m.NumLocal)
	m.index = make(map[NodeKey]int32, m.NumLocal)
	remapOld := make([]int32, old.NumLocal)
	for i := range remapOld {
		remapOld[i] = -1
	}
	remapNew := make([]int32, len(newKeys))
	emit := func(k NodeKey, owner int32) int32 {
		pos := int32(len(m.Keys))
		m.Keys = append(m.Keys, k)
		m.Owner = append(m.Owner, owner)
		m.index[k] = pos
		return pos
	}
	// less reports whether survivor oi precedes new key nj canonically.
	survLess := func(oi int, nj int32) bool {
		so, no := old.Owner[oi] == me32, newOwner[nj] == me32
		if so != no {
			return so
		}
		if old.Owner[oi] != newOwner[nj] {
			return old.Owner[oi] < newOwner[nj]
		}
		return keyLess(old.Keys[oi], newKeys[nj])
	}
	{
		oi, j := 0, 0
		for oi < old.NumLocal && !oldMark[oi] {
			oi++
		}
		for oi < old.NumLocal || j < len(newKeys) {
			if j == len(newKeys) || (oi < old.NumLocal && survLess(oi, norder[j])) {
				remapOld[oi] = emit(old.Keys[oi], old.Owner[oi])
				oi++
				for oi < old.NumLocal && !oldMark[oi] {
					oi++
				}
			} else {
				nj := norder[j]
				remapNew[nj] = emit(newKeys[nj], newOwner[nj])
				j++
			}
		}
	}
	m.NumOwned = 0
	for _, o := range m.Owner {
		if o == me32 {
			m.NumOwned++
		}
	}

	// --- Translate provisional codes to final indices.
	final := func(code int32) int32 {
		if code < int32(old.NumLocal) {
			return remapOld[code]
		}
		return remapNew[code-int32(old.NumLocal)]
	}
	for i := range conn {
		for k := 0; k < int(conn[i].N); k++ {
			conn[i].Idx[k] = final(conn[i].Idx[k])
		}
	}
	m.Conn = conn

	b.resolveGlobalIDs()
	b.buildScatterLists()

	// --- Delta for the fem layer.
	d := &Delta{NodeRemap: remapOld, NumDirtyElems: numDirtyElems}
	d.OldElem = make([]int32, len(local))
	for e := range local {
		if affected[e] {
			d.OldElem[e] = -1
		} else {
			d.OldElem[e] = oldElem[e]
		}
	}
	dn := make([]bool, m.NumLocal)
	for _, j := range remapNew {
		dn[j] = true
	}
	for e := range local {
		if !affected[e] {
			continue
		}
		for cix := 0; cix < cpe; cix++ {
			con := &conn[e*cpe+cix]
			for k := 0; k < int(con.N); k++ {
				dn[con.Idx[k]] = true
			}
		}
	}
	for oe := range old.Elems {
		if !oldGone[oe] {
			continue
		}
		for cix := 0; cix < cpe; cix++ {
			con := &old.Conn[oe*cpe+cix]
			for k := 0; k < int(con.N); k++ {
				if ni := remapOld[con.Idx[k]]; ni >= 0 {
					dn[ni] = true
				}
			}
		}
	}
	for _, pl := range old.sendTo {
		for _, idx := range pl.idx {
			if ni := remapOld[idx]; ni >= 0 {
				dn[ni] = true
			}
		}
	}
	for _, pl := range m.sendTo {
		for _, idx := range pl.idx {
			dn[idx] = true
		}
	}
	d.DirtyNode = dn
	return m, d
}
