// Package mesh builds distributed continuous-Galerkin finite element
// meshes over 2:1-balanced linearized octrees, following the mesh-free,
// key-based approach of Saurabh et al. (IPDPS 2023) and its predecessors
// (Ishii et al. SC'19): elements are the local leaves, vertices are
// identified by their integer location keys, hanging vertices carry no
// degrees of freedom and are interpolated from the corners of the coarser
// touching element, and ownership of a vertex is decided purely from the
// SFC partition table (the rank owning the cell containing the vertex's
// canonical point), so enumeration needs no global sort. Ghost reads and
// accumulating/combining ghost writes overlap naturally with elemental
// traversal and form the MATVEC kernel that both the FEM operators and the
// erosion/dilation feature detection (Sec. II-B3) are built on.
package mesh

import (
	"fmt"
	"sort"

	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// NodeKey identifies a vertex by its integer grid coordinates on the
// deepest-level lattice (0..sfc.MaxCoord inclusive per dimension).
type NodeKey struct {
	X, Y, Z uint32
}

func keyLess(a, b NodeKey) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// MaxDonors is the most donor nodes a constrained (hanging) element corner
// can reference: a face-hanging vertex in 3D interpolates from 4 corners.
const MaxDonors = 4

// Constraint expresses one element corner as a weighted combination of
// local node values. Non-hanging corners have N==1 and weight 1.
type Constraint struct {
	N   uint8
	Idx [MaxDonors]int32
	W   [MaxDonors]float64
}

// Mesh is a distributed CG finite-element mesh. All slices indexed by
// "local node" cover owned nodes first ([0,NumOwned)) followed by ghost
// nodes ([NumOwned,NumLocal)).
type Mesh struct {
	Comm *par.Comm
	Dim  int

	// Elems are the local leaf octants (sorted); ElemLevel caches levels.
	Elems     []sfc.Octant
	ElemLevel []uint8

	// Local node bookkeeping.
	NumOwned int
	NumLocal int
	Keys     []NodeKey
	Owner    []int32 // owning rank per local node
	GlobalID []int64 // global DOF number per local node

	NumGlobal   int64 // total non-hanging vertices across all ranks
	GlobalStart int64 // first global ID owned by this rank

	// Conn holds 2^Dim constraints per element, corner-major:
	// Conn[e*cornersPerElem + c].
	Conn []Constraint

	// Ghost exchange lists (per peer rank).
	sendTo   []peerList // owned node indices serialized to each borrower
	recvFrom []peerList // ghost node indices filled from each owner

	// index maps node keys to local indices.
	index map[NodeKey]int32

	// ownSpl is the splitter table node ownership was decided from when
	// the mesh was built (for a migrated old-mesh view this is the NEW
	// partition's table, not the one its element list would gather).
	ownSpl    octree.Splitters
	hasOwnSpl bool

	// gwRecv parks received ghost-write batches until all peers have
	// arrived, so GhostWriteEnd can combine them in rank order (reused
	// across exchanges).
	gwRecv [][]float64

	// redScratch holds two alternating buffers for in-place global
	// reductions (GlobalSumInto). Two suffice: a buffer broadcast in
	// collective k can still be read by a lagging rank until it enters
	// collective k+1, and is only reused in collective k+2 — by which
	// point every rank has participated in k+1 and therefore finished
	// with k's buffer.
	redScratch [2][]float64
	redTick    int

	// HangingCorners counts constrained element corners (diagnostics).
	HangingCorners int
}

// OwnershipTable returns the splitter table node ownership was decided
// from at build time. Every mesh the package builds records one; the
// boolean guards hand-constructed meshes. Keyed migration routes by this
// table rather than re-gathering one from the element list: for a
// migrated old-mesh view the two differ (elements keep their old-forest
// extents, ownership already follows the new partition).
func (m *Mesh) OwnershipTable() (octree.Splitters, bool) {
	return m.ownSpl, m.hasOwnSpl
}

// NodeIndex returns the local index of the node with the given key, if it
// exists on this rank.
func (m *Mesh) NodeIndex(k NodeKey) (int, bool) {
	i, ok := m.index[k]
	return int(i), ok
}

// OnBoundary reports whether local node i lies on the domain boundary.
func (m *Mesh) OnBoundary(i int) bool {
	k := m.Keys[i]
	if k.X == 0 || k.X == sfc.MaxCoord || k.Y == 0 || k.Y == sfc.MaxCoord {
		return true
	}
	return m.Dim == 3 && (k.Z == 0 || k.Z == sfc.MaxCoord)
}

type peerList struct {
	rank int
	idx  []int32
	// buf is the reusable serialization buffer for ghost exchange with
	// this peer (grown to the largest ndof seen). Safe to reuse across
	// exchanges: each exchange ends with a barrier the receiver enters
	// only after copying the payload out.
	buf []float64
}

// CornersPerElem returns 2^Dim.
func (m *Mesh) CornersPerElem() int { return 1 << m.Dim }

// NumElems returns the local element count.
func (m *Mesh) NumElems() int { return len(m.Elems) }

// NodeCoord returns the physical (unit-domain) coordinates of local node i.
func (m *Mesh) NodeCoord(i int) (x, y, z float64) {
	k := m.Keys[i]
	s := float64(sfc.MaxCoord)
	return float64(k.X) / s, float64(k.Y) / s, float64(k.Z) / s
}

// ElemSize returns the physical side length of local element e.
func (m *Mesh) ElemSize(e int) float64 {
	return float64(m.Elems[e].Side()) / float64(sfc.MaxCoord)
}

// ElemOrigin returns the physical coordinates of element e's anchor.
func (m *Mesh) ElemOrigin(e int) (x, y, z float64) {
	o := m.Elems[e]
	s := float64(sfc.MaxCoord)
	return float64(o.X) / s, float64(o.Y) / s, float64(o.Z) / s
}

// cornerKey returns the grid key of corner c (bit 0 = +x, 1 = +y, 2 = +z)
// of octant o.
func cornerKey(o sfc.Octant, c int) NodeKey {
	s := o.Side()
	k := NodeKey{o.X, o.Y, o.Z}
	if c&1 != 0 {
		k.X += s
	}
	if c&2 != 0 {
		k.Y += s
	}
	if o.Dim == 3 && c&4 != 0 {
		k.Z += s
	}
	return k
}

// New builds the distributed mesh over the local leaves of a globally
// sorted, 2:1-balanced, complete forest. Collective.
func New(c *par.Comm, dim int, local []sfc.Octant) *Mesh {
	m := &Mesh{Comm: c, Dim: dim, Elems: local}
	m.ElemLevel = make([]uint8, len(local))
	for i, o := range local {
		m.ElemLevel[i] = o.Level
	}
	b := newBuilder(m)
	b.exchangeGhostElements()
	b.classifyAndNumber()
	b.resolveGlobalIDs()
	b.buildScatterLists()
	return m
}

// builder holds construction scratch state. spl is the element-derived
// table used for geometric routing (which ranks hold the leaves covering
// a region); own is the table node ownership is decided from. The two
// coincide for every normal build — they split only for the migrated
// old-mesh view, whose elements still span the old forest's extents while
// its nodes must already belong to the new partition's owners.
type builder struct {
	m        *Mesh
	spl      octree.Splitters
	own      octree.Splitters
	combined *octree.Tree // local + ghost elements, sorted
	combRank []int32      // owner rank per combined element
	nodeIdx  map[NodeKey]int32
}

func newBuilder(m *Mesh) *builder {
	return &builder{m: m, nodeIdx: make(map[NodeKey]int32)}
}

// exchangeGhostElements ships every local element to the owners of the
// regions it touches, so each rank can point-locate every leaf touching
// any corner of its local elements.
func (b *builder) exchangeGhostElements() {
	m := b.m
	c := m.Comm
	b.spl = octree.GatherSplitters(c, m.Elems)
	b.own = b.spl
	m.ownSpl, m.hasOwnSpl = b.own, true
	perRank := make(map[int]map[sfc.Octant]bool)
	var nbuf [26]sfc.Octant
	for _, o := range m.Elems {
		for _, n := range o.AllNeighbors(nbuf[:0]) {
			for _, r := range b.spl.RangeOwners(n) {
				if r == c.Rank() {
					continue
				}
				if perRank[r] == nil {
					perRank[r] = make(map[sfc.Octant]bool)
				}
				perRank[r][o] = true
			}
		}
	}
	dests := make([]int, 0, len(perRank))
	bufs := make([][]sfc.Octant, 0, len(perRank))
	for r, set := range perRank {
		lst := make([]sfc.Octant, 0, len(set))
		for o := range set {
			lst = append(lst, o)
		}
		dests = append(dests, r)
		bufs = append(bufs, lst)
	}
	srcs, recvd := par.NBXExchange(c, dests, bufs)

	type tagged struct {
		oct  sfc.Octant
		rank int32
	}
	all := make([]tagged, 0, len(m.Elems))
	for _, o := range m.Elems {
		all = append(all, tagged{o, int32(c.Rank())})
	}
	for i, batch := range recvd {
		for _, o := range batch {
			all = append(all, tagged{o, int32(srcs[i])})
		}
	}
	sort.Slice(all, func(i, j int) bool { return sfc.Less(all[i].oct, all[j].oct) })
	octs := make([]sfc.Octant, len(all))
	ranks := make([]int32, len(all))
	for i, t := range all {
		octs[i] = t.oct
		ranks[i] = t.rank
	}
	b.combined = &octree.Tree{Dim: m.Dim, Leaves: octs}
	b.combRank = ranks
}

// touchingLeaves returns the distinct combined-element indices touching
// grid point p: the cells containing p shifted by -1 in each subset of
// dimensions.
func (b *builder) touchingLeaves(p NodeKey, out []int32) []int32 {
	dim := b.m.Dim
	for s := 0; s < 1<<dim; s++ {
		x, y, z := p.X, p.Y, p.Z
		if s&1 != 0 {
			if x == 0 {
				continue
			}
			x--
		} else if x >= sfc.MaxCoord {
			continue
		}
		if s&2 != 0 {
			if y == 0 {
				continue
			}
			y--
		} else if y >= sfc.MaxCoord {
			continue
		}
		if dim == 3 {
			if s&4 != 0 {
				if z == 0 {
					continue
				}
				z--
			} else if z >= sfc.MaxCoord {
				continue
			}
		}
		j := b.combined.PointLocate(x, y, z)
		if j < 0 {
			continue
		}
		dup := false
		for _, v := range out {
			if v == int32(j) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, int32(j))
		}
	}
	return out
}

// isCornerOf reports whether p is one of o's 2^d corners.
func isCornerOf(p NodeKey, o sfc.Octant) bool {
	s := o.Side()
	okX := p.X == o.X || p.X == o.X+s
	okY := p.Y == o.Y || p.Y == o.Y+s
	if o.Dim == 2 {
		return okX && okY && p.Z == 0
	}
	return okX && okY && (p.Z == o.Z || p.Z == o.Z+s)
}

// canonicalOwner returns the rank owning grid point p: the owner of the
// cell containing p after clamping boundary coordinates inward. The rule
// uses only the ownership splitter table, so every rank computes
// identical owners without communication.
func (b *builder) canonicalOwner(p NodeKey) int {
	x, y, z := p.X, p.Y, p.Z
	if x >= sfc.MaxCoord {
		x = sfc.MaxCoord - 1
	}
	if y >= sfc.MaxCoord {
		y = sfc.MaxCoord - 1
	}
	if b.m.Dim == 3 && z >= sfc.MaxCoord {
		z = sfc.MaxCoord - 1
	}
	q := sfc.Octant{X: x, Y: y, Z: z, Level: sfc.MaxLevel, Dim: uint8(b.m.Dim)}
	return b.own.Owner(q)
}

// classify determines whether p (a corner of a local element) is hanging
// and, if so, its donor keys and weights on the coarser touching element.
func (b *builder) classify(p NodeKey) (hanging bool, donors []NodeKey, w float64) {
	var tbuf [8]int32
	touching := b.touchingLeaves(p, tbuf[:0])
	coarse := int32(-1)
	for _, j := range touching {
		if !isCornerOf(p, b.combined.Leaves[j]) {
			if coarse < 0 || b.combined.Leaves[j].Level < b.combined.Leaves[coarse].Level {
				coarse = j
			}
		}
	}
	if coarse < 0 {
		return false, nil, 0
	}
	E := b.combined.Leaves[coarse]
	h := E.Side()
	half := h / 2
	rel := [3]uint32{p.X - E.X, p.Y - E.Y, p.Z - E.Z}
	var interior []int
	for d := 0; d < b.m.Dim; d++ {
		switch rel[d] {
		case 0, h:
		case half:
			interior = append(interior, d)
		default:
			panic(fmt.Sprintf("mesh: corner %v not on level-%d lattice of %v (2:1 balance violated?)", p, E.Level, E))
		}
	}
	if len(interior) == 0 || len(interior) > 2 {
		panic(fmt.Sprintf("mesh: hanging corner %v has %d interior dims on %v", p, len(interior), E))
	}
	nd := 1 << len(interior)
	donors = make([]NodeKey, 0, nd)
	for s := 0; s < nd; s++ {
		q := p
		for bi, d := range interior {
			var v uint32
			if s&(1<<bi) != 0 {
				v = h
			}
			switch d {
			case 0:
				q.X = E.X + v
			case 1:
				q.Y = E.Y + v
			default:
				q.Z = E.Z + v
			}
		}
		donors = append(donors, q)
	}
	return true, donors, 1 / float64(nd)
}

// addNode interns a node key, returning its provisional index into keys.
func (b *builder) addNode(p NodeKey, keys *[]NodeKey) int32 {
	if idx, ok := b.nodeIdx[p]; ok {
		return idx
	}
	idx := int32(len(*keys))
	b.nodeIdx[p] = idx
	*keys = append(*keys, p)
	return idx
}

// classifyAndNumber walks every local element corner, classifies hanging
// vertices, interns node keys (non-hanging corners and hanging donors) and
// produces the constraint table. A rank assembling a matrix row owned by a
// remote rank will reference, as columns, every node of the contributing
// element — so for each local element that touches a remotely-owned node,
// the element's full node-key set is shipped to that owner and interned
// there as additional ghost slots. Finally nodes are renumbered
// owned-first.
func (b *builder) classifyAndNumber() {
	m := b.m
	cpe := m.CornersPerElem()
	var keys []NodeKey
	conn := make([]Constraint, len(m.Elems)*cpe)
	// Per-element node key sets, for the off-process column exchange.
	elemKeys := make([][]NodeKey, len(m.Elems))
	for e, o := range m.Elems {
		var eset []NodeKey
		for cix := 0; cix < cpe; cix++ {
			p := cornerKey(o, cix)
			hanging, donors, w := b.classify(p)
			con := &conn[e*cpe+cix]
			if !hanging {
				con.N = 1
				con.Idx[0] = b.addNode(p, &keys)
				con.W[0] = 1
				eset = append(eset, p)
				continue
			}
			m.HangingCorners++
			con.N = uint8(len(donors))
			for i, q := range donors {
				con.Idx[i] = b.addNode(q, &keys)
				con.W[i] = w
			}
			eset = append(eset, donors...)
		}
		elemKeys[e] = eset
	}
	b.numberFromConn(keys, conn, elemKeys)
}

// numberFromConn finishes node enumeration from an interned key list and
// a provisional constraint table (classifyAndNumber's second half, also
// entered directly by the migrated-view build, which receives constraints
// ready-made instead of classifying): ship column key sets to remote row
// owners, then renumber owned-first. The final numbering is a pure
// function of the key set, the ownership table and the rank — the
// interning order keys arrived in does not matter.
func (b *builder) numberFromConn(keys []NodeKey, conn []Constraint, elemKeys [][]NodeKey) {
	m := b.m
	// Ship column key sets to remote row owners.
	if m.Comm.Size() > 1 {
		perRank := map[int]map[NodeKey]bool{}
		me := m.Comm.Rank()
		for e := range m.Elems {
			var owners []int
			for _, k := range elemKeys[e] {
				r := b.canonicalOwner(k)
				if r != me {
					owners = append(owners, r)
				}
			}
			for _, r := range owners {
				if perRank[r] == nil {
					perRank[r] = map[NodeKey]bool{}
				}
				for _, k := range elemKeys[e] {
					perRank[r][k] = true
				}
			}
		}
		dests := make([]int, 0, len(perRank))
		bufs := make([][]NodeKey, 0, len(perRank))
		for r, set := range perRank {
			lst := make([]NodeKey, 0, len(set))
			for k := range set {
				lst = append(lst, k)
			}
			// Sort for determinism of interning order.
			sort.Slice(lst, func(i, j int) bool { return keyLess(lst[i], lst[j]) })
			dests = append(dests, r)
			bufs = append(bufs, lst)
		}
		_, recvd := par.NBXExchange(m.Comm, dests, bufs)
		for _, batch := range recvd {
			for _, k := range batch {
				b.addNode(k, &keys)
			}
		}
	}
	// Owned-first stable renumbering, each group sorted by key for
	// determinism.
	owner := make([]int32, len(keys))
	for i, k := range keys {
		owner[i] = int32(b.canonicalOwner(k))
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	me := int32(m.Comm.Rank())
	sort.Slice(order, func(a, c int) bool {
		ia, ic := order[a], order[c]
		oa, oc := owner[ia] == me, owner[ic] == me
		if oa != oc {
			return oa
		}
		if owner[ia] != owner[ic] {
			return owner[ia] < owner[ic]
		}
		return keyLess(keys[ia], keys[ic])
	})
	perm := make([]int32, len(keys)) // old -> new
	m.Keys = make([]NodeKey, len(keys))
	m.Owner = make([]int32, len(keys))
	m.index = make(map[NodeKey]int32, len(keys))
	for newIdx, oldIdx := range order {
		perm[oldIdx] = int32(newIdx)
		m.Keys[newIdx] = keys[oldIdx]
		m.Owner[newIdx] = owner[oldIdx]
		m.index[keys[oldIdx]] = int32(newIdx)
	}
	for i := range conn {
		for k := 0; k < int(conn[i].N); k++ {
			conn[i].Idx[k] = perm[conn[i].Idx[k]]
		}
	}
	m.Conn = conn
	m.NumLocal = len(keys)
	m.NumOwned = 0
	for _, o := range m.Owner {
		if o == me {
			m.NumOwned++
		}
	}
}

// resolveGlobalIDs assigns contiguous global IDs to owned nodes via an
// exclusive scan, then resolves ghost IDs by sending each owner the keys
// this rank borrows and receiving the IDs back (the NBX "return address"
// pattern of Sec. II-C3c).
func (b *builder) resolveGlobalIDs() {
	m := b.m
	c := m.Comm
	n := int64(m.NumOwned)
	m.GlobalStart = par.Exscan(c, n, 0, func(a, x int64) int64 { return a + x })
	m.NumGlobal = par.Allreduce(c, n, func(a, x int64) int64 { return a + x })
	m.GlobalID = make([]int64, m.NumLocal)
	for i := 0; i < m.NumOwned; i++ {
		m.GlobalID[i] = m.GlobalStart + int64(i)
	}
	if c.Size() == 1 {
		return
	}
	// Group ghost keys by owner.
	type req struct {
		Key NodeKey
	}
	perRank := map[int][]req{}
	for i := m.NumOwned; i < m.NumLocal; i++ {
		r := int(m.Owner[i])
		perRank[r] = append(perRank[r], req{m.Keys[i]})
	}
	dests := make([]int, 0, len(perRank))
	bufs := make([][]req, 0, len(perRank))
	for r, lst := range perRank {
		dests = append(dests, r)
		bufs = append(bufs, lst)
	}
	srcs, recvd := par.NBXExchange(c, dests, bufs)
	// Answer with global IDs in request order (m.index already maps every
	// local key, so no owned-key map needs building).
	replyDests := make([]int, 0, len(srcs))
	replyBufs := make([][]int64, 0, len(srcs))
	for i, batch := range recvd {
		ids := make([]int64, len(batch))
		for k, rq := range batch {
			li, ok := m.index[rq.Key]
			if !ok || int(li) >= m.NumOwned {
				panic(fmt.Sprintf("mesh: rank %d asked rank %d for unowned node %v", srcs[i], c.Rank(), rq.Key))
			}
			ids[k] = m.GlobalID[li]
		}
		replyDests = append(replyDests, srcs[i])
		replyBufs = append(replyBufs, ids)
	}
	rsrcs, replies := par.NBXExchange(c, replyDests, replyBufs)
	// Fill ghost IDs: match replies to the per-owner request order.
	ghostByOwner := map[int][]int{}
	for i := m.NumOwned; i < m.NumLocal; i++ {
		r := int(m.Owner[i])
		ghostByOwner[r] = append(ghostByOwner[r], i)
	}
	for i, src := range rsrcs {
		idxs := ghostByOwner[src]
		ids := replies[i]
		if len(idxs) != len(ids) {
			panic("mesh: ghost ID reply length mismatch")
		}
		for k, li := range idxs {
			m.GlobalID[li] = ids[k]
		}
	}
}

// buildScatterLists derives the static ghost-exchange lists: for every
// peer, which owned nodes it borrows (sendTo) and which local ghost slots
// it owns (recvFrom).
func (b *builder) buildScatterLists() {
	m := b.m
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	type req struct {
		Key NodeKey
	}
	perRank := map[int][]int32{}
	for i := m.NumOwned; i < m.NumLocal; i++ {
		r := int(m.Owner[i])
		perRank[r] = append(perRank[r], int32(i))
	}
	dests := make([]int, 0, len(perRank))
	bufs := make([][]req, 0, len(perRank))
	for r, idxs := range perRank {
		lst := make([]req, len(idxs))
		for k, li := range idxs {
			lst[k] = req{m.Keys[li]}
		}
		m.recvFrom = append(m.recvFrom, peerList{rank: r, idx: idxs})
		dests = append(dests, r)
		bufs = append(bufs, lst)
	}
	sort.Slice(m.recvFrom, func(i, j int) bool { return m.recvFrom[i].rank < m.recvFrom[j].rank })
	srcs, recvd := par.NBXExchange(c, dests, bufs)
	for i, batch := range recvd {
		idxs := make([]int32, len(batch))
		for k, rq := range batch {
			li, ok := m.index[rq.Key]
			if !ok || int(li) >= m.NumOwned {
				panic("mesh: borrower requested unowned node")
			}
			idxs[k] = li
		}
		m.sendTo = append(m.sendTo, peerList{rank: srcs[i], idx: idxs})
	}
	sort.Slice(m.sendTo, func(i, j int) bool { return m.sendTo[i].rank < m.sendTo[j].rank })
}
