package mesh

import (
	"fmt"
	"math/rand"
	"testing"

	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// shiftedChunk deals a globally known leaf list into p contiguous ranges
// whose interior boundaries are pushed off the even split, so the new
// partition's splitters provably differ from an even one.
func shiftedChunk(leaves []sfc.Octant, rank, p, shift int) []sfc.Octant {
	n := len(leaves)
	cut := func(k int) int {
		c := k * n / p
		if k > 0 && k < p {
			c += shift
			if c > n {
				c = n
			}
		}
		return c
	}
	return append([]sfc.Octant(nil), leaves[cut(rank):cut(rank+1)]...)
}

// TestPatchMigratedMatchesNew is the headline invariant of the
// splitter-shift path: migrate-then-patch over a perturbed forest with a
// deliberately moved partition must reproduce mesh.New field for field,
// at 1, 2 and 4 ranks.
func TestPatchMigratedMatchesNew(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for seed := int64(0); seed < 3; seed++ {
			par.Run(p, func(c *par.Comm) {
				r := rand.New(rand.NewSource(seed))
				base := octree.Build(2, func(o sfc.Octant) bool { return r.Float64() < 0.45 }, 6, nil).Balance21(nil)
				oldLocal := shiftedChunk(base.Leaves, c.Rank(), p, 0)
				old := New(c, 2, oldLocal)
				oldSpl := octree.GatherSplitters(c, oldLocal)

				// Unprotected perturbation + a shifted re-chunking: the
				// partition boundaries move by construction.
				ct := make([]int, base.Len())
				for i, o := range base.Leaves {
					ct[i] = int(o.Level)
					if o.Level > 0 && r.Float64() < 0.06 {
						ct[i]--
					}
				}
				pert := base.Coarsen(ct)
				rt := make([]int, pert.Len())
				for i, o := range pert.Leaves {
					rt[i] = int(o.Level)
					if r.Float64() < 0.06 {
						rt[i]++
					}
				}
				bal := pert.Refine(rt, nil).Balance21(nil)
				newLocal := shiftedChunk(bal.Leaves, c.Rank(), p, 5)
				newSpl := octree.GatherSplitters(c, newLocal)
				if p > 1 && newSpl.Equal(oldSpl) {
					panic(fmt.Sprintf("p=%d seed=%d: shifted chunking left the splitters equal", p, seed))
				}
				// Patch itself must decline this round.
				if p > 1 {
					dirty := octree.AddedLeaves(oldLocal, newLocal)
					if got, _ := Patch(c, 2, newLocal, old, dirty); got != nil {
						panic("Patch accepted a moved partition")
					}
				}

				want := New(c, 2, shiftedChunk(bal.Leaves, c.Rank(), p, 5))
				got, view, delta := PatchMigrated(old, newLocal)
				if err := meshEqual(got, want); err != nil {
					panic(fmt.Sprintf("p=%d seed=%d rank=%d: %v", p, seed, c.Rank(), err))
				}
				// The view spans old's forest under the new splitters: its
				// global leaf sequence is old's, each leaf on its new owner.
				allView := par.Allgatherv(c, view.Elems)
				allOld := par.Allgatherv(c, old.Elems)
				if len(allView) != len(allOld) {
					panic("view forest size differs from old forest")
				}
				for i := range allOld {
					if !allView[i].EqualKey(allOld[i]) {
						panic("view forest is not old's forest")
					}
				}
				for _, o := range view.Elems {
					if own := newSpl.Owner(o.FirstDescendant()); own != c.Rank() {
						panic(fmt.Sprintf("view element owned by %d held on %d", own, c.Rank()))
					}
				}

				// Composed-delta invariants. The remap is not globally
				// monotone under re-ownership; instead every surviving clean
				// element must remap cleanly, and every node without a
				// mapped old counterpart must be dirty.
				cpe := got.CornersPerElem()
				for e, oe := range delta.OldElem {
					if oe < 0 {
						continue
					}
					if !got.Elems[e].EqualKey(old.Elems[oe]) {
						panic("OldElem maps to a different octant")
					}
					clean := true
					for cix := 0; cix < cpe && clean; cix++ {
						con := &got.Conn[e*cpe+cix]
						for k := 0; k < int(con.N); k++ {
							if delta.DirtyNode[con.Idx[k]] {
								clean = false
								break
							}
						}
					}
					if !clean {
						continue
					}
					for cix := 0; cix < cpe; cix++ {
						nc, oc := got.Conn[e*cpe+cix], old.Conn[int(oe)*cpe+cix]
						if nc.N != oc.N {
							panic("clean element changed constraint shape")
						}
						for k := 0; k < int(nc.N); k++ {
							if nc.Idx[k] != delta.NodeRemap[oc.Idx[k]] || nc.W[k] != oc.W[k] {
								panic("clean element conn does not remap cleanly")
							}
						}
					}
				}
				seen := make(map[int32]bool)
				for _, ni := range delta.NodeRemap {
					if ni >= 0 {
						seen[ni] = true
					}
				}
				for i := 0; i < got.NumLocal; i++ {
					if !seen[int32(i)] && !delta.DirtyNode[i] {
						panic("unmapped new node not flagged dirty")
					}
				}
			})
		}
	}
}

// A pure splitter drift over an unchanged forest — the exact round Patch
// refuses — must come out of PatchMigrated bitwise identical to a
// from-scratch build.
func TestPatchMigratedPureDrift(t *testing.T) {
	for _, p := range []int{2, 4} {
		par.Run(p, func(c *par.Comm) {
			base := octree.Uniform(2, 4)
			oldLocal := shiftedChunk(base.Leaves, c.Rank(), p, 0)
			old := New(c, 2, oldLocal)
			newLocal := shiftedChunk(base.Leaves, c.Rank(), p, 2)
			if got, _ := Patch(c, 2, newLocal, old, octree.AddedLeaves(oldLocal, newLocal)); got != nil {
				panic("Patch accepted a moved partition")
			}
			want := New(c, 2, shiftedChunk(base.Leaves, c.Rank(), p, 2))
			got, view, _ := PatchMigrated(old, newLocal)
			if err := meshEqual(got, want); err != nil {
				panic(fmt.Sprintf("p=%d rank=%d: %v", p, c.Rank(), err))
			}
			// With an unchanged forest the view IS the new mesh's forest.
			if err := meshEqual(view, want); err != nil {
				panic(fmt.Sprintf("p=%d rank=%d: view differs from target mesh: %v", p, c.Rank(), err))
			}
		})
	}
}
