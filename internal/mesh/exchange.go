package mesh

import (
	"proteus/internal/par"
)

// Tags for ghost exchange point-to-point traffic (below par's collective
// range).
const (
	tagGhostRead  = 101
	tagGhostWrite = 102
)

// NewVec allocates a local vector with ndof unknowns per node (owned
// followed by ghost), node-major: v[node*ndof+d].
func (m *Mesh) NewVec(ndof int) []float64 {
	return make([]float64, m.NumLocal*ndof)
}

// GhostRead fills the ghost segment of v from the owning ranks, so that
// every local node value is current. v must have NumLocal*ndof entries.
// Collective.
func (m *Mesh) GhostRead(v []float64, ndof int) {
	m.GhostReadBegin(v, ndof)
	m.GhostReadEnd(v, ndof)
}

// GhostReadBegin starts a ghost read: the owned segments borrowed by
// peers are serialized (into per-peer reusable buffers) and sent. Local
// computation that touches only owned entries of v may run between Begin
// and End — the overlap window BSRMat.Apply uses to hide the exchange
// behind its interior rows. Implements la.OverlapScatter. Collective with
// GhostReadEnd.
func (m *Mesh) GhostReadBegin(v []float64, ndof int) {
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	for i := range m.sendTo {
		pl := &m.sendTo[i]
		need := len(pl.idx) * ndof
		if cap(pl.buf) < need {
			pl.buf = make([]float64, need)
		}
		buf := pl.buf[:need]
		for k, li := range pl.idx {
			copy(buf[k*ndof:(k+1)*ndof], v[int(li)*ndof:(int(li)+1)*ndof])
		}
		par.SendSlice(c, pl.rank, tagGhostRead, buf)
	}
}

// GhostReadEnd completes a ghost read started by GhostReadBegin, filling
// the ghost segment of v. The trailing barrier lets every rank safely
// reuse its send buffers in the next exchange.
func (m *Mesh) GhostReadEnd(v []float64, ndof int) {
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	for range m.recvFrom {
		buf, src := par.RecvSlice[float64](c, par.AnySource, tagGhostRead)
		pl := m.peerRecv(src)
		for k, li := range pl.idx {
			copy(v[int(li)*ndof:(int(li)+1)*ndof], buf[k*ndof:(k+1)*ndof])
		}
	}
	c.Barrier()
}

// GhostWrite pushes the ghost segment of v back to the owning ranks,
// combining each incoming contribution into the owner's value with op
// (use Add for accumulation, Min/Max for the morphological passes), and
// then resets the ghost segment to reset. Collective.
func (m *Mesh) GhostWrite(v []float64, ndof int, op func(own, in float64) float64, reset float64) {
	m.GhostWriteBegin(v, ndof, reset)
	m.GhostWriteEnd(v, ndof, op)
}

// GhostWriteBegin starts a combining ghost write: the ghost segment of v
// is serialized (into per-peer reusable buffers), sent to the owning
// ranks and reset to reset. Local computation that touches only owned
// entries of v may run between Begin and End — the overlap window the
// planned vector assembly uses to hide the exchange behind its
// owned-segment gather. Collective with GhostWriteEnd.
func (m *Mesh) GhostWriteBegin(v []float64, ndof int, reset float64) {
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	for i := range m.recvFrom {
		pl := &m.recvFrom[i]
		need := len(pl.idx) * ndof
		if cap(pl.buf) < need {
			pl.buf = make([]float64, need)
		}
		buf := pl.buf[:need]
		for k, li := range pl.idx {
			copy(buf[k*ndof:(k+1)*ndof], v[int(li)*ndof:(int(li)+1)*ndof])
			for d := 0; d < ndof; d++ {
				v[int(li)*ndof+d] = reset
			}
		}
		par.SendSlice(c, pl.rank, tagGhostWrite, buf)
	}
}

// GhostWriteEnd completes a ghost write started by GhostWriteBegin,
// combining each incoming contribution into the owner's value with op.
// Batches are applied in ascending source-rank order regardless of
// arrival (sendTo is rank-sorted), so accumulating writes are
// deterministic — the same discipline the assembler's off-process matrix
// flush uses, required for sharded RHS assembly to be bitwise
// reproducible. The trailing barrier lets every rank safely reuse its
// send buffers in the next exchange.
func (m *Mesh) GhostWriteEnd(v []float64, ndof int, op func(own, in float64) float64) {
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	if len(m.gwRecv) != len(m.sendTo) {
		m.gwRecv = make([][]float64, len(m.sendTo))
	}
	for range m.sendTo {
		buf, src := par.RecvSlice[float64](c, par.AnySource, tagGhostWrite)
		i := 0
		for ; i < len(m.sendTo) && m.sendTo[i].rank != src; i++ {
		}
		if i == len(m.sendTo) {
			panic("mesh: unexpected ghost-write source")
		}
		m.gwRecv[i] = buf
	}
	for i := range m.sendTo {
		pl := &m.sendTo[i]
		buf := m.gwRecv[i]
		m.gwRecv[i] = nil
		for k, li := range pl.idx {
			for d := 0; d < ndof; d++ {
				o := int(li)*ndof + d
				v[o] = op(v[o], buf[k*ndof+d])
			}
		}
	}
	c.Barrier()
}

// Add is the accumulation combine for GhostWrite.
func Add(own, in float64) float64 { return own + in }

// MinOp keeps the smaller value (erosion-style combining).
func MinOp(own, in float64) float64 {
	if in < own {
		return in
	}
	return own
}

// MaxOp keeps the larger value (dilation-style combining).
func MaxOp(own, in float64) float64 {
	if in > own {
		return in
	}
	return own
}

func (m *Mesh) peerRecv(rank int) *peerList {
	for i := range m.recvFrom {
		if m.recvFrom[i].rank == rank {
			return &m.recvFrom[i]
		}
	}
	panic("mesh: unexpected ghost-read source")
}

// GlobalSum reduces the sum of an owned-segment quantity across ranks.
func (m *Mesh) GlobalSum(v float64) float64 {
	return par.Allreduce(m.Comm, v, func(a, b float64) float64 { return a + b })
}

// GlobalSumN element-wise sums a small vector across ranks.
func (m *Mesh) GlobalSumN(vals []float64) []float64 {
	return par.AllreduceSlice(m.Comm, vals, func(a, b float64) float64 { return a + b })
}

// GlobalSumInto element-wise sums vals across ranks in place (implements
// la.Reducer). The rank combine order is the deterministic binomial tree
// of par.Reduce, so results reproduce run to run. The reduction stages
// through the mesh's alternating scratch buffers instead of allocating
// per call; only the comm layer's message envelopes remain.
func (m *Mesh) GlobalSumInto(vals []float64) {
	c := m.Comm
	if c.Size() == 1 {
		return
	}
	m.redTick ^= 1
	buf := m.redScratch[m.redTick]
	if cap(buf) < len(vals) {
		buf = make([]float64, len(vals))
	}
	buf = buf[:len(vals)]
	m.redScratch[m.redTick] = buf
	copy(buf, vals)
	red := par.Reduce(c, 0, buf, addInPlace)
	copy(vals, par.BcastSlice(c, 0, red))
}

// addInPlace is the in-place combine of GlobalSumInto: a absorbs b.
func addInPlace(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mesh: GlobalSumInto length mismatch across ranks")
	}
	for i := range a {
		a[i] += b[i]
	}
	return a
}

// GlobalMax reduces the maximum across ranks.
func (m *Mesh) GlobalMax(v float64) float64 {
	return par.Allreduce(m.Comm, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// Dot returns the global inner product of the owned segments of a and b
// (ndof-agnostic: pass slices covering NumOwned*ndof entries).
func (m *Mesh) Dot(a, b []float64, ndof int) float64 {
	var s float64
	n := m.NumOwned * ndof
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return m.GlobalSum(s)
}
