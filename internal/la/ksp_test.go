package la

import (
	"errors"
	"math"
	"testing"

	"proteus/internal/par"
)

// convDiff1D assembles a nonsymmetric 1D convection-diffusion operator
// (tridiagonal 2, -1±c), diagonally dominant for |c| < 1.
func convDiff1D(n int, c float64) *BSRMat {
	m := NewAIJ(nil, 1, n, n)
	for i := 0; i < n; i++ {
		m.AddValue(i, i, 2)
		if i > 0 {
			m.AddValue(i, i-1, -1-c)
		}
		if i < n-1 {
			m.AddValue(i, i+1, -1+c)
		}
	}
	m.Finalize()
	return m
}

// applyInto computes b = A*x for a test matrix.
func applyInto(op Operator, x []float64) []float64 {
	b := make([]float64, op.FullLen())
	op.Apply(x, b)
	return b
}

// TestKSPConvergesToKnownSolution checks every method against a
// manufactured solution: CG on the SPD Laplacian, the nonsymmetric
// methods (BiCGStab, IBiCGS, GMRES) on a convection-diffusion operator.
func TestKSPConvergesToKnownSolution(t *testing.T) {
	n := 128
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.1*float64(i)) + 0.5*math.Cos(0.37*float64(i))
	}
	cases := []struct {
		name   string
		method Method
		op     *BSRMat
	}{
		{"cg-spd", CG, lap1D(n)},
		{"bcgs-nonsym", BiCGS, convDiff1D(n, 0.4)},
		{"ibcgs-nonsym", IBiCGS, convDiff1D(n, 0.4)},
		{"gmres-nonsym", GMRES, convDiff1D(n, 0.4)},
	}
	for _, tc := range cases {
		b := applyInto(tc.op, want)
		x := make([]float64, n)
		k := &KSP{Op: tc.op, PC: NewPCBJacobiILU0(tc.op), Type: tc.method, Rtol: 1e-12, Atol: 1e-14}
		res, err := k.Solve(b, x)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Converged {
			t.Fatalf("%s: no convergence: %+v", tc.name, res)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-6 {
				t.Fatalf("%s: x[%d] = %v, want %v", tc.name, i, x[i], want[i])
			}
		}
	}
}

// largeSPD builds an SPD scalar system big enough to cross the sharding
// thresholds, with a manufactured right-hand side.
func largeSPD(n int) (*BSRMat, []float64) {
	m := lap1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(0.01 * float64(i))
	}
	return m, b
}

// TestKSPWarmSolveZeroAllocs is the acceptance check that a warm Solve
// (workspace already shaped) allocates nothing, for every method, both
// serially and on a worker pool.
func TestKSPWarmSolveZeroAllocs(t *testing.T) {
	n := 3 * minParallelN / 2 // large enough to exercise the sharded path
	m, b := largeSPD(n)
	pc := NewPCBJacobiILU0(m) // exact for tridiagonal: solves in O(1) iterations
	pools := map[string]*par.Pool{"serial": nil, "pool4": par.NewPool(4)}
	for pname, pool := range pools {
		m.SetPool(pool)
		for _, method := range []Method{CG, BiCGS, IBiCGS, GMRES} {
			x := make([]float64, n)
			k := &KSP{Op: m, PC: pc, Type: method, Pool: pool, Rtol: 1e-10}
			k.Solve(b, x) // cold: builds the workspace
			allocs := testing.AllocsPerRun(10, func() {
				for i := range x {
					x[i] = 0
				}
				k.Solve(b, x)
			})
			if allocs != 0 {
				t.Errorf("%s/%s: warm Solve allocates %v times per run, want 0", method, pname, allocs)
			}
		}
	}
	m.SetPool(nil)
	pools["pool4"].Close()
}

// TestShardedSolveMatchesSerialBitwise verifies the determinism contract:
// sharded SpMV partitions rows (each row computed exactly as serially) and
// the inner products are chunk-canonical, so a pooled solve must be
// bitwise identical to the serial one, for every method.
func TestShardedSolveMatchesSerialBitwise(t *testing.T) {
	n := 3 * minParallelN / 2
	m, b := largeSPD(n)
	pc := NewPCBJacobiILU0(m)
	pool := par.NewPool(5) // odd worker count: uneven shard boundaries
	defer pool.Close()
	for _, method := range []Method{CG, BiCGS, IBiCGS, GMRES} {
		m.SetPool(nil)
		xs := make([]float64, n)
		ks := &KSP{Op: m, PC: pc, Type: method, Rtol: 1e-10}
		rs, _ := ks.Solve(b, xs)

		m.SetPool(pool)
		xp := make([]float64, n)
		kp := &KSP{Op: m, PC: pc, Type: method, Pool: pool, Rtol: 1e-10}
		rp, _ := kp.Solve(b, xp)

		if rs.Iterations != rp.Iterations || rs.Residual != rp.Residual {
			t.Fatalf("%s: serial %+v vs sharded %+v", method, rs, rp)
		}
		for i := range xs {
			if xs[i] != xp[i] {
				t.Fatalf("%s: x[%d] differs bitwise: serial %x sharded %x", method, i, xs[i], xp[i])
			}
		}
	}
	m.SetPool(nil)
}

// TestShardedSpMVAndDotsMatchSerialBitwise checks the two primitives in
// isolation: Apply and the chunk-canonical dot/dot2 must not depend on the
// worker count at all.
func TestShardedSpMVAndDotsMatchSerialBitwise(t *testing.T) {
	n := 3 * minParallelN / 2
	m, b := largeSPD(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(0.003*float64(i)) * float64(i%17)
	}
	m.SetPool(nil)
	ys := applyInto(m, x)
	for _, nw := range []int{2, 3, 8} {
		pool := par.NewPool(nw)
		m.SetPool(pool)
		yp := applyInto(m, x)
		for i := range ys {
			if ys[i] != yp[i] {
				t.Fatalf("nw=%d: SpMV y[%d] differs bitwise: %x vs %x", nw, i, ys[i], yp[i])
			}
		}
		ks := &KSP{Op: m, Type: CG}
		ks.defaults()
		ks.ensureWS()
		ds := ks.dot(x, b, n)
		kp := &KSP{Op: m, Type: CG, Pool: pool}
		kp.defaults()
		kp.ensureWS()
		dp := kp.dot(x, b, n)
		if ds != dp {
			t.Fatalf("nw=%d: dot differs bitwise: %x vs %x", nw, ds, dp)
		}
		s1, s2 := ks.dot2(x, b, b, b, n)
		p1, p2 := kp.dot2(x, b, b, b, n)
		if s1 != p1 || s2 != p2 {
			t.Fatalf("nw=%d: dot2 differs bitwise", nw)
		}
		m.SetPool(nil)
		pool.Close()
	}
}

// overlapScatter is a fake OverlapScatter for a single-rank stand-in of a
// distributed matrix: ghost slots [owned, len(ghosts)+owned) are served
// from a stored array. Begin poisons the ghost segment with NaN, End
// installs the real values — so any "interior" row that actually touches
// a ghost column contaminates the product and fails the test.
type overlapScatter struct {
	owned  int
	ghosts []float64
	reads  int
}

func (o *overlapScatter) GhostRead(v []float64, ndof int) {
	o.GhostReadBegin(v, ndof)
	o.GhostReadEnd(v, ndof)
}

func (o *overlapScatter) GhostReadBegin(v []float64, ndof int) {
	for i := range o.ghosts {
		v[o.owned*ndof+i] = math.NaN()
	}
}

func (o *overlapScatter) GhostReadEnd(v []float64, ndof int) {
	o.reads++
	copy(v[o.owned*ndof:], o.ghosts)
}

func (o *overlapScatter) Dot(a, b []float64, ndof int) float64 {
	var s float64
	for i := 0; i < o.owned*ndof; i++ {
		s += a[i] * b[i]
	}
	return s
}

func (o *overlapScatter) GlobalSum(v float64) float64 { return v }

// TestApplyOverlapsGhostExchange checks the interior/boundary split: the
// overlapped Apply must equal a reference product computed with the ghosts
// already in place, and the interior rows must never read ghost columns
// (enforced by the NaN poisoning above).
func TestApplyOverlapsGhostExchange(t *testing.T) {
	owned, ghost := 600, 40
	sc := &overlapScatter{owned: owned, ghosts: make([]float64, ghost)}
	for i := range sc.ghosts {
		sc.ghosts[i] = 2 + float64(i%5)
	}
	bs := 1
	m := NewBAIJ(sc, bs, owned, owned+ghost)
	for i := 0; i < owned; i++ {
		m.AddBlock(i, i, []float64{4})
		if i > 0 {
			m.AddBlock(i, i-1, []float64{-1})
		}
		if i < owned-1 {
			m.AddBlock(i, i+1, []float64{-1})
		}
		// Every 7th row borrows a ghost column: those are the boundary rows.
		if i%7 == 0 {
			m.AddBlock(i, owned+i%ghost, []float64{0.5})
		}
	}
	m.Finalize()
	interior, boundary := m.Sparsity().RowSplit()
	if len(boundary) != (owned+6)/7 {
		t.Fatalf("boundary rows = %d, want %d", len(boundary), (owned+6)/7)
	}
	if len(interior)+len(boundary) != owned {
		t.Fatalf("row split loses rows: %d + %d != %d", len(interior), len(boundary), owned)
	}

	x := make([]float64, owned+ghost)
	for i := 0; i < owned; i++ {
		x[i] = math.Sin(float64(i))
	}
	// Reference: ghosts pre-installed, plain row sweep.
	ref := make([]float64, owned+ghost)
	copy(ref, x)
	copy(ref[owned:], sc.ghosts)
	want := make([]float64, owned+ghost)
	m.applySpan(ref, want, nil, 0, owned)

	got := make([]float64, owned+ghost)
	m.Apply(x, got)
	if sc.reads != 1 {
		t.Fatalf("ghost exchange ran %d times, want 1", sc.reads)
	}
	for i := 0; i < owned; i++ {
		if got[i] != want[i] || math.IsNaN(got[i]) {
			t.Fatalf("overlapped Apply y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestOversizeBlockRejected pins the bs > 8 corruption hazard: the fixed
// row accumulator in Apply holds 8 entries, so larger blocks must be
// rejected at construction instead of silently overrunning.
func TestOversizeBlockRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBAIJ with bs=9 must panic")
		}
	}()
	NewBAIJ(nil, 9, 4, 4)
}

// TestUnknownMethodTypedError pins the no-panic contract: a KSP (or a
// Newton wrapping one) configured with an unknown method returns
// *ErrUnknownMethod instead of panicking, and the empty Type still
// defaults to IBiCGS.
func TestUnknownMethodTypedError(t *testing.T) {
	n := 16
	op := lap1D(n)
	b := make([]float64, n)
	b[0] = 1
	x := make([]float64, n)
	k := &KSP{Op: op, Type: Method("frobnicate"), Rtol: 1e-10}
	_, err := k.Solve(b, x)
	var ue *ErrUnknownMethod
	if !errors.As(err, &ue) || ue.Type != "frobnicate" {
		t.Fatalf("got %v, want *ErrUnknownMethod for frobnicate", err)
	}
	k.Type = ""
	if res, err := k.Solve(b, x); err != nil || !res.Converged {
		t.Fatalf("empty Type must default to a working method: %v %+v", err, res)
	}
}
