// Package la is the linear-algebra substrate standing in for PETSc: local
// vectors with owned+ghost layout, assembled sparse matrices in AIJ (CSR)
// and BAIJ (block-CSR) formats, Krylov solvers (CG, BiCGStab, a fused
// IBCGS variant, restarted GMRES), preconditioners (Jacobi, point-block
// Jacobi, block-Jacobi with ILU(0) local solves) and a Newton driver.
//
// Matrices are distributed by rows: each rank owns the rows of its owned
// mesh nodes; column indices are local (owned followed by ghost), and the
// operator refreshes ghost values before multiplying, exactly like a
// PETSc MatMult with its VecScatter. The BAIJ format stores dense
// bs*bs blocks, the layout the paper converts to in Stage 1 of Table I.
package la

import (
	"fmt"
	"math"
	"sort"

	"proteus/internal/par"
)

// Scatter abstracts the mesh ghost exchange the matrix needs: refresh
// ghost entries of a vector and reduce global dot products.
type Scatter interface {
	GhostRead(v []float64, ndof int)
	Dot(a, b []float64, ndof int) float64
	GlobalSum(v float64) float64
}

// OverlapScatter is an optional Scatter extension splitting the ghost
// read into a send phase and a receive phase, so interior computation can
// run between them (the communication/computation overlap of a
// non-blocking VecScatterBegin/End pair).
type OverlapScatter interface {
	Scatter
	GhostReadBegin(v []float64, ndof int)
	GhostReadEnd(v []float64, ndof int)
}

// maxBs is the largest supported block size: the Apply hot loop
// accumulates each block row in a fixed register-sized buffer, and the
// scalar AddValue path stages through a [maxBs*maxBs]float64.
const maxBs = 8

func checkBs(bs int) {
	if bs < 1 || bs > maxBs {
		panic(fmt.Sprintf("la: block size %d out of supported range [1,%d]", bs, maxBs))
	}
}

// Operator is anything that can apply y = A*x on full local vectors
// (owned+ghost layout); only the owned segment of y is defined after the
// call.
type Operator interface {
	Apply(x, y []float64)
	// Rows returns the owned unknown count (scalar entries).
	Rows() int
	// FullLen returns the full local vector length.
	FullLen() int
}

// BSRMat is a block compressed-sparse-row matrix with square blocks of
// size Bs. With Bs == 1 it degenerates to AIJ; constructors name the two
// cases for clarity in the Table I benchmarks.
type BSRMat struct {
	Bs        int
	NRowNodes int // owned block rows
	NColNodes int // local (owned+ghost) block columns
	// scatterDof is the unknowns-per-mesh-node used for ghost exchange:
	// equal to Bs for BAIJ, but the full node dof count for scalar AIJ
	// matrices whose rows are flattened node*ndof entries.
	scatterDof int
	scatter    Scatter
	// ovScatter is scatter's overlap extension when it has one (asserted
	// once at construction), enabling the split-phase Apply.
	ovScatter OverlapScatter

	// pool shards Apply across workers when set (see SetPool); the
	// ap* fields are the prebuilt shard closure and its argument slots,
	// so a warm sharded Apply performs no allocation.
	pool   *par.Pool
	apFn   func(w int)
	apX    []float64
	apY    []float64
	apRows []int32 // nil: shard the full block-row range instead

	// Assembly state (COO map) until Finalize; then CSR arrays.
	build map[[2]int32][]float64

	// sp is the frozen index structure after Finalize. It may be shared
	// with other matrices of the same pattern (see NewBAIJFromSparsity).
	sp   *Sparsity
	vals []float64 // sp.NNZ() * Bs * Bs, block-major row-major blocks

	finalized bool
}

// NewBAIJ returns an empty block matrix with the given block size
// (1 <= bs <= 8; larger blocks would silently overrun the fixed row
// accumulators, so they are rejected here).
func NewBAIJ(scatter Scatter, bs, ownedNodes, localNodes int) *BSRMat {
	checkBs(bs)
	m := &BSRMat{
		Bs: bs, NRowNodes: ownedNodes, NColNodes: localNodes,
		scatterDof: bs, scatter: scatter, build: make(map[[2]int32][]float64),
	}
	m.initScatter()
	return m
}

// NewAIJ returns an empty scalar CSR matrix over ndof unknowns per node:
// the node-blocked sparsity is flattened to scalar rows/columns, the
// format the paper starts from ("baseline", MATMPIAIJ).
func NewAIJ(scatter Scatter, ndof, ownedNodes, localNodes int) *BSRMat {
	m := &BSRMat{
		Bs: 1, NRowNodes: ownedNodes * ndof, NColNodes: localNodes * ndof,
		scatterDof: ndof, scatter: scatter, build: make(map[[2]int32][]float64),
	}
	m.initScatter()
	return m
}

// NewBAIJFromSparsity returns a finalized block matrix sharing the frozen
// pattern sp, with all values zero. Assembly into it must hit existing
// slots (AddBlockAt or pattern-preserving AddBlock), the warm path of a
// persistent-sparsity time loop.
func NewBAIJFromSparsity(scatter Scatter, bs, ownedNodes, localNodes int, sp *Sparsity) *BSRMat {
	checkBs(bs)
	m := &BSRMat{
		Bs: bs, NRowNodes: ownedNodes, NColNodes: localNodes,
		scatterDof: bs, scatter: scatter,
		sp: sp, vals: make([]float64, sp.NNZ()*bs*bs), finalized: true,
	}
	m.initScatter()
	return m
}

// NewAIJFromSparsity is the scalar-CSR analogue of NewBAIJFromSparsity:
// sp indexes the flattened node*ndof rows/columns.
func NewAIJFromSparsity(scatter Scatter, ndof, ownedNodes, localNodes int, sp *Sparsity) *BSRMat {
	m := &BSRMat{
		Bs: 1, NRowNodes: ownedNodes * ndof, NColNodes: localNodes * ndof,
		scatterDof: ndof, scatter: scatter,
		sp: sp, vals: make([]float64, sp.NNZ()), finalized: true,
	}
	m.initScatter()
	return m
}

// initScatter caches the overlap capability of the scatter.
func (m *BSRMat) initScatter() {
	if ov, ok := m.scatter.(OverlapScatter); ok {
		m.ovScatter = ov
	}
}

// SetPool shards Apply across the pool's workers (rows partitioned into
// contiguous shards, so the sharded product is bitwise identical to the
// serial one). Typically the same pool the assembler runs its element
// loop on.
func (m *BSRMat) SetPool(p *par.Pool) {
	m.pool = p
	if p != nil && m.apFn == nil {
		m.apFn = m.applyShard
	}
}

// Rows implements Operator.
func (m *BSRMat) Rows() int { return m.NRowNodes * m.Bs }

// Sparsity returns the frozen index structure (nil before Finalize).
func (m *BSRMat) Sparsity() *Sparsity { return m.sp }

// Vals exposes the value array of a finalized matrix for plan-driven
// accumulation; slot j's block occupies vals[j*Bs*Bs:(j+1)*Bs*Bs].
func (m *BSRMat) Vals() []float64 {
	if !m.finalized {
		m.Finalize()
	}
	return m.vals
}

// Finalized reports whether the matrix has frozen CSR structure.
func (m *BSRMat) Finalized() bool { return m.finalized }

// AddBlockAt accumulates a Bs x Bs block at a precomputed slot: the fast
// path of plan-driven assembly, with no map lookup or column search.
func (m *BSRMat) AddBlockAt(slot int, block []float64) {
	base := slot * m.Bs * m.Bs
	dst := m.vals[base : base+m.Bs*m.Bs]
	for i, v := range block {
		dst[i] += v
	}
}

// FullLen implements Operator.
func (m *BSRMat) FullLen() int { return m.NColNodes * m.Bs }

// Zero resets all stored values (keeping the sparsity if finalized).
func (m *BSRMat) Zero() {
	if m.finalized {
		for i := range m.vals {
			m.vals[i] = 0
		}
		return
	}
	m.build = make(map[[2]int32][]float64)
}

// AddBlock accumulates a Bs x Bs dense block (row-major) at block
// position (rowNode, colNode). Rows beyond the owned range are ignored —
// callers push ghost-row contributions to their owners via the mesh ghost
// write before assembling, mirroring PETSc's off-process assembly cache.
func (m *BSRMat) AddBlock(rowNode, colNode int, block []float64) {
	if rowNode < 0 || rowNode >= m.NRowNodes {
		panic(fmt.Sprintf("la.AddBlock: row node %d out of owned range %d", rowNode, m.NRowNodes))
	}
	if m.finalized {
		m.addFinalized(rowNode, colNode, block)
		return
	}
	key := [2]int32{int32(rowNode), int32(colNode)}
	b := m.build[key]
	if b == nil {
		b = make([]float64, m.Bs*m.Bs)
		m.build[key] = b
	}
	for i := range block {
		b[i] += block[i]
	}
}

// AddValue accumulates a scalar at (row, col) in scalar index space
// (node*Bs + dof).
func (m *BSRMat) AddValue(row, col int, v float64) {
	rn, rd := row/m.Bs, row%m.Bs
	cn, cd := col/m.Bs, col%m.Bs
	if m.finalized {
		var blk [64]float64
		blk[rd*m.Bs+cd] = v
		m.addFinalized(rn, cn, blk[:m.Bs*m.Bs])
		return
	}
	key := [2]int32{int32(rn), int32(cn)}
	b := m.build[key]
	if b == nil {
		b = make([]float64, m.Bs*m.Bs)
		m.build[key] = b
	}
	b[rd*m.Bs+cd] += v
}

func (m *BSRMat) addFinalized(rowNode, colNode int, block []float64) {
	slot := m.sp.FindSlot(rowNode, colNode)
	if slot < 0 {
		panic(fmt.Sprintf("la: block (%d,%d) not in finalized sparsity", rowNode, colNode))
	}
	m.AddBlockAt(slot, block)
}

// Finalize converts the assembly map into CSR arrays. Subsequent AddBlock
// calls must hit existing positions (same sparsity), as in PETSc after the
// first assembly.
func (m *BSRMat) Finalize() {
	if m.finalized {
		return
	}
	type ent struct {
		r, c int32
	}
	keys := make([]ent, 0, len(m.build))
	for k := range m.build {
		keys = append(keys, ent{k[0], k[1]})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].r != keys[j].r {
			return keys[i].r < keys[j].r
		}
		return keys[i].c < keys[j].c
	})
	bs2 := m.Bs * m.Bs
	sp := &Sparsity{
		NRows:  m.NRowNodes,
		Indptr: make([]int32, m.NRowNodes+1),
		Cols:   make([]int32, len(keys)),
	}
	m.vals = make([]float64, len(keys)*bs2)
	for i, k := range keys {
		sp.Indptr[k.r+1]++
		sp.Cols[i] = k.c
		copy(m.vals[i*bs2:(i+1)*bs2], m.build[[2]int32{k.r, k.c}])
	}
	for r := 0; r < m.NRowNodes; r++ {
		sp.Indptr[r+1] += sp.Indptr[r]
	}
	m.sp = sp
	m.build = nil
	m.finalized = true
}

// Apply computes y = A*x. x must be a full local vector; ghosts are
// refreshed before the multiply. When the scatter supports split-phase
// exchange and the pattern has boundary rows, the interior rows (derived
// once from the frozen Sparsity) are multiplied while the ghost values are
// still in flight, hiding the exchange behind computation. Implements
// Operator.
func (m *BSRMat) Apply(x, y []float64) {
	if !m.finalized {
		m.Finalize()
	}
	if m.ovScatter != nil {
		interior, boundary := m.sp.RowSplit()
		if len(boundary) > 0 {
			m.ovScatter.GhostReadBegin(x, m.scatterDof)
			m.runApply(x, y, interior, len(interior))
			m.ovScatter.GhostReadEnd(x, m.scatterDof)
			m.runApply(x, y, boundary, len(boundary))
			return
		}
		// No boundary rows on this rank. The exchange must still run —
		// it is collective, and peers may borrow this rank's rows — just
		// with nothing to overlap.
	}
	if m.scatter != nil {
		m.scatter.GhostRead(x, m.scatterDof)
	}
	m.runApply(x, y, nil, m.NRowNodes)
}

// minParallelRows is the block-row count below which sharding a product
// costs more in dispatch than it saves.
const minParallelRows = 256

// runApply multiplies the rows listed in rows (or block rows [0, n) when
// rows is nil), sharding across the pool when the row count warrants it.
// Rows are partitioned into contiguous shards, each row computed exactly
// as in the serial loop, so the result is bitwise independent of the
// worker count.
func (m *BSRMat) runApply(x, y []float64, rows []int32, n int) {
	if m.pool == nil || m.pool.Workers() == 1 || n < minParallelRows {
		m.applySpan(x, y, rows, 0, n)
		return
	}
	m.apX, m.apY, m.apRows = x, y, rows
	m.pool.Run(m.apFn)
	m.apX, m.apY, m.apRows = nil, nil, nil
}

// applyShard is the prebuilt pool kernel: worker w multiplies its
// contiguous share of the current row set.
func (m *BSRMat) applyShard(w int) {
	nw := m.pool.Workers()
	n := m.NRowNodes
	if m.apRows != nil {
		n = len(m.apRows)
	}
	m.applySpan(m.apX, m.apY, m.apRows, w*n/nw, (w+1)*n/nw)
}

// applySpan multiplies rows[lo:hi] (or block rows [lo, hi) when rows is
// nil) of A into y.
func (m *BSRMat) applySpan(x, y []float64, rows []int32, lo, hi int) {
	bs := m.Bs
	bs2 := bs * bs
	for i := lo; i < hi; i++ {
		r := i
		if rows != nil {
			r = int(rows[i])
		}
		// Accumulate into a small local buffer to keep the row hot (Bs is
		// capped at maxBs by construction, so the buffer always fits).
		var acc [maxBs]float64
		a := acc[:bs]
		for j := m.sp.Indptr[r]; j < m.sp.Indptr[r+1]; j++ {
			c := int(m.sp.Cols[j]) * bs
			blk := m.vals[int(j)*bs2 : int(j+1)*bs2]
			for bi := 0; bi < bs; bi++ {
				s := a[bi]
				row := blk[bi*bs : (bi+1)*bs]
				for bj := 0; bj < bs; bj++ {
					s += row[bj] * x[c+bj]
				}
				a[bi] = s
			}
		}
		copy(y[r*bs:(r+1)*bs], a)
	}
}

// ZeroRow zeroes every stored entry of scalar row (node*Bs+dof) and sets
// its diagonal to diag. Used to impose Dirichlet boundary conditions after
// assembly.
func (m *BSRMat) ZeroRow(row int, diag float64) {
	if !m.finalized {
		m.Finalize()
	}
	bs := m.Bs
	bs2 := bs * bs
	rn, rd := row/bs, row%bs
	for j := m.sp.Indptr[rn]; j < m.sp.Indptr[rn+1]; j++ {
		blk := m.vals[int(j)*bs2 : int(j+1)*bs2]
		for bj := 0; bj < bs; bj++ {
			blk[rd*bs+bj] = 0
		}
		if int(m.sp.Cols[j]) == rn {
			blk[rd*bs+rd] = diag
		}
	}
}

// NNZBlocks returns the stored block count.
func (m *BSRMat) NNZBlocks() int {
	if !m.finalized {
		return len(m.build)
	}
	return len(m.sp.Cols)
}

// LocalCSR extracts the owned×owned scalar submatrix (dropping ghost
// columns) in CSR form, the local block that block-Jacobi preconditioners
// factor.
func (m *BSRMat) LocalCSR() (indptr []int32, cols []int32, vals []float64, n int) {
	if !m.finalized {
		m.Finalize()
	}
	bs := m.Bs
	n = m.NRowNodes * bs
	indptr = make([]int32, n+1)
	bs2 := bs * bs
	// Count then fill.
	for r := 0; r < m.NRowNodes; r++ {
		for j := m.sp.Indptr[r]; j < m.sp.Indptr[r+1]; j++ {
			if int(m.sp.Cols[j]) < m.NRowNodes {
				for bi := 0; bi < bs; bi++ {
					indptr[r*bs+bi+1] += int32(bs)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		indptr[i+1] += indptr[i]
	}
	cols = make([]int32, indptr[n])
	vals = make([]float64, indptr[n])
	fill := make([]int32, n)
	copy(fill, indptr[:n])
	for r := 0; r < m.NRowNodes; r++ {
		for j := m.sp.Indptr[r]; j < m.sp.Indptr[r+1]; j++ {
			cn := int(m.sp.Cols[j])
			if cn >= m.NRowNodes {
				continue
			}
			blk := m.vals[int(j)*bs2 : int(j+1)*bs2]
			for bi := 0; bi < bs; bi++ {
				row := r*bs + bi
				for bj := 0; bj < bs; bj++ {
					p := fill[row]
					cols[p] = int32(cn*bs + bj)
					vals[p] = blk[bi*bs+bj]
					fill[row]++
				}
			}
		}
	}
	// Column-sort each row (blocks were visited in sorted block order, so
	// scalar columns are already ascending within the row).
	return indptr, cols, vals, n
}

// LocalCSRValuesInto refills vals (from a previous LocalCSR of this
// matrix, whose pattern is unchanged) with the current owned×owned
// values, allocation-free. Entries are produced in the same deterministic
// traversal order as LocalCSR: within scalar row r*bs+bi, one bs-wide
// group per owned block, in block-column order.
func (m *BSRMat) LocalCSRValuesInto(indptr []int32, vals []float64) {
	bs := m.Bs
	bs2 := bs * bs
	for r := 0; r < m.NRowNodes; r++ {
		nOwned := 0
		for j := m.sp.Indptr[r]; j < m.sp.Indptr[r+1]; j++ {
			if int(m.sp.Cols[j]) >= m.NRowNodes {
				continue
			}
			blk := m.vals[int(j)*bs2 : int(j+1)*bs2]
			for bi := 0; bi < bs; bi++ {
				base := int(indptr[r*bs+bi]) + nOwned*bs
				copy(vals[base:base+bs], blk[bi*bs:(bi+1)*bs])
			}
			nOwned++
		}
	}
}

// InvertSmall inverts an n x n row-major matrix in place using Gauss-
// Jordan with partial pivoting. Returns false if singular. Used for
// diagonal blocks (n <= 8), where the scratch stays on the stack so
// preconditioner refreshes allocate nothing.
func InvertSmall(a []float64, n int) bool {
	var buf [maxBs * maxBs]float64
	var inv []float64
	if n <= maxBs {
		inv = buf[:n*n]
	} else {
		inv = make([]float64, n*n)
	}
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r*n+col]) > math.Abs(a[p*n+col]) {
				p = r
			}
		}
		if a[p*n+col] == 0 {
			return false
		}
		if p != col {
			for k := 0; k < n; k++ {
				a[col*n+k], a[p*n+k] = a[p*n+k], a[col*n+k]
				inv[col*n+k], inv[p*n+k] = inv[p*n+k], inv[col*n+k]
			}
		}
		d := 1 / a[col*n+col]
		for k := 0; k < n; k++ {
			a[col*n+k] *= d
			inv[col*n+k] *= d
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r*n+col]
			if f == 0 {
				continue
			}
			for k := 0; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
				inv[r*n+k] -= f * inv[col*n+k]
			}
		}
	}
	copy(a, inv)
	return true
}
