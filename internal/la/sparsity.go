package la

// Sparsity is the frozen index structure of a block-CSR matrix: row
// pointers and sorted column indices, with no values. It is immutable
// after construction, so every operator assembled on the same mesh with
// the same layout can share one Sparsity — the PETSc analogue is reusing
// a MatDuplicate(MAT_SHARE_NONZERO_PATTERN) pattern across time steps.
//
// Slots are positions into the column array: the Bs x Bs value block of
// the j-th stored entry lives at vals[j*Bs*Bs : (j+1)*Bs*Bs]. Assembly
// plans precompute slots once and then write values with no map lookup
// or search on the hot path.
type Sparsity struct {
	NRows  int // block rows
	Indptr []int32
	Cols   []int32
}

// NNZ returns the stored (block) entry count.
func (s *Sparsity) NNZ() int { return len(s.Cols) }

// RowLen returns the stored entry count of block row r.
func (s *Sparsity) RowLen(r int) int { return int(s.Indptr[r+1] - s.Indptr[r]) }

// FindSlot returns the slot of entry (row, col) by binary search within
// the row, or -1 if the pattern does not contain it. This is the
// plan-construction path; steady-state assembly never calls it.
func (s *Sparsity) FindSlot(row, col int) int {
	lo, hi := s.Indptr[row], s.Indptr[row+1]
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.Cols[mid] < int32(col) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.Indptr[row+1] && s.Cols[lo] == int32(col) {
		return int(lo)
	}
	return -1
}
