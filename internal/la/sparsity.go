package la

import "sync"

// Sparsity is the frozen index structure of a block-CSR matrix: row
// pointers and sorted column indices, with no values. It is immutable
// after construction, so every operator assembled on the same mesh with
// the same layout can share one Sparsity — the PETSc analogue is reusing
// a MatDuplicate(MAT_SHARE_NONZERO_PATTERN) pattern across time steps.
//
// Slots are positions into the column array: the Bs x Bs value block of
// the j-th stored entry lives at vals[j*Bs*Bs : (j+1)*Bs*Bs]. Assembly
// plans precompute slots once and then write values with no map lookup
// or search on the hot path.
type Sparsity struct {
	NRows  int // block rows
	Indptr []int32
	Cols   []int32

	// Interior/boundary row split (lazily derived once; see RowSplit).
	splitOnce sync.Once
	interior  []int32
	boundary  []int32
}

// RowSplit partitions the block rows by whether they touch a ghost
// column (one with index >= NRows, the owned block-column count): the
// returned interior rows read only owned entries of x, so their SpMV can
// run while the ghost exchange is still in flight; the boundary rows must
// wait for it. Derived once from the frozen pattern and cached — the
// structural basis of the overlapped BSRMat.Apply.
func (s *Sparsity) RowSplit() (interior, boundary []int32) {
	s.splitOnce.Do(func() {
		nInterior := 0
		for r := 0; r < s.NRows; r++ {
			if s.rowIsInterior(r) {
				nInterior++
			}
		}
		s.interior = make([]int32, 0, nInterior)
		s.boundary = make([]int32, 0, s.NRows-nInterior)
		for r := 0; r < s.NRows; r++ {
			if s.rowIsInterior(r) {
				s.interior = append(s.interior, int32(r))
			} else {
				s.boundary = append(s.boundary, int32(r))
			}
		}
	})
	return s.interior, s.boundary
}

func (s *Sparsity) rowIsInterior(r int) bool {
	for j := s.Indptr[r]; j < s.Indptr[r+1]; j++ {
		if int(s.Cols[j]) >= s.NRows {
			return false
		}
	}
	return true
}

// NNZ returns the stored (block) entry count.
func (s *Sparsity) NNZ() int { return len(s.Cols) }

// RowLen returns the stored entry count of block row r.
func (s *Sparsity) RowLen(r int) int { return int(s.Indptr[r+1] - s.Indptr[r]) }

// FindSlot returns the slot of entry (row, col) by binary search within
// the row, or -1 if the pattern does not contain it. This is the
// plan-construction path; steady-state assembly never calls it.
func (s *Sparsity) FindSlot(row, col int) int {
	lo, hi := s.Indptr[row], s.Indptr[row+1]
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.Cols[mid] < int32(col) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.Indptr[row+1] && s.Cols[lo] == int32(col) {
		return int(lo)
	}
	return -1
}
