package la

import (
	"math"
	"math/rand"
	"testing"
)

// lap1D assembles the n x n 1D Dirichlet Laplacian (tridiagonal 2,-1).
func lap1D(n int) *BSRMat {
	m := NewAIJ(nil, 1, n, n)
	for i := 0; i < n; i++ {
		m.AddValue(i, i, 2)
		if i > 0 {
			m.AddValue(i, i-1, -1)
		}
		if i < n-1 {
			m.AddValue(i, i+1, -1)
		}
	}
	m.Finalize()
	return m
}

func residualNorm(op Operator, b, x []float64) float64 {
	n := op.Rows()
	y := make([]float64, op.FullLen())
	op.Apply(x, y)
	var s float64
	for i := 0; i < n; i++ {
		d := b[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestKSPAllMethodsSolveLaplacian(t *testing.T) {
	n := 64
	m := lap1D(n)
	b := make([]float64, n)
	r := rand.New(rand.NewSource(1))
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	for _, method := range []Method{CG, BiCGS, IBiCGS, GMRES} {
		for _, pc := range []PC{PCNone{}, NewPCJacobi(m), NewPCBJacobiILU0(m)} {
			x := make([]float64, n)
			k := &KSP{Op: m, PC: pc, Type: method, Rtol: 1e-10, Atol: 1e-12}
			res, err := k.Solve(append([]float64(nil), b...), x)
			if err != nil {
				t.Fatalf("%s/%T: %v", method, pc, err)
			}
			if !res.Converged {
				t.Fatalf("%s/%T did not converge: %+v", method, pc, res)
			}
			if rn := residualNorm(m, b, x); rn > 1e-7 {
				t.Fatalf("%s/%T residual %g", method, pc, rn)
			}
		}
	}
}

func TestILU0IsExactForTriangularFill(t *testing.T) {
	// For a tridiagonal matrix, ILU(0) is the exact LU factorization, so a
	// single preconditioner application solves the system.
	n := 40
	m := lap1D(n)
	pc := NewPCBJacobiILU0(m)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := make([]float64, n)
	pc.Apply(b, x)
	if rn := residualNorm(m, b, x); rn > 1e-10 {
		t.Fatalf("ILU0 on tridiagonal must be a direct solve, residual %g", rn)
	}
}

func TestCGIterationCountsDropWithPC(t *testing.T) {
	n := 256
	m := lap1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	run := func(pc PC) int {
		x := make([]float64, n)
		k := &KSP{Op: m, PC: pc, Type: CG, Rtol: 1e-8}
		res, _ := k.Solve(append([]float64(nil), b...), x)
		if !res.Converged {
			t.Fatal("no convergence")
		}
		return res.Iterations
	}
	plain := run(PCNone{})
	ilu := run(NewPCBJacobiILU0(m))
	if ilu >= plain {
		t.Fatalf("ILU0 (%d its) must beat unpreconditioned (%d its)", ilu, plain)
	}
}

func TestBSRBlockApplyMatchesScalar(t *testing.T) {
	// A bs=2 block matrix must act identically to the equivalent scalar
	// AIJ matrix.
	r := rand.New(rand.NewSource(3))
	nodes := 10
	bs := 2
	blockM := NewBAIJ(nil, bs, nodes, nodes)
	scalarM := NewAIJ(nil, bs, nodes, nodes)
	for rn := 0; rn < nodes; rn++ {
		for _, cn := range []int{rn, (rn + 1) % nodes} {
			blk := make([]float64, bs*bs)
			for i := range blk {
				blk[i] = r.NormFloat64()
			}
			blockM.AddBlock(rn, cn, blk)
			for bi := 0; bi < bs; bi++ {
				for bj := 0; bj < bs; bj++ {
					scalarM.AddValue(rn*bs+bi, cn*bs+bj, blk[bi*bs+bj])
				}
			}
		}
	}
	x := make([]float64, nodes*bs)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	y1 := make([]float64, nodes*bs)
	y2 := make([]float64, nodes*bs)
	blockM.Apply(x, y1)
	scalarM.Apply(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("entry %d: block %v scalar %v", i, y1[i], y2[i])
		}
	}
}

func TestAddAfterFinalizeKeepsSparsity(t *testing.T) {
	m := lap1D(8)
	m.Zero()
	for i := 0; i < 8; i++ {
		m.AddValue(i, i, 1)
	}
	x := make([]float64, 8)
	y := make([]float64, 8)
	for i := range x {
		x[i] = float64(i)
	}
	m.Apply(x, y)
	for i := range y {
		if y[i] != x[i] {
			t.Fatalf("identity apply failed at %d: %v", i, y[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("adding outside sparsity must panic")
		}
	}()
	m.AddValue(0, 7, 1)
}

func TestInvertSmall(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for n := 1; n <= 6; n++ {
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // diagonal dominance
		}
		orig := append([]float64(nil), a...)
		if !InvertSmall(a, n) {
			t.Fatalf("n=%d: singular", n)
		}
		// a * orig must be identity.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i*n+k] * orig[k*n+j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-9 {
					t.Fatalf("n=%d: (A^-1 A)[%d,%d]=%v", n, i, j, s)
				}
			}
		}
	}
	sing := []float64{1, 2, 2, 4}
	if InvertSmall(sing, 2) {
		t.Fatal("singular matrix must be rejected")
	}
}

func TestPBJacobiInvertsBlockDiagonal(t *testing.T) {
	// For a block-diagonal matrix, PBJacobi is a direct solver.
	r := rand.New(rand.NewSource(5))
	nodes, bs := 6, 3
	m := NewBAIJ(nil, bs, nodes, nodes)
	for rn := 0; rn < nodes; rn++ {
		blk := make([]float64, bs*bs)
		for i := range blk {
			blk[i] = r.NormFloat64()
		}
		for d := 0; d < bs; d++ {
			blk[d*bs+d] += 4
		}
		m.AddBlock(rn, rn, blk)
	}
	m.Finalize()
	pc := NewPCPBJacobi(m)
	b := make([]float64, nodes*bs)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x := make([]float64, nodes*bs)
	pc.Apply(b, x)
	if rn := residualNorm(m, b, x); rn > 1e-10 {
		t.Fatalf("PBJacobi on block-diagonal must be direct, residual %g", rn)
	}
}

// quadProblem is a small nonlinear test: F_i(x) = x_i^2 + sum_j A_ij x_j - b_i.
type quadProblem struct {
	a *BSRMat
	b []float64
}

func (q *quadProblem) Residual(x, r []float64) {
	n := q.a.Rows()
	q.a.Apply(x, r)
	for i := 0; i < n; i++ {
		r[i] += x[i]*x[i] - q.b[i]
	}
}

func (q *quadProblem) Jacobian(x []float64) (Operator, PC) {
	n := q.a.Rows()
	j := NewAIJ(nil, 1, n, n)
	for i := 0; i < n; i++ {
		j.AddValue(i, i, 2+2*x[i]) // diagonal of lap1D is 2
		if i > 0 {
			j.AddValue(i, i-1, -1)
		}
		if i < n-1 {
			j.AddValue(i, i+1, -1)
		}
	}
	j.Finalize()
	return j, NewPCBJacobiILU0(j)
}

func TestNewtonConverges(t *testing.T) {
	n := 32
	q := &quadProblem{a: lap1D(n), b: make([]float64, n)}
	for i := range q.b {
		q.b[i] = 1 + 0.1*float64(i%4)
	}
	x := make([]float64, n)
	nw := &Newton{Rtol: 1e-12, Atol: 1e-12}
	ok, err := nw.Solve(q, x)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Newton did not converge")
	}
	r := make([]float64, n)
	q.Residual(x, r)
	var s float64
	for _, v := range r {
		s += v * v
	}
	if math.Sqrt(s) > 1e-10 {
		t.Fatalf("residual %g after Newton", math.Sqrt(s))
	}
	if nw.Iterations > 20 {
		t.Fatalf("Newton took %d iterations, expected quadratic convergence", nw.Iterations)
	}
}

func TestLocalCSRMatchesApply(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	nodes, bs := 8, 2
	m := NewBAIJ(nil, bs, nodes, nodes+3) // 3 ghost column nodes
	for rn := 0; rn < nodes; rn++ {
		for _, cn := range []int{rn, (rn + 3) % (nodes + 3)} {
			blk := make([]float64, bs*bs)
			for i := range blk {
				blk[i] = r.NormFloat64()
			}
			if cn == rn {
				for d := 0; d < bs; d++ {
					blk[d*bs+d] += 3
				}
			}
			m.AddBlock(rn, cn, blk)
		}
	}
	m.Finalize()
	indptr, cols, vals, n := m.LocalCSR()
	if n != nodes*bs {
		t.Fatalf("local size %d", n)
	}
	// Apply both to a vector that is zero on ghost entries; results must
	// agree (ghost columns drop out).
	x := make([]float64, m.FullLen())
	for i := 0; i < n; i++ {
		x[i] = r.NormFloat64()
	}
	y := make([]float64, m.FullLen())
	m.Apply(x, y)
	for i := 0; i < n; i++ {
		var s float64
		for j := indptr[i]; j < indptr[i+1]; j++ {
			s += vals[j] * x[cols[j]]
		}
		if math.Abs(s-y[i]) > 1e-12 {
			t.Fatalf("row %d: csr %v apply %v", i, s, y[i])
		}
	}
}
