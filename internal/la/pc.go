package la

import "fmt"

// PC is a preconditioner: z = M^{-1} r over the owned segment.
//
// Besides the pointwise/blockwise PCs in this file, internal/mg provides
// PCGMG, a geometric multigrid V-cycle over the octree hierarchy that
// plugs in through this same interface (it lives outside la because it
// depends on the mesh and assembly layers).
type PC interface {
	Apply(r, z []float64)
}

// Refresher is a PC that can refactor itself in place from its matrix's
// re-assembled values, without reallocating: the warm path of a
// persistent-operator time loop (the pattern is frozen, only values
// change). Call Refresh after each reassembly, before Solve.
type Refresher interface {
	Refresh()
}

// RowPatch describes how the owned scalar rows of a matrix moved across an
// incremental remesh (mesh.Patch / mesh.PatchMigrated), in la's own terms so
// this package stays mesh-agnostic. Remap maps each old owned scalar row to
// its new owned row (-1: dropped, or no longer owned here); Dirty flags new
// owned rows whose column pattern may differ from the old one. A row that is
// mapped and not dirty ("clean") is guaranteed — by the patched-sparsity
// offset-preservation invariant — to keep its column pattern positionally:
// same length, columns remapped through the same node permutation, sorted
// order and ownedness preserved.
type RowPatch struct {
	Remap []int32
	Dirty []bool
}

// PCNone is the identity preconditioner.
type PCNone struct{}

// Apply copies r to z.
func (PCNone) Apply(r, z []float64) { copy(z, r) }

// PCJacobi scales by the inverse of the scalar diagonal (PETSc "jacobi",
// used for the VU mass solves in Table II).
type PCJacobi struct {
	m   *BSRMat
	inv []float64
}

// NewPCJacobi extracts the scalar diagonal of m.
func NewPCJacobi(m *BSRMat) *PCJacobi {
	if !m.Finalized() {
		m.Finalize()
	}
	p := &PCJacobi{m: m, inv: make([]float64, m.Rows())}
	p.Refresh()
	return p
}

// Refresh re-extracts the inverse diagonal from the matrix values in
// place. Implements Refresher; allocation-free.
func (p *PCJacobi) Refresh() {
	m := p.m
	bs := m.Bs
	bs2 := bs * bs
	for rn := 0; rn < m.NRowNodes; rn++ {
		for d := 0; d < bs; d++ {
			p.inv[rn*bs+d] = 1
		}
		for j := m.sp.Indptr[rn]; j < m.sp.Indptr[rn+1]; j++ {
			if int(m.sp.Cols[j]) != rn {
				continue
			}
			blk := m.vals[int(j)*bs2 : int(j+1)*bs2]
			for d := 0; d < bs; d++ {
				if v := blk[d*bs+d]; v != 0 {
					p.inv[rn*bs+d] = 1 / v
				}
			}
		}
	}
}

// Rebind re-points the preconditioner at a replacement matrix (the
// incremental-remesh carry-over path), growing the diagonal storage only
// when the new operator is larger, and re-extracts the values.
func (p *PCJacobi) Rebind(m *BSRMat) {
	if !m.Finalized() {
		m.Finalize()
	}
	p.m = m
	n := m.Rows()
	if cap(p.inv) < n {
		p.inv = make([]float64, n)
	}
	p.inv = p.inv[:n]
	p.Refresh()
}

// Apply implements PC.
func (p *PCJacobi) Apply(r, z []float64) {
	for i, v := range p.inv {
		z[i] = v * r[i]
	}
}

// PCPBJacobi inverts the dense bs x bs diagonal blocks (PETSc "pbjacobi"),
// the natural point-block preconditioner for BAIJ matrices.
type PCPBJacobi struct {
	m   *BSRMat
	bs  int
	inv []float64
}

// NewPCPBJacobi inverts every diagonal block of m.
func NewPCPBJacobi(m *BSRMat) *PCPBJacobi {
	if !m.Finalized() {
		m.Finalize()
	}
	bs := m.Bs
	p := &PCPBJacobi{m: m, bs: bs, inv: make([]float64, m.NRowNodes*bs*bs)}
	p.Refresh()
	return p
}

// Refresh re-extracts and re-inverts the diagonal blocks in place.
// Implements Refresher; allocation-free.
func (p *PCPBJacobi) Refresh() {
	m := p.m
	bs := p.bs
	bs2 := bs * bs
	for rn := 0; rn < m.NRowNodes; rn++ {
		blk := p.inv[rn*bs2 : (rn+1)*bs2]
		for i := range blk {
			blk[i] = 0
		}
		for j := m.sp.Indptr[rn]; j < m.sp.Indptr[rn+1]; j++ {
			if int(m.sp.Cols[j]) == rn {
				copy(blk, m.vals[int(j)*bs2:int(j+1)*bs2])
			}
		}
		if !InvertSmall(blk, bs) {
			// Singular diagonal block: fall back to identity.
			for i := range blk {
				blk[i] = 0
			}
			for d := 0; d < bs; d++ {
				blk[d*bs+d] = 1
			}
		}
	}
}

// Rebind re-points the preconditioner at a replacement matrix (the
// incremental-remesh carry-over path) and re-inverts the diagonal blocks.
func (p *PCPBJacobi) Rebind(m *BSRMat) {
	if !m.Finalized() {
		m.Finalize()
	}
	p.m = m
	p.bs = m.Bs
	n := m.NRowNodes * p.bs * p.bs
	if cap(p.inv) < n {
		p.inv = make([]float64, n)
	}
	p.inv = p.inv[:n]
	p.Refresh()
}

// Apply implements PC.
func (p *PCPBJacobi) Apply(r, z []float64) {
	bs := p.bs
	bs2 := bs * bs
	n := len(r) / bs
	for rn := 0; rn < n; rn++ {
		blk := p.inv[rn*bs2 : (rn+1)*bs2]
		for bi := 0; bi < bs; bi++ {
			var s float64
			for bj := 0; bj < bs; bj++ {
				s += blk[bi*bs+bj] * r[rn*bs+bj]
			}
			z[rn*bs+bi] = s
		}
	}
}

// PCBJacobiILU0 is block-Jacobi across ranks with an ILU(0)
// factorization of the local owned diagonal block as the subdomain solver
// — the PETSc default "bjacobi" configuration used for the CH, NS and PP
// solves in Table II. The factorization index (diagonal slots and the
// per-entry update positions of the elimination) is built once from the
// frozen pattern; Refresh re-extracts the values and refactors in place
// with no allocation and no hashing on the warm path.
type PCBJacobiILU0 struct {
	m      *BSRMat
	n      int
	indptr []int32
	cols   []int32
	lu     []float64
	diag   []int32 // index of the diagonal entry in each row
	// updOff[j]:updOff[j+1] indexes the precomputed ILU(0) row updates
	// triggered by lower-triangular entry j: lu[updDst] -= lik*lu[updSrc].
	updOff []int32
	updSrc []int32
	updDst []int32
}

// NewPCBJacobiILU0 factors the local owned submatrix of m in place.
func NewPCBJacobiILU0(m *BSRMat) *PCBJacobiILU0 {
	indptr, cols, vals, n := m.LocalCSR()
	p := &PCBJacobiILU0{m: m, n: n, indptr: indptr, cols: cols, lu: vals, diag: make([]int32, n)}
	p.buildIndex()
	p.factor()
	return p
}

// Refresh re-extracts the owned submatrix values and refactors on the
// frozen pattern. Implements Refresher; allocation-free.
func (p *PCBJacobiILU0) Refresh() {
	p.m.LocalCSRValuesInto(p.indptr, p.lu)
	p.factor()
}

// RebindPatched re-keys the factorization to a replacement matrix across an
// incremental remesh. Where patch proves a row (and the rows its elimination
// touches) kept its column pattern, the ILU(0) update index — the expensive
// hash-resolved pattern intersection of buildIndex — is carried over by pure
// offset arithmetic; only dirty rows re-resolve their intersections, with a
// two-pointer merge over the sorted patterns. The values are always
// re-extracted and the numeric factorization redone in full, so the result
// is bitwise identical to NewPCBJacobiILU0(m). A nil patch rebuilds from
// scratch. Returns the owned scalar rows whose index was carried vs rebuilt.
func (p *PCBJacobiILU0) RebindPatched(m *BSRMat, patch *RowPatch) (kept, rebuilt int) {
	if patch == nil {
		*p = *NewPCBJacobiILU0(m)
		return 0, p.n
	}
	oldIndptr := p.indptr
	oldUpdOff, oldUpdSrc, oldUpdDst := p.updOff, p.updSrc, p.updDst
	indptr, cols, vals, n := m.LocalCSR()
	p.m, p.n, p.indptr, p.cols, p.lu = m, n, indptr, cols, vals
	if cap(p.diag) < n {
		p.diag = make([]int32, n)
	}
	p.diag = p.diag[:n]
	// oldOf inverts the row remap: new owned row -> old owned row, -1 when
	// the row is new here. A "clean" row additionally requires the patch's
	// non-dirty promise and (defensively) an unchanged local pattern length;
	// LocalCSR drops ghost columns, so a column whose ownedness flipped
	// would change the length and demote the row to the merge path.
	oldOf := make([]int32, n)
	for i := range oldOf {
		oldOf[i] = -1
	}
	for or, nr := range patch.Remap {
		if nr >= 0 && int(nr) < n {
			oldOf[nr] = int32(or)
		}
	}
	clean := make([]bool, n)
	for r := 0; r < n; r++ {
		or := oldOf[r]
		clean[r] = or >= 0 && !patch.Dirty[r] &&
			indptr[r+1]-indptr[r] == oldIndptr[or+1]-oldIndptr[or]
	}
	for r := 0; r < n; r++ {
		p.diag[r] = -1
		for j := indptr[r]; j < indptr[r+1]; j++ {
			if int(cols[j]) == r {
				p.diag[r] = j
				break
			}
		}
		if p.diag[r] < 0 {
			panic(fmt.Sprintf("la: missing diagonal in row %d", r))
		}
	}
	updOff := make([]int32, len(cols)+1)
	updSrc := make([]int32, 0, len(oldUpdSrc))
	updDst := make([]int32, 0, len(oldUpdDst))
	for r := 0; r < n; r++ {
		rowClean := clean[r]
		if rowClean {
			kept++
		} else {
			rebuilt++
		}
		for j := indptr[r]; j < indptr[r+1]; j++ {
			updOff[j+1] = updOff[j]
			k := int(cols[j])
			if k >= r {
				continue
			}
			if rowClean && clean[k] {
				// Both row patterns are positional images of their old
				// selves under one injective node permutation, so the old
				// pattern intersection maps entry-for-entry (in the same
				// jj-ascending order buildIndex emits): carry the pairs by
				// re-basing the stored offsets into the new rows.
				or, ok := oldOf[r], oldOf[k]
				oj := oldIndptr[or] + (j - indptr[r])
				for u := oldUpdOff[oj]; u < oldUpdOff[oj+1]; u++ {
					updSrc = append(updSrc, oldUpdSrc[u]-oldIndptr[ok]+indptr[k])
					updDst = append(updDst, oldUpdDst[u]-oldIndptr[or]+indptr[r])
					updOff[j+1]++
				}
				continue
			}
			// Re-resolve the ILU(0) pattern intersection for this entry:
			// row k's post-diagonal columns against row r's columns, both
			// sorted ascending — same pairs and order as buildIndex's
			// hash-lookup construction.
			a, b := p.diag[k]+1, indptr[r]
			ae, be := indptr[k+1], indptr[r+1]
			for a < ae && b < be {
				switch {
				case cols[a] == cols[b]:
					updSrc = append(updSrc, a)
					updDst = append(updDst, b)
					updOff[j+1]++
					a++
					b++
				case cols[a] < cols[b]:
					a++
				default:
					b++
				}
			}
		}
	}
	p.updOff, p.updSrc, p.updDst = updOff, updSrc, updDst
	p.factor()
	return kept, rebuilt
}

// buildIndex records each row's diagonal slot and precomputes, for every
// lower-triangular entry, the (source, destination) pairs its elimination
// row update hits — the ILU(0) pattern intersection, resolved once with a
// transient hash map so factor itself is a pure array sweep.
func (p *PCBJacobiILU0) buildIndex() {
	n := p.n
	colPos := make(map[int64]int32, len(p.cols))
	for r := 0; r < n; r++ {
		for j := p.indptr[r]; j < p.indptr[r+1]; j++ {
			colPos[int64(r)<<32|int64(p.cols[j])] = j
			if int(p.cols[j]) == r {
				p.diag[r] = j
			}
		}
	}
	for r := 0; r < n; r++ {
		if int(p.cols[p.diag[r]]) != r {
			panic(fmt.Sprintf("la: missing diagonal in row %d", r))
		}
	}
	p.updOff = make([]int32, len(p.cols)+1)
	for r := 0; r < n; r++ {
		for j := p.indptr[r]; j < p.indptr[r+1]; j++ {
			p.updOff[j+1] = p.updOff[j]
			k := int(p.cols[j])
			if k >= r {
				continue
			}
			for jj := p.diag[k] + 1; jj < p.indptr[k+1]; jj++ {
				if pos, ok := colPos[int64(r)<<32|int64(p.cols[jj])]; ok {
					p.updSrc = append(p.updSrc, jj)
					p.updDst = append(p.updDst, pos)
					p.updOff[j+1]++
				}
			}
		}
	}
}

func (p *PCBJacobiILU0) factor() {
	n := p.n
	for r := 0; r < n; r++ {
		for j := p.indptr[r]; j < p.indptr[r+1]; j++ {
			k := int(p.cols[j])
			if k >= r {
				break
			}
			dk := p.lu[p.diag[k]]
			if dk == 0 {
				continue
			}
			lik := p.lu[j] / dk
			p.lu[j] = lik
			// Row update restricted to the existing pattern (ILU(0)),
			// through the precomputed position pairs.
			for u := p.updOff[j]; u < p.updOff[j+1]; u++ {
				p.lu[p.updDst[u]] -= lik * p.lu[p.updSrc[u]]
			}
		}
	}
}

// Apply performs the forward/backward ILU(0) triangular solves on the
// local block. Implements PC.
func (p *PCBJacobiILU0) Apply(r, z []float64) {
	n := p.n
	// Forward: L y = r (unit diagonal L).
	for i := 0; i < n; i++ {
		s := r[i]
		for j := p.indptr[i]; j < p.indptr[i+1]; j++ {
			c := int(p.cols[j])
			if c >= i {
				break
			}
			s -= p.lu[j] * z[c]
		}
		z[i] = s
	}
	// Backward: U z = y.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := p.diag[i] + 1; j < p.indptr[i+1]; j++ {
			c := int(p.cols[j])
			if c < n {
				s -= p.lu[j] * z[c]
			}
		}
		d := p.lu[p.diag[i]]
		if d == 0 {
			d = 1
		}
		z[i] = s / d
	}
}
