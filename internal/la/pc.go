package la

import "fmt"

// PC is a preconditioner: z = M^{-1} r over the owned segment.
type PC interface {
	Apply(r, z []float64)
}

// PCNone is the identity preconditioner.
type PCNone struct{}

// Apply copies r to z.
func (PCNone) Apply(r, z []float64) { copy(z, r) }

// PCJacobi scales by the inverse of the scalar diagonal (PETSc "jacobi",
// used for the VU mass solves in Table II).
type PCJacobi struct {
	inv []float64
}

// NewPCJacobi extracts the scalar diagonal of m.
func NewPCJacobi(m *BSRMat) *PCJacobi {
	bs := m.Bs
	blocks := m.DiagBlocks()
	inv := make([]float64, m.Rows())
	for rn := 0; rn < m.NRowNodes; rn++ {
		for d := 0; d < bs; d++ {
			v := blocks[rn*bs*bs+d*bs+d]
			if v != 0 {
				inv[rn*bs+d] = 1 / v
			} else {
				inv[rn*bs+d] = 1
			}
		}
	}
	return &PCJacobi{inv: inv}
}

// Apply implements PC.
func (p *PCJacobi) Apply(r, z []float64) {
	for i, v := range p.inv {
		z[i] = v * r[i]
	}
}

// PCPBJacobi inverts the dense bs x bs diagonal blocks (PETSc "pbjacobi"),
// the natural point-block preconditioner for BAIJ matrices.
type PCPBJacobi struct {
	bs  int
	inv []float64
}

// NewPCPBJacobi inverts every diagonal block of m.
func NewPCPBJacobi(m *BSRMat) *PCPBJacobi {
	bs := m.Bs
	bs2 := bs * bs
	blocks := m.DiagBlocks()
	for rn := 0; rn < m.NRowNodes; rn++ {
		if !InvertSmall(blocks[rn*bs2:(rn+1)*bs2], bs) {
			// Singular diagonal block: fall back to identity.
			for i := 0; i < bs2; i++ {
				blocks[rn*bs2+i] = 0
			}
			for d := 0; d < bs; d++ {
				blocks[rn*bs2+d*bs+d] = 1
			}
		}
	}
	return &PCPBJacobi{bs: bs, inv: blocks}
}

// Apply implements PC.
func (p *PCPBJacobi) Apply(r, z []float64) {
	bs := p.bs
	bs2 := bs * bs
	n := len(r) / bs
	for rn := 0; rn < n; rn++ {
		blk := p.inv[rn*bs2 : (rn+1)*bs2]
		for bi := 0; bi < bs; bi++ {
			var s float64
			for bj := 0; bj < bs; bj++ {
				s += blk[bi*bs+bj] * r[rn*bs+bj]
			}
			z[rn*bs+bi] = s
		}
	}
}

// PCBJacobiILU0 is block-Jacobi across ranks with an ILU(0)
// factorization of the local owned diagonal block as the subdomain solver
// — the PETSc default "bjacobi" configuration used for the CH, NS and PP
// solves in Table II.
type PCBJacobiILU0 struct {
	n      int
	indptr []int32
	cols   []int32
	lu     []float64
	diag   []int32 // index of the diagonal entry in each row
}

// NewPCBJacobiILU0 factors the local owned submatrix of m in place.
func NewPCBJacobiILU0(m *BSRMat) *PCBJacobiILU0 {
	indptr, cols, vals, n := m.LocalCSR()
	p := &PCBJacobiILU0{n: n, indptr: indptr, cols: cols, lu: vals, diag: make([]int32, n)}
	p.factor()
	return p
}

func (p *PCBJacobiILU0) factor() {
	n := p.n
	colPos := make(map[int64]int32, len(p.cols))
	for r := 0; r < n; r++ {
		for j := p.indptr[r]; j < p.indptr[r+1]; j++ {
			colPos[int64(r)<<32|int64(p.cols[j])] = j
			if int(p.cols[j]) == r {
				p.diag[r] = j
			}
		}
	}
	for r := 0; r < n; r++ {
		if int(p.cols[p.diag[r]]) != r {
			panic(fmt.Sprintf("la: missing diagonal in row %d", r))
		}
		for j := p.indptr[r]; j < p.indptr[r+1]; j++ {
			k := int(p.cols[j])
			if k >= r {
				break
			}
			dk := p.lu[p.diag[k]]
			if dk == 0 {
				continue
			}
			lik := p.lu[j] / dk
			p.lu[j] = lik
			// Row update restricted to the existing pattern (ILU(0)).
			for jj := p.diag[k] + 1; jj < p.indptr[k+1]; jj++ {
				c := p.cols[jj]
				if pos, ok := colPos[int64(r)<<32|int64(c)]; ok {
					p.lu[pos] -= lik * p.lu[jj]
				}
			}
		}
	}
}

// Apply performs the forward/backward ILU(0) triangular solves on the
// local block. Implements PC.
func (p *PCBJacobiILU0) Apply(r, z []float64) {
	n := p.n
	// Forward: L y = r (unit diagonal L).
	for i := 0; i < n; i++ {
		s := r[i]
		for j := p.indptr[i]; j < p.indptr[i+1]; j++ {
			c := int(p.cols[j])
			if c >= i {
				break
			}
			s -= p.lu[j] * z[c]
		}
		z[i] = s
	}
	// Backward: U z = y.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for j := p.diag[i] + 1; j < p.indptr[i+1]; j++ {
			c := int(p.cols[j])
			if c < n {
				s -= p.lu[j] * z[c]
			}
		}
		d := p.lu[p.diag[i]]
		if d == 0 {
			d = 1
		}
		z[i] = s / d
	}
}
