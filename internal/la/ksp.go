package la

import (
	"fmt"
	"math"
	"time"

	"proteus/internal/par"
)

// Reducer provides global reductions over ranks, allocation-free on the
// caller side: dst is summed element-wise across ranks in place. A serial
// Reducer leaves dst untouched.
type Reducer interface {
	GlobalSumInto(dst []float64)
}

// SerialReducer is a Reducer for single-rank use.
type SerialReducer struct{}

// GlobalSumInto leaves dst unchanged.
func (SerialReducer) GlobalSumInto([]float64) {}

// Method selects a Krylov solver.
type Method string

// Krylov method names mirror the PETSc -ksp_type values from Table II.
const (
	CG     Method = "cg"
	BiCGS  Method = "bcgs"
	IBiCGS Method = "ibcgs"
	GMRES  Method = "gmres"
)

// Valid reports whether m names a known Krylov method (the empty string
// is the documented IBiCGS default).
func (m Method) Valid() bool {
	switch m {
	case CG, BiCGS, IBiCGS, GMRES, "":
		return true
	}
	return false
}

// ErrUnknownMethod reports a KSP configured with a Type that names no
// implemented Krylov method. It is returned from Solve (and from
// Newton.Solve for the inner method) instead of panicking at solve time,
// so a mistyped per-stage config surfaces as a recoverable run error.
type ErrUnknownMethod struct {
	Type Method
}

func (e *ErrUnknownMethod) Error() string {
	return fmt.Sprintf("la: unknown KSP type %q (known: cg, bcgs, ibcgs, gmres)", e.Type)
}

// KSP is a configured Krylov solve, mirroring the PETSc KSP object. A KSP
// owns a persistent workspace: the first Solve for a given operator shape
// allocates every work vector, and all later Solves reuse them, so the
// steady-state (warm) solve path performs no allocation. Hold one KSP per
// stage and keep calling Solve on it.
type KSP struct {
	Op      Operator
	PC      PC
	Red     Reducer
	Type    Method
	Rtol    float64 // relative tolerance (default 1e-8, as in the paper)
	Atol    float64 // absolute tolerance (default 1e-8)
	MaxIt   int     // default 10000
	Restart int     // GMRES restart length (default 30)

	// Pool shards the dot/axpy kernels across workers; results are
	// bitwise identical to the serial path (chunk-canonical dots).
	Pool *par.Pool

	ws *kspWS
	// pcSetup accumulates the preconditioner build/refresh cost reported
	// through AddPCSetup since the last Solve.
	pcSetup time.Duration
}

// Result reports a solve outcome.
type Result struct {
	Iterations int
	Converged  bool
	Residual   float64
	// SolveTime is the wall-clock of the Krylov iteration itself; PCSetup
	// is the preconditioner build/refresh cost the caller reported via
	// AddPCSetup before this Solve. Keeping them separate stops expensive
	// setups (ILU factorization, multigrid hierarchy refresh) from
	// inflating per-iteration timings in PC comparisons.
	SolveTime time.Duration
	PCSetup   time.Duration
}

// AddPCSetup records preconditioner setup/refresh wall-clock spent on
// behalf of the next Solve; the accumulated total is returned in that
// Solve's Result.PCSetup and then reset.
func (k *KSP) AddPCSetup(d time.Duration) { k.pcSetup += d }

func (k *KSP) defaults() {
	if k.Rtol == 0 {
		k.Rtol = 1e-8
	}
	if k.Atol == 0 {
		k.Atol = 1e-8
	}
	if k.MaxIt == 0 {
		k.MaxIt = 10000
	}
	if k.Restart == 0 {
		k.Restart = 30
	}
	if k.PC == nil {
		k.PC = PCNone{}
	}
	if k.Red == nil {
		k.Red = SerialReducer{}
	}
}

// Solve solves Op*x = b, using x as the initial guess, and overwrites x
// with the solution. b and x are full local vectors; only owned segments
// are read/written by the solver itself. The error reports configuration
// problems (an unknown Type) — numerical non-convergence is reported
// through Result.Converged, not the error.
func (k *KSP) Solve(b, x []float64) (Result, error) {
	if !k.Type.Valid() {
		return Result{}, &ErrUnknownMethod{Type: k.Type}
	}
	k.defaults()
	k.ensureWS()
	t0 := time.Now()
	var res Result
	switch k.Type {
	case CG:
		res = k.cg(b, x)
	case BiCGS:
		res = k.bicgstab(b, x, false)
	case GMRES:
		res = k.gmres(b, x)
	default: // IBiCGS and the "" default
		res = k.bicgstab(b, x, true)
	}
	res.SolveTime = time.Since(t0)
	res.PCSetup = k.pcSetup
	k.pcSetup = 0
	return res, nil
}

// cg is preconditioned conjugate gradients for SPD operators.
func (k *KSP) cg(b, x []float64) Result {
	ws := k.ws
	n := ws.n
	r, z, p, ap := ws.r, ws.z, ws.p, ws.ap
	k.Op.Apply(x, ap)
	k.waxpby(r, 1, b, -1, ap, n)
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	k.PC.Apply(r[:n], z[:n])
	copy(p[:n], z[:n])
	rz := k.dot(r, z, n)
	rnorm := k.norm(r, n)
	for it := 0; it < k.MaxIt; it++ {
		if rnorm <= k.Rtol*bnorm || rnorm <= k.Atol {
			return Result{Iterations: it, Converged: true, Residual: rnorm}
		}
		k.Op.Apply(p, ap)
		pap := k.dot(p, ap, n)
		if pap == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		alpha := rz / pap
		k.axpy(alpha, p, x, n)
		k.axpy(-alpha, ap, r, n)
		k.PC.Apply(r[:n], z[:n])
		rzNew, rr := k.dot2(r, z, r, r, n)
		rnorm = math.Sqrt(rr)
		beta := rzNew / rz
		rz = rzNew
		k.waxpby(p, 1, z, beta, p, n)
	}
	return Result{Iterations: k.MaxIt, Converged: false, Residual: rnorm}
}

// bicgstab is preconditioned BiCGStab; with fused=true the two inner
// products per half-step are batched into single reductions, the
// communication-avoiding trick behind PETSc's IBCGS variant used for the
// pressure-Poisson solve in Table II.
func (k *KSP) bicgstab(b, x []float64, fused bool) Result {
	ws := k.ws
	n := ws.n
	r, rhat, p := ws.r, ws.rhat, ws.p
	v, s, t, ph, sh := ws.v, ws.s, ws.t, ws.ph, ws.sh
	k.Op.Apply(x, v)
	k.waxpby(r, 1, b, -1, v, n)
	copy(rhat, r[:n])
	for i := range v {
		v[i] = 0
	}
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	rnorm := k.norm(r, n)
	for it := 0; it < k.MaxIt; it++ {
		if rnorm <= k.Rtol*bnorm || rnorm <= k.Atol {
			return Result{Iterations: it, Converged: true, Residual: rnorm}
		}
		rhoNew := k.dot(rhat, r, n)
		if rhoNew == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		if it == 0 {
			copy(p[:n], r[:n])
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			// p = r + beta*(p - omega*v), in two aliasing-safe passes.
			k.waxpby(p, 1, p, -omega, v, n)
			k.waxpby(p, 1, r, beta, p, n)
		}
		rho = rhoNew
		k.PC.Apply(p[:n], ph[:n])
		k.Op.Apply(ph, v)
		rhv := k.dot(rhat, v, n)
		if rhv == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		alpha = rho / rhv
		k.waxpby(s, 1, r, -alpha, v, n)
		snorm := k.norm(s, n)
		if snorm <= k.Rtol*bnorm || snorm <= k.Atol {
			k.axpy(alpha, ph, x, n)
			return Result{Iterations: it + 1, Converged: true, Residual: snorm}
		}
		k.PC.Apply(s[:n], sh[:n])
		k.Op.Apply(sh, t)
		var tt, ts float64
		if fused {
			tt, ts = k.dot2(t, t, t, s, n)
		} else {
			tt = k.dot(t, t, n)
			ts = k.dot(t, s, n)
		}
		if tt == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		omega = ts / tt
		k.axpy2(alpha, ph, omega, sh, x, n)
		k.waxpby(r, 1, s, -omega, t, n)
		rnorm = k.norm(r, n)
		if omega == 0 {
			return Result{Iterations: it + 1, Converged: false, Residual: rnorm}
		}
	}
	return Result{Iterations: k.MaxIt, Converged: false, Residual: rnorm}
}

// gmres is restarted GMRES with modified Gram-Schmidt and right
// preconditioning.
func (k *KSP) gmres(b, x []float64) Result {
	ws := k.ws
	n := ws.n
	m := k.Restart
	r, w, zv := ws.r, ws.w, ws.zv
	V, H := ws.V, ws.H
	cs, sn, g, y := ws.cs, ws.sn, ws.g, ws.y
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	totalIt := 0
	for cycle := 0; totalIt < k.MaxIt; cycle++ {
		k.Op.Apply(x, w)
		k.waxpby(r, 1, b, -1, w, n)
		beta := k.norm(r, n)
		if beta <= k.Rtol*bnorm || beta <= k.Atol {
			return Result{Iterations: totalIt, Converged: true, Residual: beta}
		}
		k.waxpby(V[0], 1/beta, r, 0, r, n)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		j := 0
		for ; j < m && totalIt < k.MaxIt; j++ {
			totalIt++
			k.PC.Apply(V[j][:n], zv[:n])
			k.Op.Apply(zv, w)
			for i := 0; i <= j; i++ {
				h := k.dot(w, V[i], n)
				H[i][j] = h
				k.axpy(-h, V[i], w, n)
			}
			hn := k.norm(w, n)
			H[j+1][j] = hn
			if hn != 0 {
				k.waxpby(V[j+1], 1/hn, w, 0, w, n)
			}
			// Apply accumulated Givens rotations.
			for i := 0; i < j; i++ {
				t := cs[i]*H[i][j] + sn[i]*H[i+1][j]
				H[i+1][j] = -sn[i]*H[i][j] + cs[i]*H[i+1][j]
				H[i][j] = t
			}
			d := math.Hypot(H[j][j], H[j+1][j])
			if d == 0 {
				j++
				break
			}
			cs[j], sn[j] = H[j][j]/d, H[j+1][j]/d
			H[j][j] = d
			H[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			if res := math.Abs(g[j+1]); res <= k.Rtol*bnorm || res <= k.Atol {
				j++
				break
			}
		}
		// Back-substitute y and update x via the preconditioned basis.
		for i := 0; i < j; i++ {
			y[i] = 0
		}
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for l := i + 1; l < j; l++ {
				s -= H[i][l] * y[l]
			}
			if H[i][i] != 0 {
				y[i] = s / H[i][i]
			}
		}
		for i := range zv {
			zv[i] = 0
		}
		for l := 0; l < j; l++ {
			k.axpy(y[l], V[l], zv, n)
		}
		k.PC.Apply(zv[:n], w[:n])
		k.axpy(1, w, x, n)
	}
	k.Op.Apply(x, w)
	k.waxpby(r, 1, b, -1, w, n)
	res := k.norm(r, n)
	return Result{Iterations: totalIt, Converged: res <= k.Rtol*bnorm || res <= k.Atol, Residual: res}
}
