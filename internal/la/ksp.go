package la

import (
	"fmt"
	"math"
)

// Reducer provides global reductions over ranks. A serial Reducer can
// simply return its inputs.
type Reducer interface {
	GlobalSumN(vals []float64) []float64
}

// SerialReducer is a Reducer for single-rank use.
type SerialReducer struct{}

// GlobalSumN returns vals unchanged.
func (SerialReducer) GlobalSumN(vals []float64) []float64 { return vals }

// Method selects a Krylov solver.
type Method string

// Krylov method names mirror the PETSc -ksp_type values from Table II.
const (
	CG     Method = "cg"
	BiCGS  Method = "bcgs"
	IBiCGS Method = "ibcgs"
	GMRES  Method = "gmres"
)

// KSP is a configured Krylov solve, mirroring the PETSc KSP object.
type KSP struct {
	Op      Operator
	PC      PC
	Red     Reducer
	Type    Method
	Rtol    float64 // relative tolerance (default 1e-8, as in the paper)
	Atol    float64 // absolute tolerance (default 1e-8)
	MaxIt   int     // default 10000
	Restart int     // GMRES restart length (default 30)
}

// Result reports a solve outcome.
type Result struct {
	Iterations int
	Converged  bool
	Residual   float64
}

func (k *KSP) defaults() {
	if k.Rtol == 0 {
		k.Rtol = 1e-8
	}
	if k.Atol == 0 {
		k.Atol = 1e-8
	}
	if k.MaxIt == 0 {
		k.MaxIt = 10000
	}
	if k.Restart == 0 {
		k.Restart = 30
	}
	if k.PC == nil {
		k.PC = PCNone{}
	}
	if k.Red == nil {
		k.Red = SerialReducer{}
	}
}

func (k *KSP) dot2(a, b, c, d []float64, n int) (float64, float64) {
	var s0, s1 float64
	for i := 0; i < n; i++ {
		s0 += a[i] * b[i]
		s1 += c[i] * d[i]
	}
	r := k.Red.GlobalSumN([]float64{s0, s1})
	return r[0], r[1]
}

func (k *KSP) dot(a, b []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return k.Red.GlobalSumN([]float64{s})[0]
}

func (k *KSP) norm(a []float64, n int) float64 {
	return math.Sqrt(k.dot(a, a, n))
}

// Solve solves Op*x = b, using x as the initial guess, and overwrites x
// with the solution. b and x are full local vectors; only owned segments
// are read/written by the solver itself.
func (k *KSP) Solve(b, x []float64) Result {
	k.defaults()
	switch k.Type {
	case CG:
		return k.cg(b, x)
	case BiCGS:
		return k.bicgstab(b, x, false)
	case IBiCGS, "":
		return k.bicgstab(b, x, true)
	case GMRES:
		return k.gmres(b, x)
	default:
		panic(fmt.Sprintf("la: unknown KSP type %q", k.Type))
	}
}

// cg is preconditioned conjugate gradients for SPD operators.
func (k *KSP) cg(b, x []float64) Result {
	n := k.Op.Rows()
	full := k.Op.FullLen()
	r := make([]float64, full)
	z := make([]float64, full)
	p := make([]float64, full)
	ap := make([]float64, full)
	k.Op.Apply(x, ap)
	for i := 0; i < n; i++ {
		r[i] = b[i] - ap[i]
	}
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	k.PC.Apply(r[:n], z[:n])
	copy(p[:n], z[:n])
	rz := k.dot(r, z, n)
	rnorm := k.norm(r, n)
	for it := 0; it < k.MaxIt; it++ {
		if rnorm <= k.Rtol*bnorm || rnorm <= k.Atol {
			return Result{Iterations: it, Converged: true, Residual: rnorm}
		}
		k.Op.Apply(p, ap)
		pap := k.dot(p, ap, n)
		if pap == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		k.PC.Apply(r[:n], z[:n])
		rzNew, rr := k.dot2(r, z, r, r, n)
		rnorm = math.Sqrt(rr)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return Result{Iterations: k.MaxIt, Converged: false, Residual: rnorm}
}

// bicgstab is preconditioned BiCGStab; with fused=true the two inner
// products per half-step are batched into single reductions, the
// communication-avoiding trick behind PETSc's IBCGS variant used for the
// pressure-Poisson solve in Table II.
func (k *KSP) bicgstab(b, x []float64, fused bool) Result {
	n := k.Op.Rows()
	full := k.Op.FullLen()
	r := make([]float64, full)
	rhat := make([]float64, n)
	p := make([]float64, full)
	v := make([]float64, full)
	s := make([]float64, full)
	t := make([]float64, full)
	ph := make([]float64, full)
	sh := make([]float64, full)
	k.Op.Apply(x, v)
	for i := 0; i < n; i++ {
		r[i] = b[i] - v[i]
		rhat[i] = r[i]
	}
	for i := range v {
		v[i] = 0
	}
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	rho, alpha, omega := 1.0, 1.0, 1.0
	rnorm := k.norm(r, n)
	for it := 0; it < k.MaxIt; it++ {
		if rnorm <= k.Rtol*bnorm || rnorm <= k.Atol {
			return Result{Iterations: it, Converged: true, Residual: rnorm}
		}
		rhoNew := k.dot(rhat, r, n)
		if rhoNew == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		if it == 0 {
			copy(p[:n], r[:n])
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		k.PC.Apply(p[:n], ph[:n])
		k.Op.Apply(ph, v)
		rhv := k.dot(rhat, v, n)
		if rhv == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		alpha = rho / rhv
		for i := 0; i < n; i++ {
			s[i] = r[i] - alpha*v[i]
		}
		snorm := k.norm(s, n)
		if snorm <= k.Rtol*bnorm || snorm <= k.Atol {
			for i := 0; i < n; i++ {
				x[i] += alpha * ph[i]
			}
			return Result{Iterations: it + 1, Converged: true, Residual: snorm}
		}
		k.PC.Apply(s[:n], sh[:n])
		k.Op.Apply(sh, t)
		var tt, ts float64
		if fused {
			tt, ts = k.dot2(t, t, t, s, n)
		} else {
			tt = k.dot(t, t, n)
			ts = k.dot(t, s, n)
		}
		if tt == 0 {
			return Result{Iterations: it, Converged: false, Residual: rnorm}
		}
		omega = ts / tt
		for i := 0; i < n; i++ {
			x[i] += alpha*ph[i] + omega*sh[i]
			r[i] = s[i] - omega*t[i]
		}
		rnorm = k.norm(r, n)
		if omega == 0 {
			return Result{Iterations: it + 1, Converged: false, Residual: rnorm}
		}
	}
	return Result{Iterations: k.MaxIt, Converged: false, Residual: rnorm}
}

// gmres is restarted GMRES with modified Gram-Schmidt and right
// preconditioning.
func (k *KSP) gmres(b, x []float64) Result {
	n := k.Op.Rows()
	full := k.Op.FullLen()
	m := k.Restart
	r := make([]float64, full)
	w := make([]float64, full)
	zv := make([]float64, full)
	V := make([][]float64, m+1)
	for i := range V {
		V[i] = make([]float64, full)
	}
	H := make([][]float64, m+1)
	for i := range H {
		H[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	bnorm := k.norm(b, n)
	if bnorm == 0 {
		bnorm = 1
	}
	totalIt := 0
	for cycle := 0; totalIt < k.MaxIt; cycle++ {
		k.Op.Apply(x, w)
		for i := 0; i < n; i++ {
			r[i] = b[i] - w[i]
		}
		beta := k.norm(r, n)
		if beta <= k.Rtol*bnorm || beta <= k.Atol {
			return Result{Iterations: totalIt, Converged: true, Residual: beta}
		}
		for i := 0; i < n; i++ {
			V[0][i] = r[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta
		j := 0
		for ; j < m && totalIt < k.MaxIt; j++ {
			totalIt++
			k.PC.Apply(V[j][:n], zv[:n])
			k.Op.Apply(zv, w)
			for i := 0; i <= j; i++ {
				h := k.dot(w, V[i], n)
				H[i][j] = h
				for l := 0; l < n; l++ {
					w[l] -= h * V[i][l]
				}
			}
			hn := k.norm(w, n)
			H[j+1][j] = hn
			if hn != 0 {
				for l := 0; l < n; l++ {
					V[j+1][l] = w[l] / hn
				}
			}
			// Apply accumulated Givens rotations.
			for i := 0; i < j; i++ {
				t := cs[i]*H[i][j] + sn[i]*H[i+1][j]
				H[i+1][j] = -sn[i]*H[i][j] + cs[i]*H[i+1][j]
				H[i][j] = t
			}
			d := math.Hypot(H[j][j], H[j+1][j])
			if d == 0 {
				j++
				break
			}
			cs[j], sn[j] = H[j][j]/d, H[j+1][j]/d
			H[j][j] = d
			H[j+1][j] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			if res := math.Abs(g[j+1]); res <= k.Rtol*bnorm || res <= k.Atol {
				j++
				break
			}
		}
		// Back-substitute y and update x via the preconditioned basis.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for l := i + 1; l < j; l++ {
				s -= H[i][l] * y[l]
			}
			if H[i][i] != 0 {
				y[i] = s / H[i][i]
			}
		}
		for i := range zv {
			zv[i] = 0
		}
		for l := 0; l < j; l++ {
			for i := 0; i < n; i++ {
				zv[i] += y[l] * V[l][i]
			}
		}
		k.PC.Apply(zv[:n], w[:n])
		for i := 0; i < n; i++ {
			x[i] += w[i]
		}
	}
	k.Op.Apply(x, w)
	for i := 0; i < n; i++ {
		r[i] = b[i] - w[i]
	}
	res := k.norm(r, n)
	return Result{Iterations: totalIt, Converged: res <= k.Rtol*bnorm || res <= k.Atol, Residual: res}
}
