package la

import (
	"math"

	"proteus/internal/par"
)

// NewtonProblem supplies the nonlinear residual and Jacobian for a Newton
// solve, mirroring the PETSc SNES callbacks. Vectors are full local
// (owned+ghost); residuals are defined on the owned segment.
type NewtonProblem interface {
	// Residual evaluates F(x) into r (owned segment).
	Residual(x, r []float64)
	// Jacobian returns the operator and preconditioner for J(x).
	Jacobian(x []float64) (Operator, PC)
}

// Newton is a damped Newton-Krylov driver. Like KSP it keeps a persistent
// workspace (work vectors plus the inner KSP and its workspace), so
// repeated Solves on the same problem shape allocate nothing.
type Newton struct {
	Red     Reducer
	KSP     Method  // inner Krylov method
	Rtol    float64 // relative nonlinear tolerance (default 1e-10, as in the paper)
	Atol    float64 // absolute nonlinear tolerance (default 1e-10)
	MaxIt   int     // default 50
	LinRtol float64 // inner linear relative tolerance (default 1e-8)

	// Pool shards the inner solver's kernels (see KSP.Pool).
	Pool *par.Pool

	// Iterations and LinearIterations report the last solve's work;
	// Last is the most recent inner Krylov result, kept so a caller can
	// attach linear-solver detail to a nonlinear failure report.
	Iterations       int
	LinearIterations int
	Last             Result

	ksp                *KSP
	r, dx, xTrial, rhs []float64
	red                [1]float64
}

// Solve drives F(x) = 0 starting from x. The bool reports convergence;
// the error reports configuration problems (an unknown inner method) —
// a stagnated Newton iteration is (false, nil), not an error.
func (nw *Newton) Solve(p NewtonProblem, x []float64) (bool, error) {
	if !nw.KSP.Valid() {
		return false, &ErrUnknownMethod{Type: nw.KSP}
	}
	if nw.Rtol == 0 {
		nw.Rtol = 1e-10
	}
	if nw.Atol == 0 {
		nw.Atol = 1e-10
	}
	if nw.MaxIt == 0 {
		nw.MaxIt = 50
	}
	if nw.LinRtol == 0 {
		nw.LinRtol = 1e-8
	}
	if nw.Red == nil {
		nw.Red = SerialReducer{}
	}
	if nw.KSP == "" {
		nw.KSP = BiCGS
	}
	nw.Iterations, nw.LinearIterations = 0, 0
	nw.Last = Result{}

	op, pc := p.Jacobian(x)
	n := op.Rows()
	full := op.FullLen()
	if len(nw.r) != full {
		nw.r = make([]float64, full)
		nw.dx = make([]float64, full)
		nw.xTrial = make([]float64, full)
		nw.rhs = make([]float64, full)
	}
	if nw.ksp == nil {
		nw.ksp = &KSP{}
	}
	r, dx, xTrial, rhs := nw.r, nw.dx, nw.xTrial, nw.rhs
	p.Residual(x, r)
	r0 := nw.norm(r, n)
	if r0 <= nw.Atol {
		return true, nil
	}
	rprev := r0
	for it := 0; it < nw.MaxIt; it++ {
		nw.Iterations = it + 1
		if it > 0 {
			op, pc = p.Jacobian(x)
		}
		// Solve J dx = -r.
		for i := 0; i < n; i++ {
			rhs[i] = -r[i]
		}
		for i := range dx {
			dx[i] = 0
		}
		ksp := nw.ksp
		ksp.Op, ksp.PC, ksp.Red, ksp.Pool = op, pc, nw.Red, nw.Pool
		ksp.Type, ksp.Rtol, ksp.Atol = nw.KSP, nw.LinRtol, nw.Atol*1e-2
		res, err := ksp.Solve(rhs, dx)
		if err != nil {
			return false, err
		}
		nw.Last = res
		nw.LinearIterations += res.Iterations
		// Backtracking line search.
		lambda := 1.0
		ok := false
		for ls := 0; ls < 8; ls++ {
			copy(xTrial, x)
			for i := 0; i < n; i++ {
				xTrial[i] += lambda * dx[i]
			}
			p.Residual(xTrial, r)
			rn := nw.norm(r, n)
			if rn < rprev || rn <= nw.Atol {
				copy(x, xTrial)
				rprev = rn
				ok = true
				break
			}
			lambda /= 2
		}
		if !ok {
			// Accept the full step anyway; stagnation will terminate below.
			for i := 0; i < n; i++ {
				x[i] += dx[i]
			}
			p.Residual(x, r)
			rprev = nw.norm(r, n)
		}
		if rprev <= nw.Rtol*r0 || rprev <= nw.Atol {
			return true, nil
		}
	}
	return false, nil
}

// norm is the global 2-norm over the owned segment, a method (not a
// per-Solve closure) so warm Solves stay allocation-free.
func (nw *Newton) norm(v []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += v[i] * v[i]
	}
	nw.red[0] = s
	nw.Red.GlobalSumInto(nw.red[:])
	return math.Sqrt(nw.red[0])
}
