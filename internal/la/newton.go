package la

import "math"

// NewtonProblem supplies the nonlinear residual and Jacobian for a Newton
// solve, mirroring the PETSc SNES callbacks. Vectors are full local
// (owned+ghost); residuals are defined on the owned segment.
type NewtonProblem interface {
	// Residual evaluates F(x) into r (owned segment).
	Residual(x, r []float64)
	// Jacobian returns the operator and preconditioner for J(x).
	Jacobian(x []float64) (Operator, PC)
}

// Newton is a damped Newton-Krylov driver.
type Newton struct {
	Red     Reducer
	KSP     Method  // inner Krylov method
	Rtol    float64 // relative nonlinear tolerance (default 1e-10, as in the paper)
	Atol    float64 // absolute nonlinear tolerance (default 1e-10)
	MaxIt   int     // default 50
	LinRtol float64 // inner linear relative tolerance (default 1e-8)

	// Iterations and LinearIterations report the last solve's work.
	Iterations       int
	LinearIterations int
}

// Solve drives F(x) = 0 starting from x. Returns true on convergence.
func (nw *Newton) Solve(p NewtonProblem, x []float64) bool {
	if nw.Rtol == 0 {
		nw.Rtol = 1e-10
	}
	if nw.Atol == 0 {
		nw.Atol = 1e-10
	}
	if nw.MaxIt == 0 {
		nw.MaxIt = 50
	}
	if nw.LinRtol == 0 {
		nw.LinRtol = 1e-8
	}
	if nw.Red == nil {
		nw.Red = SerialReducer{}
	}
	if nw.KSP == "" {
		nw.KSP = BiCGS
	}
	nw.Iterations, nw.LinearIterations = 0, 0

	norm := func(v []float64, n int) float64 {
		var s float64
		for i := 0; i < n; i++ {
			s += v[i] * v[i]
		}
		return math.Sqrt(nw.Red.GlobalSumN([]float64{s})[0])
	}

	op, pc := p.Jacobian(x)
	n := op.Rows()
	full := op.FullLen()
	r := make([]float64, full)
	dx := make([]float64, full)
	xTrial := make([]float64, full)
	p.Residual(x, r)
	r0 := norm(r, n)
	if r0 <= nw.Atol {
		return true
	}
	rprev := r0
	for it := 0; it < nw.MaxIt; it++ {
		nw.Iterations = it + 1
		if it > 0 {
			op, pc = p.Jacobian(x)
		}
		// Solve J dx = -r.
		rhs := make([]float64, full)
		for i := 0; i < n; i++ {
			rhs[i] = -r[i]
		}
		for i := range dx {
			dx[i] = 0
		}
		ksp := &KSP{Op: op, PC: pc, Red: nw.Red, Type: nw.KSP, Rtol: nw.LinRtol, Atol: nw.Atol * 1e-2}
		res := ksp.Solve(rhs, dx)
		nw.LinearIterations += res.Iterations
		// Backtracking line search.
		lambda := 1.0
		ok := false
		for ls := 0; ls < 8; ls++ {
			copy(xTrial, x)
			for i := 0; i < n; i++ {
				xTrial[i] += lambda * dx[i]
			}
			p.Residual(xTrial, r)
			rn := norm(r, n)
			if rn < rprev || rn <= nw.Atol {
				copy(x, xTrial)
				rprev = rn
				ok = true
				break
			}
			lambda /= 2
		}
		if !ok {
			// Accept the full step anyway; stagnation will terminate below.
			for i := 0; i < n; i++ {
				x[i] += dx[i]
			}
			p.Residual(x, r)
			rprev = norm(r, n)
		}
		if rprev <= nw.Rtol*r0 || rprev <= nw.Atol {
			return true
		}
	}
	return false
}
