package la

import (
	"math"

	"proteus/internal/blas"
	"proteus/internal/par"
)

// minParallelN is the vector length below which sharding an axpy/dot
// costs more in dispatch than it saves.
const minParallelN = 8192

// Vector op codes dispatched to the pool workers.
const (
	opDot = iota
	opDot2
	opAxpy   // vb += alpha*va
	opAxpy2  // vw += alpha*va + beta*vb
	opWaxpby // vw = alpha*va + beta*vb
)

// kspWS is the reusable solve workspace: every work vector of the
// configured method, the inner-product chunk sums, the reduction buffer,
// and the prebuilt shard closure with its argument slots. Allocated once
// per (operator shape, method, pool) and reused by every warm Solve, which
// therefore allocates nothing.
type kspWS struct {
	pool    *par.Pool
	full, n int
	method  Method
	restart int

	// CG: r, z, p, ap. BiCGStab adds rhat, v, s, t, ph, sh (z, p reused).
	r, z, p, ap           []float64
	rhat, v, s, t, ph, sh []float64
	// GMRES: w, zv, Krylov basis V, Hessenberg H, Givens cs/sn, g, y.
	w, zv  []float64
	V, H   [][]float64
	cs, sn []float64
	g, y   []float64

	red      [2]float64 // reduction staging for GlobalSumInto
	chA, chB []float64  // canonical dot chunk sums

	// Sharded-op dispatch state: the op code and argument slots read by
	// fn, the prebuilt worker closure.
	op          int
	alpha, beta float64
	va, vb, vw  []float64
	vc, vd      []float64
	opN, nw     int
	fn          func(w int)
}

func newKspWS(pool *par.Pool, full, n int, method Method, restart int) *kspWS {
	ws := &kspWS{pool: pool, full: full, n: n, method: method, restart: restart}
	ws.fn = ws.runShard
	ws.chA = make([]float64, blas.NumChunks(n))
	ws.chB = make([]float64, blas.NumChunks(n))
	vec := func() []float64 { return make([]float64, full) }
	switch method {
	case CG:
		ws.r, ws.z, ws.p, ws.ap = vec(), vec(), vec(), vec()
	case BiCGS, IBiCGS, "":
		ws.r, ws.p = vec(), vec()
		ws.rhat = make([]float64, n)
		ws.v, ws.s, ws.t, ws.ph, ws.sh = vec(), vec(), vec(), vec(), vec()
	case GMRES:
		m := restart
		ws.r, ws.w, ws.zv = vec(), vec(), vec()
		ws.V = make([][]float64, m+1)
		for i := range ws.V {
			ws.V[i] = vec()
		}
		ws.H = make([][]float64, m+1)
		for i := range ws.H {
			ws.H[i] = make([]float64, m)
		}
		ws.cs, ws.sn = make([]float64, m), make([]float64, m)
		ws.g = make([]float64, m+1)
		ws.y = make([]float64, m)
	}
	return ws
}

// matches reports whether the workspace fits a solve of the given shape.
func (ws *kspWS) matches(pool *par.Pool, full, n int, method Method, restart int) bool {
	if ws == nil || ws.pool != pool || ws.full != full || ws.n != n || ws.method != method {
		return false
	}
	return method != GMRES || ws.restart == restart
}

// resize rebinds the workspace to a new operator shape in place, keeping
// every backing array whose capacity still fits. This is the remesh path
// of a persistent solver (chns.Solver.Rebind): vector lengths change but
// the method does not, so the Krylov storage survives the epoch instead
// of being reallocated — shrinking or same-size remeshes allocate
// nothing. Reused vectors are zeroed so stale ghost-segment values from
// the old mesh cannot leak into the first overlapped Apply.
func (ws *kspWS) resize(pool *par.Pool, full, n int) {
	ws.pool, ws.full, ws.n = pool, full, n
	grow := func(v *[]float64, ln int) {
		if cap(*v) >= ln {
			*v = (*v)[:ln]
			for i := range *v {
				(*v)[i] = 0
			}
			return
		}
		*v = make([]float64, ln)
	}
	nc := blas.NumChunks(n)
	grow(&ws.chA, nc)
	grow(&ws.chB, nc)
	for _, v := range []*[]float64{&ws.r, &ws.z, &ws.p, &ws.ap, &ws.v, &ws.s, &ws.t, &ws.ph, &ws.sh, &ws.w, &ws.zv} {
		if *v != nil {
			grow(v, full)
		}
	}
	if ws.rhat != nil {
		grow(&ws.rhat, n)
	}
	for i := range ws.V {
		grow(&ws.V[i], full)
	}
}

// dispatch runs the staged op over n entries, sharded across the pool
// when the vector is long enough to pay for it. Inner products are
// chunk-canonical (see blas.DotChunks), so the serial and sharded paths
// agree bitwise.
func (ws *kspWS) dispatch(n int) {
	ws.opN = n
	if ws.pool != nil && ws.pool.Workers() > 1 && n >= minParallelN {
		ws.nw = ws.pool.Workers()
		ws.pool.Run(ws.fn)
	} else {
		ws.nw = 1
		ws.runShard(0)
	}
	ws.va, ws.vb, ws.vc, ws.vd, ws.vw = nil, nil, nil, nil, nil
}

// runShard executes worker w's contiguous share of the staged op.
func (ws *kspWS) runShard(w int) {
	n, nw := ws.opN, ws.nw
	switch ws.op {
	case opDot:
		nc := blas.NumChunks(n)
		blas.DotChunks(ws.va, ws.vb, ws.chA, w*nc/nw, (w+1)*nc/nw, n)
	case opDot2:
		nc := blas.NumChunks(n)
		blas.Dot2Chunks(ws.va, ws.vb, ws.vc, ws.vd, ws.chA, ws.chB, w*nc/nw, (w+1)*nc/nw, n)
	case opAxpy:
		lo, hi := w*n/nw, (w+1)*n/nw
		blas.Axpy(ws.alpha, ws.va[lo:hi], ws.vb[lo:hi])
	case opAxpy2:
		lo, hi := w*n/nw, (w+1)*n/nw
		blas.Axpy2(ws.alpha, ws.va[lo:hi], ws.beta, ws.vb[lo:hi], ws.vw[lo:hi])
	case opWaxpby:
		lo, hi := w*n/nw, (w+1)*n/nw
		blas.Waxpby(ws.vw[lo:hi], ws.alpha, ws.va[lo:hi], ws.beta, ws.vb[lo:hi])
	}
}

// ensureWS (re)builds the workspace if the operator shape, method,
// restart length or pool changed since the last Solve. A pure shape
// change (same method and restart, e.g. after a remesh rebound the
// operator) resizes the existing workspace in place, preserving its
// backing arrays.
func (k *KSP) ensureWS() {
	full, n := k.Op.FullLen(), k.Op.Rows()
	if k.ws.matches(k.Pool, full, n, k.Type, k.Restart) {
		return
	}
	methodOK := k.ws != nil && normalizeMethod(k.ws.method) == normalizeMethod(k.Type) &&
		(k.ws.method != GMRES || k.ws.restart == k.Restart)
	if methodOK {
		k.ws.resize(k.Pool, full, n)
		k.ws.method, k.ws.restart = k.Type, k.Restart
		return
	}
	k.ws = newKspWS(k.Pool, full, n, k.Type, k.Restart)
}

// normalizeMethod folds the method aliases that share a workspace layout
// ("" solves as IBiCGS; BiCGS and IBiCGS use identical vectors).
func normalizeMethod(m Method) Method {
	switch m {
	case BiCGS, IBiCGS, "":
		return BiCGS
	default:
		return m
	}
}

// dot returns the global inner product of a·b over the owned segment.
// The local sum is chunk-canonical and the rank reduction deterministic,
// so results are bit-reproducible across runs and worker counts.
func (k *KSP) dot(a, b []float64, n int) float64 {
	ws := k.ws
	ws.op, ws.va, ws.vb = opDot, a, b
	ws.dispatch(n)
	ws.red[0] = blas.SumOrdered(ws.chA[:blas.NumChunks(n)])
	k.Red.GlobalSumInto(ws.red[:1])
	return ws.red[0]
}

// dot2 batches two inner products into one pass and one reduction (the
// communication-avoiding fusion behind IBCGS).
func (k *KSP) dot2(a, b, c, d []float64, n int) (float64, float64) {
	ws := k.ws
	ws.op, ws.va, ws.vb, ws.vc, ws.vd = opDot2, a, b, c, d
	ws.dispatch(n)
	nc := blas.NumChunks(n)
	ws.red[0] = blas.SumOrdered(ws.chA[:nc])
	ws.red[1] = blas.SumOrdered(ws.chB[:nc])
	k.Red.GlobalSumInto(ws.red[:2])
	return ws.red[0], ws.red[1]
}

func (k *KSP) norm(a []float64, n int) float64 {
	return math.Sqrt(k.dot(a, a, n))
}

// axpy computes y += alpha*x over the owned segment.
func (k *KSP) axpy(alpha float64, x, y []float64, n int) {
	ws := k.ws
	ws.op, ws.alpha, ws.va, ws.vb = opAxpy, alpha, x, y
	ws.dispatch(n)
}

// axpy2 computes dst += a*x + b*y over the owned segment.
func (k *KSP) axpy2(a float64, x []float64, b float64, y, dst []float64, n int) {
	ws := k.ws
	ws.op, ws.alpha, ws.beta, ws.va, ws.vb, ws.vw = opAxpy2, a, b, x, y, dst
	ws.dispatch(n)
}

// waxpby computes dst = a*x + b*y over the owned segment; dst may alias
// x or y.
func (k *KSP) waxpby(dst []float64, a float64, x []float64, b float64, y []float64, n int) {
	ws := k.ws
	ws.op, ws.alpha, ws.beta, ws.va, ws.vb, ws.vw = opWaxpby, a, b, x, y, dst
	ws.dispatch(n)
}
