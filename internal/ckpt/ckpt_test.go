package ckpt

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"proteus/internal/fault"
	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// synthLocal fabricates one rank's snapshot share: two level-1 quadrants
// per rank (globally SFC-ordered when ranks are taken in order) with
// rank-tagged field values.
func synthLocal(rank, dim int) *Local {
	root := sfc.Root(dim)
	loc := &Local{}
	for c := 0; c < 2; c++ {
		loc.Elems = append(loc.Elems, root.Child(2*rank+c))
		loc.ElemCn = append(loc.ElemCn, float64(100*rank+c))
	}
	for i := 0; i < 3; i++ {
		loc.Keys = append(loc.Keys, mesh.NodeKey{X: uint32(rank*10 + i), Y: uint32(i), Z: 0})
		loc.PhiMu = append(loc.PhiMu, float64(rank)+0.1, float64(i)+0.2)
		loc.Vel = append(loc.Vel, float64(rank*i), -float64(i))
		loc.P = append(loc.P, float64(rank)*1e-3+float64(i))
	}
	return loc
}

func sameLocal(a, b *Local) error {
	if len(a.Elems) != len(b.Elems) || len(a.Keys) != len(b.Keys) {
		return fmt.Errorf("size mismatch: %d/%d elems, %d/%d keys",
			len(a.Elems), len(b.Elems), len(a.Keys), len(b.Keys))
	}
	for i := range a.Elems {
		if !a.Elems[i].EqualKey(b.Elems[i]) || a.ElemCn[i] != b.ElemCn[i] {
			return fmt.Errorf("elem %d differs", i)
		}
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.P[i] != b.P[i] {
			return fmt.Errorf("node %d differs", i)
		}
	}
	for i := range a.PhiMu {
		if a.PhiMu[i] != b.PhiMu[i] {
			return fmt.Errorf("phimu %d differs", i)
		}
	}
	for i := range a.Vel {
		if a.Vel[i] != b.Vel[i] {
			return fmt.Errorf("vel %d differs", i)
		}
	}
	return nil
}

// concatLocals gathers every rank's share to rank 0 in rank order.
func concatLocals(c *par.Comm, loc *Local) *Local {
	type share struct{ L Local }
	all := par.Gatherv(c, 0, []share{{*loc}})
	if c.Rank() != 0 {
		return nil
	}
	out := &Local{}
	for _, batch := range all {
		for _, s := range batch {
			out.Elems = append(out.Elems, s.L.Elems...)
			out.ElemCn = append(out.ElemCn, s.L.ElemCn...)
			out.Keys = append(out.Keys, s.L.Keys...)
			out.PhiMu = append(out.PhiMu, s.L.PhiMu...)
			out.Vel = append(out.Vel, s.L.Vel...)
			out.P = append(out.P, s.L.P...)
		}
	}
	return out
}

// TestRoundTripAcrossRankCounts writes a snapshot at 2 ranks and reads
// it back at 1, 2 and 4 ranks: the global concatenation (rank order)
// must reproduce the written records bitwise, and the meta must survive
// the JSON round trip.
func TestRoundTripAcrossRankCounts(t *testing.T) {
	base := t.TempDir() + "/snap"
	meta := Meta{
		Scenario: "bubble", Preset: "smoke", Dim: 2,
		Step: 7, Time: 0.007, RemeshCount: 3,
		GlobalElems: 4, GlobalDofs: 6,
	}
	meta.Timers.CH.Total = 123 * time.Millisecond
	meta.Timers.CH.Iterations = 42
	meta.Timers.RemeshStages.Rounds = 5

	var want *Local
	par.Run(2, func(c *par.Comm) {
		loc := synthLocal(c.Rank(), 2)
		if w := concatLocals(c, loc); w != nil {
			want = w
		}
		if err := Write(c, base, meta, loc); err != nil {
			panic(err)
		}
	})

	got, err := ReadMeta(base)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}
	if got.Version != Version || got.Scenario != "bubble" || got.Preset != "smoke" ||
		got.Ranks != 2 || got.Step != 7 || got.Time != 0.007 || got.RemeshCount != 3 {
		t.Fatalf("meta did not round-trip: %+v", got)
	}
	if got.Timers.CH.Total != 123*time.Millisecond || got.Timers.CH.Iterations != 42 ||
		got.Timers.RemeshStages.Rounds != 5 {
		t.Fatalf("timers did not round-trip: %+v", got.Timers)
	}

	for _, p := range []int{1, 2, 4} {
		var back *Local
		par.Run(p, func(c *par.Comm) {
			loc, err := Read(c, base, got)
			if err != nil {
				panic(err)
			}
			if b := concatLocals(c, loc); b != nil {
				back = b
			}
		})
		if err := sameLocal(want, back); err != nil {
			t.Fatalf("read at %d ranks: %v", p, err)
		}
	}
}

// TestVersionAndCorruptionRejected checks that a future-format meta and
// a corrupted rank file both fail loudly.
func TestVersionAndCorruptionRejected(t *testing.T) {
	base := t.TempDir() + "/snap"
	meta := Meta{Dim: 2, Step: 1}
	par.Run(1, func(c *par.Comm) {
		if err := Write(c, base, meta, synthLocal(0, 2)); err != nil {
			panic(err)
		}
	})
	good, err := ReadMeta(base)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}

	mb, _ := os.ReadFile(metaPath(base))
	bad := strings.Replace(string(mb), fmt.Sprintf("\"version\": %d", Version), "\"version\": 99", 1)
	if err := os.WriteFile(metaPath(base), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(base); err == nil {
		t.Fatal("future-version meta accepted")
	}
	os.WriteFile(metaPath(base), mb, 0o644)

	rb, _ := os.ReadFile(rankPath(base, 0))
	rb[0] ^= 0xff // break the magic
	os.WriteFile(rankPath(base, 0), rb, 0o644)
	par.Run(1, func(c *par.Comm) {
		if _, err := Read(c, base, good); err == nil {
			panic("corrupted rank file accepted")
		}
	})
}

// writeGen writes one synthetic snapshot generation at the given step
// and rank count (up to 4 ranks in 2D: two level-2 quadrants per rank,
// SFC-ordered across ranks taken in order).
func writeGen(t *testing.T, base string, step, ranks int) {
	t.Helper()
	par.Run(ranks, func(c *par.Comm) {
		root := sfc.Root(2)
		loc := &Local{}
		for ch := 0; ch < 2; ch++ {
			loc.Elems = append(loc.Elems, root.Child(c.Rank()).Child(ch))
			loc.ElemCn = append(loc.ElemCn, float64(100*c.Rank()+ch))
		}
		for i := 0; i < 3; i++ {
			loc.Keys = append(loc.Keys, mesh.NodeKey{X: uint32(c.Rank()*10 + i), Y: uint32(i)})
			loc.PhiMu = append(loc.PhiMu, float64(c.Rank())+0.1, float64(i)+0.2)
			loc.Vel = append(loc.Vel, float64(c.Rank()*i), -float64(i))
			loc.P = append(loc.P, float64(c.Rank())*1e-3+float64(i))
		}
		meta := Meta{Dim: 2, Step: step, Time: float64(step) * 1e-3}
		if err := Write(c, GenBase(base, step), meta, loc); err != nil {
			panic(err)
		}
	})
}

// TestGenerationsAndRotate checks the generation listing order and that
// Rotate prunes oldest-first, meta and rank files both.
func TestGenerationsAndRotate(t *testing.T) {
	base := t.TempDir() + "/ck"
	for _, step := range []int{2, 4, 6, 8, 10} {
		writeGen(t, base, step, 2)
	}
	gens := Generations(base)
	if len(gens) != 5 {
		t.Fatalf("listed %d generations, want 5", len(gens))
	}
	for i, step := range []int{2, 4, 6, 8, 10} {
		if gens[i] != GenBase(base, step) {
			t.Fatalf("generation %d is %s, want %s (oldest first)", i, gens[i], GenBase(base, step))
		}
	}
	if err := Rotate(base, 2); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	gens = Generations(base)
	if len(gens) != 2 || gens[0] != GenBase(base, 8) || gens[1] != GenBase(base, 10) {
		t.Fatalf("after Rotate(2): %v", gens)
	}
	// The pruned generations' rank files are gone too, not just the metas.
	for _, step := range []int{2, 4, 6} {
		for r := 0; r < 2; r++ {
			if _, err := os.Stat(rankPath(GenBase(base, step), r)); err == nil {
				t.Errorf("rotated generation g%d left rank file %d behind", step, r)
			}
		}
	}
	if err := Rotate(base, 0); err != nil || len(Generations(base)) != 2 {
		t.Fatalf("Rotate(0) must keep everything: %v %v", err, Generations(base))
	}
}

// TestReadLatestGoodFallsBack corrupts the newest generation in the ways
// a real crash or disk fault would — truncation mid-payload, a flipped
// payload byte, a deleted meta — and checks that ReadLatestGood lands on
// the previous intact generation and that the resolved snapshot reads
// back cleanly at 1, 2 and 4 ranks.
func TestReadLatestGoodFallsBack(t *testing.T) {
	corruptions := []struct {
		name string
		do   func(t *testing.T, gen string)
	}{
		{"truncate-mid-payload", func(t *testing.T, gen string) {
			p := rankPath(gen, 0)
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(p, st.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"flip-payload-byte", func(t *testing.T, gen string) {
			p := rankPath(gen, 0)
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete-meta", func(t *testing.T, gen string) {
			if err := os.Remove(metaPath(gen)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, writerRanks := range []int{1, 2, 4} {
		for _, cr := range corruptions {
			t.Run(fmt.Sprintf("%dranks/%s", writerRanks, cr.name), func(t *testing.T) {
				base := t.TempDir() + "/ck"
				writeGen(t, base, 3, writerRanks)
				writeGen(t, base, 6, writerRanks)
				cr.do(t, GenBase(base, 6))
				meta, rb, err := ReadLatestGood(base)
				if err != nil {
					t.Fatalf("ReadLatestGood: %v", err)
				}
				if meta.Step != 3 || rb != GenBase(base, 3) {
					t.Fatalf("resolved to %s (step %d), want the intact step-3 generation", rb, meta.Step)
				}
				par.Run(writerRanks, func(c *par.Comm) {
					if _, err := Read(c, rb, meta); err != nil {
						panic(err)
					}
				})
			})
		}
	}
}

// TestReadLatestGoodAllCorrupt checks the terminal error when every
// generation is broken.
func TestReadLatestGoodAllCorrupt(t *testing.T) {
	base := t.TempDir() + "/ck"
	if _, _, err := ReadLatestGood(base); err == nil {
		t.Fatal("empty base resolved")
	}
	writeGen(t, base, 2, 1)
	if err := os.Truncate(rankPath(GenBase(base, 2), 0), 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLatestGood(base); err == nil {
		t.Fatal("all-corrupt base resolved")
	}
}

// TestMetaCRCCatchesSwappedRankFile builds two internally consistent
// snapshots with identical headers but different payloads, then swaps a
// rank file between them: the file's own CRC trailer still matches its
// contents, so only the meta's CRC list can catch the mix-up.
func TestMetaCRCCatchesSwappedRankFile(t *testing.T) {
	dir := t.TempDir()
	a, b := dir+"/a", dir+"/b"
	par.Run(1, func(c *par.Comm) {
		la, lb := synthLocal(0, 2), synthLocal(0, 2)
		lb.P[0] += 0.5 // same shape, different payload
		if err := Write(c, a, Meta{Dim: 2, Step: 4}, la); err != nil {
			panic(err)
		}
		if err := Write(c, b, Meta{Dim: 2, Step: 4}, lb); err != nil {
			panic(err)
		}
	})
	rb, err := os.ReadFile(rankPath(b, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rankPath(a, 0), rb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(a); err == nil {
		t.Fatal("swapped-in rank file with a self-consistent CRC accepted")
	}
}

// TestInjectedTruncationIsTornWrite drives the CkptTruncate fault point
// through Write and checks the result is exactly a torn write: the
// generation publishes, but Verify rejects it and ReadLatestGood walks
// back to the previous one.
func TestInjectedTruncationIsTornWrite(t *testing.T) {
	base := t.TempDir() + "/ck"
	writeGen(t, base, 2, 2)
	par.Run(2, func(c *par.Comm) {
		inj := fault.New(1, c.Rank(), fault.Fault{Point: fault.CkptTruncate, Step: 1, Rank: 1})
		meta := Meta{Dim: 2, Step: 4}
		if err := Write(c, GenBase(base, 4), meta, synthLocal(c.Rank(), 2), inj); err != nil {
			panic(err)
		}
	})
	if len(Generations(base)) != 2 {
		t.Fatalf("truncated write did not publish a generation: %v", Generations(base))
	}
	if err := Verify(GenBase(base, 4)); err == nil {
		t.Fatal("truncated generation passed Verify")
	}
	meta, rb, err := ReadLatestGood(base)
	if err != nil || meta.Step != 2 || rb != GenBase(base, 2) {
		t.Fatalf("fallback resolved %s (step %d, err %v), want the step-2 generation", rb, meta.Step, err)
	}
}
