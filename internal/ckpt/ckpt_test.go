package ckpt

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// synthLocal fabricates one rank's snapshot share: two level-1 quadrants
// per rank (globally SFC-ordered when ranks are taken in order) with
// rank-tagged field values.
func synthLocal(rank, dim int) *Local {
	root := sfc.Root(dim)
	loc := &Local{}
	for c := 0; c < 2; c++ {
		loc.Elems = append(loc.Elems, root.Child(2*rank+c))
		loc.ElemCn = append(loc.ElemCn, float64(100*rank+c))
	}
	for i := 0; i < 3; i++ {
		loc.Keys = append(loc.Keys, mesh.NodeKey{X: uint32(rank*10 + i), Y: uint32(i), Z: 0})
		loc.PhiMu = append(loc.PhiMu, float64(rank)+0.1, float64(i)+0.2)
		loc.Vel = append(loc.Vel, float64(rank*i), -float64(i))
		loc.P = append(loc.P, float64(rank)*1e-3+float64(i))
	}
	return loc
}

func sameLocal(a, b *Local) error {
	if len(a.Elems) != len(b.Elems) || len(a.Keys) != len(b.Keys) {
		return fmt.Errorf("size mismatch: %d/%d elems, %d/%d keys",
			len(a.Elems), len(b.Elems), len(a.Keys), len(b.Keys))
	}
	for i := range a.Elems {
		if !a.Elems[i].EqualKey(b.Elems[i]) || a.ElemCn[i] != b.ElemCn[i] {
			return fmt.Errorf("elem %d differs", i)
		}
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.P[i] != b.P[i] {
			return fmt.Errorf("node %d differs", i)
		}
	}
	for i := range a.PhiMu {
		if a.PhiMu[i] != b.PhiMu[i] {
			return fmt.Errorf("phimu %d differs", i)
		}
	}
	for i := range a.Vel {
		if a.Vel[i] != b.Vel[i] {
			return fmt.Errorf("vel %d differs", i)
		}
	}
	return nil
}

// concatLocals gathers every rank's share to rank 0 in rank order.
func concatLocals(c *par.Comm, loc *Local) *Local {
	type share struct{ L Local }
	all := par.Gatherv(c, 0, []share{{*loc}})
	if c.Rank() != 0 {
		return nil
	}
	out := &Local{}
	for _, batch := range all {
		for _, s := range batch {
			out.Elems = append(out.Elems, s.L.Elems...)
			out.ElemCn = append(out.ElemCn, s.L.ElemCn...)
			out.Keys = append(out.Keys, s.L.Keys...)
			out.PhiMu = append(out.PhiMu, s.L.PhiMu...)
			out.Vel = append(out.Vel, s.L.Vel...)
			out.P = append(out.P, s.L.P...)
		}
	}
	return out
}

// TestRoundTripAcrossRankCounts writes a snapshot at 2 ranks and reads
// it back at 1, 2 and 4 ranks: the global concatenation (rank order)
// must reproduce the written records bitwise, and the meta must survive
// the JSON round trip.
func TestRoundTripAcrossRankCounts(t *testing.T) {
	base := t.TempDir() + "/snap"
	meta := Meta{
		Scenario: "bubble", Preset: "smoke", Dim: 2,
		Step: 7, Time: 0.007, RemeshCount: 3,
		GlobalElems: 4, GlobalDofs: 6,
	}
	meta.Timers.CH.Total = 123 * time.Millisecond
	meta.Timers.CH.Iterations = 42
	meta.Timers.RemeshStages.Rounds = 5

	var want *Local
	par.Run(2, func(c *par.Comm) {
		loc := synthLocal(c.Rank(), 2)
		if w := concatLocals(c, loc); w != nil {
			want = w
		}
		if err := Write(c, base, meta, loc); err != nil {
			panic(err)
		}
	})

	got, err := ReadMeta(base)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}
	if got.Version != Version || got.Scenario != "bubble" || got.Preset != "smoke" ||
		got.Ranks != 2 || got.Step != 7 || got.Time != 0.007 || got.RemeshCount != 3 {
		t.Fatalf("meta did not round-trip: %+v", got)
	}
	if got.Timers.CH.Total != 123*time.Millisecond || got.Timers.CH.Iterations != 42 ||
		got.Timers.RemeshStages.Rounds != 5 {
		t.Fatalf("timers did not round-trip: %+v", got.Timers)
	}

	for _, p := range []int{1, 2, 4} {
		var back *Local
		par.Run(p, func(c *par.Comm) {
			loc, err := Read(c, base, got)
			if err != nil {
				panic(err)
			}
			if b := concatLocals(c, loc); b != nil {
				back = b
			}
		})
		if err := sameLocal(want, back); err != nil {
			t.Fatalf("read at %d ranks: %v", p, err)
		}
	}
}

// TestVersionAndCorruptionRejected checks that a future-format meta and
// a corrupted rank file both fail loudly.
func TestVersionAndCorruptionRejected(t *testing.T) {
	base := t.TempDir() + "/snap"
	meta := Meta{Dim: 2, Step: 1}
	par.Run(1, func(c *par.Comm) {
		if err := Write(c, base, meta, synthLocal(0, 2)); err != nil {
			panic(err)
		}
	})
	good, err := ReadMeta(base)
	if err != nil {
		t.Fatalf("ReadMeta: %v", err)
	}

	mb, _ := os.ReadFile(metaPath(base))
	bad := strings.Replace(string(mb), fmt.Sprintf("\"version\": %d", Version), "\"version\": 99", 1)
	if err := os.WriteFile(metaPath(base), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(base); err == nil {
		t.Fatal("future-version meta accepted")
	}
	os.WriteFile(metaPath(base), mb, 0o644)

	rb, _ := os.ReadFile(rankPath(base, 0))
	rb[0] ^= 0xff // break the magic
	os.WriteFile(rankPath(base, 0), rb, 0o644)
	par.Run(1, func(c *par.Comm) {
		if _, err := Read(c, base, good); err == nil {
			panic("corrupted rank file accepted")
		}
	})
}
