// Package ckpt implements parallel checkpoint/restart for long adaptive
// runs: a versioned binary snapshot of the distributed forest (octant
// keys per rank), every solver field (φ/μ, velocity, pressure, elemental
// Cahn number), the step index, physical time and accumulated timers.
// Snapshots are written one binary file per rank plus a JSON meta file,
// and can be read back at a *different* rank count: each restoring rank
// reads a contiguous block of the per-rank files, so the concatenation
// across ranks reproduces the global SFC order and the records can be
// replayed through the key-addressed bitwise migration path
// (transfer.MigrateKeyedNodal / transfer.MigrateElem) onto the restart
// partition. Field values survive the round trip bitwise.
//
// Integrity: every rank file ends in a CRC32 (IEEE) trailer over its
// full contents, the meta records each rank file's CRC, and all files
// are fsynced before the rename that publishes them — so torn, truncated
// or bit-flipped snapshots are detected on read instead of silently
// restoring garbage. Long runs keep a bounded history of snapshot
// generations (GenBase/Rotate) and recover through ReadLatestGood, which
// walks the generations newest-to-oldest past any corrupt one.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"proteus/internal/chns"
	"proteus/internal/fault"
	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Version is the snapshot format version stamped into every rank file and
// the meta file. Readers reject other versions. Version 2 added the
// per-rank CRC32 trailer and the meta CRC list.
const Version = 2

// magic identifies a proteus checkpoint rank file.
var magic = [4]byte{'P', 'C', 'K', 'P'}

// Meta is the global, rank-count-independent description of a snapshot,
// written as JSON next to the rank files. Scenario and Preset let a
// driver rebuild the (non-serializable) Config through the scenario
// registry before restoring.
type Meta struct {
	Version  int     `json:"version"`
	Scenario string  `json:"scenario,omitempty"`
	Preset   string  `json:"preset,omitempty"`
	Ranks    int     `json:"ranks"`
	Dim      int     `json:"dim"`
	Step     int     `json:"step"`
	Time     float64 `json:"time"`
	// LocalCahn records the *effective* detection setting of the writing
	// run (the scenario default possibly overridden by -localcahn), so a
	// restart reproduces the physics rather than the registry default.
	LocalCahn   bool  `json:"local_cahn"`
	RemeshCount int   `json:"remesh_count"`
	GlobalElems int64 `json:"global_elems"`
	GlobalDofs  int64 `json:"global_dofs"`
	// RankCRCs are the CRC32 (IEEE) trailers of the rank files indexed by
	// writer rank. A reader cross-checks them against each file's own
	// trailer, so a rank file swapped in from another generation fails
	// loudly even though it is internally consistent.
	RankCRCs []uint32 `json:"rank_crcs,omitempty"`
	// Timers are the accumulated stage timers at checkpoint time, restored
	// so a resumed run keeps meaningful cumulative Fig. 7 accounting.
	Timers chns.Timers `json:"timers"`
}

// Local is one rank's slice of a snapshot: its contiguous SFC range of
// leaves with the elemental Cahn numbers, and its owned nodes (keys plus
// the per-node field values, owned segment only — ghosts are re-derived
// on restore).
type Local struct {
	Elems  []sfc.Octant
	ElemCn []float64
	Keys   []mesh.NodeKey
	PhiMu  []float64 // 2 per key
	Vel    []float64 // dim per key
	P      []float64 // 1 per key
}

func metaPath(base string) string { return base + ".meta.json" }

func rankPath(base string, r int) string {
	return fmt.Sprintf("%s_r%04d.ck", base, r)
}

// GenBase returns the per-generation base path of a snapshot at the given
// absolute step: base-g000000042. The zero-padded decimal step makes the
// lexicographic order of generation paths the chronological order.
func GenBase(base string, step int) string {
	return fmt.Sprintf("%s-g%09d", base, step)
}

// Generations lists the generation base paths recorded under base,
// oldest first. Only generations with a published meta file count — a
// crash mid-write leaves rank .tmp files but never a meta, so unpublished
// partial writes are invisible here.
func Generations(base string) []string {
	ms, _ := filepath.Glob(base + "-g*.meta.json")
	sort.Strings(ms)
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, strings.TrimSuffix(m, ".meta.json"))
	}
	return out
}

// Rotate deletes the oldest generations under base until at most retain
// remain (retain <= 0 keeps everything). The meta file goes first, so an
// interrupted rotation can only leave unpublished rank files behind,
// never a published meta naming missing ones. Call from one rank.
func Rotate(base string, retain int) error {
	if retain <= 0 {
		return nil
	}
	gens := Generations(base)
	var firstErr error
	for len(gens) > retain {
		g := gens[0]
		gens = gens[1:]
		meta, metaErr := ReadMeta(g)
		if err := os.Remove(metaPath(g)); err != nil && firstErr == nil {
			firstErr = err
		}
		if metaErr == nil {
			for r := 0; r < meta.Ranks; r++ {
				if err := os.Remove(rankPath(g, r)); err != nil && !os.IsNotExist(err) && firstErr == nil {
					firstErr = err
				}
			}
		} else {
			// Unreadable meta (e.g. an injected corruption): sweep whatever
			// rank files match the generation's pattern instead.
			rfs, _ := filepath.Glob(g + "_r*.ck")
			for _, rf := range rfs {
				if err := os.Remove(rf); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// Verify checks a snapshot's integrity without building a mesh: the meta
// parses, and every rank file it names passes the magic/header/step/CRC
// checks. Call from one rank.
func Verify(base string) error {
	meta, err := ReadMeta(base)
	if err != nil {
		return err
	}
	for r := 0; r < meta.Ranks; r++ {
		if _, err := readRank(rankPath(base, r), meta, r); err != nil {
			return err
		}
	}
	return nil
}

// ReadLatestGood resolves base to the newest intact snapshot and returns
// its meta together with the resolved base path to pass to Read. The
// literal base is preferred when it has a meta file (the pre-generation
// single-snapshot layout); otherwise the generations under base are
// tried newest-to-oldest, skipping any that fail Verify — the recovery
// path past a corrupt or truncated latest checkpoint. Call from one rank
// and broadcast the result.
func ReadLatestGood(base string) (Meta, string, error) {
	if _, err := os.Stat(metaPath(base)); err == nil {
		meta, err := ReadMeta(base)
		if err == nil {
			if err := Verify(base); err == nil {
				return meta, base, nil
			}
		}
	}
	gens := Generations(base)
	var lastErr error
	for i := len(gens) - 1; i >= 0; i-- {
		if err := Verify(gens[i]); err != nil {
			lastErr = err
			continue
		}
		meta, err := ReadMeta(gens[i])
		if err != nil {
			lastErr = err
			continue
		}
		return meta, gens[i], nil
	}
	if lastErr != nil {
		return Meta{}, "", fmt.Errorf("ckpt: no intact snapshot under %s (last error: %w)", base, lastErr)
	}
	return Meta{}, "", fmt.Errorf("ckpt: no snapshot found under %s", base)
}

// Write dumps the snapshot under path base: one binary file per rank and
// the meta JSON from rank 0. Every file is written to a temporary path,
// fsynced, and renamed into place only after all ranks report success
// (meta last), so a crash or error mid-write leaves any previous
// snapshot at base intact and restartable. The error result is
// collective-consistent (all ranks agree on success or failure). The
// optional injector drives the CkptTruncate fault point: a firing
// truncates this rank's synced temporary file before the rename, so the
// published snapshot is corrupt in exactly the way a torn write would
// be. Collective.
func Write(c *par.Comm, base string, meta Meta, loc *Local, inj ...*fault.Injector) error {
	meta.Version = Version
	meta.Ranks = c.Size()
	rp, mp := rankPath(base, c.Rank()), metaPath(base)
	var err error
	if dir := filepath.Dir(base); dir != "." && dir != "" {
		err = os.MkdirAll(dir, 0o755)
	}
	var crc uint32
	if err == nil {
		crc, err = writeRank(rp+".tmp", meta, c.Rank(), loc)
	}
	// The CRC list is global meta state: gather every rank's trailer to
	// the meta writer. The gather doubles as the pre-publish barrier.
	crcs := par.Gather(c, 0, crc)
	if err == nil && c.Rank() == 0 {
		meta.RankCRCs = crcs
		err = writeMeta(mp+".tmp", meta)
	}
	fail := func(err error) error {
		if rerr := os.Remove(rp + ".tmp"); rerr != nil && !os.IsNotExist(rerr) {
			err = fmt.Errorf("%w (and removing %s.tmp failed: %v)", err, rp, rerr)
		}
		if c.Rank() == 0 {
			if rerr := os.Remove(mp + ".tmp"); rerr != nil && !os.IsNotExist(rerr) {
				err = fmt.Errorf("%w (and removing %s.tmp failed: %v)", err, mp, rerr)
			}
		}
		return fmt.Errorf("ckpt: write %s: %w", base, err)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("write failed on a peer rank")
		}
		return fail(err)
	}
	// Fault point: corrupt the fully written, synced temporary file so
	// the rename publishes a truncated rank file whose CRC cannot match.
	for _, in := range inj {
		if in.Fire(fault.CkptTruncate, "") {
			if st, serr := os.Stat(rp + ".tmp"); serr == nil {
				os.Truncate(rp+".tmp", st.Size()/2)
			}
		}
	}
	err = os.Rename(rp+".tmp", rp)
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("rename failed on a peer rank")
		}
		return fail(err)
	}
	// All rank files are in place; committing the meta publishes the
	// snapshot (a reader pairs meta with exactly the rank files it names).
	if c.Rank() == 0 {
		err = os.Rename(mp+".tmp", mp)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("meta rename failed on rank 0")
		}
		return fail(err)
	}
	if c.Rank() == 0 {
		syncDir(filepath.Dir(base))
	}
	return nil
}

// syncDir fsyncs a directory so the renames within it are durable;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if dir == "" {
		dir = "."
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func writeMeta(path string, meta Meta) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadMeta loads the snapshot description. Callable before any par.Run —
// drivers use it to pick the scenario and rank count for the restart.
func ReadMeta(base string) (Meta, error) {
	var m Meta
	b, err := os.ReadFile(metaPath(base))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("ckpt: meta %s: %w", metaPath(base), err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("ckpt: %s is format version %d, want %d", base, m.Version, Version)
	}
	return m, nil
}

// writeRank serializes one rank's snapshot slice and returns the CRC32
// trailer it stamped. The file is fsynced before returning, so a
// successful return means the bytes are durable at path.
func writeRank(path string, meta Meta, rank int, loc *Local) (uint32, error) {
	dim := meta.Dim
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc)
	le := binary.LittleEndian
	if _, err := w.Write(magic[:]); err != nil {
		return 0, err
	}
	hdr := []uint32{Version, uint32(dim), uint32(rank), uint32(meta.Ranks), uint32(meta.Step)}
	if err := binary.Write(w, le, hdr); err != nil {
		return 0, err
	}
	ne, nn := len(loc.Elems), len(loc.Keys)
	if len(loc.ElemCn) != ne || len(loc.PhiMu) != 2*nn || len(loc.Vel) != dim*nn || len(loc.P) != nn {
		return 0, fmt.Errorf("ckpt: local snapshot slice lengths inconsistent (ne=%d nn=%d)", ne, nn)
	}
	if err := binary.Write(w, le, []uint64{uint64(ne), uint64(nn)}); err != nil {
		return 0, err
	}
	ex := make([]uint32, 3*ne)
	lv := make([]uint8, ne)
	for i, o := range loc.Elems {
		ex[3*i], ex[3*i+1], ex[3*i+2] = o.X, o.Y, o.Z
		lv[i] = o.Level
	}
	kx := make([]uint32, 3*nn)
	for i, k := range loc.Keys {
		kx[3*i], kx[3*i+1], kx[3*i+2] = k.X, k.Y, k.Z
	}
	for _, part := range []any{ex, lv, loc.ElemCn, kx, loc.PhiMu, loc.Vel, loc.P} {
		if err := binary.Write(w, le, part); err != nil {
			return 0, err
		}
	}
	// The trailer is the CRC of everything before it (written to the file
	// only, not folded into itself).
	sum := crc.Sum32()
	if err := binary.Write(bw, le, sum); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return sum, nil
}

// readRank parses and integrity-checks one rank file: magic, version,
// dim/ranks/step stamps, size-bounded counts, and the CRC32 trailer —
// also cross-checked against meta.RankCRCs when the meta carries one for
// this writer rank, which catches an internally consistent file swapped
// in from another generation.
func readRank(path string, meta Meta, writerRank int) (*Local, error) {
	dim := meta.Dim
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 4+5*4+2*8+4 {
		return nil, fmt.Errorf("ckpt: %s truncated: %d bytes is smaller than the header", path, st.Size())
	}
	// Everything before the 4-byte trailer feeds the CRC via the tee; the
	// parse below reads through r, and the drain after it covers payload
	// bytes the parse did not consume.
	crc := crc32.NewIEEE()
	body := io.LimitReader(f, st.Size()-4)
	r := bufio.NewReader(io.TeeReader(body, crc))
	le := binary.LittleEndian
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if mg != magic {
		return nil, fmt.Errorf("ckpt: %s: bad magic %q", path, mg[:])
	}
	hdr := make([]uint32, 5)
	if err := binary.Read(r, le, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("ckpt: %s is format version %d, want %d", path, hdr[0], Version)
	}
	if int(hdr[1]) != dim || int(hdr[3]) != meta.Ranks {
		return nil, fmt.Errorf("ckpt: %s header (dim=%d ranks=%d) disagrees with meta (dim=%d ranks=%d)",
			path, hdr[1], hdr[3], dim, meta.Ranks)
	}
	// The step stamp catches a torn snapshot: a crash between the
	// per-rank renames can leave rank files from different checkpoints
	// next to one meta, which must fail loudly instead of restoring a
	// physically inconsistent mixed-step state.
	if int(hdr[4]) != meta.Step {
		return nil, fmt.Errorf("ckpt: %s holds step %d but the meta names step %d — torn snapshot",
			path, hdr[4], meta.Step)
	}
	sz := make([]uint64, 2)
	if err := binary.Read(r, le, sz); err != nil {
		return nil, err
	}
	// Bound the counts by the file size before allocating: every element
	// record is >= 21 bytes and every node record >= 36, so corrupted
	// counts in an otherwise well-formed header fail loudly here instead
	// of triggering an allocation larger than the file itself.
	if sz[0] > uint64(st.Size())/21 || sz[1] > uint64(st.Size())/36 {
		return nil, fmt.Errorf("ckpt: %s: corrupt record counts (%d elems, %d nodes in a %d-byte file)",
			path, sz[0], sz[1], st.Size())
	}
	ne, nn := int(sz[0]), int(sz[1])
	ex := make([]uint32, 3*ne)
	lv := make([]uint8, ne)
	kx := make([]uint32, 3*nn)
	loc := &Local{
		ElemCn: make([]float64, ne),
		PhiMu:  make([]float64, 2*nn),
		Vel:    make([]float64, dim*nn),
		P:      make([]float64, nn),
	}
	for _, part := range []any{ex, lv, loc.ElemCn, kx, loc.PhiMu, loc.Vel, loc.P} {
		if err := binary.Read(r, le, part); err != nil {
			return nil, fmt.Errorf("ckpt: %s truncated: %w", path, err)
		}
	}
	// Finish the CRC over any remaining pre-trailer bytes, then check the
	// trailer. A truncated or bit-flipped payload lands here.
	if _, err := io.Copy(io.Discard, r); err != nil {
		return nil, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return nil, fmt.Errorf("ckpt: %s: missing CRC trailer: %w", path, err)
	}
	stored := le.Uint32(trailer[:])
	if sum := crc.Sum32(); stored != sum {
		return nil, fmt.Errorf("ckpt: %s: CRC mismatch (stored %08x, computed %08x) — corrupt snapshot", path, stored, sum)
	}
	if len(meta.RankCRCs) > writerRank && meta.RankCRCs[writerRank] != stored {
		return nil, fmt.Errorf("ckpt: %s: CRC %08x does not match the meta's %08x — rank file from another generation",
			path, stored, meta.RankCRCs[writerRank])
	}
	loc.Elems = make([]sfc.Octant, ne)
	for i := range loc.Elems {
		loc.Elems[i] = sfc.Octant{X: ex[3*i], Y: ex[3*i+1], Z: ex[3*i+2], Level: lv[i], Dim: uint8(dim)}
	}
	loc.Keys = make([]mesh.NodeKey, nn)
	for i := range loc.Keys {
		loc.Keys[i] = mesh.NodeKey{X: kx[3*i], Y: kx[3*i+1], Z: kx[3*i+2]}
	}
	return loc, nil
}

// Read loads this rank's share of a snapshot written at meta.Ranks ranks
// onto the current communicator of any size: rank r reads writer files
// [r·R/R', (r+1)·R/R') — a contiguous, order-preserving assignment, so
// each rank's concatenated leaves form a contiguous SFC range and the
// ranges across ranks are in global order (some may be empty when the
// restart uses more ranks than the writer). The error result is
// collective-consistent. Collective.
func Read(c *par.Comm, base string, meta Meta) (*Local, error) {
	rp, r := c.Size(), c.Rank()
	lo, hi := r*meta.Ranks/rp, (r+1)*meta.Ranks/rp
	out := &Local{}
	var err error
	for i := lo; i < hi && err == nil; i++ {
		var loc *Local
		loc, err = readRank(rankPath(base, i), meta, i)
		if err != nil {
			break
		}
		out.Elems = append(out.Elems, loc.Elems...)
		out.ElemCn = append(out.ElemCn, loc.ElemCn...)
		out.Keys = append(out.Keys, loc.Keys...)
		out.PhiMu = append(out.PhiMu, loc.PhiMu...)
		out.Vel = append(out.Vel, loc.Vel...)
		out.P = append(out.P, loc.P...)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("ckpt: read failed on a peer rank")
		}
		return nil, fmt.Errorf("ckpt: read %s: %w", base, err)
	}
	return out, nil
}
