// Package ckpt implements parallel checkpoint/restart for long adaptive
// runs: a versioned binary snapshot of the distributed forest (octant
// keys per rank), every solver field (φ/μ, velocity, pressure, elemental
// Cahn number), the step index, physical time and accumulated timers.
// Snapshots are written one binary file per rank plus a JSON meta file,
// and can be read back at a *different* rank count: each restoring rank
// reads a contiguous block of the per-rank files, so the concatenation
// across ranks reproduces the global SFC order and the records can be
// replayed through the key-addressed bitwise migration path
// (transfer.MigrateKeyedNodal / transfer.MigrateElem) onto the restart
// partition. Field values survive the round trip bitwise.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"proteus/internal/chns"
	"proteus/internal/mesh"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// Version is the snapshot format version stamped into every rank file and
// the meta file. Readers reject other versions.
const Version = 1

// magic identifies a proteus checkpoint rank file.
var magic = [4]byte{'P', 'C', 'K', 'P'}

// Meta is the global, rank-count-independent description of a snapshot,
// written as JSON next to the rank files. Scenario and Preset let a
// driver rebuild the (non-serializable) Config through the scenario
// registry before restoring.
type Meta struct {
	Version  int     `json:"version"`
	Scenario string  `json:"scenario,omitempty"`
	Preset   string  `json:"preset,omitempty"`
	Ranks    int     `json:"ranks"`
	Dim      int     `json:"dim"`
	Step     int     `json:"step"`
	Time     float64 `json:"time"`
	// LocalCahn records the *effective* detection setting of the writing
	// run (the scenario default possibly overridden by -localcahn), so a
	// restart reproduces the physics rather than the registry default.
	LocalCahn   bool  `json:"local_cahn"`
	RemeshCount int   `json:"remesh_count"`
	GlobalElems int64 `json:"global_elems"`
	GlobalDofs  int64 `json:"global_dofs"`
	// Timers are the accumulated stage timers at checkpoint time, restored
	// so a resumed run keeps meaningful cumulative Fig. 7 accounting.
	Timers chns.Timers `json:"timers"`
}

// Local is one rank's slice of a snapshot: its contiguous SFC range of
// leaves with the elemental Cahn numbers, and its owned nodes (keys plus
// the per-node field values, owned segment only — ghosts are re-derived
// on restore).
type Local struct {
	Elems  []sfc.Octant
	ElemCn []float64
	Keys   []mesh.NodeKey
	PhiMu  []float64 // 2 per key
	Vel    []float64 // dim per key
	P      []float64 // 1 per key
}

func metaPath(base string) string { return base + ".meta.json" }

func rankPath(base string, r int) string {
	return fmt.Sprintf("%s_r%04d.ck", base, r)
}

// Write dumps the snapshot under path base: one binary file per rank and
// the meta JSON from rank 0. Every file is written to a temporary path
// and renamed into place only after all ranks report success (meta
// last), so a crash or error mid-write leaves any previous snapshot at
// base intact and restartable. The error result is collective-consistent
// (all ranks agree on success or failure). Collective.
func Write(c *par.Comm, base string, meta Meta, loc *Local) error {
	meta.Version = Version
	meta.Ranks = c.Size()
	rp, mp := rankPath(base, c.Rank()), metaPath(base)
	var err error
	if dir := filepath.Dir(base); dir != "." && dir != "" {
		err = os.MkdirAll(dir, 0o755)
	}
	if err == nil {
		err = writeRank(rp+".tmp", meta, c.Rank(), loc)
	}
	if err == nil && c.Rank() == 0 {
		err = writeMeta(mp+".tmp", meta)
	}
	fail := func(err error) error {
		os.Remove(rp + ".tmp")
		if c.Rank() == 0 {
			os.Remove(mp + ".tmp")
		}
		return fmt.Errorf("ckpt: write %s: %w", base, err)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("write failed on a peer rank")
		}
		return fail(err)
	}
	err = os.Rename(rp+".tmp", rp)
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("rename failed on a peer rank")
		}
		return fail(err)
	}
	// All rank files are in place; committing the meta publishes the
	// snapshot (a reader pairs meta with exactly the rank files it names).
	if c.Rank() == 0 {
		err = os.Rename(mp+".tmp", mp)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("meta rename failed on rank 0")
		}
		return fail(err)
	}
	return nil
}

func writeMeta(path string, meta Meta) error {
	b, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadMeta loads the snapshot description. Callable before any par.Run —
// drivers use it to pick the scenario and rank count for the restart.
func ReadMeta(base string) (Meta, error) {
	var m Meta
	b, err := os.ReadFile(metaPath(base))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("ckpt: meta %s: %w", metaPath(base), err)
	}
	if m.Version != Version {
		return m, fmt.Errorf("ckpt: %s is format version %d, want %d", base, m.Version, Version)
	}
	return m, nil
}

func writeRank(path string, meta Meta, rank int, loc *Local) error {
	dim := meta.Dim
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	le := binary.LittleEndian
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	hdr := []uint32{Version, uint32(dim), uint32(rank), uint32(meta.Ranks), uint32(meta.Step)}
	if err := binary.Write(w, le, hdr); err != nil {
		return err
	}
	ne, nn := len(loc.Elems), len(loc.Keys)
	if len(loc.ElemCn) != ne || len(loc.PhiMu) != 2*nn || len(loc.Vel) != dim*nn || len(loc.P) != nn {
		return fmt.Errorf("ckpt: local snapshot slice lengths inconsistent (ne=%d nn=%d)", ne, nn)
	}
	if err := binary.Write(w, le, []uint64{uint64(ne), uint64(nn)}); err != nil {
		return err
	}
	ex := make([]uint32, 3*ne)
	lv := make([]uint8, ne)
	for i, o := range loc.Elems {
		ex[3*i], ex[3*i+1], ex[3*i+2] = o.X, o.Y, o.Z
		lv[i] = o.Level
	}
	kx := make([]uint32, 3*nn)
	for i, k := range loc.Keys {
		kx[3*i], kx[3*i+1], kx[3*i+2] = k.X, k.Y, k.Z
	}
	for _, part := range []any{ex, lv, loc.ElemCn, kx, loc.PhiMu, loc.Vel, loc.P} {
		if err := binary.Write(w, le, part); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readRank(path string, meta Meta) (*Local, error) {
	dim := meta.Dim
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	le := binary.LittleEndian
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if mg != magic {
		return nil, fmt.Errorf("ckpt: %s: bad magic %q", path, mg[:])
	}
	hdr := make([]uint32, 5)
	if err := binary.Read(r, le, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("ckpt: %s is format version %d, want %d", path, hdr[0], Version)
	}
	if int(hdr[1]) != dim || int(hdr[3]) != meta.Ranks {
		return nil, fmt.Errorf("ckpt: %s header (dim=%d ranks=%d) disagrees with meta (dim=%d ranks=%d)",
			path, hdr[1], hdr[3], dim, meta.Ranks)
	}
	// The step stamp catches a torn snapshot: a crash between the
	// per-rank renames can leave rank files from different checkpoints
	// next to one meta, which must fail loudly instead of restoring a
	// physically inconsistent mixed-step state.
	if int(hdr[4]) != meta.Step {
		return nil, fmt.Errorf("ckpt: %s holds step %d but the meta names step %d — torn snapshot",
			path, hdr[4], meta.Step)
	}
	sz := make([]uint64, 2)
	if err := binary.Read(r, le, sz); err != nil {
		return nil, err
	}
	// Bound the counts by the file size before allocating: every element
	// record is >= 21 bytes and every node record >= 36, so corrupted
	// counts in an otherwise well-formed header fail loudly here instead
	// of triggering an allocation larger than the file itself.
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if sz[0] > uint64(st.Size())/21 || sz[1] > uint64(st.Size())/36 {
		return nil, fmt.Errorf("ckpt: %s: corrupt record counts (%d elems, %d nodes in a %d-byte file)",
			path, sz[0], sz[1], st.Size())
	}
	ne, nn := int(sz[0]), int(sz[1])
	ex := make([]uint32, 3*ne)
	lv := make([]uint8, ne)
	kx := make([]uint32, 3*nn)
	loc := &Local{
		ElemCn: make([]float64, ne),
		PhiMu:  make([]float64, 2*nn),
		Vel:    make([]float64, dim*nn),
		P:      make([]float64, nn),
	}
	for _, part := range []any{ex, lv, loc.ElemCn, kx, loc.PhiMu, loc.Vel, loc.P} {
		if err := binary.Read(r, le, part); err != nil {
			return nil, fmt.Errorf("ckpt: %s truncated: %w", path, err)
		}
	}
	loc.Elems = make([]sfc.Octant, ne)
	for i := range loc.Elems {
		loc.Elems[i] = sfc.Octant{X: ex[3*i], Y: ex[3*i+1], Z: ex[3*i+2], Level: lv[i], Dim: uint8(dim)}
	}
	loc.Keys = make([]mesh.NodeKey, nn)
	for i := range loc.Keys {
		loc.Keys[i] = mesh.NodeKey{X: kx[3*i], Y: kx[3*i+1], Z: kx[3*i+2]}
	}
	return loc, nil
}

// Read loads this rank's share of a snapshot written at meta.Ranks ranks
// onto the current communicator of any size: rank r reads writer files
// [r·R/R', (r+1)·R/R') — a contiguous, order-preserving assignment, so
// each rank's concatenated leaves form a contiguous SFC range and the
// ranges across ranks are in global order (some may be empty when the
// restart uses more ranks than the writer). The error result is
// collective-consistent. Collective.
func Read(c *par.Comm, base string, meta Meta) (*Local, error) {
	rp, r := c.Size(), c.Rank()
	lo, hi := r*meta.Ranks/rp, (r+1)*meta.Ranks/rp
	out := &Local{}
	var err error
	for i := lo; i < hi && err == nil; i++ {
		var loc *Local
		loc, err = readRank(rankPath(base, i), meta)
		if err != nil {
			break
		}
		out.Elems = append(out.Elems, loc.Elems...)
		out.ElemCn = append(out.ElemCn, loc.ElemCn...)
		out.Keys = append(out.Keys, loc.Keys...)
		out.PhiMu = append(out.PhiMu, loc.PhiMu...)
		out.Vel = append(out.Vel, loc.Vel...)
		out.P = append(out.P, loc.P...)
	}
	if par.Allreduce(c, err != nil, func(a, b bool) bool { return a || b }) {
		if err == nil {
			err = fmt.Errorf("ckpt: read failed on a peer rank")
		}
		return nil, fmt.Errorf("ckpt: read %s: %w", base, err)
	}
	return out, nil
}
