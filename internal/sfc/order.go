package sfc

import (
	"math/bits"
	"sort"
)

// Less reports whether a precedes b in the Morton (Z-order) space-filling
// curve ordering of the linearized tree. Ancestors precede descendants
// (pre-order), and disjoint octants compare by the Morton order of their
// regions.
//
// The comparison uses the most-significant-differing-bit trick (Chan 2002):
// among the per-dimension XORs of the anchors, the dimension whose XOR has
// the highest set bit decides the order.
func Less(a, b Octant) bool { return Compare(a, b) < 0 }

// Compare returns -1, 0 or +1 ordering a against b on the Morton curve.
// Equal anchors order the coarser (ancestor) octant first.
func Compare(a, b Octant) int {
	if a.X == b.X && a.Y == b.Y && a.Z == b.Z {
		switch {
		case a.Level < b.Level:
			return -1
		case a.Level > b.Level:
			return 1
		default:
			return 0
		}
	}
	// Dimension priority for ties follows child-index bit order: z highest.
	hx := a.X ^ b.X
	hy := a.Y ^ b.Y
	hz := a.Z ^ b.Z
	// Find the dimension with the most significant differing bit. On MSB
	// ties the higher dimension wins, matching z-major bit interleaving.
	dim, h := 0, hx
	if !msbLess(hy, h) {
		dim, h = 1, hy
	}
	if !msbLess(hz, h) {
		dim, h = 2, hz
	}
	_ = h
	var av, bv uint32
	switch dim {
	case 0:
		av, bv = a.X, b.X
	case 1:
		av, bv = a.Y, b.Y
	default:
		av, bv = a.Z, b.Z
	}
	if av < bv {
		return -1
	}
	return 1
}

// msbLess reports whether the most significant set bit of a is strictly
// below that of b.
func msbLess(a, b uint32) bool { return a < b && a < (a^b) }

// Sort sorts octants in Morton order, ancestors first.
func Sort(octs []Octant) {
	sort.Slice(octs, func(i, j int) bool { return Less(octs[i], octs[j]) })
}

// IsSorted reports whether octs is in Morton order.
func IsSorted(octs []Octant) bool {
	return sort.SliceIsSorted(octs, func(i, j int) bool { return Less(octs[i], octs[j]) })
}

// MortonIndex returns the Morton code of the octant's anchor at MaxLevel
// resolution: bits of x, y (, z) interleaved with x least significant.
// For 3D this occupies 3*MaxLevel = 63 bits.
func MortonIndex(o Octant) uint64 {
	if o.Dim == 2 {
		return interleave2(uint64(o.X), uint64(o.Y))
	}
	return interleave3(uint64(o.X), uint64(o.Y), uint64(o.Z))
}

func interleave2(x, y uint64) uint64 {
	return spread2(x) | spread2(y)<<1
}

// spread2 spaces the low 32 bits of v one bit apart.
func spread2(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

func interleave3(x, y, z uint64) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// spread3 spaces the low 21 bits of v two bits apart.
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x001f00000000ffff
	v = (v | v<<16) & 0x001f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// HilbertIndex returns the Hilbert-curve index of the octant's anchor at
// MaxLevel resolution using Skilling's transform. It is a total order on
// anchor points usable as an alternative partition ordering; ties between
// ancestor/descendant anchors are broken by level as in Compare.
func HilbertIndex(o Octant) uint64 {
	n := int(o.Dim)
	var x [3]uint32
	x[0], x[1], x[2] = o.X, o.Y, o.Z
	axesToTranspose(&x, MaxLevel, n)
	// Interleave the transposed coordinates MSB-first: bit b of dimension d
	// lands at position (b*n + (n-1-d)).
	var h uint64
	for b := MaxLevel - 1; b >= 0; b-- {
		for d := 0; d < n; d++ {
			h = h<<1 | uint64(x[d]>>uint(b)&1)
		}
	}
	return h
}

// axesToTranspose converts coordinates into the "transposed" Hilbert index
// representation in place (John Skilling, "Programming the Hilbert curve",
// AIP Conf. Proc. 707, 2004).
func axesToTranspose(x *[3]uint32, bits, n int) {
	m := uint32(1) << uint(bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else { // exchange
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// CommonAncestor returns the deepest octant that is an ancestor of (or equal
// to) both a and b.
func CommonAncestor(a, b Octant) Octant {
	level := int(a.Level)
	if int(b.Level) < level {
		level = int(b.Level)
	}
	// The common ancestor level is bounded by the highest differing bit of
	// the anchors.
	diff := (a.X ^ b.X) | (a.Y ^ b.Y) | (a.Z ^ b.Z)
	if diff != 0 {
		hb := bits.Len32(diff) // position of highest set bit, 1-based
		maxL := MaxLevel - hb
		if maxL < level {
			level = maxL
		}
	}
	return a.Ancestor(level)
}
