package sfc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randOctant returns a valid random octant in dim dimensions.
func randOctant(r *rand.Rand, dim int) Octant {
	level := r.Intn(MaxLevel + 1)
	o := Root(dim)
	for l := 0; l < level; l++ {
		o = o.Child(r.Intn(o.NumChildren()))
	}
	return o
}

func TestRootProperties(t *testing.T) {
	for _, dim := range []int{2, 3} {
		r := Root(dim)
		if r.Level != 0 || r.Side() != MaxCoord {
			t.Fatalf("dim %d: bad root %v", dim, r)
		}
		if !r.Valid() {
			t.Fatalf("dim %d: root invalid", dim)
		}
		if r.Parent() != r {
			t.Fatalf("dim %d: parent of root must be root", dim)
		}
	}
}

func TestChildParentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3} {
		for iter := 0; iter < 2000; iter++ {
			o := randOctant(r, dim)
			if o.Level == MaxLevel {
				continue
			}
			for c := 0; c < o.NumChildren(); c++ {
				ch := o.Child(c)
				if ch.Parent() != o {
					t.Fatalf("child %d of %v: parent %v", c, o, ch.Parent())
				}
				if ch.ChildIndex() != c {
					t.Fatalf("child %d of %v: index %d", c, o, ch.ChildIndex())
				}
				if !o.IsAncestorOf(ch) {
					t.Fatalf("%v not ancestor of child %v", o, ch)
				}
				if !o.Overlaps(ch) || !ch.Overlaps(o) {
					t.Fatalf("overlap not symmetric for %v, %v", o, ch)
				}
			}
		}
	}
}

func TestAncestorLevels(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 1000; iter++ {
		o := randOctant(r, 3)
		for l := 0; l <= int(o.Level); l++ {
			a := o.Ancestor(l)
			if int(a.Level) != l {
				t.Fatalf("ancestor level %d got %d", l, a.Level)
			}
			if l < int(o.Level) && !a.IsAncestorOf(o) {
				t.Fatalf("%v not ancestor of %v", a, o)
			}
			if !a.ContainsPoint(o.X, o.Y, o.Z) {
				t.Fatalf("%v does not contain anchor of %v", a, o)
			}
		}
	}
}

func TestCompareMatchesMortonIndex(t *testing.T) {
	// For equal-level octants, Compare must agree with interleaved Morton
	// codes — this validates the MSB-XOR trick against the ground truth.
	r := rand.New(rand.NewSource(3))
	for _, dim := range []int{2, 3} {
		for iter := 0; iter < 5000; iter++ {
			a := randOctant(r, dim)
			b := randOctant(r, dim)
			ma, mb := MortonIndex(a), MortonIndex(b)
			cmp := Compare(a, b)
			switch {
			case ma < mb:
				if cmp >= 0 {
					t.Fatalf("dim %d: %v < %v by Morton but Compare=%d", dim, a, b, cmp)
				}
			case ma > mb:
				if cmp <= 0 {
					t.Fatalf("dim %d: %v > %v by Morton but Compare=%d", dim, a, b, cmp)
				}
			default:
				// Same anchor path: coarser must come first.
				if (a.Level < b.Level) != (cmp < 0) && a.Level != b.Level {
					t.Fatalf("dim %d: tie-break wrong for %v vs %v: %d", dim, a, b, cmp)
				}
			}
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 3000}
	r := rand.New(rand.NewSource(4))
	err := quick.Check(func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randOctant(rr, 3), randOctant(rr, 3), randOctant(rr, 3)
		// Antisymmetry.
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		// Transitivity.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		// Reflexivity.
		return Compare(a, a) == 0
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestAncestorsPrecedeDescendants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 2000; iter++ {
		o := randOctant(r, 3)
		if o.Level == 0 {
			continue
		}
		a := o.Ancestor(r.Intn(int(o.Level)))
		if !Less(a, o) {
			t.Fatalf("ancestor %v must precede %v", a, o)
		}
	}
}

func TestDescendantRangeContiguity(t *testing.T) {
	// All descendants of an octant form a contiguous Morton range
	// [o, o.LastDescendant]; any octant outside the subtree sorts outside.
	r := rand.New(rand.NewSource(6))
	for iter := 0; iter < 2000; iter++ {
		o := randOctant(r, 2)
		d := randOctant(r, 2)
		last := o.LastDescendant()
		inRange := Compare(o, d) <= 0 && Compare(d, last) <= 0
		isDesc := o.EqualKey(d) || o.IsAncestorOf(d)
		if isDesc && !inRange {
			t.Fatalf("descendant %v of %v outside range", d, o)
		}
		if !isDesc && inRange && !d.IsAncestorOf(o) {
			t.Fatalf("non-descendant %v of %v inside range", d, o)
		}
	}
}

func TestNeighborGeometry(t *testing.T) {
	o := New(3, 0, 0, 0, 2) // corner octant
	var ns []Octant
	ns = o.AllNeighbors(ns)
	if len(ns) != 7 {
		t.Fatalf("corner octant should have 7 neighbours, got %d", len(ns))
	}
	// Interior octant has 26 neighbours in 3D.
	side := o.Side()
	in := New(3, side, side, side, 2)
	ns = in.AllNeighbors(ns[:0])
	if len(ns) != 26 {
		t.Fatalf("interior 3D octant should have 26 neighbours, got %d", len(ns))
	}
	// 2D interior octant has 8.
	q := New(2, side, side, 0, 2)
	ns = q.AllNeighbors(ns[:0])
	if len(ns) != 8 {
		t.Fatalf("interior 2D octant should have 8 neighbours, got %d", len(ns))
	}
}

func TestNeighborSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		o := randOctant(r, 3)
		var ns []Octant
		for _, n := range o.AllNeighbors(ns) {
			found := false
			var back []Octant
			for _, m := range n.AllNeighbors(back) {
				if m.EqualKey(o) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbour relation not symmetric: %v, %v", o, n)
			}
		}
	}
}

func TestHilbertIndexBijective(t *testing.T) {
	// At a fixed coarse level, Hilbert indices of all octants must be a
	// permutation with unit step count (each consecutive pair of indices
	// corresponds to adjacent cells — the defining locality property).
	const level = 3
	var octs []Octant
	var rec func(o Octant)
	rec = func(o Octant) {
		if int(o.Level) == level {
			octs = append(octs, o)
			return
		}
		for c := 0; c < o.NumChildren(); c++ {
			rec(o.Child(c))
		}
	}
	rec(Root(2))
	seen := map[uint64]bool{}
	for _, o := range octs {
		h := HilbertIndex(o)
		if seen[h] {
			t.Fatalf("duplicate Hilbert index %d", h)
		}
		seen[h] = true
	}
	// Sort by Hilbert index and check adjacency of consecutive cells.
	sort.Slice(octs, func(i, j int) bool { return HilbertIndex(octs[i]) < HilbertIndex(octs[j]) })
	for i := 1; i < len(octs); i++ {
		a, b := octs[i-1], octs[i]
		dx := absDiff(a.X, b.X)
		dy := absDiff(a.Y, b.Y)
		if dx+dy != a.Side() {
			t.Fatalf("Hilbert order not face-continuous at %d: %v -> %v", i, a, b)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestCommonAncestor(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for iter := 0; iter < 2000; iter++ {
		a, b := randOctant(r, 3), randOctant(r, 3)
		ca := CommonAncestor(a, b)
		for _, o := range []Octant{a, b} {
			if !ca.EqualKey(o) && !ca.IsAncestorOf(o) {
				t.Fatalf("CommonAncestor(%v,%v)=%v does not cover %v", a, b, ca, o)
			}
		}
		// Deepest: child of ca containing a must not contain b (unless ca
		// is already one of them).
		if int(ca.Level) < MaxLevel && !ca.EqualKey(a) && !ca.EqualKey(b) {
			ax := a.Ancestor(int(ca.Level) + 1)
			bx := b.Ancestor(int(ca.Level) + 1)
			if ax.EqualKey(bx) {
				t.Fatalf("CommonAncestor(%v,%v)=%v not deepest", a, b, ca)
			}
		}
	}
}

func TestSortIsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	octs := make([]Octant, 500)
	for i := range octs {
		octs[i] = randOctant(r, 3)
	}
	Sort(octs)
	if !IsSorted(octs) {
		t.Fatal("Sort did not sort")
	}
}

func TestContainsPoint(t *testing.T) {
	o := New(2, 0, 0, 0, 1) // lower-left quadrant
	half := MaxCoord / 2
	if !o.ContainsPoint(0, 0, 0) || !o.ContainsPoint(half-1, half-1, 0) {
		t.Fatal("quadrant must contain interior points")
	}
	if o.ContainsPoint(half, 0, 0) || o.ContainsPoint(0, half, 0) {
		t.Fatal("quadrant must not contain far-edge points")
	}
}
