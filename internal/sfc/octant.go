// Package sfc implements dimension-agnostic (2D/3D) space-filling-curve
// octant keys for linearized octrees.
//
// An Octant is identified by the integer coordinates of its anchor (the
// corner closest to the origin) on a virtual uniform grid of 2^MaxLevel
// cells per side, together with its refinement level. Level 0 is the root
// octant covering the whole unit domain; an octant at level l has side
// length 2^(MaxLevel-l) in anchor units.
//
// The package provides the key algebra required by the meshing algorithms
// of Saurabh et al. (IPDPS 2023): parent/child/ancestor navigation, Morton
// (Z-order) comparison implemented with the most-significant-differing-bit
// trick, overlap and containment tests, same-level neighbours, and a
// Hilbert index (Skilling's transform) usable as an alternative partition
// ordering.
package sfc

import "fmt"

// MaxLevel is the deepest refinement level representable. Anchor
// coordinates occupy MaxLevel bits, so 3D Hilbert/Morton indices fit in a
// uint64 (3*21 = 63 bits).
const MaxLevel = 21

// MaxCoord is the number of anchor units per side of the root octant.
const MaxCoord uint32 = 1 << MaxLevel

// Octant is a node of a 2^d-tree, identified by anchor coordinates and
// level. The zero value is the 3D root octant with Dim left 0; use New to
// construct octants with an explicit dimension (2 or 3).
type Octant struct {
	X, Y, Z uint32 // anchor coordinates in units of the level-MaxLevel grid
	Level   uint8  // refinement level, 0 (root) .. MaxLevel
	Dim     uint8  // spatial dimension: 2 or 3
}

// New returns the octant at the given anchor and level in dim dimensions.
// It panics if the anchor is not aligned to the level's grid.
func New(dim int, x, y, z uint32, level int) Octant {
	o := Octant{X: x, Y: y, Z: z, Level: uint8(level), Dim: uint8(dim)}
	if !o.Valid() {
		panic(fmt.Sprintf("sfc.New: invalid octant dim=%d anchor=(%d,%d,%d) level=%d", dim, x, y, z, level))
	}
	return o
}

// Root returns the level-0 octant covering the whole domain.
func Root(dim int) Octant { return Octant{Dim: uint8(dim)} }

// Valid reports whether the octant's anchor lies inside the domain and is
// aligned to its level's grid.
func (o Octant) Valid() bool {
	if o.Dim != 2 && o.Dim != 3 {
		return false
	}
	if o.Level > MaxLevel {
		return false
	}
	mask := o.Side() - 1
	if o.X&mask != 0 || o.Y&mask != 0 || o.Z&mask != 0 {
		return false
	}
	if o.X >= MaxCoord || o.Y >= MaxCoord {
		return false
	}
	if o.Dim == 2 {
		return o.Z == 0
	}
	return o.Z < MaxCoord
}

// Side returns the octant's side length in anchor units.
func (o Octant) Side() uint32 { return 1 << (MaxLevel - uint(o.Level)) }

// NumChildren returns 2^d.
func (o Octant) NumChildren() int { return 1 << o.Dim }

// Parent returns the ancestor one level up. Parent of the root is the root.
func (o Octant) Parent() Octant {
	if o.Level == 0 {
		return o
	}
	return o.Ancestor(int(o.Level) - 1)
}

// Ancestor returns the ancestor at the given (coarser or equal) level.
func (o Octant) Ancestor(level int) Octant {
	if level < 0 || level > int(o.Level) {
		panic(fmt.Sprintf("sfc.Ancestor: level %d not in [0,%d]", level, o.Level))
	}
	mask := ^(uint32(1)<<(MaxLevel-uint(level)) - 1)
	return Octant{X: o.X & mask, Y: o.Y & mask, Z: o.Z & mask, Level: uint8(level), Dim: o.Dim}
}

// Child returns the i-th child (Morton order: bit 0 = x, bit 1 = y,
// bit 2 = z) one level finer.
func (o Octant) Child(i int) Octant {
	if o.Level >= MaxLevel {
		panic("sfc.Child: at MaxLevel")
	}
	if i < 0 || i >= o.NumChildren() {
		panic(fmt.Sprintf("sfc.Child: index %d out of range", i))
	}
	h := o.Side() >> 1
	c := Octant{X: o.X, Y: o.Y, Z: o.Z, Level: o.Level + 1, Dim: o.Dim}
	if i&1 != 0 {
		c.X += h
	}
	if i&2 != 0 {
		c.Y += h
	}
	if i&4 != 0 {
		c.Z += h
	}
	return c
}

// ChildIndex returns which child of its parent this octant is
// (Morton order), or 0 for the root.
func (o Octant) ChildIndex() int {
	if o.Level == 0 {
		return 0
	}
	h := o.Side()
	i := 0
	if o.X&h != 0 {
		i |= 1
	}
	if o.Y&h != 0 {
		i |= 2
	}
	if o.Dim == 3 && o.Z&h != 0 {
		i |= 4
	}
	return i
}

// IsAncestorOf reports whether o is a strict ancestor of p.
func (o Octant) IsAncestorOf(p Octant) bool {
	if o.Level >= p.Level {
		return false
	}
	return p.Ancestor(int(o.Level)).EqualKey(o)
}

// Overlaps reports whether o and p overlap, i.e. one is an ancestor of or
// equal to the other.
func (o Octant) Overlaps(p Octant) bool {
	if o.Level <= p.Level {
		return p.Ancestor(int(o.Level)).EqualKey(o)
	}
	return o.Ancestor(int(p.Level)).EqualKey(p)
}

// EqualKey reports whether o and p are the same octant (anchor and level).
func (o Octant) EqualKey(p Octant) bool {
	return o.X == p.X && o.Y == p.Y && o.Z == p.Z && o.Level == p.Level
}

// ContainsPoint reports whether the half-open region [anchor, anchor+side)
// contains the grid point (x, y, z).
func (o Octant) ContainsPoint(x, y, z uint32) bool {
	s := o.Side()
	in := x >= o.X && x < o.X+s && y >= o.Y && y < o.Y+s
	if o.Dim == 3 {
		in = in && z >= o.Z && z < o.Z+s
	}
	return in
}

// FirstDescendant returns the deepest-level descendant at the anchor corner.
func (o Octant) FirstDescendant() Octant {
	return Octant{X: o.X, Y: o.Y, Z: o.Z, Level: MaxLevel, Dim: o.Dim}
}

// LastDescendant returns the deepest-level descendant at the far corner.
func (o Octant) LastDescendant() Octant {
	d := o.Side() - 1
	l := Octant{X: o.X + d, Y: o.Y + d, Z: o.Z, Level: MaxLevel, Dim: o.Dim}
	if o.Dim == 3 {
		l.Z = o.Z + d
	}
	return l
}

// Neighbor returns the same-level neighbour displaced by (dx,dy,dz) octant
// side lengths (each in {-1,0,+1}) and true, or a zero octant and false if
// the neighbour falls outside the root domain.
func (o Octant) Neighbor(dx, dy, dz int) (Octant, bool) {
	s := int64(o.Side())
	nx := int64(o.X) + int64(dx)*s
	ny := int64(o.Y) + int64(dy)*s
	nz := int64(o.Z) + int64(dz)*s
	if o.Dim == 2 {
		nz = 0
		if dz != 0 {
			return Octant{}, false
		}
	}
	if nx < 0 || ny < 0 || nz < 0 || nx >= int64(MaxCoord) || ny >= int64(MaxCoord) || (o.Dim == 3 && nz >= int64(MaxCoord)) {
		return Octant{}, false
	}
	return Octant{X: uint32(nx), Y: uint32(ny), Z: uint32(nz), Level: o.Level, Dim: o.Dim}, true
}

// AllNeighbors appends to dst every existing same-level neighbour sharing a
// face, edge or corner with o (up to 3^d-1 octants) and returns dst.
func (o Octant) AllNeighbors(dst []Octant) []Octant {
	zlo, zhi := 0, 0
	if o.Dim == 3 {
		zlo, zhi = -1, 1
	}
	for dz := zlo; dz <= zhi; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				if n, ok := o.Neighbor(dx, dy, dz); ok {
					dst = append(dst, n)
				}
			}
		}
	}
	return dst
}

// Coords returns the anchor coordinates as a slice of length Dim, in units
// of the unit domain (divide by MaxCoord for physical coordinates).
func (o Octant) Coords() [3]uint32 { return [3]uint32{o.X, o.Y, o.Z} }

// String implements fmt.Stringer.
func (o Octant) String() string {
	if o.Dim == 2 {
		return fmt.Sprintf("oct2(%d,%d)@%d", o.X, o.Y, o.Level)
	}
	return fmt.Sprintf("oct3(%d,%d,%d)@%d", o.X, o.Y, o.Z, o.Level)
}
