// Package fem provides linear continuous-Galerkin reference elements
// (quad4/hex8), elemental operators (mass, stiffness, convection, and
// variable-coefficient variants), and the three matrix/vector assembly
// paths compared in Table I of Saurabh et al. (IPDPS 2023):
//
//   - baseline: scalar AIJ assembly with strided per-DOF writes;
//   - stage 1:  blocked BAIJ assembly;
//   - stage 2:  zip/unzip DOF reordering with every operator expressed as
//     DGEMM/DGEMV products over quadrature matrices (Sec. III-A).
package fem

import "fmt"

// Ref is a reference element: linear basis on [0,1]^d with full 2-point
// Gauss quadrature. Corner ordering matches mesh/sfc child ordering
// (bit 0 = +x, bit 1 = +y, bit 2 = +z).
type Ref struct {
	Dim int
	NPE int // nodes per element (2^d)
	NG  int // Gauss points (2^d)

	// N[g*NPE+a]: shape function a at Gauss point g.
	N []float64
	// DN[(g*NPE+a)*Dim+d]: reference derivative (unit cell) of a at g.
	DN []float64
	// W[g]: quadrature weight on the unit cell (sums to 1).
	W []float64
	// GP[g*Dim+d]: Gauss point coordinates on the unit cell.
	GP []float64
}

// gauss2 holds the 2-point Gauss abscissae on [0,1].
var gauss2 = [2]float64{0.5 - 0.28867513459481287, 0.5 + 0.28867513459481287}

// NewRef constructs the reference element for dim in {2,3}.
func NewRef(dim int) *Ref {
	if dim != 2 && dim != 3 {
		panic(fmt.Sprintf("fem.NewRef: dim %d", dim))
	}
	npe := 1 << dim
	ng := 1 << dim
	r := &Ref{Dim: dim, NPE: npe, NG: ng,
		N:  make([]float64, ng*npe),
		DN: make([]float64, ng*npe*dim),
		W:  make([]float64, ng),
		GP: make([]float64, ng*dim),
	}
	for g := 0; g < ng; g++ {
		var x [3]float64
		for d := 0; d < dim; d++ {
			x[d] = gauss2[(g>>d)&1]
			r.GP[g*dim+d] = x[d]
		}
		// Each 1D 2-point Gauss weight on [0,1] is 1/2; product over dims.
		r.W[g] = pow(0.5, dim)
		for a := 0; a < npe; a++ {
			val := 1.0
			for d := 0; d < dim; d++ {
				if (a>>d)&1 == 1 {
					val *= x[d]
				} else {
					val *= 1 - x[d]
				}
			}
			r.N[g*npe+a] = val
			for d := 0; d < dim; d++ {
				dv := 1.0
				for e := 0; e < dim; e++ {
					if e == d {
						if (a>>e)&1 == 1 {
							dv *= 1
						} else {
							dv *= -1
						}
					} else {
						if (a>>e)&1 == 1 {
							dv *= x[e]
						} else {
							dv *= 1 - x[e]
						}
					}
				}
				r.DN[(g*npe+a)*dim+d] = dv
			}
		}
	}
	return r
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

// Shape evaluates all shape functions at unit-cell point x into out.
func (r *Ref) Shape(x []float64, out []float64) {
	for a := 0; a < r.NPE; a++ {
		val := 1.0
		for d := 0; d < r.Dim; d++ {
			if (a>>d)&1 == 1 {
				val *= x[d]
			} else {
				val *= 1 - x[d]
			}
		}
		out[a] = val
	}
}

// Interp evaluates a nodal field (one value per corner) at unit-cell
// point x.
func (r *Ref) Interp(x []float64, nodal []float64) float64 {
	var s float64
	for a := 0; a < r.NPE; a++ {
		val := 1.0
		for d := 0; d < r.Dim; d++ {
			if (a>>d)&1 == 1 {
				val *= x[d]
			} else {
				val *= 1 - x[d]
			}
		}
		s += val * nodal[a]
	}
	return s
}

// AtGauss interpolates a nodal field to Gauss point g.
func (r *Ref) AtGauss(g int, nodal []float64) float64 {
	var s float64
	base := g * r.NPE
	for a := 0; a < r.NPE; a++ {
		s += r.N[base+a] * nodal[a]
	}
	return s
}

// GradAtGauss returns component d of the physical gradient of a nodal
// field at Gauss point g for an element of side h.
func (r *Ref) GradAtGauss(g, d int, h float64, nodal []float64) float64 {
	var s float64
	for a := 0; a < r.NPE; a++ {
		s += r.DN[(g*r.NPE+a)*r.Dim+d] * nodal[a]
	}
	return s / h
}
