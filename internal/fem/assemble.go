package fem

import (
	"fmt"
	"runtime"
	"sort"

	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/par"
)

// NodeMajorKernel fills the elemental matrix Ke for element e in
// node-major layout: Ke[(a*ndof+di)*(npe*ndof) + b*ndof+dj]. The worker
// index w names the element-loop shard invoking the kernel: kernels with
// mutable scratch must keep one copy per worker (index it by w, sized by
// Assembler.Workers) so the sharded loop stays race-free. Serial callers
// always see w == 0.
type NodeMajorKernel func(w, e int, h float64, ke []float64)

// ZippedKernel fills dof-pair-major blocks for element e:
// blocks[di*ndof+dj] is a contiguous npe x npe scalar block (the zipped
// layout produced by the GEMM operators). The worker index w follows the
// same per-shard contract as NodeMajorKernel; use Assembler.WorkN(w) for
// per-worker GEMM scratch.
type ZippedKernel func(w, e int, h float64, blocks [][]float64)

// offProc is a matrix contribution destined for a remote owner of the row
// node. Blocks are at most 4x4 (ndof <= 4).
type offProc struct {
	Row, Col mesh.NodeKey
	V        [16]float64
}

const tagOffProc = 103

// Layout selects the storage/assembly strategy of Table I.
type Layout int

// Assembly layouts benchmarked in Table I.
const (
	// LayoutAIJ is the baseline: scalar CSR with per-DOF strided writes.
	LayoutAIJ Layout = iota
	// LayoutBAIJ is stage 1: node-blocked storage, one block write per
	// node pair.
	LayoutBAIJ
	// LayoutZipped is stage 2: GEMM-produced zipped blocks unzipped
	// directly into block storage.
	LayoutZipped
)

// planIdx maps a layout to its plan cache slot: BAIJ and zipped assembly
// share the node-block sparsity (the zipped path only changes how the
// elemental block is produced), so they share one plan.
func planIdx(layout Layout) int {
	if layout == LayoutAIJ {
		return 0
	}
	return 1
}

// NewMatrix allocates an empty matrix matching the layout: scalar AIJ for
// the baseline, BAIJ otherwise. The first assembly into it builds the
// sparsity through the COO map; prefer Assembler.NewMatrix once an
// assembler exists so the frozen pattern is shared.
func NewMatrix(m *mesh.Mesh, ndof int, layout Layout) *la.BSRMat {
	if layout == LayoutAIJ {
		return la.NewAIJ(m, ndof, m.NumOwned, m.NumLocal)
	}
	return la.NewBAIJ(m, ndof, m.NumOwned, m.NumLocal)
}

// workerScratch is one element-loop shard's private state, so the
// parallel loop runs with zero shared mutable scratch and zero
// per-element allocation.
type workerScratch struct {
	ke     []float64
	blocks [][]float64
	blk    []float64
	wk     *GemmWork
	vals   []float64 // accumulation buffer for workers > 0
	fe     []float64 // elemental vector (planned vector assembly)
	fz     []float64 // zipped elemental vector (planned vector assembly)
}

// Assembler drives distributed matrix and vector assembly over a mesh.
// It owns the per-(mesh, ndof) assembly plans: the first assembly of a
// layout runs the COO-map path and freezes the sparsity; every later
// assembly with the same pattern is plan-driven flat-array accumulation.
type Assembler struct {
	M    *mesh.Mesh
	Ref  *Ref
	Ndof int

	// workers is the element-loop shard count for plan-driven matrix
	// assembly (default: GOMAXPROCS divided among the in-process ranks).
	workers int
	ws      []workerScratch

	// pool, when set, runs the element-loop shards and the merge on a
	// persistent worker pool instead of spawning goroutines per assembly
	// — the same pool the solve-path kernels dispatch to. The sh* fields
	// are the prebuilt shard closures and their argument slots, so the
	// pool dispatch itself allocates nothing per assembly.
	pool            *par.Pool
	elemFn, mergeFn func(w int)
	shVals          []float64
	shPlan          *AssemblyPlan
	shKern          NodeMajorKernel
	shZKern         ZippedKernel
	shN, shNW       int

	// Planned vector assembly: the cached vector plan, an optional shard
	// count override (0: follow workers) and the prebuilt shard closures
	// with their argument slots (see vecplan.go).
	vplan                  *VecPlan
	vecWorkers             int
	vecElemFn, vecGatherFn func(w int)
	shVec                  []float64
	shVKern                WorkerVecKernel
	shVZKern               WorkerZippedVecKernel
	shVN, shVNW            int
	shVLo, shVHi           int

	// off is the reusable off-process contribution buffer of the cold
	// path (preallocated per-destination slices, reset between calls).
	off *offProcBuf

	// plans[0] is the scalar AIJ plan, plans[1] the node-block plan
	// shared by BAIJ and zipped assembly.
	plans [2]*AssemblyPlan

	// epoch tags the mesh generation the plans were built for; see
	// SetEpoch.
	epoch uint64
}

// NewAssembler builds an assembler for ndof unknowns per node.
func NewAssembler(m *mesh.Mesh, ndof int) *Assembler {
	r := NewRef(m.Dim)
	if ndof > 4 {
		panic("fem: ndof > 4 unsupported by off-process block buffer")
	}
	a := &Assembler{M: m, Ref: r, Ndof: ndof}
	a.workers = runtime.GOMAXPROCS(0) / m.Comm.Size()
	if a.workers < 1 {
		a.workers = 1
	}
	a.ensureWorkers(1)
	a.off = newOffProcBuf()
	return a
}

// ensureWorkers grows the per-worker scratch pool to n entries.
func (a *Assembler) ensureWorkers(n int) {
	for len(a.ws) < n {
		npe := a.Ref.NPE
		nn := npe * a.Ndof
		s := workerScratch{
			ke:  make([]float64, nn*nn),
			blk: make([]float64, a.Ndof*a.Ndof),
			wk:  NewGemmWork(a.Ref),
			fe:  make([]float64, nn),
			fz:  make([]float64, nn),
		}
		s.blocks = make([][]float64, a.Ndof*a.Ndof)
		for j := range s.blocks {
			s.blocks[j] = make([]float64, npe*npe)
		}
		a.ws = append(a.ws, s)
	}
}

// Workers returns the element-loop shard count kernels must size their
// per-worker scratch for.
func (a *Assembler) Workers() int { return a.workers }

// SetWorkers overrides the element-loop shard count (n >= 1). Workers
// change the order of floating-point accumulation between shards, so
// reproducibility-sensitive callers pin n = 1.
func (a *Assembler) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	a.workers = n
}

// SetPool runs warm assemblies on the given persistent pool (sharing its
// workers with the solve-path kernels) instead of spawning goroutines per
// call. The shard count stays min(Workers(), pool.Workers()), so results
// are unchanged.
func (a *Assembler) SetPool(p *par.Pool) { a.pool = p }

// Work returns worker 0's GEMM scratch (for serial zipped kernels).
func (a *Assembler) Work() *GemmWork { return a.WorkN(0) }

// WorkN returns worker w's GEMM scratch.
func (a *Assembler) WorkN(w int) *GemmWork {
	a.ensureWorkers(w + 1)
	return a.ws[w].wk
}

// SetEpoch declares the mesh generation the assembler is running on.
// A change invalidates every cached plan (the sparsity of a remeshed
// domain is new), so the next assembly re-runs the cold path.
func (a *Assembler) SetEpoch(e uint64) {
	if e == a.epoch {
		return
	}
	a.epoch = e
	a.InvalidatePlans()
}

// Epoch returns the assembler's current mesh epoch.
func (a *Assembler) Epoch() uint64 { return a.epoch }

// InvalidatePlans drops the cached assembly plans — matrix and vector —
// (e.g. after a remesh).
func (a *Assembler) InvalidatePlans() {
	a.plans[0], a.plans[1] = nil, nil
	a.vplan = nil
}

// Rebind points the assembler at a new mesh generation, preserving
// everything mesh-independent: the reference element, the per-worker
// kernel scratch and the pool wiring. The cached plans are dropped (a
// remeshed domain has a new sparsity) and the off-process buffer's
// destination set is cleared, because the neighbour ranks of the new
// partition differ.
func (a *Assembler) Rebind(m *mesh.Mesh) {
	if m.Dim != a.M.Dim {
		panic("fem: Assembler.Rebind across dimensions")
	}
	a.M = m
	a.InvalidatePlans()
	a.off.clear()
}

// Plan returns the cached plan for a layout, or nil before the first
// assembly (or after invalidation).
func (a *Assembler) Plan(layout Layout) *AssemblyPlan { return a.plans[planIdx(layout)] }

// NewMatrix allocates a matrix for the layout. When the layout's plan
// exists the matrix shares the frozen sparsity and is born finalized
// (zero values), so assembling into it takes the warm plan-driven path
// immediately.
func (a *Assembler) NewMatrix(layout Layout) *la.BSRMat {
	var mat *la.BSRMat
	if p := a.plans[planIdx(layout)]; p != nil {
		if layout == LayoutAIJ {
			mat = la.NewAIJFromSparsity(a.M, a.Ndof, a.M.NumOwned, a.M.NumLocal, p.sp)
		} else {
			mat = la.NewBAIJFromSparsity(a.M, a.Ndof, a.M.NumOwned, a.M.NumLocal, p.sp)
		}
	} else {
		mat = NewMatrix(a.M, a.Ndof, layout)
	}
	// Operators inherit the assembler's pool: SpMV shards across the same
	// workers as the element loop (bitwise-identical to serial).
	mat.SetPool(a.pool)
	return mat
}

// planFor returns the plan to use for a warm assembly into mat, or nil
// if this assembly must run cold (no plan yet, or mat does not share the
// plan's frozen pattern).
func (a *Assembler) planFor(mat *la.BSRMat, layout Layout) *AssemblyPlan {
	p := a.plans[planIdx(layout)]
	if p == nil || !mat.Finalized() || mat.Sparsity() != p.sp {
		return nil
	}
	return p
}

// finishCold freezes the matrix after a cold assembly and builds the
// layout's plan from the frozen pattern if none exists yet.
func (a *Assembler) finishCold(mat *la.BSRMat, layout Layout) {
	mat.Finalize()
	if a.plans[planIdx(layout)] == nil {
		a.plans[planIdx(layout)] = a.buildPlan(layout, mat.Sparsity())
	}
}

// AssembleMatrix runs the element loop with the node-major kernel and
// accumulates into mat using the requested layout (LayoutAIJ or
// LayoutBAIJ). Contributions to rows owned remotely are exchanged with
// NBX at the end (PETSc's off-process assembly). The first assembly per
// layout builds the sparsity through the COO map and precomputes the
// assembly plan; subsequent assemblies into plan-pattern matrices are
// plan-driven (no map operations, sharded across workers). Collective.
func (a *Assembler) AssembleMatrix(mat *la.BSRMat, layout Layout, kern NodeMajorKernel) {
	if layout == LayoutZipped {
		panic("fem: use AssembleMatrixZipped for the zipped layout")
	}
	if plan := a.planFor(mat, layout); plan != nil {
		a.assembleWarm(mat, plan, kern, nil)
		return
	}
	a.off.reset()
	ws := &a.ws[0]
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range ws.ke {
			ws.ke[i] = 0
		}
		kern(0, e, a.M.ElemSize(e), ws.ke)
		a.scatterKe(mat, layout, e)
	}
	a.flushOffProc(mat, layout)
	a.finishCold(mat, layout)
}

// AssembleMatrixZipped runs the element loop with a zipped kernel; blocks
// are unzipped per node pair straight into BAIJ block writes. Shares the
// cold-then-plan lifecycle of AssembleMatrix. Collective.
func (a *Assembler) AssembleMatrixZipped(mat *la.BSRMat, kern ZippedKernel) {
	if plan := a.planFor(mat, LayoutZipped); plan != nil {
		a.assembleWarm(mat, plan, nil, kern)
		return
	}
	a.off.reset()
	ws := &a.ws[0]
	npe := a.Ref.NPE
	nd := a.Ndof
	for e := 0; e < a.M.NumElems(); e++ {
		for _, b := range ws.blocks {
			for i := range b {
				b[i] = 0
			}
		}
		kern(0, e, a.M.ElemSize(e), ws.blocks)
		// Unzip per node pair: gather the ndof x ndof block for (a,b)
		// from the contiguous dof-pair blocks.
		cpe := a.M.CornersPerElem()
		for ca := 0; ca < cpe; ca++ {
			conA := &a.M.Conn[e*cpe+ca]
			for cb := 0; cb < cpe; cb++ {
				conB := &a.M.Conn[e*cpe+cb]
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						ws.blk[di*nd+dj] = ws.blocks[di*nd+dj][ca*npe+cb]
					}
				}
				a.distributeBlock(mat, LayoutBAIJ, conA, conB, ws.blk)
			}
		}
	}
	a.flushOffProc(mat, LayoutBAIJ)
	a.finishCold(mat, LayoutZipped)
}

// assembleWarm is the steady-state path: plan-driven flat-array
// accumulation, sharded across workers. Worker 0 accumulates directly
// into the matrix values (preserving the cold accumulation order when
// workers == 1); workers 1..n-1 accumulate into private buffers merged
// afterwards in worker order.
func (a *Assembler) assembleWarm(mat *la.BSRMat, plan *AssemblyPlan, kern NodeMajorKernel, zkern ZippedKernel) {
	n := a.M.NumElems()
	nw := a.workers
	if a.pool != nil && a.pool.Workers() < nw {
		nw = a.pool.Workers()
	}
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	a.ensureWorkers(nw)
	vals := mat.Vals()
	if nw == 1 {
		a.runShard(0, 0, n, vals, plan, kern, zkern)
	} else {
		if a.elemFn == nil {
			a.elemFn, a.mergeFn = a.runElemShard, a.runMergeShard
		}
		a.shVals, a.shPlan, a.shKern, a.shZKern, a.shN, a.shNW = vals, plan, kern, zkern, n, nw
		a.runSharded(a.elemFn, nw)
		a.runSharded(a.mergeFn, nw)
		a.shVals, a.shPlan, a.shKern, a.shZKern = nil, nil, nil, nil
	}
	a.flushPlanned(mat, plan)
}

// runElemShard is the prebuilt element-loop shard: worker 0 accumulates
// directly into the matrix values; workers 1..nw-1 zero and fill their
// private buffers (the O(nnz) memset parallelizes instead of serializing
// the launch).
func (a *Assembler) runElemShard(w int) {
	nw, n := a.shNW, a.shN
	if w >= nw {
		return
	}
	lo, hi := par.Shard(w, nw, n)
	if w == 0 {
		a.runShard(0, lo, hi, a.shVals, a.shPlan, a.shKern, a.shZKern)
		return
	}
	ws := &a.ws[w]
	if len(ws.vals) != len(a.shVals) {
		ws.vals = make([]float64, len(a.shVals))
	} else {
		for i := range ws.vals {
			ws.vals[i] = 0
		}
	}
	a.runShard(w, lo, hi, ws.vals, a.shPlan, a.shKern, a.shZKern)
}

// runMergeShard merges the worker buffers into the matrix values, sharded
// by index range so the merge itself parallelizes; every index still sums
// workers in order 1..nw-1, keeping the result independent of merge
// scheduling.
func (a *Assembler) runMergeShard(s int) {
	nw := a.shNW
	if s >= nw {
		return
	}
	vals := a.shVals
	nv := len(vals)
	lo, hi := par.Shard(s, nw, nv)
	for w := 1; w < nw; w++ {
		buf := a.ws[w].vals
		for i := lo; i < hi; i++ {
			vals[i] += buf[i]
		}
	}
}

// runShard assembles elements [e0,e1) with worker w's scratch,
// accumulating local contributions into vals and off-process ones into
// the plan's preallocated rank buffers (each plan entry is written by
// exactly one element, so shards never contend).
func (a *Assembler) runShard(w, e0, e1 int, vals []float64, plan *AssemblyPlan, kern NodeMajorKernel, zkern ZippedKernel) {
	m := a.M
	ws := &a.ws[w]
	cpe := m.CornersPerElem()
	nd := a.Ndof
	npe := a.Ref.NPE
	n := npe * nd
	blk := ws.blk
	idx := plan.elemOff[e0]
	for e := e0; e < e1; e++ {
		h := m.ElemSize(e)
		if kern != nil {
			ke := ws.ke
			for i := range ke {
				ke[i] = 0
			}
			kern(w, e, h, ke)
			for ca := 0; ca < cpe; ca++ {
				conA := &m.Conn[e*cpe+ca]
				for cb := 0; cb < cpe; cb++ {
					conB := &m.Conn[e*cpe+cb]
					for di := 0; di < nd; di++ {
						for dj := 0; dj < nd; dj++ {
							blk[di*nd+dj] = ke[(ca*nd+di)*n+cb*nd+dj]
						}
					}
					idx = plan.applyBlock(vals, idx, int(conA.N)*int(conB.N), blk, nd)
				}
			}
		} else {
			blocks := ws.blocks
			for _, b := range blocks {
				for i := range b {
					b[i] = 0
				}
			}
			zkern(w, e, h, blocks)
			for ca := 0; ca < cpe; ca++ {
				conA := &m.Conn[e*cpe+ca]
				for cb := 0; cb < cpe; cb++ {
					conB := &m.Conn[e*cpe+cb]
					for di := 0; di < nd; di++ {
						for dj := 0; dj < nd; dj++ {
							blk[di*nd+dj] = blocks[di*nd+dj][ca*npe+cb]
						}
					}
					idx = plan.applyBlock(vals, idx, int(conA.N)*int(conB.N), blk, nd)
				}
			}
		}
	}
}

// scatterKe distributes the node-major elemental matrix through the
// hanging constraints into mat (cold path).
func (a *Assembler) scatterKe(mat *la.BSRMat, layout Layout, e int) {
	ws := &a.ws[0]
	cpe := a.M.CornersPerElem()
	nd := a.Ndof
	n := a.Ref.NPE * nd
	for ca := 0; ca < cpe; ca++ {
		conA := &a.M.Conn[e*cpe+ca]
		for cb := 0; cb < cpe; cb++ {
			conB := &a.M.Conn[e*cpe+cb]
			// Extract the ndof x ndof corner block from node-major Ke.
			for di := 0; di < nd; di++ {
				for dj := 0; dj < nd; dj++ {
					ws.blk[di*nd+dj] = ws.ke[(ca*nd+di)*n+cb*nd+dj]
				}
			}
			a.distributeBlock(mat, layout, conA, conB, ws.blk)
		}
	}
}

// distributeBlock adds blk (ndof x ndof) at every donor pair of the two
// constraints, weighted, routing remotely-owned rows to the off-process
// buffer.
func (a *Assembler) distributeBlock(mat *la.BSRMat, layout Layout, conA, conB *mesh.Constraint, blk []float64) {
	m := a.M
	nd := a.Ndof
	me := int32(m.Comm.Rank())
	for i := 0; i < int(conA.N); i++ {
		rowNode := int(conA.Idx[i])
		wi := conA.W[i]
		for j := 0; j < int(conB.N); j++ {
			colNode := int(conB.Idx[j])
			w := wi * conB.W[j]
			if m.Owner[rowNode] != me {
				var ent offProc
				ent.Row = m.Keys[rowNode]
				ent.Col = m.Keys[colNode]
				for k := 0; k < nd*nd; k++ {
					ent.V[k] = w * blk[k]
				}
				a.off.add(int(m.Owner[rowNode]), ent)
				continue
			}
			switch layout {
			case LayoutAIJ:
				// Strided scalar writes, the baseline pattern of Fig. 3.
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						mat.AddValue(rowNode*nd+di, colNode*nd+dj, w*blk[di*nd+dj])
					}
				}
			default:
				if w == 1 {
					mat.AddBlock(rowNode, colNode, blk)
				} else {
					var tmp [16]float64
					for k := 0; k < nd*nd; k++ {
						tmp[k] = w * blk[k]
					}
					mat.AddBlock(rowNode, colNode, tmp[:nd*nd])
				}
			}
		}
	}
}

// offProcBuf buffers remote-row contributions per destination rank. One
// buffer lives on the Assembler and is reset (capacity kept) between
// assemblies instead of reallocated.
type offProcBuf struct {
	dests []int
	bufs  [][]offProc
	pos   map[int]int // rank -> index into dests/bufs
}

func newOffProcBuf() *offProcBuf { return &offProcBuf{pos: map[int]int{}} }

// reset empties every per-destination slice, keeping capacity and the
// destination set (the neighbour ranks of a fixed mesh do not change).
func (b *offProcBuf) reset() {
	for i := range b.bufs {
		b.bufs[i] = b.bufs[i][:0]
	}
}

// clear additionally drops the destination set itself (the neighbour
// ranks change when the assembler is rebound to a remeshed domain).
func (b *offProcBuf) clear() {
	b.dests = b.dests[:0]
	b.bufs = b.bufs[:0]
	clear(b.pos)
}

func (b *offProcBuf) add(rank int, e offProc) {
	i, ok := b.pos[rank]
	if !ok {
		i = len(b.dests)
		b.pos[rank] = i
		b.dests = append(b.dests, rank)
		b.bufs = append(b.bufs, nil)
	}
	b.bufs[i] = append(b.bufs[i], e)
}

// srcOrder returns indices of srcs in ascending source-rank order, so
// received contributions are applied in a deterministic order regardless
// of message arrival (required for warm reassembly to reproduce the cold
// values bit for bit).
func srcOrder(srcs []int) []int {
	order := make([]int, len(srcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return srcs[order[i]] < srcs[order[j]] })
	return order
}

// flushOffProc exchanges buffered remote-row contributions and applies the
// received ones locally (cold path). The trailing barrier lets senders
// safely reuse their buffers next assembly: payloads travel by reference
// in the in-process runtime.
func (a *Assembler) flushOffProc(mat *la.BSRMat, layout Layout) {
	c := a.M.Comm
	if c.Size() == 1 {
		return
	}
	srcs, recvd := par.NBXExchange(c, a.off.dests, a.off.bufs)
	nd := a.Ndof
	for _, bi := range srcOrder(srcs) {
		for _, ent := range recvd[bi] {
			rowNode, ok := a.M.NodeIndex(ent.Row)
			if !ok {
				panic(fmt.Sprintf("fem: off-process row %v unknown on owner", ent.Row))
			}
			colNode, ok := a.M.NodeIndex(ent.Col)
			if !ok {
				panic(fmt.Sprintf("fem: off-process column %v unknown on rank %d", ent.Col, c.Rank()))
			}
			if layout == LayoutAIJ {
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						mat.AddValue(rowNode*nd+di, colNode*nd+dj, ent.V[di*nd+dj])
					}
				}
			} else {
				mat.AddBlock(rowNode, colNode, ent.V[:nd*nd])
			}
		}
	}
	c.Barrier()
}

// flushPlanned exchanges the plan's prefilled off-process buffers and
// applies received contributions through per-source receive plans
// (precomputed slots, no node-index map lookups after the first flush).
func (a *Assembler) flushPlanned(mat *la.BSRMat, plan *AssemblyPlan) {
	c := a.M.Comm
	if c.Size() == 1 {
		return
	}
	srcs, recvd := par.NBXExchange(c, plan.offDests, plan.offBufs)
	vals := mat.Vals()
	for _, bi := range srcOrder(srcs) {
		rp := plan.recvPlanFor(a, srcs[bi], recvd[bi])
		rp.apply(vals, recvd[bi], plan.scalar, a.Ndof)
	}
	c.Barrier()
}

// VecKernel fills the node-major elemental vector fe[a*ndof+d].
type VecKernel func(e int, h float64, fe []float64)

// AssembleVector accumulates elemental vectors into v (full local layout)
// and pushes ghost contributions to owners. This is the serial reference
// path (and the bitwise contract AssembleVectorPlanned is tested
// against); hot-loop callers use the sharded, allocation-free planned
// variant in vecplan.go. Collective.
func (a *Assembler) AssembleVector(v []float64, kern VecKernel) {
	for i := range v {
		v[i] = 0
	}
	cpe := a.M.CornersPerElem()
	fe := make([]float64, cpe*a.Ndof)
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range fe {
			fe[i] = 0
		}
		kern(e, a.M.ElemSize(e), fe)
		a.M.ScatterAddElem(e, fe, a.Ndof, v)
	}
	a.M.GhostWrite(v, a.Ndof, mesh.Add, 0)
}

// ZippedVecKernel fills the dof-major (zipped) elemental vector
// fz[d*npe+a].
type ZippedVecKernel func(e int, h float64, fz []float64)

// AssembleVectorZipped is the stage-2 vector path: kernels produce zipped
// (dof-contiguous) elemental vectors via DGEMV, which are unzipped before
// the constraint scatter. Collective.
func (a *Assembler) AssembleVectorZipped(v []float64, kern ZippedVecKernel) {
	for i := range v {
		v[i] = 0
	}
	cpe := a.M.CornersPerElem()
	fz := make([]float64, cpe*a.Ndof)
	fe := make([]float64, cpe*a.Ndof)
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range fz {
			fz[i] = 0
		}
		kern(e, a.M.ElemSize(e), fz)
		UnzipVec(a.Ndof, cpe, fz, fe)
		a.M.ScatterAddElem(e, fe, a.Ndof, v)
	}
	a.M.GhostWrite(v, a.Ndof, mesh.Add, 0)
}
