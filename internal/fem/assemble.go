package fem

import (
	"fmt"

	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/par"
)

// NodeMajorKernel fills the elemental matrix Ke for element e in
// node-major layout: Ke[(a*ndof+di)*(npe*ndof) + b*ndof+dj].
type NodeMajorKernel func(e int, h float64, ke []float64)

// ZippedKernel fills dof-pair-major blocks for element e:
// blocks[di*ndof+dj] is a contiguous npe x npe scalar block (the zipped
// layout produced by the GEMM operators).
type ZippedKernel func(e int, h float64, blocks [][]float64)

// offProc is a matrix contribution destined for a remote owner of the row
// node. Blocks are at most 4x4 (ndof <= 4).
type offProc struct {
	Row, Col mesh.NodeKey
	V        [16]float64
}

const tagOffProc = 103

// Layout selects the storage/assembly strategy of Table I.
type Layout int

// Assembly layouts benchmarked in Table I.
const (
	// LayoutAIJ is the baseline: scalar CSR with per-DOF strided writes.
	LayoutAIJ Layout = iota
	// LayoutBAIJ is stage 1: node-blocked storage, one block write per
	// node pair.
	LayoutBAIJ
	// LayoutZipped is stage 2: GEMM-produced zipped blocks unzipped
	// directly into block storage.
	LayoutZipped
)

// NewMatrix allocates an empty matrix matching the layout: scalar AIJ for
// the baseline, BAIJ otherwise.
func NewMatrix(m *mesh.Mesh, ndof int, layout Layout) *la.BSRMat {
	if layout == LayoutAIJ {
		return la.NewAIJ(m, ndof, m.NumOwned, m.NumLocal)
	}
	return la.NewBAIJ(m, ndof, m.NumOwned, m.NumLocal)
}

// Assembler drives distributed matrix and vector assembly over a mesh.
type Assembler struct {
	M    *mesh.Mesh
	Ref  *Ref
	Ndof int

	// scratch
	ke     []float64
	blocks [][]float64
	blk    []float64
	femWk  *GemmWork
}

// NewAssembler builds an assembler for ndof unknowns per node.
func NewAssembler(m *mesh.Mesh, ndof int) *Assembler {
	r := NewRef(m.Dim)
	if ndof > 4 {
		panic("fem: ndof > 4 unsupported by off-process block buffer")
	}
	a := &Assembler{M: m, Ref: r, Ndof: ndof}
	n := r.NPE * ndof
	a.ke = make([]float64, n*n)
	a.blocks = make([][]float64, ndof*ndof)
	for i := range a.blocks {
		a.blocks[i] = make([]float64, r.NPE*r.NPE)
	}
	a.blk = make([]float64, ndof*ndof)
	a.femWk = NewGemmWork(r)
	return a
}

// Work returns the assembler's GEMM scratch (for zipped kernels).
func (a *Assembler) Work() *GemmWork { return a.femWk }

// AssembleMatrix runs the element loop with the node-major kernel and
// accumulates into mat using the requested layout (LayoutAIJ or
// LayoutBAIJ). Contributions to rows owned remotely are exchanged with
// NBX at the end (PETSc's off-process assembly). Collective.
func (a *Assembler) AssembleMatrix(mat *la.BSRMat, layout Layout, kern NodeMajorKernel) {
	if layout == LayoutZipped {
		panic("fem: use AssembleMatrixZipped for the zipped layout")
	}
	off := newOffProcBuf()
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range a.ke {
			a.ke[i] = 0
		}
		kern(e, a.M.ElemSize(e), a.ke)
		a.scatterKe(mat, layout, e, off)
	}
	a.flushOffProc(mat, layout, off)
}

// AssembleMatrixZipped runs the element loop with a zipped kernel; blocks
// are unzipped per node pair straight into BAIJ block writes. Collective.
func (a *Assembler) AssembleMatrixZipped(mat *la.BSRMat, kern ZippedKernel) {
	off := newOffProcBuf()
	npe := a.Ref.NPE
	nd := a.Ndof
	for e := 0; e < a.M.NumElems(); e++ {
		for _, b := range a.blocks {
			for i := range b {
				b[i] = 0
			}
		}
		kern(e, a.M.ElemSize(e), a.blocks)
		// Unzip per node pair: gather the ndof x ndof block for (a,b)
		// from the contiguous dof-pair blocks.
		cpe := a.M.CornersPerElem()
		for ca := 0; ca < cpe; ca++ {
			conA := &a.M.Conn[e*cpe+ca]
			for cb := 0; cb < cpe; cb++ {
				conB := &a.M.Conn[e*cpe+cb]
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						a.blk[di*nd+dj] = a.blocks[di*nd+dj][ca*npe+cb]
					}
				}
				a.distributeBlock(mat, LayoutBAIJ, conA, conB, a.blk, off)
			}
		}
	}
	a.flushOffProc(mat, LayoutBAIJ, off)
}

// scatterKe distributes the node-major elemental matrix through the
// hanging constraints into mat.
func (a *Assembler) scatterKe(mat *la.BSRMat, layout Layout, e int, off *offProcBuf) {
	cpe := a.M.CornersPerElem()
	nd := a.Ndof
	n := a.Ref.NPE * nd
	for ca := 0; ca < cpe; ca++ {
		conA := &a.M.Conn[e*cpe+ca]
		for cb := 0; cb < cpe; cb++ {
			conB := &a.M.Conn[e*cpe+cb]
			// Extract the ndof x ndof corner block from node-major Ke.
			for di := 0; di < nd; di++ {
				for dj := 0; dj < nd; dj++ {
					a.blk[di*nd+dj] = a.ke[(ca*nd+di)*n+cb*nd+dj]
				}
			}
			a.distributeBlock(mat, layout, conA, conB, a.blk, off)
		}
	}
}

// distributeBlock adds blk (ndof x ndof) at every donor pair of the two
// constraints, weighted, routing remotely-owned rows to the off-process
// buffer.
func (a *Assembler) distributeBlock(mat *la.BSRMat, layout Layout, conA, conB *mesh.Constraint, blk []float64, off *offProcBuf) {
	m := a.M
	nd := a.Ndof
	me := int32(m.Comm.Rank())
	for i := 0; i < int(conA.N); i++ {
		rowNode := int(conA.Idx[i])
		wi := conA.W[i]
		for j := 0; j < int(conB.N); j++ {
			colNode := int(conB.Idx[j])
			w := wi * conB.W[j]
			if m.Owner[rowNode] != me {
				var ent offProc
				ent.Row = m.Keys[rowNode]
				ent.Col = m.Keys[colNode]
				for k := 0; k < nd*nd; k++ {
					ent.V[k] = w * blk[k]
				}
				off.add(int(m.Owner[rowNode]), ent)
				continue
			}
			switch layout {
			case LayoutAIJ:
				// Strided scalar writes, the baseline pattern of Fig. 3.
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						mat.AddValue(rowNode*nd+di, colNode*nd+dj, w*blk[di*nd+dj])
					}
				}
			default:
				if w == 1 {
					mat.AddBlock(rowNode, colNode, blk)
				} else {
					var tmp [16]float64
					for k := 0; k < nd*nd; k++ {
						tmp[k] = w * blk[k]
					}
					mat.AddBlock(rowNode, colNode, tmp[:nd*nd])
				}
			}
		}
	}
}

type offProcBuf struct {
	perRank map[int][]offProc
}

func newOffProcBuf() *offProcBuf { return &offProcBuf{perRank: map[int][]offProc{}} }

func (b *offProcBuf) add(rank int, e offProc) { b.perRank[rank] = append(b.perRank[rank], e) }

// flushOffProc exchanges buffered remote-row contributions and applies the
// received ones locally.
func (a *Assembler) flushOffProc(mat *la.BSRMat, layout Layout, off *offProcBuf) {
	c := a.M.Comm
	if c.Size() == 1 {
		return
	}
	dests := make([]int, 0, len(off.perRank))
	bufs := make([][]offProc, 0, len(off.perRank))
	for r, lst := range off.perRank {
		dests = append(dests, r)
		bufs = append(bufs, lst)
	}
	_, recvd := par.NBXExchange(c, dests, bufs)
	nd := a.Ndof
	for _, batch := range recvd {
		for _, ent := range batch {
			rowNode, ok := a.M.NodeIndex(ent.Row)
			if !ok {
				panic(fmt.Sprintf("fem: off-process row %v unknown on owner", ent.Row))
			}
			colNode, ok := a.M.NodeIndex(ent.Col)
			if !ok {
				panic(fmt.Sprintf("fem: off-process column %v unknown on rank %d", ent.Col, c.Rank()))
			}
			if layout == LayoutAIJ {
				for di := 0; di < nd; di++ {
					for dj := 0; dj < nd; dj++ {
						mat.AddValue(rowNode*nd+di, colNode*nd+dj, ent.V[di*nd+dj])
					}
				}
			} else {
				mat.AddBlock(rowNode, colNode, ent.V[:nd*nd])
			}
		}
	}
}

// VecKernel fills the node-major elemental vector fe[a*ndof+d].
type VecKernel func(e int, h float64, fe []float64)

// AssembleVector accumulates elemental vectors into v (full local layout)
// and pushes ghost contributions to owners. Collective.
func (a *Assembler) AssembleVector(v []float64, kern VecKernel) {
	for i := range v {
		v[i] = 0
	}
	cpe := a.M.CornersPerElem()
	fe := make([]float64, cpe*a.Ndof)
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range fe {
			fe[i] = 0
		}
		kern(e, a.M.ElemSize(e), fe)
		a.M.ScatterAddElem(e, fe, a.Ndof, v)
	}
	a.M.GhostWrite(v, a.Ndof, mesh.Add, 0)
}

// ZippedVecKernel fills the dof-major (zipped) elemental vector
// fz[d*npe+a].
type ZippedVecKernel func(e int, h float64, fz []float64)

// AssembleVectorZipped is the stage-2 vector path: kernels produce zipped
// (dof-contiguous) elemental vectors via DGEMV, which are unzipped before
// the constraint scatter. Collective.
func (a *Assembler) AssembleVectorZipped(v []float64, kern ZippedVecKernel) {
	for i := range v {
		v[i] = 0
	}
	cpe := a.M.CornersPerElem()
	fz := make([]float64, cpe*a.Ndof)
	fe := make([]float64, cpe*a.Ndof)
	for e := 0; e < a.M.NumElems(); e++ {
		for i := range fz {
			fz[i] = 0
		}
		kern(e, a.M.ElemSize(e), fz)
		UnzipVec(a.Ndof, cpe, fz, fe)
		a.M.ScatterAddElem(e, fe, a.Ndof, v)
	}
	a.M.GhostWrite(v, a.Ndof, mesh.Add, 0)
}
