package fem

import "proteus/internal/blas"

// Stage-2 elemental operators (Sec. III-A): every operator is expressed as
// a matrix-matrix product over quadrature matrices, L = Q1^T diag(w) Q2,
// evaluated with the blas DGEMM kernels instead of explicit Gauss loops.
// The outputs are contiguous NPE x NPE scalar blocks — the "zipped"
// layout — which the zipped assembly path scatters into block storage.

// GemmWork holds per-element scratch so GEMM-based kernels do not
// allocate. One GemmWork per goroutine.
type GemmWork struct {
	wq     []float64 // NG scaled weights
	scaled []float64 // NG x NPE scaled copy of N or G_d
	vg     []float64 // NG x Dim field at Gauss points
	big    []float64 // (NG*Dim) x NPE scratch
}

// NewGemmWork allocates scratch for the reference element.
func NewGemmWork(r *Ref) *GemmWork {
	return &GemmWork{
		wq:     make([]float64, r.NG),
		scaled: make([]float64, r.NG*r.NPE),
		vg:     make([]float64, r.NG*3),
		big:    make([]float64, r.NG*r.Dim*r.NPE),
	}
}

// CoefAtGauss interpolates a nodal coefficient to all Gauss points:
// out = N * nodal (one DGEMV).
func (r *Ref) CoefAtGauss(nodal []float64, out []float64) {
	blas.Dgemv(r.NG, r.NPE, 1, r.N, nodal, 0, out)
}

// MassGemm computes out = scale * N^T diag(w_g h^d c_g) N. coefG may be
// nil for a unit coefficient; otherwise it holds the coefficient at Gauss
// points.
func (r *Ref) MassGemm(w *GemmWork, h, scale float64, coefG []float64, out []float64) {
	vol := pow(h, r.Dim) * scale
	for g := 0; g < r.NG; g++ {
		f := r.W[g] * vol
		if coefG != nil {
			f *= coefG[g]
		}
		base := g * r.NPE
		for a := 0; a < r.NPE; a++ {
			w.scaled[base+a] = f * r.N[base+a]
		}
	}
	blas.DgemmTA(r.NPE, r.NPE, r.NG, 1, r.N, w.scaled, 0, out)
}

// StiffGemm computes out = scale * sum_d G_d^T diag(w_g h^{d-2} c_g) G_d
// with the per-dimension gradient matrices stacked into one
// (NG*Dim) x NPE product.
func (r *Ref) StiffGemm(w *GemmWork, h, scale float64, coefG []float64, out []float64) {
	f0 := pow(h, r.Dim-2) * scale
	nd := r.Dim
	need := nd * r.NG * r.NPE
	if cap(w.scaled) < need {
		w.scaled = make([]float64, need)
	}
	sc := w.scaled[:need]
	// big[(d*NG+g)*NPE+a] = DN[g,a,d]; sc is its row-scaled copy.
	for d := 0; d < nd; d++ {
		for g := 0; g < r.NG; g++ {
			f := r.W[g] * f0
			if coefG != nil {
				f *= coefG[g]
			}
			row := (d*r.NG + g) * r.NPE
			for a := 0; a < r.NPE; a++ {
				v := r.DN[(g*r.NPE+a)*nd+d]
				w.big[row+a] = v
				sc[row+a] = f * v
			}
		}
	}
	blas.DgemmTA(r.NPE, r.NPE, nd*r.NG, 1, w.big[:need], sc, 0, out)
}

// ConvGemm computes out = scale * N^T diag(w_g h^{d-1}) [sum_d v_d(g) G_d]
// with nodal velocity vel[a*Dim+d].
func (r *Ref) ConvGemm(w *GemmWork, h, scale float64, vel []float64, out []float64) {
	nd := r.Dim
	// Velocity at Gauss points: vg = N * vel (dof-major via Dim gemvs on
	// the zipped velocity — here we just stride).
	for d := 0; d < nd; d++ {
		for g := 0; g < r.NG; g++ {
			var s float64
			for a := 0; a < r.NPE; a++ {
				s += r.N[g*r.NPE+a] * vel[a*nd+d]
			}
			w.vg[g*nd+d] = s
		}
	}
	f0 := pow(h, r.Dim-1) * scale
	// scaled[g,a] = w_g f0 * sum_d v_d(g) DN[g,a,d]
	for g := 0; g < r.NG; g++ {
		f := r.W[g] * f0
		for a := 0; a < r.NPE; a++ {
			var s float64
			for d := 0; d < nd; d++ {
				s += w.vg[g*nd+d] * r.DN[(g*r.NPE+a)*nd+d]
			}
			w.scaled[g*r.NPE+a] = f * s
		}
	}
	blas.DgemmTA(r.NPE, r.NPE, r.NG, 1, r.N, w.scaled[:r.NG*r.NPE], 0, out)
}

// LoadGemm computes the load vector out_a = scale * (N^T diag(w h^d) fG)_a
// with the source already at Gauss points.
func (r *Ref) LoadGemm(w *GemmWork, h, scale float64, fG []float64, out []float64) {
	vol := pow(h, r.Dim) * scale
	for g := 0; g < r.NG; g++ {
		w.wq[g] = r.W[g] * vol * fG[g]
	}
	blas.DgemvT(r.NG, r.NPE, 1, r.N, w.wq, 0, out)
}

// ZipVec reorders a node-major elemental vector (a*ndof+d) into dof-major
// (d*npe+a) — the "zip" of Fig. 3a.
func ZipVec(ndof, npe int, in, out []float64) {
	for a := 0; a < npe; a++ {
		for d := 0; d < ndof; d++ {
			out[d*npe+a] = in[a*ndof+d]
		}
	}
}

// UnzipVec reverses ZipVec.
func UnzipVec(ndof, npe int, in, out []float64) {
	for d := 0; d < ndof; d++ {
		for a := 0; a < npe; a++ {
			out[a*ndof+d] = in[d*npe+a]
		}
	}
}

// UnzipMat scatters dof-pair-major blocks (blocks[di*ndof+dj] of npe x npe)
// into a node-major elemental matrix Ke of size (npe*ndof)^2 — the
// "unzip" of Fig. 3b.
func UnzipMat(ndof, npe int, blocks [][]float64, ke []float64) {
	n := npe * ndof
	for di := 0; di < ndof; di++ {
		for dj := 0; dj < ndof; dj++ {
			blk := blocks[di*ndof+dj]
			for a := 0; a < npe; a++ {
				row := (a*ndof + di) * n
				for b := 0; b < npe; b++ {
					ke[row+b*ndof+dj] = blk[a*npe+b]
				}
			}
		}
	}
}

// ZipMat extracts dof-pair blocks from a node-major elemental matrix.
func ZipMat(ndof, npe int, ke []float64, blocks [][]float64) {
	n := npe * ndof
	for di := 0; di < ndof; di++ {
		for dj := 0; dj < ndof; dj++ {
			blk := blocks[di*ndof+dj]
			for a := 0; a < npe; a++ {
				row := (a*ndof + di) * n
				for b := 0; b < npe; b++ {
					blk[a*npe+b] = ke[row+b*ndof+dj]
				}
			}
		}
	}
}
