package fem

// Elemental operators computed with explicit Gauss-point loops — the
// formulation the baseline and stage-1 assembly paths use. All matrices
// are NPE x NPE row-major scalar blocks for an element of physical side h.

// Mass accumulates the consistent mass matrix: out += ∫ N_a N_b dV.
func (r *Ref) Mass(h float64, scale float64, out []float64) {
	vol := pow(h, r.Dim)
	for g := 0; g < r.NG; g++ {
		w := r.W[g] * vol * scale
		ng := r.N[g*r.NPE : (g+1)*r.NPE]
		for a := 0; a < r.NPE; a++ {
			wa := w * ng[a]
			for b := 0; b < r.NPE; b++ {
				out[a*r.NPE+b] += wa * ng[b]
			}
		}
	}
}

// WeightedMass accumulates ∫ c(x) N_a N_b dV with c given at corners.
func (r *Ref) WeightedMass(h float64, coef []float64, scale float64, out []float64) {
	vol := pow(h, r.Dim)
	for g := 0; g < r.NG; g++ {
		w := r.W[g] * vol * scale * r.AtGauss(g, coef)
		ng := r.N[g*r.NPE : (g+1)*r.NPE]
		for a := 0; a < r.NPE; a++ {
			wa := w * ng[a]
			for b := 0; b < r.NPE; b++ {
				out[a*r.NPE+b] += wa * ng[b]
			}
		}
	}
}

// Stiffness accumulates ∫ ∇N_a · ∇N_b dV.
func (r *Ref) Stiffness(h float64, scale float64, out []float64) {
	// Gradients carry 1/h each; volume h^d: net h^(d-2).
	f := pow(h, r.Dim-2) * scale
	for g := 0; g < r.NG; g++ {
		w := r.W[g] * f
		for a := 0; a < r.NPE; a++ {
			da := r.DN[(g*r.NPE+a)*r.Dim : (g*r.NPE+a+1)*r.Dim]
			for b := 0; b < r.NPE; b++ {
				db := r.DN[(g*r.NPE+b)*r.Dim : (g*r.NPE+b+1)*r.Dim]
				var s float64
				for d := 0; d < r.Dim; d++ {
					s += da[d] * db[d]
				}
				out[a*r.NPE+b] += w * s
			}
		}
	}
}

// WeightedStiffness accumulates ∫ c(x) ∇N_a · ∇N_b dV with c at corners.
func (r *Ref) WeightedStiffness(h float64, coef []float64, scale float64, out []float64) {
	f := pow(h, r.Dim-2) * scale
	for g := 0; g < r.NG; g++ {
		w := r.W[g] * f * r.AtGauss(g, coef)
		for a := 0; a < r.NPE; a++ {
			da := r.DN[(g*r.NPE+a)*r.Dim : (g*r.NPE+a+1)*r.Dim]
			for b := 0; b < r.NPE; b++ {
				db := r.DN[(g*r.NPE+b)*r.Dim : (g*r.NPE+b+1)*r.Dim]
				var s float64
				for d := 0; d < r.Dim; d++ {
					s += da[d] * db[d]
				}
				out[a*r.NPE+b] += w * s
			}
		}
	}
}

// Convection accumulates ∫ N_a (v·∇N_b) dV with velocity components given
// at corners, vel[c*Dim+d].
func (r *Ref) Convection(h float64, vel []float64, scale float64, out []float64) {
	f := pow(h, r.Dim-1) * scale // one gradient: h^d * (1/h)
	var vg [3]float64
	for g := 0; g < r.NG; g++ {
		for d := 0; d < r.Dim; d++ {
			var s float64
			for a := 0; a < r.NPE; a++ {
				s += r.N[g*r.NPE+a] * vel[a*r.Dim+d]
			}
			vg[d] = s
		}
		w := r.W[g] * f
		ng := r.N[g*r.NPE : (g+1)*r.NPE]
		for a := 0; a < r.NPE; a++ {
			wa := w * ng[a]
			for b := 0; b < r.NPE; b++ {
				db := r.DN[(g*r.NPE+b)*r.Dim : (g*r.NPE+b+1)*r.Dim]
				var s float64
				for d := 0; d < r.Dim; d++ {
					s += vg[d] * db[d]
				}
				out[a*r.NPE+b] += wa * s
			}
		}
	}
}

// LoadVector accumulates ∫ f(x) N_a dV with f given at corners into
// out[a].
func (r *Ref) LoadVector(h float64, f []float64, scale float64, out []float64) {
	vol := pow(h, r.Dim) * scale
	for g := 0; g < r.NG; g++ {
		w := r.W[g] * vol * r.AtGauss(g, f)
		for a := 0; a < r.NPE; a++ {
			out[a] += w * r.N[g*r.NPE+a]
		}
	}
}

// GradDotVector accumulates ∫ (q · ∇N_a) dV with a vector field q given
// at corners (q[c*Dim+d]) into out[a] — the weak divergence operator.
func (r *Ref) GradDotVector(h float64, q []float64, scale float64, out []float64) {
	f := pow(h, r.Dim-1) * scale
	var qg [3]float64
	for g := 0; g < r.NG; g++ {
		for d := 0; d < r.Dim; d++ {
			var s float64
			for a := 0; a < r.NPE; a++ {
				s += r.N[g*r.NPE+a] * q[a*r.Dim+d]
			}
			qg[d] = s
		}
		w := r.W[g] * f
		for a := 0; a < r.NPE; a++ {
			da := r.DN[(g*r.NPE+a)*r.Dim : (g*r.NPE+a+1)*r.Dim]
			var s float64
			for d := 0; d < r.Dim; d++ {
				s += qg[d] * da[d]
			}
			out[a] += w * s
		}
	}
}
