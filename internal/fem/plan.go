package fem

import (
	"fmt"
	"sort"

	"proteus/internal/la"
	"proteus/internal/mesh"
)

// planEntry is one precomputed contribution destination: element loop ×
// corner pair × constraint-donor pair, in traversal order. Local entries
// carry the CSR slot (block slot for node-block layouts; the scalar base
// slot plus per-dof-row stride for AIJ); off-process entries carry the
// bit-complement of their index into the plan's prefilled send store.
type planEntry struct {
	w    float64
	slot int32 // >= 0: local slot; < 0: ^slot indexes offStore
	aux  int32 // AIJ local entries: scalar row stride (row nnz)
}

// AssemblyPlan freezes everything about matrix assembly that depends only
// on (mesh, ndof, layout): the destination slot of every elemental
// contribution and the off-process routing. It is built once from the
// first (cold, map-based) assembly; steady-state reassembly then runs as
// branch-light flat-array accumulation with zero map operations and zero
// per-element allocation — the persistent-sparsity counterpart of the
// paper's Table I assembly optimizations.
type AssemblyPlan struct {
	ndof   int
	scalar bool // AIJ (scalar CSR) addressing
	sp     *la.Sparsity

	// entries in traversal order; elemOff[e] is element e's first entry,
	// so shards of the parallel loop index independently.
	entries []planEntry
	elemOff []int32

	// Off-process sends: keys prefilled at plan build, values rewritten
	// each assembly. offBufs are rank-major views into offStore, in
	// ascending-rank order (offDests).
	offStore []offProc
	offDests []int
	offBufs  [][]offProc

	// recv[src] caches the receive-side slots for src's (static) batch;
	// built on the first warm flush, validated against the keys on every
	// later flush.
	recv []*recvPlan
}

// Sparsity returns the frozen pattern the plan addresses.
func (p *AssemblyPlan) Sparsity() *la.Sparsity { return p.sp }

// Entries returns the precomputed contribution count (diagnostics).
func (p *AssemblyPlan) Entries() int { return len(p.entries) }

// OffProcEntries returns the off-process contribution count.
func (p *AssemblyPlan) OffProcEntries() int { return len(p.offStore) }

// buildPlan walks the element loop exactly as distributeBlock does and
// resolves every contribution's destination against the frozen sparsity.
// Called once per layout after the first cold assembly finalizes mat.
func (a *Assembler) buildPlan(layout Layout, sp *la.Sparsity) *AssemblyPlan {
	m := a.M
	nd := a.Ndof
	cpe := m.CornersPerElem()
	me := int32(m.Comm.Rank())
	nE := m.NumElems()
	plan := &AssemblyPlan{ndof: nd, scalar: layout == LayoutAIJ, sp: sp}

	// Pass 1: entry counts per element (constraints make them uneven).
	plan.elemOff = make([]int32, nE+1)
	total := 0
	for e := 0; e < nE; e++ {
		for ca := 0; ca < cpe; ca++ {
			na := int(m.Conn[e*cpe+ca].N)
			for cb := 0; cb < cpe; cb++ {
				total += na * int(m.Conn[e*cpe+cb].N)
			}
		}
		plan.elemOff[e+1] = int32(total)
	}
	plan.entries = make([]planEntry, total)

	// Pass 2: resolve destinations. Off-process entries record their
	// destination rank and position within that rank's send buffer (the
	// traversal order per rank, matching the cold path's append order);
	// the flat store index is fixed up once the per-rank counts are known.
	type offTmp struct {
		entry    int32
		rank     int32
		pos      int32
		row, col mesh.NodeKey
	}
	var offs []offTmp
	rankCount := map[int]int{}
	idx := 0
	for e := 0; e < nE; e++ {
		for ca := 0; ca < cpe; ca++ {
			conA := &m.Conn[e*cpe+ca]
			for cb := 0; cb < cpe; cb++ {
				conB := &m.Conn[e*cpe+cb]
				for i := 0; i < int(conA.N); i++ {
					rowNode := int(conA.Idx[i])
					wi := conA.W[i]
					for j := 0; j < int(conB.N); j++ {
						colNode := int(conB.Idx[j])
						ent := &plan.entries[idx]
						ent.w = wi * conB.W[j]
						switch {
						case m.Owner[rowNode] != me:
							r := int(m.Owner[rowNode])
							pos := rankCount[r]
							rankCount[r] = pos + 1
							offs = append(offs, offTmp{
								entry: int32(idx), rank: int32(r), pos: int32(pos),
								row: m.Keys[rowNode], col: m.Keys[colNode],
							})
						case plan.scalar:
							base, stride := aijSlot(sp, rowNode, colNode, nd)
							ent.slot = int32(base)
							ent.aux = int32(stride)
						default:
							s := sp.FindSlot(rowNode, colNode)
							if s < 0 {
								panic(fmt.Sprintf("fem: plan block (%d,%d) missing from frozen sparsity", rowNode, colNode))
							}
							ent.slot = int32(s)
						}
						idx++
					}
				}
			}
		}
	}

	// Flatten the off-process store rank-major, ranks ascending.
	plan.offDests = make([]int, 0, len(rankCount))
	for r := range rankCount {
		plan.offDests = append(plan.offDests, r)
	}
	sort.Ints(plan.offDests)
	rankStart := make(map[int]int, len(rankCount))
	totalOff := 0
	for _, r := range plan.offDests {
		rankStart[r] = totalOff
		totalOff += rankCount[r]
	}
	plan.offStore = make([]offProc, totalOff)
	plan.offBufs = make([][]offProc, len(plan.offDests))
	for i, r := range plan.offDests {
		plan.offBufs[i] = plan.offStore[rankStart[r] : rankStart[r]+rankCount[r]]
	}
	for _, o := range offs {
		flat := rankStart[int(o.rank)] + int(o.pos)
		plan.offStore[flat].Row = o.row
		plan.offStore[flat].Col = o.col
		plan.entries[o.entry].slot = ^int32(flat)
	}
	return plan
}

// aijSlot resolves the scalar-CSR addressing of the ndof x ndof node
// block (rowNode, colNode): the slot of its first scalar entry plus the
// stride between consecutive dof rows. Assembly always writes full node
// blocks, so every scalar row of a node has the same column pattern; the
// layout is verified here (once, at plan build) and then trusted on the
// hot path.
func aijSlot(sp *la.Sparsity, rowNode, colNode, nd int) (base, stride int) {
	r0 := rowNode * nd
	base = sp.FindSlot(r0, colNode*nd)
	if base < 0 {
		panic(fmt.Sprintf("fem: plan entry (%d,%d) missing from frozen AIJ sparsity", rowNode, colNode))
	}
	stride = sp.RowLen(r0)
	for di := 0; di < nd; di++ {
		r := r0 + di
		if sp.RowLen(r) != stride {
			panic(fmt.Sprintf("fem: AIJ scalar rows of node %d have differing patterns", rowNode))
		}
		s := base + di*stride
		for dj := 0; dj < nd; dj++ {
			if sp.Cols[s+dj] != int32(colNode*nd+dj) {
				panic(fmt.Sprintf("fem: AIJ pattern of node %d not block-regular at column node %d", rowNode, colNode))
			}
		}
	}
	return base, stride
}

// applyBlock scatters one ndof x ndof corner-pair block through the n
// consecutive plan entries starting at idx and returns the next entry
// index. This is the entire warm-path inner loop: weighted flat-array
// adds for local slots, weighted value writes for off-process entries.
func (p *AssemblyPlan) applyBlock(vals []float64, idx int32, n int, blk []float64, nd int) int32 {
	bs2 := nd * nd
	for k := 0; k < n; k++ {
		ent := &p.entries[idx]
		idx++
		if ent.slot >= 0 {
			if p.scalar {
				base, stride := int(ent.slot), int(ent.aux)
				w := ent.w
				for di := 0; di < nd; di++ {
					row := base + di*stride
					for dj := 0; dj < nd; dj++ {
						vals[row+dj] += w * blk[di*nd+dj]
					}
				}
			} else {
				base := int(ent.slot) * bs2
				dst := vals[base : base+bs2]
				if w := ent.w; w == 1 {
					for i, v := range blk[:bs2] {
						dst[i] += v
					}
				} else {
					for i, v := range blk[:bs2] {
						dst[i] += w * v
					}
				}
			}
		} else {
			off := &p.offStore[^ent.slot]
			w := ent.w
			for i := 0; i < bs2; i++ {
				off.V[i] = w * blk[i]
			}
		}
	}
	return idx
}

// recvPlan caches the receive side of the off-process exchange for one
// source rank: the batch a fixed sender produces from a fixed mesh is
// static, so its destination slots are resolved once and only the keys
// are re-checked on later flushes.
type recvPlan struct {
	rows, cols []mesh.NodeKey
	slot, aux  []int32
}

// recvPlanFor returns the cached receive plan for src, (re)building it
// when the batch shape or keys changed.
func (p *AssemblyPlan) recvPlanFor(a *Assembler, src int, batch []offProc) *recvPlan {
	if p.recv == nil {
		p.recv = make([]*recvPlan, a.M.Comm.Size())
	}
	if rp := p.recv[src]; rp != nil && rp.matches(batch) {
		return rp
	}
	rp := a.buildRecvPlan(p, batch)
	p.recv[src] = rp
	return rp
}

func (rp *recvPlan) matches(batch []offProc) bool {
	if len(rp.rows) != len(batch) {
		return false
	}
	for k := range batch {
		if batch[k].Row != rp.rows[k] || batch[k].Col != rp.cols[k] {
			return false
		}
	}
	return true
}

func (a *Assembler) buildRecvPlan(p *AssemblyPlan, batch []offProc) *recvPlan {
	nd := a.Ndof
	rp := &recvPlan{
		rows: make([]mesh.NodeKey, len(batch)),
		cols: make([]mesh.NodeKey, len(batch)),
		slot: make([]int32, len(batch)),
		aux:  make([]int32, len(batch)),
	}
	for k := range batch {
		ent := &batch[k]
		rowNode, ok := a.M.NodeIndex(ent.Row)
		if !ok {
			panic(fmt.Sprintf("fem: off-process row %v unknown on owner", ent.Row))
		}
		colNode, ok := a.M.NodeIndex(ent.Col)
		if !ok {
			panic(fmt.Sprintf("fem: off-process column %v unknown on rank %d", ent.Col, a.M.Comm.Rank()))
		}
		rp.rows[k], rp.cols[k] = ent.Row, ent.Col
		if p.scalar {
			base, stride := aijSlot(p.sp, rowNode, colNode, nd)
			rp.slot[k] = int32(base)
			rp.aux[k] = int32(stride)
		} else {
			s := p.sp.FindSlot(rowNode, colNode)
			if s < 0 {
				panic(fmt.Sprintf("fem: received block (%d,%d) missing from frozen sparsity", rowNode, colNode))
			}
			rp.slot[k] = int32(s)
		}
	}
	return rp
}

// apply accumulates a received batch through the cached slots. The
// weights were folded in by the sender, so this is a plain add — the
// same value stream the cold path produces via AddBlock/AddValue.
func (rp *recvPlan) apply(vals []float64, batch []offProc, scalar bool, nd int) {
	bs2 := nd * nd
	for k := range batch {
		V := &batch[k].V
		if scalar {
			base, stride := int(rp.slot[k]), int(rp.aux[k])
			for di := 0; di < nd; di++ {
				row := base + di*stride
				for dj := 0; dj < nd; dj++ {
					vals[row+dj] += V[di*nd+dj]
				}
			}
		} else {
			base := int(rp.slot[k]) * bs2
			for i := 0; i < bs2; i++ {
				vals[base+i] += V[i]
			}
		}
	}
}
