package fem

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

func TestShapeFunctionsPartitionOfUnity(t *testing.T) {
	for _, dim := range []int{2, 3} {
		r := NewRef(dim)
		for g := 0; g < r.NG; g++ {
			var s float64
			var ds [3]float64
			for a := 0; a < r.NPE; a++ {
				s += r.N[g*r.NPE+a]
				for d := 0; d < dim; d++ {
					ds[d] += r.DN[(g*r.NPE+a)*dim+d]
				}
			}
			if math.Abs(s-1) > 1e-14 {
				t.Fatalf("dim=%d g=%d: sum N = %v", dim, g, s)
			}
			for d := 0; d < dim; d++ {
				if math.Abs(ds[d]) > 1e-14 {
					t.Fatalf("dim=%d g=%d: sum dN_%d = %v", dim, g, d, ds[d])
				}
			}
		}
		var w float64
		for g := 0; g < r.NG; g++ {
			w += r.W[g]
		}
		if math.Abs(w-1) > 1e-14 {
			t.Fatalf("dim=%d: weights sum %v", dim, w)
		}
	}
}

func TestShapeKroneckerAtCorners(t *testing.T) {
	for _, dim := range []int{2, 3} {
		r := NewRef(dim)
		out := make([]float64, r.NPE)
		x := make([]float64, dim)
		for c := 0; c < r.NPE; c++ {
			for d := 0; d < dim; d++ {
				x[d] = float64((c >> d) & 1)
			}
			r.Shape(x, out)
			for a := 0; a < r.NPE; a++ {
				want := 0.0
				if a == c {
					want = 1
				}
				if math.Abs(out[a]-want) > 1e-14 {
					t.Fatalf("dim=%d N_%d(corner %d) = %v", dim, a, c, out[a])
				}
			}
		}
	}
}

func TestMassMatrixIntegratesVolume(t *testing.T) {
	for _, dim := range []int{2, 3} {
		r := NewRef(dim)
		h := 0.25
		ke := make([]float64, r.NPE*r.NPE)
		r.Mass(h, 1, ke)
		var s float64
		for _, v := range ke {
			s += v
		}
		if math.Abs(s-pow(h, dim)) > 1e-14 {
			t.Fatalf("dim=%d: mass sum %v want %v", dim, s, pow(h, dim))
		}
	}
}

func TestStiffnessAnnihilatesConstants(t *testing.T) {
	for _, dim := range []int{2, 3} {
		r := NewRef(dim)
		h := 0.5
		ke := make([]float64, r.NPE*r.NPE)
		r.Stiffness(h, 1, ke)
		for a := 0; a < r.NPE; a++ {
			var s float64
			for b := 0; b < r.NPE; b++ {
				s += ke[a*r.NPE+b]
			}
			if math.Abs(s) > 1e-13 {
				t.Fatalf("dim=%d row %d: K*1 = %v", dim, a, s)
			}
		}
	}
}

func TestGemmOpsMatchLoopOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3} {
		r := NewRef(dim)
		w := NewGemmWork(r)
		h := 0.125
		coef := make([]float64, r.NPE)
		vel := make([]float64, r.NPE*dim)
		for i := range coef {
			coef[i] = 1 + rng.Float64()
		}
		for i := range vel {
			vel[i] = rng.NormFloat64()
		}
		coefG := make([]float64, r.NG)
		r.CoefAtGauss(coef, coefG)

		n2 := r.NPE * r.NPE
		a, b := make([]float64, n2), make([]float64, n2)

		r.Mass(h, 1.7, a)
		r.MassGemm(w, h, 1.7, nil, b)
		cmpSlices(t, "mass", a, b)

		clear64(a)
		clear64(b)
		r.WeightedMass(h, coef, 0.9, a)
		r.MassGemm(w, h, 0.9, coefG, b)
		cmpSlices(t, "wmass", a, b)

		clear64(a)
		clear64(b)
		r.Stiffness(h, 2.1, a)
		r.StiffGemm(w, h, 2.1, nil, b)
		cmpSlices(t, "stiff", a, b)

		clear64(a)
		clear64(b)
		r.WeightedStiffness(h, coef, 1.1, a)
		r.StiffGemm(w, h, 1.1, coefG, b)
		cmpSlices(t, "wstiff", a, b)

		clear64(a)
		clear64(b)
		r.Convection(h, vel, 1.3, a)
		r.ConvGemm(w, h, 1.3, vel, b)
		cmpSlices(t, "conv", a, b)

		// Load vector.
		f := make([]float64, r.NPE)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		fG := make([]float64, r.NG)
		r.CoefAtGauss(f, fG)
		va, vb := make([]float64, r.NPE), make([]float64, r.NPE)
		r.LoadVector(h, f, 0.7, va)
		r.LoadGemm(w, h, 0.7, fG, vb)
		cmpSlices(t, "load", va, vb)
	}
}

func clear64(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func cmpSlices(t *testing.T, name string, a, b []float64) {
	t.Helper()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("%s: entry %d: loop %v gemm %v", name, i, a[i], b[i])
		}
	}
}

func TestZipUnzipRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ndof, npe := 3, 8
	v := make([]float64, ndof*npe)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	z := make([]float64, len(v))
	back := make([]float64, len(v))
	ZipVec(ndof, npe, v, z)
	UnzipVec(ndof, npe, z, back)
	cmpSlices(t, "zipvec", v, back)

	n := ndof * npe
	ke := make([]float64, n*n)
	for i := range ke {
		ke[i] = rng.NormFloat64()
	}
	blocks := make([][]float64, ndof*ndof)
	for i := range blocks {
		blocks[i] = make([]float64, npe*npe)
	}
	ke2 := make([]float64, n*n)
	ZipMat(ndof, npe, ke, blocks)
	UnzipMat(ndof, npe, blocks, ke2)
	cmpSlices(t, "zipmat", ke, ke2)
}

// buildMesh constructs a balanced adaptive mesh for assembly tests.
func buildMesh(c *par.Comm, dim, base, fine int) *mesh.Mesh {
	tr := octree.Build(dim, func(o sfc.Octant) bool {
		if int(o.Level) < base {
			return true
		}
		if int(o.Level) >= fine {
			return false
		}
		s := float64(o.Side()) / float64(sfc.MaxCoord)
		x := float64(o.X)/float64(sfc.MaxCoord) + s/2
		y := float64(o.Y)/float64(sfc.MaxCoord) + s/2
		return math.Abs(x-0.5)+math.Abs(y-0.5) < 0.3
	}, fine, nil).Balance21(nil)
	p := c.Size()
	n := tr.Len()
	lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
	local := make([]sfc.Octant, hi-lo)
	copy(local, tr.Leaves[lo:hi])
	return mesh.New(c, dim, local)
}

func TestAssemblyLayoutsAgree(t *testing.T) {
	// AIJ, BAIJ, and zipped-GEMM assembly must produce the same operator.
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3} {
			par.Run(p, func(c *par.Comm) {
				m := buildMesh(c, dim, 1, 3)
				ndof := 2
				asm := NewAssembler(m, ndof)
				r := asm.Ref
				npe := r.NPE
				loopKern := func(w, e int, h float64, ke []float64) {
					// dof 0: mass + stiffness; dof 1: mass; coupling 0-1: 0.3*mass.
					blocks := make([][]float64, ndof*ndof)
					for i := range blocks {
						blocks[i] = make([]float64, npe*npe)
					}
					r.Mass(h, 1, blocks[0])
					r.Stiffness(h, 1, blocks[0])
					r.Mass(h, 0.3, blocks[1])
					r.Mass(h, 1, blocks[3])
					UnzipMat(ndof, npe, blocks, ke)
				}
				zipKern := func(w, e int, h float64, blocks [][]float64) {
					wk := asm.WorkN(w)
					r.MassGemm(wk, h, 1, nil, blocks[0])
					tmp := make([]float64, npe*npe)
					r.StiffGemm(wk, h, 1, nil, tmp)
					for i := range tmp {
						blocks[0][i] += tmp[i]
					}
					r.MassGemm(wk, h, 0.3, nil, blocks[1])
					r.MassGemm(wk, h, 1, nil, blocks[3])
				}
				aij := NewMatrix(m, ndof, LayoutAIJ)
				baij := NewMatrix(m, ndof, LayoutBAIJ)
				zipped := NewMatrix(m, ndof, LayoutZipped)
				asm.AssembleMatrix(aij, LayoutAIJ, loopKern)
				asm.AssembleMatrix(baij, LayoutBAIJ, loopKern)
				asm.AssembleMatrixZipped(zipped, zipKern)

				x := m.NewVec(ndof)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < m.NumOwned*ndof; i++ {
					x[i] = rng.NormFloat64()
				}
				y1 := m.NewVec(ndof)
				y2 := m.NewVec(ndof)
				y3 := m.NewVec(ndof)
				aij.Apply(append([]float64(nil), x...), y1)
				baij.Apply(append([]float64(nil), x...), y2)
				zipped.Apply(append([]float64(nil), x...), y3)
				for i := 0; i < m.NumOwned*ndof; i++ {
					if math.Abs(y1[i]-y2[i]) > 1e-10 || math.Abs(y1[i]-y3[i]) > 1e-10 {
						panic(fmt.Sprintf("dim=%d p=%d row %d: aij %v baij %v zip %v", dim, p, i, y1[i], y2[i], y3[i]))
					}
				}
			})
		}
	}
}

// solvePoisson assembles and solves -Δu = f with u=g on the boundary and
// returns the max nodal error against the exact solution.
func solvePoisson(c *par.Comm, dim, base, fine int) float64 {
	m := buildMesh(c, dim, base, fine)
	exact := func(x, y, z float64) float64 {
		if dim == 2 {
			return math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
		return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
	}
	rhs := func(x, y, z float64) float64 {
		return float64(dim) * math.Pi * math.Pi * exact(x, y, z)
	}
	asm := NewAssembler(m, 1)
	K := NewMatrix(m, 1, LayoutBAIJ)
	asm.AssembleMatrix(K, LayoutBAIJ, func(w, e int, h float64, ke []float64) {
		asm.Ref.Stiffness(h, 1, ke)
	})
	b := m.NewVec(1)
	asm.AssembleVector(b, func(e int, h float64, fe []float64) {
		f := make([]float64, asm.Ref.NPE)
		cpe := m.CornersPerElem()
		ox, oy, oz := m.ElemOrigin(e)
		for cx := 0; cx < cpe; cx++ {
			x := ox + h*float64(cx&1)
			y := oy + h*float64((cx>>1)&1)
			z := oz + h*float64((cx>>2)&1)
			f[cx] = rhs(x, y, z)
		}
		asm.Ref.LoadVector(h, f, 1, fe)
	})
	K.Finalize()
	for i := 0; i < m.NumOwned; i++ {
		if m.OnBoundary(i) {
			K.ZeroRow(i, 1)
			b[i] = 0
		}
	}
	x := m.NewVec(1)
	ksp := &la.KSP{Op: K, PC: la.NewPCBJacobiILU0(K), Red: m, Type: la.CG, Rtol: 1e-10}
	res, _ := ksp.Solve(b, x)
	if !res.Converged {
		panic("poisson CG did not converge")
	}
	var maxErr float64
	for i := 0; i < m.NumOwned; i++ {
		px, py, pz := m.NodeCoord(i)
		if e := math.Abs(x[i] - exact(px, py, pz)); e > maxErr {
			maxErr = e
		}
	}
	return m.GlobalMax(maxErr)
}

func TestPoissonConvergesSecondOrder(t *testing.T) {
	for _, p := range []int{1, 4} {
		var e1, e2 float64
		par.Run(p, func(c *par.Comm) {
			a := solvePoisson(c, 2, 3, 4)
			b := solvePoisson(c, 2, 4, 5)
			if c.Rank() == 0 {
				e1, e2 = a, b
			}
		})
		ratio := e1 / e2
		if ratio < 3.0 || ratio > 5.5 {
			t.Fatalf("p=%d: error ratio %v (e1=%g e2=%g), want ~4 for O(h^2)", p, ratio, e1, e2)
		}
	}
}

func TestPoisson3D(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		e := solvePoisson(c, 3, 2, 3)
		if c.Rank() == 0 && (e <= 0 || e > 0.2) {
			panic(fmt.Sprintf("3D poisson error %g out of range", e))
		}
	})
}

func TestVectorAssemblyPathsAgree(t *testing.T) {
	par.Run(2, func(c *par.Comm) {
		m := buildMesh(c, 2, 2, 4)
		ndof := 2
		asm := NewAssembler(m, ndof)
		r := asm.Ref
		npe := r.NPE
		src := make([]float64, npe)
		for i := range src {
			src[i] = float64(i + 1)
		}
		v1 := m.NewVec(ndof)
		v2 := m.NewVec(ndof)
		asm.AssembleVector(v1, func(e int, h float64, fe []float64) {
			tmp := make([]float64, npe)
			r.LoadVector(h, src, 1, tmp)
			for a := 0; a < npe; a++ {
				fe[a*ndof] += tmp[a]
				fe[a*ndof+1] += 2 * tmp[a]
			}
		})
		asm.AssembleVectorZipped(v2, func(e int, h float64, fz []float64) {
			w := asm.Work()
			fG := make([]float64, r.NG)
			r.CoefAtGauss(src, fG)
			tmp := make([]float64, npe)
			r.LoadGemm(w, h, 1, fG, tmp)
			for a := 0; a < npe; a++ {
				fz[a] += tmp[a]         // dof 0 block
				fz[npe+a] += 2 * tmp[a] // dof 1 block
			}
		})
		for i := 0; i < m.NumOwned*ndof; i++ {
			if math.Abs(v1[i]-v2[i]) > 1e-12 {
				panic(fmt.Sprintf("vector paths differ at %d: %v vs %v", i, v1[i], v2[i]))
			}
		}
	})
}
