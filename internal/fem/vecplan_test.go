package fem

import (
	"fmt"
	"testing"

	"proteus/internal/par"
)

// vecTestKernels builds deterministic element-dependent ndof=2 vector
// kernels (node-major and zipped) that are pure functions of (e, h) plus
// per-worker coefficient scratch, so they are valid under the sharded
// element loop and produce bit-identical elemental vectors on every
// invocation and at every worker count.
func vecTestKernels(asm *Assembler, nw int) (WorkerVecKernel, WorkerZippedVecKernel) {
	r := asm.Ref
	npe := r.NPE
	coef := make([][]float64, nw)
	for i := range coef {
		coef[i] = make([]float64, npe)
	}
	fill := func(w, e int, h float64, fe []float64, zipped bool) {
		c := coef[w]
		for a := 0; a < npe; a++ {
			c[a] = 1 + 0.1*float64((e+a)%7)
		}
		for d := 0; d < 2; d++ {
			for a := 0; a < npe; a++ {
				v := h * c[a] * float64(d+1)
				if zipped {
					fe[d*npe+a] += v
				} else {
					fe[a*2+d] += v
				}
			}
		}
	}
	loop := func(w, e int, h float64, fe []float64) { fill(w, e, h, fe, false) }
	zipped := func(w, e int, h float64, fz []float64) { fill(w, e, h, fz, true) }
	return loop, zipped
}

// TestVectorPlannedMatchesSerialBitwise is the vector-plan correctness
// contract: the sharded, store-and-gather planned path must reproduce
// the serial AssembleVector scatter bit for bit — in 2D and 3D, on
// meshes with hanging constraints, across ranks (exercising the
// ghost-overlap split write) and at every worker count (the gather sums
// contributions in canonical slot order, so sharding never reorders
// floating-point accumulation, unlike the matrix merge).
func TestVectorPlannedMatchesSerialBitwise(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 2, 4} {
			par.Run(p, func(c *par.Comm) {
				m := buildMesh(c, dim, 2, 4)
				if got := m.GlobalSum(float64(m.HangingCorners)); got == 0 {
					panic("vector plan test mesh has no hanging constraints")
				}
				asm := NewAssembler(m, 2)
				loop, zipped := vecTestKernels(asm, 4)

				ref := m.NewVec(2)
				asm.AssembleVector(ref, func(e int, h float64, fe []float64) {
					loop(0, e, h, fe)
				})
				refZ := m.NewVec(2)
				asm.AssembleVectorZipped(refZ, func(e int, h float64, fz []float64) {
					zipped(0, e, h, fz)
				})

				for _, nw := range []int{1, 2, 4} {
					asm.SetWorkers(nw)
					v := m.NewVec(2)
					asm.AssembleVectorPlanned(v, loop)
					mustEqualVec(c, fmt.Sprintf("planned dim=%d p=%d nw=%d", dim, p, nw), ref, v)
					vz := m.NewVec(2)
					asm.AssembleVectorZippedPlanned(vz, zipped)
					mustEqualVec(c, fmt.Sprintf("planned-zipped dim=%d p=%d nw=%d", dim, p, nw), refZ, vz)
				}

				// The per-assembly override knob pins the shard count
				// without touching the matrix workers.
				asm.SetWorkers(4)
				asm.SetVecWorkers(1)
				v := m.NewVec(2)
				asm.AssembleVectorPlanned(v, loop)
				mustEqualVec(c, fmt.Sprintf("vec-workers-knob dim=%d p=%d", dim, p), ref, v)
			})
		}
	}
}

func mustEqualVec(c *par.Comm, what string, want, got []float64) {
	if len(want) != len(got) {
		panic(fmt.Sprintf("%s: length %d != %d", what, len(got), len(want)))
	}
	for i := range want {
		if want[i] != got[i] {
			panic(fmt.Sprintf("%s rank=%d: v[%d] = %v, serial %v (diff %g)",
				what, c.Rank(), i, got[i], want[i], got[i]-want[i]))
		}
	}
}

// TestVectorPlannedZeroAllocs verifies the acceptance criterion for the
// warm planned vector path: with the plan built and a pool set, a whole
// sharded assembly (element phase, gather phase, pool dispatch)
// allocates nothing.
func TestVectorPlannedZeroAllocs(t *testing.T) {
	for _, nw := range []int{1, 2} {
		var allocs float64
		par.Run(1, func(c *par.Comm) {
			m := buildMesh(c, 2, 2, 4)
			asm := NewAssembler(m, 2)
			asm.SetWorkers(nw)
			pool := par.NewPool(nw)
			defer pool.Close()
			asm.SetPool(pool)
			loop, zipped := vecTestKernels(asm, nw)
			v := m.NewVec(2)
			asm.AssembleVectorPlanned(v, loop) // cold: builds the plan
			allocs = testing.AllocsPerRun(10, func() {
				asm.AssembleVectorPlanned(v, loop)
				asm.AssembleVectorZippedPlanned(v, zipped)
			})
		})
		if allocs != 0 {
			t.Fatalf("nw=%d: warm planned vector assembly allocates %v times per run, want 0", nw, allocs)
		}
	}
}

// TestVectorPlanInvalidatedByEpoch pins the remesh contract: an epoch
// bump drops the cached vector plan with the matrix plans, so the next
// assembly rebuilds it against the new mesh generation.
func TestVectorPlanInvalidatedByEpoch(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		m := buildMesh(c, 2, 2, 4)
		asm := NewAssembler(m, 2)
		loop, _ := vecTestKernels(asm, asm.Workers())
		v := m.NewVec(2)
		asm.AssembleVectorPlanned(v, loop)
		if asm.VecPlan() == nil {
			panic("planned vector assembly did not cache a plan")
		}
		asm.SetEpoch(asm.Epoch() + 1)
		if asm.VecPlan() != nil {
			panic("epoch bump did not drop the vector plan")
		}
		asm.AssembleVectorPlanned(v, loop)
		if asm.VecPlan() == nil {
			panic("post-epoch assembly did not rebuild the plan")
		}
	})
}
