package fem

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/octree"
	"proteus/internal/par"
	"proteus/internal/sfc"
)

// patchedPair builds an old mesh and a patched sibling over a perturbed
// forest that keeps the partition splitters stable, returning the old
// mesh, the patched mesh and its delta, plus a from-scratch mesh over the
// same forest for cold reference assembly.
func patchedPair(c *par.Comm, dim int, seed int64) (*mesh.Mesh, *mesh.Mesh, *mesh.Delta, *mesh.Mesh) {
	// Index-space protection cannot fully rule out a balance cascade
	// refining a rank's first leaf (which moves the splitters and makes
	// Patch fall back — collectively, so every rank retries in lockstep).
	for attempt := int64(0); attempt < 20; attempt++ {
		old, patched, delta, scratch := tryPatchedPair(c, dim, seed*131+attempt)
		if patched != nil {
			return old, patched, delta, scratch
		}
	}
	panic(fmt.Sprintf("dim=%d p=%d seed=%d: no perturbation kept the splitters stable", dim, c.Size(), seed))
}

func tryPatchedPair(c *par.Comm, dim int, seed int64) (*mesh.Mesh, *mesh.Mesh, *mesh.Delta, *mesh.Mesh) {
	p := c.Size()
	r := rand.New(rand.NewSource(seed))
	depth := 5
	if dim == 3 {
		depth = 4
	}
	base := octree.Build(dim, func(o sfc.Octant) bool { return r.Float64() < 0.45 }, depth, nil).Balance21(nil)
	n := base.Len()
	oldLocal := append([]sfc.Octant(nil), base.Leaves[c.Rank()*n/p:(c.Rank()+1)*n/p]...)
	old := mesh.New(c, dim, oldLocal)
	oldSpl := octree.GatherSplitters(c, oldLocal)

	// Perturb away from partition boundaries so Patch does not fall back.
	prot := func(i int) bool {
		for rk := 0; rk <= p; rk++ {
			b := rk * n / p
			if i >= b-8 && i <= b+8 {
				return true
			}
		}
		return false
	}
	rt := make([]int, n)
	for i, o := range base.Leaves {
		rt[i] = int(o.Level)
		if !prot(i) && r.Float64() < 0.1 {
			rt[i] = int(o.Level) + 1
		}
	}
	pert := base.Refine(rt, nil)
	var mine []sfc.Octant
	for _, o := range pert.Leaves {
		if oldSpl.Owner(o.FirstDescendant()) == c.Rank() {
			mine = append(mine, o)
		}
	}
	bal := octree.Balance21Distributed(c, dim, mine, nil)
	dirty := octree.AddedLeaves(oldLocal, bal)

	patched, delta := mesh.Patch(c, dim, append([]sfc.Octant(nil), bal...), old, dirty)
	if patched == nil {
		return nil, nil, nil, nil
	}
	scratch := mesh.New(c, dim, append([]sfc.Octant(nil), bal...))
	return old, patched, delta, scratch
}

// TestRebindPatchedMatchesColdBitwise is the fem-layer headline
// invariant: after a mesh patch, the repaired sparsity and plans must
// equal what a cold assembly on the patched mesh freezes, and plan-driven
// assembly through them must reproduce the cold values bit for bit — for
// all three layouts, serially and across ranks, with hanging constraints
// in the dirty region.
func TestRebindPatchedMatchesColdBitwise(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 2, 4} {
			for _, layout := range []Layout{LayoutAIJ, LayoutBAIJ, LayoutZipped} {
				par.Run(p, func(c *par.Comm) {
					old, patched, delta, scratch := patchedPair(c, dim, int64(3+p))

					asm := NewAssembler(old, 2)
					asm.SetWorkers(1)
					loop, zipped := planTestKernels(asm, 1)
					mat := NewMatrix(old, 2, layout)
					assembleOnce(asm, mat, layout, loop, zipped) // freeze old plan
					vold := make([]float64, old.NumLocal*2)
					asm.AssembleVectorPlanned(vold, func(w, e int, h float64, fe []float64) {
						for i := range fe {
							fe[i] = h * float64(e%5+1)
						}
					})

					asm.RebindPatched(patched, asm.Epoch()+1, delta)
					pp := asm.Plan(layout)
					if pp == nil {
						panic("RebindPatched dropped the plan")
					}

					// Cold reference on a from-scratch mesh over the same
					// forest (bitwise identical to `patched` by the mesh
					// patch invariant).
					ref := NewAssembler(scratch, 2)
					ref.SetWorkers(1)
					rloop, rzipped := planTestKernels(ref, 1)
					rmat := NewMatrix(scratch, 2, layout)
					assembleOnce(ref, rmat, layout, rloop, rzipped)
					rp := ref.Plan(layout)

					if err := sparsityEqual(pp.sp, rp.sp); err != nil {
						panic(fmt.Sprintf("dim=%d p=%d layout=%d rank=%d: patched sparsity: %v", dim, p, layout, c.Rank(), err))
					}
					if len(pp.entries) != len(rp.entries) {
						panic(fmt.Sprintf("dim=%d p=%d layout=%d: entries %d vs cold %d", dim, p, layout, len(pp.entries), len(rp.entries)))
					}
					for i := range pp.entries {
						if pp.entries[i] != rp.entries[i] {
							panic(fmt.Sprintf("dim=%d p=%d layout=%d rank=%d: entry %d = %+v, cold %+v",
								dim, p, layout, c.Rank(), i, pp.entries[i], rp.entries[i]))
						}
					}
					if len(pp.offStore) != len(rp.offStore) {
						panic(fmt.Sprintf("dim=%d p=%d layout=%d: off-proc store %d vs cold %d", dim, p, layout, len(pp.offStore), len(rp.offStore)))
					}
					for i := range pp.offStore {
						if pp.offStore[i].Row != rp.offStore[i].Row || pp.offStore[i].Col != rp.offStore[i].Col {
							panic(fmt.Sprintf("dim=%d p=%d layout=%d: off-proc key %d differs", dim, p, layout, i))
						}
					}

					// Warm assembly through the patched plan: the matrix is
					// born finalized from the repaired sparsity and the
					// values must equal the cold reference bitwise.
					mat2 := asm.NewMatrix(layout)
					if !mat2.Finalized() || mat2.Sparsity() != pp.sp {
						panic("patched NewMatrix did not share the repaired sparsity")
					}
					assembleOnce(asm, mat2, layout, loop, zipped)
					mustBitwise(c, "patched-warm", dim, p, layout, rmat.Vals(), mat2.Vals())

					// Patched vector plan: same contract against the serial
					// reference path on the patched mesh.
					vk := func(w, e int, h float64, fe []float64) {
						for i := range fe {
							fe[i] = h * float64(e%5+1)
						}
					}
					vgot := make([]float64, patched.NumLocal*2)
					asm.AssembleVectorPlanned(vgot, vk)
					vwant := make([]float64, patched.NumLocal*2)
					ref.AssembleVector(vwant, func(e int, h float64, fe []float64) { vk(0, e, h, fe) })
					for i := range vwant {
						if vwant[i] != vgot[i] {
							panic(fmt.Sprintf("dim=%d p=%d rank=%d: patched vector[%d] = %v, reference %v",
								dim, p, c.Rank(), i, vgot[i], vwant[i]))
						}
					}
					_ = vold
				})
			}
		}
	}
}

func sparsityEqual(a, b *la.Sparsity) error {
	if a.NRows != b.NRows {
		return fmt.Errorf("rows %d vs %d", a.NRows, b.NRows)
	}
	if len(a.Indptr) != len(b.Indptr) || len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("shape %d/%d vs %d/%d", len(a.Indptr), len(a.Cols), len(b.Indptr), len(b.Cols))
	}
	for i := range a.Indptr {
		if a.Indptr[i] != b.Indptr[i] {
			return fmt.Errorf("indptr[%d] %d vs %d", i, a.Indptr[i], b.Indptr[i])
		}
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return fmt.Errorf("cols[%d] %d vs %d", i, a.Cols[i], b.Cols[i])
		}
	}
	return nil
}

// TestRebindPatchedNoPlans: rebinding with no frozen plans must behave
// like Rebind (next assembly runs cold) and still participate in the
// collective exchange correctly when other ranks do hold plans is covered
// above; here the serial no-plan path.
func TestRebindPatchedNoPlans(t *testing.T) {
	par.Run(1, func(c *par.Comm) {
		old, patched, delta, _ := patchedPair(c, 2, 11)
		asm := NewAssembler(old, 2)
		asm.RebindPatched(patched, 1, delta)
		if asm.Plan(LayoutBAIJ) != nil || asm.Plan(LayoutAIJ) != nil || asm.VecPlan() != nil {
			panic("RebindPatched invented plans from nothing")
		}
		loop, zipped := planTestKernels(asm, 1)
		mat := NewMatrix(patched, 2, LayoutBAIJ)
		assembleOnce(asm, mat, LayoutBAIJ, loop, zipped)
		if asm.Plan(LayoutBAIJ) == nil {
			panic("cold assembly after RebindPatched did not freeze a plan")
		}
		s := 0.0
		for _, v := range mat.Vals() {
			s += v * v
		}
		if s == 0 || math.IsNaN(s) {
			panic("cold assembly after RebindPatched produced a zero/NaN operator")
		}
	})
}
