package fem

import (
	"fmt"
	"math"
	"testing"

	"proteus/internal/la"
	"proteus/internal/par"
)

// planTestKernels builds deterministic, element-dependent ndof=2 kernels
// with per-worker scratch, so they are valid under the sharded element
// loop and produce bit-identical elemental matrices on every invocation.
func planTestKernels(asm *Assembler, nw int) (NodeMajorKernel, ZippedKernel) {
	r := asm.Ref
	npe := r.NPE
	type scr struct {
		blocks [][]float64
		tmp    []float64
	}
	ws := make([]scr, nw)
	for i := range ws {
		ws[i].blocks = make([][]float64, 4)
		for j := range ws[i].blocks {
			ws[i].blocks[j] = make([]float64, npe*npe)
		}
		ws[i].tmp = make([]float64, npe*npe)
	}
	loop := func(w, e int, h float64, ke []float64) {
		sc := &ws[w]
		c := 1 + 0.1*float64(e%7)
		for _, b := range sc.blocks {
			for i := range b {
				b[i] = 0
			}
		}
		r.Mass(h, c, sc.blocks[0])
		r.Stiffness(h, 1, sc.blocks[0])
		r.Mass(h, 0.3*c, sc.blocks[1])
		r.Mass(h, c, sc.blocks[3])
		UnzipMat(2, npe, sc.blocks, ke)
	}
	zipped := func(w, e int, h float64, blocks [][]float64) {
		sc := &ws[w]
		c := 1 + 0.1*float64(e%7)
		wk := asm.WorkN(w)
		r.MassGemm(wk, h, c, nil, blocks[0])
		r.StiffGemm(wk, h, 1, nil, sc.tmp)
		for i := range sc.tmp {
			blocks[0][i] += sc.tmp[i]
		}
		r.MassGemm(wk, h, 0.3*c, nil, blocks[1])
		r.MassGemm(wk, h, c, nil, blocks[3])
	}
	return loop, zipped
}

func assembleOnce(asm *Assembler, mat *la.BSRMat, layout Layout, loop NodeMajorKernel, zipped ZippedKernel) {
	if layout == LayoutZipped {
		asm.AssembleMatrixZipped(mat, zipped)
	} else {
		asm.AssembleMatrix(mat, layout, loop)
	}
}

// TestWarmAssemblyMatchesColdBitwise is the plan-correctness contract:
// warm (plan-driven) reassembly must reproduce the first (COO-map based)
// assembly bit for bit, for all three layouts, in 2D and 3D, on meshes
// with hanging-node constraints, serially and across ranks (exercising
// the prefilled off-process buffers and the receive-slot cache). Workers
// are pinned to 1 because shard merging legitimately reorders floating-
// point accumulation (see TestParallelWorkersMatchSerial).
func TestWarmAssemblyMatchesColdBitwise(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3} {
			for _, layout := range []Layout{LayoutAIJ, LayoutBAIJ, LayoutZipped} {
				par.Run(p, func(c *par.Comm) {
					m := buildMesh(c, dim, 2, 4)
					if got := m.GlobalSum(float64(m.HangingCorners)); got == 0 {
						panic("plan test mesh has no hanging constraints")
					}
					asm := NewAssembler(m, 2)
					asm.SetWorkers(1)
					loop, zipped := planTestKernels(asm, 1)

					mat := NewMatrix(m, 2, layout)
					assembleOnce(asm, mat, layout, loop, zipped)
					if asm.Plan(layout) == nil {
						panic("cold assembly did not build a plan")
					}
					cold := append([]float64(nil), mat.Vals()...)

					// Warm reassembly into the same matrix.
					mat.Zero()
					assembleOnce(asm, mat, layout, loop, zipped)
					mustBitwise(c, "warm-reassembly", dim, p, layout, cold, mat.Vals())

					// A second matrix born from the plan's frozen pattern
					// takes the warm path on its very first assembly.
					mat2 := asm.NewMatrix(layout)
					if !mat2.Finalized() || mat2.Sparsity() != mat.Sparsity() {
						panic("Assembler.NewMatrix did not share the frozen sparsity")
					}
					assembleOnce(asm, mat2, layout, loop, zipped)
					mustBitwise(c, "fresh-shared-matrix", dim, p, layout, cold, mat2.Vals())
				})
			}
		}
	}
}

func mustBitwise(c *par.Comm, what string, dim, p int, layout Layout, want, got []float64) {
	if len(want) != len(got) {
		panic(fmt.Sprintf("%s dim=%d p=%d layout=%d: value count %d != %d", what, dim, p, layout, len(got), len(want)))
	}
	for i := range want {
		if want[i] != got[i] {
			panic(fmt.Sprintf("%s dim=%d p=%d layout=%d rank=%d: vals[%d] = %v, cold %v (diff %g)",
				what, dim, p, layout, c.Rank(), i, got[i], want[i], got[i]-want[i]))
		}
	}
}

// TestParallelWorkersMatchSerial checks the sharded element loop: the
// merged per-worker accumulation must agree with the serial warm path to
// roundoff (shard merging reorders the additions, so equality is to a
// tolerance, not bitwise).
func TestParallelWorkersMatchSerial(t *testing.T) {
	for _, layout := range []Layout{LayoutBAIJ, LayoutZipped, LayoutAIJ} {
		par.Run(1, func(c *par.Comm) {
			m := buildMesh(c, 2, 2, 4)
			asm := NewAssembler(m, 2)
			asm.SetWorkers(1)
			loop, zipped := planTestKernels(asm, 4)

			mat := NewMatrix(m, 2, layout)
			assembleOnce(asm, mat, layout, loop, zipped) // cold
			mat.Zero()
			assembleOnce(asm, mat, layout, loop, zipped) // warm serial
			serial := append([]float64(nil), mat.Vals()...)

			asm.SetWorkers(4)
			mat.Zero()
			assembleOnce(asm, mat, layout, loop, zipped) // warm sharded
			got := mat.Vals()
			for i := range serial {
				diff := math.Abs(serial[i] - got[i])
				tol := 1e-12 * (1 + math.Abs(serial[i]))
				if diff > tol {
					panic(fmt.Sprintf("layout=%d vals[%d]: serial %v parallel %v", layout, i, serial[i], got[i]))
				}
			}
		})
	}
}

// TestWarmAssemblyZeroAllocs verifies the acceptance criterion that the
// steady-state element loop performs no map operations and no per-element
// heap allocation: a whole warm reassembly allocates nothing.
func TestWarmAssemblyZeroAllocs(t *testing.T) {
	for _, layout := range []Layout{LayoutBAIJ, LayoutZipped, LayoutAIJ} {
		var allocs float64
		par.Run(1, func(c *par.Comm) {
			m := buildMesh(c, 2, 2, 4)
			asm := NewAssembler(m, 2)
			asm.SetWorkers(1)
			loop, zipped := planTestKernels(asm, 1)
			mat := NewMatrix(m, 2, layout)
			assembleOnce(asm, mat, layout, loop, zipped) // cold: builds the plan
			allocs = testing.AllocsPerRun(10, func() {
				mat.Zero()
				assembleOnce(asm, mat, layout, loop, zipped)
			})
		})
		if allocs != 0 {
			t.Fatalf("layout=%d: warm assembly allocates %v times per run, want 0", layout, allocs)
		}
	}
}
