// Incremental assembly-plan repair: RebindPatched moves the assembler to
// a patched mesh (mesh.Patch) without discarding the frozen sparsity and
// plans. Clean rows — nodes the remesh did not touch — keep their column
// pattern (remapped through the mesh delta); only dirty rows are
// recomputed, from one flat sweep of the new constraint table plus an NBX
// of the off-process couplings. The patched pattern is exactly the
// pattern a cold assembly on the new mesh would freeze, so plan-driven
// reassembly after RebindPatched is bitwise identical to the
// cold-then-warm path at any rank and worker count.
package fem

import (
	"fmt"
	"sort"

	"proteus/internal/la"
	"proteus/internal/mesh"
	"proteus/internal/par"
)

// nodePair is one off-process (row, col) coupling, keyed by node keys so
// the row owner can resolve it against its own numbering.
type nodePair struct {
	Row, Col mesh.NodeKey
}

// nodePattern reads the node-level (block) column pattern of an old plan,
// whether it was frozen in block form or as scalar AIJ (where every node
// block expands to nd x nd scalar entries; aijSlot verified the
// block-regular layout at plan build, so reading every nd-th column of
// the node's first scalar row recovers the node pattern).
type nodePattern struct {
	sp *la.Sparsity
	nd int // 1: sp is the block pattern; else sp is scalar with stride nd
}

func (np nodePattern) rowLen(r int) int {
	if np.nd == 1 {
		return np.sp.RowLen(r)
	}
	return np.sp.RowLen(r*np.nd) / np.nd
}

func (np nodePattern) col(r, k int) int32 {
	if np.nd == 1 {
		return np.sp.Cols[int(np.sp.Indptr[r])+k]
	}
	return np.sp.Cols[int(np.sp.Indptr[r*np.nd])+k*np.nd] / int32(np.nd)
}

// RebindPatched points the assembler at a patched mesh generation,
// repairing the cached plans in place of the full invalidation Rebind
// performs. epoch is recorded directly (SetEpoch would invalidate).
// Collective when any rank holds a plan: the dirty-row patterns need the
// off-process couplings of the new mesh, which every rank contributes
// from its own constraint table regardless of whether it has plans to
// repair.
func (a *Assembler) RebindPatched(m *mesh.Mesh, epoch uint64, d *mesh.Delta) {
	if m.Dim != a.M.Dim {
		panic("fem: Assembler.RebindPatched across dimensions")
	}
	oldPlans := a.plans
	oldVec := a.vplan
	a.M = m
	a.epoch = epoch
	a.off.clear()
	a.plans[0], a.plans[1] = nil, nil
	a.vplan = nil

	havePlans := oldPlans[0] != nil || oldPlans[1] != nil
	anyPlans := havePlans
	if m.Comm.Size() > 1 {
		anyPlans = par.Allreduce(m.Comm, havePlans, func(x, y bool) bool { return x || y })
	}
	if anyPlans {
		pairs := a.dirtyRowPairs(d)
		if havePlans {
			var src nodePattern
			if oldPlans[1] != nil {
				src = nodePattern{sp: oldPlans[1].sp, nd: 1}
			} else {
				src = nodePattern{sp: oldPlans[0].sp, nd: a.Ndof}
			}
			oldOf := invertRemap(d.NodeRemap, m.NumLocal)
			blockSp := patchNodeSparsity(m, src, d, oldOf, pairs)
			if oldPlans[1] != nil {
				a.plans[1] = a.patchPlan(oldPlans[1], d, oldOf, blockSp)
			}
			if oldPlans[0] != nil {
				a.plans[0] = a.patchPlan(oldPlans[0], d, oldOf, expandScalarSparsity(blockSp, a.Ndof))
			}
		}
	}
	if oldVec != nil {
		// The vector plan's slots are a dense prefix sum over the element
		// traversal, so any insertion renumbers every later slot: a
		// per-element delta cannot beat the two linear search-free passes
		// of the builder. "Patching" it means rebuilding into the old
		// plan's allocations (zero-alloc on partition-stable rounds).
		a.vplan = a.rebuildVecPlanInto(oldVec)
	}
}

// invertRemap builds the new-to-old node index map from the old-to-new
// remap (-1 for nodes that did not survive: exactly the dirty new nodes).
func invertRemap(remap []int32, newLocal int) []int32 {
	inv := make([]int32, newLocal)
	for i := range inv {
		inv[i] = -1
	}
	for oi, ni := range remap {
		if ni >= 0 {
			inv[ni] = int32(oi)
		}
	}
	return inv
}

// dirtyRowPairs sweeps the new constraint table once, collecting every
// coupling whose row is an owned dirty node (packed row<<32|col, sorted,
// deduplicated) and exchanging the off-process couplings so the owners
// see the contributions remote elements will send during assembly — the
// same pair set the cold path's off-process flush inserts. Collective
// when the communicator has more than one rank.
func (a *Assembler) dirtyRowPairs(d *mesh.Delta) []int64 {
	m := a.M
	me := int32(m.Comm.Rank())
	cpe := m.CornersPerElem()
	var pairs []int64
	type destBuf struct {
		seen map[nodePair]bool
		buf  []nodePair
	}
	var dests map[int]*destBuf
	if m.Comm.Size() > 1 {
		dests = make(map[int]*destBuf)
	}
	for e := 0; e < m.NumElems(); e++ {
		for ca := 0; ca < cpe; ca++ {
			conA := &m.Conn[e*cpe+ca]
			for cb := 0; cb < cpe; cb++ {
				conB := &m.Conn[e*cpe+cb]
				for i := 0; i < int(conA.N); i++ {
					rowNode := int(conA.Idx[i])
					owner := m.Owner[rowNode]
					if owner == me && !d.DirtyNode[rowNode] {
						continue
					}
					for j := 0; j < int(conB.N); j++ {
						colNode := int(conB.Idx[j])
						if owner == me {
							pairs = append(pairs, int64(rowNode)<<32|int64(colNode))
							continue
						}
						if dests == nil {
							continue
						}
						np := nodePair{m.Keys[rowNode], m.Keys[colNode]}
						dd := dests[int(owner)]
						if dd == nil {
							dd = &destBuf{seen: make(map[nodePair]bool)}
							dests[int(owner)] = dd
						}
						if !dd.seen[np] {
							dd.seen[np] = true
							dd.buf = append(dd.buf, np)
						}
					}
				}
			}
		}
	}
	if c := m.Comm; c.Size() > 1 {
		dr := make([]int, 0, len(dests))
		for r := range dests {
			dr = append(dr, r)
		}
		sort.Ints(dr)
		bufs := make([][]nodePair, len(dr))
		for i, r := range dr {
			bufs[i] = dests[r].buf
		}
		srcs, recvd := par.NBXExchange(c, dr, bufs)
		for bi := range srcs {
			for _, np := range recvd[bi] {
				rowNode, ok := m.NodeIndex(np.Row)
				if !ok {
					panic(fmt.Sprintf("fem: patched off-process row %v unknown on owner", np.Row))
				}
				colNode, ok := m.NodeIndex(np.Col)
				if !ok {
					panic(fmt.Sprintf("fem: patched off-process column %v unknown on rank %d", np.Col, c.Rank()))
				}
				if d.DirtyNode[rowNode] {
					pairs = append(pairs, int64(rowNode)<<32|int64(colNode))
				}
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	out := pairs[:0]
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// patchNodeSparsity assembles the node-block pattern of the patched mesh:
// clean owned rows keep the old row remapped through the delta (the delta
// guarantees a clean row's columns keep their relative order under the
// remap, so they stay sorted); dirty rows
// take their sorted, deduplicated pair runs. The result is exactly the
// pattern a cold assembly would freeze — clean rows receive no remote
// contributions (they are never exchange targets, or they would be dirty)
// and couple only to surviving elements, whose couplings remap one for
// one; dirty rows were recomputed from every local and remote coupling.
func patchNodeSparsity(m *mesh.Mesh, src nodePattern, d *mesh.Delta, oldOf []int32, pairs []int64) *la.Sparsity {
	nr := m.NumOwned
	sp := &la.Sparsity{NRows: nr, Indptr: make([]int32, nr+1)}
	rowStart := make([]int32, nr)
	pi := 0
	total := 0
	for r := 0; r < nr; r++ {
		if d.DirtyNode[r] {
			rowStart[r] = int32(pi)
			for pi < len(pairs) && int(pairs[pi]>>32) == r {
				pi++
			}
			total += pi - int(rowStart[r])
		} else {
			or := oldOf[r]
			if or < 0 {
				panic("fem: clean patched row has no old counterpart")
			}
			total += src.rowLen(int(or))
		}
		sp.Indptr[r+1] = int32(total)
	}
	if pi != len(pairs) {
		panic("fem: dirty-row pairs reference a ghost or unflagged row")
	}
	sp.Cols = make([]int32, total)
	idx := 0
	for r := 0; r < nr; r++ {
		if d.DirtyNode[r] {
			for k := int(rowStart[r]); k < len(pairs) && int(pairs[k]>>32) == r; k++ {
				sp.Cols[idx] = int32(pairs[k] & 0xffffffff)
				idx++
			}
			continue
		}
		or := int(oldOf[r])
		for k, n := 0, src.rowLen(or); k < n; k++ {
			nc := d.NodeRemap[src.col(or, k)]
			if nc < 0 {
				panic("fem: clean patched row references a dropped node")
			}
			sp.Cols[idx] = nc
			idx++
		}
	}
	return sp
}

// expandScalarSparsity expands a node-block pattern to the scalar AIJ
// pattern: every block row becomes nd identical-pattern scalar rows,
// every block column nd consecutive scalar columns — the block-regular
// layout aijSlot expects.
func expandScalarSparsity(b *la.Sparsity, nd int) *la.Sparsity {
	nr := b.NRows * nd
	sp := &la.Sparsity{NRows: nr, Indptr: make([]int32, nr+1)}
	for r := 0; r < b.NRows; r++ {
		bl := int32(b.RowLen(r) * nd)
		for di := 0; di < nd; di++ {
			sp.Indptr[r*nd+di+1] = sp.Indptr[r*nd+di] + bl
		}
	}
	sp.Cols = make([]int32, sp.Indptr[nr])
	idx := 0
	for r := 0; r < b.NRows; r++ {
		for di := 0; di < nd; di++ {
			for k := b.Indptr[r]; k < b.Indptr[r+1]; k++ {
				c := b.Cols[k] * int32(nd)
				for dj := 0; dj < nd; dj++ {
					sp.Cols[idx] = c + int32(dj)
					idx++
				}
			}
		}
	}
	return sp
}

// patchPlan rebuilds one assembly plan against the patched sparsity,
// reusing the old plan's resolved slots wherever it can: an entry of a
// clean element whose row node is clean keeps its offset within the row
// (the row's columns remapped positionally), so its new slot is two
// index-pointer reads — no binary search. Only entries of dirty elements
// or into dirty rows re-resolve against the pattern, and the off-process
// routing is rebuilt (it is surface-sized). The resulting plan is
// identical to what buildPlan would produce on the new mesh: same
// traversal, same weights, same slots (the patterns are equal), same
// rank-major off-process store.
func (a *Assembler) patchPlan(op *AssemblyPlan, d *mesh.Delta, oldOf []int32, sp *la.Sparsity) *AssemblyPlan {
	m := a.M
	nd := a.Ndof
	cpe := m.CornersPerElem()
	me := int32(m.Comm.Rank())
	nE := m.NumElems()
	oldSp := op.sp
	plan := &AssemblyPlan{ndof: nd, scalar: op.scalar, sp: sp}

	plan.elemOff = make([]int32, nE+1)
	total := 0
	for e := 0; e < nE; e++ {
		for ca := 0; ca < cpe; ca++ {
			na := int(m.Conn[e*cpe+ca].N)
			for cb := 0; cb < cpe; cb++ {
				total += na * int(m.Conn[e*cpe+cb].N)
			}
		}
		plan.elemOff[e+1] = int32(total)
	}
	plan.entries = make([]planEntry, total)

	type offTmp struct {
		entry    int32
		rank     int32
		pos      int32
		row, col mesh.NodeKey
	}
	var offs []offTmp
	rankCount := map[int]int{}
	idx := 0
	for e := 0; e < nE; e++ {
		oe := d.OldElem[e]
		clean := oe >= 0
		var oldIdx int32
		if clean {
			oldIdx = op.elemOff[oe]
		}
		for ca := 0; ca < cpe; ca++ {
			conA := &m.Conn[e*cpe+ca]
			for cb := 0; cb < cpe; cb++ {
				conB := &m.Conn[e*cpe+cb]
				for i := 0; i < int(conA.N); i++ {
					rowNode := int(conA.Idx[i])
					wi := conA.W[i]
					for j := 0; j < int(conB.N); j++ {
						colNode := int(conB.Idx[j])
						ent := &plan.entries[idx]
						ent.w = wi * conB.W[j]
						switch {
						case m.Owner[rowNode] != me:
							r := int(m.Owner[rowNode])
							pos := rankCount[r]
							rankCount[r] = pos + 1
							offs = append(offs, offTmp{
								entry: int32(idx), rank: int32(r), pos: int32(pos),
								row: m.Keys[rowNode], col: m.Keys[colNode],
							})
						case clean && !d.DirtyNode[rowNode]:
							// Clean row of a clean element: the old entry
							// at the same traversal position resolved the
							// same (row, col); carry its offset within the
							// row over to the patched pattern.
							oent := &op.entries[oldIdx]
							if oent.slot < 0 {
								panic("fem: clean patched entry was off-process in the old plan")
							}
							if plan.scalar {
								or0 := int(oldOf[rowNode]) * nd
								r0 := rowNode * nd
								ent.slot = sp.Indptr[r0] + (oent.slot - oldSp.Indptr[or0])
								ent.aux = sp.Indptr[r0+1] - sp.Indptr[r0]
							} else {
								ent.slot = sp.Indptr[rowNode] + (oent.slot - oldSp.Indptr[oldOf[rowNode]])
							}
						case plan.scalar:
							base, stride := aijSlot(sp, rowNode, colNode, nd)
							ent.slot = int32(base)
							ent.aux = int32(stride)
						default:
							s := sp.FindSlot(rowNode, colNode)
							if s < 0 {
								panic(fmt.Sprintf("fem: patched block (%d,%d) missing from repaired sparsity", rowNode, colNode))
							}
							ent.slot = int32(s)
						}
						idx++
						if clean {
							oldIdx++
						}
					}
				}
			}
		}
	}

	plan.offDests = make([]int, 0, len(rankCount))
	for r := range rankCount {
		plan.offDests = append(plan.offDests, r)
	}
	sort.Ints(plan.offDests)
	rankStart := make(map[int]int, len(rankCount))
	totalOff := 0
	for _, r := range plan.offDests {
		rankStart[r] = totalOff
		totalOff += rankCount[r]
	}
	plan.offStore = make([]offProc, totalOff)
	plan.offBufs = make([][]offProc, len(plan.offDests))
	for i, r := range plan.offDests {
		plan.offBufs[i] = plan.offStore[rankStart[r] : rankStart[r]+rankCount[r]]
	}
	for _, o := range offs {
		flat := rankStart[int(o.rank)] + int(o.pos)
		plan.offStore[flat].Row = o.row
		plan.offStore[flat].Col = o.col
		plan.entries[o.entry].slot = ^int32(flat)
	}
	return plan
}

// rebuildVecPlanInto runs buildVecPlan's two passes into the old plan's
// allocations when their capacity suffices, so a remesh round that does
// not grow the local element set rebuilds the vector plan without
// allocating.
func (a *Assembler) rebuildVecPlanInto(old *VecPlan) *VecPlan {
	m := a.M
	cpe := m.CornersPerElem()
	nE := m.NumElems()
	p := &VecPlan{ndof: a.Ndof}

	p.elemOff = fitInt32(old.elemOff, nE+1)
	counts := fitInt32(old.gatherOff, m.NumLocal+1)
	for i := range counts {
		counts[i] = 0
	}
	total := 0
	for e := 0; e < nE; e++ {
		p.elemOff[e] = int32(total)
		for c := 0; c < cpe; c++ {
			con := &m.Conn[e*cpe+c]
			total += int(con.N)
			for k := 0; k < int(con.N); k++ {
				counts[con.Idx[k]+1]++
			}
		}
	}
	p.elemOff[nE] = int32(total)
	p.store = fitFloat64(old.store, total*a.Ndof)
	p.gatherOff = counts
	for i := 0; i < m.NumLocal; i++ {
		p.gatherOff[i+1] += p.gatherOff[i]
	}

	p.gatherSlot = fitInt32(old.gatherSlot, total)
	fill := make([]int32, m.NumLocal)
	copy(fill, p.gatherOff[:m.NumLocal])
	slot := int32(0)
	for e := 0; e < nE; e++ {
		for c := 0; c < cpe; c++ {
			con := &m.Conn[e*cpe+c]
			for k := 0; k < int(con.N); k++ {
				i := con.Idx[k]
				p.gatherSlot[fill[i]] = slot
				fill[i]++
				slot++
			}
		}
	}
	return p
}

func fitInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func fitFloat64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
