package fem

import (
	"proteus/internal/mesh"
	"proteus/internal/par"
)

// WorkerVecKernel fills the node-major elemental vector fe[a*ndof+d] for
// element e on element-loop shard w. The worker index follows the same
// per-shard contract as NodeMajorKernel: kernels with mutable scratch
// keep one copy per worker, sized by Assembler.Workers().
type WorkerVecKernel func(w, e int, h float64, fe []float64)

// WorkerZippedVecKernel fills the dof-major (zipped) elemental vector
// fz[d*npe+a] for element e on shard w — the stage-2 DGEMV layout,
// unzipped by the assembler before the constraint scatter.
type WorkerZippedVecKernel func(w, e int, h float64, fz []float64)

// VecPlan freezes everything about vector assembly that depends only on
// (mesh, ndof): the flat contribution store the element loop writes and
// the per-node gather lists that sum it back in serial traversal order.
// It is the vector counterpart of AssemblyPlan, built once per mesh
// generation and invalidated with the matrix plans on an epoch bump.
//
// The two-phase structure is what makes the sharded loop reproducible:
// every (element, corner, donor) contribution has its own store slot
// (written by exactly one element, so element shards never contend), and
// every node entry sums its slots in ascending slot order — exactly the
// accumulation order of the serial AssembleVector scatter. The result is
// therefore bitwise identical to the serial path at any worker count.
type VecPlan struct {
	ndof int

	// elemOff[e] is element e's first contribution slot; a contribution
	// is one (corner, donor) pair carrying ndof values. Slots follow the
	// serial traversal order (element, then corner, then donor).
	elemOff []int32

	// store holds one ndof-vector per contribution slot: the
	// weight-scaled elemental values w_k * fe[c*ndof+d].
	store []float64

	// gatherOff/gatherSlot list node i's contribution slots
	// (gatherSlot[gatherOff[i]:gatherOff[i+1]], ascending).
	gatherOff  []int32
	gatherSlot []int32
}

// Entries returns the precomputed contribution count (diagnostics).
func (p *VecPlan) Entries() int { return len(p.gatherSlot) }

// buildVecPlan walks the constraint table exactly as ScatterAddElem does
// and records every contribution's store slot plus the per-node gather
// lists. Purely local: vector assembly routes off-process contributions
// through the ghost segment, so no exchange structure is needed here.
func (a *Assembler) buildVecPlan() *VecPlan {
	m := a.M
	cpe := m.CornersPerElem()
	nE := m.NumElems()
	p := &VecPlan{ndof: a.Ndof}

	// Pass 1: contribution counts per element and per node.
	p.elemOff = make([]int32, nE+1)
	counts := make([]int32, m.NumLocal+1)
	total := 0
	for e := 0; e < nE; e++ {
		for c := 0; c < cpe; c++ {
			con := &m.Conn[e*cpe+c]
			total += int(con.N)
			for k := 0; k < int(con.N); k++ {
				counts[con.Idx[k]+1]++
			}
		}
		p.elemOff[e+1] = int32(total)
	}
	p.store = make([]float64, total*a.Ndof)
	p.gatherOff = counts
	for i := 0; i < m.NumLocal; i++ {
		p.gatherOff[i+1] += p.gatherOff[i]
	}

	// Pass 2: fill the gather lists. Slots are visited in ascending order,
	// so each node's list comes out ascending — the serial scatter order.
	p.gatherSlot = make([]int32, total)
	fill := make([]int32, m.NumLocal)
	copy(fill, p.gatherOff[:m.NumLocal])
	slot := int32(0)
	for e := 0; e < nE; e++ {
		for c := 0; c < cpe; c++ {
			con := &m.Conn[e*cpe+c]
			for k := 0; k < int(con.N); k++ {
				i := con.Idx[k]
				p.gatherSlot[fill[i]] = slot
				fill[i]++
				slot++
			}
		}
	}
	return p
}

// VecPlan returns the cached vector plan, or nil before the first planned
// vector assembly (or after invalidation).
func (a *Assembler) VecPlan() *VecPlan { return a.vplan }

// SetVecWorkers overrides the shard count of planned vector assembly
// (n <= 0 restores the default: the matrix element-loop worker count).
// Unlike matrix shards, the vector shard count never changes results —
// the plan's canonical gather order makes every count bitwise identical —
// so this is purely a performance/ablation knob.
func (a *Assembler) SetVecWorkers(n int) {
	if n <= 0 {
		n = 0
	}
	a.vecWorkers = n
}

// AssembleVectorPlanned is the warm-path counterpart of AssembleVector:
// the element loop runs sharded over the assembler's workers (on the
// pool when one is set), scattering into the plan's preallocated store,
// and the per-node gather sums contributions in serial traversal order —
// bitwise identical to AssembleVector at any worker count, with zero
// steady-state allocation. On multiple ranks the ghost segment is
// gathered first so its combining ghost write overlaps the owned-segment
// gather. The first call builds the plan. Collective.
func (a *Assembler) AssembleVectorPlanned(v []float64, kern WorkerVecKernel) {
	a.assembleVecPlanned(v, kern, nil)
}

// AssembleVectorZippedPlanned is AssembleVectorPlanned for zipped
// (dof-major) kernels: each shard unzips into its private fe scratch
// before the store scatter. Collective.
func (a *Assembler) AssembleVectorZippedPlanned(v []float64, kern WorkerZippedVecKernel) {
	a.assembleVecPlanned(v, nil, kern)
}

func (a *Assembler) assembleVecPlanned(v []float64, kern WorkerVecKernel, zkern WorkerZippedVecKernel) {
	if a.vplan == nil {
		a.vplan = a.buildVecPlan()
	}
	m := a.M
	n := m.NumElems()
	// An explicit SetVecWorkers count is honored as-is (runVecPhase falls
	// back to goroutine shards when the pool is smaller); the default
	// follows the matrix element loop, clamped to the pool.
	nw := a.vecWorkers
	if nw == 0 {
		nw = a.workers
		if a.pool != nil && a.pool.Workers() < nw {
			nw = a.pool.Workers()
		}
	}
	if nw > n {
		nw = n
	}
	if nw < 1 {
		nw = 1
	}
	a.ensureWorkers(nw)
	if a.vecElemFn == nil {
		a.vecElemFn, a.vecGatherFn = a.runVecElemShard, a.runVecGatherShard
	}
	a.shVec, a.shVKern, a.shVZKern, a.shVN, a.shVNW = v, kern, zkern, n, nw

	a.runSharded(a.vecElemFn, nw)
	if m.Comm.Size() > 1 {
		// Gather the ghost segment first and push it while the owned
		// segment — the bulk of the vector — is still being gathered.
		a.shVLo, a.shVHi = m.NumOwned, m.NumLocal
		a.runSharded(a.vecGatherFn, nw)
		m.GhostWriteBegin(v, a.Ndof, 0)
		a.shVLo, a.shVHi = 0, m.NumOwned
		a.runSharded(a.vecGatherFn, nw)
		m.GhostWriteEnd(v, a.Ndof, mesh.Add)
	} else {
		a.shVLo, a.shVHi = 0, m.NumLocal
		a.runSharded(a.vecGatherFn, nw)
	}
	a.shVec, a.shVKern, a.shVZKern = nil, nil, nil
}

// runSharded dispatches one prebuilt shard function across nw workers:
// on the pool when it is large enough (allocation-free), otherwise on
// transient goroutines, and directly on the caller when nw == 1. Both
// the matrix and the vector assembly phases run through it.
func (a *Assembler) runSharded(f func(w int), nw int) {
	switch {
	case nw == 1:
		f(0)
	case a.pool != nil && a.pool.Workers() >= nw:
		a.pool.Run(f)
	default:
		done := make(chan struct{}, nw-1)
		for w := 1; w < nw; w++ {
			go func(w int) {
				f(w)
				done <- struct{}{}
			}(w)
		}
		f(0)
		for w := 1; w < nw; w++ {
			<-done
		}
	}
}

// runVecElemShard runs the element loop over shard w's range, writing
// each contribution's weight-scaled values into its private store slot.
func (a *Assembler) runVecElemShard(w int) {
	nw, n := a.shVNW, a.shVN
	if w >= nw {
		return
	}
	lo, hi := par.Shard(w, nw, n)
	m := a.M
	plan := a.vplan
	nd := a.Ndof
	cpe := m.CornersPerElem()
	ws := &a.ws[w]
	fe := ws.fe
	store := plan.store
	idx := int(plan.elemOff[lo])
	for e := lo; e < hi; e++ {
		h := m.ElemSize(e)
		if a.shVKern != nil {
			for i := range fe {
				fe[i] = 0
			}
			a.shVKern(w, e, h, fe)
		} else {
			fz := ws.fz
			for i := range fz {
				fz[i] = 0
			}
			a.shVZKern(w, e, h, fz)
			UnzipVec(nd, cpe, fz, fe)
		}
		for c := 0; c < cpe; c++ {
			con := &m.Conn[e*cpe+c]
			for k := 0; k < int(con.N); k++ {
				wgt := con.W[k]
				dst := store[idx*nd : idx*nd+nd]
				src := fe[c*nd : c*nd+nd]
				if wgt == 1 {
					copy(dst, src)
				} else {
					for d := range dst {
						dst[d] = wgt * src[d]
					}
				}
				idx++
			}
		}
	}
}

// runVecGatherShard sums each node entry of shard w's [shVLo, shVHi)
// node range from its store slots, in ascending slot order — the serial
// accumulation order, so the result is independent of nw.
func (a *Assembler) runVecGatherShard(w int) {
	nw := a.shVNW
	if w >= nw {
		return
	}
	lo, hi := par.Shard(w, nw, a.shVHi-a.shVLo)
	lo += a.shVLo
	hi += a.shVLo
	plan := a.vplan
	nd := a.Ndof
	v := a.shVec
	store := plan.store
	for i := lo; i < hi; i++ {
		base := i * nd
		for d := 0; d < nd; d++ {
			v[base+d] = 0
		}
		for s := plan.gatherOff[i]; s < plan.gatherOff[i+1]; s++ {
			src := store[int(plan.gatherSlot[s])*nd : int(plan.gatherSlot[s])*nd+nd]
			for d := 0; d < nd; d++ {
				v[base+d] += src[d]
			}
		}
	}
}
